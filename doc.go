// Package fvcache is a reproduction of "Frequent Value Locality and
// Value-Centric Data Cache Design" (Zhang, Yang, Gupta — ASPLOS 2000).
//
// The implementation lives in internal packages:
//
//   - internal/trace: memory-access event model and binary trace codec
//   - internal/memsim: architectural memory + instrumented allocator
//   - internal/cache: conventional caches, victim cache, miss classifier
//   - internal/fvc: the frequent value cache (the paper's contribution)
//   - internal/core: the composed DMC+FVC/VC hierarchy simulator
//   - internal/freqval: Section 2 profilers (frequency, stability, ...)
//   - internal/cacti: CACTI-style access-time model (Figure 9)
//   - internal/workload: the 12 synthetic SPEC95-analogue workloads
//   - internal/sim: profile→measure pipeline and parallel sweeps
//   - internal/experiments: one reproduction per paper table/figure
//
// Binaries: cmd/fvcsim, cmd/fvlstudy, cmd/experiments, cmd/tracegen.
// Runnable examples: examples/quickstart and friends.
//
// bench_test.go in this directory holds one testing.B benchmark per
// paper table and figure. See DESIGN.md and EXPERIMENTS.md.
package fvcache
