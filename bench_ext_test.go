// Benchmarks for the extension experiments and design-choice
// ablations: write-miss allocation, footprint insertion policy, online
// FVT identification, the FV-compressed data cache, and FPC-style
// pattern compression.
package fvcache_test

import (
	"testing"

	"fvcache/internal/compress"
	"fvcache/internal/core"
	"fvcache/internal/energy"
	"fvcache/internal/fpc"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
)

// BenchmarkAblationWriteMissAlloc measures how much of the FVC's
// benefit comes from the paper's write-miss allocation exception.
func BenchmarkAblationWriteMissAlloc(b *testing.B) {
	w := getWL(b, "strproc")
	var full, ablated float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: dmc(16, 32)})
		cfgFull := fvcCfg(w, b, dmc(16, 32), 512, 3)
		cfgAblated := cfgFull
		cfgAblated.NoWriteMissAllocate = true
		full = (base.MissRate() - measure(b, w, cfgFull).MissRate()) / base.MissRate() * 100
		ablated = (base.MissRate() - measure(b, w, cfgAblated).MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(full, "fullRed%")
	b.ReportMetric(ablated, "noAllocRed%")
}

// BenchmarkAblationSkipEmptyFootprints measures the footprint
// insertion policy's effect.
func BenchmarkAblationSkipEmptyFootprints(b *testing.B) {
	w := getWL(b, "goboard")
	var full, skip float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: dmc(16, 32)})
		cfgFull := fvcCfg(w, b, dmc(16, 32), 512, 3)
		cfgSkip := cfgFull
		cfgSkip.SkipEmptyFootprints = true
		full = (base.MissRate() - measure(b, w, cfgFull).MissRate()) / base.MissRate() * 100
		skip = (base.MissRate() - measure(b, w, cfgSkip).MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(full, "alwaysRed%")
	b.ReportMetric(skip, "skipRed%")
}

// BenchmarkOnlineFVT compares online frequent-value identification
// against the profiled table.
func BenchmarkOnlineFVT(b *testing.B) {
	w := getWL(b, "goboard")
	var profiled, online float64
	var updates uint64
	for i := 0; i < b.N; i++ {
		profiled = measure(b, w, fvcCfg(w, b, dmc(16, 32), 512, 3)).MissRate() * 100
		res, err := sim.Measure(w, benchScale, core.Config{
			Main:           dmc(16, 32),
			FVC:            &fvc.Params{Entries: 512, LineBytes: 32, Bits: 3},
			OnlineFVTEvery: 50_000,
		}, sim.MeasureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		online = res.Stats.MissRate() * 100
		updates = res.Stats.FVTUpdates
	}
	b.ReportMetric(profiled, "profMiss%")
	b.ReportMetric(online, "onlineMiss%")
	b.ReportMetric(float64(updates), "updates")
}

// BenchmarkCompressedCache measures the FV-compressed data cache (the
// follow-up design) against the same-size plain configuration.
func BenchmarkCompressedCache(b *testing.B) {
	w := getWL(b, "goboard")
	var missRate, frac float64
	for i := 0; i < b.N; i++ {
		tbl, err := fvc.NewTable(3, topValues(b, w, 7))
		if err != nil {
			b.Fatal(err)
		}
		cc := compress.MustNew(compress.Params{SizeBytes: 16 << 10, LineBytes: 32}, tbl)
		env := memsim.NewEnv(cc)
		w.Run(env, benchScale)
		missRate = cc.Stats().MissRate() * 100
		frac = cc.CompressedFraction() * 100
	}
	b.ReportMetric(missRate, "miss%")
	b.ReportMetric(frac, "compressed%")
}

// BenchmarkFPCClassify measures the pattern classifier's hot path.
func BenchmarkFPCClassify(b *testing.B) {
	vals := []uint32{0, 1, 0x78787878, 0xdeadbeef, 40000, 0xffffff80}
	var bits int
	for i := 0; i < b.N; i++ {
		_, bits = fpc.Classify(vals[i%len(vals)])
	}
	b.ReportMetric(float64(bits), "bits")
}

// BenchmarkEnergyEstimate exercises the energy model over a measured
// run.
func BenchmarkEnergyEstimate(b *testing.B) {
	w := getWL(b, "cpusim")
	cfg := fvcCfg(w, b, dmc(16, 32), 512, 3)
	st := measure(b, w, cfg)
	m := energy.Default08um()
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = m.Estimate(cfg, st).TotalNJ()
	}
	b.ReportMetric(total/1000, "uJ")
}

// BenchmarkOccupancyGolden exercises the differential-tested protocol
// at speed: random mixed stream through DMC+FVC.
func BenchmarkProtocolRandomStream(b *testing.B) {
	sys := core.MustNew(core.Config{
		Main:           dmc(16, 32),
		FVC:            &fvc.Params{Entries: 512, LineBytes: 32, Bits: 3},
		FrequentValues: []uint32{0, 1, 2, 4, 8, 10, 0xffffffff},
	})
	vals := []uint32{0, 1, 0xdeadbeef, 8, 10, 12345}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i*2654435761) % (64 << 10) &^ 3
		if i&1 == 0 {
			sys.Access(trace.Store, addr, vals[i%len(vals)])
		} else {
			sys.Access(trace.Load, addr, sys.MemWord(addr))
		}
	}
}
