// End-to-end telemetry coverage: the snapshot a cmd binary exports
// must validate against the schema and carry the counters, phase tree
// and throughput gauges the run actually produced. This is the make
// check gate for the telemetry artifact pipeline (the zero-alloc gates
// for the instrumented hot loops live in internal/sim).
package fvcache_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"fvcache/internal/obs"
)

// buildTracegen compiles cmd/tracegen into dir and returns the binary
// path.
func buildTracegen(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "tracegen")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/tracegen")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tracegen: %v\n%s", err, out)
	}
	return bin
}

func TestTelemetrySnapshotFromTracegenRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	dir := t.TempDir()
	bin := buildTracegen(t, dir)
	tracePath := filepath.Join(dir, "ccomp.fvt")
	telPath := filepath.Join(dir, "telemetry.json")

	cmd := exec.Command(bin,
		"-workload", "ccomp", "-scale", "test", "-o", tracePath,
		"-telemetry-out", telPath, "-log-level", "debug")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tracegen record: %v\n%s", err, out)
	}
	// -log-level debug emits structured JSON lines on stderr.
	if !strings.Contains(string(out), `"msg":"workload recorded"`) {
		t.Errorf("debug log line missing from output:\n%s", out)
	}

	buf, err := os.ReadFile(telPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ValidateSnapshot(buf)
	if err != nil {
		t.Fatalf("exported snapshot invalid: %v", err)
	}
	if snap.Counters["recorded_events_total"] == 0 {
		t.Errorf("recorded_events counter is 0; counters: %v", snap.Counters)
	}
	if _, ok := snap.Gauges[`record_events_per_sec{workload="ccomp"}`]; !ok {
		t.Errorf("per-workload throughput gauge missing; gauges: %v", snap.Gauges)
	}
	var names []string
	for _, ph := range snap.Phases.Children {
		names = append(names, ph.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "record:ccomp") {
		t.Errorf("phase tree missing record span: %v", names)
	}

	// Second invocation: replay the trace; its snapshot must count the
	// drained events and validate too.
	telPath2 := filepath.Join(dir, "telemetry2.json")
	cmd = exec.Command(bin, "-replay", tracePath, "-telemetry-out", telPath2)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tracegen replay: %v\n%s", err, out)
	}
	buf, err = os.ReadFile(telPath2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = obs.ValidateSnapshot(buf)
	if err != nil {
		t.Fatalf("replay snapshot invalid: %v", err)
	}
	if snap.Counters["trace_drained_events_total"] == 0 {
		t.Errorf("trace_drained_events counter is 0; counters: %v", snap.Counters)
	}
}

// TestTelemetryExitCodes checks the shared CLI epilogue end to end:
// a clean run exits 0 and a failing one exits 1, with telemetry still
// exported in both cases.
func TestTelemetryExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	dir := t.TempDir()
	bin := buildTracegen(t, dir)

	// Corrupt trace: the run must fail with exit code 1 (not a panic),
	// count the corruption, and still write its snapshot.
	bad := filepath.Join(dir, "bad.fvt")
	if err := os.WriteFile(bad, []byte("FVT1\xff\xff\xff\xff\xff\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	telPath := filepath.Join(dir, "telemetry.json")
	cmd := exec.Command(bin, "-stats", bad, "-telemetry-out", telPath)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("corrupt-trace run: err = %v (output %s), want exit error", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Errorf("corrupt-trace exit code = %d, want 1\n%s", ee.ExitCode(), out)
	}
	buf, err := os.ReadFile(telPath)
	if err != nil {
		t.Fatalf("failing run did not export telemetry: %v", err)
	}
	snap, err := obs.ValidateSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["trace_corrupt_total"] == 0 {
		t.Errorf("trace_corrupt counter is 0; counters: %v", snap.Counters)
	}
}
