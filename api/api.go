// Package api is the canonical wire contract of the fvcached service:
// the JSON request/response types of every /v1/ endpoint, the shared
// error envelope, and the config fingerprint helpers that identify a
// configuration across the coalescing window, the durable result
// cache, and the consistent-hash fleet.
//
// The package is versioned by Version (the /v1/ path prefix every
// endpoint lives under). It is consumed identically by three kinds of
// caller:
//
//   - external clients, via the fvcache/client SDK;
//   - the load generator cmd/serveload;
//   - the fleet itself — node-to-node owner forwarding inside
//     internal/serve speaks exactly these types through the same SDK.
//
// internal/serve aliases these types rather than declaring its own, so
// there is exactly one definition of the wire format in the tree.
package api

import (
	"fmt"
	"strings"

	"fvcache"
)

// Version is the wire-format version: the path prefix ("/v1") under
// which every endpoint in this package is served. Incompatible wire
// changes bump it.
const Version = "v1"

// Config is the JSON representation of one cache configuration.
// Zero-valued geometry fields take the paper's defaults (16KB main
// cache, 32-byte lines, direct mapped, 3-bit FVC codes), so the
// minimal useful request body is `{"workload":"goboard"}`.
type Config struct {
	// MainBytes is the main cache size in bytes (default 16384).
	MainBytes int `json:"main_bytes,omitempty"`
	// LineBytes is the line size in bytes (default 32).
	LineBytes int `json:"line_bytes,omitempty"`
	// Assoc is the main cache associativity (default 1, the DMC).
	Assoc int `json:"assoc,omitempty"`

	// FVCEntries attaches a frequent value cache (0 = none).
	FVCEntries int `json:"fvc_entries,omitempty"`
	// FVCBits is the FVC code width (default 3 when FVCEntries > 0).
	FVCBits int `json:"fvc_bits,omitempty"`
	// FrequentValues is an explicit frequent value table. When empty
	// (and OnlineFVTEvery is 0) the service derives the table from the
	// workload's profile, the paper's profile-directed selection.
	FrequentValues []uint32 `json:"frequent_values,omitempty"`
	// OnlineFVTEvery switches to online FVT identification, re-deriving
	// the table from a Space-Saving sketch every N accesses.
	OnlineFVTEvery uint64 `json:"online_fvt_every,omitempty"`

	// VictimEntries attaches a victim cache (mutually exclusive with
	// the FVC).
	VictimEntries int `json:"victim_entries,omitempty"`

	// L2Bytes places a unified L2 of this size behind the L1 level.
	L2Bytes int `json:"l2_bytes,omitempty"`
	// L2Assoc is the L2 associativity (default 4 when L2Bytes > 0).
	L2Assoc int `json:"l2_assoc,omitempty"`

	// Ablation knobs (zero values are the paper's design).
	NoWriteMissAllocate bool `json:"no_write_miss_allocate,omitempty"`
	SkipEmptyFootprints bool `json:"skip_empty_footprints,omitempty"`
}

// Normalized returns the config with defaults applied.
func (c Config) Normalized() Config {
	if c.MainBytes == 0 {
		c.MainBytes = 16 << 10
	}
	if c.LineBytes == 0 {
		c.LineBytes = 32
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	if c.FVCEntries > 0 && c.FVCBits == 0 {
		c.FVCBits = 3
	}
	if c.L2Bytes > 0 && c.L2Assoc == 0 {
		c.L2Assoc = 4
	}
	return c
}

// NeedsProfile reports whether the service must derive the config's
// frequent value table from the workload's profile.
func (c Config) NeedsProfile() bool {
	return c.FVCEntries > 0 && len(c.FrequentValues) == 0 && c.OnlineFVTEvery == 0
}

// Validate checks a normalized config's geometry without resolving
// profile-derived tables (those are materialized at execution time).
func (c Config) Validate() error {
	main := fvcache.CacheParams{SizeBytes: c.MainBytes, LineBytes: c.LineBytes, Assoc: c.Assoc}
	if err := main.Validate(); err != nil {
		return err
	}
	if c.FVCEntries > 0 {
		if c.VictimEntries > 0 {
			return fmt.Errorf("fvc and victim cache are mutually exclusive")
		}
		p := fvcache.FVCParams{Entries: c.FVCEntries, LineBytes: c.LineBytes, Bits: c.FVCBits}
		if err := p.Validate(); err != nil {
			return err
		}
		if len(c.FrequentValues) > fvcache.MaxFVTValues(c.FVCBits) {
			return fmt.Errorf("%d frequent values exceed the %d-bit code space (max %d)",
				len(c.FrequentValues), c.FVCBits, fvcache.MaxFVTValues(c.FVCBits))
		}
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("victim_entries must be >= 0")
	}
	if c.L2Bytes > 0 {
		l2 := fvcache.CacheParams{SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: c.L2Assoc}
		if err := l2.Validate(); err != nil {
			return err
		}
		if c.L2Bytes < c.MainBytes {
			return fmt.Errorf("l2_bytes (%d) must be >= main_bytes (%d)", c.L2Bytes, c.MainBytes)
		}
	}
	return nil
}

// Fingerprint is a stable identity for a normalized config. It
// deduplicates configurations across coalesced requests, keys the
// durable result cache (together with workload, scale and options),
// and places the config's results on exactly one node of a
// consistent-hash fleet. Two clients asking for the same geometry
// (including "profile-derived FVT", before the values are known)
// share one identity.
func (c Config) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "m%d/%d/%d", c.MainBytes, c.LineBytes, c.Assoc)
	if c.FVCEntries > 0 {
		fmt.Fprintf(&sb, " f%d/%db o%d", c.FVCEntries, c.FVCBits, c.OnlineFVTEvery)
		if len(c.FrequentValues) > 0 {
			fmt.Fprintf(&sb, " v%v", c.FrequentValues)
		} else if c.OnlineFVTEvery == 0 {
			sb.WriteString(" vprofile")
		}
	}
	if c.VictimEntries > 0 {
		fmt.Fprintf(&sb, " vc%d", c.VictimEntries)
	}
	if c.L2Bytes > 0 {
		fmt.Fprintf(&sb, " l2:%d/%d", c.L2Bytes, c.L2Assoc)
	}
	if c.NoWriteMissAllocate {
		sb.WriteString(" nowma")
	}
	if c.SkipEmptyFootprints {
		sb.WriteString(" skipempty")
	}
	return sb.String()
}

// Materialize maps the wire config onto the core configuration.
// values is the profile-derived frequent value table when
// NeedsProfile, ignored otherwise.
func (c Config) Materialize(values []uint32) fvcache.Config {
	cfg := fvcache.Config{
		Main:                fvcache.CacheParams{SizeBytes: c.MainBytes, LineBytes: c.LineBytes, Assoc: c.Assoc},
		VictimEntries:       c.VictimEntries,
		OnlineFVTEvery:      c.OnlineFVTEvery,
		NoWriteMissAllocate: c.NoWriteMissAllocate,
		SkipEmptyFootprints: c.SkipEmptyFootprints,
	}
	if c.FVCEntries > 0 {
		cfg.FVC = &fvcache.FVCParams{Entries: c.FVCEntries, LineBytes: c.LineBytes, Bits: c.FVCBits}
		switch {
		case len(c.FrequentValues) > 0:
			cfg.FrequentValues = c.FrequentValues
		case c.OnlineFVTEvery == 0:
			cfg.FrequentValues = values
		}
	}
	if c.L2Bytes > 0 {
		cfg.L2 = &fvcache.CacheParams{SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: c.L2Assoc}
	}
	return cfg
}

// MeasureRequest is the POST /v1/measure request body.
type MeasureRequest struct {
	Workload string `json:"workload"`
	// Scale is "test", "train" or "ref" (default "test").
	Scale string `json:"scale,omitempty"`
	// Config carries a single configuration, Configs one or many; a
	// request may use either (or neither, for the default geometry).
	Config  *Config         `json:"config,omitempty"`
	Configs []Config        `json:"configs,omitempty"`
	Options fvcache.Options `json:"options,omitempty"`
	// DeadlineMS bounds this request in milliseconds (also settable via
	// the ?deadline_ms= query parameter, which wins when both are
	// present). 0 means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Result is one configuration's measurement in a response.
type Result struct {
	Stats        fvcache.Stats `json:"stats"`
	Accesses     uint64        `json:"accesses"`
	MissRate     float64       `json:"miss_rate"`
	TrafficBytes uint64        `json:"traffic_bytes"`
	FVCFreqFrac  float64       `json:"fvc_freq_frac,omitempty"`
	FVCOccupancy float64       `json:"fvc_occupancy,omitempty"`
}

// BatchInfo tells a client how its request was executed — the
// coalescing and cache observability the serving benchmark classifies
// outcomes from.
type BatchInfo struct {
	// Requests is how many client requests this fused execution served.
	Requests int `json:"requests"`
	// Configs is how many distinct member systems the batch drove.
	Configs int `json:"configs"`
	// Coalesced is true when the request shared its execution with at
	// least one other request.
	Coalesced bool `json:"coalesced"`
	// CacheHits is how many of the batch's configs were served from the
	// durable result cache instead of being re-simulated;
	// CacheDiskHits is the subset faulted in from the disk tier.
	CacheHits     int `json:"cache_hits,omitempty"`
	CacheDiskHits int `json:"cache_disk_hits,omitempty"`
	// TraceID is the fused batch's trace ID, shared by every coalesced
	// member of the execution — clients correlate batch-mates (and the
	// batch's stage timeline at /debug/requests) through it.
	TraceID string `json:"trace_id,omitempty"`
	// Node identifies the fleet node that executed the batch (its base
	// URL); empty on a single-node server. Under owner-forwarding this
	// is the config fingerprint's owner, whichever node the client hit.
	Node string `json:"node,omitempty"`
}

// MeasureResponse is the POST /v1/measure response body.
type MeasureResponse struct {
	Workload string    `json:"workload"`
	Scale    string    `json:"scale"`
	Results  []Result  `json:"results"`
	Batch    BatchInfo `json:"batch"`

	// ForwardedBy is the node that proxied this response to its owner
	// (from the X-Fvcache-Forwarded-By header), set by the client SDK;
	// empty when the serving node owned the request itself.
	ForwardedBy string `json:"-"`
}

// SweepRequest is the POST /v1/sweep request body.
type SweepRequest struct {
	// Artifacts lists artifact IDs (empty = the full suite).
	Artifacts []string `json:"artifacts,omitempty"`
	Scale     string   `json:"scale,omitempty"`
	Markdown  bool     `json:"markdown,omitempty"`
	// Workers bounds per-artifact simulation parallelism.
	Workers int `json:"workers,omitempty"`
}

// SweepLine is one NDJSON line of a /v1/sweep stream: exactly one
// field is set per line — a completed artifact, the trailing summary,
// or (when the sweep fails after streaming began and the 200 status is
// already on the wire) a terminal error envelope.
type SweepLine struct {
	Artifact *fvcache.ArtifactResult `json:"artifact,omitempty"`
	Summary  *fvcache.SweepResult    `json:"summary,omitempty"`
	Error    *Error                  `json:"error_line,omitempty"`
}

// MRCRequest is the POST /v1/mrc request body.
type MRCRequest struct {
	Workload string `json:"workload"`
	// Scale is "test", "train" or "ref" (default "test").
	Scale string `json:"scale,omitempty"`
	// LineBytes is the modeled line size (default 32).
	LineBytes int `json:"line_bytes,omitempty"`
	// MaxSizeBytes is the top of the size ladder (default 1MiB).
	MaxSizeBytes int `json:"max_size_bytes,omitempty"`
	// SetCounts selects the set-indexed LRU families (powers of two,
	// 1 = fully associative; default [1]).
	SetCounts []int `json:"set_counts,omitempty"`
	// DeadlineMS bounds this request in milliseconds (the
	// ?deadline_ms= query parameter wins when both are present).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// MRCPoint is one streamed curve point of a /v1/mrc response.
type MRCPoint struct {
	Sets      int     `json:"sets"`
	SizeBytes int     `json:"size_bytes"`
	Assoc     int     `json:"assoc"`
	Misses    uint64  `json:"misses"`
	MissRatio float64 `json:"miss_ratio"`
}

// MRCSummary is the trailing NDJSON line of a /v1/mrc response.
type MRCSummary struct {
	Workload      string `json:"workload"`
	Scale         string `json:"scale"`
	LineBytes     int    `json:"line_bytes"`
	Accesses      uint64 `json:"accesses"`
	Loads         uint64 `json:"loads"`
	Stores        uint64 `json:"stores"`
	DistinctLines uint64 `json:"distinct_lines"`
	Curves        int    `json:"curves"`
	Points        int    `json:"points"`
	// Requests is how many coalesced clients this flight served;
	// Coalesced is true when it was more than one.
	Requests  int  `json:"requests"`
	Coalesced bool `json:"coalesced"`
	// CacheHit is true when the curve came from the durable result
	// cache instead of a fresh analysis pass.
	CacheHit bool `json:"cache_hit"`
	// TraceID is the flight's trace ID, shared by every coalesced
	// member of the singleflight.
	TraceID string `json:"trace_id,omitempty"`
	// Node identifies the fleet node whose analysis pass (or cache)
	// produced the curves; empty on a single-node server.
	Node string `json:"node,omitempty"`

	// ForwardedBy is the node that proxied this response to its owner,
	// set by the client SDK from the response headers.
	ForwardedBy string `json:"-"`
}

// MRCLine is one NDJSON line of a /v1/mrc stream: exactly one field is
// set per line.
type MRCLine struct {
	Point   *MRCPoint   `json:"point,omitempty"`
	Summary *MRCSummary `json:"summary,omitempty"`
	Error   *Error      `json:"error_line,omitempty"`
}
