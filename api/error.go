package api

import (
	"fmt"
	"time"
)

// Reason values carried by the error envelope. Retryable rejections
// name the backpressure mechanism that shed the request; terminal
// rejections name whose fault the failure is.
const (
	// ReasonOverloaded: the batch queue or sweep capacity is full (429).
	ReasonOverloaded = "overloaded"
	// ReasonDraining: the process is shutting down (503).
	ReasonDraining = "draining"
	// ReasonBreakerOpen: the (workload, scale) circuit breaker is
	// shedding traffic after repeated executor failures (503).
	ReasonBreakerOpen = "breaker_open"
	// ReasonDeadlineExceeded: the request's deadline expired (504).
	ReasonDeadlineExceeded = "deadline_exceeded"
	// ReasonBadRequest: the request itself is malformed or invalid;
	// retrying verbatim cannot succeed (4xx).
	ReasonBadRequest = "bad_request"
	// ReasonMethodNotAllowed: wrong HTTP method for the endpoint (405).
	ReasonMethodNotAllowed = "method_not_allowed"
	// ReasonInternal: the server failed executing a valid request (5xx
	// without a more specific cause).
	ReasonInternal = "internal"
)

// Headers used by the fleet's owner-forwarding path and by the client
// SDK's trace propagation.
const (
	// HeaderRequestID carries the request's trace ID, inbound and
	// echoed on every response.
	HeaderRequestID = "X-Request-Id"
	// HeaderForwarded marks a node-to-node forwarded request with the
	// origin node's URL. A request carrying it is never forwarded
	// again: one hop, maximum.
	HeaderForwarded = "X-Fvcache-Forwarded"
	// HeaderForwardedBy marks a response that was proxied to the
	// owning node, with the proxying node's URL.
	HeaderForwardedBy = "X-Fvcache-Forwarded-By"
)

// Error is the uniform error envelope: every non-2xx response from
// every endpoint carries exactly this JSON body. Retryable tells
// clients whether backing off and retrying can succeed (backpressure,
// drain, open breaker, deadline) or the request itself is at fault;
// when a retry can succeed the response also carries a Retry-After
// header. It implements the error interface so the client SDK returns
// it directly.
type Error struct {
	// Message is the human-readable error ("error" on the wire).
	Message string `json:"error"`
	// Reason is the machine-readable cause (one of the Reason consts).
	Reason string `json:"reason"`
	// Retryable reports whether backing off and retrying can succeed.
	Retryable bool `json:"retryable"`
	// TraceID echoes the request's trace ID (also in the X-Request-Id
	// response header) for correlation with /debug/requests.
	TraceID string `json:"trace_id"`

	// Status is the HTTP status the envelope arrived with. Set by the
	// client SDK; not part of the JSON body (the status line carries it).
	Status int `json:"-"`
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("fvcached: %d %s (%s)", e.Status, e.Message, e.Reason)
	}
	return fmt.Sprintf("fvcached: %s (%s)", e.Message, e.Reason)
}

// Temporary reports whether the failure is worth retrying.
func (e *Error) Temporary() bool { return e.Retryable }
