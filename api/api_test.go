package api

import (
	"encoding/json"
	"testing"
	"time"
)

// TestFingerprintCanonical: a config spelled with explicit defaults and
// one relying on zero values must share a fingerprint after
// normalization — the fleet's ownership, the coalescing window and the
// durable cache all key on it.
func TestFingerprintCanonical(t *testing.T) {
	implicit := Config{}.Normalized()
	explicit := Config{MainBytes: 16 << 10, LineBytes: 32, Assoc: 1}.Normalized()
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Errorf("default spellings diverge: %q vs %q", implicit.Fingerprint(), explicit.Fingerprint())
	}
	a := Config{MainBytes: 8192, FVCEntries: 64}.Normalized()
	b := Config{MainBytes: 8192, FVCEntries: 64, FVCBits: 3}.Normalized()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("default FVC bits diverge: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	c := Config{MainBytes: 8192, FVCEntries: 64, FVCBits: 4}.Normalized()
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("distinct FVC widths share a fingerprint")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MainBytes: 7},                                // not a power-of-two geometry
		{MainBytes: 8192, FVCEntries: 64, VictimEntries: 8}, // mutually exclusive
		{MainBytes: 8192, VictimEntries: -1},
	}
	for i, c := range bad {
		if err := c.Normalized().Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := (Config{}).Normalized().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestErrorEnvelopeJSON pins the wire shape: all four envelope keys are
// emitted even at their zero values, and the transport-only fields
// (Status, RetryAfter) never leak into the body.
func TestErrorEnvelopeJSON(t *testing.T) {
	e := Error{Message: "boom", Reason: ReasonBadRequest, Status: 400, RetryAfter: 3 * time.Second}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"error", "reason", "retryable", "trace_id"} {
		if _, ok := m[k]; !ok {
			t.Errorf("envelope key %q omitted: %s", k, data)
		}
	}
	for _, k := range []string{"Status", "status", "RetryAfter", "retry_after"} {
		if _, ok := m[k]; ok {
			t.Errorf("transport field %q leaked onto the wire: %s", k, data)
		}
	}
	var back Error
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Message != "boom" || back.Reason != ReasonBadRequest {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if e.Error() == "" || !(&Error{Retryable: true}).Temporary() {
		t.Error("Error()/Temporary() misbehave")
	}
}
