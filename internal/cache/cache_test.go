package cache

import (
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{
		{SizeBytes: 4096, LineBytes: 16, Assoc: 1},
		{SizeBytes: 16384, LineBytes: 32, Assoc: 2},
		{SizeBytes: 65536, LineBytes: 64, Assoc: 4},
		{SizeBytes: 64, LineBytes: 32, Assoc: 2}, // fully associative
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%v should validate: %v", p, err)
		}
	}
	bad := []Params{
		{SizeBytes: 0, LineBytes: 16, Assoc: 1},
		{SizeBytes: 4096, LineBytes: 0, Assoc: 1},
		{SizeBytes: 4096, LineBytes: 24, Assoc: 1}, // not power of two
		{SizeBytes: 4100, LineBytes: 16, Assoc: 1}, // not multiple
		{SizeBytes: 4096, LineBytes: 16, Assoc: 0}, // bad assoc
		{SizeBytes: 4096, LineBytes: 16, Assoc: 3}, // lines % assoc != 0... 256 lines, 256%3 != 0
		{SizeBytes: 4096, LineBytes: 16, Assoc: 2}, // fine actually
	}
	// Last entry above is actually valid; trim it.
	bad = bad[:len(bad)-1]
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%v should fail validation", p)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{SizeBytes: 16384, LineBytes: 32, Assoc: 2}
	if p.NumLines() != 512 {
		t.Errorf("NumLines = %d, want 512", p.NumLines())
	}
	if p.NumSets() != 256 {
		t.Errorf("NumSets = %d, want 256", p.NumSets())
	}
	if p.WordsPerLine() != 8 {
		t.Errorf("WordsPerLine = %d, want 8", p.WordsPerLine())
	}
	if got := p.String(); got != "16KB/32B/2-way" {
		t.Errorf("String = %q", got)
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int]string{
		128:     "128B",
		1024:    "1KB",
		3 << 10: "3KB",
		1 << 20: "1MB",
		1536:    "1536B", // not a whole KB
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestDirectMappedHitMiss(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1}) // 4 lines
	if c.Touch(0x0, false) {
		t.Error("cold cache must miss")
	}
	c.Insert(0x0, false)
	if !c.Touch(0x0, false) {
		t.Error("line just inserted must hit")
	}
	if !c.Touch(0xc, false) {
		t.Error("same line, different word must hit")
	}
	if c.Touch(0x10, false) {
		t.Error("next line must miss")
	}
	// 4 lines of 16B: addresses 0x0 and 0x40 conflict.
	c.Insert(0x40, false)
	if c.Touch(0x0, false) {
		t.Error("conflicting insert must evict the old line")
	}
	if !c.Touch(0x40, false) {
		t.Error("newly inserted conflicting line must hit")
	}
}

func TestInsertReturnsVictim(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	v := c.Insert(0x0, true)
	if v.Valid {
		t.Error("insert into empty slot must not report a victim")
	}
	v = c.Insert(0x40, false) // conflicts with 0x0
	if !v.Valid || v.Tag != c.LineAddr(0x0) || !v.Dirty {
		t.Errorf("victim = %+v, want valid dirty line 0", v)
	}
}

func TestStoreSetsDirty(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	c.Insert(0x0, false)
	c.Touch(0x4, true) // store hit dirties the line
	v := c.Insert(0x40, false)
	if !v.Dirty {
		t.Error("store hit must mark the line dirty")
	}
}

func TestSetAssocLRU(t *testing.T) {
	// 2 sets, 2-way: lines 0,2,4 map to set 0.
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 2})
	c.Insert(0x00, false) // line 0 -> set 0
	c.Insert(0x20, false) // line 2 -> set 0
	c.Touch(0x00, false)  // make line 0 MRU
	v := c.Insert(0x40, false)
	if !v.Valid || v.Tag != c.LineAddr(0x20) {
		t.Errorf("LRU eviction chose %+v, want line %#x", v, c.LineAddr(0x20))
	}
	if !c.Touch(0x00, false) {
		t.Error("MRU line must survive")
	}
	if !c.Touch(0x40, false) {
		t.Error("inserted line must be present")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 4})
	for _, a := range []uint32{0x0, 0x40, 0x80, 0xc0} {
		c.Insert(a, false)
	}
	for _, a := range []uint32{0x0, 0x40, 0x80, 0xc0} {
		if !c.Touch(a, false) {
			t.Errorf("line %#x should be present in FA cache", a)
		}
	}
	if c.ValidLines() != 4 {
		t.Errorf("ValidLines = %d, want 4", c.ValidLines())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	c.Insert(0x0, true)
	v := c.Invalidate(0x4)
	if !v.Valid || !v.Dirty {
		t.Errorf("Invalidate = %+v, want prior dirty line", v)
	}
	if c.Touch(0x0, false) {
		t.Error("invalidated line must miss")
	}
	if v := c.Invalidate(0x0); v.Valid {
		t.Error("second invalidate must find nothing")
	}
}

func TestLookupDoesNotMutate(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 2})
	c.Insert(0x00, false)
	c.Insert(0x20, false)
	// Lookup of 0x00 must NOT refresh LRU: inserting a conflicting
	// line should still evict 0x00 (it is LRU).
	if !c.Lookup(0x00) {
		t.Fatal("Lookup should find line 0")
	}
	v := c.Insert(0x40, false)
	if v.Tag != c.LineAddr(0x00) {
		t.Errorf("Lookup mutated LRU state: victim %+v", v)
	}
	if c.Lookup(0x1000) {
		t.Error("Lookup of absent line must be false")
	}
}

func TestFlush(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	c.Insert(0x0, true)
	c.Insert(0x10, false)
	if got := c.Flush(); got != 1 {
		t.Errorf("Flush returned %d dirty lines, want 1", got)
	}
	if c.ValidLines() != 0 {
		t.Error("flush must invalidate everything")
	}
}

func TestVisitValid(t *testing.T) {
	c := New(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	c.Insert(0x0, false)
	c.Insert(0x10, true)
	var n, dirty int
	c.VisitValid(func(ln Line) {
		n++
		if ln.Dirty {
			dirty++
		}
	})
	if n != 2 || dirty != 1 {
		t.Errorf("VisitValid saw %d lines (%d dirty), want 2 (1 dirty)", n, dirty)
	}
}

func TestLineAddrBaseAddrRoundTrip(t *testing.T) {
	c := New(Params{SizeBytes: 4096, LineBytes: 32, Assoc: 1})
	f := func(addr uint32) bool {
		tag := c.LineAddr(addr)
		base := c.BaseAddr(tag)
		return base <= addr && addr < base+32 && base%32 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The cache must behave identically regardless of access word within a
// line (property over random accesses: hit iff line present in a model
// map for direct-mapped).
func TestDirectMappedModelEquivalence(t *testing.T) {
	p := Params{SizeBytes: 512, LineBytes: 16, Assoc: 1}
	c := New(p)
	model := make(map[uint32]uint32) // set index -> line tag
	numSets := uint32(p.NumSets())
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			tag := a >> 4
			set := tag % numSets
			wantHit := false
			if got, ok := model[set]; ok && got == tag {
				wantHit = true
			}
			gotHit := c.Touch(a, false)
			if gotHit != wantHit {
				return false
			}
			if !gotHit {
				c.Insert(a, false)
				model[set] = tag
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
