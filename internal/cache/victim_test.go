package cache

import "testing"

func TestVictimCacheProbeExtracts(t *testing.T) {
	v := NewVictimCache(4, 32)
	v.Insert(5, true)
	ln, ok := v.Probe(5 * 32)
	if !ok || ln.Tag != 5 || !ln.Dirty {
		t.Fatalf("Probe = %+v/%v, want dirty line 5", ln, ok)
	}
	if _, ok := v.Probe(5 * 32); ok {
		t.Error("Probe must extract: second probe should miss")
	}
}

func TestVictimCacheMiss(t *testing.T) {
	v := NewVictimCache(4, 32)
	if _, ok := v.Probe(0x100); ok {
		t.Error("empty victim cache must miss")
	}
}

func TestVictimCacheLRUReplacement(t *testing.T) {
	v := NewVictimCache(2, 32)
	v.Insert(1, false)
	v.Insert(2, false)
	disp := v.Insert(3, false) // displaces LRU = line 1
	if !disp.Valid || disp.Tag != 1 {
		t.Errorf("displaced %+v, want line 1", disp)
	}
	if _, ok := v.Probe(2 * 32); !ok {
		t.Error("line 2 should remain")
	}
	if _, ok := v.Probe(3 * 32); !ok {
		t.Error("line 3 should remain")
	}
}

func TestVictimCacheInsertIntoEmpty(t *testing.T) {
	v := NewVictimCache(2, 32)
	if disp := v.Insert(9, false); disp.Valid {
		t.Errorf("insert into empty cache displaced %+v", disp)
	}
	if v.ValidLines() != 1 {
		t.Errorf("ValidLines = %d, want 1", v.ValidLines())
	}
}

func TestVictimCacheGeometry(t *testing.T) {
	v := NewVictimCache(16, 32)
	if v.Entries() != 16 || v.LineBytes() != 32 || v.SizeBytes() != 512 {
		t.Errorf("geometry: entries=%d line=%d size=%d", v.Entries(), v.LineBytes(), v.SizeBytes())
	}
}

func TestVictimCacheBadConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewVictimCache(0, 32) },
		func() { NewVictimCache(4, 0) },
		func() { NewVictimCache(4, 24) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad construction must panic")
				}
			}()
			fn()
		}()
	}
}

func TestClassifierCompulsory(t *testing.T) {
	cl := NewClassifier(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	if kind := cl.Access(0x0, false); kind != Compulsory {
		t.Errorf("first access = %v, want compulsory", kind)
	}
	if kind := cl.Access(0x4, false); kind != Hit {
		t.Errorf("second access to line = %v, want hit", kind)
	}
}

func TestClassifierConflict(t *testing.T) {
	// 4-line DM cache; 0x0 and 0x40 conflict but fit in FA capacity.
	cl := NewClassifier(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	cl.Access(0x00, false) // compulsory
	cl.Access(0x40, false) // compulsory, evicts 0x00 in DM
	if kind := cl.Access(0x00, false); kind != Conflict {
		t.Errorf("re-access = %v, want conflict", kind)
	}
}

func TestClassifierCapacity(t *testing.T) {
	// 2-line DM cache; touch 4 distinct lines cyclically: second round
	// misses are capacity (FA LRU of 2 lines also misses).
	cl := NewClassifier(Params{SizeBytes: 32, LineBytes: 16, Assoc: 1})
	addrs := []uint32{0x00, 0x10, 0x20, 0x30}
	for _, a := range addrs {
		cl.Access(a, false)
	}
	if kind := cl.Access(0x00, false); kind != Capacity {
		t.Errorf("cyclic re-access = %v, want capacity", kind)
	}
}

func TestClassifierTallies(t *testing.T) {
	cl := NewClassifier(Params{SizeBytes: 64, LineBytes: 16, Assoc: 1})
	for _, a := range []uint32{0x00, 0x00, 0x40, 0x00} {
		cl.Access(a, false)
	}
	if cl.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", cl.Accesses())
	}
	if cl.Misses() != 3 {
		t.Errorf("Misses = %d, want 3", cl.Misses())
	}
	if cl.Counts[Hit] != 1 || cl.Counts[Compulsory] != 2 || cl.Counts[Conflict] != 1 {
		t.Errorf("Counts = %v", cl.Counts)
	}
}

func TestMissKindString(t *testing.T) {
	want := map[MissKind]string{Hit: "hit", Compulsory: "compulsory", Capacity: "capacity", Conflict: "conflict", MissKind(9): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
