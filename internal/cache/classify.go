package cache

import "container/list"

// MissKind classifies a cache miss per the classic three-C model.
type MissKind uint8

const (
	// Hit means the access was not a miss.
	Hit MissKind = iota
	// Compulsory is the first-ever reference to a line.
	Compulsory
	// Capacity misses would occur even in a fully-associative LRU
	// cache of the same capacity.
	Capacity
	// Conflict misses are the remainder: caused by limited
	// associativity.
	Conflict
)

// String names the kind.
func (k MissKind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	}
	return "unknown"
}

// Classifier runs a shadow simulation that classifies every access's
// miss kind for a given geometry. It is independent of the real cache
// hierarchy: feed it the same access stream and read the tallies.
//
// The shadow is a fully-associative LRU cache with the same capacity
// and line size as the target geometry plus a seen-set for compulsory
// detection; the target cache itself decides hit vs miss.
type Classifier struct {
	target *Cache
	seen   map[uint32]struct{}

	// Fully-associative LRU shadow.
	faLines int
	faList  *list.List               // front = MRU, values are line tags
	faIndex map[uint32]*list.Element // tag -> element

	Counts [4]uint64 // indexed by MissKind
}

// NewClassifier builds a classifier for geometry p.
func NewClassifier(p Params) *Classifier {
	return &Classifier{
		target:  New(p),
		seen:    make(map[uint32]struct{}),
		faLines: p.NumLines(),
		faList:  list.New(),
		faIndex: make(map[uint32]*list.Element),
	}
}

// faTouch simulates the fully-associative shadow and reports a hit.
func (c *Classifier) faTouch(tag uint32) bool {
	if el, ok := c.faIndex[tag]; ok {
		c.faList.MoveToFront(el)
		return true
	}
	if c.faList.Len() >= c.faLines {
		back := c.faList.Back()
		delete(c.faIndex, back.Value.(uint32))
		c.faList.Remove(back)
	}
	c.faIndex[tag] = c.faList.PushFront(tag)
	return false
}

// Access classifies one access and updates the tallies.
func (c *Classifier) Access(addr uint32, store bool) MissKind {
	tag := c.target.LineAddr(addr)
	targetHit := c.target.Touch(addr, store)
	if !targetHit {
		c.target.Insert(addr, store)
	}
	_, seenBefore := c.seen[tag]
	c.seen[tag] = struct{}{}
	faHit := c.faTouch(tag)

	var kind MissKind
	switch {
	case targetHit:
		kind = Hit
	case !seenBefore:
		kind = Compulsory
	case !faHit:
		kind = Capacity
	default:
		kind = Conflict
	}
	c.Counts[kind]++
	return kind
}

// Misses returns the total number of misses of all kinds.
func (c *Classifier) Misses() uint64 {
	return c.Counts[Compulsory] + c.Counts[Capacity] + c.Counts[Conflict]
}

// Accesses returns the total number of classified accesses.
func (c *Classifier) Accesses() uint64 { return c.Misses() + c.Counts[Hit] }
