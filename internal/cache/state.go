package cache

// Canonical state snapshots for the chunk-parallel replay engine.
//
// Two replays that took different paths to the same behavioral cache
// state (e.g. a speculatively warmed worker vs. the serial reference)
// hold different absolute lru stamps and may hold the same lines in
// different ways of a set. LRU comparisons only ever happen within a
// set, so what determines future behavior is exactly: the set of
// (Tag, Dirty) resident per cache set, plus their relative LRU order.
// CaptureState serializes precisely that — per set, valid lines in
// oldest-first LRU order with stamps zeroed, padded with zero Lines to
// the set's associativity — so canonical snapshots compare with plain
// element equality, and RestoreState re-stamps them to rebuild a cache
// that behaves identically from that point on.

// captureSet appends set's canonical form to dst: valid lines
// oldest-first with lru zeroed, then zero-Line padding. Insertion sort
// — sets are at most a few ways wide.
func captureSet(dst []Line, set []Line) []Line {
	base := len(dst)
	for i := range set {
		if !set[i].Valid {
			continue
		}
		ln := set[i]
		j := len(dst)
		dst = append(dst, Line{})
		for j > base && dst[j-1].lru > ln.lru {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = ln
	}
	for k := base; k < len(dst); k++ {
		dst[k].lru = 0
	}
	for len(dst)-base < len(set) {
		dst = append(dst, Line{})
	}
	return dst
}

// restoreSet fills set from its canonical form, stamping valid lines
// in order with a fresh clock. Returns the advanced clock.
func restoreSet(set []Line, src []Line, clock uint64) uint64 {
	for i := range set {
		ln := src[i]
		if ln.Valid {
			clock++
			ln.lru = clock
		}
		set[i] = ln
	}
	return clock
}

// CaptureState appends the cache's canonical state (NumLines entries)
// to dst and returns the extended slice. Pass dst[:0] of a reused
// buffer for an allocation-free capture.
func (c *Cache) CaptureState(dst []Line) []Line {
	for _, set := range c.sets {
		dst = captureSet(dst, set)
	}
	return dst
}

// RestoreState overwrites the cache's state from a canonical snapshot
// produced by CaptureState on a cache of identical geometry. The LRU
// clock restarts from zero; behavior from this point on is identical
// to the captured cache's.
func (c *Cache) RestoreState(src []Line) {
	if len(src) != len(c.lines) {
		panic("cache: RestoreState snapshot geometry mismatch")
	}
	c.clock = 0
	for i, set := range c.sets {
		c.clock = restoreSet(set, src[i*c.p.Assoc:(i+1)*c.p.Assoc], c.clock)
	}
}

// CaptureState appends the victim cache's canonical state (Entries()
// entries, one fully-associative set) to dst.
func (v *VictimCache) CaptureState(dst []Line) []Line {
	return captureSet(dst, v.entries)
}

// RestoreState overwrites the victim cache's state from a canonical
// snapshot of the same capacity.
func (v *VictimCache) RestoreState(src []Line) {
	if len(src) != len(v.entries) {
		panic("cache: victim RestoreState snapshot capacity mismatch")
	}
	v.clock = restoreSet(v.entries, src, 0)
}
