// Package cache implements the conventional write-back, write-allocate
// cache models used as the baseline and main cache in the paper's
// evaluation: direct-mapped and N-way set-associative caches with LRU
// replacement, a fully-associative victim cache (Jouppi, ISCA 1990),
// and a shadow-simulation miss classifier.
//
// The caches are trace-driven metadata models: they track tags, valid
// and dirty bits, but not data — architectural values live in the
// memsim.Memory backing store, which is exact because the trace carries
// the value of every access.
package cache

import (
	"fmt"

	"fvcache/internal/trace"
)

// Params describes a cache geometry.
type Params struct {
	// SizeBytes is the total data capacity in bytes.
	SizeBytes int
	// LineBytes is the line (block) size in bytes.
	LineBytes int
	// Assoc is the set associativity; 1 means direct mapped. Assoc ==
	// NumLines() means fully associative.
	Assoc int
}

// Validate checks that the geometry is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.SizeBytes <= 0:
		return fmt.Errorf("cache: SizeBytes must be positive, got %d", p.SizeBytes)
	case p.LineBytes < trace.WordBytes:
		return fmt.Errorf("cache: LineBytes must be >= %d, got %d", trace.WordBytes, p.LineBytes)
	case p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes must be a power of two, got %d", p.LineBytes)
	case p.SizeBytes%p.LineBytes != 0:
		return fmt.Errorf("cache: SizeBytes %d not a multiple of LineBytes %d", p.SizeBytes, p.LineBytes)
	case p.Assoc <= 0:
		return fmt.Errorf("cache: Assoc must be positive, got %d", p.Assoc)
	case p.NumLines()%p.Assoc != 0:
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", p.NumLines(), p.Assoc)
	case p.NumSets()&(p.NumSets()-1) != 0:
		return fmt.Errorf("cache: number of sets %d must be a power of two", p.NumSets())
	}
	return nil
}

// NumLines returns the total number of lines.
func (p Params) NumLines() int { return p.SizeBytes / p.LineBytes }

// NumSets returns the number of sets.
func (p Params) NumSets() int { return p.NumLines() / p.Assoc }

// WordsPerLine returns the number of 32-bit words per line.
func (p Params) WordsPerLine() int { return p.LineBytes / trace.WordBytes }

// String renders the geometry, e.g. "16KB/32B/2-way".
func (p Params) String() string {
	return fmt.Sprintf("%s/%dB/%d-way", FormatSize(p.SizeBytes), p.LineBytes, p.Assoc)
}

// FormatSize renders a byte count as a compact human unit.
func FormatSize(b int) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// Line is one cache line's metadata.
type Line struct {
	Tag   uint32 // line address (addr / LineBytes); full address tag
	Valid bool
	Dirty bool
	lru   uint64 // last-touch stamp for LRU
}

// Cache is a write-back, write-allocate cache. It stores metadata only.
type Cache struct {
	p     Params
	sets  [][]Line
	lines []Line // the flat backing array the sets are carved from
	clock uint64

	setMask   uint32
	lineShift uint32
}

// New builds a cache with the given geometry; it panics on invalid
// Params (callers validate user input with Params.Validate first).
func New(p Params) *Cache {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]Line, p.NumSets())
	backing := make([]Line, p.NumLines())
	rest := backing
	for i := range sets {
		sets[i], rest = rest[:p.Assoc:p.Assoc], rest[p.Assoc:]
	}
	return &Cache{
		p:         p,
		sets:      sets,
		lines:     backing,
		setMask:   uint32(p.NumSets() - 1),
		lineShift: uint32(log2(p.LineBytes)),
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Params returns the cache geometry.
func (c *Cache) Params() Params { return c.p }

// LineAddr returns the line address (tag) for a byte address.
func (c *Cache) LineAddr(addr uint32) uint32 { return addr >> c.lineShift }

// BaseAddr returns the first byte address of the line with tag t.
func (c *Cache) BaseAddr(tag uint32) uint32 { return tag << c.lineShift }

// setIndex maps a line address to its set (setMask is 0 for a single
// set, and x&0 == 0, so fully-associative geometries need no branch).
func (c *Cache) setIndex(lineAddr uint32) uint32 {
	return lineAddr & c.setMask
}

// Lookup reports whether the line containing addr is present, without
// changing any state.
func (c *Cache) Lookup(addr uint32) bool {
	la := c.setIndex(c.LineAddr(addr))
	tag := c.LineAddr(addr)
	for i := range c.sets[la] {
		ln := &c.sets[la][i]
		if ln.Valid && ln.Tag == tag {
			return true
		}
	}
	return false
}

// Touch looks up the line containing addr and, on a hit, refreshes its
// LRU stamp and applies dirty for stores. It returns whether it hit.
//
// The direct-mapped probe is kept small enough to inline into the
// per-access simulation loop (one candidate way, and no LRU clock to
// maintain since the victim is always that way); wider sets take the
// outlined associative path.
func (c *Cache) Touch(addr uint32, store bool) bool {
	tag := addr >> c.lineShift
	set := c.sets[tag&c.setMask]
	if len(set) == 1 {
		ln := &set[0]
		if ln.Valid && ln.Tag == tag {
			if store {
				ln.Dirty = true
			}
			return true
		}
		return false
	}
	return c.touchAssoc(set, tag, store)
}

//go:noinline
func (c *Cache) touchAssoc(set []Line, tag uint32, store bool) bool {
	for i := range set {
		ln := &set[i]
		if ln.Valid && ln.Tag == tag {
			c.clock++
			ln.lru = c.clock
			if store {
				ln.Dirty = true
			}
			return true
		}
	}
	return false
}

// DMView is a flattened probe handle for a direct-mapped cache. Its
// Touch is small enough for the compiler to inline into the simulator's
// per-access loop, where the generic Touch (which must handle arbitrary
// associativity) is not. The view aliases the cache's line storage, so
// it stays coherent across Insert/Invalidate/Flush; it is invalidated
// only if the cache were rebuilt (caches never are).
type DMView struct {
	lines []Line
	shift uint32
	mask  uint32
}

// DM returns a direct-mapped fast-probe view, or ok == false when the
// cache is not direct mapped.
func (c *Cache) DM() (DMView, bool) {
	if c.p.Assoc != 1 {
		return DMView{}, false
	}
	return DMView{lines: c.lines, shift: c.lineShift, mask: c.setMask}, true
}

// Touch is Cache.Touch for the direct-mapped geometry: one candidate
// way, no LRU clock to maintain.
func (v DMView) Touch(addr uint32, store bool) bool {
	tag := addr >> v.shift
	ln := &v.lines[tag&v.mask]
	if ln.Valid && ln.Tag == tag {
		if store {
			ln.Dirty = true
		}
		return true
	}
	return false
}

// Geometry exposes the view's index function (tag = addr >> shift,
// set = tag & mask) so batched replay can group same-geometry views
// and compute the index once for the whole group.
func (v DMView) Geometry() (shift, mask uint32) { return v.shift, v.mask }

// LineAt returns the backing line at set index i. The pointer aliases
// the cache's own state: batched replay uses it to sync its packed
// probe filter with the authoritative line on misses and at chunk
// boundaries.
func (v DMView) LineAt(i uint32) *Line { return &v.lines[i] }

// Victim describes a line evicted by Insert.
type Victim struct {
	Tag   uint32 // line address of the evicted line
	Dirty bool
	Valid bool // false when the replaced slot was empty (no eviction)
}

// Insert places the line containing addr into the cache, marking it
// dirty if dirty is set, and returns the victim line that was displaced
// (Victim.Valid == false when an empty way was used).
func (c *Cache) Insert(addr uint32, dirty bool) Victim {
	tag := c.LineAddr(addr)
	set := c.sets[c.setIndex(tag)]
	// Reuse an invalid way if present, else evict the LRU way.
	victim := &set[0]
	for i := range set {
		ln := &set[i]
		if !ln.Valid {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	out := Victim{Tag: victim.Tag, Dirty: victim.Dirty, Valid: victim.Valid}
	c.clock++
	*victim = Line{Tag: tag, Valid: true, Dirty: dirty, lru: c.clock}
	return out
}

// Invalidate removes the line containing addr if present, returning its
// prior state.
func (c *Cache) Invalidate(addr uint32) Victim {
	tag := c.LineAddr(addr)
	set := c.sets[c.setIndex(tag)]
	for i := range set {
		ln := &set[i]
		if ln.Valid && ln.Tag == tag {
			out := Victim{Tag: ln.Tag, Dirty: ln.Dirty, Valid: true}
			*ln = Line{}
			return out
		}
	}
	return Victim{}
}

// ValidLines returns the number of valid lines (for occupancy stats).
func (c *Cache) ValidLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid {
				n++
			}
		}
	}
	return n
}

// VisitValid calls fn for every valid line.
func (c *Cache) VisitValid(fn func(Line)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid {
				fn(set[i])
			}
		}
	}
}

// Flush invalidates every line, returning the number of dirty lines
// that would have been written back.
func (c *Cache) Flush() int {
	dirty := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid && set[i].Dirty {
				dirty++
			}
			set[i] = Line{}
		}
	}
	return dirty
}
