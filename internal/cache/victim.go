package cache

// VictimCache is a small fully-associative cache of lines recently
// evicted from the main cache, after Jouppi (ISCA 1990). On a main
// cache miss that hits in the victim cache, the two lines are swapped.
//
// Like Cache, it models metadata only (tags, valid, dirty) with LRU
// replacement.
type VictimCache struct {
	entries   []Line
	lineBytes int
	lineShift uint32
	clock     uint64
}

// NewVictimCache builds a victim cache with the given number of entries
// and line size in bytes (which must match the main cache's line size).
func NewVictimCache(entries, lineBytes int) *VictimCache {
	if entries <= 0 {
		panic("cache: victim cache needs at least one entry")
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("cache: victim cache line size must be a positive power of two")
	}
	return &VictimCache{
		entries:   make([]Line, entries),
		lineBytes: lineBytes,
		lineShift: uint32(log2(lineBytes)),
	}
}

// Entries returns the capacity in lines.
func (v *VictimCache) Entries() int { return len(v.entries) }

// LineBytes returns the line size in bytes.
func (v *VictimCache) LineBytes() int { return v.lineBytes }

// SizeBytes returns the data capacity in bytes.
func (v *VictimCache) SizeBytes() int { return len(v.entries) * v.lineBytes }

// lineAddr returns the line address for a byte address.
func (v *VictimCache) lineAddr(addr uint32) uint32 { return addr >> v.lineShift }

// Probe removes and returns the entry holding addr's line, if present.
// The swap semantics of a victim hit mean the line always leaves the
// victim cache (it moves into the main cache), so Probe extracts.
func (v *VictimCache) Probe(addr uint32) (Line, bool) {
	tag := v.lineAddr(addr)
	for i := range v.entries {
		e := &v.entries[i]
		if e.Valid && e.Tag == tag {
			out := *e
			*e = Line{}
			return out, true
		}
	}
	return Line{}, false
}

// Insert stores an evicted main-cache line (given by its line address)
// and returns the displaced victim, if any.
func (v *VictimCache) Insert(lineTag uint32, dirty bool) Victim {
	slot := &v.entries[0]
	for i := range v.entries {
		e := &v.entries[i]
		if !e.Valid {
			slot = e
			break
		}
		if e.lru < slot.lru {
			slot = e
		}
	}
	out := Victim{Tag: slot.Tag, Dirty: slot.Dirty, Valid: slot.Valid}
	v.clock++
	*slot = Line{Tag: lineTag, Valid: true, Dirty: dirty, lru: v.clock}
	return out
}

// ValidLines returns the number of occupied entries.
func (v *VictimCache) ValidLines() int {
	n := 0
	for i := range v.entries {
		if v.entries[i].Valid {
			n++
		}
	}
	return n
}
