// Package fleet partitions the fvcached result/work space across a
// static set of peer nodes with a consistent-hash ring.
//
// Ownership keys are the serving layer's normalized config
// fingerprints (workload|scale|config-fingerprint|opts), so each
// (workload, scale, config) combination is computed and cached on
// exactly one node and the fleet's tiered result caches partition the
// key space instead of duplicating it.
//
// The ring hangs VNodes virtual nodes per peer on a 64-bit FNV-1a hash
// circle; a key is owned by the first vnode clockwise from its hash.
// Placement is derived purely from the sorted peer URL list, so every
// node computes the identical ring regardless of the order its -peers
// flag listed them, and the ring is stable across restarts.
//
// Membership is static (no gossip, no rebalancing): when a peer is
// unreachable the forwarding layer falls back to executing locally —
// it does NOT reassign ownership to the next vnode, which would let
// two live nodes both claim a key and split its cache. Per-peer health
// here is a consecutive-failure breaker with a cooldown and a
// half-open probe, mirroring the serving layer's per-workload breaker.
package fleet

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Options configures a Fleet.
type Options struct {
	// Self is this node's own advertised URL. Required; added to Peers
	// if absent.
	Self string
	// Peers is the full static membership, including or excluding Self.
	Peers []string
	// VNodes is the number of virtual nodes per peer (default 64).
	VNodes int
	// FailThreshold is the number of consecutive forward failures that
	// mark a peer down (default 3).
	FailThreshold int
	// Cooldown is how long a down peer stays down before a half-open
	// probe is allowed (default 5s).
	Cooldown time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

// PeerState describes a peer's health.
type PeerState string

const (
	// StateSelf: this node itself; always available.
	StateSelf PeerState = "self"
	// StateUp: forwarding to the peer is succeeding.
	StateUp PeerState = "up"
	// StateDown: consecutive failures crossed the threshold; the peer
	// is skipped until the cooldown elapses.
	StateDown PeerState = "down"
	// StateProbing: cooldown elapsed; the next forward is a half-open
	// probe (success resets the peer, failure re-downs it).
	StateProbing PeerState = "probing"
)

// Peer is one fleet member.
type Peer struct {
	url  string
	self bool

	fails     atomic.Int32 // consecutive forward failures
	downUntil atomic.Int64 // unix nanos until which the peer is down; 0 = up
}

// URL returns the peer's advertised base URL.
func (p *Peer) URL() string { return p.url }

// Self reports whether the peer is this node itself.
func (p *Peer) Self() bool { return p.self }

type vnode struct {
	hash uint64
	peer *Peer
}

// Fleet is an immutable ring over a static peer set plus mutable
// per-peer health. Safe for concurrent use.
type Fleet struct {
	self  *Peer
	peers []*Peer // sorted by URL
	ring  []vnode // sorted by hash
	opt   Options
}

// New validates and normalizes the membership and builds the ring.
func New(opt Options) (*Fleet, error) {
	if opt.Self == "" {
		return nil, fmt.Errorf("fleet: Self URL is required")
	}
	if opt.VNodes <= 0 {
		opt.VNodes = 64
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = 3
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 5 * time.Second
	}
	if opt.now == nil {
		opt.now = time.Now
	}

	self, err := normalizeURL(opt.Self)
	if err != nil {
		return nil, fmt.Errorf("fleet: self %q: %w", opt.Self, err)
	}
	seen := map[string]bool{self: true}
	urls := []string{self}
	for _, raw := range opt.Peers {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", raw, err)
		}
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	// The sorted URL list is the sole input to placement: every node
	// derives the identical ring from the same membership.
	sort.Strings(urls)

	f := &Fleet{opt: opt}
	for _, u := range urls {
		p := &Peer{url: u, self: u == self}
		if p.self {
			f.self = p
		}
		f.peers = append(f.peers, p)
		for i := 0; i < opt.VNodes; i++ {
			f.ring = append(f.ring, vnode{hash: hash64(fmt.Sprintf("%s#%d", u, i)), peer: p})
		}
	}
	sort.Slice(f.ring, func(i, j int) bool {
		if f.ring[i].hash != f.ring[j].hash {
			return f.ring[i].hash < f.ring[j].hash
		}
		return f.ring[i].peer.url < f.ring[j].peer.url
	})
	return f, nil
}

// Size returns the number of fleet members (including self).
func (f *Fleet) Size() int { return len(f.peers) }

// SelfURL returns this node's normalized advertised URL.
func (f *Fleet) SelfURL() string { return f.self.url }

// Peers returns all members sorted by URL.
func (f *Fleet) Peers() []*Peer { return f.peers }

// Owner returns the peer owning key: the first vnode clockwise from
// the key's hash on the ring.
func (f *Fleet) Owner(key string) *Peer {
	h := hash64(key)
	i := sort.Search(len(f.ring), func(i int) bool { return f.ring[i].hash >= h })
	if i == len(f.ring) {
		i = 0 // wrap around the top of the circle
	}
	return f.ring[i].peer
}

// State returns p's current health state.
func (f *Fleet) State(p *Peer) PeerState {
	if p.self {
		return StateSelf
	}
	du := p.downUntil.Load()
	switch {
	case du == 0:
		return StateUp
	case f.opt.now().UnixNano() < du:
		return StateDown
	default:
		return StateProbing
	}
}

// Available reports whether forwarding to p is worth attempting now.
// Self is always available; a down peer becomes available again
// (half-open) once its cooldown elapses.
func (f *Fleet) Available(p *Peer) bool {
	s := f.State(p)
	return s != StateDown
}

// ReportSuccess records a successful forward to p, resetting its
// failure streak (and closing a half-open probe).
func (f *Fleet) ReportSuccess(p *Peer) {
	p.fails.Store(0)
	p.downUntil.Store(0)
}

// ReportFailure records a failed forward to p. Crossing the threshold
// (or failing a half-open probe) marks p down for the cooldown.
func (f *Fleet) ReportFailure(p *Peer) {
	wasProbing := p.downUntil.Load() != 0
	n := p.fails.Add(1)
	if wasProbing || int(n) >= f.opt.FailThreshold {
		p.downUntil.Store(f.opt.now().Add(f.opt.Cooldown).UnixNano())
	}
}

// PeerSnapshot is one peer's row in a fleet snapshot.
type PeerSnapshot struct {
	URL    string    `json:"url"`
	Self   bool      `json:"self"`
	State  PeerState `json:"state"`
	Fails  int       `json:"consecutive_failures"`
	VNodes int       `json:"vnodes"`
	// Share is the fraction of the 64-bit hash space the peer's vnode
	// arcs cover — the expected fraction of keys it owns.
	Share float64 `json:"share"`
}

// Snapshot returns the ring layout and per-peer health for
// /debug/fleet.
func (f *Fleet) Snapshot() []PeerSnapshot {
	share := map[*Peer]float64{}
	const whole = float64(1 << 63) * 2 // 2^64
	for i, vn := range f.ring {
		// The arc ending at vn.hash (owned by vn.peer) starts at the
		// previous vnode's hash; the first arc wraps from the last.
		var arc uint64
		if i == 0 {
			arc = vn.hash - f.ring[len(f.ring)-1].hash // wraps mod 2^64
		} else {
			arc = vn.hash - f.ring[i-1].hash
		}
		share[vn.peer] += float64(arc) / whole
	}
	out := make([]PeerSnapshot, 0, len(f.peers))
	for _, p := range f.peers {
		out = append(out, PeerSnapshot{
			URL:    p.url,
			Self:   p.self,
			State:  f.State(p),
			Fails:  int(p.fails.Load()),
			VNodes: f.opt.VNodes,
			Share:  share[p],
		})
	}
	return out
}

// hash64 is 64-bit FNV-1a finished with a splitmix64-style avalanche:
// raw FNV clumps on near-identical strings (vnode labels differ only
// in a trailing index), and clumped vnodes skew the ring badly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// normalizeURL canonicalizes a peer URL (scheme required, host
// required, trailing slash and path stripped) so equality and ring
// placement are insensitive to spelling.
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		// A bare host:port parses badly (the port looks like a path
		// colon); retry with an implied http scheme.
		var err2 error
		u, err2 = url.Parse("http://" + raw)
		if err2 != nil {
			if err != nil {
				return "", err
			}
			return "", err2
		}
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("scheme must be http or https")
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	return u.Scheme + "://" + strings.ToLower(u.Host), nil
}
