package fleet

import (
	"fmt"
	"testing"
	"time"
)

func mustNew(t *testing.T, opt Options) *Fleet {
	t.Helper()
	f, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

var threePeers = []string{
	"http://127.0.0.1:9001",
	"http://127.0.0.1:9002",
	"http://127.0.0.1:9003",
}

func TestRingDeterministicAcrossNodes(t *testing.T) {
	// Every node, regardless of which member it is and of peer-flag
	// order, must compute the identical ownership function.
	a := mustNew(t, Options{Self: threePeers[0], Peers: threePeers})
	b := mustNew(t, Options{Self: threePeers[1], Peers: []string{threePeers[2], threePeers[0], threePeers[1]}})
	c := mustNew(t, Options{Self: threePeers[2], Peers: []string{threePeers[1], threePeers[0]}})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("goboard|small|cfg-%d|opts:x", i)
		oa, ob, oc := a.Owner(key).URL(), b.Owner(key).URL(), c.Owner(key).URL()
		if oa != ob || oa != oc {
			t.Fatalf("key %q: owners disagree: %s / %s / %s", key, oa, ob, oc)
		}
	}
}

func TestRingNormalizesPeerSpelling(t *testing.T) {
	f := mustNew(t, Options{
		Self:  "127.0.0.1:9001",
		Peers: []string{"http://127.0.0.1:9002/", "HTTP://127.0.0.1:9002", "http://127.0.0.1:9003"},
	})
	if got := f.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3 (duplicate spellings should collapse)", got)
	}
	if f.SelfURL() != "http://127.0.0.1:9001" {
		t.Fatalf("SelfURL = %q", f.SelfURL())
	}
}

func TestRingBalance(t *testing.T) {
	f := mustNew(t, Options{Self: threePeers[0], Peers: threePeers})
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[f.Owner(fmt.Sprintf("m4/2/64 f1/32b o0 v[10] |opts:%d", i)).URL()]++
	}
	for u, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("peer %s owns %.1f%% of keys; want roughly a third", u, 100*frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d peers received keys", len(counts))
	}
}

func TestRingRemapMinimality(t *testing.T) {
	// Growing the fleet from 3 to 4 nodes must remap roughly 1/4 of
	// keys, not reshuffle everything (the consistent-hashing property).
	small := mustNew(t, Options{Self: threePeers[0], Peers: threePeers})
	big := mustNew(t, Options{Self: threePeers[0], Peers: append([]string{"http://127.0.0.1:9004"}, threePeers...)})
	const n = 10000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if small.Owner(key).URL() != big.Owner(key).URL() {
			moved++
		}
	}
	frac := float64(moved) / n
	if frac > 0.40 {
		t.Fatalf("%.1f%% of keys remapped on 3→4 growth; want ≈25%%", 100*frac)
	}
	if frac < 0.10 {
		t.Fatalf("only %.1f%% of keys remapped; the new node is underweighted", 100*frac)
	}
}

func TestHealthBreaker(t *testing.T) {
	now := time.Unix(0, 0)
	f := mustNew(t, Options{
		Self: threePeers[0], Peers: threePeers,
		FailThreshold: 3, Cooldown: 5 * time.Second,
		now: func() time.Time { return now },
	})
	var peer *Peer
	for _, p := range f.Peers() {
		if !p.Self() {
			peer = p
			break
		}
	}

	if !f.Available(peer) || f.State(peer) != StateUp {
		t.Fatalf("fresh peer should be up")
	}
	f.ReportFailure(peer)
	f.ReportFailure(peer)
	if f.State(peer) != StateUp {
		t.Fatalf("2 failures < threshold should stay up, got %s", f.State(peer))
	}
	f.ReportFailure(peer)
	if f.State(peer) != StateDown || f.Available(peer) {
		t.Fatalf("3rd failure should open the breaker, got %s", f.State(peer))
	}

	now = now.Add(6 * time.Second)
	if f.State(peer) != StateProbing || !f.Available(peer) {
		t.Fatalf("after cooldown the peer should be probing, got %s", f.State(peer))
	}
	// A failed probe re-downs immediately, without needing a fresh streak.
	f.ReportFailure(peer)
	if f.State(peer) != StateDown {
		t.Fatalf("failed probe should re-open, got %s", f.State(peer))
	}

	now = now.Add(6 * time.Second)
	f.ReportSuccess(peer)
	if f.State(peer) != StateUp || peer.fails.Load() != 0 {
		t.Fatalf("successful probe should fully reset, got %s fails=%d", f.State(peer), peer.fails.Load())
	}

	if self := f.self; f.State(self) != StateSelf || !f.Available(self) {
		t.Fatalf("self must always be available")
	}
}

func TestSnapshotShares(t *testing.T) {
	f := mustNew(t, Options{Self: threePeers[0], Peers: threePeers})
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows", len(snap))
	}
	total := 0.0
	for _, row := range snap {
		total += row.Share
		if row.Share < 0.10 || row.Share > 0.60 {
			t.Errorf("peer %s share %.3f out of plausible range", row.URL, row.Share)
		}
		if row.VNodes != 64 {
			t.Errorf("peer %s vnodes = %d", row.URL, row.VNodes)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.4f, want 1", total)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing Self should error")
	}
	if _, err := New(Options{Self: "ftp://x"}); err == nil {
		t.Fatal("non-http scheme should error")
	}
	if _, err := New(Options{Self: "http://ok:1", Peers: []string{""}}); err == nil {
		t.Fatal("empty peer should error")
	}
	// Single-node fleet (self only) is valid: everything is local.
	f := mustNew(t, Options{Self: "http://127.0.0.1:9001"})
	if !f.Owner("anything").Self() {
		t.Fatal("single-node fleet must own every key itself")
	}
}
