// Package serve is the fvcached simulation service: an HTTP/JSON front
// end that accepts measurement and sweep requests from many concurrent
// clients and coalesces them into the fused batch replay engine.
//
// Requests for the same (workload, scale, options) arriving within a
// short window are merged into ONE sim.MeasureRecordedBatch execution:
// their configurations are deduplicated into a single fused SystemSet
// replay over the shared recording cache, and each client receives its
// own slice of the results. A bounded worker pool executes batches;
// when the batch queue overflows, new requests are rejected with 429
// (backpressure) instead of piling up. Shutdown drains: in-flight
// requests complete, open coalescing windows flush, and only then do
// the workers exit.
//
// The serving path is fault-hardened (see DESIGN.md, "Durability &
// degradation model"):
//
//   - A durable result cache (internal/resultcache) in front of the
//     replay engine makes repeat traffic O(1) and survives restarts.
//   - Per-request deadlines (?deadline_ms= or the body's deadline_ms)
//     propagate into the batch context and cancel replays at chunk
//     boundaries; an expired request gets 504.
//   - A per-(workload, scale) circuit breaker sheds traffic for keys
//     whose executor keeps panicking or timing out, with 503 +
//     Retry-After, while healthy keys keep serving.
//   - Every retryable rejection (429/503/504) carries a Retry-After
//     header and a machine-readable {"retryable": true} body.
//   - /healthz is pure liveness (200 while the process runs); /readyz
//     is readiness and goes 503 during boot recovery and drain.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/internal/fleet"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/obs/reqtrace"
	"fvcache/internal/resultcache"
)

// Service metrics, exported on /debug/metrics and in the telemetry
// snapshot.
var (
	reqTotal       = obs.Default.Counter("serve_requests_total")
	reqRejected    = obs.Default.Counter("serve_rejected_total")
	reqErrors      = obs.Default.Counter("serve_errors_total")
	batchesTotal   = obs.Default.Counter("serve_batches_total")
	coalescedTotal = obs.Default.Counter("serve_coalesced_requests_total")
	batchConfigs   = obs.Default.Histogram("serve_batch_configs")
	requestMS      = obs.Default.Histogram("serve_request_ms")
	queueDepth     = obs.Default.Gauge("serve_queue_depth")
	inflightReqs   = obs.Default.Gauge("serve_inflight_requests")

	deadlineExceeded = obs.Default.Counter("serve_deadline_exceeded")
	breakerOpenTotal = obs.Default.Counter("serve_breaker_open")
)

// Options configures a Server.
type Options struct {
	// Workers is the batch worker pool size (<=0 means GOMAXPROCS).
	Workers int
	// QueueDepth bounds the batch queue; a full queue rejects new
	// batches with 429 (<=0 means 64).
	QueueDepth int
	// CoalesceWindow is how long the first request of a batch waits
	// for same-keyed requests to join it (<=0 means 10ms).
	CoalesceWindow time.Duration
	// RequestTimeout bounds one batch execution (<=0 means 120s).
	RequestTimeout time.Duration
	// MaxBatchConfigs caps distinct configurations fused into one
	// batch; a window that fills up dispatches early and keeps
	// coalescing into a fresh batch (<=0 means 64).
	MaxBatchConfigs int
	// MaxSweeps bounds concurrent /v1/sweep executions (<=0 means 2).
	MaxSweeps int
	// ReplayParallelism is the chunk-parallel replay width applied to
	// batch executions whose request options don't set one (<=0 means
	// Workers). Parallelism never changes results, so it participates
	// in neither coalescing keys nor result-cache keys.
	ReplayParallelism int

	// DefaultDeadline is the per-request deadline applied when a
	// request carries none of its own (<=0 means no default; the batch
	// is still bounded by RequestTimeout).
	DefaultDeadline time.Duration
	// BreakerThreshold is how many consecutive executor failures
	// (panics, timeouts) open a (workload, scale) key's circuit
	// breaker (<=0 means 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds that key's
	// traffic before admitting a probe (<=0 means 5s).
	BreakerCooldown time.Duration
	// ResultCache, when non-nil, serves repeat measurements without
	// re-simulating. It can also be attached after New with
	// SetResultCache (fvcached opens it during the boot recovery scan,
	// while the listener is already up but /readyz reports 503).
	ResultCache *resultcache.Cache
	// StartUnready makes /readyz report 503 until SetReady(true);
	// use it when boot work (the cache recovery scan) runs after the
	// listener is accepting.
	StartUnready bool
	// TraceRing bounds the flight-recorder ring served at
	// /debug/requests (<=0 means 256 recent traces).
	TraceRing int

	// Fleet, when non-nil, turns on consistent-hash owner-forwarding:
	// requests whose config fingerprint hashes to a peer are proxied to
	// it (one hop max), so each (workload, scale, config) is computed
	// and cached on exactly one node. Nil means single-node serving.
	Fleet *fleet.Fleet
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ReplayParallelism <= 0 {
		o.ReplayParallelism = o.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CoalesceWindow <= 0 {
		o.CoalesceWindow = 10 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 120 * time.Second
	}
	if o.MaxBatchConfigs <= 0 {
		o.MaxBatchConfigs = 64
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 2
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// call is one client request's seat in a batch: which of the batch's
// deduplicated configs it wants, and where the worker delivers them.
type call struct {
	idx  []int
	done chan callResult
}

type callResult struct {
	results []fvcache.MeasureResult
	info    batchInfoWire
	// b is the executed batch, carried back so the request handler can
	// attach the batch's stage timeline to its own trace.
	b      *batch
	status int // HTTP status when err != nil
	err    error
}

// batch is one coalescing unit: every request sharing (workload,
// scale, options) that arrived within the window, with their
// configurations deduplicated by fingerprint.
type batch struct {
	key      string
	workload string
	scale    fvcache.Scale
	opts     fvcache.Options
	optsFP   string // canonical options JSON, part of the cache key
	// id is the batch's trace ID, echoed to every coalesced member so
	// clients can correlate requests fused into one execution.
	id string

	configs []ConfigWire
	fps     map[string]int
	subs    []*call
	timer   *time.Timer

	// Stage timestamps, stamped as the batch moves through the serving
	// pipeline; zero values mean the stage never ran (stubbed executor,
	// early failure) and are skipped by trace/stage accounting.
	created    time.Time // batch opened (coalescing window armed)
	dispatched time.Time // window closed, handed to the queue
	execStart  time.Time // worker picked it up
	cacheDone  time.Time // result-cache probe finished
	replayDone time.Time // replay (or cache-only serve) finished

	// deadline is the latest member deadline; the batch context must
	// outlive every coalesced request. unbounded is set when any member
	// carries no deadline at all (the batch then runs under
	// RequestTimeout only).
	deadline  time.Time
	unbounded bool

	// cacheHits is filled by the executor: how many configs the result
	// cache answered; diskHits is the subset faulted in from the disk
	// tier.
	cacheHits int
	diskHits  int
}

// failAll delivers an error to every coalesced request of the batch.
func (b *batch) failAll(status int, err error) {
	for _, c := range b.subs {
		c.done <- callResult{status: status, err: err}
	}
}

// Server coalesces measurement requests into fused batch executions.
type Server struct {
	opt Options
	mux *http.ServeMux

	mu      sync.Mutex
	pending map[string]*batch
	qClosed bool

	queue    chan *batch
	wg       sync.WaitGroup
	baseCtx  context.Context
	stop     context.CancelFunc
	draining atomic.Bool
	ready    atomic.Bool
	sweepSem chan struct{}

	cache atomic.Pointer[resultcache.Cache]
	brk   *breaker
	// rec is the per-request flight recorder behind /debug/requests.
	rec *reqtrace.Recorder

	// mrcState holds the /v1/mrc singleflight table and exec hook
	// (see mrc.go).
	mrcState

	// fleetState holds the consistent-hash ring, per-peer forwarding
	// clients and ownership counters (see fleet.go). Zero when the
	// server runs single-node.
	fleetState

	// execSweep runs one sweep; tests stub it to inject mid-stream
	// failures. Defaults to fvcache.Sweep.
	execSweep func(ctx context.Context, req fvcache.SweepRequest) (*fvcache.SweepResult, error)

	// exec runs one batch's measurements; tests stub it to control
	// worker timing. Defaults to execBatch.
	exec func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error)

	// Server-local counters, so tests can assert on this instance
	// without reading process-global telemetry.
	nBatches   atomic.Uint64
	nCoalesced atomic.Uint64
	nRejected  atomic.Uint64
}

// New builds a Server and starts its worker pool. Callers must
// Shutdown it to stop the workers.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		pending:  make(map[string]*batch),
		queue:    make(chan *batch, opt.QueueDepth),
		baseCtx:  ctx,
		stop:     cancel,
		sweepSem: make(chan struct{}, opt.MaxSweeps),
		brk:      newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
		rec:      reqtrace.NewRecorder(opt.TraceRing),
	}
	s.ready.Store(!opt.StartUnready)
	if opt.ResultCache != nil {
		s.cache.Store(opt.ResultCache)
	}
	s.exec = s.execBatch
	s.mrcFlights = make(map[string]*mrcFlight)
	s.execMRC = s.execMRCPass
	s.execSweep = func(ctx context.Context, req fvcache.SweepRequest) (*fvcache.SweepResult, error) {
		return fvcache.Sweep(ctx, req)
	}
	s.initFleet(opt.Fleet)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/measure", s.handleMeasure)
	s.mux.HandleFunc("/v1/mrc", s.handleMRC)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/fleet", s.handleFleet)
	s.mux.Handle("/debug/requests", s.rec.Handler())
	// Export this server's recent traces in the telemetry snapshot
	// (last server created wins the process-global hook; fvcached runs
	// exactly one).
	obs.Default.SetRequestTraces(s.rec.Traces)
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetResultCache attaches (or replaces) the durable result cache.
// Safe to call while serving: fvcached attaches the cache after its
// boot recovery scan finishes, while the listener is already up.
func (s *Server) SetResultCache(c *resultcache.Cache) { s.cache.Store(c) }

// SetReady flips the /readyz readiness signal (boot work finished, or
// the process is about to drain).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Stats is a point-in-time snapshot of this server's coalescing
// counters (test observability; the process-wide metrics are on
// /debug/metrics).
type Stats struct {
	// Batches is how many fused batch executions ran.
	Batches uint64
	// Coalesced is how many requests joined an already-open batch.
	Coalesced uint64
	// Rejected is how many requests were refused with 429.
	Rejected uint64
}

// ServerStats returns the server-local counters.
func (s *Server) ServerStats() Stats {
	return Stats{
		Batches:   s.nBatches.Load(),
		Coalesced: s.nCoalesced.Load(),
		Rejected:  s.nRejected.Load(),
	}
}

// Shutdown drains the service: open coalescing windows flush
// immediately, queued and in-flight batches complete (delivering
// results to their waiting requests), and the workers exit. New
// requests are rejected with 503 from the first call on. If ctx
// expires first, in-flight batch replays are cancelled at their next
// chunk boundary and the drain finishes with ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Flush every open window: ownership moves from the timer to us.
	s.mu.Lock()
	flush := make([]*batch, 0, len(s.pending))
	for _, b := range s.pending {
		b.timer.Stop()
		flush = append(flush, b)
	}
	s.pending = make(map[string]*batch)
	s.mu.Unlock()
	for _, b := range flush {
		s.enqueue(b, true)
	}
	s.mu.Lock()
	if !s.qClosed {
		s.qClosed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop() // cancel in-flight replays at their next chunk boundary
		<-done
		return ctx.Err()
	}
}

// submit coalesces a parsed request into an open batch (or opens one)
// and returns the caller's seat. optsFP is the canonical options JSON
// (precomputed by the handler, which also uses it for fleet ownership).
// deadline is the request's absolute deadline (zero = none); the batch
// runs until its latest member deadline so one impatient client cannot
// cancel its seat-mates.
func (s *Server) submit(workload string, scale fvcache.Scale, opts fvcache.Options, optsFP string, cfgs []ConfigWire, deadline time.Time) (*call, error) {
	key := fmt.Sprintf("%s|%s|%s", workload, scale, optsFP)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.qClosed {
		return nil, errDraining
	}
	b := s.pending[key]
	if b == nil {
		b = s.newBatchLocked(key, workload, scale, opts, optsFP)
	} else {
		s.nCoalesced.Add(1)
		coalescedTotal.Inc()
	}
	c := &call{done: make(chan callResult, 1)}
	for _, cfg := range cfgs {
		fp := cfg.Fingerprint()
		i, ok := b.fps[fp]
		if !ok {
			if len(b.configs) >= s.opt.MaxBatchConfigs {
				// The open batch is full: dispatch it now and keep
				// coalescing this (and later) requests into a fresh one.
				// Seats already taken in the full batch stay there; a
				// request can legitimately span two executions only when
				// it alone exceeds the cap, in which case it waits on the
				// last batch it joined.
				s.dispatchLocked(b)
				nb := s.newBatchLocked(key, workload, scale, opts, optsFP)
				if len(c.idx) > 0 {
					// This caller already holds seats in the dispatched
					// batch; it cannot wait on two. Refuse rather than
					// deliver partial results.
					return nil, fmt.Errorf("request spans more than %d distinct configurations", s.opt.MaxBatchConfigs)
				}
				b = nb
			}
			i = len(b.configs)
			b.configs = append(b.configs, cfg)
			b.fps[fp] = i
		}
		c.idx = append(c.idx, i)
	}
	// Merge the caller's deadline into whichever batch it ended up in.
	if deadline.IsZero() {
		b.unbounded = true
	} else if deadline.After(b.deadline) {
		b.deadline = deadline
	}
	b.subs = append(b.subs, c)
	return c, nil
}

// newBatchLocked opens a batch and arms its coalescing window.
func (s *Server) newBatchLocked(key, workload string, scale fvcache.Scale, opts fvcache.Options, optsFP string) *batch {
	b := &batch{
		key: key, workload: workload, scale: scale, opts: opts, optsFP: optsFP,
		fps: make(map[string]int), id: s.rec.Mint(), created: time.Now(),
	}
	s.pending[key] = b
	b.timer = time.AfterFunc(s.opt.CoalesceWindow, func() { s.dispatch(b) })
	return b
}

// dispatch moves a batch from the coalescing window to the queue if
// it still owns it (Shutdown or a full window may have taken it
// first).
func (s *Server) dispatch(b *batch) {
	s.mu.Lock()
	if s.pending[b.key] != b {
		s.mu.Unlock()
		return
	}
	s.dispatchLocked(b)
	s.mu.Unlock()
}

func (s *Server) dispatchLocked(b *batch) {
	delete(s.pending, b.key)
	b.timer.Stop()
	s.enqueueLocked(b, false)
}

// enqueue hands a batch to the worker pool. Non-blocking mode applies
// queue backpressure: a full queue fails the whole batch with 429.
// Blocking mode is used by the Shutdown flush, which must not drop
// accepted work.
func (s *Server) enqueue(b *batch, block bool) {
	s.mu.Lock()
	s.enqueueLocked(b, block)
	s.mu.Unlock()
}

func (s *Server) enqueueLocked(b *batch, block bool) {
	if b.dispatched.IsZero() {
		b.dispatched = time.Now() // covers both timer dispatch and the Shutdown flush
	}
	if s.qClosed {
		b.failAll(http.StatusServiceUnavailable, errDraining)
		return
	}
	if block {
		s.queue <- b
	} else {
		select {
		case s.queue <- b:
		default:
			s.nRejected.Add(uint64(len(b.subs)))
			reqRejected.Add(uint64(len(b.subs)))
			b.failAll(http.StatusTooManyRequests, errOverloaded)
			return
		}
	}
	queueDepth.Set(float64(len(s.queue)))
}

var (
	errDraining   = errors.New("service is shutting down")
	errOverloaded = errors.New("batch queue full, retry later")
)

// worker executes batches until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for b := range s.queue {
		queueDepth.Set(float64(len(s.queue)))
		s.runBatch(b)
	}
}

// runBatch materializes the batch's configurations (resolving
// profile-derived FVTs from the shared profile cache), drives one
// fused replay for all of them, and fans the per-config results back
// to every coalesced request.
func (s *Server) runBatch(b *batch) {
	s.nBatches.Add(1)
	batchesTotal.Inc()
	batchConfigs.Observe(uint64(len(b.configs)))
	span := obs.Begin("serve:batch:" + b.workload)
	defer span.Done()
	b.execStart = time.Now()

	// The batch gets its own flight-recorder trace under its shared ID:
	// a client holding the trace_id from any coalesced member's response
	// finds the fused execution's stage timeline at /debug/requests.
	bt := s.rec.StartTrace("batch", b.id, b.created)
	bt.SetWorkload(b.workload)

	ctx, cancel := context.WithTimeout(s.baseCtx, s.opt.RequestTimeout)
	defer cancel()
	if !b.unbounded && !b.deadline.IsZero() {
		// Every member carries a deadline: bound the replay by the
		// latest one (RequestTimeout still caps it above). Cancellation
		// lands at the replay's next chunk boundary.
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, b.deadline)
		defer dcancel()
	}
	// Layers below the executor (profile resolution, cache probes)
	// attach their spans to the batch trace through the context.
	ctx = reqtrace.NewContext(ctx, bt)

	// harness.Recover contains executor panics (a poisoned workload or
	// config must fail its own batch, not the process); the breaker
	// then counts them toward opening that (workload, scale) key.
	var results []fvcache.MeasureResult
	err := harness.Recover(func() error {
		var execErr error
		results, execErr = s.exec(ctx, b)
		return execErr
	})
	b.replayDone = time.Now()
	observeBatchStages(b)
	bt.Add("coalesce_wait", -1, b.created, b.dispatched)
	bt.Add("queue_wait", -1, b.dispatched, b.execStart)
	bt.Add("cache_probe", -1, b.execStart, b.cacheDone)
	if !b.cacheDone.IsZero() {
		bt.Add("replay", -1, b.cacheDone, b.replayDone)
	} else {
		bt.Add("replay", -1, b.execStart, b.replayDone)
	}
	s.brk.report(b.workload+"|"+b.scale.String(), err == nil || errors.Is(err, context.Canceled))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		}
		reqErrors.Add(uint64(len(b.subs)))
		obs.Log.Warn("batch failed", "workload", b.workload, "configs", len(b.configs), "err", err.Error())
		bt.SetError(err.Error())
		bt.SetOutcome(status, outcomeFor(status, ""))
		s.rec.Finish(bt)
		b.failAll(status, err)
		return
	}
	info := batchInfoWire{
		Requests:      len(b.subs),
		Configs:       len(b.configs),
		Coalesced:     len(b.subs) > 1,
		CacheHits:     b.cacheHits,
		CacheDiskHits: b.diskHits,
		TraceID:       b.id,
		Node:          s.nodeURL(),
	}
	class := "executed"
	if b.cacheHits == len(b.configs) && len(b.configs) > 0 {
		class = "hit"
	}
	bt.SetOutcome(http.StatusOK, class)
	s.rec.Finish(bt)
	for _, c := range b.subs {
		rs := make([]fvcache.MeasureResult, len(c.idx))
		for j, i := range c.idx {
			rs[j] = results[i]
		}
		c.done <- callResult{results: rs, info: info, b: b}
	}
	obs.Log.Debug("batch served", "workload", b.workload, "requests", len(b.subs), "configs", len(b.configs))
}

// execBatch serves the batch's configurations from the durable result
// cache where possible, then materializes the remainder (resolving
// profile-derived FVTs from the shared profile cache) and drives one
// fused replay for them. Fresh results are offered back to the cache;
// its admission policy decides what becomes durable.
func (s *Server) execBatch(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
	cache := s.cache.Load()
	results := make([]fvcache.MeasureResult, len(b.configs))
	missing := make([]int, 0, len(b.configs))
	var keys []resultcache.Key
	if cache != nil {
		keys = make([]resultcache.Key, len(b.configs))
		for i, cw := range b.configs {
			keys[i] = resultcache.Key{
				Workload: b.workload,
				Scale:    b.scale.String(),
				ConfigFP: cw.Fingerprint() + "|opts:" + b.optsFP,
				Engine:   fvcache.EngineVersion,
			}
			if rs, tier := cache.GetTier(keys[i]); tier != resultcache.TierNone && len(rs) == 1 {
				results[i] = rs[0]
				if tier == resultcache.TierDisk {
					b.diskHits++
				}
				continue
			}
			missing = append(missing, i)
		}
	} else {
		for i := range b.configs {
			missing = append(missing, i)
		}
	}
	b.cacheDone = time.Now()
	b.cacheHits = len(b.configs) - len(missing)
	if len(missing) == 0 {
		return results, nil
	}

	tr := reqtrace.FromContext(ctx)
	cfgs := make([]fvcache.Config, len(missing))
	for j, i := range missing {
		cw := b.configs[i]
		var values []uint32
		if cw.NeedsProfile() {
			pspan := tr.Begin("profile", -1)
			var err error
			values, err = fvcache.Profile(ctx, fvcache.ProfileRequest{
				Workload: b.workload, Scale: b.scale, K: fvcache.MaxFVTValues(cw.FVCBits),
			})
			tr.End(pspan)
			if err != nil {
				return nil, err
			}
		}
		cfgs[j] = cw.Materialize(values)
	}
	opts := b.opts
	if opts.Parallelism == 0 {
		opts.Parallelism = s.opt.ReplayParallelism
	}
	fresh, err := fvcache.MeasureBatch(ctx, fvcache.MeasureBatchRequest{
		Workload: b.workload, Scale: b.scale, Configs: cfgs, Options: opts,
	})
	if err != nil {
		return nil, err
	}
	for j, i := range missing {
		results[i] = fresh[j]
		if cache != nil {
			cache.Put(keys[i], []fvcache.MeasureResult{fresh[j]})
		}
	}
	return results, nil
}

// maxBodyBytes bounds request bodies; a measurement request is a few
// KB even with a long explicit FVT.
const maxBodyBytes = 1 << 20

// handleMeasure serves POST /v1/measure.
func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.track("measure", w, r).fail(http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	reqTotal.Inc()
	inflightReqs.Set(inflightDelta(1))
	defer inflightReqs.Set(inflightDelta(-1))
	span := obs.Begin("serve:measure")
	defer span.Done()

	t := s.track("measure", w, r)
	start := t.start
	parse := t.tr.Begin("parse", -1)

	if s.draining.Load() {
		t.fail(http.StatusServiceUnavailable, errDraining)
		return
	}
	var req measureWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		t.fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	t.tr.SetWorkload(req.Workload)
	if _, err := fvcache.LookupWorkload(req.Workload); err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	cfgs := req.Configs
	if req.Config != nil {
		cfgs = append([]ConfigWire{*req.Config}, cfgs...)
	}
	if len(cfgs) == 0 {
		cfgs = []ConfigWire{{}} // default geometry
	}
	for i := range cfgs {
		cfgs[i] = cfgs[i].Normalized()
		if err := cfgs[i].Validate(); err != nil {
			t.fail(http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
	}
	deadline, err := requestDeadline(r, req.DeadlineMS, start, s.opt.DefaultDeadline)
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	optsJSON, err := json.Marshal(req.Options)
	if err != nil {
		t.fail(http.StatusInternalServerError, fmt.Errorf("encoding options: %w", err))
		return
	}
	optsFP := string(optsJSON)
	t.tr.End(parse)
	observeStage(stageParseUS, start, time.Now())

	// Fleet ownership: a request whose configs all hash to one peer is
	// proxied there, so each config is computed and cached on exactly
	// one node. Forwarded requests (guard header) always run locally.
	if owner := s.fleetOwner(r, req.Workload, scale, optsFP, cfgs); owner != nil {
		if s.forwardMeasure(t, w, req, deadline, owner) {
			return
		}
		// The owner was unreachable: degrade to local execution rather
		// than failing the request (the result just isn't owner-cached).
	}

	// Keys whose executor keeps failing are shed here, before they can
	// occupy a batch seat; healthy keys are unaffected.
	brkKey := req.Workload + "|" + scale.String()
	if ok, retryAfter := s.brk.allow(brkKey); !ok {
		breakerOpenTotal.Inc()
		t.failFull(http.StatusServiceUnavailable,
			fmt.Errorf("circuit breaker open for %s after repeated failures", brkKey),
			true, "breaker_open", retryAfter)
		return
	}

	wait := t.tr.Begin("batch_wait", -1)
	c, err := s.submit(req.Workload, scale, req.Options, optsFP, cfgs, deadline)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errDraining) {
			status = http.StatusServiceUnavailable
		}
		t.fail(status, err)
		return
	}
	var deadlineCh <-chan time.Time
	if !deadline.IsZero() {
		tm := time.NewTimer(time.Until(deadline))
		defer tm.Stop()
		deadlineCh = tm.C
	}
	select {
	case res := <-c.done:
		t.attachBatchSpans(wait, res.b)
		t.tr.End(wait)
		if res.err != nil {
			if res.status == http.StatusGatewayTimeout {
				deadlineExceeded.Inc()
				t.failFull(res.status, res.err, true, "deadline_exceeded", time.Second)
				return
			}
			t.fail(res.status, res.err)
			return
		}
		encodeStart := time.Now()
		encode := t.tr.Begin("encode", -1)
		out := measureRespWire{
			Workload: req.Workload,
			Scale:    scale.String(),
			Results:  make([]resultWire, len(res.results)),
			Batch:    res.info,
		}
		for i, mr := range res.results {
			out.Results[i] = toResultWire(mr)
		}
		writeJSON(w, http.StatusOK, out)
		t.tr.End(encode)
		observeStage(stageEncodeUS, encodeStart, time.Now())
		class := "executed"
		switch {
		case res.info.CacheHits == res.info.Configs && res.info.Configs > 0:
			class = "hit"
		case res.info.Coalesced:
			class = "coalesced"
		}
		t.finish(http.StatusOK, class)
	case <-deadlineCh:
		// This request's own deadline fired first. The batch keeps
		// running for its seat-mates (its context outlives us); the
		// worker's buffered send still completes.
		t.tr.End(wait)
		deadlineExceeded.Inc()
		t.failFull(http.StatusGatewayTimeout,
			fmt.Errorf("deadline of %s exceeded", time.Since(start).Round(time.Millisecond)),
			true, "deadline_exceeded", time.Second)
	case <-r.Context().Done():
		// Client went away; the worker's buffered send still completes.
		t.tr.End(wait)
		t.fail(http.StatusServiceUnavailable, r.Context().Err())
	}
}

// requestDeadline resolves a request's absolute deadline from the
// ?deadline_ms= query parameter (which wins), the body's deadline_ms,
// or the server default. Zero means unbounded (RequestTimeout still
// applies to the batch).
func requestDeadline(r *http.Request, bodyMS int64, start time.Time, def time.Duration) (time.Time, error) {
	ms := bodyMS
	if q := r.URL.Query().Get("deadline_ms"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("deadline_ms: %w", err)
		}
		ms = v
	}
	if ms < 0 {
		return time.Time{}, fmt.Errorf("deadline_ms must be >= 0, got %d", ms)
	}
	if ms > 0 {
		return start.Add(time.Duration(ms) * time.Millisecond), nil
	}
	if def > 0 {
		return start.Add(def), nil
	}
	return time.Time{}, nil
}

// handleSweep serves POST /v1/sweep, streaming one JSON line per
// completed artifact followed by a summary line.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.track("sweep", w, r).fail(http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	reqTotal.Inc()
	span := obs.Begin("serve:sweep")
	defer span.Done()
	t := s.track("sweep", w, r)
	parse := t.tr.Begin("parse", -1)
	if s.draining.Load() {
		t.fail(http.StatusServiceUnavailable, errDraining)
		return
	}
	var req sweepWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		t.fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	t.tr.End(parse)
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		reqRejected.Inc()
		t.fail(http.StatusTooManyRequests, errors.New("sweep capacity exhausted, retry later"))
		return
	}

	run := t.tr.Begin("sweep_run", -1)
	defer t.tr.End(run)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := false
	res, err := s.execSweep(r.Context(), fvcache.SweepRequest{
		Artifacts: req.Artifacts,
		Scale:     scale,
		Workers:   req.Workers,
		Markdown:  req.Markdown,
		OnArtifact: func(ar fvcache.ArtifactResult) {
			if !streamed {
				// First line: commit the streaming response now.
				w.Header().Set("Content-Type", "application/x-ndjson")
				streamed = true
			}
			enc.Encode(api.SweepLine{Artifact: &ar})
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	if err != nil {
		if !streamed {
			// Nothing on the wire yet: a clean enveloped status is still
			// possible (unknown artifact and the like are the request's
			// fault).
			t.fail(http.StatusBadRequest, err)
			return
		}
		// The 200 and part of the stream are already on the wire; the
		// failure travels in-band as a terminal NDJSON error line
		// carrying the same envelope a non-2xx body would.
		t.tr.SetError(err.Error())
		enc.Encode(api.SweepLine{Error: &api.Error{
			Message:   err.Error(),
			Reason:    api.ReasonInternal,
			Retryable: false,
			TraceID:   t.tr.ID(),
		}})
		if flusher != nil {
			flusher.Flush()
		}
		t.finish(http.StatusOK, "error")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc.Encode(api.SweepLine{Summary: res})
	t.finish(http.StatusOK, "executed")
}

// handleWorkloads serves GET /v1/workloads.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.track("workloads", w, r).fail(http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Workloads []fvcache.WorkloadInfo `json:"workloads"`
	}{fvcache.Workloads()})
}

// handleArtifacts serves GET /v1/artifacts.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.track("artifacts", w, r).fail(http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Artifacts []fvcache.ArtifactInfo `json:"artifacts"`
	}{fvcache.Artifacts()})
}

// handleHealthz serves GET /healthz: pure liveness. It answers 200 as
// long as the process can serve HTTP at all — including during boot
// recovery and drain — so orchestrators don't kill a process that is
// merely busy. Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

// handleReadyz serves GET /readyz: readiness. 503 while boot work
// (the result-cache recovery scan) is still running and from the
// first drain signal on, so load balancers stop routing before the
// listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "starting\n")
	default:
		io.WriteString(w, "ready\n")
	}
}

// parseScale maps the wire scale (default "test") to a Scale.
func parseScale(s string) (fvcache.Scale, error) {
	if s == "" {
		return fvcache.Test, nil
	}
	return fvcache.ParseScale(s)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError renders err with the status's default retry semantics:
// 429/503/504 are retryable (each with a Retry-After), everything else
// is the request's or the server's fault and retrying verbatim cannot
// help.
func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorID(w, status, err, "")
}

// writeErrorID is writeError with the request's trace ID attached to
// the body, so a client can quote the ID against /debug/requests.
func writeErrorID(w http.ResponseWriter, status int, err error, traceID string) {
	var retryAfter time.Duration
	var reason string
	switch {
	case status == http.StatusTooManyRequests:
		retryAfter, reason = time.Second, api.ReasonOverloaded
	case status == http.StatusServiceUnavailable:
		retryAfter, reason = 5*time.Second, api.ReasonDraining
	case status == http.StatusGatewayTimeout:
		retryAfter, reason = time.Second, api.ReasonDeadlineExceeded
	case status == http.StatusMethodNotAllowed:
		reason = api.ReasonMethodNotAllowed
	case status >= 500:
		reason = api.ReasonInternal
	default:
		reason = api.ReasonBadRequest
	}
	retryable := status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
	writeErrorFullID(w, status, err, retryable, reason, retryAfter, traceID)
}

// writeErrorFull is the explicit form: callers that know the cause
// (breaker, deadline) pass their own reason and Retry-After.
func writeErrorFull(w http.ResponseWriter, status int, err error, retryable bool, reason string, retryAfter time.Duration) {
	writeErrorFullID(w, status, err, retryable, reason, retryAfter, "")
}

func writeErrorFullID(w http.ResponseWriter, status int, err error, retryable bool, reason string, retryAfter time.Duration, traceID string) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errorWire{Message: err.Error(), Retryable: retryable, Reason: reason, TraceID: traceID})
}

// inflight tracks the in-flight request gauge without a registry
// read-modify-write race (Gauge has no Add).
var inflight atomic.Int64

func inflightDelta(d int64) float64 { return float64(inflight.Add(d)) }
