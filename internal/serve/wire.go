package serve

import (
	"fmt"
	"strings"

	"fvcache"
)

// ConfigWire is the JSON representation of one cache configuration.
// Zero-valued geometry fields take the paper's defaults (16KB main
// cache, 32-byte lines, direct mapped, 3-bit FVC codes), so the
// minimal useful request body is `{"workload":"goboard"}`.
type ConfigWire struct {
	// MainBytes is the main cache size in bytes (default 16384).
	MainBytes int `json:"main_bytes,omitempty"`
	// LineBytes is the line size in bytes (default 32).
	LineBytes int `json:"line_bytes,omitempty"`
	// Assoc is the main cache associativity (default 1, the DMC).
	Assoc int `json:"assoc,omitempty"`

	// FVCEntries attaches a frequent value cache (0 = none).
	FVCEntries int `json:"fvc_entries,omitempty"`
	// FVCBits is the FVC code width (default 3 when FVCEntries > 0).
	FVCBits int `json:"fvc_bits,omitempty"`
	// FrequentValues is an explicit frequent value table. When empty
	// (and OnlineFVTEvery is 0) the service derives the table from the
	// workload's profile, the paper's profile-directed selection.
	FrequentValues []uint32 `json:"frequent_values,omitempty"`
	// OnlineFVTEvery switches to online FVT identification, re-deriving
	// the table from a Space-Saving sketch every N accesses.
	OnlineFVTEvery uint64 `json:"online_fvt_every,omitempty"`

	// VictimEntries attaches a victim cache (mutually exclusive with
	// the FVC).
	VictimEntries int `json:"victim_entries,omitempty"`

	// L2Bytes places a unified L2 of this size behind the L1 level.
	L2Bytes int `json:"l2_bytes,omitempty"`
	// L2Assoc is the L2 associativity (default 4 when L2Bytes > 0).
	L2Assoc int `json:"l2_assoc,omitempty"`

	// Ablation knobs (zero values are the paper's design).
	NoWriteMissAllocate bool `json:"no_write_miss_allocate,omitempty"`
	SkipEmptyFootprints bool `json:"skip_empty_footprints,omitempty"`
}

// normalized returns the config with defaults applied.
func (c ConfigWire) normalized() ConfigWire {
	if c.MainBytes == 0 {
		c.MainBytes = 16 << 10
	}
	if c.LineBytes == 0 {
		c.LineBytes = 32
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	if c.FVCEntries > 0 && c.FVCBits == 0 {
		c.FVCBits = 3
	}
	if c.L2Bytes > 0 && c.L2Assoc == 0 {
		c.L2Assoc = 4
	}
	return c
}

// needsProfile reports whether the service must derive the config's
// frequent value table from the workload's profile.
func (c ConfigWire) needsProfile() bool {
	return c.FVCEntries > 0 && len(c.FrequentValues) == 0 && c.OnlineFVTEvery == 0
}

// validate checks a normalized config's geometry without resolving
// profile-derived tables (those are materialized at execution time).
func (c ConfigWire) validate() error {
	main := fvcache.CacheParams{SizeBytes: c.MainBytes, LineBytes: c.LineBytes, Assoc: c.Assoc}
	if err := main.Validate(); err != nil {
		return err
	}
	if c.FVCEntries > 0 {
		if c.VictimEntries > 0 {
			return fmt.Errorf("fvc and victim cache are mutually exclusive")
		}
		p := fvcache.FVCParams{Entries: c.FVCEntries, LineBytes: c.LineBytes, Bits: c.FVCBits}
		if err := p.Validate(); err != nil {
			return err
		}
		if len(c.FrequentValues) > fvcache.MaxFVTValues(c.FVCBits) {
			return fmt.Errorf("%d frequent values exceed the %d-bit code space (max %d)",
				len(c.FrequentValues), c.FVCBits, fvcache.MaxFVTValues(c.FVCBits))
		}
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("victim_entries must be >= 0")
	}
	if c.L2Bytes > 0 {
		l2 := fvcache.CacheParams{SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: c.L2Assoc}
		if err := l2.Validate(); err != nil {
			return err
		}
		if c.L2Bytes < c.MainBytes {
			return fmt.Errorf("l2_bytes (%d) must be >= main_bytes (%d)", c.L2Bytes, c.MainBytes)
		}
	}
	return nil
}

// fingerprint is a stable identity for a normalized config, used to
// deduplicate configurations across coalesced requests: two clients
// asking for the same geometry (including "profile-derived FVT",
// before the values are known) share one member system in the fused
// batch.
func (c ConfigWire) fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "m%d/%d/%d", c.MainBytes, c.LineBytes, c.Assoc)
	if c.FVCEntries > 0 {
		fmt.Fprintf(&sb, " f%d/%db o%d", c.FVCEntries, c.FVCBits, c.OnlineFVTEvery)
		if len(c.FrequentValues) > 0 {
			fmt.Fprintf(&sb, " v%v", c.FrequentValues)
		} else if c.OnlineFVTEvery == 0 {
			sb.WriteString(" vprofile")
		}
	}
	if c.VictimEntries > 0 {
		fmt.Fprintf(&sb, " vc%d", c.VictimEntries)
	}
	if c.L2Bytes > 0 {
		fmt.Fprintf(&sb, " l2:%d/%d", c.L2Bytes, c.L2Assoc)
	}
	if c.NoWriteMissAllocate {
		sb.WriteString(" nowma")
	}
	if c.SkipEmptyFootprints {
		sb.WriteString(" skipempty")
	}
	return sb.String()
}

// toConfig materializes the core configuration. values is the
// profile-derived frequent value table when needsProfile, ignored
// otherwise.
func (c ConfigWire) toConfig(values []uint32) fvcache.Config {
	cfg := fvcache.Config{
		Main:                fvcache.CacheParams{SizeBytes: c.MainBytes, LineBytes: c.LineBytes, Assoc: c.Assoc},
		VictimEntries:       c.VictimEntries,
		OnlineFVTEvery:      c.OnlineFVTEvery,
		NoWriteMissAllocate: c.NoWriteMissAllocate,
		SkipEmptyFootprints: c.SkipEmptyFootprints,
	}
	if c.FVCEntries > 0 {
		cfg.FVC = &fvcache.FVCParams{Entries: c.FVCEntries, LineBytes: c.LineBytes, Bits: c.FVCBits}
		switch {
		case len(c.FrequentValues) > 0:
			cfg.FrequentValues = c.FrequentValues
		case c.OnlineFVTEvery == 0:
			cfg.FrequentValues = values
		}
	}
	if c.L2Bytes > 0 {
		cfg.L2 = &fvcache.CacheParams{SizeBytes: c.L2Bytes, LineBytes: c.LineBytes, Assoc: c.L2Assoc}
	}
	return cfg
}

// measureWire is the POST /v1/measure request body.
type measureWire struct {
	Workload string `json:"workload"`
	// Scale is "test", "train" or "ref" (default "test").
	Scale string `json:"scale,omitempty"`
	// Config carries a single configuration, Configs one or many; a
	// request may use either (or neither, for the default geometry).
	Config  *ConfigWire     `json:"config,omitempty"`
	Configs []ConfigWire    `json:"configs,omitempty"`
	Options fvcache.Options `json:"options,omitempty"`
	// DeadlineMS bounds this request in milliseconds (also settable via
	// the ?deadline_ms= query parameter, which wins when both are
	// present). 0 means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// resultWire is one configuration's measurement in a response.
type resultWire struct {
	Stats        fvcache.Stats `json:"stats"`
	Accesses     uint64        `json:"accesses"`
	MissRate     float64       `json:"miss_rate"`
	TrafficBytes uint64        `json:"traffic_bytes"`
	FVCFreqFrac  float64       `json:"fvc_freq_frac,omitempty"`
	FVCOccupancy float64       `json:"fvc_occupancy,omitempty"`
}

func toResultWire(r fvcache.MeasureResult) resultWire {
	return resultWire{
		Stats:        r.Stats,
		Accesses:     r.Stats.Accesses(),
		MissRate:     r.Stats.MissRate(),
		TrafficBytes: r.Stats.TrafficBytes(),
		FVCFreqFrac:  r.FVCFreqFrac,
		FVCOccupancy: r.FVCOccupancy,
	}
}

// batchInfoWire tells a client how its request was executed — the
// coalescing observability the e2e tests assert on.
type batchInfoWire struct {
	// Requests is how many client requests this fused execution served.
	Requests int `json:"requests"`
	// Configs is how many distinct member systems the batch drove.
	Configs int `json:"configs"`
	// Coalesced is true when the request shared its execution with at
	// least one other request.
	Coalesced bool `json:"coalesced"`
	// CacheHits is how many of the batch's configs were served from the
	// durable result cache instead of being re-simulated;
	// CacheDiskHits is the subset faulted in from the disk tier.
	CacheHits     int `json:"cache_hits,omitempty"`
	CacheDiskHits int `json:"cache_disk_hits,omitempty"`
	// TraceID is the fused batch's trace ID, shared by every coalesced
	// member of the execution — clients correlate batch-mates (and the
	// batch's stage timeline at /debug/requests) through it.
	TraceID string `json:"trace_id,omitempty"`
}

// measureRespWire is the POST /v1/measure response body.
type measureRespWire struct {
	Workload string        `json:"workload"`
	Scale    string        `json:"scale"`
	Results  []resultWire  `json:"results"`
	Batch    batchInfoWire `json:"batch"`
}

// sweepWire is the POST /v1/sweep request body.
type sweepWire struct {
	// Artifacts lists artifact IDs (empty = the full suite).
	Artifacts []string `json:"artifacts,omitempty"`
	Scale     string   `json:"scale,omitempty"`
	Markdown  bool     `json:"markdown,omitempty"`
	// Workers bounds per-artifact simulation parallelism.
	Workers int `json:"workers,omitempty"`
}

// errorWire is every non-2xx JSON body. Retryable tells clients
// whether backing off and retrying can succeed (backpressure, drain,
// open breaker, deadline) or the request itself is at fault; when a
// retry can succeed, the response also carries a Retry-After header.
type errorWire struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
	// Reason is a machine-readable cause for retryable rejections:
	// "overloaded", "draining", "breaker_open" or "deadline_exceeded".
	Reason string `json:"reason,omitempty"`
	// TraceID echoes the request's trace ID (also in the X-Request-Id
	// response header) for correlation with /debug/requests.
	TraceID string `json:"trace_id,omitempty"`
}
