package serve

import (
	"fvcache"
	"fvcache/api"
)

// The wire format is owned by the public fvcache/api package — one
// canonical set of JSON types shared by this server, the client SDK,
// cmd/serveload, and the fleet's node-to-node forwarding path. The
// aliases below keep the server-side names the handlers grew up with.
type (
	// ConfigWire is the JSON representation of one cache configuration.
	ConfigWire = api.Config
	// measureWire is the POST /v1/measure request body.
	measureWire = api.MeasureRequest
	// resultWire is one configuration's measurement in a response.
	resultWire = api.Result
	// batchInfoWire tells a client how its request was executed.
	batchInfoWire = api.BatchInfo
	// measureRespWire is the POST /v1/measure response body.
	measureRespWire = api.MeasureResponse
	// sweepWire is the POST /v1/sweep request body.
	sweepWire = api.SweepRequest
	// errorWire is every non-2xx JSON body: the uniform error envelope.
	errorWire = api.Error
)

func toResultWire(r fvcache.MeasureResult) resultWire {
	return resultWire{
		Stats:        r.Stats,
		Accesses:     r.Stats.Accesses(),
		MissRate:     r.Stats.MissRate(),
		TrafficBytes: r.Stats.TrafficBytes(),
		FVCFreqFrac:  r.FVCFreqFrac,
		FVCOccupancy: r.FVCOccupancy,
	}
}
