package serve

// Request-scoped observability (see DESIGN.md §15): every request gets
// a trace ID (inbound X-Request-Id / traceparent honored, minted
// otherwise) and a span tree recording where its time went; finished
// traces land in the flight-recorder ring at /debug/requests, and
// end-to-end latency feeds the exact-quantile histograms below, keyed
// per endpoint × outcome so a p99 regression is attributable to the
// path that caused it.

import (
	"fmt"
	"net/http"
	"time"

	"fvcache/internal/obs"
	"fvcache/internal/obs/reqtrace"
)

// latencySigFigs is the precision of the serving-path quantile
// histograms: two significant digits (1% relative error) — tight
// enough to act on, cheap enough to keep always-on.
const latencySigFigs = 2

// Serving stages whose per-batch durations feed the
// serve_stage_us{stage=...} quantile series (the per-stage time
// attribution BENCH_serve.json reports).
var (
	stageParseUS    = stageSeries("parse")
	stageCoalesceUS = stageSeries("coalesce_wait")
	stageQueueUS    = stageSeries("queue_wait")
	stageCacheUS    = stageSeries("cache_probe")
	stageReplayUS   = stageSeries("replay")
	stageEncodeUS   = stageSeries("encode")
	stageForwardUS  = stageSeries("forward")
)

func stageSeries(stage string) *obs.QuantileHist {
	return obs.Default.Quantile(obs.Labeled("serve_stage_us", "stage", stage), latencySigFigs)
}

// latencySeries pre-registers the endpoint × outcome quantile matrix
// so handler hot paths pay a map lookup, not a registry mutex +
// format. Unknown combinations fall back to outcome="error".
var latencySeries = func() map[string]map[string]*obs.QuantileHist {
	m := make(map[string]map[string]*obs.QuantileHist)
	for _, ep := range []string{"measure", "mrc", "sweep"} {
		byOutcome := make(map[string]*obs.QuantileHist)
		for _, out := range []string{"hit", "coalesced", "executed", "forwarded", "429", "503", "504", "error"} {
			name := fmt.Sprintf(`serve_latency_us{endpoint=%q,outcome=%q}`, ep, out)
			byOutcome[out] = obs.Default.Quantile(name, latencySigFigs)
		}
		m[ep] = byOutcome
	}
	return m
}()

// outcomeFor maps an HTTP status (and, for 200s, the execution class)
// to the latency-series outcome label.
func outcomeFor(status int, class string) string {
	switch status {
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusServiceUnavailable:
		return "503"
	case http.StatusGatewayTimeout:
		return "504"
	}
	if status >= 400 {
		return "error"
	}
	if class == "" {
		return "executed"
	}
	return class
}

// reqTrack carries one request's trace through a handler: it owns the
// trace lifecycle (start → outcome → finish), echoes the trace ID on
// the response, renders error bodies with the ID attached, and feeds
// the endpoint × outcome latency series exactly once.
type reqTrack struct {
	s        *Server
	tr       *reqtrace.Trace
	w        http.ResponseWriter
	req      *http.Request
	endpoint string
	start    time.Time
	done     bool
}

// track opens a trace for an inbound request and stamps the trace ID
// on the response headers (set now, written with the first
// WriteHeader).
func (s *Server) track(endpoint string, w http.ResponseWriter, r *http.Request) *reqTrack {
	t := &reqTrack{s: s, endpoint: endpoint, start: time.Now(), w: w, req: r}
	t.tr = s.rec.Start(endpoint, r.Header)
	if id := t.tr.ID(); id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	return t
}

// finish seals the trace with the request's outcome and records its
// end-to-end latency. Idempotent: only the first call counts.
func (t *reqTrack) finish(status int, class string) {
	if t.done {
		return
	}
	t.done = true
	elapsed := time.Since(t.start)
	requestMS.Observe(uint64(elapsed.Milliseconds()))
	outcome := outcomeFor(status, class)
	if byOutcome, ok := latencySeries[t.endpoint]; ok {
		h := byOutcome[outcome]
		if h == nil {
			h = byOutcome["error"]
		}
		h.Observe(uint64(elapsed.Microseconds()))
	}
	t.tr.SetOutcome(status, outcome)
	t.s.rec.Finish(t.tr)
	obs.Log.Debug("request",
		"id", t.tr.ID(), "endpoint", t.endpoint, "status", fmt.Sprint(status),
		"outcome", outcome, "us", fmt.Sprint(elapsed.Microseconds()))
}

// fail renders err with the status's default retry semantics (trace ID
// attached) and seals the trace.
func (t *reqTrack) fail(status int, err error) {
	t.tr.SetError(err.Error())
	writeErrorID(t.w, status, err, t.tr.ID())
	t.finish(status, "")
}

// failFull is the explicit form for callers that know the cause.
func (t *reqTrack) failFull(status int, err error, retryable bool, reason string, retryAfter time.Duration) {
	t.tr.SetError(err.Error())
	writeErrorFullID(t.w, status, err, retryable, reason, retryAfter, t.tr.ID())
	t.finish(status, "")
}

// attachBatchSpans adds the executed batch's stage timeline under
// parent: how long the coalescing window stayed open, the queue wait,
// the result-cache probe, and the replay. Stages a stubbed executor
// never stamped are skipped by Add.
func (t *reqTrack) attachBatchSpans(parent int, b *batch) {
	if b == nil {
		return
	}
	t.tr.Add("coalesce_wait", parent, b.created, b.dispatched)
	t.tr.Add("queue_wait", parent, b.dispatched, b.execStart)
	t.tr.Add("cache_probe", parent, b.execStart, b.cacheDone)
	t.tr.Add("replay", parent, b.cacheDone, b.replayDone)
}

// observeBatchStages feeds the batch's stage durations into the
// serve_stage_us series, once per batch (not per coalesced member, so
// fan-out does not multiply stage weight).
func observeBatchStages(b *batch) {
	if !obs.Enabled {
		return
	}
	observeStage(stageCoalesceUS, b.created, b.dispatched)
	observeStage(stageQueueUS, b.dispatched, b.execStart)
	observeStage(stageCacheUS, b.execStart, b.cacheDone)
	observeStage(stageReplayUS, b.cacheDone, b.replayDone)
}

func observeStage(h *obs.QuantileHist, start, end time.Time) {
	if start.IsZero() || end.IsZero() || end.Before(start) {
		return
	}
	h.Observe(uint64(end.Sub(start).Microseconds()))
}
