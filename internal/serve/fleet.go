package serve

// Fleet owner-forwarding (see DESIGN.md §16): when the server runs as
// a member of a consistent-hash fleet, each (workload, scale, config,
// options) key is owned by exactly one node. A request arriving at a
// non-owner is proxied to the owner through the public client SDK —
// the same SDK external callers use — with the trace ID and deadline
// propagated and a one-hop guard header so a forward is never
// forwarded again. When the owner is unreachable the request degrades
// to local execution (never to the next node on the ring, which would
// let two live nodes both claim the key and split its cache).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/client"
	"fvcache/internal/fleet"
	"fvcache/internal/obs"
)

var (
	fleetForwardedTotal  = obs.Default.Counter("fleet_forwarded_total")
	fleetForwardFallback = obs.Default.Counter("fleet_forward_fallback_total")
	fleetReceivedFwd     = obs.Default.Counter("fleet_received_forwarded_total")
	fleetLocalOwned      = obs.Default.Counter("fleet_local_owned_total")
	fleetMixedLocal      = obs.Default.Counter("fleet_mixed_local_total")
)

// fleetMetricsTimeout bounds each peer's share of a ?fleet=1 metrics
// fan-out; a slow or dead peer is reported, not waited on.
const fleetMetricsTimeout = 3 * time.Second

// fleetState carries the server's fleet membership: the ring, one
// forwarding client per peer, and the ownership counters /debug/fleet
// reports. All zero on a single-node server.
type fleetState struct {
	fleet *fleet.Fleet
	// fwd maps a peer URL to its forwarding client (retries disabled:
	// an unreachable owner means local fallback, not a retry storm).
	fwd map[string]*client.Client

	// Server-local ownership counters (also exported as fleet_*
	// process metrics), so the e2e tests can assert per instance.
	nForwarded atomic.Uint64 // requests proxied to their owner
	nFallback  atomic.Uint64 // owner unreachable, executed locally
	nReceived  atomic.Uint64 // forwards received from peers
	nOwned     atomic.Uint64 // requests this node owned itself
	nMixed     atomic.Uint64 // multi-config requests spanning owners
}

// initFleet wires the ring and the per-peer forwarding clients.
func (s *Server) initFleet(f *fleet.Fleet) {
	if f == nil {
		return
	}
	s.fleet = f
	s.fwd = make(map[string]*client.Client, f.Size()-1)
	for _, p := range f.Peers() {
		if p.Self() {
			continue
		}
		cli, err := client.New(p.URL(), client.Options{
			NoRetry:       true,
			ForwardedFrom: f.SelfURL(),
			HTTPClient:    &http.Client{Timeout: s.opt.RequestTimeout},
		})
		if err != nil {
			// Peer URLs were validated by fleet.New; an error here means
			// the schemes diverged. Treat the peer as permanently down.
			obs.Log.Warn("fleet: unusable peer", "peer", p.URL(), "err", err.Error())
			continue
		}
		s.fwd[p.URL()] = cli
	}
}

// nodeURL identifies this node in wire responses (BatchInfo.Node,
// MRCSummary.Node); empty when running single-node.
func (s *Server) nodeURL() string {
	if s.fleet == nil {
		return ""
	}
	return s.fleet.SelfURL()
}

// ownershipKey is the ring key of one configuration.
func ownershipKey(workload string, scale fvcache.Scale, cfgFP, optsFP string) string {
	return workload + "|" + scale.String() + "|" + cfgFP + "|opts:" + optsFP
}

// fleetOwner decides whether the request should be proxied and to
// whom. It returns a non-nil peer only when every config of the
// request hashes to that same available, non-self owner; in every
// other case it returns nil (execute locally) after recording why.
func (s *Server) fleetOwner(r *http.Request, workload string, scale fvcache.Scale, optsFP string, cfgs []ConfigWire) *fleet.Peer {
	if s.fleet == nil {
		return nil
	}
	if r.Header.Get(api.HeaderForwarded) != "" {
		// One hop max: a forwarded request executes here even if the
		// membership views disagree about ownership.
		s.nReceived.Add(1)
		fleetReceivedFwd.Inc()
		return nil
	}
	var owner *fleet.Peer
	for i, cfg := range cfgs {
		p := s.fleet.Owner(ownershipKey(workload, scale, cfg.Fingerprint(), optsFP))
		if i == 0 {
			owner = p
		} else if p != owner {
			// The configs span owners; splitting the batch would cost
			// more than the owner-cache affinity buys. Execute locally.
			s.nMixed.Add(1)
			fleetMixedLocal.Inc()
			return nil
		}
	}
	if owner == nil || owner.Self() {
		s.nOwned.Add(1)
		fleetLocalOwned.Inc()
		return nil
	}
	if !s.fleet.Available(owner) {
		// The owner's breaker is open: skip the forward attempt
		// entirely and serve locally until the cooldown admits a probe.
		s.nFallback.Add(1)
		fleetForwardFallback.Inc()
		return nil
	}
	return owner
}

// forwardCtx derives the forward call's context: the inbound request
// context bounded by the request deadline, with the remaining budget
// restated in the wire body so the owner enforces it too.
func forwardCtx(r *http.Request, deadline time.Time, deadlineMS *int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if deadline.IsZero() {
		return ctx, func() {}
	}
	if ms := time.Until(deadline).Milliseconds(); ms > 0 {
		*deadlineMS = ms
	} else {
		*deadlineMS = 1
	}
	return context.WithDeadline(ctx, deadline)
}

// forwardMeasure proxies a measure request to its owner. Returns true
// when the response (success or the owner's own enveloped error) went
// to the wire; false means the owner was unreachable and the caller
// should execute locally.
func (s *Server) forwardMeasure(t *reqTrack, w http.ResponseWriter, req measureWire, deadline time.Time, owner *fleet.Peer) bool {
	cli := s.fwd[owner.URL()]
	if cli == nil {
		return false
	}
	r := t.req
	ctx, cancel := forwardCtx(r, deadline, &req.DeadlineMS)
	defer cancel()
	span := t.tr.Begin("forward", -1)
	fwdStart := time.Now()
	resp, err := cli.Measure(ctx, req, client.WithTraceID(t.tr.ID()))
	t.tr.End(span)
	observeStage(stageForwardUS, fwdStart, time.Now())
	if err != nil {
		return s.relayError(t, w, owner, err)
	}
	s.fleet.ReportSuccess(owner)
	s.nForwarded.Add(1)
	fleetForwardedTotal.Inc()
	w.Header().Set(api.HeaderForwardedBy, s.fleet.SelfURL())
	writeJSON(w, http.StatusOK, resp)
	t.finish(http.StatusOK, "forwarded")
	return true
}

// forwardMRC proxies an MRC request to its owner, relaying the NDJSON
// stream line by line. Same contract as forwardMeasure; additionally,
// a failure after lines already streamed is relayed in-band as a
// terminal error line (the 200 is on the wire — falling back to local
// execution would splice two streams).
func (s *Server) forwardMRC(t *reqTrack, w http.ResponseWriter, req mrcWire, deadline time.Time, owner *fleet.Peer) bool {
	cli := s.fwd[owner.URL()]
	if cli == nil {
		return false
	}
	r := t.req
	ctx, cancel := forwardCtx(r, deadline, &req.DeadlineMS)
	defer cancel()
	span := t.tr.Begin("forward", -1)
	fwdStart := time.Now()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := false
	commit := func() {
		if !streamed {
			w.Header().Set(api.HeaderForwardedBy, s.fleet.SelfURL())
			w.Header().Set("Content-Type", "application/x-ndjson")
			streamed = true
		}
	}
	summary, err := cli.MRC(ctx, req, func(p api.MRCPoint) error {
		commit()
		enc.Encode(api.MRCLine{Point: &p})
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}, client.WithTraceID(t.tr.ID()))
	t.tr.End(span)
	observeStage(stageForwardUS, fwdStart, time.Now())
	if err != nil {
		if !streamed {
			return s.relayError(t, w, owner, err)
		}
		// Mid-stream failure: the envelope travels as a terminal line.
		var ae *api.Error
		if errors.As(err, &ae) && ae.Status != 0 {
			s.fleet.ReportSuccess(owner)
		} else {
			s.fleet.ReportFailure(owner)
			ae = &api.Error{Message: err.Error(), Reason: api.ReasonInternal, TraceID: t.tr.ID()}
		}
		s.nForwarded.Add(1)
		fleetForwardedTotal.Inc()
		t.tr.SetError(ae.Message)
		enc.Encode(api.MRCLine{Error: ae})
		if flusher != nil {
			flusher.Flush()
		}
		t.finish(http.StatusOK, "error")
		return true
	}
	s.fleet.ReportSuccess(owner)
	s.nForwarded.Add(1)
	fleetForwardedTotal.Inc()
	commit()
	enc.Encode(api.MRCLine{Summary: summary})
	t.finish(http.StatusOK, "forwarded")
	return true
}

// relayError terminates a forward attempt that returned an error
// before anything streamed. The owner's own enveloped responses
// (including its 429/503 backpressure) relay verbatim — the owner
// answered, so it is healthy; transport-level failures mark the peer
// and send the caller down the local-fallback path.
func (s *Server) relayError(t *reqTrack, w http.ResponseWriter, owner *fleet.Peer, err error) bool {
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Status == 0 {
		s.fleet.ReportFailure(owner)
		s.nFallback.Add(1)
		fleetForwardFallback.Inc()
		obs.Log.Warn("fleet: forward failed, executing locally",
			"owner", owner.URL(), "err", err.Error())
		return false
	}
	s.fleet.ReportSuccess(owner)
	s.nForwarded.Add(1)
	fleetForwardedTotal.Inc()
	w.Header().Set(api.HeaderForwardedBy, s.fleet.SelfURL())
	if ae.RetryAfter > 0 {
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	t.tr.SetError(ae.Message)
	writeJSON(w, ae.Status, ae)
	t.finish(ae.Status, "forwarded")
	return true
}

// fleetCounters is the ownership/forwarding counter block of
// /debug/fleet.
type fleetCounters struct {
	Forwarded         uint64 `json:"forwarded"`
	ForwardFallback   uint64 `json:"forward_fallback"`
	ReceivedForwarded uint64 `json:"received_forwarded"`
	LocalOwned        uint64 `json:"local_owned"`
	MixedLocal        uint64 `json:"mixed_local"`
}

// FleetCounters returns this node's ownership counters (test
// observability, same numbers as /debug/fleet).
func (s *Server) FleetCounters() fleetCounters {
	return fleetCounters{
		Forwarded:         s.nForwarded.Load(),
		ForwardFallback:   s.nFallback.Load(),
		ReceivedForwarded: s.nReceived.Load(),
		LocalOwned:        s.nOwned.Load(),
		MixedLocal:        s.nMixed.Load(),
	}
}

// handleFleet serves GET /debug/fleet: ring layout, per-peer health
// and the node's ownership counters.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, struct {
			Enabled bool `json:"enabled"`
		}{false})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled  bool                 `json:"enabled"`
		Self     string               `json:"self"`
		Size     int                  `json:"size"`
		Peers    []fleet.PeerSnapshot `json:"peers"`
		Counters fleetCounters        `json:"counters"`
	}{true, s.fleet.SelfURL(), s.fleet.Size(), s.fleet.Snapshot(), s.FleetCounters()})
}

// handleMetrics serves GET /debug/metrics in three shapes: Prometheus
// text (default), the node's JSON telemetry snapshot (?format=json),
// and the fleet-merged snapshot (?fleet=1) — a fan-out to every peer's
// ?format=json view, folded together with the exact bucket-wise
// histogram merge (obs.MergeSnapshots), so fleet p99s come from merged
// counts, not averaged estimates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("fleet") == "1" {
		s.handleFleetMetrics(w, r)
		return
	}
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		obs.Default.Snapshot().WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.Default.WritePrometheus(w)
}

func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	merged := obs.Default.Snapshot()
	nodes := []string{s.nodeURL()}
	var failed []string
	if s.fleet != nil {
		type peerSnap struct {
			url  string
			snap *obs.Snapshot
			err  error
		}
		ctx, cancel := context.WithTimeout(r.Context(), fleetMetricsTimeout)
		defer cancel()
		var wg sync.WaitGroup
		results := make([]peerSnap, 0, len(s.fwd))
		var mu sync.Mutex
		for url, cli := range s.fwd {
			wg.Add(1)
			go func(url string, cli *client.Client) {
				defer wg.Done()
				ps := peerSnap{url: url}
				raw, err := cli.MetricsJSON(ctx)
				if err == nil {
					var snap obs.Snapshot
					if uerr := json.Unmarshal(raw, &snap); uerr != nil {
						err = uerr
					} else {
						ps.snap = &snap
					}
				}
				ps.err = err
				mu.Lock()
				results = append(results, ps)
				mu.Unlock()
			}(url, cli)
		}
		wg.Wait()
		for _, ps := range results {
			if ps.err != nil {
				failed = append(failed, ps.url)
				continue
			}
			if err := obs.MergeSnapshots(merged, ps.snap); err != nil {
				failed = append(failed, ps.url)
				continue
			}
			nodes = append(nodes, ps.url)
		}
	}
	// Peer phase trees and request traces are node-local narratives;
	// the merged view carries only additive metrics plus this node's.
	writeJSON(w, http.StatusOK, struct {
		Fleet    bool          `json:"fleet"`
		Nodes    []string      `json:"nodes"`
		Failed   []string      `json:"failed_nodes,omitempty"`
		Snapshot *obs.Snapshot `json:"snapshot"`
	}{true, nodes, failed, merged})
}
