package serve

import (
	"sync"
	"time"
)

// breaker is a per-key circuit breaker over batch executions. A key is
// one (workload, scale) pair: when that pair's executor keeps failing
// (panics recovered by harness.Recover, deadline blowouts), the
// breaker opens and the service sheds that key's traffic with 503 +
// Retry-After while every healthy key keeps serving. After the
// cooldown one probe request is admitted (half-open); its outcome
// decides between closing the breaker and re-opening it for another
// cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	fails     int       // consecutive failures
	openUntil time.Time // zero while closed
	probing   bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, states: make(map[string]*breakerState)}
}

// allow reports whether a request for key may execute now. When it may
// not, retryAfter is how long the caller should tell the client to
// back off.
func (b *breaker) allow(key string) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || st.fails < b.threshold {
		return true, 0
	}
	now := time.Now()
	if now.Before(st.openUntil) {
		return false, st.openUntil.Sub(now)
	}
	// Cooldown elapsed: admit exactly one probe; everyone else keeps
	// backing off until the probe reports.
	if st.probing {
		return false, b.cooldown
	}
	st.probing = true
	return true, 0
}

// report records one execution outcome for key. Success closes the
// breaker; failure counts toward the threshold and (re)opens it once
// reached.
func (b *breaker) report(key string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if ok {
		if st != nil {
			delete(b.states, key)
		}
		return
	}
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.probing = false
	st.fails++
	if st.fails >= b.threshold {
		st.openUntil = time.Now().Add(b.cooldown)
	}
}
