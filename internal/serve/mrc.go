package serve

// POST /v1/mrc: miss-rate curves from one Mattson reuse-distance pass.
//
// The endpoint mirrors /v1/measure's serving discipline at analytic
// cost: identical concurrent requests are coalesced (singleflight on
// the normalized request key — the first request executes, late
// arrivals wait on the same flight), results are served from and
// offered to the durable result cache, the per-(workload, scale)
// circuit breaker and per-request deadlines apply, and the response
// streams one NDJSON line per curve point followed by a summary line.
//
// Cache encoding: resultcache stores []fvcache.MeasureResult, so a
// curve is framed into that shape losslessly — entry 0 is a header
// (Loads/Stores totals, DistinctLines in LineFetches) and each further
// entry carries one point's miss count in Stats.Misses. Every other
// coordinate of every point (set count, size, associativity, miss
// ratio) is derived from the normalized request, which is part of the
// cache key, so a warm hit reconstructs the response bit for bit.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/resultcache"
)

var (
	mrcRequests  = obs.Default.Counter("serve_mrc_requests_total")
	mrcCoalesced = obs.Default.Counter("serve_mrc_coalesced_total")
	mrcCacheHits = obs.Default.Counter("serve_mrc_cache_hits_total")
)

// The MRC wire types live in the public fvcache/api package; these
// aliases keep the handler's vocabulary.
type (
	// mrcWire is the POST /v1/mrc request body.
	mrcWire = api.MRCRequest
	// mrcPointWire is one streamed curve point.
	mrcPointWire = api.MRCPoint
	// mrcSummaryWire is the trailing NDJSON line.
	mrcSummaryWire = api.MRCSummary
)

// mrcFlight is one in-flight analysis shared by every identical
// concurrent request (singleflight: no coalescing window — the pass is
// fast enough that the first request executes immediately and late
// arrivals join it mid-run).
type mrcFlight struct {
	done     chan struct{}
	requests int
	// id is the flight's trace ID, echoed in every member's summary.
	id string

	// Stage timestamps (zero when the stage never ran).
	started   time.Time
	probeDone time.Time // durable-cache probe finished
	passDone  time.Time // analysis pass finished

	res      *fvcache.MRCResult
	cacheHit bool
	status   int
	err      error
}

// mrcCacheKey derives the durable-cache key from a normalized request.
// The geometry is folded into ConfigFP, so curve shape is recoverable
// from the key's request alone.
func mrcCacheKey(req fvcache.MRCRequest) resultcache.Key {
	return resultcache.Key{
		Workload: req.Workload,
		Scale:    req.Scale.String(),
		ConfigFP: fmt.Sprintf("mrc|line:%d|max:%d|sets:%v", req.LineBytes, req.MaxSizeBytes, req.SetCounts),
		Engine:   fvcache.EngineVersion,
	}
}

// encodeMRC frames a curve set into the result cache's entry shape.
func encodeMRC(res *fvcache.MRCResult) []fvcache.MeasureResult {
	out := make([]fvcache.MeasureResult, 0, 1)
	var header fvcache.MeasureResult
	header.Stats.Loads = res.Loads
	header.Stats.Stores = res.Stores
	header.Stats.LineFetches = res.DistinctLines
	out = append(out, header)
	for _, c := range res.Curves {
		for _, p := range c.Points {
			var e fvcache.MeasureResult
			e.Stats.Misses = p.Misses
			out = append(out, e)
		}
	}
	return out
}

// decodeMRC rebuilds the full curve set from a cache entry and the
// normalized request it was stored under. ok is false when the entry's
// shape does not match the request (e.g. an entry admitted under a
// colliding key by an older build); callers then recompute.
func decodeMRC(rs []fvcache.MeasureResult, req fvcache.MRCRequest) (*fvcache.MRCResult, bool) {
	ladder := req.LadderPoints()
	want := 1
	for _, n := range ladder {
		want += n
	}
	if len(rs) != want {
		return nil, false
	}
	header := rs[0]
	res := &fvcache.MRCResult{
		LineBytes:     req.LineBytes,
		Loads:         header.Stats.Loads,
		Stores:        header.Stats.Stores,
		Accesses:      header.Stats.Loads + header.Stats.Stores,
		DistinctLines: header.Stats.LineFetches,
		Curves:        make([]fvcache.MRCCurve, len(req.SetCounts)),
	}
	next := 1
	for i, sets := range req.SetCounts {
		c := fvcache.MRCCurve{Sets: sets, Points: make([]fvcache.MRCPoint, ladder[i])}
		for j := range c.Points {
			misses := rs[next].Stats.Misses
			next++
			p := fvcache.MRCPoint{
				SizeBytes: sets * (1 << uint(j)) * req.LineBytes,
				Assoc:     1 << uint(j),
				Misses:    misses,
			}
			if res.Accesses > 0 {
				p.MissRatio = float64(misses) / float64(res.Accesses)
			}
			c.Points[j] = p
		}
		res.Curves[i] = c
	}
	return res, true
}

// runMRCFlight executes one flight: durable cache first, then the
// analysis pass via the (stub-able) execMRC hook, offering fresh
// curves back to the cache. Runs under the server's base context so
// one impatient client cannot cancel its seat-mates.
func (s *Server) runMRCFlight(f *mrcFlight, key string, req fvcache.MRCRequest) {
	defer func() {
		s.mrcMu.Lock()
		if s.mrcFlights[key] == f {
			delete(s.mrcFlights, key)
		}
		s.mrcMu.Unlock()
		close(f.done)
	}()

	span := obs.Begin("serve:mrc:" + req.Workload)
	defer span.Done()
	f.started = time.Now()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.opt.RequestTimeout)
	defer cancel()

	cache := s.cache.Load()
	ck := mrcCacheKey(req)
	if cache != nil {
		if rs, ok := cache.Get(ck); ok {
			if res, ok := decodeMRC(rs, req); ok {
				mrcCacheHits.Inc()
				f.probeDone = time.Now()
				f.res, f.cacheHit = res, true
				return
			}
		}
	}
	f.probeDone = time.Now()

	err := harness.Recover(func() error {
		var execErr error
		f.res, execErr = s.execMRC(ctx, req)
		return execErr
	})
	f.passDone = time.Now()
	s.brk.report(req.Workload+"|"+req.Scale.String(), err == nil || errors.Is(err, context.Canceled))
	if err != nil {
		f.status = http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			f.status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			f.status = http.StatusServiceUnavailable
		}
		f.err = err
		obs.Log.Warn("mrc flight failed", "workload", req.Workload, "err", err.Error())
		return
	}
	if cache != nil {
		cache.Put(ck, encodeMRC(f.res))
	}
}

// execMRCPass is the default execMRC hook: one sharded Mattson pass
// through the public facade.
func (s *Server) execMRCPass(ctx context.Context, req fvcache.MRCRequest) (*fvcache.MRCResult, error) {
	req.Shards = s.opt.ReplayParallelism
	return fvcache.MissRateCurves(ctx, req)
}

// handleMRC serves POST /v1/mrc.
func (s *Server) handleMRC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.track("mrc", w, r).fail(http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	reqTotal.Inc()
	mrcRequests.Inc()
	inflightReqs.Set(inflightDelta(1))
	defer inflightReqs.Set(inflightDelta(-1))

	t := s.track("mrc", w, r)
	start := t.start
	parse := t.tr.Begin("parse", -1)

	if s.draining.Load() {
		t.fail(http.StatusServiceUnavailable, errDraining)
		return
	}
	var req mrcWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		t.fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	t.tr.SetWorkload(req.Workload)
	if _, err := fvcache.LookupWorkload(req.Workload); err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	if req.LineBytes == 0 {
		req.LineBytes = 32
	}
	mreq, err := fvcache.MRCRequest{
		Workload: req.Workload, Scale: scale,
		LineBytes: req.LineBytes, MaxSizeBytes: req.MaxSizeBytes, SetCounts: req.SetCounts,
	}.Validate()
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	deadline, err := requestDeadline(r, req.DeadlineMS, start, s.opt.DefaultDeadline)
	if err != nil {
		t.fail(http.StatusBadRequest, err)
		return
	}
	t.tr.End(parse)
	observeStage(stageParseUS, start, time.Now())

	// Fleet ownership: the MRC key (workload, scale, geometry) hashes
	// to one owner whose singleflight and durable cache serve it for
	// the whole fleet. Forwarded requests (guard header) run locally.
	if s.fleet != nil {
		if r.Header.Get(api.HeaderForwarded) != "" {
			s.nReceived.Add(1)
			fleetReceivedFwd.Inc()
		} else {
			key := ownershipKey(mreq.Workload, scale, mrcCacheKey(mreq).ConfigFP, "")
			switch p := s.fleet.Owner(key); {
			case p.Self():
				s.nOwned.Add(1)
				fleetLocalOwned.Inc()
			case !s.fleet.Available(p):
				s.nFallback.Add(1)
				fleetForwardFallback.Inc()
			default:
				if s.forwardMRC(t, w, req, deadline, p) {
					return
				}
				// Owner unreachable: fall through to the local path.
			}
		}
	}

	brkKey := mreq.Workload + "|" + scale.String()
	if ok, retryAfter := s.brk.allow(brkKey); !ok {
		breakerOpenTotal.Inc()
		t.failFull(http.StatusServiceUnavailable,
			fmt.Errorf("circuit breaker open for %s after repeated failures", brkKey),
			true, "breaker_open", retryAfter)
		return
	}

	// Singleflight on the normalized request: the first arrival starts
	// the pass, identical concurrent requests wait on the same flight.
	wait := t.tr.Begin("flight_wait", -1)
	joined := false
	key := fmt.Sprintf("%s|%s|%s", mreq.Workload, scale, mrcCacheKey(mreq).ConfigFP)
	s.mrcMu.Lock()
	f := s.mrcFlights[key]
	if f == nil {
		f = &mrcFlight{done: make(chan struct{}), requests: 1, id: s.rec.Mint()}
		s.mrcFlights[key] = f
		s.mrcMu.Unlock()
		go s.runMRCFlight(f, key, mreq)
	} else {
		f.requests++
		joined = true
		s.mrcMu.Unlock()
		mrcCoalesced.Inc()
		coalescedTotal.Inc()
		s.nCoalesced.Add(1)
	}

	var deadlineCh <-chan time.Time
	if !deadline.IsZero() {
		tm := time.NewTimer(time.Until(deadline))
		defer tm.Stop()
		deadlineCh = tm.C
	}
	select {
	case <-f.done:
		t.tr.Add("cache_probe", wait, f.started, f.probeDone)
		t.tr.Add("analyze", wait, f.probeDone, f.passDone)
		t.tr.End(wait)
	case <-deadlineCh:
		// This request's own deadline fired; the flight keeps running
		// for its seat-mates.
		t.tr.End(wait)
		deadlineExceeded.Inc()
		t.failFull(http.StatusGatewayTimeout,
			fmt.Errorf("deadline of %s exceeded", time.Since(start).Round(time.Millisecond)),
			true, "deadline_exceeded", time.Second)
		return
	case <-r.Context().Done():
		t.tr.End(wait)
		t.fail(http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	if f.err != nil {
		reqErrors.Inc()
		if f.status == http.StatusGatewayTimeout {
			deadlineExceeded.Inc()
			t.failFull(f.status, f.err, true, "deadline_exceeded", time.Second)
			return
		}
		t.fail(f.status, f.err)
		return
	}

	// Stream: one NDJSON line per point, then the summary.
	encodeStart := time.Now()
	encode := t.tr.Begin("encode", -1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	res := f.res
	points := 0
	for _, c := range res.Curves {
		for _, p := range c.Points {
			pw := mrcPointWire{Sets: c.Sets, SizeBytes: p.SizeBytes, Assoc: p.Assoc, Misses: p.Misses, MissRatio: p.MissRatio}
			enc.Encode(api.MRCLine{Point: &pw})
			points++
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	// requests is racy against late joiners only until done closes; by
	// now the flight is removed from the map, so the count is final.
	enc.Encode(api.MRCLine{Summary: &mrcSummaryWire{
		Workload:      mreq.Workload,
		Scale:         scale.String(),
		LineBytes:     res.LineBytes,
		Accesses:      res.Accesses,
		Loads:         res.Loads,
		Stores:        res.Stores,
		DistinctLines: res.DistinctLines,
		Curves:        len(res.Curves),
		Points:        points,
		Requests:      f.requests,
		Coalesced:     f.requests > 1,
		CacheHit:      f.cacheHit,
		TraceID:       f.id,
		Node:          s.nodeURL(),
	}})
	t.tr.End(encode)
	observeStage(stageEncodeUS, encodeStart, time.Now())
	class := "executed"
	switch {
	case f.cacheHit:
		class = "hit"
	case joined:
		class = "coalesced"
	}
	t.finish(http.StatusOK, class)
}

// mrcState carries the endpoint's server fields (declared here to keep
// the feature self-contained; embedded in Server).
type mrcState struct {
	mrcMu      sync.Mutex
	mrcFlights map[string]*mrcFlight

	// execMRC runs one analysis pass; tests stub it to control flight
	// timing and count executions. Defaults to execMRCPass.
	execMRC func(ctx context.Context, req fvcache.MRCRequest) (*fvcache.MRCResult, error)
}
