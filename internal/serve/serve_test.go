// End-to-end tests for the fvcached service layer: coalescing of
// concurrent identical requests into fewer batch executions, queue
// backpressure (429), graceful drain, and wire-level validation.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fvcache"
)

func newTestService(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	sv := New(opt)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sv, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestCoalescingFusesRequests is the tentpole proof: K concurrent
// clients issuing the same measurement must observe fewer batch
// executions than requests, and every client's numbers must agree with
// a direct engine call.
func TestCoalescingFusesRequests(t *testing.T) {
	const clients = 8
	sv, ts := newTestService(t, Options{CoalesceWindow: 150 * time.Millisecond})

	body := `{"workload":"goboard","scale":"test","configs":[` +
		`{"main_bytes":8192},{"main_bytes":8192,"fvc_entries":256}]}`
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		resps []measureRespWire
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				t.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var out measureRespWire
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			resps = append(resps, out)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(resps) != clients {
		t.Fatalf("%d/%d requests succeeded", len(resps), clients)
	}

	st := sv.ServerStats()
	if st.Batches >= clients {
		t.Errorf("coalescing failed: %d batch executions for %d identical requests", st.Batches, clients)
	}
	if st.Coalesced == 0 {
		t.Error("no request reported as coalesced")
	}
	t.Logf("%d requests -> %d batch executions (%d coalesced)", clients, st.Batches, st.Coalesced)

	// Every client must receive the same, correct results.
	want, err := fvcache.MeasureBatch(context.Background(), fvcache.MeasureBatchRequest{
		Workload: "goboard", Scale: fvcache.Test,
		Configs: []fvcache.Config{
			{Main: fvcache.CacheParams{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}},
			func() fvcache.Config {
				values, err := fvcache.Profile(context.Background(),
					fvcache.ProfileRequest{Workload: "goboard", Scale: fvcache.Test, K: fvcache.MaxFVTValues(3)})
				if err != nil {
					t.Fatal(err)
				}
				return fvcache.Config{
					Main:           fvcache.CacheParams{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
					FVC:            &fvcache.FVCParams{Entries: 256, LineBytes: 32, Bits: 3},
					FrequentValues: values,
				}
			}(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawCoalesced := false
	for _, r := range resps {
		if len(r.Results) != 2 {
			t.Fatalf("response carries %d results, want 2", len(r.Results))
		}
		for i := range r.Results {
			if r.Results[i].Stats != want[i].Stats {
				t.Errorf("config %d: served stats diverged from direct engine call:\n got %+v\nwant %+v",
					i, r.Results[i].Stats, want[i].Stats)
			}
		}
		if r.Batch.Coalesced {
			sawCoalesced = true
			if r.Batch.Requests < 2 {
				t.Errorf("coalesced batch reports %d requests", r.Batch.Requests)
			}
		}
	}
	if !sawCoalesced {
		t.Error("no response carried a coalesced batch stanza")
	}
}

// TestQueueOverflowRejects drives the worker pool to saturation with a
// stubbed slow executor and checks that an over-capacity request is
// rejected with 429 instead of queuing unboundedly.
func TestQueueOverflowRejects(t *testing.T) {
	sv, ts := newTestService(t, Options{
		Workers: 1, QueueDepth: 1, CoalesceWindow: time.Millisecond,
	})
	started := make(chan string, 8)
	release := make(chan struct{})
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		started <- b.workload
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return make([]fvcache.MeasureResult, len(b.configs)), nil
	}

	// Distinct workloads so the three requests cannot coalesce.
	post := func(wl string, status chan<- int) {
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":%q}`, wl)))
		if err != nil {
			t.Error(err)
			status <- 0
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}
	stA, stB, stC := make(chan int, 1), make(chan int, 1), make(chan int, 1)

	go post("goboard", stA)
	<-started // the lone worker is now pinned inside request A

	go post("ccomp", stB) // takes the single queue slot
	deadline := time.Now().Add(5 * time.Second)
	for len(sv.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request B never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	go post("strproc", stC) // queue full: must bounce with 429
	if got := <-stC; got != http.StatusTooManyRequests {
		t.Errorf("overflow request: status %d, want 429", got)
	}
	if st := sv.ServerStats(); st.Rejected == 0 {
		t.Error("rejected counter did not move")
	}

	close(release)
	if got := <-stA; got != http.StatusOK {
		t.Errorf("request A: status %d, want 200", got)
	}
	if got := <-stB; got != http.StatusOK {
		t.Errorf("request B: status %d, want 200", got)
	}
}

// TestGracefulDrain verifies the SIGTERM path: a request in flight when
// Shutdown begins still completes with 200, while new requests are
// turned away with 503.
func TestGracefulDrain(t *testing.T) {
	sv := New(Options{Workers: 1, CoalesceWindow: time.Millisecond})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return make([]fvcache.MeasureResult, len(b.configs)), nil
	}

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
			strings.NewReader(`{"workload":"goboard"}`))
		if err != nil {
			t.Error(err)
			inflight <- 0
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-started // the request is executing

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- sv.Shutdown(ctx)
	}()

	// Draining: health reports it and new work is refused.
	deadline := time.Now().Add(5 * time.Second)
	for !sv.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("measure during drain: status %d, want 503", resp.StatusCode)
	}
	// The refusal must tell clients it is worth retrying, and when.
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain carries no Retry-After header")
	}
	var e errorWire
	if err := json.Unmarshal(data, &e); err != nil || !e.Retryable {
		t.Errorf("503 body not marked retryable: %s", data)
	}
	// Liveness stays green through the drain (the process is healthy,
	// just leaving the pool); readiness goes red so routing stops.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: status %d, want 200 (liveness)", hresp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503", rresp.StatusCode)
	}

	close(release) // let the in-flight batch finish
	if got := <-inflight; got != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", got)
	}
	if err := <-drainDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestBadRequests walks the 4xx surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"workload":`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"bad scale", `{"workload":"goboard","scale":"huge"}`, http.StatusBadRequest},
		{"fvc and victim", `{"workload":"goboard","config":{"fvc_entries":64,"victim_entries":4}}`, http.StatusBadRequest},
		{"oversized fvt", `{"workload":"goboard","config":{"fvc_entries":64,"fvc_bits":1,"frequent_values":[1,2,3]}}`, http.StatusBadRequest},
		{"bad geometry", `{"workload":"goboard","config":{"main_bytes":1000}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/measure", tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var e errorWire
			if err := json.Unmarshal(data, &e); err != nil || e.Message == "" {
				t.Errorf("error body not wire-shaped: %s", data)
			}
		})
	}
	// Method checks.
	resp, err := http.Get(ts.URL + "/v1/measure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/measure: status %d, want 405", resp.StatusCode)
	}
	// Unknown artifact in a sweep.
	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{"artifacts":["fig999"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown artifact: status %d, want 400", resp.StatusCode)
	}
}

// TestListingAndMetricsEndpoints covers the read-only surface.
func TestListingAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})

	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wls struct {
		Workloads []fvcache.WorkloadInfo `json:"workloads"`
	}
	err = json.NewDecoder(resp.Body).Decode(&wls)
	resp.Body.Close()
	if err != nil || len(wls.Workloads) < 12 {
		t.Fatalf("workloads listing: err=%v n=%d", err, len(wls.Workloads))
	}

	resp, err = http.Get(ts.URL + "/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var arts struct {
		Artifacts []fvcache.ArtifactInfo `json:"artifacts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&arts)
	resp.Body.Close()
	if err != nil || len(arts.Artifacts) == 0 {
		t.Fatalf("artifacts listing: err=%v n=%d", err, len(arts.Artifacts))
	}

	// One measurement, then the metrics page must carry the service
	// counters.
	if resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: status %d (%s)", resp.StatusCode, data)
	}
	resp, err = http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"serve_requests_total", "serve_batches_total", "serve_batch_configs"} {
		if !bytes.Contains(page, []byte(metric)) {
			t.Errorf("metrics page missing %s", metric)
		}
	}
}

// TestSweepStreamsOverHTTP runs one artifact through POST /v1/sweep and
// checks the NDJSON stream shape.
func TestSweepStreamsOverHTTP(t *testing.T) {
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	resp, data := postJSON(t, ts.URL+"/v1/sweep", `{"artifacts":["tab1"],"scale":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("stream carries %d lines, want artifact + summary:\n%s", len(lines), data)
	}
	var art struct {
		Artifact fvcache.ArtifactResult `json:"artifact"`
	}
	if err := json.Unmarshal(lines[0], &art); err != nil || art.Artifact.ID != "tab1" || art.Artifact.Status != "done" {
		t.Errorf("artifact line: err=%v %+v", err, art.Artifact)
	}
	if art.Artifact.Output == "" {
		t.Error("artifact line carries no output")
	}
	var sum struct {
		Summary *fvcache.SweepResult `json:"summary"`
	}
	if err := json.Unmarshal(lines[1], &sum); err != nil || sum.Summary == nil || sum.Summary.Done != 1 {
		t.Errorf("summary line: err=%v %+v", err, sum.Summary)
	}
}

// TestDefaultConfigRequest checks the minimal useful body measures the
// default geometry.
func TestDefaultConfigRequest(t *testing.T) {
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out measureRespWire
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Accesses == 0 {
		t.Fatalf("default measurement empty: %s", data)
	}
	if out.Scale != "test" {
		t.Errorf("default scale = %q, want test", out.Scale)
	}
	if out.Results[0].MissRate <= 0 || out.Results[0].MissRate >= 1 {
		t.Errorf("implausible miss rate %v", out.Results[0].MissRate)
	}
}
