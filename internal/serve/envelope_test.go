// Pins the public error contract: every non-2xx response body is the
// versioned envelope {"error","reason","retryable","trace_id"}, with
// Retry-After set whenever the error is retryable — including errors
// that strike mid-way through an NDJSON stream.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/internal/obs"
)

// decodeEnvelope asserts the body is a complete envelope and returns it.
func decodeEnvelope(t *testing.T, label string, body []byte) api.Error {
	t.Helper()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("%s: body is not JSON: %v\n%s", label, err, body)
	}
	for _, k := range []string{"error", "reason", "retryable", "trace_id"} {
		if _, ok := raw[k]; !ok {
			t.Errorf("%s: envelope missing %q key: %s", label, k, body)
		}
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if e.Message == "" {
		t.Errorf("%s: empty error message", label)
	}
	// Under obsoff no trace IDs are minted; the key is still on the
	// wire (checked above) but its value is legitimately empty.
	if obs.Enabled && e.TraceID == "" {
		t.Errorf("%s: empty trace_id", label)
	}
	return e
}

func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantReason string
		retryable  bool
	}{
		{"measure wrong method", http.MethodGet, "/v1/measure", "", 405, api.ReasonMethodNotAllowed, false},
		{"mrc wrong method", http.MethodGet, "/v1/mrc", "", 405, api.ReasonMethodNotAllowed, false},
		{"sweep wrong method", http.MethodGet, "/v1/sweep", "", 405, api.ReasonMethodNotAllowed, false},
		{"measure bad json", http.MethodPost, "/v1/measure", "{nope", 400, api.ReasonBadRequest, false},
		{"mrc bad json", http.MethodPost, "/v1/mrc", "{nope", 400, api.ReasonBadRequest, false},
		{"sweep bad json", http.MethodPost, "/v1/sweep", "{nope", 400, api.ReasonBadRequest, false},
		{"measure unknown workload", http.MethodPost, "/v1/measure", `{"workload":"no-such"}`, 400, api.ReasonBadRequest, false},
		{"mrc unknown workload", http.MethodPost, "/v1/mrc", `{"workload":"no-such"}`, 400, api.ReasonBadRequest, false},
		{"sweep unknown artifact", http.MethodPost, "/v1/sweep", `{"artifacts":["no-such"]}`, 400, api.ReasonBadRequest, false},
		{"measure bad config", http.MethodPost, "/v1/measure", `{"workload":"goboard","config":{"main_bytes":7}}`, 400, api.ReasonBadRequest, false},
		{"measure bad scale", http.MethodPost, "/v1/measure", `{"workload":"goboard","scale":"galactic"}`, 400, api.ReasonBadRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var buf [4096]byte
			n, _ := resp.Body.Read(buf[:])
			e := decodeEnvelope(t, tc.name, buf[:n])
			if e.Reason != tc.wantReason {
				t.Errorf("reason %q, want %q", e.Reason, tc.wantReason)
			}
			if e.Retryable != tc.retryable {
				t.Errorf("retryable %v, want %v", e.Retryable, tc.retryable)
			}
			if e.TraceID != resp.Header.Get(api.HeaderRequestID) {
				t.Errorf("trace_id %q != %s header %q", e.TraceID, api.HeaderRequestID, resp.Header.Get(api.HeaderRequestID))
			}
			if tc.retryable && resp.Header.Get("Retry-After") == "" {
				t.Error("retryable error without Retry-After header")
			}
		})
	}
}

// TestErrorEnvelopeRetryable covers the retryable statuses: a saturated
// queue (429 overloaded) and a draining server (503), both of which
// must advertise Retry-After.
func TestErrorEnvelopeRetryable(t *testing.T) {
	sv, ts := newTestService(t, Options{Workers: 1, QueueDepth: 1, CoalesceWindow: time.Millisecond})
	started := make(chan string, 8)
	release := make(chan struct{})
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		started <- b.workload
		select {
		case <-release:
		case <-ctx.Done():
		}
		return make([]fvcache.MeasureResult, len(b.configs)), nil
	}
	post := func(wl string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":%q}`, wl)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	go func() { post("goboard").Body.Close() }()
	<-started
	go func() { post("ccomp").Body.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for len(sv.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post("strproc") // queue full -> 429
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	e := decodeEnvelope(t, "429", body)
	if e.Reason != api.ReasonOverloaded || !e.Retryable {
		t.Errorf("429 envelope: reason=%q retryable=%v", e.Reason, e.Retryable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)

	// Drain, then verify the 503 envelope.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = post("goboard")
	body, _ = readAll(resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	e = decodeEnvelope(t, "503", body)
	if e.Reason != api.ReasonDraining || !e.Retryable {
		t.Errorf("503 envelope: reason=%q retryable=%v", e.Reason, e.Retryable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestSweepMidStreamErrorEnvelope verifies that an error after the
// first streamed artifact line arrives as a terminal error_line holding
// the full envelope — the status is already 200 on the wire, so the
// envelope is the only way a client learns the stream died.
func TestSweepMidStreamErrorEnvelope(t *testing.T) {
	sv, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	sv.execSweep = func(ctx context.Context, req fvcache.SweepRequest) (*fvcache.SweepResult, error) {
		if req.OnArtifact != nil {
			req.OnArtifact(fvcache.ArtifactResult{ID: "figure-6"})
		}
		return nil, errors.New("disk melted mid-sweep")
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed sweep status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []api.SweepLine
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var l api.SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d stream lines, want artifact + error_line", len(lines))
	}
	if lines[0].Artifact == nil || lines[0].Artifact.ID != "figure-6" {
		t.Fatalf("first line is not the artifact: %+v", lines[0])
	}
	le := lines[1].Error
	if le == nil {
		t.Fatalf("terminal line is not an error_line: %+v", lines[1])
	}
	if le.Message == "" || le.Reason != api.ReasonInternal || (obs.Enabled && le.TraceID == "") {
		t.Errorf("mid-stream envelope incomplete: %+v", le)
	}
	if le.TraceID != resp.Header.Get(api.HeaderRequestID) {
		t.Errorf("mid-stream trace_id %q != header %q", le.TraceID, resp.Header.Get(api.HeaderRequestID))
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, err := resp.Body.Read(buf[:])
	if err != nil && n == 0 {
		return nil, err
	}
	return buf[:n], nil
}
