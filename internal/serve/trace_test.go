// End-to-end tests for the request observability layer: trace IDs
// (inbound and minted) echoed on responses and error bodies, the
// /debug/requests flight recorder, and span trees whose stage
// durations account for the reported end-to-end latency.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fvcache"
	"fvcache/internal/obs"
)

// debugRequests fetches and decodes /debug/requests.
func debugRequests(t *testing.T, base, query string) []obs.RequestTrace {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Count  int                `json:"count"`
		Traces []obs.RequestTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// TestRequestTraceEndToEnd serves one measurement and checks the
// acceptance contract: the response carries a trace ID, /debug/requests
// returns a well-formed span tree for it, and the root-level stage
// durations sum (within slop) to the reported end-to-end latency.
func TestRequestTraceEndToEnd(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	_, ts := newTestService(t, Options{CoalesceWindow: 5 * time.Millisecond})

	resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard","scale":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response carries no X-Request-Id header")
	}
	var out measureRespWire
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Batch.TraceID == "" {
		t.Error("batch stanza carries no trace_id")
	}

	traces := debugRequests(t, ts.URL, "")
	var mine *obs.RequestTrace
	var batchTrace *obs.RequestTrace
	for i := range traces {
		switch traces[i].ID {
		case reqID:
			mine = &traces[i]
		case out.Batch.TraceID:
			batchTrace = &traces[i]
		}
	}
	if mine == nil {
		t.Fatalf("request %s not in /debug/requests (%d traces)", reqID, len(traces))
	}
	if batchTrace == nil {
		t.Errorf("batch trace %s not in /debug/requests", out.Batch.TraceID)
	}
	if mine.Endpoint != "measure" || mine.Status != http.StatusOK || mine.Workload != "goboard" {
		t.Errorf("trace fields: %+v", mine)
	}
	if mine.Outcome == "" {
		t.Error("trace has no outcome class")
	}

	// Well-formed span tree: named spans, parents precede children.
	// (The same checks ValidateSnapshot applies to exported telemetry.)
	names := map[string]bool{}
	var rootSum int64
	for i, sp := range mine.Spans {
		if sp.Name == "" {
			t.Fatalf("span %d unnamed", i)
		}
		if sp.Parent < -1 || sp.Parent >= i {
			t.Fatalf("span %q has parent %d at index %d", sp.Name, sp.Parent, i)
		}
		names[sp.Name] = true
		if sp.Parent == -1 {
			rootSum += sp.DurationUS
		}
	}
	for _, want := range []string{"parse", "batch_wait", "encode"} {
		if !names[want] {
			t.Errorf("span %q missing from trace: %+v", want, mine.Spans)
		}
	}
	// The root-level stages tile the request: their durations must
	// account for the end-to-end latency within measurement slop (the
	// gaps are a breaker check and channel handoffs).
	slopUS := int64(5000) // 5ms absolute floor for CI jitter
	if diff := mine.DurationUS - rootSum; diff < -slopUS || diff > mine.DurationUS/4+slopUS {
		t.Errorf("root spans sum to %dus but request took %dus", rootSum, mine.DurationUS)
	}

	// The batch trace carries the pipeline stages.
	if batchTrace != nil {
		bNames := map[string]bool{}
		for _, sp := range batchTrace.Spans {
			bNames[sp.Name] = true
		}
		for _, want := range []string{"coalesce_wait", "queue_wait", "cache_probe", "replay"} {
			if !bNames[want] {
				t.Errorf("batch trace missing span %q: %+v", want, batchTrace.Spans)
			}
		}
	}
}

// TestInboundTraceIDHonored checks X-Request-Id and traceparent
// propagation end to end.
func TestInboundTraceIDHonored(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/measure",
		strings.NewReader(`{"workload":"goboard","scale":"test"}`))
	req.Header.Set("X-Request-Id", "my-test-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-test-trace-1" {
		t.Errorf("echoed id %q, want my-test-trace-1", got)
	}

	req, _ = http.NewRequest("POST", ts.URL+"/v1/measure",
		strings.NewReader(`{"workload":"goboard","scale":"test"}`))
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("traceparent-derived id %q", got)
	}

	found := 0
	for _, tr := range debugRequests(t, ts.URL, "") {
		if tr.ID == "my-test-trace-1" || tr.ID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d/2 inbound-ID traces in the flight recorder", found)
	}
}

// TestErrorBodiesCarryTraceID checks that every rejection class echoes
// the trace ID in its JSON body and that 429/503/504 all carry
// Retry-After.
func TestErrorBodiesCarryTraceID(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	sv, ts := newTestService(t, Options{
		Workers: 1, QueueDepth: 1, CoalesceWindow: time.Millisecond,
	})
	block := make(chan struct{})
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		<-block
		return make([]fvcache.MeasureResult, len(b.configs)), nil
	}
	defer close(block)

	// 400: bad request still carries a trace id.
	resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ew errorWire
	if err := json.Unmarshal(data, &ew); err != nil {
		t.Fatal(err)
	}
	if ew.TraceID == "" || ew.TraceID != resp.Header.Get("X-Request-Id") {
		t.Errorf("400 body trace_id %q, header %q", ew.TraceID, resp.Header.Get("X-Request-Id"))
	}

	// 504: deadline fires while the executor blocks; Retry-After
	// must be present.
	resp, data = postJSON(t, ts.URL+"/v1/measure",
		`{"workload":"goboard","scale":"test","deadline_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &ew); err != nil {
		t.Fatal(err)
	}
	if ew.TraceID == "" {
		t.Error("504 body carries no trace_id")
	}
	if !ew.Retryable || ew.Reason != "deadline_exceeded" {
		t.Errorf("504 body: %+v", ew)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 carries no Retry-After header")
	}

	// Saturate queue + workers for a 429 (distinct workloads so nothing
	// coalesces: one executing + one queued + the rest rejected). The
	// first workload is held back as the probe; the sleep lets the
	// saturation batches dispatch first so the probe cannot win the
	// lone queue slot, and the probe's own deadline unsticks it (504,
	// retried) if it ever does.
	wl := fvcache.Workloads()
	probe := fmt.Sprintf(`{"workload":%q,"scale":"test","deadline_ms":500}`, wl[0].Name)
	for i := 1; i < len(wl); i++ {
		body := fmt.Sprintf(`{"workload":%q,"scale":"test"}`, wl[i].Name)
		go http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
	}
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	saw429 := false
	for time.Now().Before(deadline) && !saw429 {
		resp, data = postJSON(t, ts.URL+"/v1/measure", probe)
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if err := json.Unmarshal(data, &ew); err != nil {
				t.Fatal(err)
			}
			if ew.TraceID == "" {
				t.Error("429 body carries no trace_id")
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 carries no Retry-After header")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw429 {
		t.Error("never observed a 429 despite saturated queue")
	}
}

// TestDebugRequestsFiltersHTTP checks ?slowest= and ?errors= against a
// live server.
func TestDebugRequestsFiltersHTTP(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard","scale":"test"}`)
	postJSON(t, ts.URL+"/v1/measure", `{"workload":"bad-workload"}`)

	errsOnly := debugRequests(t, ts.URL, "?errors=1")
	if len(errsOnly) == 0 {
		t.Fatal("errors filter returned nothing")
	}
	for _, tr := range errsOnly {
		if tr.Status < 400 {
			t.Errorf("errors filter leaked status %d", tr.Status)
		}
	}
	slow := debugRequests(t, ts.URL, "?slowest=1")
	if len(slow) != 1 {
		t.Fatalf("slowest=1 returned %d traces", len(slow))
	}
}

// TestMRCSummaryCarriesTraceID checks the /v1/mrc summary stanza.
func TestMRCSummaryCarriesTraceID(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	_, ts := newTestService(t, Options{})
	resp, data := postJSON(t, ts.URL+"/v1/mrc",
		`{"workload":"goboard","scale":"test","max_size_bytes":65536}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var summary struct {
		Summary mrcSummaryWire `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Summary.TraceID == "" {
		t.Error("mrc summary carries no trace_id")
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("mrc response carries no X-Request-Id")
	}
}
