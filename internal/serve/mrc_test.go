// End-to-end tests for /v1/mrc: request validation, singleflight
// coalescing of identical concurrent requests, durable result-cache
// warm hits (bit-identical replies), and NDJSON streaming.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fvcache"
	"fvcache/internal/resultcache"
)

// mrcLines splits an NDJSON body into its point lines and the summary.
func mrcLines(t *testing.T, body []byte) (points []mrcPointWire, summary mrcSummaryWire) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawSummary := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", line)
		}
		var wrap struct {
			Point   *mrcPointWire   `json:"point"`
			Summary *mrcSummaryWire `json:"summary"`
		}
		if err := json.Unmarshal(line, &wrap); err != nil {
			t.Fatalf("non-JSON NDJSON line %q: %v", line, err)
		}
		switch {
		case wrap.Point != nil:
			points = append(points, *wrap.Point)
		case wrap.Summary != nil:
			summary = *wrap.Summary
			sawSummary = true
		default:
			t.Fatalf("line is neither point nor summary: %s", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatalf("no summary line in body:\n%s", body)
	}
	return points, summary
}

// TestMRCBadRequests is the endpoint's 4xx table.
func TestMRCBadRequests(t *testing.T) {
	_, ts := newTestService(t, Options{})

	resp, err := http.Get(ts.URL + "/v1/mrc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"workload":`},
		{"unknown workload", `{"workload":"nope"}`},
		{"bad scale", `{"workload":"goboard","scale":"huge"}`},
		{"non-pow2 line", `{"workload":"goboard","line_bytes":24}`},
		{"line below word", `{"workload":"goboard","line_bytes":2}`},
		{"non-pow2 sets", `{"workload":"goboard","set_counts":[3]}`},
		{"sets above max", `{"workload":"goboard","max_size_bytes":1024,"set_counts":[64]}`},
		{"negative deadline", `{"workload":"goboard","deadline_ms":-5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/mrc", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", resp.StatusCode, data)
			}
			var e errorWire
			if err := json.Unmarshal(data, &e); err != nil || e.Message == "" {
				t.Errorf("malformed error body: %s", data)
			}
			if e.Retryable {
				t.Errorf("4xx marked retryable: %s", data)
			}
		})
	}
}

// TestMRCEndToEnd drives a real analysis through the endpoint and
// cross-checks the streamed curve against a direct facade call.
func TestMRCEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Options{})

	resp, data := postJSON(t, ts.URL+"/v1/mrc",
		`{"workload":"goboard","scale":"test","line_bytes":32,"max_size_bytes":16384,"set_counts":[1,16]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	points, sum := mrcLines(t, data)

	want, err := fvcache.MissRateCurves(context.Background(), fvcache.MRCRequest{
		Workload: "goboard", Scale: fvcache.Test,
		LineBytes: 32, MaxSizeBytes: 16384, SetCounts: []int{1, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantPoints []mrcPointWire
	for _, c := range want.Curves {
		for _, p := range c.Points {
			wantPoints = append(wantPoints, mrcPointWire{
				Sets: c.Sets, SizeBytes: p.SizeBytes, Assoc: p.Assoc,
				Misses: p.Misses, MissRatio: p.MissRatio,
			})
		}
	}
	if len(points) != len(wantPoints) {
		t.Fatalf("%d streamed points, want %d", len(points), len(wantPoints))
	}
	for i := range points {
		if points[i] != wantPoints[i] {
			t.Errorf("point %d: got %+v, want %+v", i, points[i], wantPoints[i])
		}
	}
	if sum.Accesses != want.Accesses || sum.Loads != want.Loads ||
		sum.Stores != want.Stores || sum.DistinctLines != want.DistinctLines {
		t.Errorf("summary totals diverge: %+v vs %+v", sum, want)
	}
	if sum.Curves != 2 || sum.Points != len(wantPoints) || sum.CacheHit {
		t.Errorf("summary malformed: %+v", sum)
	}
}

// TestMRCCoalescing: identical concurrent requests share ONE analysis
// flight. The exec hook is stubbed to block until every client has
// joined, so coalescing cannot be timing-dependent.
func TestMRCCoalescing(t *testing.T) {
	const clients = 6
	sv, ts := newTestService(t, Options{})

	release := make(chan struct{})
	var nExec atomic.Int32
	sv.execMRC = func(ctx context.Context, req fvcache.MRCRequest) (*fvcache.MRCResult, error) {
		nExec.Add(1)
		<-release
		return &fvcache.MRCResult{
			LineBytes: req.LineBytes,
			Accesses:  100, Loads: 60, Stores: 40, DistinctLines: 10,
			Curves: []fvcache.MRCCurve{{Sets: 1, Points: []fvcache.MRCPoint{
				{SizeBytes: 32, Assoc: 1, Misses: 50, MissRatio: 0.5},
			}}},
		}, nil
	}

	body := `{"workload":"goboard","line_bytes":32,"max_size_bytes":32}`
	var wg sync.WaitGroup
	summaries := make([]mrcSummaryWire, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/mrc", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			_, summaries[i] = mrcLines(t, data)
		}()
	}
	// Release only after every client holds a seat in the flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sv.mrcMu.Lock()
		joined := 0
		for _, f := range sv.mrcFlights {
			joined += f.requests
		}
		sv.mrcMu.Unlock()
		if joined >= clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the flight", joined, clients)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := nExec.Load(); n != 1 {
		t.Errorf("%d analysis executions for %d identical requests, want 1", n, clients)
	}
	for i, s := range summaries {
		if s.Requests != clients || !s.Coalesced {
			t.Errorf("client %d: summary %+v, want requests=%d coalesced=true", i, s, clients)
		}
		if s.Accesses != 100 {
			t.Errorf("client %d: wrong curve delivered: %+v", i, s)
		}
	}
}

// TestMRCResultCacheWarmHit: a repeated request is answered from the
// durable result cache — no second analysis pass — and its streamed
// point lines are bit-identical to the cold reply.
func TestMRCResultCacheWarmHit(t *testing.T) {
	cache, err := resultcache.Open(resultcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sv, ts := newTestService(t, Options{ResultCache: cache})

	nExec := 0
	inner := sv.execMRC
	sv.execMRC = func(ctx context.Context, req fvcache.MRCRequest) (*fvcache.MRCResult, error) {
		nExec++
		return inner(ctx, req)
	}

	body := `{"workload":"strproc","line_bytes":32,"max_size_bytes":8192,"set_counts":[1,8]}`
	resp, cold := postJSON(t, ts.URL+"/v1/mrc", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}
	_, coldSum := mrcLines(t, cold)
	if coldSum.CacheHit {
		t.Fatal("cold request reported a cache hit")
	}
	if nExec != 1 {
		t.Fatalf("cold request ran %d passes, want 1", nExec)
	}

	resp, warm := postJSON(t, ts.URL+"/v1/mrc", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, warm)
	}
	warmPoints, warmSum := mrcLines(t, warm)
	if !warmSum.CacheHit {
		t.Error("warm request did not report a cache hit")
	}
	if nExec != 1 {
		t.Errorf("warm request re-ran the analysis (%d passes)", nExec)
	}

	// Bit-identity of the curve: the point-line prefix of both replies
	// must match byte for byte (the summary differs only in cache_hit).
	coldPrefix := cold[:bytes.LastIndexByte(cold[:len(cold)-1], '\n')+1]
	warmPrefix := warm[:bytes.LastIndexByte(warm[:len(warm)-1], '\n')+1]
	if !bytes.Equal(coldPrefix, warmPrefix) {
		t.Errorf("warm point stream diverges from cold:\ncold: %s\nwarm: %s", coldPrefix, warmPrefix)
	}
	if warmSum.Accesses != coldSum.Accesses || warmSum.Loads != coldSum.Loads ||
		warmSum.Stores != coldSum.Stores || warmSum.DistinctLines != coldSum.DistinctLines ||
		warmSum.Points != coldSum.Points {
		t.Errorf("warm summary diverges: %+v vs %+v", warmSum, coldSum)
	}
	if len(warmPoints) != warmSum.Points {
		t.Errorf("streamed %d points, summary says %d", len(warmPoints), warmSum.Points)
	}

	// The cached reply must also survive a cache reopen (durability).
	if got, ok := cache.Get(mrcCacheKey(mustMRCReq(t, "strproc"))); !ok || len(got) == 0 {
		t.Error("curve not present in the durable cache")
	}
}

func mustMRCReq(t *testing.T, w string) fvcache.MRCRequest {
	t.Helper()
	req, err := fvcache.MRCRequest{
		Workload: w, Scale: fvcache.Test,
		LineBytes: 32, MaxSizeBytes: 8192, SetCounts: []int{1, 8},
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestMRCCodecRoundTrip pins the cache framing: encode → decode is the
// identity, and a shape mismatch is rejected rather than misread.
func TestMRCCodecRoundTrip(t *testing.T) {
	req, err := fvcache.MRCRequest{
		Workload: "goboard", Scale: fvcache.Test,
		LineBytes: 64, MaxSizeBytes: 1 << 10, SetCounts: []int{1, 4},
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fvcache.MissRateCurves(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := decodeMRC(encodeMRC(res), req)
	if !ok {
		t.Fatal("decode rejected its own encoding")
	}
	if a, b := mustJSON(t, res), mustJSON(t, dec); a != b {
		t.Errorf("round trip diverges:\n%s\n%s", a, b)
	}
	if _, ok := decodeMRC(encodeMRC(res)[:2], req); ok {
		t.Error("truncated entry decoded successfully")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMRCDrainingRejects: a draining server refuses new MRC work with
// a retryable 503.
func TestMRCDrainingRejects(t *testing.T) {
	sv := New(Options{})
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/mrc", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, data)
	}
	var e errorWire
	if err := json.Unmarshal(data, &e); err != nil || !e.Retryable {
		t.Errorf("drain rejection must be retryable: %s", data)
	}
}
