// Fleet e2e: 3 nodes on a consistent-hash ring, driven through the
// public client SDK. Proves single ownership (every config's batches
// execute on exactly one node), bit-identical results vs a single-node
// server, local-fallback degradation when the owner dies (no 5xx
// storm, no corrupt results) and clean re-join after recovery.
package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"fvcache/api"
	"fvcache/client"
	"fvcache/internal/fleet"
	"fvcache/internal/obs"
)

type fleetNode struct {
	sv   *Server
	hs   *http.Server
	addr string // host:port, stable across restarts
	url  string
	fl   *fleet.Fleet
	cli  *client.Client
}

// restart re-listens on the node's original port (after a kill) and
// serves again with the same Server — simulating a process coming back
// on its advertised address.
func (n *fleetNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		t.Fatalf("re-listen %s: %v", n.addr, err)
	}
	n.hs = &http.Server{Handler: n.sv.Handler()}
	go n.hs.Serve(ln)
}

// startFleet boots n fvcached-equivalent nodes with a shared static
// membership.
func startFleet(t *testing.T, n int, fo fleet.Options, so Options) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		fl, err := fleet.New(fleet.Options{
			Self: urls[i], Peers: urls,
			VNodes: fo.VNodes, FailThreshold: fo.FailThreshold, Cooldown: fo.Cooldown,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := so
		opt.Fleet = fl
		sv := New(opt)
		hs := &http.Server{Handler: sv.Handler()}
		go hs.Serve(lns[i])
		cli, err := client.New(urls[i], client.Options{NoRetry: true})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &fleetNode{sv: sv, hs: hs, addr: lns[i].Addr().String(), url: urls[i], fl: fl, cli: cli}
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			sv.Shutdown(ctx)
		})
	}
	return nodes
}

// fleetConfigPool is a small mix of distinct geometries.
func fleetConfigPool() []api.Config {
	return []api.Config{
		{MainBytes: 4096},
		{MainBytes: 8192},
		{MainBytes: 8192, Assoc: 2},
		{MainBytes: 8192, FVCEntries: 128},
		{MainBytes: 16384, FVCEntries: 256},
		{MainBytes: 8192, VictimEntries: 8},
	}
}

func TestFleetSingleOwnershipBitIdentical(t *testing.T) {
	nodes := startFleet(t, 3, fleet.Options{}, Options{CoalesceWindow: time.Millisecond})

	// Single-node reference for bit-identical comparison.
	_, ref := newTestService(t, Options{CoalesceWindow: time.Millisecond})
	refCli, err := client.New(ref.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	ownerOf := map[string]string{} // fingerprint -> executing node URL
	for _, cfg := range fleetConfigPool() {
		req := api.MeasureRequest{Workload: "goboard", Config: &cfg}
		want, err := refCli.Measure(ctx, req)
		if err != nil {
			t.Fatalf("reference measure: %v", err)
		}
		wantJSON, _ := json.Marshal(want.Results)

		fp := cfg.Normalized().Fingerprint()
		for _, n := range nodes {
			got, err := n.cli.Measure(ctx, req)
			if err != nil {
				t.Fatalf("measure via %s: %v", n.url, err)
			}
			gotJSON, _ := json.Marshal(got.Results)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("config %s via %s: results differ from single-node\n got %s\nwant %s",
					fp, n.url, gotJSON, wantJSON)
			}
			if got.Batch.Node == "" {
				t.Fatalf("config %s via %s: batch carries no node identity", fp, n.url)
			}
			if prev, ok := ownerOf[fp]; ok && prev != got.Batch.Node {
				t.Errorf("config %s executed on two owners: %s and %s", fp, prev, got.Batch.Node)
			}
			ownerOf[fp] = got.Batch.Node
			// A request answered by a non-owner must carry the proxy
			// marker; one answered by the owner itself must not.
			if n.url != got.Batch.Node && got.ForwardedBy != n.url {
				t.Errorf("config %s via %s executed on %s but ForwardedBy=%q",
					fp, n.url, got.Batch.Node, got.ForwardedBy)
			}
			if n.url == got.Batch.Node && got.ForwardedBy != "" {
				t.Errorf("config %s: self-owned response claims ForwardedBy=%q", fp, got.ForwardedBy)
			}
		}
	}

	// The pool should spread over more than one node, and the
	// forwarding counters must account for every cross-node request.
	owners := map[string]bool{}
	for _, u := range ownerOf {
		owners[u] = true
	}
	if len(owners) < 2 {
		t.Errorf("all %d configs landed on one node; ring is not spreading", len(ownerOf))
	}
	var forwarded, received, owned uint64
	for _, n := range nodes {
		c := n.sv.FleetCounters()
		forwarded += c.Forwarded
		received += c.ReceivedForwarded
		owned += c.LocalOwned
		if c.ForwardFallback != 0 {
			t.Errorf("node %s reports %d fallbacks with all peers alive", n.url, c.ForwardFallback)
		}
	}
	if forwarded == 0 || received == 0 {
		t.Fatalf("no forwarding happened (forwarded=%d received=%d)", forwarded, received)
	}
	if forwarded != received {
		t.Errorf("forwarded %d != received %d", forwarded, received)
	}
	t.Logf("owners=%d forwarded=%d received=%d local-owned=%d", len(owners), forwarded, received, owned)
}

func TestFleetFallbackAndRejoin(t *testing.T) {
	nodes := startFleet(t, 3,
		fleet.Options{FailThreshold: 1, Cooldown: 300 * time.Millisecond},
		Options{CoalesceWindow: time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Find a config that node 0 does NOT own, so node 0 must forward.
	var cfg api.Config
	var victim *fleetNode
	for _, c := range fleetConfigPool() {
		c := c
		req := api.MeasureRequest{Workload: "goboard", Config: &c}
		resp, err := nodes[0].cli.Measure(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Batch.Node != nodes[0].url {
			cfg = c
			for _, n := range nodes {
				if n.url == resp.Batch.Node {
					victim = n
				}
			}
			break
		}
	}
	if victim == nil {
		t.Fatal("no config owned by a peer of node 0; cannot exercise fallback")
	}
	req := api.MeasureRequest{Workload: "goboard", Config: &cfg}
	want, err := nodes[0].cli.Measure(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Results)

	// Kill the owner. Every subsequent request through node 0 must
	// still succeed (local fallback), with identical results and
	// without a single 5xx.
	victim.hs.Close()
	before := nodes[0].sv.FleetCounters()
	for i := 0; i < 5; i++ {
		got, err := nodes[0].cli.Measure(ctx, req)
		if err != nil {
			t.Fatalf("request %d during owner outage: %v", i, err)
		}
		if gotJSON, _ := json.Marshal(got.Results); string(gotJSON) != string(wantJSON) {
			t.Fatalf("request %d during outage: corrupt results\n got %s\nwant %s", i, gotJSON, wantJSON)
		}
		if got.Batch.Node != nodes[0].url {
			t.Fatalf("request %d during outage executed on %s, want local %s", i, got.Batch.Node, nodes[0].url)
		}
	}
	after := nodes[0].sv.FleetCounters()
	if after.ForwardFallback <= before.ForwardFallback {
		t.Fatalf("fallback counter did not move: %+v -> %+v", before, after)
	}
	// The peer breaker must have opened: most outage requests skip the
	// dial entirely instead of paying a connect timeout each.
	var down bool
	for _, p := range nodes[0].fl.Peers() {
		if p.URL() == victim.url && nodes[0].fl.State(p) == fleet.StateDown {
			down = true
		}
	}
	if !down {
		t.Errorf("victim peer not marked down on node 0 after repeated failures")
	}

	// Re-join: the owner comes back on its advertised address. After
	// the cooldown admits a probe, forwarding must resume.
	victim.restart(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := nodes[0].cli.Measure(ctx, req)
		if err != nil {
			t.Fatalf("measure after re-join: %v", err)
		}
		if got.Batch.Node == victim.url {
			if gotJSON, _ := json.Marshal(got.Results); string(gotJSON) != string(wantJSON) {
				t.Fatalf("post-rejoin results corrupt:\n got %s\nwant %s", gotJSON, wantJSON)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forwarding never resumed after re-join (still executing on %s)", got.Batch.Node)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestFleetDebugEndpoints(t *testing.T) {
	nodes := startFleet(t, 3, fleet.Options{}, Options{CoalesceWindow: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Generate a little traffic so counters and latency series exist.
	for i, n := range nodes {
		cfg := api.Config{MainBytes: 4096 << uint(i%2)}
		if _, err := n.cli.Measure(ctx, api.MeasureRequest{Workload: "goboard", Config: &cfg}); err != nil {
			t.Fatal(err)
		}
	}

	// /debug/fleet: ring layout + counters.
	resp, err := http.Get(nodes[0].url + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dbg struct {
		Enabled  bool                 `json:"enabled"`
		Self     string               `json:"self"`
		Size     int                  `json:"size"`
		Peers    []fleet.PeerSnapshot `json:"peers"`
		Counters fleetCounters        `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if !dbg.Enabled || dbg.Size != 3 || len(dbg.Peers) != 3 || dbg.Self != nodes[0].url {
		t.Fatalf("bad /debug/fleet: %+v", dbg)
	}
	var share float64
	for _, p := range dbg.Peers {
		share += p.Share
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("peer shares sum to %.3f", share)
	}

	// /debug/metrics?fleet=1: merged snapshot names all three nodes.
	resp2, err := http.Get(nodes[0].url + "/debug/metrics?fleet=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var agg struct {
		Fleet  bool     `json:"fleet"`
		Nodes  []string `json:"nodes"`
		Failed []string `json:"failed_nodes"`
		Snapshot struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if !agg.Fleet || len(agg.Nodes) != 3 || len(agg.Failed) != 0 {
		t.Fatalf("bad fleet metrics aggregation: %+v", agg)
	}
	if obs.Enabled && agg.Snapshot.Counters["serve_requests_total"] == 0 {
		t.Error("merged snapshot lost the request counter")
	}
}
