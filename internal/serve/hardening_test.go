// Tests for the fault-hardened serving path: per-request deadlines,
// the per-(workload, scale) circuit breaker, panic containment,
// readiness vs liveness, and the durable result cache behind
// /v1/measure.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"fvcache"
	"fvcache/internal/faultinject"
	"fvcache/internal/resultcache"
)

// TestDeadlineExceeded: a request whose deadline fires while its batch
// is still executing must get 504 with a retryable, machine-readable
// body, and the executor must have seen the deadline on its context.
func TestDeadlineExceeded(t *testing.T) {
	sv, ts := newTestService(t, Options{Workers: 1, CoalesceWindow: time.Millisecond})
	sawDeadline := make(chan bool, 1)
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		_, ok := ctx.Deadline()
		sawDeadline <- ok
		<-ctx.Done() // simulate a replay that only stops at a chunk boundary
		return nil, ctx.Err()
	}

	resp, data := postJSON(t, ts.URL+"/v1/measure?deadline_ms=50", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	var e errorWire
	if err := json.Unmarshal(data, &e); err != nil || !e.Retryable || e.Reason != "deadline_exceeded" {
		t.Errorf("504 body not retryable/deadline_exceeded: %s", data)
	}
	if ok := <-sawDeadline; !ok {
		t.Error("executor context carried no deadline")
	}
}

// TestDeadlineDefault: the server default applies when the request
// names none, and the body's deadline_ms works like the query form.
func TestDeadlineDefault(t *testing.T) {
	sv, ts := newTestService(t, Options{
		Workers: 1, CoalesceWindow: time.Millisecond, DefaultDeadline: 50 * time.Millisecond,
	})
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp, _ := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("default deadline: status %d, want 504", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard","deadline_ms":40}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("body deadline_ms: status %d, want 504", resp.StatusCode)
	}
	// A malformed or negative deadline is the client's fault.
	for _, q := range []string{"?deadline_ms=abc", "?deadline_ms=-5"} {
		if resp, _ := postJSON(t, ts.URL+"/v1/measure"+q, `{"workload":"goboard"}`); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestBreakerShedsFailingKey: repeated executor panics on one
// (workload, scale) key must open its breaker — 503 + Retry-After +
// breaker_open — while a healthy key on the same server keeps serving.
// After the cooldown a probe is admitted and a healed executor closes
// the breaker again.
func TestBreakerShedsFailingKey(t *testing.T) {
	sv, ts := newTestService(t, Options{
		Workers: 2, CoalesceWindow: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
	})
	healed := false
	sv.exec = func(ctx context.Context, b *batch) ([]fvcache.MeasureResult, error) {
		if b.workload == "goboard" && !healed {
			panic("poisoned workload")
		}
		return make([]fvcache.MeasureResult, len(b.configs)), nil
	}

	// Two panics burn the threshold. harness.Recover must contain each
	// one: the request fails with 500, the process survives.
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking exec %d: status %d, want 500: %s", i, resp.StatusCode, data)
		}
		var e errorWire
		if err := json.Unmarshal(data, &e); err != nil || e.Retryable {
			t.Errorf("panic 500 marked retryable: %s", data)
		}
	}

	// The key is now shed without reaching the executor.
	resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open breaker response carries no Retry-After")
	}
	var e errorWire
	if err := json.Unmarshal(data, &e); err != nil || !e.Retryable || e.Reason != "breaker_open" {
		t.Errorf("breaker body not retryable/breaker_open: %s", data)
	}

	// A different workload is a different key: it must still serve.
	if resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"ccomp"}`); resp.StatusCode != http.StatusOK {
		t.Errorf("healthy key during open breaker: status %d: %s", resp.StatusCode, data)
	}

	// Heal the executor, wait out the cooldown: the half-open probe
	// succeeds and the key serves again.
	healed = true
	time.Sleep(150 * time.Millisecond)
	if resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`); resp.StatusCode != http.StatusOK {
		t.Errorf("probe after cooldown: status %d: %s", resp.StatusCode, data)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`); resp.StatusCode != http.StatusOK {
		t.Errorf("closed breaker: status %d, want 200", resp.StatusCode)
	}
}

// TestBreakerHalfOpenRefails: a failing probe must re-open the breaker
// for another full cooldown instead of letting traffic through.
func TestBreakerHalfOpenRefails(t *testing.T) {
	b := newBreaker(1, 50*time.Millisecond)
	b.report("k", false) // opens
	if ok, _ := b.allow("k"); ok {
		t.Fatal("open breaker admitted a request")
	}
	time.Sleep(60 * time.Millisecond)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	// While the probe is in flight, everyone else keeps waiting.
	if ok, ra := b.allow("k"); ok || ra <= 0 {
		t.Fatalf("second caller during probe: ok=%v retryAfter=%v", ok, ra)
	}
	b.report("k", false) // probe fails: re-open
	if ok, _ := b.allow("k"); ok {
		t.Fatal("failed probe did not re-open the breaker")
	}
	time.Sleep(60 * time.Millisecond)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("no probe after second cooldown")
	}
	b.report("k", true) // probe succeeds: closed
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestReadinessGate: StartUnready keeps /readyz at 503 (while /healthz
// and the serving path stay up) until SetReady flips it — the boot
// recovery-scan window in fvcached.
func TestReadinessGate(t *testing.T) {
	sv, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond, StartUnready: true})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz before SetReady: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz before SetReady: %d, want 200", got)
	}
	sv.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz after SetReady: %d, want 200", got)
	}
}

// TestWarmRepeatBitIdentical is the acceptance gate for the durable
// result cache: for every registered workload, a repeat /v1/measure
// must be answered from the cache (batch.cache_hits == configs) with
// results byte-identical to the cold computation.
func TestWarmRepeatBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("measures every workload")
	}
	cache, err := resultcache.Open(resultcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond, ResultCache: cache})

	wls := fvcache.Workloads()
	if len(wls) < 18 {
		t.Fatalf("workload registry holds %d entries, want >= 18", len(wls))
	}
	// rawResp keeps Results as raw bytes so "bit-identical" means the
	// serialized numbers, not a float round trip.
	type rawResp struct {
		Results json.RawMessage `json:"results"`
		Batch   batchInfoWire   `json:"batch"`
	}
	for _, wl := range wls {
		body := fmt.Sprintf(`{"workload":%q,"config":{"fvc_entries":64}}`, wl.Name)
		resp, cold := postJSON(t, ts.URL+"/v1/measure", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s cold: status %d: %s", wl.Name, resp.StatusCode, cold)
		}
		resp, warm := postJSON(t, ts.URL+"/v1/measure", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s warm: status %d: %s", wl.Name, resp.StatusCode, warm)
		}
		var c, w rawResp
		if err := json.Unmarshal(cold, &c); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(warm, &w); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c.Results, w.Results) {
			t.Errorf("%s: warm results differ from cold:\ncold %s\nwarm %s", wl.Name, c.Results, w.Results)
		}
		if w.Batch.CacheHits != w.Batch.Configs {
			t.Errorf("%s: warm repeat hit %d/%d configs", wl.Name, w.Batch.CacheHits, w.Batch.Configs)
		}
		if c.Batch.CacheHits != 0 {
			t.Errorf("%s: cold request reported %d cache hits", wl.Name, c.Batch.CacheHits)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache counters did not move: %+v", st)
	}
}

// TestCacheDegradedStillServes: a result cache whose disk tier keeps
// failing (ENOSPC on every promotion) must degrade to memory-only and
// never take the serving path down — compute-only, not outage.
func TestCacheDegradedStillServes(t *testing.T) {
	in := faultinject.New(11)
	ffs := in.WrapFS(resultcache.OSFS)
	ffs.Arm(faultinject.FSENOSPC, 100)
	cache, err := resultcache.Open(resultcache.Options{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Options{CoalesceWindow: time.Millisecond, ResultCache: cache})

	// Enough repeats to cross the admission threshold and attempt the
	// (failing) durable write; every request must still succeed.
	for i := 0; i < 4; i++ {
		if resp, data := postJSON(t, ts.URL+"/v1/measure", `{"workload":"goboard"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with failing disk tier: status %d: %s", i, resp.StatusCode, data)
		}
	}
	if st := cache.Stats(); !st.Degraded || st.Degradations == 0 {
		t.Errorf("disk tier never degraded despite ENOSPC: %+v", st)
	}
}
