package fvc_test

import (
	"fmt"

	"fvcache/internal/fvc"
)

// The paper's Figure 7: seven frequent values encoded in 3-bit codes,
// with the all-ones code marking infrequent words.
func ExampleTable_Encode() {
	table := fvc.MustTable(3, []uint32{0, 0xffffffff, 1, 2, 4, 8, 10})
	line := []uint32{0, 1000, 0, 99999, 0xffffffff, 10, 1, 0xffffffff}
	for _, v := range line {
		code, frequent := table.Encode(v)
		if frequent {
			fmt.Printf("%03b ", code)
		} else {
			fmt.Printf("%03b(esc) ", code)
		}
	}
	fmt.Println()
	// Output: 000 111(esc) 000 111(esc) 001 110 010 001
}

func ExampleFVC_Lookup() {
	table := fvc.MustTable(3, []uint32{0, 1, 2})
	cache := fvc.MustNew(fvc.Params{Entries: 64, LineBytes: 16, Bits: 3}, table)

	// A line evicted from the main cache leaves its frequent-value
	// footprint: words holding 0/1/2 get codes, 999 is escaped.
	lineAddr := cache.LineAddr(0x1000)
	cache.InstallFootprint(lineAddr, []uint32{0, 999, 2, 1})

	p := cache.Lookup(0x1008) // word 2 of the line
	fmt.Println(p.TagMatch, p.WordFrequent, p.Value)
	p = cache.Lookup(0x1004) // word 1: infrequent
	fmt.Println(p.TagMatch, p.WordFrequent)
	// Output:
	// true true 2
	// true false
}
