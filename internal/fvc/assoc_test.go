package fvc

import "testing"

func TestParamsAssocValidate(t *testing.T) {
	good := []Params{
		{Entries: 512, LineBytes: 32, Bits: 3, Assoc: 2},
		{Entries: 512, LineBytes: 32, Bits: 3, Assoc: 4},
		{Entries: 8, LineBytes: 32, Bits: 3, Assoc: 8}, // fully associative
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{
		{Entries: 512, LineBytes: 32, Bits: 3, Assoc: -1},
		{Entries: 512, LineBytes: 32, Bits: 3, Assoc: 1024}, // > entries
		{Entries: 8, LineBytes: 32, Bits: 3, Assoc: 3},      // 8%3 != 0
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
	if got := (Params{Entries: 512, Assoc: 2}).Sets(); got != 256 {
		t.Errorf("Sets = %d, want 256", got)
	}
}

// A 2-way FVC holds two conflicting lines a direct-mapped one cannot.
func TestAssociativeFVCHoldsConflictingLines(t *testing.T) {
	tbl := MustTable(3, []uint32{0})
	// 4 entries, 2-way: 2 sets. Lines 0 and 2 map to set 0.
	f := MustNew(Params{Entries: 4, LineBytes: 16, Bits: 3, Assoc: 2}, tbl)
	zeros := []uint32{0, 0, 0, 0}
	f.InstallFootprint(0, zeros)
	f.InstallFootprint(2, zeros)
	if !f.Lookup(0*16).TagMatch || !f.Lookup(2*16).TagMatch {
		t.Fatal("2-way FVC must hold both conflicting lines")
	}
	// A direct-mapped FVC of the same size cannot.
	dm := MustNew(Params{Entries: 4, LineBytes: 16, Bits: 3}, tbl)
	dm.InstallFootprint(0, zeros)
	dm.InstallFootprint(4, zeros) // 4 & 3 == 0: conflicts in DM
	if dm.Lookup(0).TagMatch {
		t.Error("direct-mapped FVC must have displaced the first line")
	}
}

func TestAssociativeFVCLRU(t *testing.T) {
	tbl := MustTable(3, []uint32{0})
	f := MustNew(Params{Entries: 4, LineBytes: 16, Bits: 3, Assoc: 2}, tbl)
	zeros := []uint32{0, 0, 0, 0}
	f.InstallFootprint(0, zeros) // set 0, way A
	f.InstallFootprint(2, zeros) // set 0, way B
	f.Lookup(0)                  // Lookup does NOT refresh LRU (probe only)
	f.WriteWord(0, 0)            // but a write hit does
	displaced := f.InstallFootprint(4, zeros)
	if !displaced.Valid || displaced.Tag != 2 {
		t.Errorf("LRU displacement chose %+v, want line 2", displaced)
	}
	if !f.Lookup(0).TagMatch {
		t.Error("recently written line must survive")
	}
}

func TestAssociativeInvalidateAndWriteMiss(t *testing.T) {
	tbl := MustTable(3, []uint32{0, 5})
	f := MustNew(Params{Entries: 8, LineBytes: 16, Bits: 3, Assoc: 4}, tbl)
	f.InstallWriteMiss(0x100, 5)
	p := f.Lookup(0x100)
	if !p.WordFrequent || p.Value != 5 {
		t.Fatalf("Lookup after write miss = %+v", p)
	}
	e := f.Invalidate(0x100)
	if !e.Valid || !e.Dirty {
		t.Errorf("Invalidate = %+v", e)
	}
	if f.Lookup(0x100).TagMatch {
		t.Error("invalidated line must miss")
	}
}
