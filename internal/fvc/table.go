// Package fvc implements the Frequent Value Cache of Zhang, Yang and
// Gupta (ASPLOS 2000): a small direct-mapped, value-centric cache that
// stores, per cached line, only an address tag and a few-bit code per
// word. Each code names one of the top-N frequently accessed values or
// the reserved "infrequent" escape, compressing a 32-bit word to 1-3
// bits while preserving random access within the line.
package fvc

import "fmt"

// Table is the frequent value table (FVT): the ordered set of values
// the FVC can encode. With a code width of b bits, 2^b-1 values are
// encodable and the all-ones code is reserved for "infrequent".
//
// Encode and Contains run once per word on the simulator's hot path
// (every footprint insertion scans a whole line), so small tables —
// the paper's configurations hold at most 7 values — are indexed by a
// linear scan over the value array, which beats a map lookup at these
// sizes and allocates nothing. Tables above smallTableMax values keep
// the map index.
type Table struct {
	bits   int
	values []uint32
	index  map[uint32]uint8 // nil for tables of <= smallTableMax values
}

// smallTableMax is the largest table indexed by linear scan.
const smallTableMax = 16

// MaxValues returns the number of frequent values a b-bit code can
// name (one code is reserved as the escape).
func MaxValues(bits int) int { return (1 << bits) - 1 }

// NewTable builds an FVT with the given code width (1, 2 or 3 bits in
// the paper; any width in [1,8] is accepted) holding values. Values
// beyond the width's capacity are rejected, as are duplicates.
func NewTable(bits int, values []uint32) (*Table, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("fvc: code width must be in [1,8] bits, got %d", bits)
	}
	if len(values) > MaxValues(bits) {
		return nil, fmt.Errorf("fvc: %d values exceed capacity %d of a %d-bit code",
			len(values), MaxValues(bits), bits)
	}
	var idx map[uint32]uint8
	if len(values) > smallTableMax {
		idx = make(map[uint32]uint8, len(values))
	}
	for i, v := range values {
		for _, prev := range values[:i] {
			if prev == v {
				return nil, fmt.Errorf("fvc: duplicate frequent value %#x", v)
			}
		}
		if idx != nil {
			idx[v] = uint8(i)
		}
	}
	return &Table{bits: bits, values: append([]uint32(nil), values...), index: idx}, nil
}

// MustTable is NewTable that panics on error, for tests and fixed
// configurations.
func MustTable(bits int, values []uint32) *Table {
	t, err := NewTable(bits, values)
	if err != nil {
		panic(err)
	}
	return t
}

// Bits returns the code width.
func (t *Table) Bits() int { return t.bits }

// Escape returns the reserved "infrequent value" code (all ones).
func (t *Table) Escape() uint8 { return uint8(1<<t.bits) - 1 }

// Len returns the number of frequent values in the table.
func (t *Table) Len() int { return len(t.values) }

// Values returns a copy of the table's values in code order.
func (t *Table) Values() []uint32 { return append([]uint32(nil), t.values...) }

// Encode maps a value to its code; ok is false (and the escape code is
// returned) when v is not a frequent value.
func (t *Table) Encode(v uint32) (code uint8, ok bool) {
	if t.index != nil {
		if c, found := t.index[v]; found {
			return c, true
		}
		return t.Escape(), false
	}
	for i, tv := range t.values {
		if tv == v {
			return uint8(i), true
		}
	}
	return t.Escape(), false
}

// Decode returns the value a non-escape code names.
// It panics on the escape code or an unassigned code: callers must
// check for the escape first (the hardware analogue is that the
// decoder is only enabled on a frequent-value hit).
func (t *Table) Decode(code uint8) uint32 {
	if int(code) >= len(t.values) {
		panic(fmt.Sprintf("fvc: Decode of non-value code %d (table holds %d values)", code, len(t.values)))
	}
	return t.values[code]
}

// Contains reports whether v is in the table.
func (t *Table) Contains(v uint32) bool {
	if t.index != nil {
		_, ok := t.index[v]
		return ok
	}
	for _, tv := range t.values {
		if tv == v {
			return true
		}
	}
	return false
}
