package fvc

import (
	"testing"
	"testing/quick"
)

func TestMaxValues(t *testing.T) {
	cases := map[int]int{1: 1, 2: 3, 3: 7, 4: 15}
	for bits, want := range cases {
		if got := MaxValues(bits); got != want {
			t.Errorf("MaxValues(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0, nil); err == nil {
		t.Error("width 0 must be rejected")
	}
	if _, err := NewTable(9, nil); err == nil {
		t.Error("width 9 must be rejected")
	}
	if _, err := NewTable(1, []uint32{0, 1}); err == nil {
		t.Error("2 values in a 1-bit code must be rejected")
	}
	if _, err := NewTable(3, []uint32{0, 1, 0}); err == nil {
		t.Error("duplicate values must be rejected")
	}
	if _, err := NewTable(3, []uint32{0, 1, 2, 3, 4, 5, 6}); err != nil {
		t.Errorf("7 values in 3 bits should be fine: %v", err)
	}
}

func TestTableEncodeDecode(t *testing.T) {
	// The paper's Figure 7 table: values 0,-1,1,2,4,8,10 in 3 bits.
	vals := []uint32{0, 0xffffffff, 1, 2, 4, 8, 10}
	tbl := MustTable(3, vals)
	if tbl.Escape() != 7 {
		t.Fatalf("Escape = %d, want 7", tbl.Escape())
	}
	if tbl.Len() != 7 || tbl.Bits() != 3 {
		t.Fatalf("Len/Bits = %d/%d", tbl.Len(), tbl.Bits())
	}
	for i, v := range vals {
		code, ok := tbl.Encode(v)
		if !ok || code != uint8(i) {
			t.Errorf("Encode(%#x) = %d/%v, want %d/true", v, code, ok, i)
		}
		if got := tbl.Decode(uint8(i)); got != v {
			t.Errorf("Decode(%d) = %#x, want %#x", i, got, v)
		}
		if !tbl.Contains(v) {
			t.Errorf("Contains(%#x) = false", v)
		}
	}
	code, ok := tbl.Encode(99999)
	if ok || code != tbl.Escape() {
		t.Errorf("Encode(infrequent) = %d/%v, want escape/false", code, ok)
	}
	if tbl.Contains(99999) {
		t.Error("Contains(99999) = true")
	}
}

func TestTableDecodeEscapePanics(t *testing.T) {
	tbl := MustTable(3, []uint32{5})
	defer func() {
		if recover() == nil {
			t.Error("Decode(escape) must panic")
		}
	}()
	tbl.Decode(tbl.Escape())
}

func TestTableValuesCopy(t *testing.T) {
	tbl := MustTable(2, []uint32{10, 20})
	vals := tbl.Values()
	vals[0] = 99
	if got := tbl.Decode(0); got != 10 {
		t.Error("Values() must return a copy")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Entries: 512, LineBytes: 32, Bits: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Entries: 0, LineBytes: 32, Bits: 3},
		{Entries: 100, LineBytes: 32, Bits: 3}, // not power of two
		{Entries: 512, LineBytes: 2, Bits: 3},
		{Entries: 512, LineBytes: 48, Bits: 3},
		{Entries: 512, LineBytes: 32, Bits: 0},
		{Entries: 512, LineBytes: 32, Bits: 9},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v should fail validation", p)
		}
	}
}

func TestParamsSizes(t *testing.T) {
	// The paper: 512 entries, 8 words/line, 3 bits -> 24-bit lines,
	// 1.5KB of encoded data.
	p := Params{Entries: 512, LineBytes: 32, Bits: 3}
	if p.WordsPerLine() != 8 {
		t.Errorf("WordsPerLine = %d, want 8", p.WordsPerLine())
	}
	if p.DataBits() != 24 {
		t.Errorf("DataBits = %d, want 24", p.DataBits())
	}
	if got := p.DataSizeBytes(); got != 1536 {
		t.Errorf("DataSizeBytes = %v, want 1536 (1.5KB)", got)
	}
	if got := p.String(); got != "512e/3b/8wpl" {
		t.Errorf("String = %q", got)
	}
}

func newTestFVC(t *testing.T) *FVC {
	t.Helper()
	tbl := MustTable(3, []uint32{0, 0xffffffff, 1, 2, 4, 8, 10})
	return MustNew(Params{Entries: 4, LineBytes: 16, Bits: 3}, tbl)
}

func TestFVCLookupMiss(t *testing.T) {
	f := newTestFVC(t)
	p := f.Lookup(0x1000)
	if p.TagMatch || p.WordFrequent {
		t.Errorf("cold FVC lookup = %+v, want miss", p)
	}
}

func TestFVCInstallFootprintAndLookup(t *testing.T) {
	f := newTestFVC(t)
	// Line with words [0, 99999, 1, 0xffffffff]: words 0,2,3 frequent.
	la := f.LineAddr(0x1000)
	prev := f.InstallFootprint(la, []uint32{0, 99999, 1, 0xffffffff})
	if prev.Valid {
		t.Errorf("install into empty slot displaced %+v", prev)
	}
	cases := []struct {
		addr     uint32
		frequent bool
		value    uint32
	}{
		{0x1000, true, 0},
		{0x1004, false, 0},
		{0x1008, true, 1},
		{0x100c, true, 0xffffffff},
	}
	for _, c := range cases {
		p := f.Lookup(c.addr)
		if !p.TagMatch {
			t.Errorf("Lookup(%#x): no tag match", c.addr)
			continue
		}
		if p.WordFrequent != c.frequent {
			t.Errorf("Lookup(%#x).WordFrequent = %v, want %v", c.addr, p.WordFrequent, c.frequent)
		}
		if c.frequent && p.Value != c.value {
			t.Errorf("Lookup(%#x).Value = %#x, want %#x", c.addr, p.Value, c.value)
		}
	}
	if f.ValidEntries() != 1 {
		t.Errorf("ValidEntries = %d, want 1", f.ValidEntries())
	}
}

func TestFVCFootprintWrongLengthPanics(t *testing.T) {
	f := newTestFVC(t)
	defer func() {
		if recover() == nil {
			t.Error("short footprint must panic")
		}
	}()
	f.InstallFootprint(0, []uint32{0})
}

func TestFVCInstallIsClean(t *testing.T) {
	f := newTestFVC(t)
	la := f.LineAddr(0x1000)
	f.InstallFootprint(la, []uint32{0, 0, 0, 0})
	e := f.Invalidate(0x1000)
	if !e.Valid || e.Dirty {
		t.Errorf("footprint entry = %+v, want valid and clean", e)
	}
}

func TestFVCWriteWordHit(t *testing.T) {
	f := newTestFVC(t)
	la := f.LineAddr(0x1000)
	f.InstallFootprint(la, []uint32{0, 99999, 1, 2})
	// Overwrite word 1 (infrequent) with a frequent value: tag match,
	// so this is a write hit that flips the code.
	if !f.WriteWord(0x1004, 4) {
		t.Fatal("write of frequent value with tag match must hit")
	}
	p := f.Lookup(0x1004)
	if !p.WordFrequent || p.Value != 4 {
		t.Errorf("after write, Lookup = %+v, want value 4", p)
	}
	e := f.Invalidate(0x1000)
	if !e.Dirty {
		t.Error("write hit must dirty the entry")
	}
}

func TestFVCWriteWordMissCases(t *testing.T) {
	f := newTestFVC(t)
	// No tag match: miss even for a frequent value.
	if f.WriteWord(0x1000, 0) {
		t.Error("write without tag match must miss")
	}
	la := f.LineAddr(0x1000)
	f.InstallFootprint(la, []uint32{0, 0, 0, 0})
	// Tag match but infrequent value: miss, and state unchanged.
	if f.WriteWord(0x1004, 99999) {
		t.Error("write of infrequent value must miss")
	}
	p := f.Lookup(0x1004)
	if !p.WordFrequent || p.Value != 0 {
		t.Errorf("failed write must not change codes: %+v", p)
	}
}

func TestFVCInstallWriteMiss(t *testing.T) {
	f := newTestFVC(t)
	prev := f.InstallWriteMiss(0x1008, 2)
	if prev.Valid {
		t.Errorf("displaced %+v from empty slot", prev)
	}
	p := f.Lookup(0x1008)
	if !p.WordFrequent || p.Value != 2 {
		t.Errorf("Lookup after write-miss install = %+v", p)
	}
	// All other words must be escaped.
	for _, a := range []uint32{0x1000, 0x1004, 0x100c} {
		p := f.Lookup(a)
		if !p.TagMatch || p.WordFrequent {
			t.Errorf("Lookup(%#x) = %+v, want tag match + infrequent", a, p)
		}
	}
	e := f.Invalidate(0x1008)
	if !e.Dirty {
		t.Error("write-miss entry must be dirty")
	}
}

func TestFVCInstallWriteMissInfrequentPanics(t *testing.T) {
	f := newTestFVC(t)
	defer func() {
		if recover() == nil {
			t.Error("InstallWriteMiss with infrequent value must panic")
		}
	}()
	f.InstallWriteMiss(0x1000, 99999)
}

func TestFVCConflictDisplacement(t *testing.T) {
	f := newTestFVC(t) // 4 entries, 16B lines: lines 0 and 4 conflict.
	f.InstallFootprint(0, []uint32{0, 0, 0, 0})
	prev := f.InstallFootprint(4, []uint32{1, 1, 1, 1})
	if !prev.Valid || prev.Tag != 0 {
		t.Errorf("displaced entry = %+v, want line 0", prev)
	}
	if p := f.Lookup(0x0); p.TagMatch {
		t.Error("displaced line must no longer match")
	}
	if p := f.Lookup(4 * 16); !p.TagMatch {
		t.Error("new line must match")
	}
}

func TestFVCInvalidate(t *testing.T) {
	f := newTestFVC(t)
	la := f.LineAddr(0x1000)
	f.InstallFootprint(la, []uint32{0, 1, 2, 4})
	e := f.Invalidate(0x1000)
	if !e.Valid || e.Tag != la {
		t.Fatalf("Invalidate = %+v", e)
	}
	if len(e.Codes) != 4 {
		t.Fatalf("snapshot codes = %v", e.Codes)
	}
	if p := f.Lookup(0x1000); p.TagMatch {
		t.Error("invalidated entry must miss")
	}
	if e2 := f.Invalidate(0x1000); e2.Valid {
		t.Error("second invalidate must find nothing")
	}
	// Absent line invalidate is a no-op.
	if e3 := f.Invalidate(0x9000); e3.Valid {
		t.Error("invalidate of absent line must return invalid entry")
	}
}

func TestFVCSnapshotIsolation(t *testing.T) {
	f := newTestFVC(t)
	la := f.LineAddr(0x1000)
	f.InstallFootprint(la, []uint32{0, 0, 0, 0})
	e := f.Invalidate(0x1000)
	e.Codes[0] = 9 // mutating the snapshot must not touch the cache
	f.InstallFootprint(la, []uint32{1, 1, 1, 1})
	if p := f.Lookup(0x1000); !p.WordFrequent || p.Value != 1 {
		t.Errorf("snapshot mutation leaked into cache: %+v", p)
	}
}

func TestFVCFrequentFraction(t *testing.T) {
	f := newTestFVC(t)
	if f.FrequentFraction() != 0 {
		t.Error("empty FVC fraction must be 0")
	}
	f.InstallFootprint(0, []uint32{0, 1, 99999, 99999})     // 2/4 frequent
	f.InstallFootprint(1, []uint32{0, 99999, 99999, 99999}) // 1/4 frequent
	want := 3.0 / 8.0
	if got := f.FrequentFraction(); got != want {
		t.Errorf("FrequentFraction = %v, want %v", got, want)
	}
}

func TestFVCVisitValid(t *testing.T) {
	f := newTestFVC(t)
	f.InstallFootprint(0, []uint32{0, 0, 0, 0})
	f.InstallFootprint(1, []uint32{1, 1, 1, 1})
	var n int
	f.VisitValid(func(e Entry) {
		n++
		if !e.Valid {
			t.Error("VisitValid delivered invalid entry")
		}
	})
	if n != 2 {
		t.Errorf("VisitValid visited %d, want 2", n)
	}
}

func TestFVCMismatchedTableWidth(t *testing.T) {
	tbl := MustTable(2, []uint32{0})
	if _, err := New(Params{Entries: 4, LineBytes: 16, Bits: 3}, tbl); err == nil {
		t.Error("mismatched table width must be rejected")
	}
}

// Property: for random footprints, Lookup(word) is frequent iff the
// installed value is in the table, and decodes to exactly that value.
func TestFVCFootprintProperty(t *testing.T) {
	tbl := MustTable(3, []uint32{0, 1, 2, 3, 4, 5, 6})
	f := MustNew(Params{Entries: 8, LineBytes: 16, Bits: 3}, tbl)
	prop := func(lineAddr uint32, words [4]uint32) bool {
		la := lineAddr % 1024
		f.InstallFootprint(la, words[:])
		base := la * 16
		for i, v := range words {
			p := f.Lookup(base + uint32(i*4))
			if !p.TagMatch {
				return false
			}
			if tbl.Contains(v) != p.WordFrequent {
				return false
			}
			if p.WordFrequent && p.Value != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntryFrequentWords(t *testing.T) {
	e := Entry{Valid: true, Codes: []uint8{0, 7, 3, 7}}
	if got := e.FrequentWords(7); got != 2 {
		t.Errorf("FrequentWords = %d, want 2", got)
	}
}
