package fvc

import (
	"fmt"

	"fvcache/internal/trace"
)

// Params describes an FVC geometry.
type Params struct {
	// Entries is the total number of entries (lines).
	Entries int
	// LineBytes is the line size of the companion main cache; the FVC
	// keeps one code per word of such a line.
	LineBytes int
	// Bits is the per-word code width (1, 2 or 3 in the paper),
	// supporting 2^Bits-1 frequent values.
	Bits int
	// Assoc is the set associativity; 0 or 1 means direct mapped (the
	// paper's design). Higher associativity is an extension explored
	// by follow-up work.
	Assoc int
}

// assoc returns the effective associativity (>= 1).
func (p Params) assoc() int {
	if p.Assoc <= 1 {
		return 1
	}
	return p.Assoc
}

// Sets returns the number of sets.
func (p Params) Sets() int { return p.Entries / p.assoc() }

// Validate checks the geometry.
func (p Params) Validate() error {
	switch {
	case p.Entries <= 0 || p.Entries&(p.Entries-1) != 0:
		return fmt.Errorf("fvc: Entries must be a positive power of two, got %d", p.Entries)
	case p.LineBytes < trace.WordBytes || p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("fvc: LineBytes must be a power of two >= %d, got %d", trace.WordBytes, p.LineBytes)
	case p.Bits < 1 || p.Bits > 8:
		return fmt.Errorf("fvc: Bits must be in [1,8], got %d", p.Bits)
	case p.Assoc < 0 || p.assoc() > p.Entries || p.Entries%p.assoc() != 0:
		return fmt.Errorf("fvc: Assoc %d incompatible with %d entries", p.Assoc, p.Entries)
	case p.Sets()&(p.Sets()-1) != 0:
		return fmt.Errorf("fvc: number of sets %d must be a power of two", p.Sets())
	}
	return nil
}

// WordsPerLine returns the number of word codes per entry.
func (p Params) WordsPerLine() int { return p.LineBytes / trace.WordBytes }

// DataBits returns the encoded-data bits per entry.
func (p Params) DataBits() int { return p.WordsPerLine() * p.Bits }

// DataSizeBytes returns the total encoded-data capacity in bytes —
// the figure the paper quotes (e.g. 512 entries × 8 words × 3 bits =
// 1.5KB).
func (p Params) DataSizeBytes() float64 {
	return float64(p.Entries*p.DataBits()) / 8
}

// String renders the geometry, e.g. "512e/3b/8wpl".
func (p Params) String() string {
	return fmt.Sprintf("%de/%db/%dwpl", p.Entries, p.Bits, p.WordsPerLine())
}

// Entry is one FVC line: a tag plus one code per word.
type Entry struct {
	Tag   uint32 // line address (byte address / LineBytes)
	Valid bool
	Dirty bool
	Codes []uint8
	lru   uint64
}

// FrequentWords returns how many of the entry's codes name frequent
// values (are not the escape).
func (e *Entry) FrequentWords(escape uint8) int {
	n := 0
	for _, c := range e.Codes {
		if c != escape {
			n++
		}
	}
	return n
}

// FVC is the frequent value cache: value centric, direct mapped in
// the paper's design (optionally set associative).
type FVC struct {
	p       Params
	table   *Table
	entries []Entry // sets of p.assoc() consecutive ways
	escape  uint8
	clock   uint64

	lineShift uint32
	idxMask   uint32
}

// New builds an FVC with geometry p over the frequent value table t.
// The table's code width must match p.Bits.
func New(p Params, t *Table) (*FVC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.Bits() != p.Bits {
		return nil, fmt.Errorf("fvc: table width %d does not match params width %d", t.Bits(), p.Bits)
	}
	entries := make([]Entry, p.Entries)
	codes := make([]uint8, p.Entries*p.WordsPerLine())
	for i := range entries {
		entries[i].Codes, codes = codes[:p.WordsPerLine():p.WordsPerLine()], codes[p.WordsPerLine():]
	}
	f := &FVC{
		p:         p,
		table:     t,
		entries:   entries,
		escape:    t.Escape(),
		idxMask:   uint32(p.Sets() - 1),
		lineShift: uint32(log2(p.LineBytes)),
	}
	return f, nil
}

// MustNew is New that panics on error.
func MustNew(p Params, t *Table) *FVC {
	f, err := New(p, t)
	if err != nil {
		panic(err)
	}
	return f
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Params returns the geometry.
func (f *FVC) Params() Params { return f.p }

// Table returns the frequent value table in use.
func (f *FVC) Table() *Table { return f.table }

// LineAddr returns the line address for a byte address.
func (f *FVC) LineAddr(addr uint32) uint32 { return addr >> f.lineShift }

// find returns the way holding lineAddr within its set, or nil.
func (f *FVC) find(lineAddr uint32) *Entry {
	set := f.set(lineAddr)
	for i := range set {
		if set[i].Valid && set[i].Tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// set returns the ways of lineAddr's set.
func (f *FVC) set(lineAddr uint32) []Entry {
	a := f.p.assoc()
	base := int(lineAddr&f.idxMask) * a
	return f.entries[base : base+a]
}

// victimWay picks the fill target in lineAddr's set: an invalid way if
// any, else the LRU way.
func (f *FVC) victimWay(lineAddr uint32) *Entry {
	set := f.set(lineAddr)
	v := &set[0]
	for i := range set {
		e := &set[i]
		if !e.Valid {
			return e
		}
		if e.lru < v.lru {
			v = e
		}
	}
	return v
}

func (f *FVC) wordIndex(addr uint32) int {
	return int((addr >> 2) & uint32(f.p.WordsPerLine()-1))
}

// Probe is the parallel-lookup result for one access.
type Probe struct {
	// TagMatch is true when the entry at the address's index is valid
	// and holds the address's line.
	TagMatch bool
	// WordFrequent is true when, additionally, the accessed word's
	// code names a frequent value. TagMatch && WordFrequent is a read
	// hit.
	WordFrequent bool
	// Value is the decoded frequent value; meaningful only when
	// WordFrequent is true.
	Value uint32
}

// Lookup probes the FVC for addr without modifying state.
func (f *FVC) Lookup(addr uint32) Probe {
	e := f.find(f.LineAddr(addr))
	if e == nil {
		return Probe{}
	}
	code := e.Codes[f.wordIndex(addr)]
	if code == f.escape {
		return Probe{TagMatch: true}
	}
	return Probe{TagMatch: true, WordFrequent: true, Value: f.table.Decode(code)}
}

// WriteWord attempts a write hit: if the entry holds addr's line and v
// is a frequent value, the word's code is updated, the entry is marked
// dirty, and true is returned. In every other case the FVC is left
// unchanged and false is returned (the caller then treats the access
// per the miss protocol).
func (f *FVC) WriteWord(addr, v uint32) bool {
	e := f.find(f.LineAddr(addr))
	if e == nil {
		return false
	}
	code, ok := f.table.Encode(v)
	if !ok {
		return false
	}
	e.Codes[f.wordIndex(addr)] = code
	e.Dirty = true
	f.clock++
	e.lru = f.clock
	return true
}

// Displaced summarizes the prior contents of an entry overwritten or
// invalidated on the simulation hot path. Writeback accounting needs
// only the tag, the dirty bit, and the count of frequent words, so no
// code array is copied — the Install*/Invalidate variants returning a
// full Entry snapshot allocate one per displacement, which the
// steady-state access path cannot afford.
type Displaced struct {
	Tag       uint32
	Valid     bool
	Dirty     bool
	FreqWords int
}

// displaced captures e's accounting summary before it is overwritten.
func (f *FVC) displaced(e *Entry) Displaced {
	if !e.Valid {
		return Displaced{}
	}
	return Displaced{Tag: e.Tag, Valid: true, Dirty: e.Dirty, FreqWords: e.FrequentWords(f.escape)}
}

// fillFootprint overwrites e with lineAddr's encoded footprint (clean).
func (f *FVC) fillFootprint(e *Entry, lineAddr uint32, words []uint32) {
	e.Tag = lineAddr
	e.Valid = true
	e.Dirty = false
	f.clock++
	e.lru = f.clock
	for i, v := range words {
		code, ok := f.table.Encode(v)
		if !ok {
			code = f.escape
		}
		e.Codes[i] = code
	}
}

// fillWriteMiss overwrites e with a dirty single-word allocation.
func (f *FVC) fillWriteMiss(e *Entry, lineAddr uint32, word int, code uint8) {
	e.Tag = lineAddr
	e.Valid = true
	e.Dirty = true
	f.clock++
	e.lru = f.clock
	for i := range e.Codes {
		e.Codes[i] = f.escape
	}
	e.Codes[word] = code
}

// InstallFootprint records the frequent-value footprint of a line
// evicted from the main cache: each word's value is encoded if
// frequent, escaped otherwise. The displaced entry (if valid) is
// returned so the caller can account for its writeback. The new entry
// is clean: the main cache wrote the line back to memory at the same
// time (the paper's first insertion rule).
func (f *FVC) InstallFootprint(lineAddr uint32, words []uint32) Entry {
	if len(words) != f.p.WordsPerLine() {
		panic(fmt.Sprintf("fvc: footprint of %d words, want %d", len(words), f.p.WordsPerLine()))
	}
	e := f.victimWay(lineAddr)
	out := snapshot(e)
	f.fillFootprint(e, lineAddr, words)
	return out
}

// InstallFootprintFast is InstallFootprint returning only the
// displaced entry's accounting summary, with no allocation. It is the
// variant the simulator's per-access path calls.
func (f *FVC) InstallFootprintFast(lineAddr uint32, words []uint32) Displaced {
	if len(words) != f.p.WordsPerLine() {
		panic(fmt.Sprintf("fvc: footprint of %d words, want %d", len(words), f.p.WordsPerLine()))
	}
	e := f.victimWay(lineAddr)
	out := f.displaced(e)
	f.fillFootprint(e, lineAddr, words)
	return out
}

// EncodeWords encodes words into codes (len(codes) == len(words)) and
// reports whether any word is a frequent value. It lets the eviction
// path encode a line exactly once: the caller decides (skip-empty
// policy) from anyFrequent and then installs the codes verbatim with
// InstallCodes, instead of scanning the table once for the decision
// and again for the install.
func (f *FVC) EncodeWords(words []uint32, codes []uint8) (anyFrequent bool) {
	for i, v := range words {
		code, ok := f.table.Encode(v)
		if !ok {
			code = f.escape
		}
		codes[i] = code
		if ok {
			anyFrequent = true
		}
	}
	return anyFrequent
}

// InstallCodes installs a footprint pre-encoded by EncodeWords,
// returning the displaced entry's accounting summary. The new entry is
// clean, matching InstallFootprint.
func (f *FVC) InstallCodes(lineAddr uint32, codes []uint8) Displaced {
	if len(codes) != f.p.WordsPerLine() {
		panic(fmt.Sprintf("fvc: footprint of %d codes, want %d", len(codes), f.p.WordsPerLine()))
	}
	e := f.victimWay(lineAddr)
	out := f.displaced(e)
	e.Tag = lineAddr
	e.Valid = true
	e.Dirty = false
	f.clock++
	e.lru = f.clock
	copy(e.Codes, codes)
	return out
}

// InstallWriteMiss handles the paper's write-miss exception: a store of
// a frequent value that misses both caches allocates directly into the
// FVC with every other word marked infrequent. The displaced entry is
// returned. The new entry is dirty.
//
// The value must be frequent; callers check with Table().Contains.
func (f *FVC) InstallWriteMiss(addr, v uint32) Entry {
	code, ok := f.table.Encode(v)
	if !ok {
		panic(fmt.Sprintf("fvc: InstallWriteMiss with infrequent value %#x", v))
	}
	la := f.LineAddr(addr)
	e := f.victimWay(la)
	out := snapshot(e)
	f.fillWriteMiss(e, la, f.wordIndex(addr), code)
	return out
}

// InstallWriteMissFast is InstallWriteMiss returning only the
// displaced entry's accounting summary, with no allocation.
func (f *FVC) InstallWriteMissFast(addr, v uint32) Displaced {
	code, ok := f.table.Encode(v)
	if !ok {
		panic(fmt.Sprintf("fvc: InstallWriteMiss with infrequent value %#x", v))
	}
	la := f.LineAddr(addr)
	e := f.victimWay(la)
	out := f.displaced(e)
	f.fillWriteMiss(e, la, f.wordIndex(addr), code)
	return out
}

// Invalidate removes the entry holding addr's line, if present, and
// returns its prior contents (for writeback accounting and for
// overlaying its frequent words onto a memory fetch).
func (f *FVC) Invalidate(addr uint32) Entry {
	e := f.find(f.LineAddr(addr))
	if e == nil {
		return Entry{}
	}
	out := snapshot(e)
	e.Valid = false
	e.Dirty = false
	return out
}

// InvalidateFast is Invalidate returning only the removed entry's
// accounting summary, with no allocation.
func (f *FVC) InvalidateFast(addr uint32) Displaced {
	e := f.find(f.LineAddr(addr))
	if e == nil {
		return Displaced{}
	}
	out := f.displaced(e)
	e.Valid = false
	e.Dirty = false
	return out
}

// snapshot copies an entry's state (including codes) for return values.
func snapshot(e *Entry) Entry {
	if !e.Valid {
		return Entry{}
	}
	return Entry{Tag: e.Tag, Valid: true, Dirty: e.Dirty, Codes: append([]uint8(nil), e.Codes...)}
}

// Escape returns the escape code.
func (f *FVC) Escape() uint8 { return f.escape }

// ReplaceTable installs a new frequent value table, invalidating every
// entry (existing codes are meaningless under the new table). It
// returns the number of frequent words in dirty entries that must be
// written back to memory. The new table's width must match the
// geometry. This is the hardware step behind online frequent-value
// identification: when the FVT registers are rewritten, the FVC is
// flushed.
func (f *FVC) ReplaceTable(t *Table) (dirtyWords int, err error) {
	if t.Bits() != f.p.Bits {
		return 0, fmt.Errorf("fvc: replacement table width %d does not match params width %d",
			t.Bits(), f.p.Bits)
	}
	for i := range f.entries {
		e := &f.entries[i]
		if e.Valid && e.Dirty {
			dirtyWords += e.FrequentWords(f.escape)
		}
		e.Valid = false
		e.Dirty = false
	}
	f.table = t
	f.escape = t.Escape()
	return dirtyWords, nil
}

// ValidEntries returns the number of valid entries.
func (f *FVC) ValidEntries() int {
	n := 0
	for i := range f.entries {
		if f.entries[i].Valid {
			n++
		}
	}
	return n
}

// FrequentFraction returns the average fraction of frequent (non-
// escape) codes across valid entries, in [0,1]. This is the quantity
// plotted in the paper's Figure 11. Returns 0 when no entry is valid.
func (f *FVC) FrequentFraction() float64 {
	var freq, total int
	for i := range f.entries {
		e := &f.entries[i]
		if !e.Valid {
			continue
		}
		freq += e.FrequentWords(f.escape)
		total += len(e.Codes)
	}
	if total == 0 {
		return 0
	}
	return float64(freq) / float64(total)
}

// CorruptCode overwrites the code of the given word in the valid
// entry holding lineAddr, reporting whether such an entry exists.
// Fault-injection support (internal/faultinject): it models a bit
// flip in the FVC data array, which the invariant audit or the
// VerifyValues asserts must subsequently detect. Never called on the
// simulation path.
func (f *FVC) CorruptCode(lineAddr uint32, word int, code uint8) bool {
	e := f.find(lineAddr)
	if e == nil || word < 0 || word >= len(e.Codes) {
		return false
	}
	e.Codes[word] = code
	return true
}

// VisitValid calls fn with every valid entry (snapshot copies).
func (f *FVC) VisitValid(fn func(Entry)) {
	for i := range f.entries {
		if f.entries[i].Valid {
			fn(snapshot(&f.entries[i]))
		}
	}
}
