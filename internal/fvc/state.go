package fvc

import "bytes"

// Canonical FVC state snapshots for the chunk-parallel replay engine,
// mirroring cache.CaptureState: per set, valid entries in oldest-first
// LRU order with absolute stamps erased, invalid ways zero-padded, so
// two behaviorally identical FVCs — reached by different execution
// paths — capture to equal snapshots.

// EntryState is one entry's canonical metadata; its codes live in the
// State's flat Codes buffer at the matching index.
type EntryState struct {
	Tag   uint32
	Valid bool
	Dirty bool
}

// State is a canonical FVC snapshot. Reuse one across captures to
// avoid allocation (the buffers grow once to the FVC's size); a State
// must not be shared across goroutines while being written.
type State struct {
	Entries []EntryState
	Codes   []uint8 // WordsPerLine codes per entry, invalid ways zeroed
	order   []int32 // capture scratch: source way per canonical slot
}

// Equal reports canonical-state equality.
func (s *State) Equal(o *State) bool {
	if len(s.Entries) != len(o.Entries) {
		return false
	}
	for i := range s.Entries {
		if s.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return bytes.Equal(s.Codes, o.Codes)
}

// CaptureState writes the FVC's canonical state into dst.
func (f *FVC) CaptureState(dst *State) {
	wpl := f.p.WordsPerLine()
	n := len(f.entries)
	if cap(dst.Entries) < n {
		dst.Entries = make([]EntryState, n)
		dst.Codes = make([]uint8, n*wpl)
		dst.order = make([]int32, n)
	}
	dst.Entries = dst.Entries[:n]
	dst.Codes = dst.Codes[:n*wpl]
	dst.order = dst.order[:n]

	a := f.p.assoc()
	for base := 0; base < n; base += a {
		set := f.entries[base : base+a]
		// Insertion-sort the set's valid ways oldest-first (by lru) into
		// order[base:fill]; sets are at most a few ways wide.
		fill := base
		for i := range set {
			if !set[i].Valid {
				continue
			}
			j := fill
			for j > base && f.entries[dst.order[j-1]].lru > set[i].lru {
				dst.order[j] = dst.order[j-1]
				j--
			}
			dst.order[j] = int32(base + i)
			fill++
		}
		for k := base; k < fill; k++ {
			src := &f.entries[dst.order[k]]
			dst.Entries[k] = EntryState{Tag: src.Tag, Valid: true, Dirty: src.Dirty}
			copy(dst.Codes[k*wpl:(k+1)*wpl], src.Codes)
		}
		for k := fill; k < base+a; k++ {
			dst.Entries[k] = EntryState{}
			clear(dst.Codes[k*wpl : (k+1)*wpl])
		}
	}
}

// RestoreState overwrites the FVC's state from a canonical snapshot of
// identical geometry; the LRU clock restarts from zero, so behavior
// from this point on matches the captured FVC's.
func (f *FVC) RestoreState(src *State) {
	wpl := f.p.WordsPerLine()
	if len(src.Entries) != len(f.entries) || len(src.Codes) != len(f.entries)*wpl {
		panic("fvc: RestoreState snapshot geometry mismatch")
	}
	f.clock = 0
	for i := range f.entries {
		e := &f.entries[i]
		st := src.Entries[i]
		e.Tag, e.Valid, e.Dirty = st.Tag, st.Valid, st.Dirty
		copy(e.Codes, src.Codes[i*wpl:(i+1)*wpl])
		if st.Valid {
			f.clock++
			e.lru = f.clock
		} else {
			e.lru = 0
		}
	}
}
