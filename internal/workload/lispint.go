package workload

import "fvcache/internal/memsim"

// lispInt mirrors 130.li: a Lisp interpreter workload. Cons cells (two
// words: car, cdr) live in a heap managed by a mark-sweep collector;
// small integers are stored tagged (v<<2|1) and NIL is the zero word.
// The frequent values are NIL, the mark bits, small tagged integers,
// and recurring cell pointers — matching li's profile in the paper
// (0, 1, 3, 4, small tags, and a few addresses).
//
// The paper's Table 4 shows li with the lowest constant-address
// fraction (28.8%) of the FVL six: cells are recycled constantly with
// fresh contents, which the GC's free-list reuse reproduces.
type lispInt struct{}

func (lispInt) Name() string     { return "lispint" }
func (lispInt) Analogue() string { return "130.li" }
func (lispInt) FVL() bool        { return true }
func (lispInt) Description() string {
	return "lisp list kernels (build/map/reverse/length) over cons cells with mark-sweep GC"
}

const (
	lispNil uint32 = 0
	// tag scheme: pointers are word-aligned (low bits 00); integers
	// are v<<2|1; the GC mark uses a side bitmap.
	intTag uint32 = 1
)

func mkInt(v uint32) uint32  { return v<<2 | intTag }
func isInt(w uint32) bool    { return w&3 == intTag }
func intVal(w uint32) uint32 { return w >> 2 }

// lispHeap is a fixed arena of cons cells with a free list threaded
// through cdr words and a mark bitmap, in the style of xlisp's
// node segments.
type lispHeap struct {
	env   *memsim.Env
	arena uint32 // cells: 2 words each
	marks uint32 // one word per cell (0/1)
	cells int
	free  uint32 // head of free list (cell address), lispNil if empty

	roots []uint32 // GC roots (list heads), managed by the interpreter
}

func newLispHeap(env *memsim.Env, cells int) *lispHeap {
	h := &lispHeap{
		env:   env,
		arena: env.Static(cells * 2),
		marks: env.Static(cells),
		cells: cells,
	}
	h.buildFreeList()
	return h
}

func (h *lispHeap) buildFreeList() {
	h.free = lispNil
	for i := h.cells - 1; i >= 0; i-- {
		c := h.arena + uint32(i*8)
		h.env.Store(c, lispNil)  // car
		h.env.Store(c+4, h.free) // cdr threads the free list
		h.free = c
	}
}

func (h *lispHeap) cellIndex(c uint32) uint32 { return (c - h.arena) / 8 }

// cons allocates a cell, collecting garbage when the free list is
// empty.
func (h *lispHeap) cons(car, cdr uint32) uint32 {
	if h.free == lispNil {
		h.collect()
		if h.free == lispNil {
			panic("lispint: heap exhausted even after GC")
		}
	}
	c := h.free
	h.free = h.env.Load(c + 4)
	h.env.Store(c, car)
	h.env.Store(c+4, cdr)
	return c
}

func (h *lispHeap) car(c uint32) uint32 { return h.env.Load(c) }
func (h *lispHeap) cdr(c uint32) uint32 { return h.env.Load(c + 4) }

// collect is a classic mark-sweep pass: mark from roots, then sweep
// unmarked cells back onto the free list.
func (h *lispHeap) collect() {
	// Mark phase (iterative via cdr, recursive via car depth is
	// bounded because cars hold ints or short lists here).
	var mark func(w uint32)
	mark = func(w uint32) {
		for w != lispNil && !isInt(w) {
			idx := h.cellIndex(w)
			if h.env.Load(h.marks+idx*4) != 0 {
				return
			}
			h.env.Store(h.marks+idx*4, 1)
			mark(h.car(w))
			w = h.cdr(w)
		}
	}
	for _, r := range h.roots {
		mark(r)
	}
	// Sweep phase.
	h.free = lispNil
	for i := 0; i < h.cells; i++ {
		mAddr := h.marks + uint32(i*4)
		if h.env.Load(mAddr) != 0 {
			h.env.Store(mAddr, 0)
			continue
		}
		c := h.arena + uint32(i*8)
		h.env.Store(c, lispNil)
		h.env.Store(c+4, h.free)
		h.free = c
	}
}

func (l lispInt) Run(env *memsim.Env, scale Scale) {
	iters := map[Scale]int{Test: 140, Train: 400, Ref: 1200}[scale]
	r := newRNG(seedFor(l.Name(), scale))
	cells := map[Scale]int{Test: 2048, Train: 3072, Ref: 4096}[scale]
	h := newLispHeap(env, cells)

	// buildList makes (n n-1 ... 1) as tagged ints. The partial list is
	// kept rooted so a collection triggered mid-build cannot reclaim it.
	buildList := func(n int) uint32 {
		h.roots = append(h.roots, lispNil)
		ri := len(h.roots) - 1
		lst := lispNil
		for i := 1; i <= n; i++ {
			lst = h.cons(mkInt(uint32(i%8)), lst)
			h.roots[ri] = lst
		}
		h.roots = h.roots[:ri]
		return lst
	}
	length := func(lst uint32) uint32 {
		n := uint32(0)
		for lst != lispNil {
			n++
			lst = h.cdr(lst)
		}
		return n
	}
	reverse := func(lst uint32) uint32 {
		out := lispNil
		h.roots = append(h.roots, out)
		for lst != lispNil {
			out = h.cons(h.car(lst), out)
			h.roots[len(h.roots)-1] = out
			lst = h.cdr(lst)
		}
		h.roots = h.roots[:len(h.roots)-1]
		return out
	}
	mapAdd := func(lst uint32, d uint32) uint32 {
		out := lispNil
		h.roots = append(h.roots, out)
		for lst != lispNil {
			v := h.car(lst)
			if isInt(v) {
				v = mkInt(intVal(v) + d)
			}
			out = h.cons(v, out)
			h.roots[len(h.roots)-1] = out
			lst = h.cdr(lst)
		}
		h.roots = h.roots[:len(h.roots)-1]
		return out
	}
	sum := func(lst uint32) uint32 {
		s := uint32(0)
		for lst != lispNil {
			if v := h.car(lst); isInt(v) {
				s += intVal(v)
			}
			lst = h.cdr(lst)
		}
		return s
	}

	var sink uint32
	for it := 0; it < iters; it++ {
		n := 30 + r.intn(120)
		lst := buildList(n)
		h.roots = append(h.roots, lst)
		rev := reverse(lst)
		h.roots = append(h.roots, rev)
		inc := mapAdd(rev, uint32(r.intn(3)))
		h.roots = append(h.roots, inc)
		sink += length(inc) + sum(inc) + length(lst)
		// Drop all roots: the next cons after exhaustion collects.
		h.roots = h.roots[:0]
	}
	_ = sink
}

func init() { Register(lispInt{}) }
