package workload

import "fvcache/internal/memsim"

// cComp mirrors 126.gcc: a small optimizing compiler. It generates
// random expression-statement programs as packed character source,
// lexes them word-by-word out of simulated memory, parses them into
// heap-allocated tagged AST nodes (whose nil child pointers and small
// kind tags are the frequent values), folds constants, and emits
// instruction words into a code buffer.
type cComp struct{}

func (cComp) Name() string     { return "ccomp" }
func (cComp) Analogue() string { return "126.gcc" }
func (cComp) FVL() bool        { return true }
func (cComp) Description() string {
	return "expression compiler: lexer, AST with tagged nodes, constant folding, codegen"
}

// AST node layout (8 words): kind, left, right, value, plus four
// attribute words (type annotation, source location, flags, scratch)
// that are almost always zero — mirroring gcc's tree nodes, which are
// large structs full of NULL pointers and zero flags.
const (
	nKindOff  = 0
	nLeftOff  = 4
	nRightOff = 8
	nValueOff = 12
	nAttrOff  = 16
	nodeWords = 8
)

// Node kinds (small tags, frequent values like gcc's).
const (
	kNum uint32 = iota + 1
	kVar
	kAdd
	kSub
	kMul
	kNeg
)

type compilerState struct {
	env *memsim.Env
	r   *rng

	src    uint32 // packed source chars, 4 per word
	srcLen int    // in bytes
	pos    int    // lexer byte position

	code    uint32 // emitted instruction words
	codeCap int
	codeLen int
}

func (cComp) Run(env *memsim.Env, scale Scale) {
	funcs := map[Scale]int{Test: 70, Train: 200, Ref: 620}[scale]
	r := newRNG(seedFor("ccomp", scale))

	const stmtsPerFunc = 12
	// A translation unit keeps a window of functions' ASTs alive, like
	// a compiler holding whole-function IR before lowering; the code
	// buffer accumulates emitted words across the run (256KB, wraps).
	const window = 8
	const srcCapBytes = 512
	const codeCap = 8192
	cs := &compilerState{
		env:     env,
		r:       r,
		src:     env.Static(srcCapBytes / 4),
		code:    env.Static(codeCap),
		codeCap: codeCap,
	}

	var windowQ [][]uint32 // per-function tree roots awaiting free
	freeFunc := func(trees []uint32) {
		for _, t := range trees {
			cs.freeTree(t)
		}
	}
	for f := 0; f < funcs; f++ {
		trees := make([]uint32, 0, stmtsPerFunc)
		for s := 0; s < stmtsPerFunc; s++ {
			cs.generateStatement()
			cs.pos = 0
			trees = append(trees, cs.parseExpr(0))
		}
		for i, t := range trees {
			trees[i] = cs.fold(t)
		}
		for _, t := range trees {
			cs.emit(t)
		}
		windowQ = append(windowQ, trees)
		if len(windowQ) > window {
			freeFunc(windowQ[0])
			windowQ = windowQ[1:]
		}
	}
	for _, trees := range windowQ {
		freeFunc(trees)
	}
}

// --- source generation (writes packed chars) ---

// putByte writes one source byte via read-modify-write of the packed
// word, like string code manipulating character buffers.
func (c *compilerState) putByte(i int, b byte) {
	addr := c.src + uint32(i/4)*4
	w := c.env.Load(addr)
	shift := uint32(i%4) * 8
	w = (w &^ (0xff << shift)) | uint32(b)<<shift
	c.env.Store(addr, w)
}

func (c *compilerState) getByte(i int) byte {
	addr := c.src + uint32(i/4)*4
	return byte(c.env.Load(addr) >> (uint32(i%4) * 8))
}

// generateStatement writes a random expression like "x*(3+y)-12;" into
// the source buffer.
func (c *compilerState) generateStatement() {
	n := 0
	var gen func(depth int)
	gen = func(depth int) {
		if depth > 4 || (depth > 1 && c.r.intn(3) == 0) {
			if c.r.intn(2) == 0 {
				c.putByte(n, byte('a'+c.r.intn(6)))
				n++
			} else {
				d := c.r.intn(100)
				if d >= 10 {
					c.putByte(n, byte('0'+d/10))
					n++
				}
				c.putByte(n, byte('0'+d%10))
				n++
			}
			return
		}
		switch c.r.intn(4) {
		case 0, 1:
			gen(depth + 1)
			c.putByte(n, []byte{'+', '-', '*'}[c.r.intn(3)])
			n++
			gen(depth + 1)
		case 2:
			c.putByte(n, '(')
			n++
			gen(depth + 1)
			c.putByte(n, ')')
			n++
		default:
			c.putByte(n, '-')
			n++
			gen(depth + 1)
		}
	}
	gen(0)
	c.putByte(n, ';')
	n++
	c.srcLen = n
}

// --- lexer/parser (reads packed chars, allocates AST in heap) ---

func (c *compilerState) newNode(kind, left, right, value uint32) uint32 {
	p := c.env.Alloc(nodeWords)
	c.env.Store(p+nKindOff, kind)
	c.env.Store(p+nLeftOff, left)
	c.env.Store(p+nRightOff, right)
	c.env.Store(p+nValueOff, value)
	// Attribute words are cleared on construction, as a compiler
	// memsets its tree nodes; they stay zero for most nodes.
	for off := uint32(nAttrOff); off < nodeWords*4; off += 4 {
		c.env.Store(p+off, 0)
	}
	return p
}

func (c *compilerState) peek() byte {
	if c.pos >= c.srcLen {
		return ';'
	}
	return c.getByte(c.pos)
}

// parseExpr is a precedence-climbing parser: level 0 = +/-, 1 = *.
func (c *compilerState) parseExpr(level int) uint32 {
	if level >= 2 {
		return c.parsePrimary()
	}
	left := c.parseExpr(level + 1)
	for {
		op := c.peek()
		var kind uint32
		switch {
		case level == 0 && op == '+':
			kind = kAdd
		case level == 0 && op == '-':
			kind = kSub
		case level == 1 && op == '*':
			kind = kMul
		default:
			return left
		}
		c.pos++
		right := c.parseExpr(level + 1)
		left = c.newNode(kind, left, right, 0)
	}
}

func (c *compilerState) parsePrimary() uint32 {
	ch := c.peek()
	switch {
	case ch == '(':
		c.pos++
		e := c.parseExpr(0)
		c.pos++ // ')'
		return e
	case ch == '-':
		c.pos++
		return c.newNode(kNeg, c.parsePrimary(), 0, 0)
	case ch >= '0' && ch <= '9':
		v := uint32(0)
		for {
			ch = c.peek()
			if ch < '0' || ch > '9' {
				break
			}
			v = v*10 + uint32(ch-'0')
			c.pos++
		}
		return c.newNode(kNum, 0, 0, v)
	default: // variable
		c.pos++
		return c.newNode(kVar, 0, 0, uint32(ch-'a'))
	}
}

// --- constant folding ---

func (c *compilerState) fold(n uint32) uint32 {
	kind := c.env.Load(n + nKindOff)
	// Skip nodes already annotated by an earlier pass (the annotation
	// word is almost always zero — a frequent-value read, like gcc's
	// flag checks on tree nodes).
	if c.env.Load(n+nAttrOff) != 0 {
		return n
	}
	switch kind {
	case kNum, kVar:
		return n
	case kNeg:
		l := c.fold(c.env.Load(n + nLeftOff))
		c.env.Store(n+nLeftOff, l)
		if c.env.Load(l+nKindOff) == kNum {
			v := c.env.Load(l + nValueOff)
			c.env.Free(l)
			c.env.Store(n+nKindOff, kNum)
			c.env.Store(n+nLeftOff, 0)
			c.env.Store(n+nValueOff, -v)
		}
		return n
	}
	l := c.fold(c.env.Load(n + nLeftOff))
	r := c.fold(c.env.Load(n + nRightOff))
	c.env.Store(n+nLeftOff, l)
	c.env.Store(n+nRightOff, r)
	if c.env.Load(l+nKindOff) == kNum && c.env.Load(r+nKindOff) == kNum {
		lv, rv := c.env.Load(l+nValueOff), c.env.Load(r+nValueOff)
		var v uint32
		switch kind {
		case kAdd:
			v = lv + rv
		case kSub:
			v = lv - rv
		case kMul:
			v = lv * rv
		}
		c.env.Free(l)
		c.env.Free(r)
		c.env.Store(n+nKindOff, kNum)
		c.env.Store(n+nLeftOff, 0)
		c.env.Store(n+nRightOff, 0)
		c.env.Store(n+nValueOff, v)
	}
	return n
}

// --- code generation (stack machine) ---

func (c *compilerState) emitWord(w uint32) {
	c.env.Store(c.code+uint32(c.codeLen%c.codeCap)*4, w)
	c.codeLen++
}

func (c *compilerState) emit(n uint32) {
	kind := c.env.Load(n + nKindOff)
	switch kind {
	case kNum:
		c.emitWord(0x01000000 | (c.env.Load(n+nValueOff) & 0xffffff)) // PUSHI
	case kVar:
		c.emitWord(0x02000000 | c.env.Load(n+nValueOff)) // PUSHV
	case kNeg:
		c.emit(c.env.Load(n + nLeftOff))
		c.emitWord(0x03000000) // NEG
	default:
		c.emit(c.env.Load(n + nLeftOff))
		c.emit(c.env.Load(n + nRightOff))
		c.emitWord(0x04000000 + kind) // ADD/SUB/MUL
	}
}

// freeTree returns the AST to the heap (emitting free events so the
// profilers see node lifetimes).
func (c *compilerState) freeTree(n uint32) {
	if n == 0 {
		return
	}
	c.freeTree(c.env.Load(n + nLeftOff))
	c.freeTree(c.env.Load(n + nRightOff))
	c.env.Free(n)
}

func init() { Register(cComp{}) }
