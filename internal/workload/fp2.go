package workload

import "fvcache/internal/memsim"

// The remaining six SPECfp95 analogues, completing the paper's
// Figure 2 suite. Like fp.go's kernels, their frequent value locality
// comes from the places real scientific codes get it: zero-dominated
// grids and screening thresholds, fixed coefficient tables, and
// boundary regions that never change.

// lattice4D mirrors 103.su2cor: quantum-chromodynamics-style sweeps
// over a 4D lattice whose link variables are mostly cold (zero) with a
// sparse set of excited sites.
type lattice4D struct{}

func (lattice4D) Name() string     { return "lattice4d" }
func (lattice4D) Analogue() string { return "103.su2cor" }
func (lattice4D) FVL() bool        { return true }
func (lattice4D) Description() string {
	return "4D lattice sweeps with sparse excited links (su2cor-style)"
}

func (l lattice4D) Run(env *memsim.Env, scale Scale) {
	sweeps := map[Scale]int{Test: 3, Train: 8, Ref: 20}[scale]
	r := newRNG(seedFor(l.Name(), scale))

	const n = 12 // n^4 sites
	sites := n * n * n * n
	links := env.Static(sites) // one link weight per site
	accum := env.Static(sites) // action accumulator per site
	at := func(g uint32, i int) uint32 { return g + uint32(i)*4 }

	for i := 0; i < sites; i++ {
		var v float32
		if r.intn(16) == 0 {
			v = r.f32()
		}
		env.StoreF(at(links, i), v)
		env.StoreF(at(accum, i), 0)
	}

	stride := [4]int{1, n, n * n, n * n * n}
	for s := 0; s < sweeps; s++ {
		for i := 0; i < sites; i++ {
			w := env.LoadF(at(links, i))
			if w == 0 {
				continue // cold link: nothing to update
			}
			// Plaquette-style neighbor product along each dimension.
			var act float32
			for d := 0; d < 4; d++ {
				j := (i + stride[d]) % sites
				act += w * env.LoadF(at(links, j))
			}
			// Screening: small actions flushed to exactly zero.
			if act < 0.01 && act > -0.01 {
				act = 0
			}
			env.StoreF(at(accum, i), act)
			// Links decay back toward cold.
			if r.intn(8) == 0 {
				env.StoreF(at(links, i), 0)
			}
		}
		// Occasionally re-excite a few links.
		for k := 0; k < sites/64; k++ {
			env.StoreF(at(links, r.intn(sites)), r.f32())
		}
	}
}

// hydro2D mirrors 104.hydro2d: a conservation-law update with flux
// arrays recomputed (and mostly zeroed) every step.
type hydro2D struct{}

func (hydro2D) Name() string     { return "hydro2d" }
func (hydro2D) Analogue() string { return "104.hydro2d" }
func (hydro2D) FVL() bool        { return true }
func (hydro2D) Description() string {
	return "2D conservation-law updates with zeroed flux arrays (hydro2d-style)"
}

func (h hydro2D) Run(env *memsim.Env, scale Scale) {
	steps := map[Scale]int{Test: 6, Train: 16, Ref: 40}[scale]
	r := newRNG(seedFor(h.Name(), scale))

	const n = 96
	rho := env.Static(n * n)
	env.Static(29) // stagger bases to avoid set aliasing
	flux := env.Static(n * n)
	at := func(g uint32, y, x int) uint32 { return g + uint32(y*n+x)*4 }

	// A dense blob in a zero background.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var v float32
			cy, cx := y-n/2, x-n/2
			if cy*cy+cx*cx < (n/6)*(n/6) {
				v = 1 + r.f32()*0.1
			}
			env.StoreF(at(rho, y, x), v)
			env.StoreF(at(flux, y, x), 0)
		}
	}

	for s := 0; s < steps; s++ {
		// Flux computation: nonzero only at the blob's boundary.
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				d := env.LoadF(at(rho, y, x)) - env.LoadF(at(rho, y, x-1))
				if d < 0.05 && d > -0.05 {
					d = 0
				}
				env.StoreF(at(flux, y, x), d*0.5)
			}
		}
		// Conservative update: only where flux is nonzero.
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-2; x++ {
				f := env.LoadF(at(flux, y, x))
				if f == 0 {
					continue
				}
				env.StoreF(at(rho, y, x), env.LoadF(at(rho, y, x))-f*0.2)
				env.StoreF(at(rho, y, x+1), env.LoadF(at(rho, y, x+1))+f*0.2)
			}
		}
	}
}

// spectral3D mirrors 125.turb3d: butterfly passes over spectral data
// where high-frequency modes have been truncated to zero.
type spectral3D struct{}

func (spectral3D) Name() string     { return "spectral3d" }
func (spectral3D) Analogue() string { return "125.turb3d" }
func (spectral3D) FVL() bool        { return true }
func (spectral3D) Description() string {
	return "spectral butterfly passes over truncated (mostly zero) modes (turb3d-style)"
}

func (t spectral3D) Run(env *memsim.Env, scale Scale) {
	rounds := map[Scale]int{Test: 4, Train: 10, Ref: 26}[scale]
	r := newRNG(seedFor(t.Name(), scale))

	const n = 1 << 14 // one flattened spectral plane
	re := env.Static(n)
	at := func(i int) uint32 { return re + uint32(i)*4 }

	// Energy concentrated in the lowest 1/16 of modes; rest truncated.
	for i := 0; i < n; i++ {
		var v float32
		if i < n/16 {
			v = r.f32() - 0.5
		}
		env.StoreF(at(i), v)
	}

	for round := 0; round < rounds; round++ {
		// log2(n) butterfly passes.
		for half := 1; half < n; half <<= 1 {
			for i := 0; i < n; i += half * 2 {
				for j := i; j < i+half; j++ {
					a := env.LoadF(at(j))
					b := env.LoadF(at(j + half))
					if a == 0 && b == 0 {
						continue // zero-block shortcut, like real FFTs on truncated data
					}
					s, d := a+b, a-b
					if s < 1e-3 && s > -1e-3 {
						s = 0
					}
					if d < 1e-3 && d > -1e-3 {
						d = 0
					}
					env.StoreF(at(j), s)
					env.StoreF(at(j+half), d)
				}
			}
		}
	}
}

// airAdvect mirrors 141.apsi: layered advection of a sparse pollution
// plume through a mostly clean atmosphere.
type airAdvect struct{}

func (airAdvect) Name() string     { return "airadvect" }
func (airAdvect) Analogue() string { return "141.apsi" }
func (airAdvect) FVL() bool        { return true }
func (airAdvect) Description() string {
	return "layered advection of a sparse plume (apsi-style)"
}

func (a airAdvect) Run(env *memsim.Env, scale Scale) {
	steps := map[Scale]int{Test: 8, Train: 20, Ref: 50}[scale]
	r := newRNG(seedFor(a.Name(), scale))

	const nx, ny, nz = 64, 48, 8
	conc := env.Static(nx * ny * nz)
	at := func(z, y, x int) uint32 { return conc + uint32((z*ny+y)*nx+x)*4 }

	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				env.StoreF(at(z, y, x), 0)
			}
		}
	}
	// Point sources near the surface.
	for k := 0; k < 6; k++ {
		env.StoreF(at(0, 4+r.intn(ny-8), 4+r.intn(8)), 1)
	}

	for s := 0; s < steps; s++ {
		// Advect east and diffuse upward; the plume stays sparse.
		for z := nz - 1; z >= 0; z-- {
			for y := 1; y < ny-1; y++ {
				for x := nx - 2; x >= 1; x-- {
					c := env.LoadF(at(z, y, x))
					if c == 0 {
						continue
					}
					moved := c * 0.4
					rest := c - moved
					if rest < 0.01 {
						rest = 0
					}
					env.StoreF(at(z, y, x), rest)
					env.StoreF(at(z, y, x+1), env.LoadF(at(z, y, x+1))+moved*0.8)
					if z+1 < nz {
						env.StoreF(at(z+1, y, x), env.LoadF(at(z+1, y, x))+moved*0.2)
					}
				}
			}
		}
		// Sources keep emitting.
		for k := 0; k < 3; k++ {
			env.StoreF(at(0, 4+r.intn(ny-8), 4+r.intn(8)), 1)
		}
		// Deposition wipes the top layer clean.
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				env.StoreF(at(nz-1, y, x), 0)
			}
		}
	}
}

// quadInt mirrors 145.fpppp: two-electron-integral-style accumulation
// where integral screening zeroes the vast majority of contributions.
type quadInt struct{}

func (quadInt) Name() string     { return "quadint" }
func (quadInt) Analogue() string { return "145.fpppp" }
func (quadInt) FVL() bool        { return true }
func (quadInt) Description() string {
	return "screened integral accumulation into dense matrices (fpppp-style)"
}

func (q quadInt) Run(env *memsim.Env, scale Scale) {
	shells := map[Scale]int{Test: 32, Train: 48, Ref: 72}[scale]
	r := newRNG(seedFor(q.Name(), scale))

	nbf := shells * 2 // basis functions
	fock := env.Static(nbf * nbf)
	dens := env.Static(nbf * nbf)
	screen := env.Static(shells * shells) // Schwarz screening bounds
	at := func(g uint32, i, j, n int) uint32 { return g + uint32(i*n+j)*4 }

	for i := 0; i < nbf; i++ {
		for j := 0; j < nbf; j++ {
			env.StoreF(at(fock, i, j, nbf), 0)
			var d float32
			if i == j {
				d = 1
			} else if r.intn(12) == 0 {
				d = r.f32() * 0.1
			}
			env.StoreF(at(dens, i, j, nbf), d)
		}
	}
	for i := 0; i < shells; i++ {
		for j := 0; j < shells; j++ {
			var b float32
			if r.intn(6) == 0 {
				b = r.f32()
			}
			env.StoreF(at(screen, i, j, shells), b)
		}
	}

	// Repeated Fock builds, one per SCF iteration.
	iters := map[Scale]int{Test: 5, Train: 10, Ref: 22}[scale]
	for it := 0; it < iters; it++ {
		for si := 0; si < shells; si++ {
			for sj := 0; sj <= si; sj++ {
				bij := env.LoadF(at(screen, si, sj, shells))
				if bij == 0 {
					continue // screened out: most of the quartic loop
				}
				for sk := 0; sk <= si; sk++ {
					bkl := env.LoadF(at(screen, si, sk, shells))
					if bij*bkl < 0.05 {
						continue
					}
					// Contract the surviving integral block with density.
					for a := 0; a < 2; a++ {
						for b := 0; b < 2; b++ {
							i, j, k := si*2+a, sj*2+b, sk*2+a
							d := env.LoadF(at(dens, k, j, nbf))
							if d == 0 {
								continue
							}
							f := env.LoadF(at(fock, i, j, nbf)) + d*bij*bkl
							env.StoreF(at(fock, i, j, nbf), f)
						}
					}
				}
			}
		}
		// Density update between iterations: mix in a fraction of the
		// Fock diagonal (keeps the sparsity pattern stable).
		for i := 0; i < nbf; i++ {
			f := env.LoadF(at(fock, i, i, nbf))
			if f != 0 {
				env.StoreF(at(dens, i, i, nbf), 1+f*0.01)
			}
		}
	}
}

// particleWave mirrors 146.wave5: a particle-in-cell plasma step with
// a sparse charge-deposition grid.
type particleWave struct{}

func (particleWave) Name() string     { return "particlewave" }
func (particleWave) Analogue() string { return "146.wave5" }
func (particleWave) FVL() bool        { return true }
func (particleWave) Description() string {
	return "particle-in-cell steps with sparse charge grids (wave5-style)"
}

func (p particleWave) Run(env *memsim.Env, scale Scale) {
	steps := map[Scale]int{Test: 5, Train: 14, Ref: 36}[scale]
	parts := map[Scale]int{Test: 1500, Train: 2500, Ref: 4000}[scale]
	r := newRNG(seedFor(p.Name(), scale))

	const gx, gy = 128, 64
	charge := env.Static(gx * gy)
	field := env.Static(gx * gy)
	// Particle arrays: x, y, vx per particle (structure of arrays).
	px := env.Static(parts)
	py := env.Static(parts)
	pv := env.Static(parts)
	gat := func(g uint32, y, x int) uint32 { return g + uint32(y*gx+x)*4 }

	for i := 0; i < parts; i++ {
		env.Store(px+uint32(i)*4, uint32(r.intn(gx/4))) // clustered left
		env.Store(py+uint32(i)*4, uint32(r.intn(gy)))
		env.StoreF(pv+uint32(i)*4, 1)
	}
	for i := 0; i < gx*gy; i++ {
		env.StoreF(charge+uint32(i)*4, 0)
		env.StoreF(field+uint32(i)*4, 0)
	}

	for s := 0; s < steps; s++ {
		// Scatter: zero the charge grid, deposit particles (grid stays
		// sparse because particles cluster).
		for i := 0; i < gx*gy; i++ {
			env.StoreF(charge+uint32(i)*4, 0)
		}
		for i := 0; i < parts; i++ {
			x := int(env.Load(px+uint32(i)*4)) % gx
			y := int(env.Load(py+uint32(i)*4)) % gy
			c := gat(charge, y, x)
			env.StoreF(c, env.LoadF(c)+1)
		}
		// Field solve: smooth the charge into the field grid.
		for y := 1; y < gy-1; y++ {
			for x := 1; x < gx-1; x++ {
				v := (env.LoadF(gat(charge, y, x-1)) + env.LoadF(gat(charge, y, x+1))) * 0.5
				if v < 0.25 {
					v = 0
				}
				env.StoreF(gat(field, y, x), v)
			}
		}
		// Push: particles drift under the (mostly zero) field.
		for i := 0; i < parts; i++ {
			x := int(env.Load(px + uint32(i)*4))
			y := int(env.Load(py + uint32(i)*4))
			f := env.LoadF(gat(field, y%gy, x%gx))
			v := env.LoadF(pv + uint32(i)*4)
			if f != 0 {
				v += f * 0.01
				env.StoreF(pv+uint32(i)*4, v)
			}
			env.Store(px+uint32(i)*4, uint32((x+int(v))%gx))
		}
	}
}

func init() {
	Register(lattice4D{})
	Register(hydro2D{})
	Register(spectral3D{})
	Register(airAdvect{})
	Register(quadInt{})
	Register(particleWave{})
}
