package workload

import "fvcache/internal/memsim"

// objDB mirrors 147.vortex: an in-memory object database. Objects are
// heap-allocated records with type tags, status enums and pointer
// fields, indexed by a chained hash table; transactions insert, look
// up, update and delete objects. Frequent values are zero (nil
// pointers and cleared fields), small tags/enums, and hot index
// pointers — vortex's profile in the paper's Table 1.
type objDB struct{}

func (objDB) Name() string     { return "objdb" }
func (objDB) Analogue() string { return "147.vortex" }
func (objDB) FVL() bool        { return true }
func (objDB) Description() string {
	return "object database: chained hash index over tagged records with insert/lookup/update/delete transactions"
}

// Record layout (8 words): id, type, status, next (hash chain),
// payload[4].
const (
	recID     = 0
	recType   = 4
	recStatus = 8
	recNext   = 12
	recPay    = 16
	recWords  = 8
)

// Status enums (small frequent values).
const (
	stFree    uint32 = 0
	stActive  uint32 = 1
	stUpdated uint32 = 2
	stDeleted uint32 = 3
)

func (o objDB) Run(env *memsim.Env, scale Scale) {
	txns := map[Scale]int{Test: 8000, Train: 24000, Ref: 80000}[scale]
	r := newRNG(seedFor(o.Name(), scale))

	const buckets = 1024
	index := env.Static(buckets) // chain heads (pointers, many nil)
	for i := uint32(0); i < buckets; i++ {
		env.Store(index+i*4, 0)
	}

	bucketOf := func(id uint32) uint32 { return (id * 2654435761) % buckets }

	insert := func(id, typ uint32) uint32 {
		rec := env.Alloc(recWords)
		env.Store(rec+recID, id)
		env.Store(rec+recType, typ)
		env.Store(rec+recStatus, stActive)
		b := index + bucketOf(id)*4
		env.Store(rec+recNext, env.Load(b))
		env.Store(b, rec)
		// Payload: two zero words, the type again, a small counter.
		env.Store(rec+recPay, 0)
		env.Store(rec+recPay+4, 0)
		env.Store(rec+recPay+8, typ)
		env.Store(rec+recPay+12, 1)
		return rec
	}

	lookup := func(id uint32) uint32 {
		p := env.Load(index + bucketOf(id)*4)
		for p != 0 {
			if env.Load(p+recID) == id {
				return p
			}
			p = env.Load(p + recNext)
		}
		return 0
	}

	remove := func(id uint32) bool {
		b := index + bucketOf(id)*4
		p := env.Load(b)
		var prev uint32
		for p != 0 {
			if env.Load(p+recID) == id {
				next := env.Load(p + recNext)
				if prev == 0 {
					env.Store(b, next)
				} else {
					env.Store(prev+recNext, next)
				}
				env.Store(p+recStatus, stDeleted)
				env.Free(p)
				return true
			}
			prev, p = p, env.Load(p+recNext)
		}
		return false
	}

	// The database holds a bounded working set: past the cap, every
	// insert is paired with a delete, so chains stay short and record
	// slots are recycled (vortex's steady-state behaviour).
	const maxLive = 1024
	nextID := uint32(1)
	live := make([]uint32, 0, maxLive) // ids, interpreter-side bookkeeping
	for t := 0; t < txns; t++ {
		switch op := r.intn(10); {
		case (op < 4 || len(live) == 0) && len(live) < maxLive: // insert
			id := nextID
			nextID++
			insert(id, uint32(1+r.intn(5)))
			live = append(live, id)
		case op < 8 && len(live) > 0: // lookup + touch payload
			id := live[r.intn(len(live))]
			if rec := lookup(id); rec != 0 {
				// Read the whole record, as a query returning the
				// object would.
				_ = env.Load(rec + recType)
				_ = env.Load(rec + recPay)
				_ = env.Load(rec + recPay + 4)
				_ = env.Load(rec + recPay + 8)
				cnt := env.Load(rec + recPay + 12)
				env.Store(rec+recPay+12, cnt+1)
				env.Store(rec+recStatus, stUpdated)
			}
		default: // delete
			i := r.intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			remove(id)
		}
		// Periodic scan transaction: walk a bucket chain, like vortex's
		// iteration over object sets.
		if t%16 == 0 {
			p := env.Load(index + uint32(r.intn(buckets))*4)
			for p != 0 {
				_ = env.Load(p + recType)
				_ = env.Load(p + recStatus)
				p = env.Load(p + recNext)
			}
		}
	}
}

func init() { Register(objDB{}) }
