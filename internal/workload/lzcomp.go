package workload

import "fvcache/internal/memsim"

// lzComp mirrors 129.compress — one of the paper's two control
// programs with very little frequent value locality. It runs LZW
// compression over moderately random text: the dictionary fills with
// ever-growing, mostly distinct codes and the hash table's contents
// churn, so no small value set dominates and addresses rarely hold
// constant values (3.2% in the paper's Table 4).
type lzComp struct{}

func (lzComp) Name() string     { return "lzcomp" }
func (lzComp) Analogue() string { return "129.compress" }
func (lzComp) FVL() bool        { return false }
func (lzComp) Description() string {
	return "LZW compressor: churning dictionary hash with distinct growing codes (FVL control)"
}

func (l lzComp) Run(env *memsim.Env, scale Scale) {
	passes := map[Scale]int{Test: 2, Train: 4, Ref: 9}[scale]
	r := newRNG(seedFor(l.Name(), scale))

	const inBytes = 64 << 10
	input := env.Static(inBytes / 4)
	const outWords = 16 << 10
	output := env.Static(outWords)

	// Dictionary: open addressing, 3 words per slot: (prefixCode<<8 |
	// char) key, code, checksum.
	const dictSlots = 16384
	dict := env.Static(dictSlots * 3)

	loadByte := func(i int) byte {
		return byte(env.Load(input+uint32(i/4)*4) >> (uint32(i%4) * 8))
	}
	storeByte := func(i int, b byte) {
		addr := input + uint32(i/4)*4
		w := env.Load(addr)
		shift := uint32(i%4) * 8
		env.Store(addr, (w&^(0xff<<shift))|uint32(b)<<shift)
	}

	for pass := 0; pass < passes; pass++ {
		// Generate input: Markov-ish text with skewed byte frequencies
		// (compressible but high-entropy values once packed).
		prev := byte('a')
		for i := 0; i < inBytes; i++ {
			var b byte
			switch r.intn(8) {
			case 0, 1, 2:
				b = prev // runs
			case 3, 4:
				b = byte('a' + r.intn(26))
			case 5:
				b = ' '
			default:
				b = byte(r.intn(256))
			}
			storeByte(i, b)
			prev = b
		}
		// Clear dictionary.
		for i := uint32(0); i < dictSlots*3; i++ {
			env.Store(dict+i*4, 0)
		}

		nextCode := uint32(257)
		outPos := 0
		emit := func(code uint32) {
			if outPos < outWords {
				env.Store(output+uint32(outPos)*4, code)
				outPos++
			}
		}

		// LZW: current prefix code, extend with next char.
		cur := uint32(loadByte(0)) + 1 // codes 1..256 are single bytes
		for i := 1; i < inBytes; i++ {
			ch := loadByte(i)
			key := cur<<8 | uint32(ch)
			slot := (key * 2654435761) % dictSlots
			found := uint32(0)
			for probe := 0; probe < 32; probe++ {
				addr := dict + (slot%dictSlots)*12
				k := env.Load(addr)
				if k == key {
					found = env.Load(addr + 4)
					break
				}
				if k == 0 {
					// Insert: a brand-new code every time — the value
					// stream is a counter, hostile to a small FVT.
					env.Store(addr, key)
					env.Store(addr+4, nextCode)
					env.Store(addr+8, key^nextCode)
					nextCode++
					break
				}
				slot++
			}
			if found != 0 {
				cur = found
			} else {
				emit(cur)
				cur = uint32(ch) + 1
				if nextCode >= 60000 {
					// Dictionary full: reset, like compress's CLEAR.
					for j := uint32(0); j < dictSlots*3; j++ {
						env.Store(dict+j*4, 0)
					}
					nextCode = 257
				}
			}
		}
		emit(cur)
	}
}

func init() { Register(lzComp{}) }
