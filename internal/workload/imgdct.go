package workload

import "fvcache/internal/memsim"

// imgDCT mirrors 132.ijpeg — the second control program. It runs 8×8
// integer DCT transforms with light quantization over a synthetic
// image: pixel and coefficient values vary across the whole dynamic
// range, so no small value set dominates memory and addresses are
// overwritten with fresh values block after block.
type imgDCT struct{}

func (imgDCT) Name() string     { return "imgdct" }
func (imgDCT) Analogue() string { return "132.ijpeg" }
func (imgDCT) FVL() bool        { return false }
func (imgDCT) Description() string {
	return "8x8 integer DCT + light quantization over a synthetic image (FVL control)"
}

func (d imgDCT) Run(env *memsim.Env, scale Scale) {
	frames := map[Scale]int{Test: 2, Train: 4, Ref: 9}[scale]
	r := newRNG(seedFor(d.Name(), scale))

	const w, h = 192, 144
	img := env.Static(w * h)    // one pixel per word (luma 0..255 + noise bits)
	coef := env.Static(w * h)   // coefficient plane
	block := env.PushFrame(128) // 8x8 input + 8x8 temp
	defer env.PopFrame()
	tmp := block + 64*4

	// cosTab is an integer-scaled DCT basis (values precomputed in Go,
	// like ijpeg's static tables kept in registers/ROM).
	var cosTab [8][8]int32
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			// round(cos((2n+1)kπ/16) * 64) via integer approximation
			cosTab[k][n] = icos((2*n + 1) * k)
		}
	}

	for f := 0; f < frames; f++ {
		// Synthesize the frame: gradients + block offsets + noise.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := uint32((x*2+y*3)%256) ^ uint32(r.intn(64))
				env.Store(img+uint32(y*w+x)*4, v|uint32(r.intn(3))<<16)
			}
		}
		// Per-block DCT.
		for by := 0; by < h; by += 8 {
			for bx := 0; bx < w; bx += 8 {
				// Load block into the frame-local buffer.
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						px := env.Load(img + uint32((by+y)*w+bx+x)*4)
						env.Store(block+uint32(y*8+x)*4, px&0xff)
					}
				}
				// Rows then columns (separable DCT).
				for y := 0; y < 8; y++ {
					for k := 0; k < 8; k++ {
						var acc int32
						for n := 0; n < 8; n++ {
							acc += int32(env.Load(block+uint32(y*8+n)*4)) * cosTab[k][n]
						}
						env.Store(tmp+uint32(y*8+k)*4, uint32(acc>>6))
					}
				}
				for x := 0; x < 8; x++ {
					for k := 0; k < 8; k++ {
						var acc int32
						for n := 0; n < 8; n++ {
							acc += int32(env.Load(tmp+uint32(n*8+x)*4)) * cosTab[k][n]
						}
						// Light quantization (divide by 4): values stay
						// varied rather than collapsing to zero.
						q := acc >> 8
						env.Store(coef+uint32((by+k)*w+bx+x)*4, uint32(q))
					}
				}
			}
		}
	}
}

// icos approximates round(64*cos(m*π/16)) with a lookup over the
// period (avoiding math imports in the hot path; exactness is
// irrelevant to the memory behaviour).
func icos(m int) int32 {
	quarter := [9]int32{64, 63, 59, 53, 45, 36, 24, 12, 0}
	m = ((m % 32) + 32) % 32
	switch {
	case m <= 8:
		return quarter[m]
	case m <= 16:
		return -quarter[16-m]
	case m <= 24:
		return -quarter[m-16]
	default:
		return quarter[32-m]
	}
}

func init() { Register(imgDCT{}) }
