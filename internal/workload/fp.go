package workload

import "fvcache/internal/memsim"

// The four floating-point kernels mirror SPECfp95 programs for the
// paper's Figure 2 study. Scientific grids carry abundant repeated
// values — zero boundaries, zero-initialized residuals, and constant
// coefficients — which is why the paper finds SPECfp95 also exhibits
// strong frequent value locality. Values are float32 bit patterns in
// 32-bit words (fvc codes compare raw words, so 0.0 == the zero word).

// stencil2D mirrors 102.swim: a shallow-water-style 5-point stencil
// relaxation over three grids with fixed zero boundaries.
type stencil2D struct{}

func (stencil2D) Name() string     { return "stencil2d" }
func (stencil2D) Analogue() string { return "102.swim" }
func (stencil2D) FVL() bool        { return true }
func (stencil2D) Description() string {
	return "shallow-water 5-point stencil over zero-bordered float32 grids"
}

func (s stencil2D) Run(env *memsim.Env, scale Scale) {
	iters := map[Scale]int{Test: 6, Train: 15, Ref: 40}[scale]
	r := newRNG(seedFor(s.Name(), scale))

	const n = 128
	u := env.Static(n * n)
	env.Static(33) // padding: stagger bases to avoid set aliasing
	v := env.Static(n * n)
	env.Static(57)
	p := env.Static(n * n)
	at := func(g uint32, y, x int) uint32 { return g + uint32(y*n+x)*4 }

	// Initialize: a sparse disturbance field in a zero ocean — swim's
	// grids are dominated by exact zeros away from the wave front.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var val float32
			if y > 0 && x > 0 && y < n-1 && x < n-1 && r.intn(12) == 0 {
				val = r.f32() + 0.5
			}
			env.StoreF(at(u, y, x), val)
			env.StoreF(at(v, y, x), 0)
			env.StoreF(at(p, y, x), 0)
		}
	}

	for it := 0; it < iters; it++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				du := env.LoadF(at(u, y, x-1)) + env.LoadF(at(u, y, x+1)) +
					env.LoadF(at(u, y-1, x)) + env.LoadF(at(u, y+1, x))
				dv := env.LoadF(at(v, y, x-1)) + env.LoadF(at(v, y, x+1))
				pv := 0.25*du - 0.125*dv
				// Threshold small pressures to exactly zero, keeping
				// the grids sparse as the physical damping does.
				if pv < 0.05 && pv > -0.05 {
					pv = 0
				}
				env.StoreF(at(p, y, x), pv)
			}
		}
		// Velocity update reads the (mostly zero) pressure grid and
		// damps the disturbance back toward zero.
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				g := env.LoadF(at(p, y, x))
				if g != 0 {
					nu := env.LoadF(at(u, y, x))*0.5 + 0.1*g
					if nu < 0.05 && nu > -0.05 {
						nu = 0
					}
					env.StoreF(at(u, y, x), nu)
					env.StoreF(at(v, y, x), g*0.5)
				}
			}
		}
		// Re-seed a few disturbances so the field never fully dies.
		for k := 0; k < 8; k++ {
			env.StoreF(at(u, 1+r.intn(n-2), 1+r.intn(n-2)), 1)
		}
	}
}

// meshGen mirrors 101.tomcatv: mesh-coordinate smoothing with residual
// grids that are zeroed every sweep.
type meshGen struct{}

func (meshGen) Name() string     { return "meshgen" }
func (meshGen) Analogue() string { return "101.tomcatv" }
func (meshGen) FVL() bool        { return true }
func (meshGen) Description() string {
	return "mesh-generation smoothing with zeroed residual grids"
}

func (m meshGen) Run(env *memsim.Env, scale Scale) {
	iters := map[Scale]int{Test: 8, Train: 20, Ref: 52}[scale]
	r := newRNG(seedFor(m.Name(), scale))

	const n = 128
	active := env.Static(n * n) // 0/1 convergence flags, mostly 0
	env.Static(41)              // padding: stagger bases to avoid set aliasing
	rx := env.Static(n * n)     // residuals, mostly exact zero
	env.Static(73)
	xs := env.Static(n * n) // coordinates, touched only where active
	at := func(g uint32, y, x int) uint32 { return g + uint32(y*n+x)*4 }

	// Initialize: mesh mostly converged (inactive); a sparse set of
	// cells still moving — tomcatv's late iterations look like this.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			env.StoreF(at(xs, y, x), float32(x))
			env.StoreF(at(rx, y, x), 0)
			a := uint32(0)
			if y > 0 && x > 0 && y < n-1 && x < n-1 && r.intn(10) == 0 {
				a = 1
			}
			env.Store(at(active, y, x), a)
		}
	}

	for it := 0; it < iters; it++ {
		// Residual sweep: the activity mask is read everywhere; work
		// happens only at active cells.
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if env.Load(at(active, y, x)) == 0 {
					continue
				}
				ex := env.LoadF(at(xs, y, x-1)) + env.LoadF(at(xs, y, x+1)) -
					2*env.LoadF(at(xs, y, x)) + (r.f32()-0.5)*0.2
				if ex < 0.05 && ex > -0.05 {
					ex = 0
				}
				env.StoreF(at(rx, y, x), ex)
			}
		}
		// Correction sweep reads the sparse residual grid everywhere.
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				ex := env.LoadF(at(rx, y, x))
				if ex == 0 {
					// Converged cell: deactivate.
					if env.Load(at(active, y, x)) == 1 && r.intn(4) == 0 {
						env.Store(at(active, y, x), 0)
					}
					continue
				}
				env.StoreF(at(xs, y, x), env.LoadF(at(xs, y, x))+0.5*ex)
				// Activity spreads to a neighbor.
				env.Store(at(active, y, x+1), 1)
			}
		}
		// Keep a trickle of activity alive.
		for k := 0; k < 6; k++ {
			env.Store(at(active, 1+r.intn(n-2), 1+r.intn(n-2)), 1)
		}
	}
}

// mgrid3D mirrors 107.mgrid: multigrid restriction/prolongation over a
// 3D grid whose coarse levels are dominated by zeros.
type mgrid3D struct{}

func (mgrid3D) Name() string     { return "mgrid3d" }
func (mgrid3D) Analogue() string { return "107.mgrid" }
func (mgrid3D) FVL() bool        { return true }
func (mgrid3D) Description() string {
	return "multigrid V-cycles over 3D grids with sparse non-zeros"
}

func (m mgrid3D) Run(env *memsim.Env, scale Scale) {
	cycles := map[Scale]int{Test: 3, Train: 8, Ref: 20}[scale]
	r := newRNG(seedFor(m.Name(), scale))

	const n = 32 // fine grid n^3
	fine := env.Static(n * n * n)
	env.Static(29) // padding: stagger bases to avoid set aliasing
	coarse := env.Static((n / 2) * (n / 2) * (n / 2))
	at := func(g uint32, dim, z, y, x int) uint32 {
		return g + uint32((z*dim+y)*dim+x)*4
	}

	// Sparse initial charge: a few point sources in a zero field.
	for i := 0; i < n*n*n; i++ {
		env.StoreF(fine+uint32(i)*4, 0)
	}
	for k := 0; k < 12; k++ {
		z, y, x := 1+r.intn(n-2), 1+r.intn(n-2), 1+r.intn(n-2)
		env.StoreF(at(fine, n, z, y, x), 1)
	}

	for c := 0; c < cycles; c++ {
		// Restrict: average 2x2x2 fine cells into coarse.
		half := n / 2
		for z := 0; z < half; z++ {
			for y := 0; y < half; y++ {
				for x := 0; x < half; x++ {
					var sum float32
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								sum += env.LoadF(at(fine, n, 2*z+dz, 2*y+dy, 2*x+dx))
							}
						}
					}
					v := sum / 8
					if v < 1e-3 && v > -1e-3 {
						v = 0
					}
					env.StoreF(at(coarse, half, z, y, x), v)
				}
			}
		}
		// Smooth on the coarse grid.
		for z := 1; z < half-1; z++ {
			for y := 1; y < half-1; y++ {
				for x := 1; x < half-1; x++ {
					v := (env.LoadF(at(coarse, half, z, y, x-1)) +
						env.LoadF(at(coarse, half, z, y, x+1)) +
						env.LoadF(at(coarse, half, z, y-1, x)) +
						env.LoadF(at(coarse, half, z, y+1, x))) * 0.25
					if v < 1e-3 && v > -1e-3 {
						v = 0
					}
					env.StoreF(at(coarse, half, z, y, x), v)
				}
			}
		}
		// Prolongate back with injection.
		for z := 0; z < half; z++ {
			for y := 0; y < half; y++ {
				for x := 0; x < half; x++ {
					v := env.LoadF(at(coarse, half, z, y, x))
					if v != 0 {
						env.StoreF(at(fine, n, 2*z, 2*y, 2*x), v)
					}
				}
			}
		}
	}
}

// linSolve mirrors 110.applu: a banded triangular solver whose band
// matrix is mostly structural zeros.
type linSolve struct{}

func (linSolve) Name() string     { return "linsolve" }
func (linSolve) Analogue() string { return "110.applu" }
func (linSolve) FVL() bool        { return true }
func (linSolve) Description() string {
	return "banded lower-triangular solves over a mostly-zero band matrix"
}

func (l linSolve) Run(env *memsim.Env, scale Scale) {
	solves := map[Scale]int{Test: 8, Train: 20, Ref: 55}[scale]
	r := newRNG(seedFor(l.Name(), scale))

	const n = 1024
	const band = 32
	mat := env.Static(n * band) // row-major band storage, mostly zeros
	rhs := env.Static(n)
	x := env.Static(n)

	// Band matrix: diagonal ones, a few off-diagonal entries per row,
	// everything else exactly zero.
	for i := 0; i < n; i++ {
		for j := 0; j < band; j++ {
			env.StoreF(mat+uint32(i*band+j)*4, 0)
		}
		env.StoreF(mat+uint32(i*band)*4, 1) // diagonal
		for k := 0; k < 3; k++ {
			j := 1 + r.intn(band-1)
			env.StoreF(mat+uint32(i*band+j)*4, (r.f32()-0.5)*0.25)
		}
	}

	for s := 0; s < solves; s++ {
		for i := 0; i < n; i++ {
			env.StoreF(rhs+uint32(i)*4, r.f32())
		}
		// Forward substitution over the band.
		for i := 0; i < n; i++ {
			acc := env.LoadF(rhs + uint32(i)*4)
			for j := 1; j < band && j <= i; j++ {
				a := env.LoadF(mat + uint32(i*band+j)*4)
				if a != 0 {
					acc -= a * env.LoadF(x+uint32(i-j)*4)
				}
			}
			env.StoreF(x+uint32(i)*4, acc)
		}
	}
}

func init() {
	Register(stencil2D{})
	Register(meshGen{})
	Register(mgrid3D{})
	Register(linSolve{})
}
