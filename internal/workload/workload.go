// Package workload provides the synthetic benchmark suite that stands
// in for SPECint95/SPECfp95 in this reproduction (see DESIGN.md for the
// substitution argument). Each workload is a self-contained program
// written against the instrumented memsim.Env: its data structures live
// in simulated memory and every load/store is traced, while scalar
// temporaries stay in Go variables (modelling register-allocated
// locals).
//
// The eight integer workloads mirror the eight SPECint95 programs the
// paper studies — six with strong frequent value locality and two
// controls without — and ten floating-point kernels mirror the
// SPECfp95 suite of the paper's Figure 2.
package workload

import (
	"fmt"
	"sort"

	"fvcache/internal/memsim"
)

// Scale selects an input size, mirroring SPEC's test/train/ref inputs.
type Scale int

const (
	// Test is the smallest input.
	Test Scale = iota
	// Train is the intermediate input.
	Train
	// Ref is the reference input used for all headline results.
	Ref
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Train:
		return "train"
	case Ref:
		return "ref"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "test":
		return Test, nil
	case "train":
		return Train, nil
	case "ref":
		return Ref, nil
	}
	return 0, fmt.Errorf("workload: unknown scale %q (want test, train or ref)", s)
}

// Workload is a runnable synthetic benchmark.
type Workload interface {
	// Name is the registry key, e.g. "goboard".
	Name() string
	// Analogue names the SPEC95 program this workload mirrors.
	Analogue() string
	// Description summarizes what the workload does.
	Description() string
	// FVL reports whether the SPEC analogue exhibits frequent value
	// locality (false for the two control workloads).
	FVL() bool
	// Run executes the workload at the given scale against env.
	Run(env *memsim.Env, scale Scale)
}

var registry = map[string]Workload{}

// Register adds w to the registry; it panics on duplicate names (the
// registry is populated from init functions).
func Register(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic("workload: duplicate registration of " + w.Name())
	}
	registry[w.Name()] = w
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return w, nil
}

// All returns every registered workload sorted by name.
func All() []Workload {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Integer returns the integer-suite workloads (the SPECint95 mirrors),
// sorted by name.
func Integer() []Workload { return filter(func(w Workload) bool { return !isFP(w.Name()) }) }

// FP returns the floating-point-suite workloads, sorted by name.
func FP() []Workload { return filter(isFPW) }

// FVLSuite returns the six integer workloads whose analogues exhibit
// frequent value locality — the set the paper evaluates the FVC on.
func FVLSuite() []Workload {
	return filter(func(w Workload) bool { return w.FVL() && !isFP(w.Name()) })
}

func filter(keep func(Workload) bool) []Workload {
	var out []Workload
	for _, w := range All() {
		if keep(w) {
			out = append(out, w)
		}
	}
	return out
}

var fpNames = map[string]bool{
	"stencil2d": true, "meshgen": true, "mgrid3d": true, "linsolve": true,
	"lattice4d": true, "hydro2d": true, "spectral3d": true,
	"airadvect": true, "quadint": true, "particlewave": true,
}

func isFP(name string) bool { return fpNames[name] }
func isFPW(w Workload) bool { return isFP(w.Name()) }

// rng is a xorshift64* PRNG: deterministic, seedable, no external
// state. All workload randomness flows through it.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// u32 returns a random 32-bit value.
func (r *rng) u32() uint32 { return uint32(r.next() >> 32) }

// f32 returns a float32 in [0,1).
func (r *rng) f32() float32 { return float32(r.next()>>40) / float32(1<<24) }

// seedFor derives a per-workload, per-scale seed so different inputs
// exercise genuinely different data while staying deterministic.
func seedFor(name string, scale Scale) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range name {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h ^ (uint64(scale+1) * 0x9e3779b97f4a7c15)
}
