package workload

import "fvcache/internal/memsim"

// strProc mirrors 134.perl: a text-processing script. It synthesizes
// text from a small vocabulary into a packed character buffer (words
// aligned to 4-byte boundaries), then runs word-frequency counting with
// an open-addressing hash table, substring search, and case
// transformation — all processed a machine word at a time, as string
// runtimes do. The frequent values are packed character words (like the
// paper's 0x20207878-style values for perl), zero, and small counters.
type strProc struct{}

func (strProc) Name() string     { return "strproc" }
func (strProc) Analogue() string { return "134.perl" }
func (strProc) FVL() bool        { return true }
func (strProc) Description() string {
	return "text scripting: word-frequency hash, substring scan, case mapping over packed chars"
}

const spSpaces uint32 = 0x20202020 // "    "

// pack4 packs up to 4 bytes of s starting at i, space padded.
func pack4(s string, i int) uint32 {
	w := spSpaces
	for j := 0; j < 4; j++ {
		if i+j < len(s) {
			w = (w &^ (0xff << (8 * uint32(j)))) | uint32(s[i+j])<<(8*uint32(j))
		}
	}
	return w
}

func (s strProc) Run(env *memsim.Env, scale Scale) {
	passes := map[Scale]int{Test: 5, Train: 9, Ref: 16}[scale]
	textWords := map[Scale]int{Test: 8192, Train: 16384, Ref: 32768}[scale]
	r := newRNG(seedFor(s.Name(), scale))

	// The text is dominated by runs of 'x' and spaces — the packed
	// words 0x78787878, 0x20202020, 0x20207878... that fill the
	// paper's Table 1 column for 134.perl — with a tail of ordinary
	// words.
	filler := []string{"x", "xx", "xxx", "xxxx", "xxxxxxxx", "xxxxxxxxxxxx"}
	vocab := []string{
		"the", "perl", "script", "of", "and", "foo", "bar",
		"regexp", "match", "print", "data",
	}
	pack := func(words []string) [][]uint32 {
		out := make([][]uint32, len(words))
		for i, v := range words {
			token := v + " "
			var ws []uint32
			for j := 0; j < len(token); j += 4 {
				ws = append(ws, pack4(token, j))
			}
			out[i] = ws
		}
		return out
	}
	packedFiller := pack(filler)
	packedVocab := pack(vocab)

	text := env.Static(textWords)
	// The script's own source: written once, then re-scanned every
	// pass (a perl process keeps its program text and constant data
	// resident and read-only — the bulk of the paper's 80.4%
	// constant-address fraction for 134.perl).
	source := env.Static(textWords)
	const tableSlots = 2048 // key word + count word per slot
	table := env.Static(tableSlots * 2)

	// Synthesize packed-token content: 90% filler runs.
	genInto := func(base uint32) int {
		n := 0
		for n < textWords-8 {
			var ws []uint32
			if r.intn(10) < 9 {
				ws = packedFiller[r.intn(len(packedFiller))]
			} else {
				ws = packedVocab[r.intn(len(packedVocab))]
			}
			for _, w := range ws {
				env.Store(base+uint32(n)*4, w)
				n++
			}
		}
		return n
	}
	genText := func() int { return genInto(text) }
	sourceLen := genInto(source)

	hashInsert := func(key uint32) {
		slot := (key * 2654435761) % tableSlots
		for probe := 0; probe < tableSlots; probe++ {
			addr := table + (slot%tableSlots)*8
			k := env.Load(addr)
			if k == key {
				env.Store(addr+4, env.Load(addr+4)+1)
				return
			}
			if k == 0 {
				env.Store(addr, key)
				env.Store(addr+4, 1)
				return
			}
			slot++
		}
	}

	clearTable := func() {
		for i := uint32(0); i < tableSlots; i++ {
			env.Store(table+i*8, 0)
			env.Store(table+i*8+4, 0)
		}
	}

	hasByte := func(w uint32, b byte) bool {
		for j := 0; j < 4; j++ {
			if byte(w>>(8*uint32(j))) == b {
				return true
			}
		}
		return false
	}

	for pass := 0; pass < passes; pass++ {
		n := genText()
		clearTable()

		// Word-frequency pass: the first packed word of each token is
		// its hash key (tokens are aligned, so keys repeat from a
		// small set of char-data values).
		inToken := false
		for i := 0; i < n; i++ {
			w := env.Load(text + uint32(i)*4)
			if w == spSpaces {
				inToken = false
				continue
			}
			if !inToken {
				hashInsert(w)
				inToken = true
			}
		}

		// Substring scan over the read-only source: count words
		// containing an 'x' byte.
		count := 0
		for i := 0; i < sourceLen; i++ {
			if hasByte(env.Load(source+uint32(i)*4), 'x') {
				count++
			}
		}

		// Case transform of a slice: word read-modify-write.
		lo := r.intn(n / 2)
		for i := lo; i < lo+n/8; i++ {
			w := env.Load(text + uint32(i)*4)
			var out uint32
			for j := 0; j < 4; j++ {
				b := byte(w >> (8 * uint32(j)))
				if b >= 'a' && b <= 'z' {
					b -= 'a' - 'A'
				}
				out |= uint32(b) << (8 * uint32(j))
			}
			env.Store(text+uint32(i)*4, out)
		}
		_ = count
	}
}

func init() { Register(strProc{}) }
