package workload

import "fvcache/internal/memsim"

// cpuSim mirrors 124.m88ksim: an instruction-set simulator whose
// simulated machine state (instruction memory, register file, data
// memory, read-only image) lives in traced memory.
//
// Two properties of the real benchmark are reproduced deliberately:
//
//   - The paper's Table 4 reports 99.3% of m88ksim's referenced
//     addresses hold constant values per allocation. Here the
//     simulator's read-write segment is calloc-allocated fresh for
//     every simulated run (each pass is a separate allocation
//     instance) and cells are only ever written with one value, while
//     the instruction memory and read-only image are written once.
//   - The repeated fetches of the same instruction words make those
//     encodings the frequently accessed values, and stores into the
//     zeroed segment write the frequent value 1 — the access profile
//     that lets a tiny FVC capture most of the benchmark's misses.
type cpuSim struct{}

func (cpuSim) Name() string     { return "cpusim" }
func (cpuSim) Analogue() string { return "124.m88ksim" }
func (cpuSim) FVL() bool        { return true }
func (cpuSim) Description() string {
	return "toy-RISC instruction-set simulator running a sieve program"
}

// Toy ISA: 32-bit words, op<<24 | rd<<20 | rs1<<16 | rs2<<12 | imm12.
const (
	opHalt uint32 = iota
	opLoadI
	opAdd
	opAddI
	opLd
	opSt
	opBeq
	opBne
	opBge
	opJmp
	opMul
)

func ins(op, rd, rs1, rs2 uint32, imm int) uint32 {
	return op<<24 | rd<<20 | rs1<<16 | rs2<<12 | (uint32(imm) & 0xfff)
}

// signExt12 sign-extends a 12-bit immediate.
func signExt12(v uint32) int32 {
	if v&0x800 != 0 {
		return int32(v | 0xfffff000)
	}
	return int32(v)
}

// romFactor is the size of the read-only image relative to the sieve
// array (the simulated binary's code + rodata).
const romFactor = 2

// sieveProgram is the simulated binary: the sieve of Eratosthenes over
// mem[0:n) (freshly zeroed, so composites are marked by storing 1 and
// primes stay untouched), a checksum pass, then a checksum of the
// read-only image at mem[n:n+romFactor*n).
//
// Register use: r1=n, r2=i, r3=j, r4=tmp, r5=one, r6=sum, r7=end.
func sieveProgram() []uint32 {
	return []uint32{
		// 0: r5 = 1
		ins(opLoadI, 5, 0, 0, 1),
		// 1: r2 = 2                       (i = 2)
		ins(opLoadI, 2, 0, 0, 2),
		// 2: outer: r4 = i*i
		ins(opMul, 4, 2, 2, 0),
		// 3: if i*i >= n goto checksum(14)
		ins(opBge, 0, 4, 1, 14),
		// 4: r4 = mem[i]
		ins(opLd, 4, 2, 0, 0),
		// 5: if mem[i] != 0 goto next(12)
		ins(opBne, 0, 4, 0, 12),
		// 6: r3 = i*i                     (j = i*i)
		ins(opMul, 3, 2, 2, 0),
		// 7: inner: if j >= n goto next(12)
		ins(opBge, 0, 3, 1, 12),
		// 8: mem[j] = 1
		ins(opSt, 0, 3, 5, 0),
		// 9: j += i; goto inner
		ins(opAdd, 3, 3, 2, 0),
		ins(opJmp, 0, 0, 0, 7),
		// 11: pad
		ins(opJmp, 0, 0, 0, 12),
		// 12: next: i += 1; goto outer
		ins(opAddI, 2, 2, 0, 1),
		ins(opJmp, 0, 0, 0, 2),
		// 14: checksum: i = 0; sum = 0
		ins(opLoadI, 2, 0, 0, 0),
		ins(opLoadI, 6, 0, 0, 0),
		// 16: loop: if i >= n goto romsum(21)
		ins(opBge, 0, 2, 1, 21),
		// 17: r4 = mem[i]; sum += r4; i++
		ins(opLd, 4, 2, 0, 0),
		ins(opAdd, 6, 6, 4, 0),
		ins(opAddI, 2, 2, 0, 1),
		ins(opJmp, 0, 0, 0, 16),
		// 21: romsum: r4 = romFactor; r7 = n*(1+romFactor); i = n
		ins(opLoadI, 4, 0, 0, romFactor),
		ins(opMul, 7, 1, 4, 0),
		ins(opAdd, 7, 7, 1, 0),
		ins(opAdd, 2, 1, 0, 0),
		// 25: romloop: if i >= end goto halt(30)
		ins(opBge, 0, 2, 7, 30),
		ins(opLd, 4, 2, 0, 0),
		ins(opAdd, 6, 6, 4, 0),
		ins(opAddI, 2, 2, 0, 1),
		ins(opJmp, 0, 0, 0, 25),
		// 30: halt
		ins(opHalt, 0, 0, 0, 0),
	}
}

func (c cpuSim) Run(env *memsim.Env, scale Scale) {
	n := map[Scale]int{Test: 1500, Train: 1800, Ref: 2000}[scale]
	passes := map[Scale]int{Test: 4, Train: 9, Ref: 24}[scale]

	prog := sieveProgram()
	r := newRNG(seedFor(c.Name(), scale))
	imem := env.Static(len(prog))
	regs := env.Static(16)
	rom := env.Static(n * romFactor)

	// Program load: the only writes to instruction memory.
	for i, w := range prog {
		env.Store(imem+uint32(i)*4, w)
	}
	// Image load: written once, then only read — a mostly-sparse table
	// of small constants, like the simulated binary's rodata.
	for i := 0; i < n*romFactor; i++ {
		var v uint32
		switch r.intn(20) {
		case 0:
			v = uint32(1 + r.intn(200))
		case 1, 2:
			v = []uint32{1, 2, 4, 8}[r.intn(4)]
		}
		env.Store(rom+uint32(i)*4, v)
	}

	for pass := 0; pass < passes; pass++ {
		// A fresh zeroed (calloc-style) read-write segment per
		// simulated run: no explicit clearing, so untouched words read
		// 0 and every word holds a single value for its lifetime.
		rw := env.Alloc(n)

		for i := 0; i < 16; i++ {
			env.Store(regs+uint32(i)*4, 0)
		}
		env.Store(regs+1*4, uint32(n))

		// The simulated address space: indices [0,n) map to the rw
		// segment, [n, n*(1+romFactor)) to the read-only image.
		dload := func(idx uint32) uint32 {
			if idx < uint32(n) {
				return env.Load(rw + idx*4)
			}
			return env.Load(rom + (idx-uint32(n))*4)
		}
		dstore := func(idx, v uint32) {
			if idx < uint32(n) {
				env.Store(rw+idx*4, v)
			}
			// Stores to the read-only image are dropped, as a memory
			// controller would fault; the program never does this.
		}

		pc := 0
		rd := func(r uint32) uint32 {
			if r == 0 {
				return 0
			}
			return env.Load(regs + r*4)
		}
		wr := func(r, v uint32) {
			if r != 0 {
				env.Store(regs+r*4, v)
			}
		}
		for steps := 0; steps < 50_000_000; steps++ {
			w := env.Load(imem + uint32(pc)*4)
			op := w >> 24
			rdst := (w >> 20) & 0xf
			rs1 := (w >> 16) & 0xf
			rs2 := (w >> 12) & 0xf
			imm := signExt12(w & 0xfff)
			pc++
			switch op {
			case opHalt:
				// handled below
			case opLoadI:
				wr(rdst, uint32(imm))
			case opAdd:
				wr(rdst, rd(rs1)+rd(rs2))
			case opAddI:
				wr(rdst, rd(rs1)+uint32(imm))
			case opLd:
				wr(rdst, dload(rd(rs1)+uint32(imm)))
			case opSt:
				dstore(rd(rs1)+uint32(imm), rd(rs2))
			case opBeq:
				if rd(rs1) == rd(rs2) {
					pc = int(imm)
				}
			case opBne:
				if rd(rs1) != rd(rs2) {
					pc = int(imm)
				}
			case opBge:
				if int32(rd(rs1)) >= int32(rd(rs2)) {
					pc = int(imm)
				}
			case opJmp:
				pc = int(imm)
			case opMul:
				wr(rdst, rd(rs1)*rd(rs2))
			}
			if op == opHalt {
				break
			}
		}
		env.Free(rw)
	}
}

func init() { Register(cpuSim{}) }
