package workload

import "fvcache/internal/memsim"

// goBoard mirrors 099.go: a board-game engine whose dominant data
// structure is a mostly-empty board array with border sentinels.
// It plays pseudo-random games of capture go: stones are placed, group
// liberties are computed by flood fill, and libertyless groups are
// removed. The board's cell values (empty=0, black=1, white=2,
// border=0xffffffff) mirror the top frequent values the paper reports
// for 099.go (0, 1, 2, fffffff...).
type goBoard struct{}

func (goBoard) Name() string     { return "goboard" }
func (goBoard) Analogue() string { return "099.go" }
func (goBoard) FVL() bool        { return true }
func (goBoard) Description() string {
	return "capture-go engine: flood-fill liberties over a sparse board array"
}

const (
	goEmpty  uint32 = 0
	goBlack  uint32 = 1
	goWhite  uint32 = 2
	goBorder uint32 = 0xffffffff
)

func (g goBoard) Run(env *memsim.Env, scale Scale) {
	moves := map[Scale]int{Test: 3000, Train: 10000, Ref: 32000}[scale]
	games := map[Scale]int{Test: 6, Train: 10, Ref: 16}[scale]
	r := newRNG(seedFor(g.Name(), scale))

	const size = 19
	const dim = size + 2 // sentinel border ring
	const cells = dim * dim
	// Many concurrent games played round-robin, like an engine
	// searching positions: the boards are the dominant footprint.
	boards := env.Static(games * cells)
	seen := env.Static(cells) // flood-fill visited flags (0/1), shared
	// A pattern/history table consulted on every candidate move: the
	// engine's big side table (counts are small frequent integers).
	const patSize = 4096
	pattern := env.Static(patSize)
	// Static evaluation weights, written once at startup and then only
	// read — the engine's constant tables (matches the high
	// constant-address fraction the paper reports for 099.go).
	weights := env.Static(patSize)
	// Worklist and touched-list live in a stack frame, like a real
	// engine's recursion or explicit stack.
	frame := env.PushFrame(2 * cells)
	work := frame
	touched := frame + 4*cells
	defer env.PopFrame()

	board := boards // current game's board base
	at := func(row, col int) uint32 { return board + uint32(row*dim+col)*4 }

	reset := func() {
		for row := 0; row < dim; row++ {
			for col := 0; col < dim; col++ {
				v := goEmpty
				if row == 0 || col == 0 || row == dim-1 || col == dim-1 {
					v = goBorder
				}
				env.Store(at(row, col), v)
			}
		}
	}
	for gi := 0; gi < games; gi++ {
		board = boards + uint32(gi*cells)*4
		reset()
	}
	for i := 0; i < cells; i++ {
		env.Store(seen+uint32(i)*4, 0)
	}
	for i := 0; i < patSize; i++ {
		env.Store(pattern+uint32(i)*4, 0)
		var wv uint32
		if r.intn(4) == 0 {
			wv = uint32(1 + r.intn(8))
		}
		env.Store(weights+uint32(i)*4, wv)
	}

	neighbors := [4]int{-1, 1, -dim, dim}

	// groupLiberties flood-fills the same-colored group containing
	// cell idx, returning its liberty count and recording its cells in
	// the touched list (count returned).
	groupLiberties := func(idx int, color uint32) (libs, groupLen int) {
		wp := 0 // worklist size
		env.Store(work+uint32(wp)*4, uint32(idx))
		wp++
		env.Store(seen+uint32(idx)*4, 1)
		tl := 0
		for wp > 0 {
			wp--
			cur := int(env.Load(work + uint32(wp)*4))
			env.Store(touched+uint32(tl)*4, uint32(cur))
			tl++
			for _, d := range neighbors {
				n := cur + d
				v := env.Load(board + uint32(n)*4)
				switch v {
				case goEmpty:
					libs++ // liberties may be double-counted; fine for capture logic (0 stays 0)
				case color:
					if env.Load(seen+uint32(n)*4) == 0 {
						env.Store(seen+uint32(n)*4, 1)
						env.Store(work+uint32(wp)*4, uint32(n))
						wp++
					}
				}
			}
		}
		// Clear visited flags for the touched cells.
		for i := 0; i < tl; i++ {
			c := env.Load(touched + uint32(i)*4)
			env.Store(seen+c*4, 0)
		}
		return libs, tl
	}

	// removeGroup clears the group recorded in touched[0:n].
	removeGroup := func(n int) {
		for i := 0; i < n; i++ {
			c := env.Load(touched + uint32(i)*4)
			env.Store(board+c*4, goEmpty)
		}
	}

	empties := make([]int, games)
	colors := make([]uint32, games)
	for gi := range empties {
		empties[gi] = size * size
		colors[gi] = goBlack
	}
	const movesPerBlock = 200 // stay on one game for a while (temporal locality)
	for m := 0; m < moves; m++ {
		gi := (m / movesPerBlock) % games
		board = boards + uint32(gi*cells)*4
		color := colors[gi]
		if empties[gi] < size { // board nearly full: start a new game
			reset()
			empties[gi] = size * size
		}
		// Find the best-scoring empty cell among a few candidates,
		// consulting the pattern table (a load of a small counter).
		idx, bestScore := 0, uint32(0)
		for try := 0; try < 12; try++ {
			row := 1 + r.intn(size)
			col := 1 + r.intn(size)
			cand := row*dim + col
			if env.Load(board+uint32(cand)*4) != goEmpty {
				continue
			}
			h := uint32((cand*31 + int(color)*17) % patSize)
			score := env.Load(pattern+h*4) + env.Load(weights+h*4) + uint32(r.intn(3))
			if idx == 0 || score > bestScore {
				idx, bestScore = cand, score
			}
		}
		if idx == 0 {
			reset()
			empties[gi] = size * size
			continue
		}
		env.Store(board+uint32(idx)*4, color)
		empties[gi]--
		opp := goBlack + goWhite - color
		// Capture any adjacent libertyless opponent group.
		for _, d := range neighbors {
			n := idx + d
			if env.Load(board+uint32(n)*4) != opp {
				continue
			}
			if libs, gl := groupLiberties(n, opp); libs == 0 {
				removeGroup(gl)
				empties[gi] += gl
				// Reward the capturing pattern.
				pa := pattern + uint32((idx*31+int(color)*17)%patSize)*4
				env.Store(pa, env.Load(pa)+1)
			}
		}
		// Suicide rule: if own group has no liberties, remove it.
		if libs, gl := groupLiberties(idx, color); libs == 0 {
			removeGroup(gl)
			empties[gi] += gl
		}
		colors[gi] = opp
	}
}

func init() { Register(goBoard{}) }
