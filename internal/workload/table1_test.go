package workload

import (
	"testing"

	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

// The paper's Table 1 ties each benchmark to characteristic frequent
// values. These regression tests pin our analogues to the same value
// identities — the calibration EXPERIMENTS.md depends on. If a
// workload change breaks one of these, the paper-shape results likely
// shifted too.
func topSet(t *testing.T, name string, k int) map[uint32]bool {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewValueHistogram()
	env := memsim.NewEnv(h)
	w.Run(env, Test)
	set := map[uint32]bool{}
	for _, vc := range h.TopK(k) {
		set[vc.Value] = true
	}
	return set
}

func TestTable1GoboardValues(t *testing.T) {
	top := topSet(t, "goboard", 7)
	// 099.go's table: 0, 1, 2 (cells) and ffffffff (border sentinel).
	for _, v := range []uint32{goEmpty, goBlack, goWhite, goBorder} {
		if !top[v] {
			t.Errorf("goboard top-7 missing %#x", v)
		}
	}
}

func TestTable1StrprocValues(t *testing.T) {
	top := topSet(t, "strproc", 7)
	// 134.perl's table is packed 'x'/space character words.
	want := []uint32{0x20202020, 0x78787878}
	for _, v := range want {
		if !top[v] {
			t.Errorf("strproc top-7 missing packed-char word %#x", v)
		}
	}
}

func TestTable1LispintValues(t *testing.T) {
	top := topSet(t, "lispint", 7)
	// 130.li: NIL (0) and the GC mark bit / tagged small ints.
	if !top[lispNil] {
		t.Error("lispint top-7 missing NIL (0)")
	}
	if !top[1] {
		t.Error("lispint top-7 missing 1 (mark bit)")
	}
}

func TestTable1CpusimValues(t *testing.T) {
	top := topSet(t, "cpusim", 10)
	// 124.m88ksim: 0, 1, and recurring instruction encodings.
	if !top[0] || !top[1] {
		t.Error("cpusim top-10 missing 0/1")
	}
	instr := false
	for v := range top {
		if v>>24 >= opLoadI && v>>24 <= opMul && v > 0xffff {
			instr = true
		}
	}
	if !instr {
		t.Errorf("cpusim top-10 has no instruction encodings: %v", top)
	}
}

func TestTable1ObjdbValues(t *testing.T) {
	top := topSet(t, "objdb", 7)
	// 147.vortex: zero plus small type/status tags.
	for _, v := range []uint32{0, stActive, stUpdated} {
		if !top[v] {
			t.Errorf("objdb top-7 missing %#x", v)
		}
	}
}

func TestTable1CcompValues(t *testing.T) {
	top := topSet(t, "ccomp", 7)
	// 126.gcc: zero (NULL children/attrs) and small node kind tags.
	if !top[0] {
		t.Error("ccomp top-7 missing 0 (NULL)")
	}
	tags := 0
	for _, k := range []uint32{kNum, kVar, kAdd, kSub, kMul, kNeg} {
		if top[k] {
			tags++
		}
	}
	if tags < 2 {
		t.Errorf("ccomp top-7 holds only %d node tags", tags)
	}
}

// The controls must not have zero-dominated access streams.
func TestTable1ControlsLackDominantValue(t *testing.T) {
	for _, name := range []string{"lzcomp", "imgdct"} {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		h := trace.NewValueHistogram()
		env := memsim.NewEnv(h)
		w.Run(env, Test)
		if cov := h.CoverageOfTopK(1); cov > 0.15 {
			t.Errorf("%s top-1 coverage %.2f too high for a control", name, cov)
		}
	}
}
