package workload

import (
	"testing"

	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry holds %d workloads, want 18", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Errorf("All() not sorted: %q >= %q", all[i-1].Name(), all[i].Name())
		}
	}
	if len(Integer()) != 8 {
		t.Errorf("Integer suite has %d workloads, want 8", len(Integer()))
	}
	if len(FP()) != 10 {
		t.Errorf("FP suite has %d workloads, want 10", len(FP()))
	}
	fvl := FVLSuite()
	if len(fvl) != 6 {
		t.Fatalf("FVL suite has %d workloads, want 6", len(fvl))
	}
	for _, w := range fvl {
		if !w.FVL() || isFP(w.Name()) {
			t.Errorf("FVLSuite contains %q (fvl=%v fp=%v)", w.Name(), w.FVL(), isFP(w.Name()))
		}
	}
}

func TestGet(t *testing.T) {
	w, err := Get("goboard")
	if err != nil || w.Name() != "goboard" {
		t.Errorf("Get(goboard) = %v, %v", w, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get of unknown workload must error")
	}
}

func TestMetadata(t *testing.T) {
	analogues := map[string]string{
		"goboard": "099.go", "cpusim": "124.m88ksim", "ccomp": "126.gcc",
		"lispint": "130.li", "strproc": "134.perl", "objdb": "147.vortex",
		"lzcomp": "129.compress", "imgdct": "132.ijpeg",
	}
	for name, want := range analogues {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if w.Analogue() != want {
			t.Errorf("%s.Analogue() = %q, want %q", name, w.Analogue(), want)
		}
		if w.Description() == "" {
			t.Errorf("%s has no description", name)
		}
	}
	for _, name := range []string{"lzcomp", "imgdct"} {
		w, _ := Get(name)
		if w.FVL() {
			t.Errorf("%s must be an FVL control (FVL()==false)", name)
		}
	}
}

func TestScaleParseAndString(t *testing.T) {
	for _, s := range []Scale{Test, Train, Ref} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale of unknown scale must error")
	}
	if Scale(9).String() != "scale(9)" {
		t.Errorf("unknown scale String = %q", Scale(9).String())
	}
}

func runOnce(t *testing.T, w Workload, s Scale) (*trace.Counter, *trace.ValueHistogram) {
	t.Helper()
	var c trace.Counter
	h := trace.NewValueHistogram()
	env := memsim.NewEnv(trace.MultiSink(&c, h))
	w.Run(env, s)
	if env.FrameDepth() != 0 {
		t.Errorf("%s leaked %d stack frames", w.Name(), env.FrameDepth())
	}
	return &c, h
}

func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			c1, h1 := runOnce(t, w, Test)
			c2, h2 := runOnce(t, w, Test)
			if c1.Accesses() != c2.Accesses() {
				t.Fatalf("access counts differ across runs: %d vs %d", c1.Accesses(), c2.Accesses())
			}
			t1, t2 := h1.TopK(5), h2.TopK(5)
			for i := range t1 {
				if t1[i] != t2[i] {
					t.Errorf("top value %d differs: %v vs %v", i, t1[i], t2[i])
				}
			}
		})
	}
}

func TestScaleMonotonicity(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			cTest, _ := runOnce(t, w, Test)
			cTrain, _ := runOnce(t, w, Train)
			if cTest.Accesses() >= cTrain.Accesses() {
				t.Errorf("test (%d) must be smaller than train (%d)",
					cTest.Accesses(), cTrain.Accesses())
			}
		})
	}
}

func TestFVLCharacteristics(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			_, h := runOnce(t, w, Test)
			cov := h.CoverageOfTopK(10)
			if w.FVL() && cov < 0.30 {
				t.Errorf("%s is an FVL workload but top-10 coverage is only %.2f", w.Name(), cov)
			}
			if !w.FVL() && cov > 0.20 {
				t.Errorf("%s is a control but top-10 coverage is %.2f", w.Name(), cov)
			}
		})
	}
}

func TestAccessVolumes(t *testing.T) {
	// Every workload must generate a meaningful trace at Test scale
	// (enough to exercise caches) without being gigantic.
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			c, _ := runOnce(t, w, Test)
			if c.Accesses() < 20_000 {
				t.Errorf("%s generates only %d accesses at test scale", w.Name(), c.Accesses())
			}
			if c.Accesses() > 5_000_000 {
				t.Errorf("%s generates %d accesses at test scale (too heavy)", w.Name(), c.Accesses())
			}
		})
	}
}

func TestGoBoardCellValues(t *testing.T) {
	env := memsim.NewEnv(nil)
	goBoard{}.Run(env, Test)
	// The board is the first static allocation: 21x21 words.
	const dim = 21
	for i := 0; i < dim*dim; i++ {
		v := env.Mem.LoadWord(memsim.StaticBase + uint32(i*4))
		switch v {
		case goEmpty, goBlack, goWhite, goBorder:
		default:
			t.Fatalf("board cell %d holds unexpected value %#x", i, v)
		}
	}
}

func TestCPUSimExecutesSieve(t *testing.T) {
	env := memsim.NewEnv(nil)
	cpuSim{}.Run(env, Test)
	// Static layout: imem (len(prog) words), regs (16), rom.
	prog := sieveProgram()
	regs := memsim.StaticBase + uint32(len(prog)*4)
	rom := regs + 16*4
	n := 1500 // Test scale sieve size
	// The final checksum in r6 is the number of composites below n
	// plus the sum of the read-only image; verify against a direct
	// computation (the rw segment itself is freed and scrubbed).
	composite := make([]bool, n)
	for i := 2; i*i < n; i++ {
		if !composite[i] {
			for j := i * i; j < n; j += i {
				composite[j] = true
			}
		}
	}
	want := uint32(0)
	for i := 0; i < n; i++ {
		if composite[i] {
			want++
		}
	}
	for i := 0; i < n*romFactor; i++ {
		want += env.Mem.LoadWord(rom + uint32(i*4))
	}
	if got := env.Mem.LoadWord(regs + 6*4); got != want {
		t.Errorf("checksum r6 = %d, want %d", got, want)
	}
	// The rw segment must have been freed every pass (no leaks).
	if env.HeapLive() != 0 {
		t.Errorf("cpusim leaked %d heap blocks", env.HeapLive())
	}
}

func TestLispHeapGCReclaims(t *testing.T) {
	env := memsim.NewEnv(nil)
	h := newLispHeap(env, 64)
	// Fill the heap with garbage (unrooted cells), then cons with a
	// root: GC must reclaim and succeed.
	for i := 0; i < 63; i++ {
		h.cons(mkInt(1), lispNil)
	}
	lst := h.cons(mkInt(2), lispNil)
	h.roots = []uint32{lst}
	for i := 0; i < 200; i++ { // far more than capacity: GC must cycle
		h.cons(mkInt(3), lispNil)
	}
	if got := h.car(lst); got != mkInt(2) {
		t.Errorf("rooted cell corrupted: car = %#x", got)
	}
}

func TestLispTagScheme(t *testing.T) {
	if !isInt(mkInt(5)) || intVal(mkInt(5)) != 5 {
		t.Error("int tagging roundtrip broken")
	}
	if isInt(lispNil) {
		t.Error("NIL must not look like an int")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed must be remapped to a nonzero state")
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := r.f32(); f < 0 || f >= 1 {
			t.Fatalf("f32 out of range: %v", f)
		}
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) must return 0")
	}
}

func TestSeedForDiffersByScaleAndName(t *testing.T) {
	if seedFor("a", Test) == seedFor("a", Ref) {
		t.Error("seeds must differ by scale")
	}
	if seedFor("a", Test) == seedFor("b", Test) {
		t.Error("seeds must differ by name")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register(goBoard{})
}

func TestICos(t *testing.T) {
	// Period-32 symmetry: icos(m) == icos(m+32), icos(16-m) == -icos(m).
	for m := 0; m < 32; m++ {
		if icos(m) != icos(m+32) {
			t.Errorf("icos period broken at %d", m)
		}
	}
	if icos(0) != 64 || icos(8) != 0 || icos(16) != -64 {
		t.Errorf("icos anchors: %d %d %d", icos(0), icos(8), icos(16))
	}
}
