package freqval

import (
	"sort"

	"fvcache/internal/trace"
)

// SpaceSaving is the Metwally–Agrawal–El Abbadi streaming top-k sketch.
// It identifies frequently accessed values online in O(capacity) space,
// which is how a hardware frequent-value finder (the paper's "fast
// method for identifying the frequently accessed values") would
// plausibly be built. Guarantees: any value with true frequency greater
// than N/capacity is present in the sketch.
type SpaceSaving struct {
	capacity int
	counts   map[uint32]uint64
	errs     map[uint32]uint64
	total    uint64
}

// NewSpaceSaving returns a sketch tracking up to capacity values.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		capacity = 64
	}
	return &SpaceSaving{
		capacity: capacity,
		counts:   make(map[uint32]uint64, capacity),
		errs:     make(map[uint32]uint64, capacity),
	}
}

// Emit consumes one event; non-accesses are ignored.
func (s *SpaceSaving) Emit(e trace.Event) {
	if !e.Op.IsAccess() {
		return
	}
	s.Observe(e.Value)
}

// Observe records one occurrence of v.
func (s *SpaceSaving) Observe(v uint32) {
	s.total++
	if _, ok := s.counts[v]; ok {
		s.counts[v]++
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[v] = 1
		s.errs[v] = 0
		return
	}
	// Replace the minimum-count entry.
	var minV uint32
	minC := ^uint64(0)
	for val, c := range s.counts {
		if c < minC || (c == minC && val < minV) {
			minV, minC = val, c
		}
	}
	delete(s.counts, minV)
	delete(s.errs, minV)
	s.counts[v] = minC + 1
	s.errs[v] = minC
}

// Total returns the number of observations.
func (s *SpaceSaving) Total() uint64 { return s.total }

// TopK returns the k values with the highest estimated counts,
// descending, ties broken by smaller value.
func (s *SpaceSaving) TopK(k int) []trace.ValueCount {
	all := make([]trace.ValueCount, 0, len(s.counts))
	for v, c := range s.counts {
		all = append(all, trace.ValueCount{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TopValues returns just the values of TopK.
func (s *SpaceSaving) TopValues(k int) []uint32 {
	top := s.TopK(k)
	out := make([]uint32, len(top))
	for i, vc := range top {
		out[i] = vc.Value
	}
	return out
}

// GuaranteedCount returns the lower bound on v's true count
// (estimate minus maximum overestimation error), or 0 if untracked.
func (s *SpaceSaving) GuaranteedCount(v uint32) uint64 {
	c, ok := s.counts[v]
	if !ok {
		return 0
	}
	return c - s.errs[v]
}
