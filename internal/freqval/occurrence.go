package freqval

import (
	"sort"

	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

// Sample is one memory-content snapshot: for every distinct value, the
// number of interesting locations holding it at the sample point.
type Sample struct {
	// AtAccess is the access count at which the sample was taken.
	AtAccess uint64
	// Locations is the number of interesting locations considered.
	Locations int
	// Counts maps each value to the number of locations holding it.
	Counts map[uint32]int
}

// Unique returns the number of distinct values in the sample.
func (s *Sample) Unique() int { return len(s.Counts) }

// OccurrenceSampler periodically snapshots the contents of the
// "interesting" memory locations — those that have been referenced and
// not deallocated since — mirroring the paper's every-10M-instruction
// sampling (rescaled to accesses). It consumes the full event stream
// (accesses mark locations as referenced; free events retire them).
type OccurrenceSampler struct {
	mem      *memsim.Memory
	interval uint64
	accesses uint64
	nextAt   uint64

	live    map[uint32]struct{}
	samples []Sample
}

// NewOccurrenceSampler samples mem every interval accesses.
func NewOccurrenceSampler(mem *memsim.Memory, interval uint64) *OccurrenceSampler {
	if interval == 0 {
		interval = 1 << 20
	}
	return &OccurrenceSampler{
		mem:      mem,
		interval: interval,
		nextAt:   interval,
		live:     make(map[uint32]struct{}),
	}
}

// Emit consumes one trace event.
func (o *OccurrenceSampler) Emit(e trace.Event) {
	switch e.Op {
	case trace.Load, trace.Store:
		o.live[e.Addr] = struct{}{}
		o.accesses++
		if o.accesses >= o.nextAt {
			o.takeSample()
			o.nextAt += o.interval
		}
	case trace.StackFree, trace.HeapFree:
		for off := uint32(0); off < e.Size(); off += trace.WordBytes {
			delete(o.live, e.Addr+off)
		}
	}
}

func (o *OccurrenceSampler) takeSample() {
	counts := make(map[uint32]int)
	for addr := range o.live {
		counts[o.mem.LoadWord(addr)]++
	}
	o.samples = append(o.samples, Sample{
		AtAccess:  o.accesses,
		Locations: len(o.live),
		Counts:    counts,
	})
}

// Finalize takes a last sample of the end state if the stream ended
// between sample points (and guarantees at least one sample for
// non-empty streams).
func (o *OccurrenceSampler) Finalize() {
	if o.accesses == 0 {
		return
	}
	if len(o.samples) == 0 || o.samples[len(o.samples)-1].AtAccess != o.accesses {
		o.takeSample()
	}
}

// Samples returns the snapshots in chronological order.
func (o *OccurrenceSampler) Samples() []Sample { return o.samples }

// LiveLocations returns the current number of interesting locations.
func (o *OccurrenceSampler) LiveLocations() int { return len(o.live) }

// LiveAddrs returns the current interesting addresses (in arbitrary
// order) — the input for the Figure 5 spatial scan.
func (o *OccurrenceSampler) LiveAddrs() []uint32 {
	out := make([]uint32, 0, len(o.live))
	for a := range o.live {
		out = append(out, a)
	}
	return out
}

// avgFractions returns, for each value ever observed, the mean over
// samples of the fraction of locations holding it.
func (o *OccurrenceSampler) avgFractions() map[uint32]float64 {
	fr := make(map[uint32]float64)
	for _, s := range o.samples {
		if s.Locations == 0 {
			continue
		}
		inv := 1 / float64(s.Locations)
		for v, c := range s.Counts {
			fr[v] += float64(c) * inv
		}
	}
	if n := len(o.samples); n > 0 {
		inv := 1 / float64(n)
		for v := range fr {
			fr[v] *= inv
		}
	}
	return fr
}

// TopOccurring returns the k most frequently occurring values, ranked
// by their average fraction of locations across samples.
func (o *OccurrenceSampler) TopOccurring(k int) []uint32 {
	fr := o.avgFractions()
	type vf struct {
		v uint32
		f float64
	}
	all := make([]vf, 0, len(fr))
	for v, f := range fr {
		all = append(all, vf{v, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint32, k)
	for i := range out {
		out[i] = all[i].v
	}
	return out
}

// AvgCoverage returns the average (over samples) fraction of
// interesting locations occupied by the given values — the paper's
// "ten distinct values occupy over 50% of memory locations" metric.
func (o *OccurrenceSampler) AvgCoverage(values []uint32) float64 {
	if len(o.samples) == 0 {
		return 0
	}
	set := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	var sum float64
	for _, s := range o.samples {
		if s.Locations == 0 {
			continue
		}
		covered := 0
		for v := range set {
			covered += s.Counts[v]
		}
		sum += float64(covered) / float64(s.Locations)
	}
	return sum / float64(len(o.samples))
}

// CoverageAt returns, for sample index i, the number of locations
// holding any of values (for the Figure 3 time-series curves).
func (o *OccurrenceSampler) CoverageAt(i int, values []uint32) int {
	s := o.samples[i]
	covered := 0
	for _, v := range values {
		covered += s.Counts[v]
	}
	return covered
}
