package freqval

import (
	"sort"

	"fvcache/internal/memsim"
)

// SpatialOptions parameterizes the Figure 5 scan.
type SpatialOptions struct {
	// WordsPerLine groups consecutive words into cache-line-sized
	// units (the paper uses 8).
	WordsPerLine int
	// LinesPerBlock groups lines into blocks over which the per-line
	// frequent-value count is averaged (the paper uses 100 lines of 8
	// words = 800-word blocks).
	LinesPerBlock int
}

// DefaultSpatialOptions matches the paper: 8 words per line, 100 lines
// per block.
func DefaultSpatialOptions() SpatialOptions {
	return SpatialOptions{WordsPerLine: 8, LinesPerBlock: 100}
}

// ScanSpatial reproduces the paper's spatial-uniformity measurement:
// the referenced memory (addrs, in any order) is sorted, grouped into
// lines and blocks, and for each block the average number of frequent
// values per line is returned, in address order.
//
// values is the frequent value set (the paper uses the top 7
// occurring); mem supplies current contents.
func ScanSpatial(mem *memsim.Memory, addrs []uint32, values []uint32, opt SpatialOptions) []float64 {
	if opt.WordsPerLine <= 0 || opt.LinesPerBlock <= 0 {
		opt = DefaultSpatialOptions()
	}
	set := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	sorted := append([]uint32(nil), addrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	wordsPerBlock := opt.WordsPerLine * opt.LinesPerBlock
	var blocks []float64
	for start := 0; start < len(sorted); start += wordsPerBlock {
		end := start + wordsPerBlock
		if end > len(sorted) {
			end = len(sorted)
		}
		block := sorted[start:end]
		lines := 0
		totalFrequent := 0
		for l := 0; l < len(block); l += opt.WordsPerLine {
			le := l + opt.WordsPerLine
			if le > len(block) {
				le = len(block)
			}
			lines++
			for _, addr := range block[l:le] {
				if _, ok := set[mem.LoadWord(addr)]; ok {
					totalFrequent++
				}
			}
		}
		if lines > 0 {
			blocks = append(blocks, float64(totalFrequent)/float64(lines))
		}
	}
	return blocks
}

// SpatialSpread summarizes a ScanSpatial result: its mean and the mean
// absolute deviation from that mean. A small deviation relative to the
// mean is the paper's "frequent values are distributed quite uniformly"
// claim.
func SpatialSpread(blocks []float64) (mean, meanAbsDev float64) {
	if len(blocks) == 0 {
		return 0, 0
	}
	for _, b := range blocks {
		mean += b
	}
	mean /= float64(len(blocks))
	for _, b := range blocks {
		d := b - mean
		if d < 0 {
			d = -d
		}
		meanAbsDev += d
	}
	meanAbsDev /= float64(len(blocks))
	return mean, meanAbsDev
}
