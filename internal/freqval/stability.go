package freqval

import "fvcache/internal/trace"

// StabilityTracker answers the paper's Table 3 question: after what
// fraction of the execution do the identity and order of the top-k
// frequently accessed values stop changing?
//
// It keeps a running access histogram and, every checkpoint, compares
// the current ordered top-k lists with the previous checkpoint's,
// recording the access count of the last observed change.
type StabilityTracker struct {
	hist     *trace.ValueHistogram
	interval uint64
	accesses uint64
	nextAt   uint64

	ks         []int
	prevOrder  [][]uint32 // per k: last checkpoint's ordered top-k
	lastChange []uint64   // per k: access count of the last change
	prevSet    []map[uint32]struct{}
	lastSetChg []uint64 // per k: last change of the identity (unordered)
}

// NewStabilityTracker tracks the top-k sets for each k in ks, with a
// checkpoint every interval accesses.
func NewStabilityTracker(interval uint64, ks ...int) *StabilityTracker {
	if interval == 0 {
		interval = 1 << 16
	}
	if len(ks) == 0 {
		ks = []int{1, 3, 7}
	}
	return &StabilityTracker{
		hist:       trace.NewValueHistogram(),
		interval:   interval,
		nextAt:     interval,
		ks:         ks,
		prevOrder:  make([][]uint32, len(ks)),
		lastChange: make([]uint64, len(ks)),
		prevSet:    make([]map[uint32]struct{}, len(ks)),
		lastSetChg: make([]uint64, len(ks)),
	}
}

// Emit consumes one event; non-accesses are ignored.
func (t *StabilityTracker) Emit(e trace.Event) {
	if !e.Op.IsAccess() {
		return
	}
	t.hist.Emit(e)
	t.accesses++
	if t.accesses >= t.nextAt {
		t.checkpoint()
		t.nextAt += t.interval
	}
}

func (t *StabilityTracker) checkpoint() {
	maxK := 0
	for _, k := range t.ks {
		if k > maxK {
			maxK = k
		}
	}
	top := t.hist.TopK(maxK)
	for i, k := range t.ks {
		kk := k
		if kk > len(top) {
			kk = len(top)
		}
		cur := make([]uint32, kk)
		for j := 0; j < kk; j++ {
			cur[j] = top[j].Value
		}
		if !equalOrder(t.prevOrder[i], cur) {
			t.lastChange[i] = t.accesses
			t.prevOrder[i] = cur
		}
		curSet := make(map[uint32]struct{}, kk)
		for _, v := range cur {
			curSet[v] = struct{}{}
		}
		if !equalSet(t.prevSet[i], curSet) {
			t.lastSetChg[i] = t.accesses
			t.prevSet[i] = curSet
		}
	}
}

func equalOrder(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalSet(a, b map[uint32]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if _, ok := b[v]; !ok {
			return false
		}
	}
	return true
}

// Finalize takes a last checkpoint at the end of the stream.
func (t *StabilityTracker) Finalize() {
	if t.accesses > 0 {
		t.checkpoint()
	}
}

// FoundAfter returns, for the i-th tracked k, the fraction of the
// execution (in accesses, [0,1]) after which the *ordered* top-k list
// never changed again.
func (t *StabilityTracker) FoundAfter(i int) float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.lastChange[i]) / float64(t.accesses)
}

// IdentityFoundAfter is FoundAfter for the unordered identity of the
// top-k set — the paper notes the FVC only needs identities, which
// settle sooner than the full ordering.
func (t *StabilityTracker) IdentityFoundAfter(i int) float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.lastSetChg[i]) / float64(t.accesses)
}

// Ks returns the tracked k values.
func (t *StabilityTracker) Ks() []int { return t.ks }

// Histogram exposes the underlying access histogram.
func (t *StabilityTracker) Histogram() *trace.ValueHistogram { return t.hist }
