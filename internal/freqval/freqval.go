// Package freqval implements the profilers behind Section 2 of the
// paper: identification of frequently accessed and frequently occurring
// values, the stability of the frequent-value set over execution, the
// fraction of addresses whose contents stay constant, the spatial
// distribution of frequent values, and input-sensitivity comparisons.
package freqval

import "fvcache/internal/trace"

// TopAccessed runs the exact access-frequency analysis: it returns the
// k most frequently accessed values of a recorded histogram.
func TopAccessed(h *trace.ValueHistogram, k int) []uint32 {
	top := h.TopK(k)
	vals := make([]uint32, len(top))
	for i, vc := range top {
		vals[i] = vc.Value
	}
	return vals
}

// Overlap returns how many of the first k values of a are present in
// the first k values of b, irrespective of order — the X in the
// paper's Table 2 "X/Y" notation.
func Overlap(a, b []uint32, k int) int {
	if k > len(a) {
		k = len(a)
	}
	kb := k
	if kb > len(b) {
		kb = len(b)
	}
	set := make(map[uint32]struct{}, kb)
	for _, v := range b[:kb] {
		set[v] = struct{}{}
	}
	n := 0
	for _, v := range a[:k] {
		if _, ok := set[v]; ok {
			n++
		}
	}
	return n
}
