package freqval

import (
	"testing"

	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

func TestTopAccessed(t *testing.T) {
	h := trace.NewValueHistogram()
	for i := 0; i < 10; i++ {
		h.Emit(trace.Event{Op: trace.Load, Value: 0})
	}
	for i := 0; i < 5; i++ {
		h.Emit(trace.Event{Op: trace.Load, Value: 7})
	}
	h.Emit(trace.Event{Op: trace.Load, Value: 9})
	got := TopAccessed(h, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Errorf("TopAccessed = %v, want [0 7]", got)
	}
}

func TestOverlap(t *testing.T) {
	a := []uint32{0, 1, 2, 3, 4, 5, 6}
	b := []uint32{6, 5, 4, 10, 11, 12, 13}
	if got := Overlap(a, b, 7); got != 3 {
		t.Errorf("Overlap(7) = %d, want 3", got)
	}
	if got := Overlap(a, b, 3); got != 0 { // {0,1,2} vs {6,5,4}: disjoint
		t.Errorf("Overlap(3) = %d, want 0", got)
	}
	c := []uint32{4, 1, 2}
	if got := Overlap(c, b, 3); got != 1 { // {4,1,2} vs {6,5,4}: share 4
		t.Errorf("Overlap(c,b,3) = %d, want 1", got)
	}
}

func TestOverlapEdges(t *testing.T) {
	if got := Overlap(nil, nil, 5); got != 0 {
		t.Errorf("Overlap(nil) = %d", got)
	}
	if got := Overlap([]uint32{1}, []uint32{1}, 10); got != 1 {
		t.Errorf("Overlap clipped = %d, want 1", got)
	}
}

func accessEvents(addrVals ...uint32) []trace.Event {
	var out []trace.Event
	for i := 0; i+1 < len(addrVals); i += 2 {
		out = append(out, trace.Event{Op: trace.Store, Addr: addrVals[i], Value: addrVals[i+1]})
	}
	return out
}

func TestOccurrenceSamplerBasic(t *testing.T) {
	env := memsim.NewEnv(nil)
	o := NewOccurrenceSampler(env.Mem, 4)
	// 3 locations: two hold 0xaa, one holds 0xbb. Drive stores through
	// the env so memory is updated, mirroring events to the sampler.
	write := func(addr, v uint32) {
		env.Mem.StoreWord(addr, v)
		o.Emit(trace.Event{Op: trace.Store, Addr: addr, Value: v})
	}
	write(0x100, 0xaa)
	write(0x104, 0xaa)
	write(0x108, 0xbb)
	write(0x100, 0xaa) // 4th access triggers a sample
	if len(o.Samples()) != 1 {
		t.Fatalf("samples = %d, want 1", len(o.Samples()))
	}
	s := o.Samples()[0]
	if s.Locations != 3 || s.Counts[0xaa] != 2 || s.Counts[0xbb] != 1 {
		t.Errorf("sample = %+v", s)
	}
	if s.Unique() != 2 {
		t.Errorf("Unique = %d, want 2", s.Unique())
	}
	top := o.TopOccurring(1)
	if len(top) != 1 || top[0] != 0xaa {
		t.Errorf("TopOccurring = %v, want [0xaa]", top)
	}
	cov := o.AvgCoverage([]uint32{0xaa})
	if want := 2.0 / 3.0; cov < want-1e-9 || cov > want+1e-9 {
		t.Errorf("AvgCoverage = %v, want %v", cov, want)
	}
}

func TestOccurrenceSamplerFreeRetiresLocations(t *testing.T) {
	env := memsim.NewEnv(nil)
	o := NewOccurrenceSampler(env.Mem, 1000)
	o.Emit(trace.Event{Op: trace.Store, Addr: 0x200, Value: 1})
	o.Emit(trace.Event{Op: trace.Store, Addr: 0x204, Value: 1})
	if o.LiveLocations() != 2 {
		t.Fatalf("live = %d, want 2", o.LiveLocations())
	}
	o.Emit(trace.Event{Op: trace.HeapFree, Addr: 0x200, Value: 8})
	if o.LiveLocations() != 0 {
		t.Errorf("live after free = %d, want 0", o.LiveLocations())
	}
}

func TestOccurrenceSamplerFinalize(t *testing.T) {
	env := memsim.NewEnv(nil)
	o := NewOccurrenceSampler(env.Mem, 1000) // interval never reached
	env.Mem.StoreWord(0x300, 5)
	o.Emit(trace.Event{Op: trace.Store, Addr: 0x300, Value: 5})
	o.Finalize()
	if len(o.Samples()) != 1 {
		t.Fatalf("Finalize must take a sample, got %d", len(o.Samples()))
	}
	o2 := NewOccurrenceSampler(env.Mem, 1000)
	o2.Finalize()
	if len(o2.Samples()) != 0 {
		t.Error("Finalize on empty stream must not sample")
	}
}

func TestOccurrenceSamplerCoverageAt(t *testing.T) {
	env := memsim.NewEnv(nil)
	o := NewOccurrenceSampler(env.Mem, 2)
	env.Mem.StoreWord(0x10, 9)
	o.Emit(trace.Event{Op: trace.Store, Addr: 0x10, Value: 9})
	env.Mem.StoreWord(0x14, 9)
	o.Emit(trace.Event{Op: trace.Store, Addr: 0x14, Value: 9})
	if got := o.CoverageAt(0, []uint32{9}); got != 2 {
		t.Errorf("CoverageAt = %d, want 2", got)
	}
}

func TestStabilityTrackerImmediateStability(t *testing.T) {
	st := NewStabilityTracker(10, 1)
	// Value 5 dominates from the start.
	for i := 0; i < 100; i++ {
		st.Emit(trace.Event{Op: trace.Load, Value: 5})
		if i%3 == 0 {
			st.Emit(trace.Event{Op: trace.Load, Value: uint32(100 + i)})
		}
	}
	st.Finalize()
	if got := st.FoundAfter(0); got > 0.15 {
		t.Errorf("FoundAfter = %v, want early stabilization (<0.15)", got)
	}
}

func TestStabilityTrackerLateChange(t *testing.T) {
	st := NewStabilityTracker(10, 1)
	// Value 1 leads for 100 accesses, then value 2 overtakes.
	for i := 0; i < 100; i++ {
		st.Emit(trace.Event{Op: trace.Load, Value: 1})
	}
	for i := 0; i < 200; i++ {
		st.Emit(trace.Event{Op: trace.Load, Value: 2})
	}
	st.Finalize()
	if got := st.FoundAfter(0); got < 0.3 {
		t.Errorf("FoundAfter = %v, want late stabilization (>0.3)", got)
	}
	// Identity of top-1 changed when 2 overtook, so identity is also late.
	if got := st.IdentityFoundAfter(0); got < 0.3 {
		t.Errorf("IdentityFoundAfter = %v, want > 0.3", got)
	}
}

func TestStabilityIdentityVsOrder(t *testing.T) {
	st := NewStabilityTracker(10, 2)
	// Two values swap leadership but the SET {1,2} is stable.
	for i := 0; i < 60; i++ {
		st.Emit(trace.Event{Op: trace.Load, Value: 1})
		st.Emit(trace.Event{Op: trace.Load, Value: 2})
		if i < 30 {
			st.Emit(trace.Event{Op: trace.Load, Value: 1})
		} else {
			st.Emit(trace.Event{Op: trace.Load, Value: 2})
		}
	}
	st.Finalize()
	if id, ord := st.IdentityFoundAfter(0), st.FoundAfter(0); id > ord {
		t.Errorf("identity (%v) must settle no later than order (%v)", id, ord)
	}
}

func TestStabilityDefaults(t *testing.T) {
	st := NewStabilityTracker(0)
	if got := st.Ks(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Errorf("default ks = %v", got)
	}
	if st.FoundAfter(0) != 0 {
		t.Error("empty tracker FoundAfter must be 0")
	}
	if st.Histogram() == nil {
		t.Error("Histogram must not be nil")
	}
}

func TestConstAddrTrackerAllConstant(t *testing.T) {
	ct := NewConstAddrTracker()
	for _, e := range accessEvents(0x100, 5, 0x104, 6, 0x100, 5) {
		ct.Emit(e)
	}
	ct.Finalize()
	if ct.Instances() != 2 {
		t.Fatalf("Instances = %d, want 2", ct.Instances())
	}
	if got := ct.ConstantFraction(); got != 1.0 {
		t.Errorf("ConstantFraction = %v, want 1.0", got)
	}
}

func TestConstAddrTrackerMutation(t *testing.T) {
	ct := NewConstAddrTracker()
	for _, e := range accessEvents(0x100, 5, 0x100, 9) { // changed value
		ct.Emit(e)
	}
	ct.Emit(trace.Event{Op: trace.Load, Addr: 0x104, Value: 3}) // load-only addr: constant
	ct.Finalize()
	if ct.Instances() != 2 {
		t.Fatalf("Instances = %d, want 2", ct.Instances())
	}
	if got := ct.ConstantFraction(); got != 0.5 {
		t.Errorf("ConstantFraction = %v, want 0.5", got)
	}
}

func TestConstAddrTrackerPerAllocationInstances(t *testing.T) {
	ct := NewConstAddrTracker()
	// First allocation: written once, freed -> constant instance.
	ct.Emit(trace.Event{Op: trace.Store, Addr: 0x200, Value: 1})
	ct.Emit(trace.Event{Op: trace.HeapFree, Addr: 0x200, Value: 4})
	// Second allocation at the same address: mutated.
	ct.Emit(trace.Event{Op: trace.Store, Addr: 0x200, Value: 2})
	ct.Emit(trace.Event{Op: trace.Store, Addr: 0x200, Value: 3})
	ct.Emit(trace.Event{Op: trace.HeapFree, Addr: 0x200, Value: 4})
	ct.Finalize()
	if ct.Instances() != 2 {
		t.Fatalf("Instances = %d, want 2 (one per allocation)", ct.Instances())
	}
	if got := ct.ConstantFraction(); got != 0.5 {
		t.Errorf("ConstantFraction = %v, want 0.5", got)
	}
}

func TestConstAddrTrackerFreeOfUnreferenced(t *testing.T) {
	ct := NewConstAddrTracker()
	ct.Emit(trace.Event{Op: trace.HeapFree, Addr: 0x300, Value: 16})
	ct.Finalize()
	if ct.Instances() != 0 {
		t.Errorf("unreferenced free must not create instances: %d", ct.Instances())
	}
	if ct.ConstantFraction() != 0 {
		t.Error("empty tracker fraction must be 0")
	}
}

func TestConstAddrStoreSameValueStaysConstant(t *testing.T) {
	ct := NewConstAddrTracker()
	ct.Emit(trace.Event{Op: trace.Store, Addr: 0x100, Value: 7})
	ct.Emit(trace.Event{Op: trace.Store, Addr: 0x100, Value: 7}) // idempotent store
	ct.Finalize()
	if got := ct.ConstantFraction(); got != 1.0 {
		t.Errorf("ConstantFraction = %v, want 1.0", got)
	}
}

func TestScanSpatial(t *testing.T) {
	mem := memsim.NewMemory()
	var addrs []uint32
	// Block of 16 words (2 lines of 8): line 0 has 4 frequent words,
	// line 1 has 2.
	for i := 0; i < 16; i++ {
		addr := uint32(0x1000 + i*4)
		addrs = append(addrs, addr)
		var v uint32 = 0xdead
		if (i < 8 && i%2 == 0) || (i >= 8 && i%4 == 0) {
			v = 0 // frequent
		}
		mem.StoreWord(addr, v)
	}
	blocks := ScanSpatial(mem, addrs, []uint32{0}, SpatialOptions{WordsPerLine: 8, LinesPerBlock: 2})
	if len(blocks) != 1 {
		t.Fatalf("blocks = %v, want 1 block", blocks)
	}
	if blocks[0] != 3.0 { // (4+2)/2 lines
		t.Errorf("avg frequent per line = %v, want 3.0", blocks[0])
	}
}

func TestScanSpatialUnsortedInput(t *testing.T) {
	mem := memsim.NewMemory()
	addrs := []uint32{0x20, 0x10, 0x18, 0x08, 0x00, 0x28, 0x08} // unsorted
	for _, a := range addrs {
		mem.StoreWord(a, 0)
	}
	blocks := ScanSpatial(mem, addrs, []uint32{0}, SpatialOptions{WordsPerLine: 4, LinesPerBlock: 1})
	for _, b := range blocks {
		if b < 0 || b > 4 {
			t.Errorf("per-line count %v out of range", b)
		}
	}
}

func TestScanSpatialDefaultsOnBadOptions(t *testing.T) {
	mem := memsim.NewMemory()
	addrs := []uint32{0, 4}
	mem.StoreWord(0, 1)
	blocks := ScanSpatial(mem, addrs, []uint32{1}, SpatialOptions{})
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(blocks))
	}
}

func TestSpatialSpread(t *testing.T) {
	mean, dev := SpatialSpread([]float64{4, 4, 4})
	if mean != 4 || dev != 0 {
		t.Errorf("uniform spread = %v/%v, want 4/0", mean, dev)
	}
	mean, dev = SpatialSpread([]float64{2, 6})
	if mean != 4 || dev != 2 {
		t.Errorf("spread = %v/%v, want 4/2", mean, dev)
	}
	if m, d := SpatialSpread(nil); m != 0 || d != 0 {
		t.Error("empty spread must be 0/0")
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 30; i++ {
		s.Observe(1)
	}
	for i := 0; i < 20; i++ {
		s.Observe(2)
	}
	s.Observe(3)
	top := s.TopK(2)
	if top[0].Value != 1 || top[0].Count != 30 || top[1].Value != 2 || top[1].Count != 20 {
		t.Errorf("TopK = %v", top)
	}
	if s.Total() != 51 {
		t.Errorf("Total = %d, want 51", s.Total())
	}
	if s.GuaranteedCount(1) != 30 {
		t.Errorf("GuaranteedCount(1) = %d, want 30", s.GuaranteedCount(1))
	}
	if s.GuaranteedCount(99) != 0 {
		t.Errorf("GuaranteedCount(untracked) = %d, want 0", s.GuaranteedCount(99))
	}
}

func TestSpaceSavingHeavyHitterGuarantee(t *testing.T) {
	// A value with frequency > N/capacity must be tracked.
	s := NewSpaceSaving(8)
	const n = 10000
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			s.Observe(42) // ~33% of the stream
		} else {
			s.Observe(uint32(1000 + i)) // noise, all distinct
		}
	}
	vals := s.TopValues(1)
	if len(vals) != 1 || vals[0] != 42 {
		t.Errorf("heavy hitter lost: TopValues = %v", vals)
	}
}

func TestSpaceSavingEmitIgnoresAllocs(t *testing.T) {
	s := NewSpaceSaving(4)
	s.Emit(trace.Event{Op: trace.HeapAlloc, Value: 7})
	if s.Total() != 0 {
		t.Error("alloc events must be ignored")
	}
	s.Emit(trace.Event{Op: trace.Load, Value: 7})
	if s.Total() != 1 {
		t.Error("access events must be observed")
	}
}

func TestSpaceSavingDefaultCapacity(t *testing.T) {
	s := NewSpaceSaving(0)
	for i := 0; i < 100; i++ {
		s.Observe(uint32(i))
	}
	if len(s.TopK(1000)) != 64 {
		t.Errorf("default capacity = %d entries, want 64", len(s.TopK(1000)))
	}
}
