package freqval

import "fvcache/internal/trace"

// ConstAddrTracker measures the paper's Table 4 quantity: the
// percentage of referenced addresses whose contents remain constant
// throughout the program's execution, where an address reallocated
// multiple times is treated as a separate instance per allocation.
type ConstAddrTracker struct {
	// state per live referenced address
	addrs map[uint32]*addrState

	instances uint64
	constant  uint64
}

type addrState struct {
	value   uint32
	haveVal bool
	mutated bool
}

// NewConstAddrTracker returns an empty tracker.
func NewConstAddrTracker() *ConstAddrTracker {
	return &ConstAddrTracker{addrs: make(map[uint32]*addrState)}
}

// Emit consumes one trace event.
func (t *ConstAddrTracker) Emit(e trace.Event) {
	switch e.Op {
	case trace.Load, trace.Store:
		st := t.addrs[e.Addr]
		if st == nil {
			st = &addrState{}
			t.addrs[e.Addr] = st
		}
		if !st.haveVal {
			st.value, st.haveVal = e.Value, true
			return
		}
		if e.Op == trace.Store && e.Value != st.value {
			st.mutated = true
		}
	case trace.StackFree, trace.HeapFree:
		for off := uint32(0); off < e.Size(); off += trace.WordBytes {
			t.retire(e.Addr + off)
		}
	}
}

func (t *ConstAddrTracker) retire(addr uint32) {
	st, ok := t.addrs[addr]
	if !ok {
		return
	}
	t.instances++
	if !st.mutated {
		t.constant++
	}
	delete(t.addrs, addr)
}

// Finalize retires every still-live referenced address (static data and
// leaks), closing their allocation instances.
func (t *ConstAddrTracker) Finalize() {
	for addr := range t.addrs {
		t.retire(addr)
	}
}

// Instances returns the number of closed allocation instances.
func (t *ConstAddrTracker) Instances() uint64 { return t.instances }

// ConstantFraction returns constant instances / all instances in
// [0,1]; 0 when nothing was referenced.
func (t *ConstAddrTracker) ConstantFraction() float64 {
	if t.instances == 0 {
		return 0
	}
	return float64(t.constant) / float64(t.instances)
}
