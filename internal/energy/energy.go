// Package energy estimates the energy consumption of a simulated run,
// quantifying the paper's power argument: reduced miss rates and
// off-chip traffic translate directly into reduced energy, which is
// why the FVC is pitched at battery-powered systems.
//
// The model is a standard event-count × per-event-energy sum with
// 0.8µm-era constants. Per-event energies follow the usual scaling
// arguments: array read/write energy grows with the number of bitlines
// cycled (so the FVC's narrow compressed rows are cheap), CAM search
// energy is high, and off-chip transfers dominate everything else by
// orders of magnitude.
package energy

import (
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// Model holds per-event energies in nanojoules.
type Model struct {
	// MainAccess is one probe of the main cache (tag + data read).
	MainAccess float64
	// FVCAccessPerBit scales the FVC probe by its row width in bits
	// (tag + codes), reflecting the narrow compressed array.
	FVCAccessPerBit float64
	// VictimSearch is one fully-associative CAM search per entry.
	VictimSearchPerEntry float64
	// OffChipPerWord is the energy to move one 32-bit word across the
	// memory bus — the dominant term.
	OffChipPerWord float64
}

// Default08um returns constants representative of 0.8µm systems. Only
// the ratios matter for the paper's argument (off-chip ≫ on-chip).
func Default08um() Model {
	return Model{
		MainAccess:           0.60,
		FVCAccessPerBit:      0.004,
		VictimSearchPerEntry: 0.12,
		OffChipPerWord:       12.0,
	}
}

// Estimate is the energy breakdown of a run in nanojoules.
type Estimate struct {
	MainNJ    float64
	FVCNJ     float64
	VictimNJ  float64
	OffChipNJ float64
}

// TotalNJ returns the summed energy.
func (e Estimate) TotalNJ() float64 {
	return e.MainNJ + e.FVCNJ + e.VictimNJ + e.OffChipNJ
}

// Estimate computes the energy of a run from its configuration and
// statistics. Both caches are probed on every access (they operate in
// parallel); off-chip energy scales with the traffic words already
// accounted by the simulator.
func (m Model) Estimate(cfg core.Config, st core.Stats) Estimate {
	var e Estimate
	accesses := float64(st.Accesses())
	e.MainNJ = m.MainAccess * accesses
	if cfg.FVC != nil {
		rowBits := float64(cfg.FVC.DataBits() + tagBits(*cfg.FVC))
		e.FVCNJ = m.FVCAccessPerBit * rowBits * accesses
	}
	if cfg.VictimEntries > 0 {
		// The victim cache is only searched on main-cache misses.
		searches := float64(st.Misses + st.VictimHits)
		e.VictimNJ = m.VictimSearchPerEntry * float64(cfg.VictimEntries) * searches
	}
	e.OffChipNJ = m.OffChipPerWord * float64(st.TrafficWords)
	return e
}

// tagBits mirrors the cacti package's tag sizing for a 32-bit address.
func tagBits(p fvc.Params) int {
	bits := 32
	for v := p.Entries; v > 1; v >>= 1 {
		bits--
	}
	for v := p.LineBytes; v > 1; v >>= 1 {
		bits--
	}
	if bits < 0 {
		return 0
	}
	return bits
}

// SavingsPct returns the percentage energy saving of run b relative to
// run a (positive = b uses less energy).
func SavingsPct(a, b Estimate) float64 {
	if a.TotalNJ() == 0 {
		return 0
	}
	return (a.TotalNJ() - b.TotalNJ()) / a.TotalNJ() * 100
}

// wordBytes is referenced to keep the trace dependency explicit (the
// traffic unit is the 32-bit word defined there).
var _ = trace.WordBytes
