package energy

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
)

func cfgDMC() core.Config {
	return core.Config{Main: cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}}
}

func cfgFVC() core.Config {
	return core.Config{
		Main:           cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1},
		FVC:            &fvc.Params{Entries: 512, LineBytes: 32, Bits: 3},
		FrequentValues: []uint32{0},
	}
}

func TestEstimateBreakdown(t *testing.T) {
	m := Default08um()
	st := core.Stats{Loads: 800, Stores: 200, Misses: 100, TrafficWords: 400}
	e := m.Estimate(cfgDMC(), st)
	if e.MainNJ != m.MainAccess*1000 {
		t.Errorf("MainNJ = %v", e.MainNJ)
	}
	if e.FVCNJ != 0 || e.VictimNJ != 0 {
		t.Errorf("plain DMC must have no FVC/VC energy: %+v", e)
	}
	if e.OffChipNJ != m.OffChipPerWord*400 {
		t.Errorf("OffChipNJ = %v", e.OffChipNJ)
	}
	if e.TotalNJ() != e.MainNJ+e.OffChipNJ {
		t.Errorf("TotalNJ = %v", e.TotalNJ())
	}
}

func TestFVCEnergyScalesWithRowWidth(t *testing.T) {
	m := Default08um()
	st := core.Stats{Loads: 1000}
	narrow := cfgFVC()
	narrow.FVC.Bits = 1
	wide := cfgFVC()
	wide.FVC.Bits = 3
	if m.Estimate(narrow, st).FVCNJ >= m.Estimate(wide, st).FVCNJ {
		t.Error("narrower codes must cost less energy")
	}
}

func TestVictimEnergyOnlyOnMisses(t *testing.T) {
	m := Default08um()
	cfg := cfgDMC()
	cfg.VictimEntries = 4
	noMiss := m.Estimate(cfg, core.Stats{Loads: 1000})
	withMiss := m.Estimate(cfg, core.Stats{Loads: 1000, Misses: 100, VictimHits: 50})
	if noMiss.VictimNJ != 0 {
		t.Errorf("no misses -> no CAM searches, got %v", noMiss.VictimNJ)
	}
	if withMiss.VictimNJ != m.VictimSearchPerEntry*4*150 {
		t.Errorf("VictimNJ = %v", withMiss.VictimNJ)
	}
}

func TestOffChipDominates(t *testing.T) {
	// The paper's power argument requires off-chip transfers to
	// dominate: moving a line must cost far more than a cache probe.
	m := Default08um()
	lineWords := 8.0
	if m.OffChipPerWord*lineWords < 20*m.MainAccess {
		t.Error("off-chip line transfer should dwarf an on-chip probe")
	}
}

func TestSavingsPct(t *testing.T) {
	a := Estimate{OffChipNJ: 200}
	b := Estimate{OffChipNJ: 100}
	if got := SavingsPct(a, b); got != 50 {
		t.Errorf("SavingsPct = %v, want 50", got)
	}
	if got := SavingsPct(Estimate{}, b); got != 0 {
		t.Errorf("zero baseline SavingsPct = %v, want 0", got)
	}
}

func TestTagBits(t *testing.T) {
	// 512 entries (9 bits) + 32B lines (5 bits) -> 18 tag bits.
	if got := tagBits(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3}); got != 18 {
		t.Errorf("tagBits = %d, want 18", got)
	}
}

func TestTrafficReductionSavesEnergy(t *testing.T) {
	// End-to-end sanity: fewer traffic words -> lower total energy,
	// even accounting for the FVC's own probe energy.
	m := Default08um()
	base := m.Estimate(cfgDMC(), core.Stats{Loads: 10000, TrafficWords: 8000})
	aug := m.Estimate(cfgFVC(), core.Stats{Loads: 10000, TrafficWords: 1000})
	if aug.TotalNJ() >= base.TotalNJ() {
		t.Errorf("traffic reduction must save energy: base=%v aug=%v",
			base.TotalNJ(), aug.TotalNJ())
	}
}
