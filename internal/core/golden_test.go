package core

import (
	"math/rand"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// goldenModel is a deliberately naive, map-based re-implementation of
// the Section 3 protocol, storing FVC contents as explicit per-word
// values instead of codes. Differential testing against core.System
// catches protocol bugs that unit tests of either implementation would
// share.
type goldenModel struct {
	lineWords int
	numLines  int // direct-mapped main cache lines
	fvcSlots  int

	freq map[uint32]bool

	// main cache: set index -> line state
	main map[uint32]*gLine
	// fvc: slot index -> entry
	fvc map[uint32]*gEntry
	// architectural memory
	mem map[uint32]uint32

	noWriteAlloc bool
}

type gLine struct {
	tag   uint32
	dirty bool
}

// gEntry stores, per word, either the value (frequent) or absent.
type gEntry struct {
	tag   uint32
	dirty bool
	word  []bool // word i holds a frequent value?
	val   []uint32
}

func newGolden(mainLines, lineWords, fvcSlots int, freq []uint32, noWriteAlloc bool) *goldenModel {
	g := &goldenModel{
		lineWords:    lineWords,
		numLines:     mainLines,
		fvcSlots:     fvcSlots,
		freq:         map[uint32]bool{},
		main:         map[uint32]*gLine{},
		fvc:          map[uint32]*gEntry{},
		mem:          map[uint32]uint32{},
		noWriteAlloc: noWriteAlloc,
	}
	for _, v := range freq {
		g.freq[v] = true
	}
	return g
}

func (g *goldenModel) lineAddr(addr uint32) uint32 { return addr / uint32(g.lineWords*4) }
func (g *goldenModel) wordIdx(addr uint32) int     { return int(addr/4) % g.lineWords }
func (g *goldenModel) setIdx(la uint32) uint32     { return la % uint32(g.numLines) }
func (g *goldenModel) slotIdx(la uint32) uint32    { return la % uint32(g.fvcSlots) }

// evictMain removes the line at set s (if any) and inserts its
// frequent footprint into the FVC.
func (g *goldenModel) evictMain(s uint32) {
	ln, ok := g.main[s]
	if !ok {
		return
	}
	delete(g.main, s)
	// Footprint insertion (always, per the paper's default).
	e := &gEntry{tag: ln.tag, word: make([]bool, g.lineWords), val: make([]uint32, g.lineWords)}
	base := ln.tag * uint32(g.lineWords*4)
	for i := 0; i < g.lineWords; i++ {
		v := g.mem[base+uint32(i*4)]
		if g.freq[v] {
			e.word[i] = true
			e.val[i] = v
		}
	}
	g.fvc[g.slotIdx(ln.tag)] = e
}

// fill brings la into the main cache, evicting as needed.
func (g *goldenModel) fill(la uint32, dirty bool) {
	s := g.setIdx(la)
	g.evictMain(s)
	g.main[s] = &gLine{tag: la, dirty: dirty}
}

// access returns whether the access hit (MainHit/FVCHit) per protocol.
func (g *goldenModel) access(store bool, addr, value uint32) HitSource {
	la := g.lineAddr(addr)
	wi := g.wordIdx(addr)
	defer func() {
		if store {
			g.mem[addr] = value
		}
	}()

	if ln, ok := g.main[g.setIdx(la)]; ok && ln.tag == la {
		if store {
			ln.dirty = true
		}
		return MainHit
	}
	e, ok := g.fvc[g.slotIdx(la)]
	if ok && e.tag == la {
		if !store && e.word[wi] {
			return FVCHit
		}
		if store && g.freq[value] {
			e.word[wi] = true
			e.val[wi] = value
			e.dirty = true
			return FVCHit
		}
		// Merge: line to main cache, FVC entry gone.
		wasDirty := e.dirty
		delete(g.fvc, g.slotIdx(la))
		g.fill(la, store || wasDirty)
		return Miss
	}
	if store && !g.noWriteAlloc && g.freq[value] {
		ne := &gEntry{tag: la, dirty: true, word: make([]bool, g.lineWords), val: make([]uint32, g.lineWords)}
		ne.word[wi] = true
		ne.val[wi] = value
		g.fvc[g.slotIdx(la)] = ne
		return FVCHit
	}
	g.fill(la, store)
	return Miss
}

func TestGoldenModelDifferential(t *testing.T) {
	const (
		mainBytes = 512
		lineBytes = 16
		fvcSlots  = 8
	)
	freq := []uint32{0, 1, 2, 4, 8, 10, 0xffffffff}
	for _, noAlloc := range []bool{false, true} {
		noAlloc := noAlloc
		name := "writeAlloc"
		if noAlloc {
			name = "noWriteAlloc"
		}
		t.Run(name, func(t *testing.T) {
			sys := MustNew(Config{
				Main:                cache.Params{SizeBytes: mainBytes, LineBytes: lineBytes, Assoc: 1},
				FVC:                 &fvc.Params{Entries: fvcSlots, LineBytes: lineBytes, Bits: 3},
				FrequentValues:      freq,
				NoWriteMissAllocate: noAlloc,
				VerifyValues:        true,
			})
			golden := newGolden(mainBytes/lineBytes, lineBytes/4, fvcSlots, freq, noAlloc)

			rng := rand.New(rand.NewSource(1234))
			pool := []uint32{0, 1, 2, 4, 8, 10, 0xffffffff, 0xdeadbeef, 99, 77777}
			replica := map[uint32]uint32{}
			for i := 0; i < 200_000; i++ {
				addr := uint32(rng.Intn(512)) * 4 // 2KB region
				var op trace.Op
				var v uint32
				if rng.Intn(2) == 0 {
					op, v = trace.Load, replica[addr]
				} else {
					op, v = trace.Store, pool[rng.Intn(len(pool))]
					replica[addr] = v
				}
				got := sys.Access(op, addr, v)
				want := golden.access(op == trace.Store, addr, v)
				if got != want {
					t.Fatalf("access %d (%v %#x=%#x): system=%v golden=%v",
						i, op, addr, v, got, want)
				}
			}
			st := sys.Stats()
			if st.Hits()+st.Misses != st.Accesses() {
				t.Errorf("stats inconsistent: %+v", st)
			}
		})
	}
}
