package core

import (
	"fvcache/internal/cache"
	"fvcache/internal/fvc"
)

// Canonical hierarchy snapshots for the chunk-parallel replay engine
// (sim.MeasureOptions.Parallelism). A replay worker that speculatively
// warms its caches over an overlap window captures its state at the
// range boundary; the splice step compares it against the previous
// range's exit state and, on a match, accepts the speculated stats
// wholesale. Snapshots are canonical (per-set LRU-rank order, absolute
// clocks erased — see cache.CaptureState), so two hierarchies that
// would behave identically from here on always compare equal.
//
// Snapshots cover cache metadata only: the architectural memory image
// is reconstructed exactly from the recording's checkpoint deltas and
// never needs comparing.

// SystemState is one hierarchy's canonical cache state.
type SystemState struct {
	main   []cache.Line
	victim []cache.Line
	l2     []cache.Line
	fv     fvc.State
	hasFVC bool
}

// Equal reports canonical-state equality.
func (s *SystemState) Equal(o *SystemState) bool {
	if len(s.main) != len(o.main) || len(s.victim) != len(o.victim) ||
		len(s.l2) != len(o.l2) || s.hasFVC != o.hasFVC {
		return false
	}
	for i := range s.main {
		if s.main[i] != o.main[i] {
			return false
		}
	}
	for i := range s.victim {
		if s.victim[i] != o.victim[i] {
			return false
		}
	}
	for i := range s.l2 {
		if s.l2[i] != o.l2[i] {
			return false
		}
	}
	return !s.hasFVC || s.fv.Equal(&o.fv)
}

// CaptureState writes the system's canonical cache state into dst,
// reusing its buffers. It panics when online FVT identification is
// enabled: the Space-Saving sketch accumulates over the full prefix
// and cannot be reconstructed from a warm-up window, so such configs
// are not checkpointable (the parallel scheduler falls back to serial
// for them).
func (s *System) CaptureState(dst *SystemState) {
	if s.sketch != nil {
		panic("core: CaptureState with online FVT identification")
	}
	dst.main = s.main.CaptureState(dst.main[:0])
	if s.vc != nil {
		dst.victim = s.vc.CaptureState(dst.victim[:0])
	} else {
		dst.victim = dst.victim[:0]
	}
	if s.l2 != nil {
		dst.l2 = s.l2.CaptureState(dst.l2[:0])
	} else {
		dst.l2 = dst.l2[:0]
	}
	dst.hasFVC = s.fv != nil
	if s.fv != nil {
		s.fv.CaptureState(&dst.fv)
	}
}

// RestoreState overwrites the system's cache state from a snapshot
// captured on a system of identical configuration.
func (s *System) RestoreState(src *SystemState) {
	if s.sketch != nil {
		panic("core: RestoreState with online FVT identification")
	}
	s.main.RestoreState(src.main)
	if s.vc != nil {
		s.vc.RestoreState(src.victim)
	}
	if s.l2 != nil {
		s.l2.RestoreState(src.l2)
	}
	if s.fv != nil {
		s.fv.RestoreState(&src.fv)
	}
}

// SetState is the canonical state of every member of a SystemSet.
type SetState struct {
	members []SystemState
}

// CaptureState writes the set's canonical state into dst, reusing its
// buffers.
func (ss *SystemSet) CaptureState(dst *SetState) {
	if cap(dst.members) < len(ss.systems) {
		dst.members = make([]SystemState, len(ss.systems))
	}
	dst.members = dst.members[:len(ss.systems)]
	for i, s := range ss.systems {
		s.CaptureState(&dst.members[i])
	}
}

// RestoreState overwrites every member's cache state from a snapshot
// captured on a set of identical configurations. The set's transposed
// probe filter resynchronizes automatically: ReplayColumns rebuilds it
// from the authoritative lines at every entry.
func (ss *SystemSet) RestoreState(src *SetState) {
	if len(src.members) != len(ss.systems) {
		panic("core: SetState member count mismatch")
	}
	for i, s := range ss.systems {
		s.RestoreState(&src.members[i])
	}
}

// Equal reports canonical-state equality of two set snapshots.
func (s *SetState) Equal(o *SetState) bool {
	if len(s.members) != len(o.members) {
		return false
	}
	for i := range s.members {
		if !s.members[i].Equal(&o.members[i]) {
			return false
		}
	}
	return true
}

// Checkpointable reports whether the configuration's cache state is
// fully captured by CaptureState — false when online FVT
// identification is enabled (the sketch spans the whole prefix).
func (c Config) Checkpointable() bool {
	return c.FVC == nil || c.OnlineFVTEvery == 0
}
