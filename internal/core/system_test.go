package core

import (
	"math/rand"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// paperTable is the FVT from the paper's Figure 7.
var paperValues = []uint32{0, 0xffffffff, 1, 2, 4, 8, 10}

func smallDMC() cache.Params { return cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1} }

func newFVCSystem(t *testing.T) *System {
	t.Helper()
	return MustNew(Config{
		Main:           smallDMC(),
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues: paperValues,
		VerifyValues:   true,
	})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Main: smallDMC()}
	if err := good.Validate(); err != nil {
		t.Errorf("plain DMC config rejected: %v", err)
	}
	bad := []Config{
		{Main: cache.Params{SizeBytes: 0, LineBytes: 16, Assoc: 1}},
		{Main: smallDMC(), FVC: &fvc.Params{Entries: 4, LineBytes: 32, Bits: 3}, FrequentValues: paperValues}, // line mismatch
		{Main: smallDMC(), FVC: &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3}},                              // no values
		{Main: smallDMC(), FVC: &fvc.Params{Entries: 0, LineBytes: 16, Bits: 3}, FrequentValues: paperValues},
		{Main: smallDMC(), FVC: &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3}, FrequentValues: paperValues, VictimEntries: 4},
		{Main: smallDMC(), VictimEntries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewTruncatesValueList(t *testing.T) {
	// 1-bit FVC can exploit only the single most frequent value.
	s := MustNew(Config{
		Main:           smallDMC(),
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 1},
		FrequentValues: paperValues,
	})
	if got := s.FVC().Table().Len(); got != 1 {
		t.Errorf("1-bit table holds %d values, want 1", got)
	}
}

func TestPlainDMCHitMiss(t *testing.T) {
	s := MustNew(Config{Main: smallDMC()})
	if src := s.Access(trace.Load, 0x1000, 0); src != Miss {
		t.Errorf("cold access = %v, want miss", src)
	}
	if src := s.Access(trace.Load, 0x1004, 0); src != MainHit {
		t.Errorf("same-line access = %v, want main hit", src)
	}
	st := s.Stats()
	if st.Loads != 2 || st.Misses != 1 || st.MainHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LineFetches != 1 || st.TrafficWords != 4 {
		t.Errorf("traffic: fetches=%d words=%d, want 1/4", st.LineFetches, st.TrafficWords)
	}
	if st.MissRate() != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", st.MissRate())
	}
}

func TestDirtyWriteback(t *testing.T) {
	s := MustNew(Config{Main: smallDMC()})
	s.Access(trace.Store, 0x1000, 42) // miss, fetch, dirty
	s.Access(trace.Load, 0x1040, 0)   // conflict: evicts dirty line
	st := s.Stats()
	if st.LineWritebacks != 1 {
		t.Errorf("LineWritebacks = %d, want 1", st.LineWritebacks)
	}
	// Traffic: 2 fetches + 1 writeback = 3 lines of 4 words.
	if st.TrafficWords != 12 {
		t.Errorf("TrafficWords = %d, want 12", st.TrafficWords)
	}
	if st.TrafficBytes() != 48 {
		t.Errorf("TrafficBytes = %d, want 48", st.TrafficBytes())
	}
}

func TestFVCHitAfterEviction(t *testing.T) {
	s := newFVCSystem(t)
	s.Access(trace.Load, 0x1000, 0) // miss, fetch line (all zero words)
	s.Access(trace.Load, 0x1040, 0) // conflict miss: line 0x1000 evicted, footprint -> FVC
	if src := s.Access(trace.Load, 0x1000, 0); src != FVCHit {
		t.Errorf("re-read of frequent word = %v, want FVC hit", src)
	}
	st := s.Stats()
	if st.FVCHits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFVCMissOnInfrequentWord(t *testing.T) {
	s := newFVCSystem(t)
	s.Access(trace.Store, 0x1004, 99999) // miss (infrequent store), fetch, dirty word
	s.Access(trace.Load, 0x1040, 0)      // evicts line: footprint has word 1 infrequent
	// The footprint tag-matches but word 1 is marked infrequent.
	if src := s.Access(trace.Load, 0x1004, 99999); src != Miss {
		t.Errorf("read of infrequent word = %v, want miss", src)
	}
	// The line is now back in the main cache and the FVC entry is gone.
	if src := s.Access(trace.Load, 0x1004, 99999); src != MainHit {
		t.Errorf("re-read = %v, want main hit", src)
	}
	if s.CachedInBoth(0x1004) {
		t.Error("exclusivity violated")
	}
}

func TestFVCWriteHitUpdatesValue(t *testing.T) {
	s := newFVCSystem(t)
	s.Access(trace.Load, 0x1000, 0) // line of zeros into DMC
	s.Access(trace.Load, 0x1040, 0) // evict -> footprint (all frequent)
	if src := s.Access(trace.Store, 0x1008, 2); src != FVCHit {
		t.Errorf("frequent store with tag match = %v, want FVC hit", src)
	}
	if src := s.Access(trace.Load, 0x1008, 2); src != FVCHit {
		t.Errorf("read back = %v, want FVC hit", src)
	}
	if got := s.MemWord(0x1008); got != 2 {
		t.Errorf("replica = %d, want 2", got)
	}
}

func TestFVCInfrequentStoreWithTagMatchFetches(t *testing.T) {
	s := newFVCSystem(t)
	s.Access(trace.Load, 0x1000, 0)
	s.Access(trace.Load, 0x1040, 0)  // footprint of line 0x1000 in FVC
	s.Access(trace.Store, 0x1004, 1) // FVC write hit, entry dirty
	before := s.Stats().LineFetches
	if src := s.Access(trace.Store, 0x1008, 99999); src != Miss {
		t.Errorf("infrequent store with tag match = %v, want miss", src)
	}
	if got := s.Stats().LineFetches; got != before+1 {
		t.Errorf("fetches = %d, want %d (line brought from memory)", got, before+1)
	}
	// FVC entry must be gone; line lives in main cache now.
	if s.FVC().Lookup(0x1000).TagMatch {
		t.Error("FVC entry must be invalidated after merge")
	}
	if src := s.Access(trace.Load, 0x1004, 1); src != MainHit {
		t.Errorf("merged word read = %v, want main hit (value survived merge)", src)
	}
	if got := s.MemWord(0x1004); got != 1 {
		t.Errorf("merged value = %d, want 1", got)
	}
}

func TestWriteMissAllocation(t *testing.T) {
	s := newFVCSystem(t)
	before := s.Stats().LineFetches
	if src := s.Access(trace.Store, 0x2000, 4); src != FVCHit {
		t.Errorf("frequent-value write miss = %v, want FVC hit (allocated, miss eliminated)", src)
	}
	st := s.Stats()
	if st.WriteMissAllocs != 1 {
		t.Errorf("WriteMissAllocs = %d, want 1", st.WriteMissAllocs)
	}
	if st.LineFetches != before {
		t.Error("write-miss allocation must not fetch the line")
	}
	if src := s.Access(trace.Load, 0x2000, 4); src != FVCHit {
		t.Errorf("read back = %v, want FVC hit", src)
	}
	// Other words of the line are marked infrequent: reading one misses.
	if src := s.Access(trace.Load, 0x2004, 0); src != Miss {
		t.Errorf("other word = %v, want miss", src)
	}
}

func TestNoWriteMissAllocateAblation(t *testing.T) {
	s := MustNew(Config{
		Main:                smallDMC(),
		FVC:                 &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues:      paperValues,
		NoWriteMissAllocate: true,
	})
	s.Access(trace.Store, 0x2000, 4)
	st := s.Stats()
	if st.WriteMissAllocs != 0 {
		t.Error("ablation must disable write-miss allocation")
	}
	if st.LineFetches != 1 {
		t.Errorf("fetches = %d, want 1 (normal write-allocate)", st.LineFetches)
	}
}

func TestSkipEmptyFootprintsAblation(t *testing.T) {
	s := MustNew(Config{
		Main:                smallDMC(),
		FVC:                 &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues:      []uint32{123456},
		SkipEmptyFootprints: true,
	})
	s.Access(trace.Load, 0x1000, 0) // zeros are NOT frequent in this table
	s.Access(trace.Load, 0x1040, 0) // evict; footprint all-infrequent -> skipped
	if s.FVC().ValidEntries() != 0 {
		t.Error("empty footprint must be skipped under the ablation")
	}
}

func TestFVCDirtyDisplacementWritesBackWords(t *testing.T) {
	s := newFVCSystem(t)
	s.Access(trace.Load, 0x1000, 0)
	s.Access(trace.Load, 0x1040, 0)  // footprint of line 0x1000 (4 frequent words)
	s.Access(trace.Store, 0x1004, 1) // dirty the FVC entry
	// Force displacement of the FVC entry: evict line 0x1080 whose
	// footprint maps to the same FVC index (entries=4 -> lineAddr&3;
	// lines 0x100, 0x104, 0x108 all map to index 0).
	s.Access(trace.Load, 0x1080, 0)
	s.Access(trace.Load, 0x10c0, 0) // hmm: evicts 0x1080? DMC has 4 lines; see below
	// Force a conflict eviction of line 0x1080 from the DMC: address
	// 0x1080+64 = 0x10c0 shares DMC set ((0x108>>0)&3 == (0x10c)&3? )
	st := s.Stats()
	if st.FVCWritebackWords == 0 {
		t.Errorf("dirty FVC displacement must write back words: %+v", st)
	}
}

func TestVictimCacheSwap(t *testing.T) {
	s := MustNew(Config{Main: smallDMC(), VictimEntries: 4})
	s.Access(trace.Load, 0x1000, 0)
	s.Access(trace.Load, 0x1040, 0) // evicts 0x1000 into VC
	if src := s.Access(trace.Load, 0x1000, 0); src != VictimHit {
		t.Errorf("VC probe = %v, want victim hit", src)
	}
	// Swap means 0x1040 is now in the VC.
	if src := s.Access(trace.Load, 0x1040, 0); src != VictimHit {
		t.Errorf("swapped line = %v, want victim hit", src)
	}
	st := s.Stats()
	if st.VictimHits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Victim hits must not refetch from memory.
	if st.LineFetches != 2 {
		t.Errorf("LineFetches = %d, want 2", st.LineFetches)
	}
}

func TestVictimCacheDirtyDisplacement(t *testing.T) {
	s := MustNew(Config{Main: smallDMC(), VictimEntries: 1})
	s.Access(trace.Store, 0x1000, 1) // dirty line
	s.Access(trace.Load, 0x1040, 0)  // dirty 0x1000 -> VC
	s.Access(trace.Load, 0x1080, 0)  // 0x1040 -> VC, displacing dirty 0x1000
	st := s.Stats()
	if st.LineWritebacks != 1 {
		t.Errorf("LineWritebacks = %d, want 1 (displaced dirty VC line)", st.LineWritebacks)
	}
}

func TestEmitIgnoresAllocEvents(t *testing.T) {
	s := MustNew(Config{Main: smallDMC()})
	s.Emit(trace.Event{Op: trace.HeapAlloc, Addr: 0x1000, Value: 64})
	if s.Stats().Accesses() != 0 {
		t.Error("alloc events must not count as accesses")
	}
	s.Emit(trace.Event{Op: trace.Load, Addr: 0x1000, Value: 0})
	if s.Stats().Accesses() != 1 {
		t.Error("access events must drive the hierarchy")
	}
}

func TestHitSourceString(t *testing.T) {
	want := map[HitSource]string{Miss: "miss", MainHit: "main", FVCHit: "fvc", VictimHit: "victim", HitSource(9): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Random-workload property: exclusivity holds after every access, stats
// are consistent, and all value verification passes (VerifyValues
// panics on any divergence).
func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := MustNew(Config{
		Main:           cache.Params{SizeBytes: 256, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 8, LineBytes: 16, Bits: 3},
		FrequentValues: paperValues,
		VerifyValues:   true,
	})
	replica := make(map[uint32]uint32)
	valuePool := []uint32{0, 0xffffffff, 1, 2, 4, 8, 10, 99999, 0xdeadbeef, 7, 13}
	const n = 20000
	for i := 0; i < n; i++ {
		addr := uint32(rng.Intn(512)) * 4 // 2KB region: 8x cache capacity
		if rng.Intn(2) == 0 {
			s.Access(trace.Load, addr, replica[addr])
		} else {
			v := valuePool[rng.Intn(len(valuePool))]
			s.Access(trace.Store, addr, v)
			replica[addr] = v
		}
		if i%97 == 0 && s.CachedInBoth(addr) {
			t.Fatalf("exclusivity violated at access %d addr %#x", i, addr)
		}
	}
	st := s.Stats()
	if st.Accesses() != n {
		t.Errorf("accesses = %d, want %d", st.Accesses(), n)
	}
	if st.Hits()+st.Misses != n {
		t.Errorf("hits %d + misses %d != %d", st.Hits(), st.Misses, n)
	}
	if st.FVCHits == 0 {
		t.Error("random workload with frequent values should produce FVC hits")
	}
	// Replica agreement at the end.
	for addr, v := range replica {
		if got := s.MemWord(addr); got != v {
			t.Errorf("replica divergence at %#x: %#x != %#x", addr, got, v)
		}
	}
}

// An FVC must never make the miss count worse than a plain DMC by more
// than the write-miss-allocation effect; with allocation disabled it
// can only help or equal. (The paper's first design goal.)
func TestFVCNeverHurtsWithoutAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := MustNew(Config{Main: cache.Params{SizeBytes: 128, LineBytes: 16, Assoc: 1}})
	aug := MustNew(Config{
		Main:                cache.Params{SizeBytes: 128, LineBytes: 16, Assoc: 1},
		FVC:                 &fvc.Params{Entries: 8, LineBytes: 16, Bits: 3},
		FrequentValues:      paperValues,
		NoWriteMissAllocate: true,
	})
	replica := make(map[uint32]uint32)
	for i := 0; i < 30000; i++ {
		addr := uint32(rng.Intn(256)) * 4
		var op trace.Op
		var v uint32
		if rng.Intn(2) == 0 {
			op, v = trace.Load, replica[addr]
		} else {
			op, v = trace.Store, []uint32{0, 1, 2, 0xabcd, 77}[rng.Intn(5)]
			replica[addr] = v
		}
		base.Access(op, addr, v)
		aug.Access(op, addr, v)
	}
	if aug.Stats().Misses > base.Stats().Misses {
		t.Errorf("FVC increased misses: %d > %d", aug.Stats().Misses, base.Stats().Misses)
	}
}
