package core

import (
	"math/rand"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/trace"
)

// goldenVC is a naive map/slice reference for the DMC+victim-cache
// protocol (Jouppi swap semantics).
type goldenVC struct {
	lineWords int
	numLines  int
	vcSize    int

	main map[uint32]*gLine // set -> line
	vc   []gvcEntry        // MRU-ordered, front = most recent
}

type gvcEntry struct {
	tag   uint32
	dirty bool
}

func newGoldenVC(mainLines, lineWords, vcSize int) *goldenVC {
	return &goldenVC{
		lineWords: lineWords,
		numLines:  mainLines,
		vcSize:    vcSize,
		main:      map[uint32]*gLine{},
	}
}

func (g *goldenVC) lineAddr(addr uint32) uint32 { return addr / uint32(g.lineWords*4) }
func (g *goldenVC) setIdx(la uint32) uint32     { return la % uint32(g.numLines) }

// vcProbe extracts the entry for la if present.
func (g *goldenVC) vcProbe(la uint32) (gvcEntry, bool) {
	for i, e := range g.vc {
		if e.tag == la {
			g.vc = append(g.vc[:i], g.vc[i+1:]...)
			return e, true
		}
	}
	return gvcEntry{}, false
}

// vcInsert adds an evicted main line, displacing LRU when full.
func (g *goldenVC) vcInsert(tag uint32, dirty bool) {
	g.vc = append([]gvcEntry{{tag: tag, dirty: dirty}}, g.vc...)
	if len(g.vc) > g.vcSize {
		g.vc = g.vc[:g.vcSize]
	}
}

func (g *goldenVC) evictToVC(s uint32) {
	if ln, ok := g.main[s]; ok {
		delete(g.main, s)
		g.vcInsert(ln.tag, ln.dirty)
	}
}

func (g *goldenVC) access(store bool, addr uint32) HitSource {
	la := g.lineAddr(addr)
	s := g.setIdx(la)
	if ln, ok := g.main[s]; ok && ln.tag == la {
		if store {
			ln.dirty = true
		}
		return MainHit
	}
	if e, ok := g.vcProbe(la); ok {
		g.evictToVC(s)
		g.main[s] = &gLine{tag: la, dirty: e.dirty || store}
		return VictimHit
	}
	g.evictToVC(s)
	g.main[s] = &gLine{tag: la, dirty: store}
	return Miss
}

func TestGoldenVictimDifferential(t *testing.T) {
	const (
		mainBytes = 512
		lineBytes = 16
		vcEntries = 4
	)
	sys := MustNew(Config{
		Main:          cache.Params{SizeBytes: mainBytes, LineBytes: lineBytes, Assoc: 1},
		VictimEntries: vcEntries,
	})
	golden := newGoldenVC(mainBytes/lineBytes, lineBytes/4, vcEntries)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 150_000; i++ {
		addr := uint32(rng.Intn(512)) * 4
		op := trace.Load
		if rng.Intn(3) == 0 {
			op = trace.Store
		}
		got := sys.Access(op, addr, 0)
		want := golden.access(op == trace.Store, addr)
		if got != want {
			t.Fatalf("access %d (%v %#x): system=%v golden=%v", i, op, addr, got, want)
		}
	}
}

// The set-associative main cache against a straightforward per-set
// LRU-list reference.
func TestGoldenSetAssocDifferential(t *testing.T) {
	const (
		sizeBytes = 1024
		lineBytes = 16
		assoc     = 4
	)
	sys := MustNew(Config{
		Main: cache.Params{SizeBytes: sizeBytes, LineBytes: lineBytes, Assoc: assoc},
	})
	numSets := sizeBytes / lineBytes / assoc
	sets := make([][]uint32, numSets) // MRU-ordered tags

	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 150_000; i++ {
		addr := uint32(rng.Intn(1024)) * 4
		la := addr / lineBytes
		si := la % uint32(numSets)

		wantHit := false
		for j, tag := range sets[si] {
			if tag == la {
				wantHit = true
				sets[si] = append(sets[si][:j], sets[si][j+1:]...)
				break
			}
		}
		sets[si] = append([]uint32{la}, sets[si]...)
		if len(sets[si]) > assoc {
			sets[si] = sets[si][:assoc]
		}

		got := sys.Access(trace.Load, addr, 0)
		if (got == MainHit) != wantHit {
			t.Fatalf("access %d (%#x): system=%v reference hit=%v", i, addr, got, wantHit)
		}
	}
}
