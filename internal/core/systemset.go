package core

import (
	"fvcache/internal/cache"
	"fvcache/internal/memsim"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
)

// SystemSet drives K independent hierarchies through one access stream
// in lockstep — the fused fast path of the batched replay engine. A
// configuration sweep builds one set from its config fan and replays
// the workload's recording exactly once: the event columns are decoded
// once, the architectural memory image is reconstructed once (stores
// applied once, read by every member), and only the per-configuration
// work — cache probes and miss handling — is paid K times.
//
// Equivalence with K separately replayed Systems is exact. Members
// never write the shared image; during an event every member's
// protocol step (including eviction-footprint reads and
// value-verification loads) observes pre-store memory, and the set
// applies the store once after the last member processed the event.
// Since a privately-owned replica is a pure function of the store
// prefix, the shared image equals each member's would-be private
// replica at every event boundary, so per-member Stats are
// bit-identical to the per-config replay path.
//
// A SystemSet is driven from a single goroutine (its members and the
// shared image are not internally synchronized); concurrent sweeps
// each build their own set over the same immutable recording.
type SystemSet struct {
	systems []*System
	groups  []dmGroup // direct-mapped members, grouped by geometry
	slow    []*System // members outside the fused probe shape
	mem     *memsim.Memory
}

// dmGroup fuses the direct-mapped probes of members sharing one index
// function. Tag state is transposed into a packed struct-of-arrays
// probe filter — tags[set*K + member] = lineTag<<2 | dirty<<1 | valid —
// so one event probes K contiguous words instead of K scattered Line
// structs in K separate arrays. The filter mirrors the members'
// authoritative cache.Line state: it is rebuilt from the caches when a
// replay chunk starts, resynced per-line around outlined miss handling
// (the only path that can replace a line), and its dirty bits are
// pushed back when the chunk ends, so between ReplayColumns calls the
// caches are exact and audits, sampling and Stats see nothing unusual.
//
// Touch only ever flips a line's dirty bit, so filter hits run without
// touching the caches at all; with every member of a sweep sharing one
// main-cache geometry, the per-event probe cost collapses from K cache
// lines to K/16 — the difference between the fused pass re-streaming
// every member's tag array and scanning one packed row.
type dmGroup struct {
	shift, mask uint32
	tags        []uint32 // (mask+1) * len(members) packed entries
	members     []groupMember
	hits        []uint64 // per-member main-hit tally for the current chunk
	misses      []uint64 // per-member miss tally for the current chunk
	resyncs     uint64   // filter resyncs this chunk, flushed to obs at chunk end
}

type groupMember struct {
	sys *System
	dm  cache.DMView
}

// NewSet builds one System per configuration, all sharing a single
// architectural memory image.
func NewSet(cfgs []Config) (*SystemSet, error) {
	ss := &SystemSet{mem: memsim.NewMemory()}
	for _, cfg := range cfgs {
		s, err := newSystem(cfg, ss.mem)
		if err != nil {
			return nil, err
		}
		ss.systems = append(ss.systems, s)
		shift, mask := s.dm.Geometry()
		// The packed-entry encoding needs two free low bits
		// (tag = addr>>shift, word-sized lines guarantee shift >= 2).
		if !s.dmOK || s.sketch != nil || s.cfg.VerifyValues || shift < 2 {
			ss.slow = append(ss.slow, s)
			continue
		}
		gi := -1
		for i := range ss.groups {
			if ss.groups[i].shift == shift && ss.groups[i].mask == mask {
				gi = i
				break
			}
		}
		if gi < 0 {
			ss.groups = append(ss.groups, dmGroup{shift: shift, mask: mask})
			gi = len(ss.groups) - 1
		}
		g := &ss.groups[gi]
		g.members = append(g.members, groupMember{sys: s, dm: s.dm})
	}
	for i := range ss.groups {
		g := &ss.groups[i]
		g.tags = make([]uint32, int(g.mask+1)*len(g.members))
		g.hits = make([]uint64, len(g.members))
		g.misses = make([]uint64, len(g.members))
	}
	return ss, nil
}

// MustNewSet is NewSet that panics on error.
func MustNewSet(cfgs []Config) *SystemSet {
	ss, err := NewSet(cfgs)
	if err != nil {
		panic(err)
	}
	return ss
}

// Systems returns the member systems, in configuration order.
func (ss *SystemSet) Systems() []*System { return ss.systems }

// Len returns the number of member systems.
func (ss *SystemSet) Len() int { return len(ss.systems) }

// Memory returns the shared architectural memory image (for tests).
func (ss *SystemSet) Memory() *memsim.Memory { return ss.mem }

// Access drives one access event through every member system, then
// advances the shared memory image. Non-access ops are ignored.
func (ss *SystemSet) Access(op trace.Op, addr, value uint32) {
	if !op.IsAccess() {
		return
	}
	for _, s := range ss.systems {
		s.Access(op, addr, value)
	}
	if op == trace.Store {
		ss.mem.StoreWord(addr, value)
	}
}

// pull rebuilds the packed probe filter from the members' authoritative
// line state. Running it on chunk entry (rather than trusting the
// previous chunk's exit state) makes ReplayColumns self-contained:
// callers may interleave Access calls or any direct member use between
// chunks without desyncing the filter.
func (g *dmGroup) pull() {
	k := len(g.members)
	for j := range g.members {
		dm := g.members[j].dm
		for idx := uint32(0); idx <= g.mask; idx++ {
			ln := dm.LineAt(idx)
			e := uint32(0)
			if ln.Valid {
				e = ln.Tag<<2 | 1
				if ln.Dirty {
					e |= 2
				}
			}
			g.tags[int(idx)*k+j] = e
		}
	}
}

// push writes the filter's dirty bits back to the members' lines. Tags
// and validity are already exact (miss handling resyncs them in line),
// so dirty bits — the only state a probe hit mutates — are all that
// can be ahead of the caches.
func (g *dmGroup) push() {
	k := len(g.members)
	for j := range g.members {
		dm := g.members[j].dm
		for idx := uint32(0); idx <= g.mask; idx++ {
			if e := g.tags[int(idx)*k+j]; e&1 != 0 {
				dm.LineAt(idx).Dirty = e&2 != 0
			}
		}
	}
}

// missAt handles member j's probe-filter miss at set index idx: sync
// the filter's dirty bit into the authoritative line, run the outlined
// miss path (which may hit the FVC/victim cache, insert into the main
// cache, or leave it untouched), then re-encode whatever line now
// occupies the set. Outlined so the fused loop body stays small enough
// to keep its locals in registers.
func (g *dmGroup) missAt(j int, idx uint32, store bool, addr, value uint32) {
	// A plain field increment: the per-event fused loop stays free of
	// atomics; the tally reaches the obs counter once per chunk.
	g.resyncs++
	m := &g.members[j]
	ln := m.dm.LineAt(idx)
	ei := int(idx)*len(g.members) + j
	if e := g.tags[ei]; e&1 != 0 {
		ln.Dirty = e&2 != 0
	}
	switch m.sys.access(store, addr, value) {
	case MainHit:
		g.hits[j]++
	case FVCHit:
		m.sys.stats.FVCHits++
	case VictimHit:
		m.sys.stats.VictimHits++
	default:
		g.misses[j]++
	}
	e := uint32(0)
	if ln.Valid {
		e = ln.Tag<<2 | 1
		if ln.Dirty {
			e |= 2
		}
	}
	g.tags[ei] = e
}

// ReplayColumns drives every access event of the columnar buffers
// through all member systems in lockstep. It is semantically identical
// to calling Access per event, but runs the transposed probe filter
// across each geometry group: the event is decoded once, the group's
// set index is computed once, the K packed filter entries are scanned
// contiguously (miss handling stays outlined), the shared image
// advances once per store, and load/store/hit tallies accumulate in
// locals that merge into each member's Stats when the call returns —
// so callers can chunk the columns at hook boundaries and observe
// exact per-member Stats and cache state between chunks, with zero
// steady-state allocations throughout.
func (ss *SystemSet) ReplayColumns(ops []trace.Op, addrs, values []uint32) {
	if len(addrs) != len(ops) || len(values) != len(ops) {
		panic("core: ReplayColumns column length mismatch")
	}
	groups := ss.groups
	for gi := range groups {
		groups[gi].pull()
	}
	mem := ss.mem
	slow := ss.slow
	var loads, stores uint64
	for i, op := range ops {
		if !op.IsAccess() {
			continue
		}
		store := op == trace.Store
		addr, value := addrs[i], values[i]
		for gi := range groups {
			g := &groups[gi]
			tag := addr >> g.shift
			k := len(g.members)
			base := int(tag&g.mask) * k
			ents := g.tags[base : base+k]
			want := tag<<2 | 1
			for j, e := range ents {
				if e&^2 == want {
					if store {
						ents[j] = e | 2
					}
					g.hits[j]++
					continue
				}
				g.missAt(j, tag&g.mask, store, addr, value)
			}
		}
		for _, s := range slow {
			s.Access(op, addr, value)
		}
		if store {
			mem.StoreWord(addr, value)
			stores++
		} else {
			loads++
		}
	}
	for gi := range groups {
		g := &groups[gi]
		for j := range g.members {
			st := &g.members[j].sys.stats
			st.Loads += loads
			st.Stores += stores
			st.MainHits += g.hits[j]
			st.Misses += g.misses[j]
			g.hits[j] = 0
			g.misses[j] = 0
		}
		g.push()
	}
	// Slow members tallied Loads/Stores inside Access itself.

	// Telemetry, once per chunk (never per event): a handful of atomic
	// adds that keep the fused loop allocation-free and branch-light.
	if obs.Enabled {
		obs.BatchChunks.Inc()
		obs.BatchEvents.Add(uint64(len(ops)))
		obs.ProbeRebuilds.Add(uint64(len(groups)))
		var resyncs uint64
		for gi := range groups {
			resyncs += groups[gi].resyncs
			groups[gi].resyncs = 0
		}
		obs.ProbeResyncs.Add(resyncs)
	}
}
