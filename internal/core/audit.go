package core

import (
	"fmt"
	"strings"

	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// The invariant audit is the runtime proof of the paper's correctness
// story: Section 3's protocol rests on the DMC/FVC exclusivity
// contract (a line readable from both structures could serve stale
// values) and on every non-escape FVC code decoding to the word's
// architectural value. AuditInvariants scans the whole hierarchy for
// violations; internal/faultinject demonstrates that every class of
// injected corruption is caught by this audit or by the VerifyValues
// asserts.

// InvariantViolation is one failed invariant check.
type InvariantViolation struct {
	// Invariant names the violated contract.
	Invariant string
	// Detail locates the violation.
	Detail string
}

// String renders the violation.
func (v InvariantViolation) String() string { return v.Invariant + ": " + v.Detail }

// AuditError aggregates the violations found by one audit scan.
type AuditError struct {
	Violations []InvariantViolation
}

// Error summarizes the violations (all of them; an audit failure is a
// stop-the-world event, not a log line to truncate).
func (e *AuditError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: invariant audit found %d violation(s)", len(e.Violations))
	for _, v := range e.Violations {
		sb.WriteString("\n  ")
		sb.WriteString(v.String())
	}
	return sb.String()
}

// VerificationError is the typed assert thrown (via panic) by the
// VerifyValues checks on the access path: a decoded or event value
// disagreeing with the architectural replica. sim.Measure and the
// harness recover it into an ordinary error.
type VerificationError struct {
	// Where names the failing check ("fvc-decode" or "load-event").
	Where string
	// Addr is the word address in disagreement.
	Addr uint32
	// Want is the expected (replica or event) value, Got the observed.
	Want, Got uint32
}

// Error formats the disagreement.
func (e *VerificationError) Error() string {
	return fmt.Sprintf("core: value verification failed (%s): %#x holds %#x, want %#x",
		e.Where, e.Addr, e.Got, e.Want)
}

// AuditInvariants scans the hierarchy for violations of the contracts
// the simulation's correctness rests on:
//
//  1. DMC/FVC exclusivity (paper Section 3): no line may be readable
//     from both the main cache and the FVC.
//  2. FVC code validity: every non-escape code must name an assigned
//     frequent-value table slot.
//  3. FVC value consistency: every non-escape code must decode to the
//     word's current architectural value (the replica reflects each
//     store as it happens, so frequent codes may never go stale).
//  4. Stats conservation: hits + misses == loads + stores, and the FVC
//     occupancy gauges stay within geometric bounds.
//
// It returns nil when every invariant holds, or an *AuditError listing
// every violation. The scan is read-only and costs O(entries), so it
// can run periodically during measurement (sim.MeasureOptions.AuditEvery).
func (s *System) AuditInvariants() error {
	var violations []InvariantViolation
	add := func(invariant, format string, args ...any) {
		violations = append(violations, InvariantViolation{
			Invariant: invariant,
			Detail:    fmt.Sprintf(format, args...),
		})
	}

	// 1-3: FVC scans.
	if s.fv != nil {
		tbl := s.fv.Table()
		escape := s.fv.Escape()
		lineBytes := uint32(s.cfg.Main.LineBytes)
		s.fv.VisitValid(func(e fvc.Entry) {
			base := e.Tag * lineBytes
			if s.main.Lookup(base) {
				add("dmc-fvc-exclusivity",
					"line %#x (FVC tag %#x) readable from both the main cache and the FVC", base, e.Tag)
			}
			for i, code := range e.Codes {
				if code == escape {
					continue
				}
				addr := base + uint32(i)*trace.WordBytes
				if int(code) >= tbl.Len() {
					add("fvc-code-validity",
						"entry %#x word %d holds unassigned code %d (table holds %d values)",
						e.Tag, i, code, tbl.Len())
					continue
				}
				if want, got := s.mem.LoadWord(addr), tbl.Decode(code); got != want {
					add("fvc-value-consistency",
						"entry %#x word %d (addr %#x) decodes to %#x but replica holds %#x",
						e.Tag, i, addr, got, want)
				}
			}
		})
		if n, max := s.fv.ValidEntries(), s.fv.Params().Entries; n > max {
			add("fvc-occupancy", "%d valid entries exceed geometry capacity %d", n, max)
		}
	}

	// 4: stats conservation.
	st := s.stats
	if st.Hits()+st.Misses != st.Accesses() {
		add("stats-conservation",
			"hits (%d) + misses (%d) != accesses (%d = %d loads + %d stores)",
			st.Hits(), st.Misses, st.Accesses(), st.Loads, st.Stores)
	}
	if s.fv == nil && st.FVCHits != 0 {
		add("stats-conservation", "%d FVC hits recorded without an FVC", st.FVCHits)
	}
	if s.vc == nil && st.VictimHits != 0 {
		add("stats-conservation", "%d victim hits recorded without a victim cache", st.VictimHits)
	}

	if len(violations) > 0 {
		return &AuditError{Violations: violations}
	}
	return nil
}

// CorruptReplicaWord overwrites the architectural replica word at
// addr, bypassing the cache protocol. Fault-injection support
// (internal/faultinject): it models a corrupted data word in the
// cached copy of addr's line, which the VerifyValues asserts or the
// invariant audit must subsequently detect. Never called on the
// simulation path.
func (s *System) CorruptReplicaWord(addr, v uint32) { s.mem.StoreWord(addr, v) }
