package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// auditWorkload drives s with a mixed random workload so caches and
// FVC hold real state by the time the audit runs.
func auditWorkload(s *System, n int) {
	rng := rand.New(rand.NewSource(7))
	vals := append([]uint32{}, paperValues...)
	vals = append(vals, 0xdeadbeef, 123456)
	mem := map[uint32]uint32{}
	for i := 0; i < n; i++ {
		addr := uint32(rng.Intn(64)) * 4
		if rng.Intn(2) == 0 {
			v := vals[rng.Intn(len(vals))]
			s.Access(trace.Store, addr, v)
			mem[addr] = v
		} else {
			s.Access(trace.Load, addr, mem[addr])
		}
	}
}

func TestAuditCleanSystemPasses(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"dmc", Config{Main: smallDMC(), VerifyValues: true}},
		{"fvc", Config{
			Main:           smallDMC(),
			FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
			FrequentValues: paperValues,
			VerifyValues:   true,
		}},
		{"victim", Config{Main: smallDMC(), VictimEntries: 2, VerifyValues: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := MustNew(tc.cfg)
			auditWorkload(s, 2000)
			if err := s.AuditInvariants(); err != nil {
				t.Errorf("clean system fails audit: %v", err)
			}
		})
	}
}

// fvcWithEntry returns a system whose FVC holds the (all-zero) line at
// 0x1000, along with that line's FVC line address.
func fvcWithEntry(t *testing.T, vals []uint32) (*System, uint32) {
	t.Helper()
	s := MustNew(Config{
		Main:           smallDMC(),
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues: vals,
	})
	s.Access(trace.Load, 0x1000, 0) // fetch the line
	s.Access(trace.Load, 0x1040, 0) // conflict: evict it, footprint -> FVC
	la := s.FVC().LineAddr(0x1000)
	if !s.FVC().Lookup(0x1000).TagMatch {
		t.Fatal("setup: FVC does not hold line 0x1000")
	}
	if err := s.AuditInvariants(); err != nil {
		t.Fatalf("setup: fresh system fails audit: %v", err)
	}
	return s, la
}

func TestAuditDetectsUnassignedCode(t *testing.T) {
	// A 3-value table assigns codes 0-2; code 5 is neither assigned nor
	// the escape (7), i.e. a bit flip landed in the dead code space.
	s, la := fvcWithEntry(t, paperValues[:3])
	if !s.FVC().CorruptCode(la, 1, 5) {
		t.Fatal("CorruptCode found no entry")
	}
	err := s.AuditInvariants()
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit = %v, want *AuditError", err)
	}
	if !strings.Contains(err.Error(), "fvc-code-validity") {
		t.Errorf("audit error does not name fvc-code-validity:\n%v", err)
	}
}

func TestAuditDetectsWrongCode(t *testing.T) {
	// Code 1 is assigned (decodes to 0xffffffff) but the replica word
	// is 0: a flip to another valid code is caught by value consistency.
	s, la := fvcWithEntry(t, paperValues)
	if !s.FVC().CorruptCode(la, 0, 1) {
		t.Fatal("CorruptCode found no entry")
	}
	err := s.AuditInvariants()
	if err == nil || !strings.Contains(err.Error(), "fvc-value-consistency") {
		t.Errorf("audit = %v, want fvc-value-consistency violation", err)
	}
}

func TestAuditDetectsCorruptReplica(t *testing.T) {
	s, _ := fvcWithEntry(t, paperValues)
	s.CorruptReplicaWord(0x1008, 0xdead)
	err := s.AuditInvariants()
	if err == nil || !strings.Contains(err.Error(), "fvc-value-consistency") {
		t.Errorf("audit = %v, want fvc-value-consistency violation", err)
	}
}

func TestAuditDetectsExclusivityViolation(t *testing.T) {
	s, _ := fvcWithEntry(t, paperValues)
	// Force the line into the main cache behind the protocol's back.
	s.Main().Insert(0x1000, false)
	if !s.CachedInBoth(0x1000) {
		t.Fatal("setup: line not readable from both structures")
	}
	err := s.AuditInvariants()
	if err == nil || !strings.Contains(err.Error(), "dmc-fvc-exclusivity") {
		t.Errorf("audit = %v, want dmc-fvc-exclusivity violation", err)
	}
}

func TestAuditErrorListsEveryViolation(t *testing.T) {
	s, la := fvcWithEntry(t, paperValues)
	s.FVC().CorruptCode(la, 0, 1)
	s.FVC().CorruptCode(la, 2, 3)
	err := s.AuditInvariants()
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit = %v, want *AuditError", err)
	}
	if len(ae.Violations) != 2 {
		t.Errorf("violations = %d, want 2:\n%v", len(ae.Violations), err)
	}
	if !strings.Contains(err.Error(), "2 violation(s)") {
		t.Errorf("error does not state the violation count:\n%v", err)
	}
}

func TestVerifyValuesPanicsTyped(t *testing.T) {
	// The access-path asserts throw *VerificationError so the harness
	// can recover them into ordinary errors.
	t.Run("load-event", func(t *testing.T) {
		s := MustNew(Config{Main: smallDMC(), VerifyValues: true})
		s.Access(trace.Store, 0x1000, 42)
		defer func() {
			ve, ok := recover().(*VerificationError)
			if !ok {
				t.Fatalf("recover = %v, want *VerificationError", ve)
			}
			if ve.Where != "load-event" || ve.Addr != 0x1000 {
				t.Errorf("VerificationError = %+v", ve)
			}
		}()
		s.Access(trace.Load, 0x1000, 43) // event value disagrees with replica
	})
	t.Run("fvc-decode", func(t *testing.T) {
		s, la := fvcWithEntry(t, paperValues)
		s.cfg.VerifyValues = true
		s.FVC().CorruptCode(la, 0, 1) // decodes to 0xffffffff, replica holds 0
		defer func() {
			ve, ok := recover().(*VerificationError)
			if !ok {
				t.Fatalf("recover = %v, want *VerificationError", ve)
			}
			if ve.Where != "fvc-decode" || ve.Got != 0xffffffff {
				t.Errorf("VerificationError = %+v", ve)
			}
		}()
		s.Access(trace.Load, 0x1000, 0)
	})
}

func TestAuditStatsConservation(t *testing.T) {
	s := MustNew(Config{Main: smallDMC()})
	auditWorkload(s, 500)
	s.stats.Misses++ // lose a hit/miss classification
	err := s.AuditInvariants()
	if err == nil || !strings.Contains(err.Error(), "stats-conservation") {
		t.Errorf("audit = %v, want stats-conservation violation", err)
	}
}
