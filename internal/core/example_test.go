package core_test

import (
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// A 64-byte direct-mapped cache augmented with a tiny FVC: the second
// read of a frequent value that was evicted from the main cache hits
// in the FVC instead of going to memory.
func ExampleSystem_Access() {
	sys := core.MustNew(core.Config{
		Main:           cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues: []uint32{0, 1, 2},
	})
	fmt.Println(sys.Access(trace.Load, 0x1000, 0)) // cold miss
	fmt.Println(sys.Access(trace.Load, 0x1040, 0)) // conflict: evicts line, footprint -> FVC
	fmt.Println(sys.Access(trace.Load, 0x1000, 0)) // frequent word: FVC hit
	// Output:
	// miss
	// miss
	// fvc
}
