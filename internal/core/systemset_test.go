package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// setConfigs spans every hierarchy shape the fused loop must handle:
// the fast direct-mapped lane, FVC and victim augmentations, and the
// slow lanes (associative main cache, L2, online sketch).
func setConfigs() []Config {
	main := cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}
	fvt := []uint32{0, 1, 0xffffffff, 7, 42, 1024, 0x55aa}
	return []Config{
		{Main: main},
		{Main: main, FVC: &fvc.Params{Entries: 64, LineBytes: 32, Bits: 3}, FrequentValues: fvt},
		{Main: main, VictimEntries: 8},
		{Main: cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 2}},
		{Main: main, L2: &cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 4}},
		{Main: main, FVC: &fvc.Params{Entries: 64, LineBytes: 32, Bits: 3}, OnlineFVTEvery: 5_000},
	}
}

// synthColumns generates a deterministic value-skewed access stream
// with non-access events sprinkled in (the fused loop must skip them
// exactly like the per-system loop does).
func synthColumns(n int) (ops []trace.Op, addrs, vals []uint32) {
	rng := rand.New(rand.NewSource(42))
	frequent := []uint32{0, 1, 0xffffffff, 7, 42, 1024, 0x55aa}
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		switch {
		case r < 2:
			ops = append(ops, trace.HeapAlloc)
			addrs = append(addrs, uint32(rng.Intn(1<<16))&^3)
			vals = append(vals, 64)
		case r < 35:
			ops = append(ops, trace.Store)
			addrs = append(addrs, uint32(rng.Intn(24<<10))&^3)
			if rng.Intn(100) < 60 {
				vals = append(vals, frequent[rng.Intn(len(frequent))])
			} else {
				vals = append(vals, rng.Uint32())
			}
		default:
			ops = append(ops, trace.Load)
			addrs = append(addrs, uint32(rng.Intn(24<<10))&^3)
			vals = append(vals, 0) // loads carry the loaded value; System ignores it on replay
		}
	}
	return ops, addrs, vals
}

// TestSystemSetParity is the SystemSet contract: replaying one stream
// through a set of K configurations yields bit-identical Stats to K
// independently replayed Systems, for every lane shape.
func TestSystemSetParity(t *testing.T) {
	cfgs := setConfigs()
	ops, addrs, vals := synthColumns(200_000)

	set := MustNewSet(cfgs)
	set.ReplayColumns(ops, addrs, vals)

	for i, cfg := range cfgs {
		solo, err := New(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		solo.ReplayColumns(ops, addrs, vals)
		if got, want := set.Systems()[i].Stats(), solo.Stats(); got != want {
			t.Errorf("config %d: set stats diverge from solo replay\nset:  %+v\nsolo: %+v", i, got, want)
		}
	}
}

// TestSystemSetChunkedParity checks that chunking the columns at
// arbitrary boundaries (how the batch engine realizes measurement
// hooks) leaves the final Stats identical to a single fused pass.
func TestSystemSetChunkedParity(t *testing.T) {
	cfgs := setConfigs()
	ops, addrs, vals := synthColumns(100_000)

	whole := MustNewSet(cfgs)
	whole.ReplayColumns(ops, addrs, vals)

	chunked := MustNewSet(cfgs)
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < len(ops); {
		next := n + 1 + rng.Intn(9_000)
		if next > len(ops) {
			next = len(ops)
		}
		chunked.ReplayColumns(ops[n:next], addrs[n:next], vals[n:next])
		n = next
	}

	for i := range cfgs {
		if got, want := chunked.Systems()[i].Stats(), whole.Systems()[i].Stats(); got != want {
			t.Errorf("config %d: chunked stats diverge\nchunked: %+v\nwhole:   %+v", i, got, want)
		}
	}
}

// TestSystemSetAccessParity checks the per-event Access entry point
// against the fused column loop.
func TestSystemSetAccessParity(t *testing.T) {
	cfgs := setConfigs()
	ops, addrs, vals := synthColumns(50_000)

	fused := MustNewSet(cfgs)
	fused.ReplayColumns(ops, addrs, vals)

	stepped := MustNewSet(cfgs)
	for i, op := range ops {
		stepped.Access(op, addrs[i], vals[i])
	}

	for i := range cfgs {
		if got, want := stepped.Systems()[i].Stats(), fused.Systems()[i].Stats(); got != want {
			t.Errorf("config %d: Access-driven stats diverge\nstepped: %+v\nfused:   %+v", i, got, want)
		}
	}
}

// TestSystemSetAudit runs the full invariant audit over every member
// after a fused replay: sharing the memory image must not corrupt any
// member's protocol state.
func TestSystemSetAudit(t *testing.T) {
	cfgs := setConfigs()
	ops, addrs, vals := synthColumns(100_000)
	set := MustNewSet(cfgs)
	set.ReplayColumns(ops, addrs, vals)
	for i, s := range set.Systems() {
		if err := s.AuditInvariants(); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
}

// TestSystemSetRejectsBadConfig checks NewSet surfaces member
// construction errors.
func TestSystemSetRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Main: cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}},
		{Main: cache.Params{SizeBytes: 3000, LineBytes: 32, Assoc: 1}},
	}
	if _, err := NewSet(bad); err == nil {
		t.Fatal("NewSet accepted an invalid member config")
	}
}

func BenchmarkSystemSetReplay(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
			cfgs := make([]Config, k)
			for i := range cfgs {
				cfgs[i] = Config{Main: main}
			}
			ops, addrs, vals := synthColumns(200_000)
			set := MustNewSet(cfgs)
			set.ReplayColumns(ops, addrs, vals) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set.ReplayColumns(ops, addrs, vals)
			}
		})
	}
}
