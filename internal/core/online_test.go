package core

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

func onlineSystem(t *testing.T, every uint64) *System {
	t.Helper()
	return MustNew(Config{
		Main:           cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		OnlineFVTEvery: every,
		VerifyValues:   true,
	})
}

func TestOnlineFVTValidatesWithoutValues(t *testing.T) {
	// No FrequentValues needed when online identification is on.
	s := onlineSystem(t, 100)
	if s.FVC().Table().Len() != 0 {
		t.Errorf("initial table should be empty, has %d values", s.FVC().Table().Len())
	}
	// But without either, the config is invalid.
	bad := Config{
		Main: cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:  &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
	}
	if err := bad.Validate(); err == nil {
		t.Error("FVC without values and without online mode must be rejected")
	}
}

func TestOnlineFVTLearnsValues(t *testing.T) {
	s := onlineSystem(t, 50)
	// Stream stores of a heavily repeated value.
	for i := 0; i < 500; i++ {
		s.Access(trace.Store, uint32(i%64)*4, 0xbeef)
	}
	if s.Stats().FVTUpdates == 0 {
		t.Fatal("expected at least one FVT update")
	}
	if !s.FVC().Table().Contains(0xbeef) {
		t.Errorf("table should have learned 0xbeef: %v", s.FVC().Table().Values())
	}
}

func TestOnlineFVTEventuallyHits(t *testing.T) {
	s := onlineSystem(t, 50)
	// A working set far larger than the 64B main cache, all one value:
	// once the table learns it, the FVC starts absorbing accesses.
	for round := 0; round < 20; round++ {
		for i := 0; i < 128; i++ {
			s.Access(trace.Store, uint32(i)*4, 7)
		}
	}
	if s.Stats().FVCHits == 0 {
		t.Error("online FVC produced no hits")
	}
}

func TestOnlineFVTStableSetDoesNotChurn(t *testing.T) {
	s := onlineSystem(t, 10)
	for i := 0; i < 1000; i++ {
		s.Access(trace.Store, uint32(i%16)*4, uint32(i%2)) // values {0,1} only
	}
	st := s.Stats()
	// The set {0,1} stabilizes after the first updates; replacements
	// must stop (equal sets are detected and skipped).
	if st.FVTUpdates > 5 {
		t.Errorf("stable value set caused %d FVT updates", st.FVTUpdates)
	}
}

func TestReplaceTableFlushes(t *testing.T) {
	tbl1 := fvc.MustTable(3, []uint32{1, 2, 3})
	f := fvc.MustNew(fvc.Params{Entries: 4, LineBytes: 16, Bits: 3}, tbl1)
	f.InstallFootprint(0, []uint32{1, 2, 3, 1})
	f.WriteWord(0x8, 2) // dirty the entry (tag 0 line, word 2)
	tbl2 := fvc.MustTable(3, []uint32{7, 8, 9})
	dirty, err := f.ReplaceTable(tbl2)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 4 {
		t.Errorf("dirty frequent words = %d, want 4", dirty)
	}
	if f.ValidEntries() != 0 {
		t.Error("ReplaceTable must invalidate all entries")
	}
	if !f.Table().Contains(7) || f.Table().Contains(1) {
		t.Error("table not replaced")
	}
	// Width mismatch is rejected.
	if _, err := f.ReplaceTable(fvc.MustTable(2, []uint32{5})); err == nil {
		t.Error("width mismatch must be rejected")
	}
}

func TestOnlineVsProfiledComparable(t *testing.T) {
	// On a value-skewed stream, online identification should approach
	// the profiled configuration's hit count.
	mk := func(online bool) *System {
		cfg := Config{
			Main: cache.Params{SizeBytes: 256, LineBytes: 16, Assoc: 1},
			FVC:  &fvc.Params{Entries: 16, LineBytes: 16, Bits: 3},
		}
		if online {
			cfg.OnlineFVTEvery = 200
		} else {
			cfg.FrequentValues = []uint32{0, 1, 2}
		}
		return MustNew(cfg)
	}
	profiled, online := mk(false), mk(true)
	drive := func(s *System) {
		for round := 0; round < 50; round++ {
			for i := 0; i < 512; i++ {
				s.Access(trace.Store, uint32(i)*4, uint32(i%3))
			}
		}
	}
	drive(profiled)
	drive(online)
	p, o := profiled.Stats(), online.Stats()
	if o.FVCHits == 0 {
		t.Fatal("online system produced no FVC hits")
	}
	// Online pays a learning phase but should reach at least half the
	// profiled hit count on this easy stream.
	if o.FVCHits < p.FVCHits/2 {
		t.Errorf("online hits %d too far below profiled %d", o.FVCHits, p.FVCHits)
	}
}
