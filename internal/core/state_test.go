package core

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// stateTestConfigs covers every capturable structure combination:
// plain DM, assoc, FVC, victim, L2.
func stateTestConfigs() []Config {
	main := cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 1}
	fvp := &fvc.Params{Entries: 64, Bits: 3, LineBytes: 32}
	l2 := &cache.Params{SizeBytes: 1 << 14, LineBytes: 32, Assoc: 4}
	return []Config{
		{Main: main},
		{Main: cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2}},
		{Main: main, FVC: fvp, FrequentValues: []uint32{0, 1, 0xffffffff, 7, 42, 9, 13}},
		{Main: main, VictimEntries: 8},
		{Main: main, L2: l2},
	}
}

func driveAccesses(s *System, n int, seed uint64) {
	x := seed | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		op := trace.Load
		if x&3 == 0 {
			op = trace.Store
		}
		addr := uint32(x>>20) % 8192 &^ 3
		val := uint32(0)
		if x&7 == 7 {
			val = uint32(x >> 40)
		}
		s.Access(op, addr, val)
	}
}

// TestSystemStateRoundTrip drives a system mid-run, captures it,
// restores the snapshot into a fresh system, and checks the two behave
// identically (equal stats deltas and equal canonical exit states)
// over a further access stream.
func TestSystemStateRoundTrip(t *testing.T) {
	for ci, cfg := range stateTestConfigs() {
		a := MustNew(cfg)
		driveAccesses(a, 5000, uint64(ci)*977+3)

		var snap SystemState
		a.CaptureState(&snap)

		b := MustNew(cfg)
		b.RestoreState(&snap)
		// The restored system needs the same architectural image for
		// value-dependent paths (FVC footprints).
		for addr := uint32(0); addr < 8192; addr += 4 {
			if v := a.MemWord(addr); v != 0 {
				b.mem.StoreWord(addr, v)
			}
		}

		var sa, sb SystemState
		a.CaptureState(&sa)
		b.CaptureState(&sb)
		if !sa.Equal(&sb) {
			t.Fatalf("config %d: restored state not canonically equal to source", ci)
		}

		preA, preB := a.Stats(), b.Stats()
		driveAccesses(a, 5000, uint64(ci)*977+4)
		driveAccesses(b, 5000, uint64(ci)*977+4)
		da, db := a.Stats().Minus(preA), b.Stats().Minus(preB)
		if da != db {
			t.Fatalf("config %d: stats diverged after restore:\n a=%+v\n b=%+v", ci, da, db)
		}
		a.CaptureState(&sa)
		b.CaptureState(&sb)
		if !sa.Equal(&sb) {
			t.Fatalf("config %d: exit states diverged after restore", ci)
		}
	}
}

func TestSystemStateDetectsDifference(t *testing.T) {
	cfg := stateTestConfigs()[0]
	a, b := MustNew(cfg), MustNew(cfg)
	driveAccesses(a, 1000, 1)
	driveAccesses(b, 1000, 2)
	var sa, sb SystemState
	a.CaptureState(&sa)
	b.CaptureState(&sb)
	if sa.Equal(&sb) {
		t.Fatal("different histories captured to equal states")
	}
}

func TestStatsPlusMinus(t *testing.T) {
	a := Stats{Loads: 10, Stores: 5, MainHits: 7, Misses: 8, TrafficWords: 100, L2Hits: 3}
	b := Stats{Loads: 1, Stores: 2, MainHits: 3, Misses: 4, TrafficWords: 50, L2Hits: 1}
	if got := a.Plus(b).Minus(b); got != a {
		t.Fatalf("Plus/Minus not inverse: %+v", got)
	}
}

func TestCheckpointable(t *testing.T) {
	main := cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 1}
	fvp := &fvc.Params{Entries: 64, Bits: 3, LineBytes: 32}
	if !(Config{Main: main}).Checkpointable() {
		t.Fatal("plain config should be checkpointable")
	}
	if !(Config{Main: main, FVC: fvp, FrequentValues: []uint32{0}}).Checkpointable() {
		t.Fatal("offline FVC config should be checkpointable")
	}
	if (Config{Main: main, FVC: fvp, OnlineFVTEvery: 1000}).Checkpointable() {
		t.Fatal("online FVT config must not be checkpointable")
	}
}
