// Package core composes the paper's cache hierarchy: a conventional
// write-back main cache (direct mapped or set associative), optionally
// augmented with a Frequent Value Cache (the paper's contribution) or
// with a victim cache (the baseline it is compared against), in front
// of an architectural memory.
//
// The simulator is trace driven: feed it trace events (it implements
// trace.Sink) or call Access directly. Because every event carries the
// accessed value, the system maintains an exact replica of
// architectural memory, which is what lets the FVC encode and verify
// frequent-value footprints.
package core

import (
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/freqval"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

// Config selects a hierarchy.
type Config struct {
	// Main is the main cache geometry (the paper's DMC when Assoc==1).
	Main cache.Params

	// FVC, when non-nil, attaches a frequent value cache. Its
	// LineBytes must equal Main.LineBytes.
	FVC *fvc.Params
	// FrequentValues is the frequent value table contents, most
	// frequent first; required when FVC is set. At most
	// fvc.MaxValues(FVC.Bits) values are used.
	FrequentValues []uint32

	// VictimEntries, when positive, attaches a fully-associative
	// victim cache of that many lines. Mutually exclusive with FVC.
	VictimEntries int

	// L2, when non-nil, places a unified write-back second-level cache
	// between the L1 level (main cache + FVC/VC) and memory. Its line
	// size must equal Main.LineBytes. TrafficWords then counts only
	// off-chip (L2<->memory) transfers, quantifying how the FVC's
	// fill/writeback reduction propagates down the hierarchy.
	L2 *cache.Params

	// NoWriteMissAllocate disables the paper's write-miss exception
	// (allocating a frequent-value store directly into the FVC).
	// Ablation knob; zero value is the paper's design.
	NoWriteMissAllocate bool
	// OnlineFVTEvery, when positive, replaces the static profiled FVT
	// with online identification: a Space-Saving sketch observes every
	// accessed value, and every OnlineFVTEvery accesses the FVT is
	// re-derived from the sketch's current top values. Replacing the
	// table flushes the FVC (its codes are meaningless under a new
	// table), writing back dirty frequent words. This implements the
	// paper's "fast method for identifying the frequently accessed
	// values" as a hardware mechanism instead of a profiling pass;
	// FrequentValues then only seeds the initial table and may be
	// empty.
	OnlineFVTEvery uint64
	// SkipEmptyFootprints skips inserting an evicted line's footprint
	// into the FVC when none of its words is frequent. Ablation knob;
	// zero value is the paper's design (always insert).
	SkipEmptyFootprints bool
	// VerifyValues makes every FVC read hit assert that the decoded
	// value equals architectural memory, and every load event assert
	// that its value matches the replica. Used by tests; costs a map
	// lookup per access.
	VerifyValues bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Main.Validate(); err != nil {
		return err
	}
	if c.FVC != nil {
		if c.VictimEntries > 0 {
			return fmt.Errorf("core: FVC and victim cache are mutually exclusive")
		}
		if err := c.FVC.Validate(); err != nil {
			return err
		}
		if c.FVC.LineBytes != c.Main.LineBytes {
			return fmt.Errorf("core: FVC line size %d must match main cache line size %d",
				c.FVC.LineBytes, c.Main.LineBytes)
		}
		if len(c.FrequentValues) == 0 && c.OnlineFVTEvery == 0 {
			return fmt.Errorf("core: FVC requires FrequentValues (or OnlineFVTEvery for online identification)")
		}
	}
	if c.VictimEntries < 0 {
		return fmt.Errorf("core: VictimEntries must be >= 0, got %d", c.VictimEntries)
	}
	if c.L2 != nil {
		if err := c.L2.Validate(); err != nil {
			return err
		}
		if c.L2.LineBytes != c.Main.LineBytes {
			return fmt.Errorf("core: L2 line size %d must match main cache line size %d",
				c.L2.LineBytes, c.Main.LineBytes)
		}
		if c.L2.SizeBytes < c.Main.SizeBytes {
			return fmt.Errorf("core: L2 (%d bytes) must be at least as large as the main cache (%d bytes)",
				c.L2.SizeBytes, c.Main.SizeBytes)
		}
	}
	return nil
}

// HitSource identifies which structure satisfied an access.
type HitSource uint8

const (
	// Miss means no structure satisfied the access.
	Miss HitSource = iota
	// MainHit is a hit in the main cache.
	MainHit
	// FVCHit is a hit in the frequent value cache.
	FVCHit
	// VictimHit is a hit in the victim cache.
	VictimHit
)

// String names the source.
func (h HitSource) String() string {
	switch h {
	case Miss:
		return "miss"
	case MainHit:
		return "main"
	case FVCHit:
		return "fvc"
	case VictimHit:
		return "victim"
	}
	return "unknown"
}

// Stats accumulates hierarchy statistics.
type Stats struct {
	Loads  uint64
	Stores uint64

	MainHits   uint64
	FVCHits    uint64
	VictimHits uint64
	Misses     uint64

	// LineFetches counts full lines fetched from memory.
	LineFetches uint64
	// LineWritebacks counts full dirty lines written back from the
	// main or victim cache.
	LineWritebacks uint64
	// FVCWritebackWords counts frequent-value words written back from
	// dirty FVC entries (partial-line writebacks).
	FVCWritebackWords uint64
	// WriteMissAllocs counts stores allocated directly into the FVC.
	WriteMissAllocs uint64
	// TrafficWords is total words moved off chip: between the L1
	// level and memory, or — when an L2 is configured — between the L2
	// and memory (fetches + all writebacks at that boundary).
	TrafficWords uint64
	// FVTUpdates counts online frequent-value-table replacements.
	FVTUpdates uint64

	// L2Hits and L2Misses count L2 probes from L1-level fetches and
	// writebacks (zero without an L2).
	L2Hits   uint64
	L2Misses uint64
	// L2Writebacks counts dirty L2 evictions (off-chip line writes).
	L2Writebacks uint64
}

// Accesses returns loads + stores.
func (s Stats) Accesses() uint64 { return s.Loads + s.Stores }

// Minus returns the difference s - o, field by field. Use it to
// exclude a warmup prefix: snapshot stats at the warmup boundary and
// subtract from the final stats.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		Loads:             s.Loads - o.Loads,
		Stores:            s.Stores - o.Stores,
		MainHits:          s.MainHits - o.MainHits,
		FVCHits:           s.FVCHits - o.FVCHits,
		VictimHits:        s.VictimHits - o.VictimHits,
		Misses:            s.Misses - o.Misses,
		LineFetches:       s.LineFetches - o.LineFetches,
		LineWritebacks:    s.LineWritebacks - o.LineWritebacks,
		FVCWritebackWords: s.FVCWritebackWords - o.FVCWritebackWords,
		WriteMissAllocs:   s.WriteMissAllocs - o.WriteMissAllocs,
		TrafficWords:      s.TrafficWords - o.TrafficWords,
		FVTUpdates:        s.FVTUpdates - o.FVTUpdates,
		L2Hits:            s.L2Hits - o.L2Hits,
		L2Misses:          s.L2Misses - o.L2Misses,
		L2Writebacks:      s.L2Writebacks - o.L2Writebacks,
	}
}

// Plus returns the sum s + o, field by field. The chunk-parallel
// replay engine accumulates per-range partial stats with it.
func (s Stats) Plus(o Stats) Stats {
	return Stats{
		Loads:             s.Loads + o.Loads,
		Stores:            s.Stores + o.Stores,
		MainHits:          s.MainHits + o.MainHits,
		FVCHits:           s.FVCHits + o.FVCHits,
		VictimHits:        s.VictimHits + o.VictimHits,
		Misses:            s.Misses + o.Misses,
		LineFetches:       s.LineFetches + o.LineFetches,
		LineWritebacks:    s.LineWritebacks + o.LineWritebacks,
		FVCWritebackWords: s.FVCWritebackWords + o.FVCWritebackWords,
		WriteMissAllocs:   s.WriteMissAllocs + o.WriteMissAllocs,
		TrafficWords:      s.TrafficWords + o.TrafficWords,
		FVTUpdates:        s.FVTUpdates + o.FVTUpdates,
		L2Hits:            s.L2Hits + o.L2Hits,
		L2Misses:          s.L2Misses + o.L2Misses,
		L2Writebacks:      s.L2Writebacks + o.L2Writebacks,
	}
}

// Hits returns the total hits across structures.
func (s Stats) Hits() uint64 { return s.MainHits + s.FVCHits + s.VictimHits }

// MissRate returns misses/accesses in [0,1]; 0 for an empty run.
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// TrafficBytes returns the off-chip traffic in bytes.
func (s Stats) TrafficBytes() uint64 { return s.TrafficWords * trace.WordBytes }

// System is the simulated hierarchy.
type System struct {
	cfg  Config
	main *cache.Cache
	fv   *fvc.FVC
	vc   *cache.VictimCache
	l2   *cache.Cache
	mem  *memsim.Memory

	// Online FVT identification state (nil/zero when disabled).
	sketch   *freqval.SpaceSaving
	sinceFVT uint64

	stats Stats
	wpl   int

	// dm is the main cache's inlinable direct-mapped probe view; dmOK
	// selects it over the generic Touch on the per-access fast path.
	dm   cache.DMView
	dmOK bool

	// footprint and fpCodes are the reusable scratch buffers
	// handleMainVictim encodes evicted lines through; owning them here
	// keeps the per-eviction path allocation free.
	footprint []uint32
	fpCodes   []uint8

	// extMem marks a System whose architectural replica is a shared
	// memory image owned by a SystemSet. The set's driver applies each
	// store to the image exactly once, after every member system has
	// processed the event, so the System itself must not advance it
	// (and every member observes pre-store memory during its protocol
	// step, exactly as a privately-owned replica would).
	extMem bool
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) { return newSystem(cfg, nil) }

// newSystem wires a System to the given shared memory image; nil means
// the System owns a private replica (the New path).
func newSystem(cfg Config, shared *memsim.Memory) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem := shared
	if mem == nil {
		mem = memsim.NewMemory()
	}
	s := &System{
		cfg:       cfg,
		main:      cache.New(cfg.Main),
		mem:       mem,
		extMem:    shared != nil,
		wpl:       cfg.Main.WordsPerLine(),
		footprint: make([]uint32, cfg.Main.WordsPerLine()),
		fpCodes:   make([]uint8, cfg.Main.WordsPerLine()),
	}
	s.dm, s.dmOK = s.main.DM()
	if cfg.FVC != nil {
		vals := cfg.FrequentValues
		if max := fvc.MaxValues(cfg.FVC.Bits); len(vals) > max {
			vals = vals[:max]
		}
		tbl, err := fvc.NewTable(cfg.FVC.Bits, vals)
		if err != nil {
			return nil, err
		}
		f, err := fvc.New(*cfg.FVC, tbl)
		if err != nil {
			return nil, err
		}
		s.fv = f
	}
	if cfg.VictimEntries > 0 {
		s.vc = cache.NewVictimCache(cfg.VictimEntries, cfg.Main.LineBytes)
	}
	if cfg.L2 != nil {
		s.l2 = cache.New(*cfg.L2)
	}
	if cfg.FVC != nil && cfg.OnlineFVTEvery > 0 {
		// Track several times more candidates than the table holds so
		// rising values are already counted when they enter the top.
		s.sketch = freqval.NewSpaceSaving(8 * fvc.MaxValues(cfg.FVC.Bits))
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Stats returns a copy of the accumulated statistics.
func (s *System) Stats() Stats { return s.stats }

// Config returns the configuration.
func (s *System) Config() Config { return s.cfg }

// Main returns the main cache (for the invariant audit and tests).
func (s *System) Main() *cache.Cache { return s.main }

// FVC returns the attached frequent value cache, or nil.
func (s *System) FVC() *fvc.FVC { return s.fv }

// Victim returns the attached victim cache, or nil.
func (s *System) Victim() *cache.VictimCache { return s.vc }

// L2 returns the attached second-level cache, or nil.
func (s *System) L2() *cache.Cache { return s.l2 }

// MemWord reads the architectural memory replica (for tests).
func (s *System) MemWord(addr uint32) uint32 { return s.mem.LoadWord(addr) }

// Emit implements trace.Sink: loads and stores drive the hierarchy,
// other events are ignored.
func (s *System) Emit(e trace.Event) {
	if !e.Op.IsAccess() {
		return
	}
	s.Access(e.Op, e.Addr, e.Value)
}

// ReplayColumns drives the hierarchy from columnar event buffers (the
// shape trace.Recording stores), skipping non-access events. It is
// semantically identical to calling Access per access event, but the
// common replay shape — direct-mapped main cache, no online sketch, no
// value verification — runs a specialized loop: the inlinable
// direct-mapped probe and the loop-invariant configuration tests stay
// in registers, and the load/store/hit tallies accumulate in locals
// that merge into Stats once at the end.
func (s *System) ReplayColumns(ops []trace.Op, addrs, values []uint32) {
	if len(addrs) != len(ops) || len(values) != len(ops) {
		panic("core: ReplayColumns column length mismatch")
	}
	if !s.dmOK || s.sketch != nil || s.cfg.VerifyValues || s.extMem {
		for i, op := range ops {
			if op.IsAccess() {
				s.Access(op, addrs[i], values[i])
			}
		}
		return
	}
	dm := s.dm
	mem := s.mem
	var loads, stores, mainHits, misses uint64
	for i, op := range ops {
		if !op.IsAccess() {
			continue
		}
		store := op == trace.Store
		addr, value := addrs[i], values[i]
		if dm.Touch(addr, store) {
			mainHits++
		} else {
			switch s.access(store, addr, value) {
			case MainHit:
				mainHits++
			case FVCHit:
				s.stats.FVCHits++
			case VictimHit:
				s.stats.VictimHits++
			default:
				misses++
			}
		}
		if store {
			mem.StoreWord(addr, value)
			stores++
		} else {
			loads++
		}
	}
	s.stats.Loads += loads
	s.stats.Stores += stores
	s.stats.MainHits += mainHits
	s.stats.Misses += misses
}

// Access simulates one word access and returns the structure that
// satisfied it (or Miss).
func (s *System) Access(op trace.Op, addr, value uint32) HitSource {
	store := op == trace.Store
	if store {
		s.stats.Stores++
	} else {
		s.stats.Loads++
		if s.cfg.VerifyValues {
			if got := s.mem.LoadWord(addr); got != value {
				panic(&VerificationError{Where: "load-event", Addr: addr, Want: value, Got: got})
			}
		}
	}

	if s.sketch != nil {
		s.sketch.Observe(value)
		s.sinceFVT++
		if s.sinceFVT >= s.cfg.OnlineFVTEvery {
			s.sinceFVT = 0
			s.updateFVT()
		}
	}

	src := s.access(store, addr, value)

	// Update the architectural replica after the protocol step so that
	// FVC verification and footprints observe pre-store values
	// consistently; the replica must reflect the store before the next
	// access. A shared image (extMem) is advanced once by the
	// SystemSet driver instead, after every member processed the event.
	if store && !s.extMem {
		s.mem.StoreWord(addr, value)
	}

	switch src {
	case MainHit:
		s.stats.MainHits++
	case FVCHit:
		s.stats.FVCHits++
	case VictimHit:
		s.stats.VictimHits++
	default:
		s.stats.Misses++
	}
	return src
}

func (s *System) access(store bool, addr, value uint32) HitSource {
	// Main cache and FVC/VC are probed in parallel; the exclusive
	// contract guarantees at most one hits. The direct-mapped view's
	// Touch inlines here, which the generic Touch cannot.
	if s.dmOK {
		if s.dm.Touch(addr, store) {
			return MainHit
		}
	} else if s.main.Touch(addr, store) {
		return MainHit
	}
	if s.fv != nil {
		return s.accessWithFVC(store, addr, value)
	}
	if s.vc != nil {
		return s.accessWithVictim(store, addr)
	}
	s.fetchInto(addr, store)
	return Miss
}

// accessWithFVC implements Section 3's protocol after a main-cache miss.
func (s *System) accessWithFVC(store bool, addr, value uint32) HitSource {
	p := s.fv.Lookup(addr)
	if p.TagMatch {
		if !store && p.WordFrequent {
			if s.cfg.VerifyValues {
				if got := s.mem.LoadWord(addr); got != p.Value {
					panic(&VerificationError{Where: "fvc-decode", Addr: addr, Want: got, Got: p.Value})
				}
			}
			return FVCHit
		}
		if store && s.fv.WriteWord(addr, value) {
			return FVCHit
		}
		// Tag match but the word is infrequent (load) or the value is
		// infrequent (store): bring the real line into the main cache.
		// The FVC's frequent words are the latest values; the replica
		// already reflects them, so the overlay is traffic accounting
		// plus dirtiness transfer.
		entry := s.fv.InvalidateFast(addr)
		s.fetchIntoWithDirty(addr, store, entry.Valid && entry.Dirty)
		return Miss
	}
	// Miss in both structures.
	if store && !s.cfg.NoWriteMissAllocate {
		if s.fv.Table().Contains(value) {
			displaced := s.fv.InstallWriteMissFast(addr, value)
			s.writebackFVCEntry(displaced)
			s.stats.WriteMissAllocs++
			// The store is satisfied by the FVC without a line fetch:
			// per the paper this "eliminates or delays the cache miss"
			// (a later read of a word marked infrequent will miss), so
			// it is accounted as an FVC hit.
			return FVCHit
		}
	}
	s.fetchInto(addr, store)
	return Miss
}

// accessWithVictim implements Jouppi's victim cache after a main miss.
func (s *System) accessWithVictim(store bool, addr uint32) HitSource {
	if ln, ok := s.vc.Probe(addr); ok {
		// Swap: the victim line moves into the main cache and the
		// displaced main line takes its place in the victim cache.
		v := s.main.Insert(addr, ln.Dirty || store)
		if v.Valid {
			disp := s.vc.Insert(v.Tag, v.Dirty)
			s.writebackLine(disp)
		}
		return VictimHit
	}
	s.fetchLine(addr)
	v := s.main.Insert(addr, store)
	if v.Valid {
		disp := s.vc.Insert(v.Tag, v.Dirty)
		s.writebackLine(disp)
	}
	return Miss
}

// fetchInto fetches addr's line from memory into the main cache.
func (s *System) fetchInto(addr uint32, store bool) {
	s.fetchIntoWithDirty(addr, store, false)
}

// fetchIntoWithDirty fetches addr's line, marking it dirty when the
// access is a store or when merged FVC words were dirty.
func (s *System) fetchIntoWithDirty(addr uint32, store, mergedDirty bool) {
	s.fetchLine(addr)
	v := s.main.Insert(addr, store || mergedDirty)
	s.handleMainVictim(v)
}

// fetchLine brings addr's line to the L1 level: from the L2 when
// present and hit, otherwise from memory (off-chip traffic).
func (s *System) fetchLine(addr uint32) {
	s.stats.LineFetches++
	if s.l2 == nil {
		s.stats.TrafficWords += uint64(s.wpl)
		return
	}
	if s.l2.Touch(addr, false) {
		s.stats.L2Hits++
		return
	}
	s.stats.L2Misses++
	s.stats.TrafficWords += uint64(s.wpl)
	s.l2Victim(s.l2.Insert(addr, false))
}

// writebackToBelow sends a dirty full line below the L1 level: into
// the L2 when present (write-allocate without fetch, since the whole
// line is being written), else straight to memory.
func (s *System) writebackToBelow(lineTag uint32) {
	if s.l2 == nil {
		s.stats.TrafficWords += uint64(s.wpl)
		return
	}
	addr := s.main.BaseAddr(lineTag)
	if s.l2.Touch(addr, true) {
		s.stats.L2Hits++
		return
	}
	s.stats.L2Misses++
	s.l2Victim(s.l2.Insert(addr, true))
}

// l2Victim accounts for a line displaced from the L2.
func (s *System) l2Victim(v cache.Victim) {
	if v.Valid && v.Dirty {
		s.stats.L2Writebacks++
		s.stats.TrafficWords += uint64(s.wpl)
	}
}

// handleMainVictim writes back a dirty evicted line and, when an FVC is
// attached, inserts the line's frequent-value footprint.
func (s *System) handleMainVictim(v cache.Victim) {
	if !v.Valid {
		return
	}
	if v.Dirty {
		s.stats.LineWritebacks++
		s.writebackToBelow(v.Tag)
	}
	if s.fv == nil {
		return
	}
	base := s.main.BaseAddr(v.Tag)
	words := s.footprint
	s.mem.LoadLine(base, words)
	any := s.fv.EncodeWords(words, s.fpCodes)
	if s.cfg.SkipEmptyFootprints && !any {
		return
	}
	displaced := s.fv.InstallCodes(s.fv.LineAddr(base), s.fpCodes)
	s.writebackFVCEntry(displaced)
}

// writebackFVCEntry accounts for the partial writeback of a displaced
// dirty FVC entry (only its frequent words hold data). With an L2, the
// words merge into the L2's copy of the line; without one they go off
// chip.
func (s *System) writebackFVCEntry(e fvc.Displaced) {
	if !e.Valid || !e.Dirty {
		return
	}
	words := uint64(e.FreqWords)
	s.stats.FVCWritebackWords += words
	if s.l2 == nil {
		s.stats.TrafficWords += words
		return
	}
	addr := e.Tag << uint32(log2w(s.cfg.Main.LineBytes))
	if s.l2.Touch(addr, true) {
		s.stats.L2Hits++
		return
	}
	s.stats.L2Misses++
	s.l2Victim(s.l2.Insert(addr, true))
}

// log2w is a tiny log2 for power-of-two line sizes.
func log2w(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// writebackLine accounts for a dirty full-line writeback (victim cache
// displacement).
func (s *System) writebackLine(v cache.Victim) {
	if v.Valid && v.Dirty {
		s.stats.LineWritebacks++
		s.writebackToBelow(v.Tag)
	}
}

// updateFVT re-derives the frequent value table from the sketch and,
// if the value set changed, installs it (flushing the FVC).
func (s *System) updateFVT() {
	want := s.sketch.TopValues(fvc.MaxValues(s.cfg.FVC.Bits))
	cur := s.fv.Table().Values()
	if equalSets(want, cur) {
		return
	}
	tbl, err := fvc.NewTable(s.cfg.FVC.Bits, want)
	if err != nil {
		// Sketch top values are distinct by construction; a failure
		// here is a programming error.
		panic(err)
	}
	dirtyWords, err := s.fv.ReplaceTable(tbl)
	if err != nil {
		panic(err)
	}
	s.stats.FVTUpdates++
	s.stats.FVCWritebackWords += uint64(dirtyWords)
	s.stats.TrafficWords += uint64(dirtyWords)
}

func equalSets(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[uint32]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	for _, v := range b {
		if _, ok := set[v]; !ok {
			return false
		}
	}
	return true
}

// CachedInBoth reports whether any word of addr's line is readable from
// both the main cache and the FVC — the exclusivity invariant says this
// must never be true. Exposed for property tests.
func (s *System) CachedInBoth(addr uint32) bool {
	if s.fv == nil {
		return false
	}
	return s.main.Lookup(addr) && s.fv.Lookup(addr).TagMatch
}
