package core

import (
	"math/rand"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

func l2Config() Config {
	return Config{
		Main: cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		L2:   &cache.Params{SizeBytes: 256, LineBytes: 16, Assoc: 2},
	}
}

func TestL2Validate(t *testing.T) {
	if err := l2Config().Validate(); err != nil {
		t.Errorf("good L2 config rejected: %v", err)
	}
	bad := l2Config()
	bad.L2.LineBytes = 32 // mismatched line size
	if err := bad.Validate(); err == nil {
		t.Error("mismatched L2 line size must be rejected")
	}
	tiny := l2Config()
	tiny.L2.SizeBytes = 32 // smaller than L1
	if err := tiny.Validate(); err == nil {
		t.Error("L2 smaller than L1 must be rejected")
	}
}

func TestL2AbsorbsConflictMisses(t *testing.T) {
	s := MustNew(l2Config())
	s.Access(trace.Load, 0x0, 0)  // miss: L2 miss, off-chip fetch
	s.Access(trace.Load, 0x40, 0) // conflicts in 64B L1, fits in 256B L2
	s.Access(trace.Load, 0x0, 0)  // L1 miss again, but L2 hit
	st := s.Stats()
	if st.L2Hits != 1 {
		t.Errorf("L2Hits = %d, want 1", st.L2Hits)
	}
	if st.L2Misses != 2 {
		t.Errorf("L2Misses = %d, want 2", st.L2Misses)
	}
	// Off-chip traffic: only the two cold fetches (4 words each).
	if st.TrafficWords != 8 {
		t.Errorf("TrafficWords = %d, want 8", st.TrafficWords)
	}
	if s.L2() == nil {
		t.Error("L2 accessor must return the cache")
	}
}

func TestL2AbsorbsWritebacks(t *testing.T) {
	s := MustNew(l2Config())
	s.Access(trace.Store, 0x0, 42) // dirty line in L1
	s.Access(trace.Load, 0x40, 0)  // evicts dirty line -> L2, not off-chip
	st := s.Stats()
	if st.LineWritebacks != 1 {
		t.Errorf("LineWritebacks = %d, want 1", st.LineWritebacks)
	}
	// Traffic: two fetches only; the writeback went into the L2.
	if st.TrafficWords != 8 {
		t.Errorf("TrafficWords = %d, want 8 (writeback absorbed)", st.TrafficWords)
	}
	// Re-reading the dirty line hits L2 (inclusive of the writeback).
	s.Access(trace.Load, 0x0, 42)
	if s.Stats().TrafficWords != 8 {
		t.Error("re-read of written-back line must not go off chip")
	}
}

func TestL2DirtyEvictionGoesOffChip(t *testing.T) {
	// 64B L1, 128B 1-way L2 (8 lines): cycle more dirty lines than L2
	// holds; displaced dirty L2 lines must count as off-chip writes.
	s := MustNew(Config{
		Main: cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		L2:   &cache.Params{SizeBytes: 128, LineBytes: 16, Assoc: 1},
	})
	for i := 0; i < 64; i++ {
		s.Access(trace.Store, uint32(i)*16, 7)
	}
	if s.Stats().L2Writebacks == 0 {
		t.Errorf("expected dirty L2 evictions: %+v", s.Stats())
	}
}

func TestL2WithFVC(t *testing.T) {
	s := MustNew(Config{
		Main:           cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues: []uint32{0, 1, 2},
		L2:             &cache.Params{SizeBytes: 256, LineBytes: 16, Assoc: 2},
		VerifyValues:   true,
	})
	rng := rand.New(rand.NewSource(5))
	replica := map[uint32]uint32{}
	for i := 0; i < 30000; i++ {
		addr := uint32(rng.Intn(256)) * 4
		if rng.Intn(2) == 0 {
			s.Access(trace.Load, addr, replica[addr])
		} else {
			v := []uint32{0, 1, 2, 0xbeef, 99}[rng.Intn(5)]
			s.Access(trace.Store, addr, v)
			replica[addr] = v
		}
	}
	st := s.Stats()
	if st.Hits()+st.Misses != st.Accesses() {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.FVCHits == 0 || st.L2Hits == 0 {
		t.Errorf("expected both FVC and L2 hits: %+v", st)
	}
}

// The FVC's traffic reduction must still be visible at the off-chip
// boundary when an L2 is present.
func TestFVCReducesOffChipTrafficBehindL2(t *testing.T) {
	run := func(withFVC bool) Stats {
		cfg := Config{
			Main: cache.Params{SizeBytes: 256, LineBytes: 16, Assoc: 1},
			L2:   &cache.Params{SizeBytes: 1 << 10, LineBytes: 16, Assoc: 2},
		}
		if withFVC {
			cfg.FVC = &fvc.Params{Entries: 32, LineBytes: 16, Bits: 3}
			cfg.FrequentValues = []uint32{0, 1, 2}
		}
		s := MustNew(cfg)
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 60000; i++ {
			addr := uint32(rng.Intn(2048)) * 4 // 8KB: exceeds the L2
			if rng.Intn(3) == 0 {
				s.Access(trace.Store, addr, uint32(rng.Intn(3))) // frequent values
			} else {
				s.Access(trace.Load, addr, s.MemWord(addr))
			}
		}
		return s.Stats()
	}
	base, aug := run(false), run(true)
	if aug.TrafficWords >= base.TrafficWords {
		t.Errorf("FVC should reduce off-chip traffic behind an L2: base=%d aug=%d",
			base.TrafficWords, aug.TrafficWords)
	}
}
