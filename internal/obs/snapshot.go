package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// SnapshotSchema identifies the telemetry.json format. Bump on
// incompatible changes; ValidateSnapshot rejects other schemas.
const SnapshotSchema = "fvcache-telemetry/v1"

// Snapshot is a frozen, serializable view of a Registry: every
// counter, gauge and histogram plus the run's phase tree. It is what
// the cmd binaries write to telemetry.json, making benchmark and sweep
// trajectories machine-diffable across runs.
type Snapshot struct {
	Schema     string    `json:"schema"`
	CapturedAt time.Time `json:"captured_at"`
	// UptimeMS is the registry's age at capture (root span duration).
	UptimeMS   int64                        `json:"uptime_ms"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Latencies holds the exact-quantile (HDR-style) histograms, keyed
	// like Histograms (Labeled names pass through).
	Latencies map[string]QuantileSnapshot `json:"latencies,omitempty"`
	Phases    *PhaseNode                  `json:"phases"`
	// Requests holds recent per-request span trees from the flight
	// recorder, newest first, when a provider is installed (at most
	// maxSnapshotRequests of them, however large the live ring is).
	Requests []RequestTrace `json:"requests,omitempty"`
}

// maxSnapshotRequests bounds the request traces embedded in an
// exported snapshot, keeping telemetry.json reviewable even when the
// flight recorder is sized for deep /debug/requests history.
const maxSnapshotRequests = 256

// QuantileSnapshot is one QuantileHist frozen: headline quantiles plus
// the cumulative non-empty buckets (Le = highest value equivalent to
// the bucket, so bounds are strictly increasing).
type QuantileSnapshot struct {
	SigFigs int      `json:"sigfigs"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	P999    uint64   `json:"p999"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// RequestTrace is one request's frozen span tree as recorded by the
// flight recorder. Spans are stored flat with parent indices: Parent
// is -1 for a root span and otherwise indexes an earlier span in the
// slice (parents always precede children).
type RequestTrace struct {
	ID         string        `json:"id"`
	Endpoint   string        `json:"endpoint"`
	Workload   string        `json:"workload,omitempty"`
	Status     int           `json:"status"`
	Outcome    string        `json:"outcome,omitempty"`
	Error      string        `json:"error,omitempty"`
	Start      time.Time     `json:"start"`
	DurationUS int64         `json:"duration_us"`
	Dropped    int           `json:"dropped,omitempty"`
	Spans      []RequestSpan `json:"spans,omitempty"`
}

// RequestSpan is one stage of a request trace. StartUS is the offset
// from the trace start.
type RequestSpan struct {
	Name       string `json:"name"`
	Parent     int    `json:"parent"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
}

// HistogramSnapshot is one histogram's frozen buckets. Buckets are
// cumulative Prometheus-style: Count(le) observations were <= Le.
// Zero-count prefixes/suffixes are trimmed.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Le    uint64 `json:"le"` // upper bound, inclusive
	Count uint64 `json:"count"`
}

// PhaseNode is one frozen span of the phase tree.
type PhaseNode struct {
	Name       string       `json:"name"`
	DurationMS int64        `json:"duration_ms"`
	Open       bool         `json:"open,omitempty"`
	Dropped    int          `json:"dropped,omitempty"`
	Children   []*PhaseNode `json:"children,omitempty"`
}

// Snapshot freezes the registry. Concurrent metric updates during the
// capture land in either side — each individual metric read is atomic.
func (r *Registry) Snapshot() *Snapshot {
	now := time.Now()
	r.mu.Lock()
	s := &Snapshot{
		Schema:     SnapshotSchema,
		CapturedAt: now.UTC(),
		UptimeMS:   now.Sub(r.start).Milliseconds(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.freeze()
	}
	if len(r.quants) > 0 {
		s.Latencies = make(map[string]QuantileSnapshot, len(r.quants))
		for name, q := range r.quants {
			s.Latencies[name] = q.freeze()
		}
	}
	reqFn := r.reqTraces
	root := r.root
	r.mu.Unlock()
	if reqFn != nil {
		s.Requests = reqFn()
		// Bound the exported artifact: the live flight recorder may be
		// sized for /debug/requests inspection (thousands of slots), but
		// a telemetry snapshot keeps only the most recent traces.
		if len(s.Requests) > maxSnapshotRequests {
			s.Requests = s.Requests[:maxSnapshotRequests]
		}
	}
	s.Phases = root.snapshot(now)
	return s
}

// freeze converts the histogram's per-bit buckets into cumulative
// (le, count) pairs, dropping empty buckets.
func (h *Histogram) freeze() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := uint64(1)<<uint(i) - 1 // bits.Len64(v) == i  ⇒  v <= 2^i - 1
		if i == 0 {
			le = 0
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: cum})
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteSnapshotFile captures r and writes it to path atomically (temp
// file + rename), so a crash mid-write cannot leave a torn artifact.
func WriteSnapshotFile(path string, r *Registry) error {
	s := r.Snapshot()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ValidateSnapshot parses data as a telemetry snapshot and checks its
// schema: the schema id must match, the capture time must be set, the
// phase tree must be rooted and every histogram's cumulative buckets
// must be monotonic in both bound and count. Returns the parsed
// snapshot so callers can assert on contents.
func ValidateSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: telemetry snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: telemetry schema %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.CapturedAt.IsZero() {
		return nil, fmt.Errorf("obs: telemetry snapshot has no capture time")
	}
	if s.UptimeMS < 0 {
		return nil, fmt.Errorf("obs: negative uptime %dms", s.UptimeMS)
	}
	if s.Phases == nil || s.Phases.Name == "" {
		return nil, fmt.Errorf("obs: telemetry snapshot has no phase tree")
	}
	if err := validatePhase(s.Phases); err != nil {
		return nil, err
	}
	for name, h := range s.Histograms {
		var prevLe, prevCount uint64
		for i, b := range h.Buckets {
			if i > 0 && (b.Le <= prevLe || b.Count < prevCount) {
				return nil, fmt.Errorf("obs: histogram %q buckets not monotonic at le=%d", name, b.Le)
			}
			prevLe, prevCount = b.Le, b.Count
		}
		if n := len(h.Buckets); n > 0 && h.Buckets[n-1].Count != h.Count {
			return nil, fmt.Errorf("obs: histogram %q cumulative count %d != count %d",
				name, h.Buckets[n-1].Count, h.Count)
		}
	}
	for name, q := range s.Latencies {
		if q.SigFigs < 1 || q.SigFigs > 5 {
			return nil, fmt.Errorf("obs: latency %q has sigfigs %d outside [1,5]", name, q.SigFigs)
		}
		var prevLe, prevCount uint64
		for i, b := range q.Buckets {
			if i > 0 && (b.Le <= prevLe || b.Count < prevCount) {
				return nil, fmt.Errorf("obs: latency %q buckets not monotonic at le=%d", name, b.Le)
			}
			prevLe, prevCount = b.Le, b.Count
		}
		if n := len(q.Buckets); n > 0 && q.Buckets[n-1].Count != q.Count {
			return nil, fmt.Errorf("obs: latency %q cumulative count %d != count %d",
				name, q.Buckets[n-1].Count, q.Count)
		}
		if q.Count > 0 && (q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.P999) {
			return nil, fmt.Errorf("obs: latency %q quantiles not monotonic (p50=%d p90=%d p99=%d p999=%d)",
				name, q.P50, q.P90, q.P99, q.P999)
		}
	}
	for i := range s.Requests {
		if err := validateRequestTrace(&s.Requests[i]); err != nil {
			return nil, err
		}
	}
	return &s, nil
}

// validateRequestTrace checks one request trace's well-formedness: a
// non-empty ID, sane durations, and a span list in which every parent
// index refers to an earlier span (or -1 for roots).
func validateRequestTrace(t *RequestTrace) error {
	if t.ID == "" {
		return fmt.Errorf("obs: request trace with empty id")
	}
	if t.DurationUS < 0 {
		return fmt.Errorf("obs: request %q has negative duration", t.ID)
	}
	for i, sp := range t.Spans {
		if sp.Name == "" {
			return fmt.Errorf("obs: request %q span %d unnamed", t.ID, i)
		}
		if sp.Parent < -1 || sp.Parent >= i {
			return fmt.Errorf("obs: request %q span %q has parent %d (must be -1 or an earlier span)",
				t.ID, sp.Name, sp.Parent)
		}
		if sp.StartUS < 0 || sp.DurationUS < 0 {
			return fmt.Errorf("obs: request %q span %q has negative time", t.ID, sp.Name)
		}
	}
	return nil
}

// validatePhase checks one phase subtree: named nodes, sane durations.
func validatePhase(n *PhaseNode) error {
	if n.Name == "" {
		return fmt.Errorf("obs: unnamed phase node")
	}
	if n.DurationMS < 0 {
		return fmt.Errorf("obs: phase %q has negative duration", n.Name)
	}
	for _, c := range n.Children {
		if err := validatePhase(c); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the registry in Prometheus text exposition
// format. Labeled metric names (see Labeled) pass through unchanged;
// other characters invalid in metric names are mapped to '_'.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range names(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", promBase(name), promName(name), s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", promBase(name), promName(name), s.Gauges[name])
	}
	// Labeled series of one metric share a base name: emit one TYPE
	// line per base (names() sorts, so same-base series are adjacent)
	// and carry the series labels onto every bucket/sum/count line.
	typed := ""
	for _, name := range names(s.Histograms) {
		h := s.Histograms[name]
		base, labels := promSplit(name)
		if base != typed {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			typed = base
		}
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLe(labels, strconv.FormatUint(bk.Le, 10)), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLe(labels, "+Inf"), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %d\n%s_count%s %d\n", base, promSuffix(labels), h.Sum, base, promSuffix(labels), h.Count)
	}
	typed = ""
	for _, name := range names(s.Latencies) {
		q := s.Latencies[name]
		base, labels := promSplit(name)
		if base != typed {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			typed = base
		}
		for _, bk := range q.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLe(labels, strconv.FormatUint(bk.Le, 10)), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLe(labels, "+Inf"), q.Count)
		fmt.Fprintf(&b, "%s_sum%s %d\n%s_count%s %d\n", base, promSuffix(labels), q.Sum, base, promSuffix(labels), q.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promBase strips a label suffix and sanitizes the bare metric name.
func promBase(name string) string {
	base, _ := promSplit(name)
	return base
}

// promSplit splits a Labeled name into the sanitized base and the
// label body without braces ("" when unlabeled).
func promSplit(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return sanitize(name[:i]), strings.TrimSuffix(name[i+1:], "}")
	}
	return sanitize(name), ""
}

// promLe renders a bucket label set: the series labels (if any) with
// le appended.
func promLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

// promSuffix renders the series labels for _sum/_count lines.
func promSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promName sanitizes the name part while preserving a {label="x"}
// suffix produced by Labeled.
func promName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return sanitize(name[:i]) + name[i:]
	}
	return sanitize(name)
}

// sanitize maps characters outside [a-zA-Z0-9_:] to '_'.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}
