package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// SnapshotSchema identifies the telemetry.json format. Bump on
// incompatible changes; ValidateSnapshot rejects other schemas.
const SnapshotSchema = "fvcache-telemetry/v1"

// Snapshot is a frozen, serializable view of a Registry: every
// counter, gauge and histogram plus the run's phase tree. It is what
// the cmd binaries write to telemetry.json, making benchmark and sweep
// trajectories machine-diffable across runs.
type Snapshot struct {
	Schema     string    `json:"schema"`
	CapturedAt time.Time `json:"captured_at"`
	// UptimeMS is the registry's age at capture (root span duration).
	UptimeMS   int64                        `json:"uptime_ms"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Phases     *PhaseNode                   `json:"phases"`
}

// HistogramSnapshot is one histogram's frozen buckets. Buckets are
// cumulative Prometheus-style: Count(le) observations were <= Le.
// Zero-count prefixes/suffixes are trimmed.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Le    uint64 `json:"le"` // upper bound, inclusive
	Count uint64 `json:"count"`
}

// PhaseNode is one frozen span of the phase tree.
type PhaseNode struct {
	Name       string       `json:"name"`
	DurationMS int64        `json:"duration_ms"`
	Open       bool         `json:"open,omitempty"`
	Dropped    int          `json:"dropped,omitempty"`
	Children   []*PhaseNode `json:"children,omitempty"`
}

// Snapshot freezes the registry. Concurrent metric updates during the
// capture land in either side — each individual metric read is atomic.
func (r *Registry) Snapshot() *Snapshot {
	now := time.Now()
	r.mu.Lock()
	s := &Snapshot{
		Schema:     SnapshotSchema,
		CapturedAt: now.UTC(),
		UptimeMS:   now.Sub(r.start).Milliseconds(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.freeze()
	}
	root := r.root
	r.mu.Unlock()
	s.Phases = root.snapshot(now)
	return s
}

// freeze converts the histogram's per-bit buckets into cumulative
// (le, count) pairs, dropping empty buckets.
func (h *Histogram) freeze() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := uint64(1)<<uint(i) - 1 // bits.Len64(v) == i  ⇒  v <= 2^i - 1
		if i == 0 {
			le = 0
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: cum})
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteSnapshotFile captures r and writes it to path atomically (temp
// file + rename), so a crash mid-write cannot leave a torn artifact.
func WriteSnapshotFile(path string, r *Registry) error {
	s := r.Snapshot()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ValidateSnapshot parses data as a telemetry snapshot and checks its
// schema: the schema id must match, the capture time must be set, the
// phase tree must be rooted and every histogram's cumulative buckets
// must be monotonic in both bound and count. Returns the parsed
// snapshot so callers can assert on contents.
func ValidateSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: telemetry snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: telemetry schema %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.CapturedAt.IsZero() {
		return nil, fmt.Errorf("obs: telemetry snapshot has no capture time")
	}
	if s.UptimeMS < 0 {
		return nil, fmt.Errorf("obs: negative uptime %dms", s.UptimeMS)
	}
	if s.Phases == nil || s.Phases.Name == "" {
		return nil, fmt.Errorf("obs: telemetry snapshot has no phase tree")
	}
	if err := validatePhase(s.Phases); err != nil {
		return nil, err
	}
	for name, h := range s.Histograms {
		var prevLe, prevCount uint64
		for i, b := range h.Buckets {
			if i > 0 && (b.Le <= prevLe || b.Count < prevCount) {
				return nil, fmt.Errorf("obs: histogram %q buckets not monotonic at le=%d", name, b.Le)
			}
			prevLe, prevCount = b.Le, b.Count
		}
		if n := len(h.Buckets); n > 0 && h.Buckets[n-1].Count != h.Count {
			return nil, fmt.Errorf("obs: histogram %q cumulative count %d != count %d",
				name, h.Buckets[n-1].Count, h.Count)
		}
	}
	return &s, nil
}

// validatePhase checks one phase subtree: named nodes, sane durations.
func validatePhase(n *PhaseNode) error {
	if n.Name == "" {
		return fmt.Errorf("obs: unnamed phase node")
	}
	if n.DurationMS < 0 {
		return fmt.Errorf("obs: phase %q has negative duration", n.Name)
	}
	for _, c := range n.Children {
		if err := validatePhase(c); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the registry in Prometheus text exposition
// format. Labeled metric names (see Labeled) pass through unchanged;
// other characters invalid in metric names are mapped to '_'.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range names(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", promBase(name), promName(name), s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", promBase(name), promName(name), s.Gauges[name])
	}
	for _, name := range names(s.Histograms) {
		h := s.Histograms[name]
		base := promBase(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", base, bk.Le, bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", base, h.Sum, base, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promBase strips a label suffix and sanitizes the bare metric name.
func promBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return sanitize(name)
}

// promName sanitizes the name part while preserving a {label="x"}
// suffix produced by Labeled.
func promName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return sanitize(name[:i]) + name[i:]
	}
	return sanitize(name)
}

// sanitize maps characters outside [a-zA-Z0-9_:] to '_'.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}
