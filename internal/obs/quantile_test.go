package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestQuantileOracle checks the HDR error guarantee against a
// sorted-sample oracle: for every queried q, the histogram answer must
// be >= the true sample quantile and within the configured relative
// error above it.
func TestQuantileOracle(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, sig := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(42))
		h := NewQuantileHist(sig)
		samples := make([]uint64, 0, 20000)
		// Mix of distributions: uniform small, log-uniform wide, and a
		// heavy tail — exercises unit-resolution and scaled buckets.
		for i := 0; i < 5000; i++ {
			v := uint64(rng.Intn(1000))
			samples = append(samples, v)
			h.Observe(v)
		}
		for i := 0; i < 5000; i++ {
			v := uint64(math.Exp(rng.Float64() * 20))
			samples = append(samples, v)
			h.Observe(v)
		}
		for i := 0; i < 5000; i++ {
			v := uint64(1_000_000) + uint64(rng.Intn(50_000_000))
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		relErr := math.Pow(10, -float64(sig))
		for _, q := range qs {
			rank := int(math.Ceil(q * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			oracle := samples[rank-1]
			got := h.Quantile(q)
			if got < oracle {
				t.Errorf("sigfigs=%d q=%g: got %d < oracle %d", sig, q, got, oracle)
			}
			bound := oracle + uint64(float64(oracle)*relErr) + 1
			if got > bound {
				t.Errorf("sigfigs=%d q=%g: got %d > bound %d (oracle %d)", sig, q, got, bound, oracle)
			}
		}
		if h.Count() != uint64(len(samples)) {
			t.Errorf("sigfigs=%d: count %d, want %d", sig, h.Count(), len(samples))
		}
	}
}

// TestQuantileRoundTrip pins the bucket mapping: every representative
// value must land in a bucket whose highest-equivalent bound is >= the
// value and within relative error of it.
func TestQuantileRoundTrip(t *testing.T) {
	h := NewQuantileHist(2)
	relErr := 0.01
	for _, v := range []uint64{0, 1, 2, 99, 100, 127, 128, 255, 256, 1023, 1024,
		12345, 1 << 20, 1<<30 + 7, QuantileMaxValue - 1, QuantileMaxValue} {
		idx := h.countsIndex(v)
		hi := h.highestEquivalent(idx)
		if hi < v {
			t.Errorf("v=%d: highestEquivalent %d < v", v, hi)
		}
		if float64(hi-v) > relErr*float64(v)+1 {
			t.Errorf("v=%d: highestEquivalent %d too far", v, hi)
		}
	}
}

// TestQuantileClamp checks values above the trackable maximum clamp to
// the top bucket instead of being dropped or panicking.
func TestQuantileClamp(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	h := NewQuantileHist(2)
	h.Observe(math.MaxUint64)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Quantile(1); got < QuantileMaxValue {
		t.Fatalf("Quantile(1) = %d, want >= %d", got, uint64(QuantileMaxValue))
	}
}

// TestQuantileMerge checks that merging two histograms is equivalent
// to observing the union, and that mismatched layouts are rejected.
func TestQuantileMerge(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	rng := rand.New(rand.NewSource(7))
	a, b, both := NewQuantileHist(2), NewQuantileHist(2), NewQuantileHist(2)
	for i := 0; i < 4000; i++ {
		v := uint64(math.Exp(rng.Float64() * 15))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merged count/sum %d/%d, want %d/%d", a.Count(), a.Sum(), both.Count(), both.Sum())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%g: merged %d != union %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	if err := a.Merge(NewQuantileHist(3)); err == nil {
		t.Fatal("merging mismatched sigfigs succeeded, want error")
	}
}

// TestQuantileSnapshotValid checks the frozen form passes
// ValidateSnapshot (bucket monotonicity, quantile ordering) and round
// trips through the registry.
func TestQuantileSnapshotValid(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRegistry()
	q := r.Quantile(Labeled("serve_latency_us", "endpoint", "measure"), 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		q.Observe(uint64(math.Exp(rng.Float64() * 18)))
	}
	r.SetRequestTraces(func() []RequestTrace {
		return []RequestTrace{{
			ID: "abc123", Endpoint: "measure", Status: 200, Outcome: "executed",
			DurationUS: 1500,
			Spans: []RequestSpan{
				{Name: "parse", Parent: -1, StartUS: 0, DurationUS: 10},
				{Name: "batch_wait", Parent: -1, StartUS: 10, DurationUS: 1400},
				{Name: "replay", Parent: 1, StartUS: 300, DurationUS: 1100},
			},
		}}
	})
	var buf strings.Builder
	s := r.Snapshot()
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ValidateSnapshot([]byte(buf.String()))
	if err != nil {
		t.Fatalf("ValidateSnapshot: %v", err)
	}
	ls, ok := parsed.Latencies[Labeled("serve_latency_us", "endpoint", "measure")]
	if !ok {
		t.Fatal("latency series missing from snapshot")
	}
	if ls.Count != 10000 || ls.P50 == 0 || ls.P50 > ls.P999 {
		t.Fatalf("bad latency snapshot: %+v", ls)
	}
	if len(parsed.Requests) != 1 || parsed.Requests[0].ID != "abc123" {
		t.Fatalf("request traces not exported: %+v", parsed.Requests)
	}
	// Prometheus export must include the latency series as a histogram.
	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	// The series labels must survive onto every bucket/sum/count line
	// (merged with le), not be stripped to a bare ambiguous name.
	for _, want := range []string{
		`serve_latency_us_bucket{endpoint="measure",le=`,
		`serve_latency_us_sum{endpoint="measure"}`,
		`serve_latency_us_count{endpoint="measure"} 10000`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus export missing %s:\n%s", want, prom.String())
		}
	}
	if strings.Count(prom.String(), "# TYPE serve_latency_us histogram") != 1 {
		t.Fatalf("TYPE line not deduplicated per base name:\n%s", prom.String())
	}
}

// TestValidateSnapshotRejectsBadTraces checks the new validations fire.
func TestValidateSnapshotRejectsBadTraces(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRegistry()
	r.SetRequestTraces(func() []RequestTrace {
		return []RequestTrace{{
			ID:     "bad",
			Status: 200,
			Spans:  []RequestSpan{{Name: "x", Parent: 5}}, // forward parent
		}}
	})
	var buf strings.Builder
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateSnapshot([]byte(buf.String())); err == nil {
		t.Fatal("snapshot with forward span parent validated, want error")
	}
}
