package obs

import (
	"sync"
	"time"
)

// maxSpanChildren bounds each span's fan-out: a sweep that opens a
// span per workload batch cannot grow the phase tree without bound.
// Children beyond the cap are not recorded; the parent counts them in
// Dropped so the snapshot still says how much was elided.
const maxSpanChildren = 128

// Span is one timed phase of a run. Spans form a tree under the
// registry's root: Begin opens a child, Done closes it. A Span may be
// used from multiple goroutines (children append under a lock), but a
// single span's Begin/Done pairing is the caller's responsibility.
//
// With telemetry disabled (obsoff), Begin returns a shared inert span
// and records nothing.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while open
	children []*Span
	dropped  int
}

// noopSpan soaks up Begin/Done calls in disabled builds.
var noopSpan = &Span{name: "disabled"}

// Begin opens a child phase of s and returns it. The child is
// registered immediately, so a snapshot taken mid-phase shows it as
// open.
func (s *Span) Begin(name string) *Span {
	if !Enabled {
		return noopSpan
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		s.mu.Unlock()
		// Unregistered but functional: timing still works, it just
		// won't appear in the tree.
		return child
	}
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// Done closes the span. Closing an already-closed span keeps the
// first end time.
func (s *Span) Done() {
	if !Enabled {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's phase name.
func (s *Span) Name() string { return s.name }

// Duration returns the span's elapsed time: end-start when closed,
// time since start while open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// snapshot freezes the span subtree into a PhaseNode.
func (s *Span) snapshot(now time.Time) *PhaseNode {
	s.mu.Lock()
	end, open := s.end, s.end.IsZero()
	if open {
		end = now
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	dropped := s.dropped
	s.mu.Unlock()

	n := &PhaseNode{
		Name:       s.name,
		DurationMS: end.Sub(s.start).Milliseconds(),
		Open:       open,
		Dropped:    dropped,
	}
	for _, c := range kids {
		n.Children = append(n.Children, c.snapshot(now))
	}
	return n
}
