//go:build !obsoff

package obs

// Enabled reports whether telemetry is compiled in. It is a constant,
// so in an obsoff build every `if !Enabled { return }` guard makes the
// instrumentation dead code the compiler eliminates outright — the
// hot-path increments literally compile to no-ops.
const Enabled = true
