package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if !Enabled {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (throughput, occupancy,
// progress fraction). Stored as atomic bits, so Set/Load are single
// word operations.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !Enabled {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the fixed bucket count of every Histogram: one
// bucket per bit length of the observed value, so bucket i counts
// observations in [2^(i-1), 2^i). Bounded by construction — a
// histogram can never grow, whatever it observes.
const HistogramBuckets = 65

// Histogram is a bounded log2-bucketed histogram of uint64
// observations (durations in milliseconds, sizes, counts). Lock-free:
// each Observe is two atomic adds.
type Histogram struct {
	counts [HistogramBuckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if !Enabled {
		return
	}
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Registry holds named metrics and the run's phase tree. Metric
// accessors are get-or-create and idempotent, so packages may resolve
// the same name independently; hot paths should resolve once (package
// variable) and increment the returned pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	quants   map[string]*QuantileHist
	// reqTraces, when set, supplies recent per-request traces for the
	// snapshot (a provider hook rather than a direct dependency, so the
	// flight recorder can live above this package).
	reqTraces func() []RequestTrace
	root      *Span
	start     time.Time
}

// NewRegistry returns an empty registry whose root span starts now.
func NewRegistry() *Registry {
	now := time.Now()
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		quants:   map[string]*QuantileHist{},
		root:     &Span{name: "run", start: now},
		start:    now,
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Quantile returns the named exact-quantile histogram, creating it
// with the given significant digits on first use. Subsequent lookups
// return the existing histogram regardless of sigfigs — the first
// registration wins, keeping the layout stable for merging.
func (r *Registry) Quantile(name string, sigfigs int) *QuantileHist {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := r.quants[name]
	if q == nil {
		q = NewQuantileHist(sigfigs)
		r.quants[name] = q
	}
	return q
}

// SetRequestTraces installs the provider of recent request traces
// included in snapshots (the flight recorder's export hook). Pass nil
// to detach.
func (r *Registry) SetRequestTraces(fn func() []RequestTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reqTraces = fn
}

// Root returns the registry's root span (the whole run's phase tree).
func (r *Registry) Root() *Span { return r.root }

// Start returns when the registry (and its root span) was created.
func (r *Registry) Start() time.Time { return r.start }

// Reset zeroes every metric in place (pointers previously handed out
// stay valid and registered) and restarts the phase tree. For tests;
// production code accumulates for the process lifetime.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
	for _, q := range r.quants {
		q.reset()
	}
	r.start = time.Now()
	r.root = &Span{name: "run", start: r.start}
}

// names returns the sorted metric names of kind-specific map m.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
