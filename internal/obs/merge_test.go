package obs

import (
	"reflect"
	"testing"
)

// Merging two frozen quantile snapshots must equal freezing one
// histogram that observed the union — the property the fleet metrics
// aggregation relies on.
func TestMergeQuantileSnapshotsExact(t *testing.T) {
	a := NewQuantileHist(2)
	b := NewQuantileHist(2)
	union := NewQuantileHist(2)
	for i := uint64(1); i <= 2000; i++ {
		v := i * i % 100003
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	merged, err := MergeQuantileSnapshots(a.freeze(), b.freeze())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := union.freeze()
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged snapshot differs from union:\n got %+v\nwant %+v", merged, want)
	}
}

func TestMergeQuantileSnapshotsEmptyAndMismatch(t *testing.T) {
	if !Enabled {
		t.Skip("histograms no-op under obsoff; nothing to merge")
	}
	h := NewQuantileHist(2)
	h.Observe(42)
	snap := h.freeze()

	if got, err := MergeQuantileSnapshots(QuantileSnapshot{}, snap); err != nil || !reflect.DeepEqual(got, snap) {
		t.Fatalf("empty+snap should return snap, got %+v err %v", got, err)
	}
	if got, err := MergeQuantileSnapshots(snap, QuantileSnapshot{}); err != nil || !reflect.DeepEqual(got, snap) {
		t.Fatalf("snap+empty should return snap, got %+v err %v", got, err)
	}
	other := NewQuantileHist(3)
	other.Observe(42)
	if _, err := MergeQuantileSnapshots(snap, other.freeze()); err == nil {
		t.Fatal("sigfigs mismatch must error")
	}
}

func TestMergeHistogramSnapshots(t *testing.T) {
	a := new(Histogram)
	b := new(Histogram)
	union := new(Histogram)
	for i := uint64(0); i < 500; i++ {
		v := i * 37 % 4096
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	merged := MergeHistogramSnapshots(a.freeze(), b.freeze())
	if want := union.freeze(); !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged differs from union:\n got %+v\nwant %+v", merged, want)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := &Snapshot{
		Counters: map[string]uint64{"reqs": 3, "only_a": 1},
		Gauges:   map[string]float64{"depth": 2},
	}
	b := &Snapshot{
		Counters: map[string]uint64{"reqs": 4, "only_b": 5},
		Gauges:   map[string]float64{"depth": 3},
		UptimeMS: 99,
	}
	if err := MergeSnapshots(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Counters["reqs"] != 7 || a.Counters["only_a"] != 1 || a.Counters["only_b"] != 5 {
		t.Fatalf("counters merged wrong: %+v", a.Counters)
	}
	if a.Gauges["depth"] != 5 {
		t.Fatalf("gauges merged wrong: %+v", a.Gauges)
	}
	if a.UptimeMS != 99 {
		t.Fatalf("uptime should take the max, got %d", a.UptimeMS)
	}
}
