// Package obs is the repo's low-overhead telemetry layer: a metrics
// registry (atomic counters, gauges, bounded histograms), phase/span
// timing that builds a per-run phase tree, structured leveled
// JSON-lines logging, profiling hooks (-cpuprofile, -memprofile,
// -trace, -pprof-addr) and a snapshot exporter that serializes the
// whole registry to a machine-diffable telemetry.json artifact (or
// Prometheus text format on demand).
//
// Design constraints, in order:
//
//  1. The simulator's steady-state replay loops are allocation-free
//     and must stay that way with telemetry compiled in. Hot paths
//     therefore never record per-event: instrumentation sits at chunk
//     boundaries (one atomic add per replayed column chunk), and the
//     well-known metrics below are package-level variables so the hot
//     code pays no registry lookup.
//  2. Telemetry compiles to no-ops when disabled: every mutator is
//     guarded by the compile-time Enabled constant (see the obsoff
//     build tag), so a disabled build dead-code-eliminates the
//     instrumentation entirely.
//  3. Everything is bounded: histograms have a fixed bucket count,
//     span trees cap their fan-out and count what they drop, and the
//     logger drops below-level lines before formatting them.
//
// The package is dependency-free within the repo (everything may
// import it) and all of it is safe for concurrent use.
package obs

// Default is the process-wide registry every subsystem records into.
// The cmd binaries snapshot it into telemetry.json at exit.
var Default = NewRegistry()

// Well-known metrics, pre-registered on Default so hot paths can
// increment them without a registry lookup.
var (
	// ReplayEvents counts events driven through the per-configuration
	// replay path (sim.ReplayInto / sim.MeasureRecorded).
	ReplayEvents = Default.Counter("replay_events_total")
	// BatchEvents counts access events driven through the fused batch
	// engine (core.SystemSet.ReplayColumns), once per event regardless
	// of how many member systems consumed it.
	BatchEvents = Default.Counter("batch_events_total")
	// BatchChunks counts ReplayColumns calls (one per hook-bounded
	// chunk of a fused replay).
	BatchChunks = Default.Counter("batch_chunks_total")
	// ProbeRebuilds counts probe-filter rebuilds (dmGroup.pull) at
	// fused-replay chunk entry.
	ProbeRebuilds = Default.Counter("probe_filter_rebuilds_total")
	// ProbeResyncs counts per-line probe-filter resyncs around outlined
	// miss handling in the fused replay loop.
	ProbeResyncs = Default.Counter("probe_filter_resyncs_total")
	// RecordingHits / RecordingMisses count recording-cache lookups
	// that found / had to record a workload capture.
	RecordingHits   = Default.Counter("recording_cache_hits_total")
	RecordingMisses = Default.Counter("recording_cache_misses_total")
	// RecordedEvents counts events captured by sim.Record.
	RecordedEvents = Default.Counter("recorded_events_total")
	// LiveMeasures counts live (non-replay) workload measurements.
	LiveMeasures = Default.Counter("live_measures_total")
	// HarnessPanics counts panics recovered at any harness boundary.
	HarnessPanics = Default.Counter("harness_panics_total")
	// HarnessRetries counts retry attempts granted by harness.Map.
	HarnessRetries = Default.Counter("harness_retries_total")
	// HarnessTimeouts counts task attempts abandoned on timeout.
	HarnessTimeouts = Default.Counter("harness_timeouts_total")
	// SweepTasksDone / SweepTasksFailed / SweepTasksSkipped count sweep
	// task outcomes across harness.RunSweep calls.
	SweepTasksDone    = Default.Counter("sweep_tasks_done_total")
	SweepTasksFailed  = Default.Counter("sweep_tasks_failed_total")
	SweepTasksSkipped = Default.Counter("sweep_tasks_skipped_total")
	// CheckpointErrors counts checkpoint-manifest write failures
	// surfaced by the sweep runner.
	CheckpointErrors = Default.Counter("checkpoint_write_errors_total")
	// TraceCorrupt counts corrupt-trace errors from the hardened
	// reader.
	TraceCorrupt = Default.Counter("trace_corrupt_total")
	// TraceDrained counts events drained through trace.Reader.Drain.
	TraceDrained = Default.Counter("trace_drained_events_total")
	// SweepTaskMS is the distribution of sweep task wall-clock times in
	// milliseconds.
	SweepTaskMS = Default.Histogram("sweep_task_ms")
	// ReplayChunks counts compressed chunks decoded by the
	// chunk-parallel replay engine (across all workers).
	ReplayChunks = Default.Counter("replay_chunks_decoded_total")
	// ParallelReplays counts batches routed through the chunk-parallel
	// engine; ParallelFallbacks counts batches that requested
	// parallelism but fell back to the serial fused path (online-FVT
	// configs, or too few chunks to split).
	ParallelReplays   = Default.Counter("replay_parallel_total")
	ParallelFallbacks = Default.Counter("replay_parallel_fallbacks_total")
	// ParallelRanges counts per-worker chunk ranges replayed.
	ParallelRanges = Default.Counter("replay_parallel_ranges_total")
	// SeamMatches / SeamReruns count seam validations where the
	// speculatively warmed entry state matched the previous range's
	// exit state vs. ranges that had to be re-run exactly.
	SeamMatches = Default.Counter("replay_seam_matches_total")
	SeamReruns  = Default.Counter("replay_seam_reruns_total")
	// MRCPasses counts single-pass reuse-distance analyses
	// (mrc.Analyze calls); MRCLines counts line-address accesses fed
	// through the Mattson stacks, summed across every model and shard
	// of a pass (incremented at chunk boundaries, never per access).
	MRCPasses = Default.Counter("mrc_passes")
	MRCLines  = Default.Counter("mrc_lines_processed")
)

// Begin opens a child span of the Default registry's root phase tree.
// Shorthand for Default.Root().Begin(name).
func Begin(name string) *Span { return Default.Root().Begin(name) }

// Labeled formats a metric name with one label in Prometheus style:
// Labeled("events_per_sec", "workload", "ccomp") returns
// `events_per_sec{workload="ccomp"}`. The snapshot and Prometheus
// exporters pass such names through unchanged, so per-workload series
// need no dedicated registry machinery.
func Labeled(name, key, value string) string {
	return name + "{" + key + `="` + value + `"}`
}
