package obs

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot-level merging: the fleet's /debug/metrics?fleet=1 view folds
// every node's frozen telemetry snapshot into one. Counters and gauges
// add; histograms merge bucket-wise, which is exact because all nodes
// freeze the same bucket lattice (log2 buckets for Histogram, the
// HDR layout for QuantileHist — same sigfigs ⇒ same highestEquivalent
// bounds), so fleet-wide p99s are computed from true merged counts,
// never by averaging per-node quantile estimates.

// MergeSnapshots folds src into dst in place: counters and gauges sum,
// histograms and latency histograms merge bucket-wise, and dst's
// quantile headlines are recomputed from the merged buckets. dst keeps
// its own phase tree and request traces (those are node-local
// narratives, not additive metrics).
func MergeSnapshots(dst, src *Snapshot) error {
	if src == nil {
		return nil
	}
	if dst.Counters == nil {
		dst.Counters = map[string]uint64{}
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	if dst.Gauges == nil {
		dst.Gauges = map[string]float64{}
	}
	for k, v := range src.Gauges {
		dst.Gauges[k] += v
	}
	if dst.Histograms == nil {
		dst.Histograms = map[string]HistogramSnapshot{}
	}
	for k, v := range src.Histograms {
		dst.Histograms[k] = MergeHistogramSnapshots(dst.Histograms[k], v)
	}
	if len(src.Latencies) > 0 && dst.Latencies == nil {
		dst.Latencies = map[string]QuantileSnapshot{}
	}
	for k, v := range src.Latencies {
		m, err := MergeQuantileSnapshots(dst.Latencies[k], v)
		if err != nil {
			return fmt.Errorf("obs: merging latency %q: %w", k, err)
		}
		dst.Latencies[k] = m
	}
	if src.UptimeMS > dst.UptimeMS {
		dst.UptimeMS = src.UptimeMS
	}
	return nil
}

// MergeHistogramSnapshots returns the exact bucket-wise merge of two
// frozen histograms (both on the shared log2 lattice).
func MergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	out.Buckets = mergeBuckets(a.Buckets, b.Buckets)
	return out
}

// MergeQuantileSnapshots returns the exact bucket-wise merge of two
// frozen quantile histograms and recomputes the headline quantiles
// from the merged cumulative counts. Errors when the inputs were
// recorded at different precisions (different sigfigs ⇒ different
// bucket lattices ⇒ the merge would be lossy).
func MergeQuantileSnapshots(a, b QuantileSnapshot) (QuantileSnapshot, error) {
	if a.Count == 0 {
		return b, nil
	}
	if b.Count == 0 {
		return a, nil
	}
	if a.SigFigs != b.SigFigs {
		return QuantileSnapshot{}, fmt.Errorf("sigfigs mismatch (%d vs %d)", a.SigFigs, b.SigFigs)
	}
	out := QuantileSnapshot{SigFigs: a.SigFigs, Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	out.Buckets = mergeBuckets(a.Buckets, b.Buckets)

	// Recompute the headline quantiles exactly as QuantileHist.freeze
	// does: the ceil(q*n)-th observation's bucket bound.
	ranks := [4]uint64{
		uint64(math.Ceil(0.50 * float64(out.Count))),
		uint64(math.Ceil(0.90 * float64(out.Count))),
		uint64(math.Ceil(0.99 * float64(out.Count))),
		uint64(math.Ceil(0.999 * float64(out.Count))),
	}
	qs := [4]*uint64{&out.P50, &out.P90, &out.P99, &out.P999}
	next := 0
	for _, bk := range out.Buckets {
		for next < len(ranks) && bk.Count >= max64(ranks[next], 1) {
			*qs[next] = bk.Le
			next++
		}
	}
	return out, nil
}

// mergeBuckets merges two cumulative bucket lists: de-cumulate each
// into per-bucket deltas, add by bound, re-accumulate in bound order.
func mergeBuckets(a, b []Bucket) []Bucket {
	delta := make(map[uint64]uint64, len(a)+len(b))
	decumulate(a, delta)
	decumulate(b, delta)
	les := make([]uint64, 0, len(delta))
	for le := range delta {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	out := make([]Bucket, 0, len(les))
	var cum uint64
	for _, le := range les {
		cum += delta[le]
		out = append(out, Bucket{Le: le, Count: cum})
	}
	return out
}

func decumulate(bs []Bucket, into map[uint64]uint64) {
	var prev uint64
	for _, b := range bs {
		into[b.Le] += b.Count - prev
		prev = b.Count
	}
}
