// The obs behavior tests exercise the enabled build; the obsoff
// no-op contract is pinned in obsoff_test.go.
//go:build !obsoff

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter must be get-or-create idempotent")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("h")
	for _, v := range []uint64{0, 1, 2, 3, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("hist count = %d, want 6", h.Count())
	}
	if want := uint64(0+1+2+3+100) + 1<<40; h.Sum() != want {
		t.Errorf("hist sum = %d, want %d", h.Sum(), want)
	}
}

func TestHistogramFreezeCumulative(t *testing.T) {
	var h Histogram
	h.Observe(0) // le 0
	h.Observe(1) // le 1
	h.Observe(1)
	h.Observe(7) // le 7
	s := h.freeze()
	want := []Bucket{{Le: 0, Count: 1}, {Le: 1, Count: 3}, {Le: 7, Count: 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(uint64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
}

func TestRegistryResetKeepsIdentities(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(7)
	r.Reset()
	if c.Load() != 0 {
		t.Errorf("reset counter = %d, want 0", c.Load())
	}
	c.Inc()
	// The pre-reset pointer must still feed snapshots.
	if got := r.Snapshot().Counters["c"]; got != 1 {
		t.Errorf("snapshot after reset sees %d, want 1", got)
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	a := r.Root().Begin("record")
	b := a.Begin("spill")
	b.Done()
	a.Done()
	open := r.Root().Begin("replay") // left open on purpose

	snap := r.Snapshot()
	if snap.Phases.Name != "run" || !snap.Phases.Open {
		t.Fatalf("root phase = %+v, want open 'run'", snap.Phases)
	}
	if len(snap.Phases.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Phases.Children))
	}
	rec := snap.Phases.Children[0]
	if rec.Name != "record" || rec.Open || len(rec.Children) != 1 || rec.Children[0].Name != "spill" {
		t.Errorf("record subtree = %+v", rec)
	}
	if rep := snap.Phases.Children[1]; rep.Name != "replay" || !rep.Open {
		t.Errorf("replay phase = %+v, want open", rep)
	}
	_ = open
}

func TestSpanChildCapBounds(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpanChildren+10; i++ {
		r.Root().Begin("x").Done()
	}
	snap := r.Snapshot()
	if got := len(snap.Phases.Children); got != maxSpanChildren {
		t.Errorf("children = %d, want capped at %d", got, maxSpanChildren)
	}
	if snap.Phases.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", snap.Phases.Dropped)
	}
}

func TestSpanDuration(t *testing.T) {
	s := (&Registry{root: &Span{name: "run", start: time.Now()}}).Root().Begin("p")
	time.Sleep(5 * time.Millisecond)
	s.Done()
	if d := s.Duration(); d < 5*time.Millisecond || d > 5*time.Second {
		t.Errorf("duration = %v, want ~5ms", d)
	}
	before := s.Duration()
	s.Done() // idempotent
	if s.Duration() != before {
		t.Error("second Done must not move the end time")
	}
}

func TestLoggerLevelsAndJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("dropped")
	l.Info("kept", "k", 1, "s", "v")
	l.Error("bad", "err", "boom")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (debug dropped): %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line not JSON: %v: %s", err, lines[0])
	}
	if first["level"] != "info" || first["msg"] != "kept" || first["k"] != float64(1) || first["s"] != "v" {
		t.Errorf("line fields = %v", first)
	}
	if _, err := time.Parse(time.RFC3339Nano, first["ts"].(string)); err != nil {
		t.Errorf("bad ts: %v", err)
	}
}

func TestLoggerOddKVAndNonStringKey(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("odd", "tail")
	l.Info("numkey", 42, "v")
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line not JSON: %v: %s", err, line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("eps", "workload", "ccomp"); got != `eps{workload="ccomp"}` {
		t.Errorf("Labeled = %q", got)
	}
}
