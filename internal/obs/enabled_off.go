//go:build obsoff

package obs

// Enabled is false in obsoff builds: every metric mutator, span and
// log call short-circuits on this constant and is eliminated by the
// compiler. Build with `-tags obsoff` to strip telemetry entirely.
const Enabled = false
