package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger writes structured JSON lines — one object per line with ts,
// level, msg and the caller's alternating key/value fields. Lines
// below the logger's level are dropped before any formatting work.
// Safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// Log is the process-wide logger. It defaults to warnings-and-up on
// stderr so binaries stay quiet; the shared -log-level flag lowers it.
var Log = NewLogger(os.Stderr, LevelWarn)

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// SetOutput redirects the logger (for tests).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// Enabled reports whether a line at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return Enabled && int32(level) >= l.level.Load()
}

// Debug emits a debug line.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info emits an info line.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn emits a warning line.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error emits an error line.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

// emit formats {"ts":…,"level":…,"msg":…, k:v, …} and writes it as
// one line. Values marshal via encoding/json; an unmarshalable value
// degrades to its fmt.Sprint form. A trailing key without a value gets
// null.
func (l *Logger) emit(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"ts":"`...)
	buf = time.Now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		buf = append(buf, ',')
		buf = appendJSON(buf, key)
		buf = append(buf, ':')
		if i+1 < len(kv) {
			buf = appendJSON(buf, kv[i+1])
		} else {
			buf = append(buf, "null"...)
		}
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// appendJSON appends v's JSON encoding, degrading to a quoted
// fmt.Sprint on marshal failure so a log line never errors out.
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}
