package reqtrace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fvcache/internal/obs"
)

func TestTraceIDSources(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRecorder(8)

	h := http.Header{}
	h.Set("X-Request-Id", "client-id-42")
	tr := r.Start("measure", h)
	if got := tr.ID(); got != "client-id-42" {
		t.Errorf("X-Request-Id: got %q", got)
	}
	r.Finish(tr)

	h = http.Header{}
	h.Set("X-Request-Id", "bad\r\nid with control\x00bytes")
	tr = r.Start("measure", h)
	if got := tr.ID(); got != "bad__id_with_control_bytes" {
		t.Errorf("sanitized X-Request-Id: got %q", got)
	}
	r.Finish(tr)

	h = http.Header{}
	h.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	tr = r.Start("measure", h)
	if got := tr.ID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("traceparent: got %q", got)
	}
	r.Finish(tr)

	h = http.Header{}
	h.Set("traceparent", "00-NOTHEX6511916cd43dd8448eb211c803-b7ad6b7169203331-01")
	tr = r.Start("measure", h)
	if got := tr.ID(); len(got) != 16 {
		t.Errorf("malformed traceparent should mint a 16-hex id, got %q", got)
	}
	r.Finish(tr)

	tr = r.Start("measure", http.Header{})
	id1 := tr.ID()
	r.Finish(tr)
	tr = r.Start("measure", http.Header{})
	id2 := tr.ID()
	r.Finish(tr)
	if id1 == "" || id1 == id2 {
		t.Errorf("minted ids must be unique and non-empty: %q, %q", id1, id2)
	}
}

func TestTraceSpansAndRing(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRecorder(4)
	tr := r.Start("measure", http.Header{})
	tr.SetWorkload("ccomp")
	root := tr.Begin("parse", -1)
	tr.End(root)
	wait := tr.Begin("batch_wait", -1)
	now := time.Now()
	tr.Add("replay", wait, now.Add(-2*time.Millisecond), now)
	// Skipped: zero timestamps from a stubbed executor.
	if idx := tr.Add("bogus", wait, time.Time{}, now); idx != -1 {
		t.Errorf("Add with zero start returned %d, want -1", idx)
	}
	tr.End(wait)
	tr.SetOutcome(200, "executed")
	r.Finish(tr)

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Workload != "ccomp" || got.Status != 200 || got.Outcome != "executed" {
		t.Errorf("trace fields: %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(got.Spans), got.Spans)
	}
	if got.Spans[2].Parent != 1 {
		t.Errorf("replay span parent = %d, want 1", got.Spans[2].Parent)
	}
	for _, sp := range got.Spans {
		if sp.StartUS < 0 || sp.DurationUS < 0 {
			t.Errorf("span %q has negative time: %+v", sp.Name, sp)
		}
	}

	// Overflow the ring: only the newest 4 remain, newest first.
	for i := 0; i < 10; i++ {
		tr := r.Start("mrc", http.Header{})
		tr.SetOutcome(200, "hit")
		r.Finish(tr)
	}
	traces = r.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(traces))
	}
	for _, tr := range traces {
		if tr.Endpoint != "mrc" {
			t.Errorf("old trace survived ring overflow: %+v", tr)
		}
	}
}

func TestTraceSpanOverflowCounted(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRecorder(2)
	tr := r.Start("measure", http.Header{})
	for i := 0; i < MaxSpans+5; i++ {
		idx := tr.Begin("s", -1)
		tr.End(idx)
	}
	r.Finish(tr)
	got := r.Traces()[0]
	if len(got.Spans) != MaxSpans || got.Dropped != 5 {
		t.Fatalf("spans=%d dropped=%d, want %d/5", len(got.Spans), got.Dropped, MaxSpans)
	}
}

// TestRecorderConcurrency hammers the ring with concurrent writers
// while readers snapshot it and the debug handler serves requests;
// run under -race this is the flight recorder's safety pin.
func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder(32)
	handler := r.Handler()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := r.Start("measure", http.Header{})
				tr.SetWorkload("go")
				idx := tr.Begin("parse", -1)
				tr.End(idx)
				b := tr.Begin("batch_wait", -1)
				now := time.Now()
				tr.Add("replay", b, now.Add(-time.Microsecond), now)
				tr.End(b)
				if i%3 == 0 {
					tr.SetOutcome(503, "503")
					tr.SetError("queue full")
				} else {
					tr.SetOutcome(200, "executed")
				}
				r.Finish(tr)
			}
		}(w)
	}
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, tr := range r.Traces() {
					if tr.ID == "" {
						t.Error("trace with empty id in ring")
						return
					}
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?slowest=5", nil))
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?errors=1", nil))
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHandlerFilters(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRecorder(16)
	for i := 0; i < 10; i++ {
		tr := r.Start("measure", http.Header{})
		if i%4 == 0 {
			tr.SetOutcome(429, "429")
			tr.SetError("queue full")
		} else {
			tr.SetOutcome(200, "hit")
		}
		r.Finish(tr)
	}
	decode := func(target string) struct {
		Count  int                `json:"count"`
		Traces []obs.RequestTrace `json:"traces"`
	} {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var out struct {
			Count  int                `json:"count"`
			Traces []obs.RequestTrace `json:"traces"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		return out
	}
	if got := decode("/debug/requests"); got.Count != 10 {
		t.Errorf("unfiltered count = %d, want 10", got.Count)
	}
	if got := decode("/debug/requests?n=3"); got.Count != 3 {
		t.Errorf("n=3 count = %d", got.Count)
	}
	errs := decode("/debug/requests?errors=1")
	if errs.Count != 3 {
		t.Errorf("errors count = %d, want 3", errs.Count)
	}
	for _, tr := range errs.Traces {
		if tr.Status != 429 {
			t.Errorf("errors filter leaked status %d", tr.Status)
		}
	}
	slow := decode("/debug/requests?slowest=2")
	if slow.Count != 2 {
		t.Errorf("slowest count = %d, want 2", slow.Count)
	}
	if len(slow.Traces) == 2 && slow.Traces[0].DurationUS < slow.Traces[1].DurationUS {
		t.Error("slowest not sorted by duration")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if tr := FromContext(ctx); tr == nil || !tr.noop {
		t.Fatal("FromContext on bare context must return the noop trace")
	}
	// The noop trace absorbs every call without panicking.
	tr := FromContext(ctx)
	tr.SetWorkload("x")
	tr.End(tr.Begin("a", -1))
	tr.Add("b", -1, time.Now(), time.Now())

	if !obs.Enabled {
		return
	}
	r := NewRecorder(2)
	real := r.Start("measure", http.Header{})
	ctx = NewContext(ctx, real)
	if got := FromContext(ctx); got != real {
		t.Fatal("FromContext did not return the attached trace")
	}
	r.Finish(real)
}

// TestSpanHotPathZeroAllocs pins the request-span hot path: after the
// pool and ring warm up, a full Start → spans → Finish cycle must not
// allocate. This is the serving-path analog of the replay-loop
// zero-alloc gates.
func TestSpanHotPathZeroAllocs(t *testing.T) {
	if !obs.Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRecorder(8)
	hdr := http.Header{}
	cycle := func() {
		tr := r.Start("measure", hdr)
		tr.SetWorkload("go")
		p := tr.Begin("parse", -1)
		tr.End(p)
		b := tr.Begin("batch_wait", -1)
		now := time.Now()
		tr.Add("queue_wait", b, now.Add(-time.Microsecond), now)
		tr.Add("replay", b, now.Add(-time.Microsecond), now)
		tr.End(b)
		e := tr.Begin("encode", -1)
		tr.End(e)
		tr.SetOutcome(200, "executed")
		r.Finish(tr)
	}
	// Warm the pool and the ring slots' span slices.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Fatalf("request-span hot path allocates %.1f allocs/op, want 0", avg)
	}
}
