package reqtrace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying t, so layers below the HTTP handler
// (batch executor, cache probes) can attach spans to the request that
// reached them.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or a no-op trace if
// none is attached — callers never need a nil check.
func FromContext(ctx context.Context) *Trace {
	if t, ok := ctx.Value(ctxKey{}).(*Trace); ok && t != nil {
		return t
	}
	return noopTrace
}
