// Package reqtrace is the per-request causality layer on top of obs:
// every request served by fvcached gets a trace ID (honoring inbound
// X-Request-Id / traceparent headers, minting one otherwise) and a
// bounded span tree recording where its time went — coalesce wait,
// queue wait, cache probe, replay, encode. Finished traces land in a
// fixed-size flight-recorder ring buffer served at /debug/requests,
// and the newest traces are exported into the telemetry snapshot via
// obs.Registry.SetRequestTraces.
//
// Design constraints mirror obs: everything is bounded (fixed span
// capacity per trace, fixed ring size), the hot path allocates nothing
// (traces are pooled values with inline span arrays; IDs are minted
// into a fixed buffer), and under the obsoff build tag every operation
// short-circuits on a shared no-op trace.
package reqtrace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fvcache/internal/obs"
)

// MaxSpans bounds the spans one trace can hold; later Begin/Add calls
// are counted in Dropped instead of growing the trace. A request's
// serving path has well under this many stages.
const MaxSpans = 24

// maxIDLen bounds an accepted or minted trace ID. Inbound IDs longer
// than this are truncated; 64 covers a 128-bit hex traceparent ID with
// room for human-readable client IDs.
const maxIDLen = 64

// span is one stage of a request, stored flat with a parent index.
type span struct {
	name    string
	parent  int32
	startNS int64 // offset from trace start
	durNS   int64 // -1 while open
}

// Trace accumulates one request's span tree. It is owned by a single
// request goroutine between Start and Finish; methods are not safe for
// concurrent use on the same Trace (matching net/http handler
// semantics). The zero spans live inline so a pooled Trace allocates
// nothing per request.
type Trace struct {
	noop    bool
	rec     *Recorder
	id      [maxIDLen]byte
	idLen   int
	start   time.Time
	nspans  int32
	dropped int32
	spans   [MaxSpans]span

	endpoint string
	workload string
	outcome  string
	errMsg   string
	status   int
}

// noopTrace is handed out when telemetry is compiled out or no
// recorder is configured; every method returns immediately.
var noopTrace = &Trace{noop: true}

// ID returns the trace's identifier.
func (t *Trace) ID() string {
	if t == nil || t.noop {
		return ""
	}
	return string(t.id[:t.idLen])
}

// SetWorkload tags the trace with the workload it measured.
func (t *Trace) SetWorkload(w string) {
	if t == nil || t.noop {
		return
	}
	t.workload = w
}

// SetOutcome records the HTTP status and outcome class (hit,
// coalesced, executed, 429, 503, 504, error).
func (t *Trace) SetOutcome(status int, outcome string) {
	if t == nil || t.noop {
		return
	}
	t.status = status
	t.outcome = outcome
}

// SetError records the request's error string.
func (t *Trace) SetError(msg string) {
	if t == nil || t.noop {
		return
	}
	t.errMsg = msg
}

// Begin opens a span under parent (-1 for a root span) starting now
// and returns its index for End. Returns -1 when the trace is full or
// inactive.
func (t *Trace) Begin(name string, parent int) int {
	if t == nil || t.noop {
		return -1
	}
	if int(t.nspans) >= MaxSpans {
		t.dropped++
		return -1
	}
	i := t.nspans
	t.spans[i] = span{name: name, parent: int32(parent), startNS: int64(time.Since(t.start)), durNS: -1}
	t.nspans++
	return int(i)
}

// End closes the span opened by Begin.
func (t *Trace) End(idx int) {
	if t == nil || t.noop || idx < 0 || idx >= int(t.nspans) {
		return
	}
	sp := &t.spans[idx]
	if sp.durNS == -1 {
		sp.durNS = int64(time.Since(t.start)) - sp.startNS
		if sp.durNS < 0 {
			sp.durNS = 0
		}
	}
}

// Add records a completed span from externally captured timestamps
// (batch stage times measured on the worker goroutine). Zero or
// inverted timestamps are skipped — a stubbed executor may never stamp
// them. A start before the trace start clamps to 0: the batch a
// request coalesced into may predate the request itself. Returns the
// span index, or -1 if skipped.
func (t *Trace) Add(name string, parent int, start, end time.Time) int {
	if t == nil || t.noop {
		return -1
	}
	if start.IsZero() || end.IsZero() || end.Before(start) {
		return -1
	}
	if int(t.nspans) >= MaxSpans {
		t.dropped++
		return -1
	}
	startNS := int64(0)
	if start.After(t.start) {
		startNS = int64(start.Sub(t.start))
	}
	i := t.nspans
	t.spans[i] = span{name: name, parent: int32(parent), startNS: startNS, durNS: int64(end.Sub(start))}
	t.nspans++
	return int(i)
}

// frozen is one sealed trace in the ring. The ID stays as raw bytes
// here — converting it to a string is deferred to the cold read path
// (Traces) so Finish stays allocation-free.
type frozen struct {
	id    [maxIDLen]byte
	idLen int
	trace obs.RequestTrace // ID field left empty until read
}

// Recorder owns the flight-recorder ring and the trace pool.
type Recorder struct {
	mu   sync.Mutex
	ring []frozen
	next uint64 // total finishes; ring slot is next % len(ring)
	pool sync.Pool
	seed atomic.Uint64
}

// NewRecorder returns a recorder keeping the most recent n finished
// traces (n <= 0 selects the default of 256).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 256
	}
	r := &Recorder{ring: make([]frozen, n)}
	r.pool.New = func() any { return new(Trace) }
	r.seed.Store(uint64(time.Now().UnixNano()))
	return r
}

// Mint returns a fresh 16-byte hex trace ID.
func (r *Recorder) Mint() string {
	var buf [32]byte
	n := r.mintInto(buf[:])
	return string(buf[:n])
}

// mintInto writes a fresh hex ID into dst and returns its length.
// splitmix64 over an atomic counter: unique within the process,
// seeded from boot time so IDs differ across restarts, and
// allocation-free.
func (r *Recorder) mintInto(dst []byte) int {
	x := r.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hex = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		dst[i] = hex[(x>>uint(60-4*i))&0xf]
	}
	return 16
}

// Start begins a trace for an inbound request, honoring an
// X-Request-Id or traceparent header and minting an ID otherwise.
func (r *Recorder) Start(endpoint string, h http.Header) *Trace {
	if !obs.Enabled || r == nil {
		return noopTrace
	}
	t := r.pool.Get().(*Trace)
	t.reset(r, endpoint, time.Now())
	if id := h.Get("X-Request-Id"); id != "" {
		t.idLen = copySanitized(t.id[:], id)
	}
	if t.idLen == 0 {
		// "Traceparent" is the canonical form under which net/http
		// stores the (wire-lowercase) W3C header; the lowercase key
		// would force an allocating canonicalization inside Get.
		if id := traceparentID(h.Get("Traceparent")); id != "" {
			t.idLen = copy(t.id[:], id)
		}
	}
	if t.idLen == 0 {
		t.idLen = r.mintInto(t.id[:])
	}
	return t
}

// StartTrace begins a trace with an explicit ID and start time — used
// for batch-level traces whose lifetime is the batch, not one HTTP
// request. An empty id mints one.
func (r *Recorder) StartTrace(endpoint, id string, at time.Time) *Trace {
	if !obs.Enabled || r == nil {
		return noopTrace
	}
	t := r.pool.Get().(*Trace)
	if at.IsZero() {
		at = time.Now()
	}
	t.reset(r, endpoint, at)
	if id != "" {
		t.idLen = copySanitized(t.id[:], id)
	}
	if t.idLen == 0 {
		t.idLen = r.mintInto(t.id[:])
	}
	return t
}

// reset prepares a pooled trace for reuse.
func (t *Trace) reset(r *Recorder, endpoint string, at time.Time) {
	t.noop = false
	t.rec = r
	t.idLen = 0
	t.start = at
	t.nspans = 0
	t.dropped = 0
	t.endpoint = endpoint
	t.workload = ""
	t.outcome = ""
	t.errMsg = ""
	t.status = 0
}

// Finish seals the trace, copies it into the ring, and returns it to
// the pool. The Trace must not be used after Finish.
func (r *Recorder) Finish(t *Trace) {
	if t == nil || t.noop || t.rec != r || r == nil {
		return
	}
	durNS := int64(time.Since(t.start))
	r.mu.Lock()
	slot := &r.ring[r.next%uint64(len(r.ring))]
	r.next++
	freezeInto(slot, t, durNS)
	r.mu.Unlock()
	r.pool.Put(t)
}

// freezeInto writes t's snapshot form into slot, reusing the slot's
// span slice when capacity allows — after warm-up, recording a trace
// allocates nothing.
func freezeInto(f *frozen, t *Trace, durNS int64) {
	f.idLen = copy(f.id[:], t.id[:t.idLen])
	dst := &f.trace
	dst.ID = ""
	dst.Endpoint = t.endpoint
	dst.Workload = t.workload
	dst.Status = t.status
	dst.Outcome = t.outcome
	dst.Error = t.errMsg
	dst.Start = t.start.UTC()
	dst.DurationUS = durNS / 1e3
	dst.Dropped = int(t.dropped)
	n := int(t.nspans)
	if cap(dst.Spans) < n {
		dst.Spans = make([]obs.RequestSpan, n)
	} else {
		dst.Spans = dst.Spans[:n]
	}
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		d := sp.durNS
		if d < 0 { // span left open: charge it to end-of-request
			d = durNS - sp.startNS
			if d < 0 {
				d = 0
			}
		}
		dst.Spans[i] = obs.RequestSpan{
			Name:       sp.name,
			Parent:     int(sp.parent),
			StartUS:    sp.startNS / 1e3,
			DurationUS: d / 1e3,
		}
	}
}

// Traces returns the recorded traces, newest first. The result is a
// deep-enough copy: callers may hold it across further recording.
func (r *Recorder) Traces() []obs.RequestTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	total := uint64(len(r.ring))
	if n < total {
		total = n
	}
	out := make([]obs.RequestTrace, 0, total)
	for i := uint64(0); i < total; i++ {
		f := &r.ring[(n-1-i)%uint64(len(r.ring))]
		t := f.trace
		t.ID = string(f.id[:f.idLen])
		t.Spans = append([]obs.RequestSpan(nil), t.Spans...)
		out = append(out, t)
	}
	return out
}

// Handler serves the flight recorder as JSON: the recent traces newest
// first, with ?n= limiting the count, ?slowest=K selecting the K
// highest-latency traces, and ?errors=1 keeping only non-2xx requests.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := r.Traces()
		q := req.URL.Query()
		if q.Get("errors") == "1" {
			kept := traces[:0]
			for _, t := range traces {
				if t.Status >= 400 || t.Error != "" {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if k, err := strconv.Atoi(q.Get("slowest")); err == nil && k > 0 {
			sort.SliceStable(traces, func(i, j int) bool {
				return traces[i].DurationUS > traces[j].DurationUS
			})
			if k < len(traces) {
				traces = traces[:k]
			}
		} else if n, err := strconv.Atoi(q.Get("n")); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Count  int                `json:"count"`
			Traces []obs.RequestTrace `json:"traces"`
		}{len(traces), traces}); err != nil {
			// Too late for an HTTP error; nothing to do.
			_ = err
		}
	})
}

// copySanitized copies printable ASCII from src into dst (other bytes
// become '_'), truncating to len(dst). Keeps hostile header values out
// of logs and JSON.
func copySanitized(dst []byte, src string) int {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		c := src[i]
		if c < 0x21 || c > 0x7e {
			c = '_'
		}
		dst[i] = c
	}
	return n
}

// traceparentID extracts the 32-hex trace-id field from a W3C
// traceparent header ("00-<32 hex>-<16 hex>-<flags>"), or "" if the
// header is malformed.
func traceparentID(v string) string {
	if len(v) < 3+32 || v[2] != '-' {
		return ""
	}
	id := v[3 : 3+32]
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
	}
	if len(v) > 3+32 && v[3+32] != '-' {
		return ""
	}
	return id
}
