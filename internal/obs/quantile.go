package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// QuantileHist is a fixed-bucket HDR-style histogram for exact-error
// quantile queries: every recorded value lands in a bucket whose width
// is at most value/10^sigfigs, so any quantile read back is within that
// relative error of the true sample quantile. Unlike the coarse log2
// Histogram it answers "what is p99 latency" with configured precision,
// and two histograms with the same configuration merge by bucket-wise
// addition — the property fleet-wide latency aggregation needs (merging
// quantile *estimates* is lossy; merging bucket counts is exact).
//
// The layout is the classic HdrHistogram scheme: values below
// subBucketCount are recorded at unit resolution; each further
// power-of-two magnitude reuses the top half of the sub-bucket range at
// doubled bucket width, keeping relative error bounded by
// 1/subBucketHalfCount <= 10^-sigfigs. Everything is bounded at
// construction and Observe is two atomic adds plus an atomic increment,
// so the type is hot-path safe and lock-free.
type QuantileHist struct {
	sigfigs int
	subMag  uint   // log2(subBucketCount)
	subHalf uint64 // subBucketCount / 2
	subMask uint64 // subBucketCount - 1
	maxVal  uint64 // observations clamp here (top bucket)

	counts []atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64
}

// QuantileMaxValue is the largest trackable observation; larger values
// clamp to it. In microseconds this is ~12.7 days — far beyond any
// request latency worth distinguishing.
const QuantileMaxValue = 1 << 40

// NewQuantileHist builds a histogram with the given significant
// decimal digits of quantile precision. sigfigs outside [1, 4] is
// clamped (4 digits already costs ~2^14 sub-buckets; more precision
// than that is measurement noise for latencies).
func NewQuantileHist(sigfigs int) *QuantileHist {
	if sigfigs < 1 {
		sigfigs = 1
	}
	if sigfigs > 4 {
		sigfigs = 4
	}
	// Smallest power of two >= 2*10^sigfigs, so that
	// subBucketHalfCount >= 10^sigfigs.
	largest := uint64(2)
	for i := 0; i < sigfigs; i++ {
		largest *= 10
	}
	subMag := uint(bits.Len64(largest - 1))
	subCount := uint64(1) << subMag
	h := &QuantileHist{
		sigfigs: sigfigs,
		subMag:  subMag,
		subHalf: subCount / 2,
		subMask: subCount - 1,
		maxVal:  QuantileMaxValue,
	}
	// One half-range per power-of-two magnitude above the first full
	// range; enough buckets to reach maxVal.
	bucketCount := bits.Len64(h.maxVal|h.subMask) - int(subMag) + 1
	h.counts = make([]atomic.Uint64, (bucketCount+1)*int(h.subHalf))
	return h
}

// SigFigs returns the configured significant digits.
func (h *QuantileHist) SigFigs() int { return h.sigfigs }

// countsIndex maps a value to its bucket slot.
func (h *QuantileHist) countsIndex(v uint64) int {
	bucket := bits.Len64(v|h.subMask) - int(h.subMag)
	sub := v >> uint(bucket)
	return (bucket+1)*int(h.subHalf) + int(sub) - int(h.subHalf)
}

// highestEquivalent returns the largest value that lands in slot idx.
// It is strictly increasing in idx, which makes the frozen cumulative
// buckets monotonic by construction.
func (h *QuantileHist) highestEquivalent(idx int) uint64 {
	bucket := idx/int(h.subHalf) - 1
	sub := uint64(idx%int(h.subHalf)) + h.subHalf
	if bucket < 0 {
		sub -= h.subHalf
		bucket = 0
	}
	return ((sub + 1) << uint(bucket)) - 1
}

// Observe records one value. Values above the trackable maximum clamp
// to the top bucket rather than being dropped: a pathological tail
// must stay visible in p999 even if its exact magnitude saturates.
func (h *QuantileHist) Observe(v uint64) {
	if !Enabled {
		return
	}
	if v > h.maxVal {
		v = h.maxVal
	}
	h.counts[h.countsIndex(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *QuantileHist) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed (clamped) values.
func (h *QuantileHist) Sum() uint64 { return h.sum.Load() }

// Quantile returns the q-quantile (q in [0, 1]) of the recorded
// values: the highest value equivalent to the ceil(q*n)-th smallest
// observation's bucket. The result is >= the true sample quantile and
// exceeds it by at most a factor of 10^-sigfigs. Returns 0 when
// nothing was observed.
func (h *QuantileHist) Quantile(q float64) uint64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.highestEquivalent(i)
		}
	}
	return h.highestEquivalent(len(h.counts) - 1)
}

// Merge adds o's observations into h. Both histograms must share a
// configuration (same sigfigs, hence same bucket layout) — that is
// what makes the merge exact, and what a fleet aggregator relies on.
func (h *QuantileHist) Merge(o *QuantileHist) error {
	if o == nil {
		return nil
	}
	if h.sigfigs != o.sigfigs || len(h.counts) != len(o.counts) {
		return fmt.Errorf("obs: merging quantile histograms with different layouts (%d vs %d sigfigs)",
			h.sigfigs, o.sigfigs)
	}
	for i := range h.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(o.n.Load())
	h.sum.Add(o.sum.Load())
	return nil
}

// reset zeroes the histogram in place (Registry.Reset).
func (h *QuantileHist) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.n.Store(0)
	h.sum.Store(0)
}

// freeze converts the histogram into its snapshot form: cumulative
// non-empty buckets plus the standard latency quantiles, computed in
// the same walk.
func (h *QuantileHist) freeze() QuantileSnapshot {
	out := QuantileSnapshot{SigFigs: h.sigfigs, Count: h.Count(), Sum: h.Sum()}
	if out.Count == 0 {
		return out
	}
	ranks := [4]uint64{
		uint64(math.Ceil(0.50 * float64(out.Count))),
		uint64(math.Ceil(0.90 * float64(out.Count))),
		uint64(math.Ceil(0.99 * float64(out.Count))),
		uint64(math.Ceil(0.999 * float64(out.Count))),
	}
	qs := [4]*uint64{&out.P50, &out.P90, &out.P99, &out.P999}
	var cum uint64
	next := 0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		le := h.highestEquivalent(i)
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: cum})
		for next < len(ranks) && cum >= max64(ranks[next], 1) {
			*qs[next] = le
			next++
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
