// The obsoff contract: with telemetry compiled out, every mutator is
// a no-op and every read-side API still works (returning empty data),
// so instrumented code needs no build-tag guards of its own.
//go:build obsoff

package obs

import (
	"bytes"
	"testing"
)

func TestDisabledMutatorsAreNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true under the obsoff tag")
	}
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 0 {
		t.Errorf("disabled counter = %d, want 0", got)
	}
	g := r.Gauge("g")
	g.Set(3.5)
	if got := g.Load(); got != 0 {
		t.Errorf("disabled gauge = %v, want 0", got)
	}
	h := r.Histogram("h")
	h.Observe(7)
	snap := r.Snapshot()
	if snap.Counters["c"] != 0 || snap.Gauges["g"] != 0 || snap.Histograms["h"].Count != 0 {
		t.Errorf("disabled snapshot carries data: %+v", snap)
	}
}

func TestDisabledSpansAndLogs(t *testing.T) {
	span := Begin("phase")
	child := span.Begin("sub")
	child.Done()
	span.Done()
	if n := len(Default.Snapshot().Phases.Children); n != 0 {
		t.Errorf("disabled span tree has %d children, want 0", n)
	}
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	lg.Error("should be dropped", "k", "v")
	if buf.Len() != 0 {
		t.Errorf("disabled logger wrote %q", buf.String())
	}
}
