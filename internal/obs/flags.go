package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"runtime/trace"
	"time"
)

// Flags is the shared observability flag set every cmd binary wires
// in: profiling hooks (-cpuprofile, -memprofile, -trace), a pprof
// debug listener (-pprof-addr), the structured log level (-log-level)
// and the telemetry snapshot path (-telemetry-out).
//
// Usage in a main:
//
//	of := obs.AddFlags(flag.CommandLine)
//	flag.Parse()
//	if err := of.Start(); err != nil { ... usage ... }
//	defer of.Stop()
type Flags struct {
	CPUProfile   string
	MemProfile   string
	Trace        string
	PprofAddr    string
	LogLevel     string
	TelemetryOut string

	cpuFile   *os.File
	traceFile *os.File
	srv       *http.Server
}

// AddFlags registers the observability flags on fs and returns the
// struct they populate after fs is parsed.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&f.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.LogLevel, "log-level", "warn", "structured log level: debug, info, warn or error")
	fs.StringVar(&f.TelemetryOut, "telemetry-out", "telemetry.json", "write the telemetry snapshot to this file at exit (empty disables)")
	return f
}

// Start applies the parsed flags: sets the log level, starts CPU
// profiling and execution tracing, and launches the pprof listener.
// Call after flag parsing; pair with Stop. A bad flag value returns an
// error without starting anything.
func (f *Flags) Start() error {
	level, err := ParseLevel(f.LogLevel)
	if err != nil {
		return err
	}
	Log.SetLevel(level)
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return err
		}
		if err := runtimepprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fmt.Errorf("obs: starting CPU profile: %w", err)
		}
		f.cpuFile = cf
	}
	if f.Trace != "" {
		tf, err := os.Create(f.Trace)
		if err != nil {
			f.stopCPU()
			return err
		}
		if err := trace.Start(tf); err != nil {
			tf.Close()
			f.stopCPU()
			return fmt.Errorf("obs: starting execution trace: %w", err)
		}
		f.traceFile = tf
	}
	if f.PprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			Default.WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			f.stopTrace()
			f.stopCPU()
			return fmt.Errorf("obs: pprof listener: %w", err)
		}
		f.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go f.srv.Serve(ln)
		Log.Info("pprof listener up", "addr", ln.Addr().String())
	}
	return nil
}

// Stop finishes what Start began: stops the CPU profile and execution
// trace, writes the heap profile, shuts the pprof listener down, and
// exports the telemetry snapshot. It returns the first error, after
// attempting every step — a failed heap profile must not lose the
// telemetry artifact.
func (f *Flags) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	f.stopCPU()
	f.stopTrace()
	if f.MemProfile != "" {
		mf, err := os.Create(f.MemProfile)
		keep(err)
		if err == nil {
			runtime.GC() // materialize up-to-date heap statistics
			keep(runtimepprof.WriteHeapProfile(mf))
			keep(mf.Close())
		}
	}
	if f.srv != nil {
		keep(f.srv.Close())
		f.srv = nil
	}
	if f.TelemetryOut != "" {
		keep(WriteSnapshotFile(f.TelemetryOut, Default))
	}
	return first
}

func (f *Flags) stopCPU() {
	if f.cpuFile != nil {
		runtimepprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
}

func (f *Flags) stopTrace() {
	if f.traceFile != nil {
		trace.Stop()
		f.traceFile.Close()
		f.traceFile = nil
	}
}
