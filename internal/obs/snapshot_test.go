// The obs behavior tests exercise the enabled build; the obsoff
// no-op contract is pinned in obsoff_test.go.
//go:build !obsoff

package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// populated builds a registry exercising every metric kind.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("events_total").Add(123)
	r.Gauge(Labeled("events_per_sec", "workload", "ccomp")).Set(1e6)
	r.Histogram("task_ms").Observe(12)
	r.Histogram("task_ms").Observe(900)
	sp := r.Root().Begin("record")
	sp.Begin("spill").Done()
	sp.Done()
	return r
}

func TestSnapshotRoundTripAndValidate(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ValidateSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateSnapshot: %v\n%s", err, buf.String())
	}
	if s.Counters["events_total"] != 123 {
		t.Errorf("counter lost: %v", s.Counters)
	}
	if s.Gauges[`events_per_sec{workload="ccomp"}`] != 1e6 {
		t.Errorf("labeled gauge lost: %v", s.Gauges)
	}
	if h := s.Histograms["task_ms"]; h.Count != 2 || h.Sum != 912 {
		t.Errorf("histogram lost: %+v", h)
	}
	if len(s.Phases.Children) != 1 || s.Phases.Children[0].Name != "record" {
		t.Errorf("phase tree lost: %+v", s.Phases)
	}
}

func TestValidateSnapshotRejects(t *testing.T) {
	good, _ := json.Marshal(populated().Snapshot())
	cases := map[string]func(m map[string]json.RawMessage){
		"wrong schema": func(m map[string]json.RawMessage) { m["schema"] = json.RawMessage(`"other/v9"`) },
		"no phases":    func(m map[string]json.RawMessage) { m["phases"] = json.RawMessage(`null`) },
		"no capture":   func(m map[string]json.RawMessage) { m["captured_at"] = json.RawMessage(`"0001-01-01T00:00:00Z"`) },
		"neg uptime":   func(m map[string]json.RawMessage) { m["uptime_ms"] = json.RawMessage(`-5`) },
		"bad buckets": func(m map[string]json.RawMessage) {
			m["histograms"] = json.RawMessage(`{"h":{"count":2,"sum":3,"buckets":[{"le":5,"count":2},{"le":3,"count":1}]}}`)
		},
	}
	for name, corrupt := range cases {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		corrupt(m)
		data, _ := json.Marshal(m)
		if _, err := ValidateSnapshot(data); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
	if _, err := ValidateSnapshot([]byte("{not json")); err == nil {
		t.Error("malformed JSON must fail validation")
	}
}

func TestWriteSnapshotFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.json")
	if err := WriteSnapshotFile(path, populated()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateSnapshot(data); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); err == nil {
		t.Error("temp file left behind")
	}
}

func TestPrometheusExport(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE events_total counter",
		"events_total 123",
		`events_per_sec{workload="ccomp"} 1e+06`,
		"# TYPE task_ms histogram",
		`task_ms_bucket{le="+Inf"} 2`,
		"task_ms_sum 912",
		"task_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagsRegisterStartStop(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	err := fs.Parse([]string{
		"-log-level", "error",
		"-memprofile", filepath.Join(dir, "mem.pb.gz"),
		"-telemetry-out", filepath.Join(dir, "telemetry.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer Log.SetLevel(LevelWarn)
	if Log.Enabled(LevelWarn) {
		t.Error("log level must have been raised to error")
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry snapshot not written: %v", err)
	}
	if _, err := ValidateSnapshot(data); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "mem.pb.gz")); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
}

func TestFlagsBadLevelFailsStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-log-level", "loud"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("Start must reject a bad -log-level")
	}
}
