package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := LoadManifest(dir, "k=1")
	if len(m.Done) != 0 {
		t.Fatalf("fresh manifest has %d entries", len(m.Done))
	}
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.MarkDone("a", "a.txt", 250*time.Millisecond)
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}

	got := LoadManifest(dir, "k=1")
	if !got.IsDone(dir, "a") {
		t.Error("round-tripped manifest lost entry a")
	}
	e := got.Done["a"]
	if e.Output != "a.txt" || e.DurationMS != 250 {
		t.Errorf("entry a = %+v, want output a.txt duration 250ms", e)
	}
	if e.CompletedAt.IsZero() {
		t.Error("entry a has zero completion time")
	}
}

func TestManifestInvalidation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	save := func() {
		m := LoadManifest(dir, "k=1")
		m.MarkDone("a", "a.txt", time.Millisecond)
		if err := m.Save(dir); err != nil {
			t.Fatal(err)
		}
	}

	save()
	if !LoadManifest(dir, "k=1").IsDone(dir, "a") {
		t.Fatal("setup: entry not visible")
	}

	// A key change discards the checkpoint wholesale.
	if LoadManifest(dir, "k=2").IsDone(dir, "a") {
		t.Error("key mismatch did not invalidate the checkpoint")
	}

	// A corrupt manifest degrades to a fresh one, never an error.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if LoadManifest(dir, "k=1").IsDone(dir, "a") {
		t.Error("corrupt manifest still reports entry done")
	}

	// A deleted output invalidates just its entry.
	save()
	if err := os.Remove(filepath.Join(dir, "a.txt")); err != nil {
		t.Fatal(err)
	}
	if LoadManifest(dir, "k=1").IsDone(dir, "a") {
		t.Error("entry with deleted output still reports done")
	}
}

func TestManifestAvgDurationMS(t *testing.T) {
	m := &Manifest{Done: map[string]ManifestEntry{}}
	if got := m.AvgDurationMS(); got != 0 {
		t.Errorf("empty manifest avg = %d, want 0", got)
	}
	m.Done["a"] = ManifestEntry{DurationMS: 100}
	m.Done["b"] = ManifestEntry{DurationMS: 300}
	if got := m.AvgDurationMS(); got != 200 {
		t.Errorf("avg = %d, want 200", got)
	}
}

// TestManifestResumeAfterCorruption is the full write -> corrupt ->
// resume cycle through RunSweep: a torn checkpoint must degrade to
// redoing work, and the redo must rebuild a valid checkpoint.
func TestManifestResumeAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	var runs []string
	tasks := []Task{
		{ID: "a", Run: func(_ context.Context, out io.Writer) error {
			runs = append(runs, "a")
			fmt.Fprintln(out, "artifact a")
			return nil
		}},
		{ID: "b", Run: func(_ context.Context, out io.Writer) error {
			runs = append(runs, "b")
			fmt.Fprintln(out, "artifact b")
			return nil
		}},
	}
	opt := SweepOptions{OutDir: dir, Key: "k", Resume: true, Log: io.Discard}

	if sum := RunSweep(context.Background(), tasks, opt); !sum.OK() {
		t.Fatalf("first sweep failed: %+v", sum.Results)
	}
	if len(runs) != 2 {
		t.Fatalf("first sweep ran %v, want [a b]", runs)
	}

	// Second run resumes: nothing re-executes.
	runs = nil
	sum := RunSweep(context.Background(), tasks, opt)
	if len(runs) != 0 {
		t.Errorf("resumed sweep re-ran %v", runs)
	}
	if got := sum.Count(TaskSkipped); got != 2 {
		t.Errorf("resumed sweep skipped %d tasks, want 2", got)
	}

	// Corrupt the checkpoint: the sweep redoes everything and leaves a
	// valid checkpoint behind.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	runs = nil
	if sum := RunSweep(context.Background(), tasks, opt); !sum.OK() {
		t.Fatalf("post-corruption sweep failed: %+v", sum.Results)
	}
	if len(runs) != 2 {
		t.Errorf("post-corruption sweep ran %v, want [a b]", runs)
	}
	m := LoadManifest(dir, "k")
	if !m.IsDone(dir, "a") || !m.IsDone(dir, "b") {
		t.Error("redo did not rebuild the checkpoint")
	}
}

// TestSweepCheckpointWriteErrorSurfaces pins the satellite fix: a
// checkpoint-manifest write failure must not fail (or silently pass)
// the task — it surfaces as CheckpointErr and in the printed summary.
func TestSweepCheckpointWriteErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	task := Task{ID: "a", Run: func(_ context.Context, out io.Writer) error {
		// Make the manifest temp file uncreatable after the artifact is
		// written: Save targets <dir>/manifest.json.tmp, so a directory
		// squatting on that name fails the write step.
		if err := os.Mkdir(filepath.Join(dir, ManifestName+".tmp"), 0o755); err != nil {
			return err
		}
		fmt.Fprintln(out, "artifact a")
		return nil
	}}
	sum := RunSweep(context.Background(), []Task{task},
		SweepOptions{OutDir: dir, Key: "k", Log: io.Discard})

	if !sum.OK() {
		t.Fatalf("sweep not OK despite valid artifact: %+v", sum.Results)
	}
	ck := sum.CheckpointErrs()
	if len(ck) != 1 || ck[0].ID != "a" {
		t.Fatalf("CheckpointErrs = %+v, want one entry for a", ck)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.txt")); err != nil {
		t.Errorf("artifact missing despite checkpoint-only failure: %v", err)
	}
	var buf strings.Builder
	sum.Print(&buf)
	if !strings.Contains(buf.String(), "1 checkpoint write errors") ||
		!strings.Contains(buf.String(), "checkpoint manifest write failures") {
		t.Errorf("summary does not surface the checkpoint failure:\n%s", buf.String())
	}
}
