package harness

import (
	"errors"
	"strings"
	"testing"
)

// TestReportRunErrorExitCodes pins the shared CLI epilogue's exit-code
// table: 0 for success, 1 for an ordinary failure, 2 for a recovered
// panic (with the stack dumped exactly once).
func TestReportRunErrorExitCodes(t *testing.T) {
	panicErr := Recover(func() error { panic("invariant broke") })
	if panicErr == nil {
		t.Fatal("Recover did not capture the panic")
	}

	tests := []struct {
		name      string
		err       error
		wantCode  int
		wantOut   []string
		wantStack bool
	}{
		{name: "success", err: nil, wantCode: ExitOK},
		{
			name:     "failure",
			err:      errors.New("bad input"),
			wantCode: ExitFailure,
			wantOut:  []string{"mycmd: bad input"},
		},
		{
			name:      "panic",
			err:       panicErr,
			wantCode:  ExitPanic,
			wantOut:   []string{"mycmd: panic: invariant broke"},
			wantStack: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf strings.Builder
			if got := ReportRunError(&buf, "mycmd", tt.err); got != tt.wantCode {
				t.Errorf("exit code = %d, want %d", got, tt.wantCode)
			}
			out := buf.String()
			if tt.err == nil && out != "" {
				t.Errorf("success wrote output: %q", out)
			}
			for _, want := range tt.wantOut {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
			if gotStack := strings.Contains(out, "goroutine"); gotStack != tt.wantStack {
				t.Errorf("stack dumped = %v, want %v:\n%s", gotStack, tt.wantStack, out)
			}
		})
	}
}

// TestReportRunErrorWrappedPanic checks the panic classification works
// through error wrapping, the way cmd binaries surface sweep errors.
func TestReportRunErrorWrappedPanic(t *testing.T) {
	inner := Recover(func() error { panic("deep") })
	wrapped := errors.Join(errors.New("sweep aborted"), inner)
	var buf strings.Builder
	if got := ReportRunError(&buf, "x", wrapped); got != ExitPanic {
		t.Errorf("wrapped panic exit code = %d, want %d", got, ExitPanic)
	}
}
