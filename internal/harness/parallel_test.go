package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	out, err := Map(context.Background(), 100, MapOptions{Workers: 8},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, MapOptions{},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
}

// TestMapPanicDoesNotHang is the satellite regression: a panicking fn
// must not leave the internal WaitGroup hanging or kill the process;
// the first panic is re-surfaced as an error carrying its stack.
func TestMapPanicDoesNotHang(t *testing.T) {
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(context.Background(), 20, MapOptions{Workers: 4},
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic(fmt.Sprintf("boom at %d", i))
				}
				return i, nil
			})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map hung on a panicking task")
	}
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 3 {
		t.Fatalf("err = %v, want TaskError for index 3", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped PanicError", err)
	}
	if !strings.Contains(string(pe.Stack), "parallel_test.go") {
		t.Error("panic stack does not point at the panicking test function")
	}
	if len(out) != 20 {
		t.Errorf("partial results slice has length %d, want 20", len(out))
	}
}

// TestMapFirstErrorCancels: after a failure, undispatched tasks are
// skipped.
func TestMapFirstErrorCancels(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 100, MapOptions{Workers: 1},
		func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			if i == 2 {
				return 0, errors.New("fail")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("tasks run after first error: %d calls, want 3 (0,1,2)", got)
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 10, MapOptions{Workers: 2},
		func(_ context.Context, i int) (int, error) { calls.Add(1); return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d tasks ran under a cancelled context", calls.Load())
	}
}

func TestMapRetryTransient(t *testing.T) {
	var tries atomic.Int64
	out, err := Map(context.Background(), 1, MapOptions{Retries: 3, RetryBackoff: time.Millisecond},
		func(_ context.Context, i int) (string, error) {
			if tries.Add(1) < 3 {
				return "", Transient(errors.New("flaky backend"))
			}
			return "ok", nil
		})
	if err != nil {
		t.Fatalf("transient failure not retried to success: %v", err)
	}
	if out[0] != "ok" || tries.Load() != 3 {
		t.Errorf("out=%v tries=%d", out, tries.Load())
	}
}

func TestMapNoRetryOnPermanentError(t *testing.T) {
	var tries atomic.Int64
	_, err := Map(context.Background(), 1, MapOptions{Retries: 3},
		func(_ context.Context, i int) (int, error) {
			tries.Add(1)
			return 0, errors.New("deterministic failure")
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if tries.Load() != 1 {
		t.Errorf("permanent error retried %d times", tries.Load()-1)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Errorf("err = %v, want single-attempt TaskError", err)
	}
}

func TestMapRetryBudgetExhausted(t *testing.T) {
	var tries atomic.Int64
	_, err := Map(context.Background(), 1, MapOptions{Retries: 2},
		func(_ context.Context, i int) (int, error) {
			tries.Add(1)
			return 0, Transient(errors.New("always down"))
		})
	if err == nil || tries.Load() != 3 {
		t.Fatalf("err=%v tries=%d, want failure after 3 attempts", err, tries.Load())
	}
}

func TestMapTaskTimeout(t *testing.T) {
	start := time.Now()
	_, err := Map(context.Background(), 1, MapOptions{TaskTimeout: 50 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			select {
			case <-time.After(10 * time.Second):
				return 0, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

// TestMapTimeoutAbandonsWedgedTask: a task that ignores its context is
// abandoned at the deadline rather than stalling the map.
func TestMapTimeoutAbandonsWedgedTask(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	_, err := Map(context.Background(), 1, MapOptions{TaskTimeout: 50 * time.Millisecond},
		func(_ context.Context, i int) (int, error) {
			<-release // simulates a wedged simulation ignoring ctx
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Map blocked %v on a wedged task", elapsed)
	}
}

func TestTransientMarker(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Error("plain error must not be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("inner")))) {
		t.Error("wrapped transient error must stay transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
}

func TestRecover(t *testing.T) {
	if err := Recover(func() error { return nil }); err != nil {
		t.Errorf("clean fn: %v", err)
	}
	sentinel := errors.New("sentinel")
	err := Recover(func() error { panic(sentinel) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if !errors.Is(err, sentinel) {
		t.Error("error panic values must unwrap for errors.Is")
	}
	if StackOf(err) == nil {
		t.Error("StackOf must find the recovered stack")
	}
}

// TestJitterBackoffPinned pins the jitter schedule: for a fixed
// (RetrySeed, task) pair the sleeps are exactly reproducible, distinct
// tasks draw distinct streams, and every draw stays within the
// documented [d/2, 3d/2) envelope of the doubling schedule.
func TestJitterBackoffPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(retryTaskSeed(42, 0)))
	d := 100 * time.Millisecond
	want := []time.Duration{81278675, 243856411, 301878760, 526624009}
	for k, w := range want {
		if got := jitterBackoff(rng, d); got != w {
			t.Errorf("seed 42 task 0 draw %d: %v, want %v", k, got, w)
		}
		d *= 2
	}

	rng1 := rand.New(rand.NewSource(retryTaskSeed(42, 1)))
	if got := jitterBackoff(rng1, 100*time.Millisecond); got != 102859459 {
		t.Errorf("seed 42 task 1 draw 0: %v, want 102859459ns", got)
	}

	// Envelope: many seeds, many doublings, all within [d/2, 3d/2).
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(retryTaskSeed(seed, int(seed))))
		for d := 10 * time.Millisecond; d <= 160*time.Millisecond; d *= 2 {
			got := jitterBackoff(rng, d)
			if got < d/2 || got >= d+d/2 {
				t.Fatalf("seed %d: jitter %v outside [%v, %v)", seed, got, d/2, d+d/2)
			}
		}
	}

	// RetrySeed 0 (nil rng) keeps the exact deterministic backoff.
	if got := jitterBackoff(nil, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("nil rng altered backoff: %v", got)
	}
}

// TestMapRetryWithJitter: jittered retries still converge — the
// behavior change is only in the sleep durations.
func TestMapRetryWithJitter(t *testing.T) {
	var tries atomic.Int32
	out, err := Map(context.Background(), 4,
		MapOptions{Workers: 2, Retries: 2, RetryBackoff: time.Millisecond, RetrySeed: 7},
		func(_ context.Context, i int) (int, error) {
			if tries.Add(1)%3 == 0 {
				return 0, Transient(errors.New("flaky"))
			}
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
