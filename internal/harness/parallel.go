package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"fvcache/internal/obs"
)

// MapOptions tunes Map.
type MapOptions struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// TaskTimeout, when positive, bounds each task attempt. A timed-out
	// attempt fails with a deadline error; its goroutine is abandoned
	// (Go cannot preempt it) but its eventual result is discarded, so a
	// wedged task cannot stall the whole map.
	TaskTimeout time.Duration
	// Retries is the number of additional attempts granted to a task
	// whose error is retryable (see RetryIf). 0 disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt. Zero retries immediately.
	RetryBackoff time.Duration
	// RetrySeed, when non-zero, jitters each backoff sleep to a uniform
	// duration in [backoff/2, backoff*3/2), decorrelating retry storms
	// when many tasks fail together (e.g. a shared resource hiccup).
	// The jitter is drawn from a per-task RNG derived from this seed,
	// so a given (seed, task) retries on an exactly reproducible
	// schedule. 0 keeps the deterministic doubling backoff.
	RetrySeed int64
	// RetryIf decides whether a failed attempt is retried; nil means
	// IsTransient (panics and plain errors are never retried by
	// default: a deterministic simulator fails deterministically).
	RetryIf func(error) bool
}

// TaskError reports which task of a Map failed, after how many
// attempts.
type TaskError struct {
	Index    int
	Attempts int
	Err      error
}

// Error formats the failure.
func (e *TaskError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("task %d (after %d attempts): %v", e.Index, e.Attempts, e.Err)
	}
	return fmt.Sprintf("task %d: %v", e.Index, e.Err)
}

// Unwrap returns the underlying task failure.
func (e *TaskError) Unwrap() error { return e.Err }

// Map evaluates fn(ctx, 0..n-1) across up to opt.Workers goroutines and
// returns the results in order.
//
// Fault tolerance, in contrast to a bare errgroup:
//
//   - A panicking fn is recovered into a *PanicError (with stack); it
//     can neither hang the internal WaitGroup nor kill sibling workers.
//   - The first failure cancels the derived context: tasks not yet
//     started are skipped, and running tasks observe ctx.Done().
//   - Transient failures retry up to opt.Retries times with doubling
//     backoff.
//   - With opt.TaskTimeout set, a wedged task is abandoned after the
//     deadline instead of blocking the map forever.
//
// On failure the returned slice still holds every result completed
// before cancellation (zero values elsewhere), enabling graceful
// degradation, and the error is a *TaskError for the first failure.
func Map[T any](ctx context.Context, n int, opt MapOptions, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	retryIf := opt.RetryIf
	if retryIf == nil {
		retryIf = IsTransient
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     int
		mu       sync.Mutex
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				v, attempts, err := runTask(ctx, i, opt, retryIf, fn)
				if err != nil {
					fail(&TaskError{Index: i, Attempts: attempts, Err: err})
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return out, firstErr
}

// runTask runs one task with recovery, timeout and retry.
func runTask[T any](ctx context.Context, i int, opt MapOptions, retryIf func(error) bool, fn func(ctx context.Context, i int) (T, error)) (v T, attempts int, err error) {
	backoff := opt.RetryBackoff
	var rng *rand.Rand // created lazily: most tasks never retry
	for {
		attempts++
		v, err = attempt(ctx, i, opt.TaskTimeout, fn)
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			obs.HarnessTimeouts.Inc()
		}
		if err == nil || attempts > opt.Retries || !retryIf(err) || ctx.Err() != nil {
			if attempts > 1 {
				obs.HarnessRetries.Add(uint64(attempts - 1))
			}
			return v, attempts, err
		}
		if backoff > 0 {
			if opt.RetrySeed != 0 && rng == nil {
				rng = rand.New(rand.NewSource(retryTaskSeed(opt.RetrySeed, i)))
			}
			select {
			case <-time.After(jitterBackoff(rng, backoff)):
			case <-ctx.Done():
				return v, attempts, err
			}
			backoff *= 2
		}
	}
}

// retryTaskSeed derives a per-task RNG seed: tasks retrying off the
// same base seed must not share a jitter stream (that would re-align
// the very storms jitter exists to break up).
func retryTaskSeed(seed int64, i int) int64 {
	return seed + int64(i)*-4392928118023941123 // odd 64-bit multiplier spreads adjacent tasks
}

// jitterBackoff randomizes one backoff sleep to a uniform duration in
// [d/2, 3d/2), keeping the expected sleep equal to the deterministic
// schedule. A nil rng (RetrySeed 0) returns d unchanged.
func jitterBackoff(rng *rand.Rand, d time.Duration) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// attempt runs fn once, recovering panics and enforcing the timeout.
func attempt[T any](ctx context.Context, i int, timeout time.Duration, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	var zero T
	if timeout <= 0 {
		var v T
		err := Recover(func() error {
			var ferr error
			v, ferr = fn(ctx, i)
			return ferr
		})
		if err != nil {
			return zero, err
		}
		return v, nil
	}
	tctx, tcancel := context.WithTimeout(ctx, timeout)
	defer tcancel()
	type result struct {
		v   T
		err error
	}
	done := make(chan result, 1) // buffered: an abandoned task must not block
	go func() {
		var v T
		err := Recover(func() error {
			var ferr error
			v, ferr = fn(tctx, i)
			return ferr
		})
		done <- result{v, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			return zero, r.err
		}
		return r.v, nil
	case <-tctx.Done():
		if ctx.Err() != nil {
			return zero, ctx.Err() // parent cancelled, not a task fault
		}
		return zero, fmt.Errorf("task %d exceeded timeout %v: %w", i, timeout, context.DeadlineExceeded)
	}
}
