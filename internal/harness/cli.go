package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fvcache/internal/obs"
)

// Exit codes shared by every cmd/ binary.
const (
	// ExitOK: everything completed.
	ExitOK = 0
	// ExitFailure: at least one task or the run itself failed.
	ExitFailure = 1
	// ExitUsage: bad flags or arguments.
	ExitUsage = 2
	// ExitPanic: the run aborted on a recovered panic — a simulator
	// invariant broke, not an expected failure mode. Shares the value
	// of ExitUsage: both mean "an operator must intervene", and the
	// stderr epilogue disambiguates.
	ExitPanic = 2
)

// SignalContext returns a context cancelled by SIGINT/SIGTERM and,
// when timeout > 0, by the deadline — the shared -timeout flag wiring
// for the cmd/ binaries. The first signal cancels the context so
// sweeps can shut down gracefully (finish the current artifact, print
// the partial failure summary); a second signal falls through to the
// Go runtime's default handling and kills the process.
func SignalContext(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := parent
	cancelTimeout := func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	cancel := func() {
		stop()
		cancelTimeout()
	}
	return ctx, cancel
}

// Run executes fn behind the harness panic boundary: a panic comes
// back as a *PanicError instead of crashing the binary. Single-task
// analogue of RunSweep for cmd/ binaries that produce one artifact.
func Run(ctx context.Context, fn func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Recover(func() error { return fn(ctx) })
}

// ReportRunError is the cmd/ binaries' shared failure epilogue: it
// prints "name: err" to w, dumps the recovered stack when err carries
// one, logs the outcome through the obs logger, and returns the
// process exit code — ExitOK for nil, ExitPanic for a recovered panic,
// ExitFailure for any other error. Every binary routes its top-level
// error through here instead of hand-rolling the stack-dump block.
func ReportRunError(w io.Writer, name string, err error) int {
	if err == nil {
		return ExitOK
	}
	fmt.Fprintf(w, "%s: %v\n", name, err)
	if stack := StackOf(err); stack != nil {
		fmt.Fprintf(w, "%s", stack)
		obs.Log.Error("run panicked", "cmd", name, "err", err.Error())
		return ExitPanic
	}
	obs.Log.Error("run failed", "cmd", name, "err", err.Error())
	return ExitFailure
}
