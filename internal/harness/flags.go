package harness

import (
	"context"
	"flag"
	"time"

	"fvcache/internal/workload"
)

// FlagSet selects which of the shared cmd/ flags a binary registers.
type FlagSet uint

const (
	// FlagScale registers -scale (input scale: test, train or ref).
	FlagScale FlagSet = 1 << iota
	// FlagWorkers registers -workers (simulation/replay parallelism).
	FlagWorkers
	// FlagTimeout registers -timeout (abort after this duration).
	FlagTimeout
	// FlagOut registers -out (per-artifact output directory).
	FlagOut
)

// CommonFlags is the flag block shared by the cmd/ binaries: every
// binary registers the same names with the same help text and default
// semantics, instead of five drifting copies. Register it next to the
// obs flag block:
//
//	cf := harness.AddCommonFlags(flag.CommandLine, harness.FlagScale|harness.FlagTimeout, "ref")
//	of := obs.AddFlags(flag.CommandLine)
//	flag.Parse()
type CommonFlags struct {
	// ScaleName is the raw -scale value; resolve it with Scale().
	ScaleName string
	// Workers is -workers (0 = all cores): the worker-pool width for
	// simulation fan-out, chunk-parallel replay, and MRC per-set stack
	// sharding alike.
	Workers int
	// Timeout is -timeout (0 = none).
	Timeout time.Duration
	// Out is -out (empty = stdout).
	Out string
}

// AddCommonFlags registers the selected shared flags on fs.
// scaleDefault is the -scale default ("ref" for the paper binaries,
// "test" for quick tools); ignored unless FlagScale is selected.
func AddCommonFlags(fs *flag.FlagSet, which FlagSet, scaleDefault string) *CommonFlags {
	cf := &CommonFlags{}
	if which&FlagScale != 0 {
		fs.StringVar(&cf.ScaleName, "scale", scaleDefault, "input scale: test, train or ref")
	}
	if which&FlagWorkers != 0 {
		fs.IntVar(&cf.Workers, "workers", 0,
			"parallelism: simulation fan-out, chunk-parallel replay, and MRC stack sharding (0 = all cores)")
	}
	if which&FlagTimeout != 0 {
		fs.DurationVar(&cf.Timeout, "timeout", 0, "abort the run after this duration (0 = none)")
	}
	if which&FlagOut != 0 {
		fs.StringVar(&cf.Out, "out", "", "write one file per artifact into this directory")
	}
	return cf
}

// Scale resolves the -scale flag.
func (cf *CommonFlags) Scale() (workload.Scale, error) {
	return workload.ParseScale(cf.ScaleName)
}

// Context returns the binary's root context: cancelled by
// SIGINT/SIGTERM and by the -timeout deadline.
func (cf *CommonFlags) Context(parent context.Context) (context.Context, context.CancelFunc) {
	return SignalContext(parent, cf.Timeout)
}
