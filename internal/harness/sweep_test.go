package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fvcache/internal/obs"
)

// sweepTasks builds three tasks; the one named failID panics.
func sweepTasks(failID string, ran *[]string) []Task {
	mk := func(id string) Task {
		return Task{ID: id, Title: "artifact " + id, Run: func(_ context.Context, out io.Writer) error {
			*ran = append(*ran, id)
			if id == failID {
				panic("injected failure in " + id)
			}
			fmt.Fprintf(out, "content of %s\n", id)
			return nil
		}}
	}
	return []Task{mk("fig1"), mk("fig2"), mk("tab1")}
}

// TestSweepGracefulDegradation is the acceptance scenario: one
// artificially failing experiment, all other artifacts complete, the
// summary names the failure with its recovered stack, and a rerun with
// the same -out directory skips completed artifacts via the manifest.
func TestSweepGracefulDegradation(t *testing.T) {
	dir := t.TempDir()
	var ran []string
	opt := SweepOptions{OutDir: dir, Key: "scale=test", Resume: true, Log: io.Discard}

	sum := RunSweep(context.Background(), sweepTasks("fig2", &ran), opt)
	if sum.OK() {
		t.Fatal("sweep with a failing task must not be OK")
	}
	if got := sum.Count(TaskDone); got != 2 {
		t.Errorf("done = %d, want 2 (siblings of the failure must complete)", got)
	}
	failed := sum.Failed()
	if len(failed) != 1 || failed[0].ID != "fig2" {
		t.Fatalf("failed = %+v, want exactly fig2", failed)
	}
	var sb strings.Builder
	sum.Print(&sb)
	out := sb.String()
	for _, want := range []string{"fig2", "injected failure in fig2", "1 failed", "sweep_test.go"} {
		if !strings.Contains(out, want) {
			t.Errorf("failure summary missing %q:\n%s", want, out)
		}
	}
	// Completed artifacts exist, the failed one left no final file.
	for _, id := range []string{"fig1", "tab1"} {
		if _, err := os.Stat(filepath.Join(dir, id+".txt")); err != nil {
			t.Errorf("missing artifact %s.txt: %v", id, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2.txt")); err == nil {
		t.Error("failed task must not produce a final artifact file")
	}

	// Rerun: checkpointed artifacts are skipped, only the failure reruns.
	ran = nil
	sum2 := RunSweep(context.Background(), sweepTasks("", &ran), opt)
	if !sum2.OK() {
		t.Fatalf("rerun failed: %+v", sum2.Failed())
	}
	if got := sum2.Count(TaskSkipped); got != 2 {
		t.Errorf("rerun skipped %d, want 2", got)
	}
	if len(ran) != 1 || ran[0] != "fig2" {
		t.Errorf("rerun executed %v, want only fig2", ran)
	}
}

func TestSweepKeyChangeInvalidatesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var ran []string
	RunSweep(context.Background(), sweepTasks("", &ran),
		SweepOptions{OutDir: dir, Key: "scale=test", Resume: true, Log: io.Discard})
	ran = nil
	sum := RunSweep(context.Background(), sweepTasks("", &ran),
		SweepOptions{OutDir: dir, Key: "scale=ref", Resume: true, Log: io.Discard})
	if got := sum.Count(TaskSkipped); got != 0 {
		t.Errorf("key change skipped %d tasks, want 0", got)
	}
	if len(ran) != 3 {
		t.Errorf("key change reran %d tasks, want 3", len(ran))
	}
}

func TestSweepDeletedOutputInvalidatesEntry(t *testing.T) {
	dir := t.TempDir()
	var ran []string
	opt := SweepOptions{OutDir: dir, Key: "k", Resume: true, Log: io.Discard}
	RunSweep(context.Background(), sweepTasks("", &ran), opt)
	if err := os.Remove(filepath.Join(dir, "fig1.txt")); err != nil {
		t.Fatal(err)
	}
	ran = nil
	RunSweep(context.Background(), sweepTasks("", &ran), opt)
	if len(ran) != 1 || ran[0] != "fig1" {
		t.Errorf("after deleting fig1.txt, rerun executed %v, want only fig1", ran)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []string
	tasks := sweepTasks("", &ran)
	// Cancel from inside the first task: the rest must be marked
	// canceled, still appearing in the summary.
	orig := tasks[0].Run
	tasks[0].Run = func(c context.Context, w io.Writer) error {
		cancel()
		return orig(c, w)
	}
	sum := RunSweep(ctx, tasks, SweepOptions{Stdout: io.Discard, Log: io.Discard})
	if got := sum.Count(TaskCanceled); got != 2 {
		t.Errorf("canceled = %d, want 2", got)
	}
	if sum.OK() {
		t.Error("cancelled sweep must not be OK")
	}
	if len(sum.Results) != 3 {
		t.Errorf("summary must cover all tasks, got %d", len(sum.Results))
	}
}

func TestSweepNoOutDirWritesStdout(t *testing.T) {
	var sb strings.Builder
	var ran []string
	sum := RunSweep(context.Background(), sweepTasks("", &ran),
		SweepOptions{Stdout: &sb, Log: io.Discard})
	if !sum.OK() {
		t.Fatalf("sweep failed: %+v", sum.Failed())
	}
	for _, id := range []string{"fig1", "fig2", "tab1"} {
		if !strings.Contains(sb.String(), "content of "+id) {
			t.Errorf("stdout missing output of %s", id)
		}
	}
}

func TestManifestCorruptFileDegradesToFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := LoadManifest(dir, "k")
	if len(m.Done) != 0 || m.Key != "k" {
		t.Errorf("corrupt manifest must load fresh, got %+v", m)
	}
}

// TestBlendedETA checks the manifest-seeded / live-duration blend: the
// seed counts as etaSeedWeight virtual tasks, so live measurements take
// over as a run progresses.
func TestBlendedETA(t *testing.T) {
	cases := []struct {
		name               string
		ran                int
		ranMS, seedMS, want int64
	}{
		{"no data", 0, 0, 0, 0},
		{"seed only", 0, 0, 500, 500},
		{"live only", 4, 400, 0, 100},
		{"blend weights seed as two tasks", 1, 100, 400, (100 + 800) / 3},
		{"live dominates with many tasks", 18, 1800, 1000, (1800 + 2000) / 20},
	}
	for _, c := range cases {
		if got := blendedAvgMS(c.ran, c.ranMS, c.seedMS); got != c.want {
			t.Errorf("%s: blendedAvgMS(%d, %d, %d) = %d, want %d",
				c.name, c.ran, c.ranMS, c.seedMS, got, c.want)
		}
	}
	// A long-running sweep's estimate must converge toward the live
	// average even when the seed is wildly off.
	if got := blendedAvgMS(100, 100*50, 5000); got > 150 {
		t.Errorf("blend did not converge to live average: %d", got)
	}
}

// TestEtaNoteExportsGauge checks the sweep_eta_ms gauge tracks the
// printed estimate.
func TestEtaNoteExportsGauge(t *testing.T) {
	note := etaNote(2, 2000, nil, 3)
	if note == "" {
		t.Fatal("no ETA with live data")
	}
	if got := obs.Default.Gauge("sweep_eta_ms").Load(); got != 3000 {
		t.Errorf("sweep_eta_ms = %v, want 3000", got)
	}
}
