package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Task is one artifact of a sweep.
type Task struct {
	// ID names the artifact (file stem in -out mode, manifest key).
	ID string
	// Title describes it in progress and summary lines.
	Title string
	// Run produces the artifact. Panics are recovered by the runner.
	Run func(ctx context.Context, out io.Writer) error
}

// SweepOptions configures RunSweep.
type SweepOptions struct {
	// OutDir, when non-empty, writes one <ID>.txt file per task into
	// the directory and maintains a checkpoint manifest there.
	OutDir string
	// Key fingerprints the sweep parameters (scale, format, ...); a
	// checkpoint recorded under a different key is discarded.
	Key string
	// Resume skips tasks the checkpoint manifest records as done.
	// Meaningful only with OutDir.
	Resume bool
	// Stdout receives task output when OutDir is empty (default
	// os.Stdout).
	Stdout io.Writer
	// Log receives progress lines (default os.Stderr; io.Discard to
	// silence).
	Log io.Writer
}

// TaskStatus classifies a task's outcome.
type TaskStatus int

const (
	// TaskDone completed successfully.
	TaskDone TaskStatus = iota
	// TaskFailed returned an error or panicked.
	TaskFailed
	// TaskSkipped was already done per the checkpoint manifest.
	TaskSkipped
	// TaskCanceled was not run because the sweep context was cancelled
	// (SIGINT or timeout) before its turn.
	TaskCanceled
)

// String names the status.
func (s TaskStatus) String() string {
	switch s {
	case TaskDone:
		return "done"
	case TaskFailed:
		return "FAILED"
	case TaskSkipped:
		return "skipped"
	case TaskCanceled:
		return "canceled"
	}
	return "unknown"
}

// TaskResult is one task's outcome.
type TaskResult struct {
	ID       string
	Title    string
	Status   TaskStatus
	Err      error // non-nil iff Status == TaskFailed
	Duration time.Duration
}

// Summary aggregates a sweep's outcomes.
type Summary struct {
	Results []TaskResult
}

// Failed returns the failing results.
func (s *Summary) Failed() []TaskResult {
	var out []TaskResult
	for _, r := range s.Results {
		if r.Status == TaskFailed {
			out = append(out, r)
		}
	}
	return out
}

// Count returns how many results have the given status.
func (s *Summary) Count(status TaskStatus) int {
	n := 0
	for _, r := range s.Results {
		if r.Status == status {
			n++
		}
	}
	return n
}

// OK reports whether every task completed (done or skipped).
func (s *Summary) OK() bool {
	return s.Count(TaskFailed) == 0 && s.Count(TaskCanceled) == 0
}

// Print writes the sweep summary: one line per task, then the full
// failure details — each failed artifact with its error and, for
// recovered panics, the stack trace.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "\nsweep summary: %d done, %d skipped, %d failed, %d canceled\n",
		s.Count(TaskDone), s.Count(TaskSkipped), s.Count(TaskFailed), s.Count(TaskCanceled))
	for _, r := range s.Results {
		if r.Status == TaskFailed {
			fmt.Fprintf(w, "  %-8s %-10s %s\n", r.ID, r.Status, r.Err)
		} else {
			fmt.Fprintf(w, "  %-8s %-10s\n", r.ID, r.Status)
		}
	}
	for _, r := range s.Failed() {
		fmt.Fprintf(w, "\n--- %s: %s ---\n%v\n", r.ID, r.Title, r.Err)
		if stack := StackOf(r.Err); stack != nil {
			fmt.Fprintf(w, "%s", stack)
		}
	}
}

// RunSweep executes tasks in order with per-task panic isolation: a
// failing task is recorded in the summary and the sweep moves on, so
// one corrupt artifact degrades the run instead of killing it. With
// OutDir set, each task writes to <ID>.txt.partial, renamed to
// <ID>.txt on success, and a checkpoint manifest is updated after
// every completion; rerunning with Resume skips completed artifacts.
// Context cancellation (SIGINT, -timeout) stops the sweep at the next
// task boundary, marking the remainder canceled — the summary still
// covers everything.
func RunSweep(ctx context.Context, tasks []Task, opt SweepOptions) Summary {
	if opt.Stdout == nil {
		opt.Stdout = os.Stdout
	}
	if opt.Log == nil {
		opt.Log = os.Stderr
	}
	var manifest *Manifest
	if opt.OutDir != "" {
		manifest = LoadManifest(opt.OutDir, opt.Key)
	}

	sum := Summary{Results: make([]TaskResult, 0, len(tasks))}
	for _, t := range tasks {
		if ctx.Err() != nil {
			sum.Results = append(sum.Results, TaskResult{ID: t.ID, Title: t.Title, Status: TaskCanceled})
			continue
		}
		if manifest != nil && opt.Resume && manifest.IsDone(opt.OutDir, t.ID) {
			fmt.Fprintf(opt.Log, "skipping %s (checkpointed in %s)\n", t.ID, ManifestName)
			sum.Results = append(sum.Results, TaskResult{ID: t.ID, Title: t.Title, Status: TaskSkipped})
			continue
		}
		fmt.Fprintf(opt.Log, "running %s (%s)...\n", t.ID, t.Title)
		start := time.Now()
		err := runOne(ctx, t, opt, manifest)
		res := TaskResult{ID: t.ID, Title: t.Title, Status: TaskDone, Duration: time.Since(start)}
		if err != nil {
			res.Status = TaskFailed
			res.Err = err
			fmt.Fprintf(opt.Log, "  FAILED in %s: %v\n", res.Duration.Truncate(time.Millisecond), err)
		} else {
			fmt.Fprintf(opt.Log, "  done in %s\n", res.Duration.Truncate(time.Millisecond))
		}
		sum.Results = append(sum.Results, res)
	}
	return sum
}

// runOne executes a single task behind the panic boundary, handling
// output-file and checkpoint plumbing.
func runOne(ctx context.Context, t Task, opt SweepOptions, manifest *Manifest) error {
	var out io.Writer = opt.Stdout
	var f *os.File
	final := t.ID + ".txt"
	if opt.OutDir != "" {
		var err error
		f, err = os.Create(filepath.Join(opt.OutDir, final+".partial"))
		if err != nil {
			return err
		}
		out = f
	}
	start := time.Now()
	err := Recover(func() error { return t.Run(ctx, out) })
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			// Keep the partial file for post-mortems but never let it
			// masquerade as a finished artifact.
			return err
		}
		if err := os.Rename(f.Name(), filepath.Join(opt.OutDir, final)); err != nil {
			return err
		}
	}
	if err != nil {
		return err
	}
	if manifest != nil {
		manifest.MarkDone(t.ID, final, time.Since(start))
		if err := manifest.Save(opt.OutDir); err != nil {
			return err
		}
	}
	return nil
}
