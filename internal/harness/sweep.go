package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fvcache/internal/obs"
)

// Task is one artifact of a sweep.
type Task struct {
	// ID names the artifact (file stem in -out mode, manifest key).
	ID string
	// Title describes it in progress and summary lines.
	Title string
	// Run produces the artifact. Panics are recovered by the runner.
	Run func(ctx context.Context, out io.Writer) error
}

// SweepOptions configures RunSweep.
type SweepOptions struct {
	// OutDir, when non-empty, writes one <ID>.txt file per task into
	// the directory and maintains a checkpoint manifest there.
	OutDir string
	// Key fingerprints the sweep parameters (scale, format, ...); a
	// checkpoint recorded under a different key is discarded.
	Key string
	// Resume skips tasks the checkpoint manifest records as done.
	// Meaningful only with OutDir.
	Resume bool
	// Stdout receives task output when OutDir is empty (default
	// os.Stdout).
	Stdout io.Writer
	// Log receives progress lines (default os.Stderr; io.Discard to
	// silence).
	Log io.Writer
}

// TaskStatus classifies a task's outcome.
type TaskStatus int

const (
	// TaskDone completed successfully.
	TaskDone TaskStatus = iota
	// TaskFailed returned an error or panicked.
	TaskFailed
	// TaskSkipped was already done per the checkpoint manifest.
	TaskSkipped
	// TaskCanceled was not run because the sweep context was cancelled
	// (SIGINT or timeout) before its turn.
	TaskCanceled
)

// String names the status.
func (s TaskStatus) String() string {
	switch s {
	case TaskDone:
		return "done"
	case TaskFailed:
		return "FAILED"
	case TaskSkipped:
		return "skipped"
	case TaskCanceled:
		return "canceled"
	}
	return "unknown"
}

// TaskResult is one task's outcome.
type TaskResult struct {
	ID       string
	Title    string
	Status   TaskStatus
	Err      error // non-nil iff Status == TaskFailed
	Duration time.Duration
	// CheckpointErr records a checkpoint-manifest write failure after
	// the task's artifact completed successfully: the artifact itself
	// is valid, but a rerun with Resume will redo the task. Surfaced in
	// the failure summary instead of failing (or silently dropping) the
	// otherwise-successful task.
	CheckpointErr error
}

// Summary aggregates a sweep's outcomes.
type Summary struct {
	Results []TaskResult
}

// Failed returns the failing results.
func (s *Summary) Failed() []TaskResult {
	var out []TaskResult
	for _, r := range s.Results {
		if r.Status == TaskFailed {
			out = append(out, r)
		}
	}
	return out
}

// Count returns how many results have the given status.
func (s *Summary) Count(status TaskStatus) int {
	n := 0
	for _, r := range s.Results {
		if r.Status == status {
			n++
		}
	}
	return n
}

// CheckpointErrs returns the results whose checkpoint-manifest write
// failed (their artifacts are still valid).
func (s *Summary) CheckpointErrs() []TaskResult {
	var out []TaskResult
	for _, r := range s.Results {
		if r.CheckpointErr != nil {
			out = append(out, r)
		}
	}
	return out
}

// OK reports whether every task completed (done or skipped).
func (s *Summary) OK() bool {
	return s.Count(TaskFailed) == 0 && s.Count(TaskCanceled) == 0
}

// Print writes the sweep summary: one line per task, then the full
// failure details — each failed artifact with its error and, for
// recovered panics, the stack trace — and finally any checkpoint
// write failures, so a sweep whose artifacts all completed still
// reports that its resume state is stale.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "\nsweep summary: %d done, %d skipped, %d failed, %d canceled",
		s.Count(TaskDone), s.Count(TaskSkipped), s.Count(TaskFailed), s.Count(TaskCanceled))
	if n := len(s.CheckpointErrs()); n > 0 {
		fmt.Fprintf(w, ", %d checkpoint write errors", n)
	}
	fmt.Fprintln(w)
	for _, r := range s.Results {
		if r.Status == TaskFailed {
			fmt.Fprintf(w, "  %-8s %-10s %s\n", r.ID, r.Status, r.Err)
		} else {
			fmt.Fprintf(w, "  %-8s %-10s\n", r.ID, r.Status)
		}
	}
	for _, r := range s.Failed() {
		fmt.Fprintf(w, "\n--- %s: %s ---\n%v\n", r.ID, r.Title, r.Err)
		if stack := StackOf(r.Err); stack != nil {
			fmt.Fprintf(w, "%s", stack)
		}
	}
	if ck := s.CheckpointErrs(); len(ck) > 0 {
		fmt.Fprintf(w, "\ncheckpoint manifest write failures (artifacts are valid; a -resume rerun will redo them):\n")
		for _, r := range ck {
			fmt.Fprintf(w, "  %-8s %v\n", r.ID, r.CheckpointErr)
		}
	}
}

// RunSweep executes tasks in order with per-task panic isolation: a
// failing task is recorded in the summary and the sweep moves on, so
// one corrupt artifact degrades the run instead of killing it. With
// OutDir set, each task writes to <ID>.txt.partial, renamed to
// <ID>.txt on success, and a checkpoint manifest is updated after
// every completion; rerunning with Resume skips completed artifacts.
// Context cancellation (SIGINT, -timeout) stops the sweep at the next
// task boundary, marking the remainder canceled — the summary still
// covers everything.
func RunSweep(ctx context.Context, tasks []Task, opt SweepOptions) Summary {
	if opt.Stdout == nil {
		opt.Stdout = os.Stdout
	}
	if opt.Log == nil {
		opt.Log = os.Stderr
	}
	var manifest *Manifest
	if opt.OutDir != "" {
		manifest = LoadManifest(opt.OutDir, opt.Key)
	}
	sweepSpan := obs.Begin("sweep")
	defer sweepSpan.Done()

	total := len(tasks)
	var ranMS int64 // total wall-clock of tasks executed this run
	var ran int
	sum := Summary{Results: make([]TaskResult, 0, total)}
	for i, t := range tasks {
		if ctx.Err() != nil {
			sum.Results = append(sum.Results, TaskResult{ID: t.ID, Title: t.Title, Status: TaskCanceled})
			continue
		}
		if manifest != nil && opt.Resume && manifest.IsDone(opt.OutDir, t.ID) {
			fmt.Fprintf(opt.Log, "[%d/%d] skipping %s (checkpointed in %s)\n", i+1, total, t.ID, ManifestName)
			obs.SweepTasksSkipped.Inc()
			sum.Results = append(sum.Results, TaskResult{ID: t.ID, Title: t.Title, Status: TaskSkipped})
			continue
		}
		fmt.Fprintf(opt.Log, "[%d/%d] running %s (%s)...%s\n", i+1, total, t.ID, t.Title,
			etaNote(ran, ranMS, manifest, total-i))
		obs.Log.Info("sweep task start", "task", t.ID, "index", i+1, "total", total)
		span := sweepSpan.Begin(t.ID)
		start := time.Now()
		err, ckptErr := runOne(ctx, t, opt, manifest)
		span.Done()
		res := TaskResult{
			ID: t.ID, Title: t.Title, Status: TaskDone,
			Duration: time.Since(start), CheckpointErr: ckptErr,
		}
		ran++
		ranMS += res.Duration.Milliseconds()
		obs.SweepTaskMS.Observe(uint64(res.Duration.Milliseconds()))
		if err != nil {
			res.Status = TaskFailed
			res.Err = err
			obs.SweepTasksFailed.Inc()
			fmt.Fprintf(opt.Log, "  FAILED in %s: %v\n", res.Duration.Truncate(time.Millisecond), err)
			obs.Log.Warn("sweep task failed", "task", t.ID, "ms", res.Duration.Milliseconds(), "err", err.Error())
		} else {
			obs.SweepTasksDone.Inc()
			fmt.Fprintf(opt.Log, "  done in %s\n", res.Duration.Truncate(time.Millisecond))
			obs.Log.Info("sweep task done", "task", t.ID, "ms", res.Duration.Milliseconds())
		}
		if ckptErr != nil {
			obs.CheckpointErrors.Inc()
			fmt.Fprintf(opt.Log, "  checkpoint write failed (artifact kept): %v\n", ckptErr)
			obs.Log.Warn("checkpoint write failed", "task", t.ID, "err", ckptErr.Error())
		}
		sum.Results = append(sum.Results, res)
	}
	return sum
}

// etaSeedWeight is how many virtual tasks the checkpoint manifest's
// recorded average contributes to the blended ETA: live durations from
// this run dominate once more than two tasks have finished, so the
// estimate tightens as the run progresses instead of trusting a stale
// manifest (or the first, often unrepresentative, task) forever.
const etaSeedWeight = 2

// etaNote estimates the remaining sweep time by blending the average
// duration of tasks executed this run with the checkpoint manifest's
// recorded durations (a resumed sweep knows how long its finished
// siblings took before any new task completes). Empty when no estimate
// is available yet. The live estimate is also exported as the
// sweep_eta_ms gauge.
func etaNote(ran int, ranMS int64, manifest *Manifest, remaining int) string {
	avgMS := blendedAvgMS(ran, ranMS, manifestAvgMS(manifest))
	if avgMS <= 0 || remaining <= 0 {
		return ""
	}
	eta := time.Duration(avgMS*int64(remaining)) * time.Millisecond
	obs.Default.Gauge("sweep_eta_ms").Set(float64(eta.Milliseconds()))
	return fmt.Sprintf(" (eta %s)", eta.Truncate(time.Second))
}

func manifestAvgMS(m *Manifest) int64 {
	if m == nil {
		return 0
	}
	return m.AvgDurationMS()
}

// blendedAvgMS folds live per-task durations into the manifest-seeded
// average, weighting the seed as etaSeedWeight virtual tasks.
func blendedAvgMS(ran int, ranMS, seedMS int64) int64 {
	switch {
	case ran > 0 && seedMS > 0:
		return (ranMS + seedMS*etaSeedWeight) / int64(ran+etaSeedWeight)
	case ran > 0:
		return ranMS / int64(ran)
	default:
		return seedMS
	}
}

// runOne executes a single task behind the panic boundary, handling
// output-file and checkpoint plumbing. The checkpoint-manifest write
// error is returned separately from the task error: a manifest that
// cannot be saved does not invalidate the completed artifact, but it
// must surface in the summary rather than vanish.
func runOne(ctx context.Context, t Task, opt SweepOptions, manifest *Manifest) (taskErr, ckptErr error) {
	var out io.Writer = opt.Stdout
	var f *os.File
	final := t.ID + ".txt"
	if opt.OutDir != "" {
		var err error
		f, err = os.Create(filepath.Join(opt.OutDir, final+".partial"))
		if err != nil {
			return err, nil
		}
		out = f
	}
	start := time.Now()
	err := Recover(func() error { return t.Run(ctx, out) })
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			// Keep the partial file for post-mortems but never let it
			// masquerade as a finished artifact.
			return err, nil
		}
		if err := os.Rename(f.Name(), filepath.Join(opt.OutDir, final)); err != nil {
			return err, nil
		}
	}
	if err != nil {
		return err, nil
	}
	if manifest != nil {
		manifest.MarkDone(t.ID, final, time.Since(start))
		if err := manifest.Save(opt.OutDir); err != nil {
			return nil, err
		}
	}
	return nil, nil
}
