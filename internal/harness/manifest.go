package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ManifestName is the checkpoint file RunSweep maintains inside the
// sweep's output directory.
const ManifestName = "manifest.json"

// ManifestEntry records one completed artifact.
type ManifestEntry struct {
	// Output is the artifact file, relative to the manifest directory.
	Output string `json:"output"`
	// CompletedAt stamps completion (UTC).
	CompletedAt time.Time `json:"completed_at"`
	// DurationMS is the wall-clock run time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
}

// Manifest is the sweep checkpoint: which artifacts finished, under
// which sweep parameters. A sweep rerun with the same output directory
// and key skips every Done entry; a key change (different scale,
// format, ...) invalidates the checkpoint wholesale, since the old
// outputs were produced under different parameters.
type Manifest struct {
	Version int                      `json:"version"`
	Key     string                   `json:"key"`
	Done    map[string]ManifestEntry `json:"done"`
}

const manifestVersion = 1

// LoadManifest reads dir's checkpoint. A missing, unreadable, corrupt,
// version-mismatched or key-mismatched manifest yields a fresh one:
// resuming is an optimization, never a correctness requirement, so a
// bad checkpoint degrades to redoing work rather than failing the
// sweep.
func LoadManifest(dir, key string) *Manifest {
	fresh := &Manifest{Version: manifestVersion, Key: key, Done: map[string]ManifestEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return fresh
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fresh
	}
	if m.Version != manifestVersion || m.Key != key || m.Done == nil {
		return fresh
	}
	return &m
}

// Save writes the manifest atomically (temp file + rename), so an
// interrupt mid-save cannot leave a torn checkpoint.
func (m *Manifest) Save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("harness: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("harness: committing manifest: %w", err)
	}
	return nil
}

// IsDone reports whether id completed in a previous run and its output
// file still exists under dir (a deleted output invalidates the entry).
func (m *Manifest) IsDone(dir, id string) bool {
	e, ok := m.Done[id]
	if !ok {
		return false
	}
	if _, err := os.Stat(filepath.Join(dir, e.Output)); err != nil {
		return false
	}
	return true
}

// MarkDone records id as completed.
func (m *Manifest) MarkDone(id, output string, d time.Duration) {
	m.Done[id] = ManifestEntry{Output: output, CompletedAt: time.Now().UTC(), DurationMS: d.Milliseconds()}
}

// AvgDurationMS returns the mean recorded task duration, or 0 when the
// manifest is empty. A resumed sweep seeds its progress ETA from this
// before any task of the new run completes.
func (m *Manifest) AvgDurationMS() int64 {
	if len(m.Done) == 0 {
		return 0
	}
	var sum int64
	for _, e := range m.Done {
		sum += e.DurationMS
	}
	return sum / int64(len(m.Done))
}
