// Package harness is the fault-tolerant run layer every entry point
// routes through. It provides:
//
//   - Map: a context-aware parallel map with per-task panic recovery,
//     optional per-task timeout, bounded retry with backoff for
//     transient failures, and first-error cancellation. sim.ParallelMap
//     is a thin panic-propagating wrapper over it.
//   - RunSweep: a sequential sweep runner with per-artifact panic
//     isolation and graceful degradation — one failing artifact is
//     reported (with its recovered stack trace) in a final failure
//     summary while the rest complete — plus a checkpoint manifest so
//     an interrupted sweep resumes without redoing finished artifacts.
//   - SignalContext: shared SIGINT/timeout plumbing for the cmd/
//     binaries.
//
// The design principle: simulation code may assert (panic) freely when
// an invariant breaks; the harness converts those asserts into errors
// at the task boundary so one corrupt artifact cannot take down a
// whole experiment sweep.
package harness

import (
	"errors"
	"fmt"
	"runtime/debug"

	"fvcache/internal/obs"
)

// PanicError is a recovered panic, carrying the panicking goroutine's
// stack so the failure summary can point at the faulty code.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

// Error formats the panic value (without the stack; see e.Stack).
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recover runs fn, converting a panic into a *PanicError. It is the
// single panic boundary the rest of the harness builds on, so the
// telemetry panic counter is maintained here and nowhere else.
func Recover(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			obs.HarnessPanics.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// transientError marks an error as transient (worth retrying).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so that IsTransient reports true; Map retries
// transient failures up to MapOptions.Retries times.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or any error it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// StackOf returns the recovered stack trace inside err's chain, or nil
// when err does not carry one.
func StackOf(err error) []byte {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe.Stack
	}
	return nil
}
