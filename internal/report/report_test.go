package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Demo", "bench", "miss%", "notes")
	t.AddRow("goboard", "1.23")
	t.AddRow("cpusim", "0.55", "with, comma")
	t.AddNote("scaled to %d accesses", 100)
	return t
}

func TestRenderAligned(t *testing.T) {
	var sb strings.Builder
	sample().Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "====", "bench", "goboard", "1.23", "note: scaled to 100 accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Rows padded: the short row must still render cleanly.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestCSVEscaping(t *testing.T) {
	var sb strings.Builder
	sample().CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"with, comma"`) {
		t.Errorf("CSV must quote cells with commas:\n%s", out)
	}
	if !strings.HasPrefix(out, "bench,miss%,notes\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestCSVQuoteEscaping(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(`say "hi"`)
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.Contains(sb.String(), `"say ""hi"""`) {
		t.Errorf("CSV must double quotes: %s", sb.String())
	}
}

func TestMarkdown(t *testing.T) {
	var sb strings.Builder
	sample().Markdown(&sb)
	out := sb.String()
	for _, want := range []string{"### Demo", "| bench | miss% | notes |", "| --- | --- | --- |", "| goboard | 1.23 |  |"} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.5); got != "50.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(1.234); got != "1.23" {
		t.Errorf("F2 = %q", got)
	}
	if got := F3(1.2345); got != "1.234" {
		t.Errorf("F3 = %q", got)
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := sb.String()
	if !strings.Contains(out, "chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Errorf("max bar must span width:\n%s", out)
	}
	// Half-value bar is half the width.
	if !strings.Contains(out, strings.Repeat("#", 5)+"\n") {
		t.Errorf("scaled bar wrong:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "", []string{"x"}, []float64{0}, 0)
	if !strings.Contains(sb.String(), "0.000") {
		t.Errorf("zero bar should render value: %s", sb.String())
	}
}
