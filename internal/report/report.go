// Package report renders experiment results as aligned text tables,
// CSV, Markdown, and simple ASCII bar charts — the textual equivalents
// of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// Render writes the table as aligned text.
func (t *Table) Render(out io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(out, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	w := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(w))
		for i := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w[i], cell)
		}
		fmt.Fprintln(out, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(w))
	for i := range w {
		seps[i] = strings.Repeat("-", w[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(out, "note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(out io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(out, strings.Join(parts, ","))
	}
	write(t.Columns)
	for _, row := range t.Rows {
		write(row)
	}
}

// Markdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown(out io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(out, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(out, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(out, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		fmt.Fprintf(out, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(out, "\n*%s*\n", n)
	}
	fmt.Fprintln(out)
}

// Pct formats a fraction in [0,1] as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats a float with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Bars renders a horizontal ASCII bar chart: one labeled bar per
// value, scaled so the maximum value spans width characters.
func Bars(out io.Writer, title string, labels []string, values []float64, width int) {
	if width <= 0 {
		width = 50
	}
	if title != "" {
		fmt.Fprintf(out, "%s\n%s\n", title, strings.Repeat("=", len(t(title))))
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(out, "%-*s %8.3f %s\n", maxLabel, l, v, strings.Repeat("#", n))
	}
}

// t truncates a title used only for underline sizing (defensive against
// pathological lengths).
func t(s string) string {
	if len(s) > 120 {
		return s[:120]
	}
	return s
}
