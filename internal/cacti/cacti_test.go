package cacti

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
)

func TestAnchors(t *testing.T) {
	m := Default08um()
	// Paper anchor 1: 512-entry FVC with 7 values (3 bits), 8 words
	// per line, is about 6ns.
	fvcT := m.FVCAccessNs(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3})
	if fvcT < 5.0 || fvcT > 7.0 {
		t.Errorf("512-entry FVC = %.2fns, want ~6ns", fvcT)
	}
	// Paper anchor 2: 4-entry fully-associative victim cache with 8
	// words per line is about 9ns.
	vcT := m.VictimAccessNs(4, 32)
	if vcT < 8.0 || vcT > 10.0 {
		t.Errorf("4-entry VC = %.2fns, want ~9ns", vcT)
	}
	// And the FVC is faster than the VC (the paper's equal-time
	// comparison pairs a 512-entry FVC with a 4-entry VC).
	if fvcT >= vcT {
		t.Errorf("FVC (%.2f) must be faster than FA VC (%.2f)", fvcT, vcT)
	}
}

func TestMonotoneInSize(t *testing.T) {
	m := Default08um()
	var prev float64
	for _, kb := range []int{4, 8, 16, 32, 64} {
		tt := m.CacheAccessNs(cache.Params{SizeBytes: kb << 10, LineBytes: 32, Assoc: 1})
		if tt <= prev {
			t.Errorf("access time must grow with size: %dKB = %.2f, prev = %.2f", kb, tt, prev)
		}
		prev = tt
	}
}

func TestMonotoneInFVCEntries(t *testing.T) {
	m := Default08um()
	var prev float64
	for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		tt := m.FVCAccessNs(fvc.Params{Entries: e, LineBytes: 32, Bits: 3})
		if tt <= prev {
			t.Errorf("FVC time must grow with entries: %d = %.2f, prev = %.2f", e, tt, prev)
		}
		prev = tt
	}
}

func TestFVCFasterThanEqualEntryDMC(t *testing.T) {
	// The compressed data field makes an FVC row far narrower than a
	// DMC row with the same entry count, so it must be faster.
	m := Default08um()
	dmc := cache.Params{SizeBytes: 512 * 32, LineBytes: 32, Assoc: 1} // 512 lines
	f := fvc.Params{Entries: 512, LineBytes: 32, Bits: 3}
	if m.FVCAccessNs(f) >= m.CacheAccessNs(dmc) {
		t.Errorf("FVC (%.2f) must be faster than same-entry DMC (%.2f)",
			m.FVCAccessNs(f), m.CacheAccessNs(dmc))
	}
}

func TestPaperTimeMatchedConfigs(t *testing.T) {
	// The paper chose 12 DMC configurations whose access time is >= a
	// 512-entry FVC's. Our model must reproduce that dominance for the
	// larger DMCs (16KB+ at any of the three line sizes).
	m := Default08um()
	fvcT := m.FVCAccessNs(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3})
	for _, kb := range []int{16, 32, 64} {
		for _, line := range []int{16, 32, 64} {
			p := cache.Params{SizeBytes: kb << 10, LineBytes: line, Assoc: 1}
			f := fvc.Params{Entries: 512, LineBytes: line, Bits: 3}
			_ = f
			if got := m.CacheAccessNs(p); got < fvcT-0.75 {
				t.Errorf("DMC %v = %.2fns unexpectedly much faster than 512e FVC %.2fns", p, got, fvcT)
			}
		}
	}
}

func TestAssociativityCostsTime(t *testing.T) {
	m := Default08um()
	dm := m.CacheAccessNs(cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1})
	w2 := m.CacheAccessNs(cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2})
	w4 := m.CacheAccessNs(cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 4})
	if !(dm < w2 && w2 < w4) {
		t.Errorf("associativity must cost time: dm=%.2f 2w=%.2f 4w=%.2f", dm, w2, w4)
	}
}

func TestFewerBitsIsFaster(t *testing.T) {
	m := Default08um()
	b1 := m.FVCAccessNs(fvc.Params{Entries: 512, LineBytes: 32, Bits: 1})
	b3 := m.FVCAccessNs(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3})
	if b1 >= b3 {
		t.Errorf("narrower codes must be faster: 1b=%.2f 3b=%.2f", b1, b3)
	}
}

func TestLog2f(t *testing.T) {
	if log2f(1) != 0 || log2f(0.5) != 0 {
		t.Error("log2f must clamp at 0 for v <= 1")
	}
	if log2f(8) != 3 {
		t.Errorf("log2f(8) = %v", log2f(8))
	}
}

func TestWordsPerLine(t *testing.T) {
	if WordsPerLine(32) != 8 {
		t.Errorf("WordsPerLine(32) = %d, want 8", WordsPerLine(32))
	}
}
