// Package cacti estimates on-chip cache access times with a CACTI-style
// analytic stage model (Jouppi & Wilton, DEC WRL TR 93/5), calibrated
// to the 0.8µm technology point the paper uses for its Figure 9
// feasibility argument.
//
// This is a reimplementation of the model's *structure* — decoder,
// wordline, bitline, sense amplifier, tag comparator and output stages,
// each with a fixed cost plus a term growing with the stage's fan —
// with constants fitted to the two anchors the paper reports: a
// 512-entry/7-value FVC at ~6ns and a 4-entry fully-associative victim
// cache at ~9ns. Absolute numbers are indicative; the experiments only
// rely on the relative ordering of geometries (bigger and wider arrays
// are slower; a small narrow FVC sits at or below a large DMC).
package cacti

import (
	"math"

	"fvcache/internal/cache"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// AddressBits is the machine address width (SPEC95-era 32-bit).
const AddressBits = 32

// Model holds the per-stage coefficients (ns and ns-per-unit terms).
// The zero value is unusable; use Default08um.
type Model struct {
	// Fixed overhead: address drivers, sense amplifier, data output.
	Base float64
	// Decoder delay per address bit decoded (log2 rows).
	PerDecodeBit float64
	// Wordline delay per column (bit of row width).
	PerColumn float64
	// Bitline delay per row.
	PerRow float64
	// Tag comparator delay per tag bit.
	PerTagBit float64
	// Output multiplexor delay per way beyond the first (set
	// associativity) in log2 terms.
	PerMuxBit float64

	// Fully-associative (CAM) stage constants.
	CAMBase      float64
	CAMPerTagBit float64
}

// Default08um is the model calibrated for 0.8µm, matching the paper's
// anchors (512-entry 7-value FVC ≈ 6ns, 4-entry victim cache ≈ 9ns).
func Default08um() Model {
	return Model{
		Base:         2.0,
		PerDecodeBit: 0.15,
		PerColumn:    0.004,
		PerRow:       0.003,
		PerTagBit:    0.05,
		PerMuxBit:    0.30,
		CAMBase:      4.5,
		CAMPerTagBit: 0.12,
	}
}

func log2f(v float64) float64 {
	if v <= 1 {
		return 0
	}
	return math.Log2(v)
}

// ramTime is the shared RAM-array stage sum.
func (m Model) ramTime(rows, cols, tagBits, assoc int) float64 {
	t := m.Base
	t += m.PerDecodeBit * log2f(float64(rows))
	t += m.PerColumn * float64(cols)
	t += m.PerRow * float64(rows)
	t += m.PerTagBit * float64(tagBits)
	if assoc > 1 {
		t += m.PerMuxBit * log2f(float64(assoc))
	}
	return t
}

// CacheAccessNs estimates the access time of a conventional cache
// (direct mapped or set associative; use a fully-associative victim
// cache with VictimAccessNs instead, which models the CAM match).
func (m Model) CacheAccessNs(p cache.Params) float64 {
	sets := p.NumSets()
	indexBits := int(math.Round(log2f(float64(sets))))
	offsetBits := int(math.Round(log2f(float64(p.LineBytes))))
	tagBits := AddressBits - indexBits - offsetBits
	if tagBits < 0 {
		tagBits = 0
	}
	// A row holds all ways of a set: data bits + tag bits per way.
	cols := p.Assoc * (p.LineBytes*8 + tagBits)
	return m.ramTime(sets, cols, tagBits, p.Assoc)
}

// FVCAccessNs estimates the access time of a direct-mapped frequent
// value cache: same stages, but the data field is the compressed code
// array, so rows are dramatically narrower. A small constant is added
// for the value decode (the select over the frequent-value registers),
// which the paper argues is fast.
func (m Model) FVCAccessNs(p fvc.Params) float64 {
	indexBits := int(math.Round(log2f(float64(p.Entries))))
	offsetBits := int(math.Round(log2f(float64(p.LineBytes))))
	tagBits := AddressBits - indexBits - offsetBits
	if tagBits < 0 {
		tagBits = 0
	}
	cols := p.DataBits() + tagBits
	const decodeSelect = 0.2 // frequent-value register select
	return m.ramTime(p.Entries, cols, tagBits, 1) + decodeSelect
}

// VictimAccessNs estimates the access time of a fully-associative
// victim cache of the given entries and line size: a CAM tag match
// followed by the data array read.
func (m Model) VictimAccessNs(entries, lineBytes int) float64 {
	offsetBits := int(math.Round(log2f(float64(lineBytes))))
	tagBits := AddressBits - offsetBits
	t := m.CAMBase
	t += m.CAMPerTagBit * float64(tagBits)
	t += m.PerColumn * float64(lineBytes*8)
	t += m.PerMuxBit * log2f(float64(entries))
	return t
}

// WordsPerLine is re-exported for callers sizing FVC geometries.
func WordsPerLine(lineBytes int) int { return lineBytes / trace.WordBytes }
