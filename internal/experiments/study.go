package experiments

import (
	"fmt"
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/freqval"
	"fvcache/internal/memsim"
	"fvcache/internal/report"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// occInterval picks the occurrence-sampling interval (the analogue of
// the paper's every-10M-instruction snapshots) per scale.
func occInterval(scale workload.Scale) uint64 {
	switch scale {
	case workload.Test:
		return 25_000
	case workload.Train:
		return 75_000
	default:
		return 150_000
	}
}

// studyRun is one combined characterization pass over a workload.
type studyRun struct {
	hist *trace.ValueHistogram
	occ  *freqval.OccurrenceSampler
}

func runStudy(w workload.Workload, scale workload.Scale) (*studyRun, error) {
	rec, err := recording(w, scale)
	if err != nil {
		return nil, err
	}
	// The occurrence sampler reads the memory image, which a live run
	// got from Env.Mem; on replay a Replayer reconstructs it. It sits
	// first in the sink chain so the sampler observes memory after each
	// event took effect, exactly as it did live.
	r := memsim.NewReplayer()
	s := &studyRun{
		hist: trace.NewValueHistogram(),
		occ:  freqval.NewOccurrenceSampler(r.Mem, occInterval(scale)),
	}
	rec.Replay(trace.MultiSink(r, s.hist, s.occ))
	s.occ.Finalize()
	return s, nil
}

// --- Figure 1 & 2: frequently encountered values ---

func frequentValuesTable(title string, suite []workload.Workload, opt Options) (*report.Table, error) {
	t := report.NewTable(title,
		"benchmark", "occ top1", "occ top3", "occ top7", "occ top10",
		"acc top1", "acc top3", "acc top7", "acc top10")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		s, err := runStudy(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		row := []string{label(w)}
		for _, k := range []int{1, 3, 7, 10} {
			row = append(row, report.Pct(s.occ.AvgCoverage(s.occ.TopOccurring(k))))
		}
		for _, k := range []int{1, 3, 7, 10} {
			row = append(row, report.Pct(s.hist.CoverageOfTopK(k)))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

func runFig1(opt Options, out io.Writer) error {
	ws, err := intSuite()
	if err != nil {
		return err
	}
	t, err := frequentValuesTable("Figure 1: frequently encountered values (integer suite)", ws, opt)
	if err != nil {
		return err
	}
	t.AddNote("paper: in the six FVL benchmarks ten values occupy >50%% of locations and ~50%% of accesses;")
	t.AddNote("paper: 129.compress and 132.ijpeg (our lzcomp, imgdct) show very little frequent value locality")
	render(opt, out, t)
	return nil
}

func runFig2(opt Options, out io.Writer) error {
	t, err := frequentValuesTable("Figure 2: frequently encountered values (floating-point suite)", workload.FP(), opt)
	if err != nil {
		return err
	}
	t.AddNote("paper: SPECfp95 benchmarks also exhibit a high degree of frequent value locality")
	render(opt, out, t)
	return nil
}

// --- Figure 3: FVL over time for the gcc analogue ---

func runFig3(opt Options, out io.Writer) error {
	w, err := workload.Get("ccomp")
	if err != nil {
		return err
	}
	// Pass 1: characterization run fixing the final top value sets.
	s, err := runStudy(w, opt.Scale)
	if err != nil {
		return err
	}
	topOcc := s.occ.TopOccurring(10)
	topAcc := freqval.TopAccessed(s.hist, 10)
	totalAcc := s.hist.Total()

	// Locations time series straight from the occurrence samples.
	tl := report.NewTable("Figure 3a: locations occupied by top accessed values over time (ccomp/126.gcc)",
		"sample@acc", "locations", "top1", "top3", "top7", "top10", "unique")
	for i, smp := range s.occ.Samples() {
		row := []string{
			fmt.Sprintf("%d", smp.AtAccess),
			fmt.Sprintf("%d", smp.Locations),
		}
		for _, k := range []int{1, 3, 7, 10} {
			row = append(row, fmt.Sprintf("%d", s.occ.CoverageAt(i, topOcc[:min(k, len(topOcc))])))
		}
		row = append(row, fmt.Sprintf("%d", smp.Unique()))
		tl.Rows = append(tl.Rows, row)
	}
	render(opt, out, tl)
	fmt.Fprintln(out)

	// Pass 2: cumulative access counts for the final top values.
	interval := totalAcc / 24
	if interval == 0 {
		interval = 1
	}
	type checkpoint struct {
		at                      uint64
		top1, top3, top7, top10 uint64
		unique                  int
	}
	var cps []checkpoint
	counts := make(map[uint32]uint64, len(topAcc))
	inTop := make(map[uint32]int, len(topAcc))
	for i, v := range topAcc {
		inTop[v] = i
	}
	seen := make(map[uint32]struct{})
	var n uint64
	sink := trace.SinkFunc(func(e trace.Event) {
		if !e.Op.IsAccess() {
			return
		}
		n++
		seen[e.Value] = struct{}{}
		if _, ok := inTop[e.Value]; ok {
			counts[e.Value]++
		}
		if n%interval == 0 {
			cp := checkpoint{at: n, unique: len(seen)}
			for v, c := range counts {
				i := inTop[v]
				if i < 1 {
					cp.top1 += c
				}
				if i < 3 {
					cp.top3 += c
				}
				if i < 7 {
					cp.top7 += c
				}
				cp.top10 += c
			}
			cps = append(cps, cp)
		}
	})
	rec, err := recording(w, opt.Scale)
	if err != nil {
		return err
	}
	rec.Replay(sink)

	ta := report.NewTable("Figure 3b: accesses involving top accessed values over time (ccomp/126.gcc)",
		"accesses", "top1", "top3", "top7", "top10", "unique values")
	for _, cp := range cps {
		ta.AddRow(fmt.Sprintf("%d", cp.at),
			fmt.Sprintf("%d", cp.top1), fmt.Sprintf("%d", cp.top3),
			fmt.Sprintf("%d", cp.top7), fmt.Sprintf("%d", cp.top10),
			fmt.Sprintf("%d", cp.unique))
	}
	ta.AddNote("paper (126.gcc): top ten values occupy ~50%% of locations and ~40%% of accesses throughout execution;")
	ta.AddNote("paper: distinct values stay near 20%% of total locations/accesses")
	render(opt, out, ta)
	return nil
}

// --- Figure 4: cache misses attributable to frequent values ---

func runFig4(opt Options, out io.Writer) error {
	cfg := core.Config{Main: cache.Params{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1}}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 4: misses involving top-10 values (16KB DMC, 16B lines)",
		"benchmark", "miss rate", "% misses w/ top-10 occurring", "% misses w/ top-10 accessed")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		s, err := runStudy(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		topOcc := s.occ.TopOccurring(10)
		topAcc := freqval.TopAccessed(s.hist, 10)
		rec, err := recording(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		total, attr, err := sim.MissAttributionSets(rec, cfg, [][]uint32{topOcc, topAcc})
		if err != nil {
			return nil, err
		}
		missRate := float64(total) / float64(s.hist.Total())
		return []string{
			label(w),
			report.Pct(missRate),
			report.Pct(float64(attr[0]) / float64(total)),
			report.Pct(float64(attr[1]) / float64(total)),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("paper: on average just under 50%% of misses involve top-10 occurring values and just over 50%% involve top-10 accessed values")
	render(opt, out, t)
	return nil
}

// --- Figure 5: spatial distribution of frequent values ---

func runFig5(opt Options, out io.Writer) error {
	w, err := workload.Get("ccomp")
	if err != nil {
		return err
	}
	// Pass 1: total access count and top-7 occurring values.
	s, err := runStudy(w, opt.Scale)
	if err != nil {
		return err
	}
	top7 := s.occ.TopOccurring(7)
	half := s.hist.Total() / 2

	// Pass 2: stop-at-midpoint scan over the replayed memory image.
	rec, err := recording(w, opt.Scale)
	if err != nil {
		return err
	}
	r := memsim.NewReplayer()
	occ := freqval.NewOccurrenceSampler(r.Mem, occInterval(opt.Scale))
	var n uint64
	var blocks []float64
	rec.Replay(trace.MultiSink(r, trace.SinkFunc(func(e trace.Event) {
		occ.Emit(e)
		if e.Op.IsAccess() {
			n++
			if n == half {
				blocks = freqval.ScanSpatial(r.Mem, occ.LiveAddrs(), top7, freqval.DefaultSpatialOptions())
			}
		}
	})))

	mean, dev := freqval.SpatialSpread(blocks)
	t := report.NewTable("Figure 5: frequent values per 8-word line, 800-word blocks (ccomp/126.gcc at 50% of execution)",
		"block", "avg frequent values per line")
	for i, b := range blocks {
		if i%8 == 0 || i == len(blocks)-1 { // print every 8th block
			t.AddRow(fmt.Sprintf("%d", i), report.F2(b))
		}
	}
	t.AddNote("mean over %d blocks = %s, mean abs deviation = %s", len(blocks), report.F2(mean), report.F2(dev))
	t.AddNote("paper: the measure is around 4 (of 7) throughout memory, i.e. frequent values are distributed quite uniformly")
	render(opt, out, t)
	return nil
}

// --- Table 1: the frequent values themselves ---

func runTab1(opt Options, out io.Writer) error {
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	type cols struct{ acc, occ []uint32 }
	per, err := pmap(opt, len(suite), func(i int) (cols, error) {
		s, err := runStudy(suite[i], opt.Scale)
		if err != nil {
			return cols{}, err
		}
		return cols{acc: freqval.TopAccessed(s.hist, 10), occ: s.occ.TopOccurring(10)}, nil
	})
	if err != nil {
		return err
	}
	header := []string{"rank"}
	for _, w := range suite {
		header = append(header, w.Name()+" acc", w.Name()+" occ")
	}
	t := report.NewTable("Table 1: top-10 frequently accessed and occurring values (hex)", header...)
	for rank := 0; rank < 10; rank++ {
		row := []string{fmt.Sprintf("%d", rank+1)}
		for _, c := range per {
			row = append(row, hexAt(c.acc, rank), hexAt(c.occ, rank))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper: small values (0, 1, ffffffff, small ints) recur across benchmarks; large values are addresses")
	render(opt, out, t)
	return nil
}

func hexAt(vals []uint32, i int) string {
	if i >= len(vals) {
		return "-"
	}
	return fmt.Sprintf("%x", vals[i])
}

// --- Table 2: input sensitivity ---

func runTab2(opt Options, out io.Writer) error {
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Table 2: frequently accessed value overlap across inputs (X/Y = X of top-Y shared with ref)",
		"benchmark", "test 7", "test 10", "train 7", "train 10")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		ref := topAccessed(w, workload.Ref, 10)
		test := topAccessed(w, workload.Test, 10)
		train := topAccessed(w, workload.Train, 10)
		return []string{
			label(w),
			fmt.Sprintf("%d/7", freqval.Overlap(test, ref, 7)),
			fmt.Sprintf("%d/10", freqval.Overlap(test, ref, 10)),
			fmt.Sprintf("%d/7", freqval.Overlap(train, ref, 7)),
			fmt.Sprintf("%d/10", freqval.Overlap(train, ref, 10)),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("paper: roughly 50%% overlap across inputs; small values are input-insensitive, addresses are not")
	render(opt, out, t)
	return nil
}

// --- Table 3: how quickly the frequent values are found ---

func runTab3(opt Options, out io.Writer) error {
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Table 3: % of execution after which top-k accessed values stop changing",
		"benchmark", "accesses", "top1 order", "top3 order", "top7 order", "top3 identity", "top7 identity")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		st := freqval.NewStabilityTracker(occInterval(opt.Scale)/8, 1, 3, 7)
		rec, err := recording(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		rec.Replay(st)
		st.Finalize()
		return []string{
			label(w),
			fmt.Sprintf("%d", st.Histogram().Total()),
			report.Pct(st.FoundAfter(0)),
			report.Pct(st.FoundAfter(1)),
			report.Pct(st.FoundAfter(2)),
			report.Pct(st.IdentityFoundAfter(1)),
			report.Pct(st.IdentityFoundAfter(2)),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("paper: values are found very quickly in most cases (0-0.5%%); 124.m88ksim's ordering settles late (63-70%%) but identities settle by 18-39%%")
	render(opt, out, t)
	return nil
}

// --- Table 4: addresses with constant values ---

// tab4Paper holds the paper's Table 4 reference numbers.
var tab4Paper = map[string]string{
	"goboard": "78.2%", "cpusim": "99.3%", "ccomp": "61.8%",
	"lispint": "28.8%", "strproc": "80.4%", "objdb": "79.9%",
	"lzcomp": "3.2%", "imgdct": "6.7%",
}

func runTab4(opt Options, out io.Writer) error {
	suite, err := intSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Table 4: referenced addresses with constant values (per allocation instance)",
		"benchmark", "measured", "paper")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		ct := freqval.NewConstAddrTracker()
		rec, err := recording(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		rec.Replay(ct)
		ct.Finalize()
		return []string{label(w), report.Pct(ct.ConstantFraction()), tab4Paper[w.Name()]}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("shape to match: the six FVL benchmarks high, the two controls near zero, lispint lowest of the six")
	render(opt, out, t)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	register(Experiment{ID: "fig1", Title: "Frequently encountered values, integer suite", Run: runFig1})
	register(Experiment{ID: "fig2", Title: "Frequently encountered values, FP suite", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "Frequent value locality over time (gcc analogue)", Run: runFig3})
	register(Experiment{ID: "fig4", Title: "Cache misses attributable to frequent values", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Spatial uniformity of frequent values", Run: runFig5})
	register(Experiment{ID: "tab1", Title: "Top-10 frequent values per benchmark", Run: runTab1})
	register(Experiment{ID: "tab2", Title: "Input sensitivity of frequent values", Run: runTab2})
	register(Experiment{ID: "tab3", Title: "Stability of the frequent value set", Run: runTab3})
	register(Experiment{ID: "tab4", Title: "Addresses with constant values", Run: runTab4})
}
