package experiments

import (
	"io"
	"strings"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/workload"
)

func testOpts() Options { return Options{Scale: workload.Test, Workers: 4} }

func TestRegistryComplete(t *testing.T) {
	all := All()
	wantIDs := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"tab1", "tab2", "tab3", "tab4",
		"xclass", "xablation", "xonline", "xenergy", "xcompress", "xl2", "xfvcassoc",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	got := map[string]bool{}
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range wantIDs {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	// Stable ordering: figures numerically, then tables, then the
	// x-series extensions.
	if all[0].ID != "fig1" || all[15].ID != "tab4" || all[len(all)-1].ID != "xonline" {
		t.Errorf("ordering wrong: first=%s mid=%s last=%s", all[0].ID, all[15].ID, all[len(all)-1].ID)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown id must error")
	}
	e, err := Get("fig9")
	if err != nil || e.ID != "fig9" {
		t.Errorf("Get(fig9) = %v, %v", e.ID, err)
	}
}

// runAndCheck executes an experiment at test scale and asserts the
// output mentions every expected substring.
func runAndCheck(t *testing.T, id string, wants ...string) string {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Run(testOpts(), &sb); err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	out := sb.String()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("%s output missing %q:\n%s", id, w, truncate(out))
		}
	}
	return out
}

func truncate(s string) string {
	if len(s) > 1500 {
		return s[:1500] + "..."
	}
	return s
}

func TestFig1(t *testing.T) {
	out := runAndCheck(t, "fig1", "Figure 1", "goboard (099.go)", "lzcomp (129.compress)", "acc top10")
	if !strings.Contains(out, "%") {
		t.Error("expected percentage cells")
	}
}

func TestFig2(t *testing.T) {
	runAndCheck(t, "fig2", "Figure 2", "stencil2d (102.swim)", "mgrid3d (107.mgrid)")
}

func TestFig3(t *testing.T) {
	runAndCheck(t, "fig3", "Figure 3a", "Figure 3b", "unique")
}

func TestFig4(t *testing.T) {
	runAndCheck(t, "fig4", "Figure 4", "occurring", "accessed")
}

func TestFig5(t *testing.T) {
	runAndCheck(t, "fig5", "Figure 5", "mean over")
}

func TestFig9(t *testing.T) {
	runAndCheck(t, "fig9", "Figure 9a", "Figure 9b", "victim cache")
}

func TestFig10(t *testing.T) {
	runAndCheck(t, "fig10", "Figure 10", "64e", "4096e", "cpusim (124.m88ksim)")
}

func TestFig11(t *testing.T) {
	runAndCheck(t, "fig11", "Figure 11", "frequent codes", "x")
}

func TestFig14(t *testing.T) {
	runAndCheck(t, "fig14", "Figure 14", "2-way reduction", "4-way reduction")
}

func TestFig15(t *testing.T) {
	runAndCheck(t, "fig15", "Figure 15a", "Figure 15b", "VC reduction", "FVC reduction")
}

func TestTab1(t *testing.T) {
	runAndCheck(t, "tab1", "Table 1", "rank", "goboard acc")
}

func TestTab2(t *testing.T) {
	out := runAndCheck(t, "tab2", "Table 2", "test 7", "train 10")
	if !strings.Contains(out, "/7") || !strings.Contains(out, "/10") {
		t.Error("expected X/Y overlap cells")
	}
}

func TestTab3(t *testing.T) {
	runAndCheck(t, "tab3", "Table 3", "top1 order", "top7 identity")
}

func TestTab4(t *testing.T) {
	out := runAndCheck(t, "tab4", "Table 4", "measured", "paper", "99.3%")
	_ = out
}

// Fig12 and Fig13 are the heavy sweeps; run them at test scale to keep
// CI time modest but still assert structure end to end.
func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep")
	}
	runAndCheck(t, "fig12", "Figure 12", "8KB/16B", "64KB/64B", "top 7 values")
}

func TestFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep")
	}
	runAndCheck(t, "fig13", "Figure 13", "4KB+FVC", "64KB", "7 frequent value(s)")
}

func TestOrderKey(t *testing.T) {
	if !(orderKey("fig2") < orderKey("fig10")) {
		t.Error("fig2 must sort before fig10")
	}
	if !(orderKey("fig15") < orderKey("tab1")) {
		t.Error("figures must sort before tables")
	}
}

func TestTopAccessedMemoized(t *testing.T) {
	w, _ := workload.Get("goboard")
	a := topAccessed(w, workload.Test, 7)
	b := topAccessed(w, workload.Test, 10)
	if len(a) != 7 || len(b) != 10 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("top-7 must be a prefix of top-10 (same memoized profile)")
		}
	}
}

func TestReduction(t *testing.T) {
	if got := reduction(2, 1); got != 50 {
		t.Errorf("reduction(2,1) = %v", got)
	}
	if got := reduction(0, 1); got != 0 {
		t.Errorf("reduction(0,1) = %v", got)
	}
}

var _ = io.Discard // keep io imported for future use

func TestXClass(t *testing.T) {
	runAndCheck(t, "xclass", "three-C", "compulsory", "conflict")
}

func TestXAblation(t *testing.T) {
	runAndCheck(t, "xablation", "ablations", "no write-miss alloc", "skip empty footprints")
}

func TestXOnline(t *testing.T) {
	runAndCheck(t, "xonline", "online", "profiled FVT", "FVT updates")
}

func TestXEnergy(t *testing.T) {
	runAndCheck(t, "xenergy", "energy", "saving", "traffic KB")
}

func TestXCompress(t *testing.T) {
	runAndCheck(t, "xcompress", "FVcomp", "lines compressed", "FPC bits/word")
}

func TestXL2(t *testing.T) {
	runAndCheck(t, "xl2", "L2", "off-chip", "traffic saving")
}

func TestXFVCAssoc(t *testing.T) {
	runAndCheck(t, "xfvcassoc", "associativity", "2-way FVC red.", "4-way FVC red.")
}

// TestDMCMissPctsMatchesReplay pins the analytic baseline path the
// DMC-size sweeps (fig12/fig13) now use: the Mattson-pass miss
// percentages must equal fused-replay measurements of the same plain
// direct-mapped geometries.
func TestDMCMissPctsMatchesReplay(t *testing.T) {
	w, err := workload.Get("goboard")
	if err != nil {
		t.Fatal(err)
	}
	opt := testOpts()
	const line = 32
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 64 << 10}
	analytic, err := dmcMissPcts(opt, w, line, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []core.Config
	for _, sz := range sizes {
		cfgs = append(cfgs, core.Config{Main: cache.Params{SizeBytes: sz, LineBytes: line, Assoc: 1}})
	}
	replay, err := missPcts(w, opt.Scale, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		if analytic[sz] != replay[i] {
			t.Errorf("%dKB: analytic %v%%, replay %v%%", sz>>10, analytic[sz], replay[i])
		}
	}
}
