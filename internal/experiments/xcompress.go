package experiments

import (
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/compress"
	"fvcache/internal/core"
	"fvcache/internal/fpc"
	"fvcache/internal/fvc"
	"fvcache/internal/report"
	"fvcache/internal/trace"
)

// runXCompress evaluates the paper's follow-up direction (its
// reference [11]): compressing the data cache itself with frequent
// value encoding, compared against the side-structure FVC — and, for
// context, how the later pattern-based (FPC-style) compression
// philosophy fares on the same value streams.
func runXCompress(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}

	t := report.NewTable("Extension: FV-compressed data cache vs DMC+FVC (16KB, 8wpl)",
		"benchmark", "DMC miss%", "DMC+FVC miss%", "FVcomp miss%", "lines compressed", "FPC bits/word")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		pcts, err := missPcts(w, opt.Scale, []core.Config{
			{Main: main},
			withFVC(w, opt.Scale, main, 512, 3),
		})
		if err != nil {
			return nil, err
		}
		base, aug := pcts[0], pcts[1]

		// FV-compressed cache of the same physical size, using the
		// same profiled top-7 values.
		tbl, err := fvc.NewTable(3, topAccessed(w, opt.Scale, 7))
		if err != nil {
			return nil, err
		}
		cc := compress.MustNew(compress.Params{SizeBytes: main.SizeBytes, LineBytes: main.LineBytes}, tbl)
		var ph fpc.Histogram
		rec, err := recording(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		rec.Replay(trace.MultiSink(cc, &ph))

		return []string{
			label(w),
			report.F3(base),
			report.F3(aug),
			report.F3(cc.Stats().MissRate() * 100),
			report.Pct(cc.CompressedFraction()),
			report.F2(ph.AvgBits()),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("FVcomp = frequent-value compressed cache (two compressed lines per frame), the paper's reference [11]")
	t.AddNote("FPC bits/word = average pattern-compressed size of the accessed values (32 = incompressible)")
	render(opt, out, t)
	return nil
}

func init() {
	register(Experiment{ID: "xcompress", Title: "FV-compressed data cache (extension)", Run: runXCompress})
}
