// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment is registered under the paper's artifact
// id (fig1..fig15, tab1..tab4), runs the synthetic workload suite
// through the simulator, and renders its results next to the paper's
// reference numbers so shape can be compared at a glance.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/mrc"
	"fvcache/internal/report"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects the workload input size (default Ref).
	Scale workload.Scale
	// Workers bounds simulation parallelism (<=0 means GOMAXPROCS).
	Workers int
	// Markdown renders tables as GitHub-flavored Markdown instead of
	// aligned text.
	Markdown bool
	// Ctx cancels in-flight simulation fan-out (nil means Background).
	// The cmd binaries wire their -timeout / SIGINT context here.
	Ctx context.Context
}

// DefaultOptions runs on reference inputs with full parallelism.
func DefaultOptions() Options { return Options{Scale: workload.Ref} }

// context returns the run's cancellation context.
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// pmap fans fn(0..n-1) across opt.Workers goroutines through the
// harness: a panicking task becomes an error with its stack, the first
// failure cancels the remaining tasks, and opt.Ctx cancellation is
// observed between tasks. Every experiment's fan-out goes through
// here so no Run can take down a sweep.
func pmap[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return harness.Map(opt.context(), n, harness.MapOptions{Workers: opt.Workers},
		func(_ context.Context, i int) (T, error) { return fn(i) })
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the paper artifact id, e.g. "fig10" or "tab3".
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and renders to out.
	Run func(opt Options, out io.Writer) error
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment in a stable order (figures then tables,
// numerically).
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts fig1 < fig2 < ... < fig15 < tab1 < ... < extensions,
// despite the mixed alphanumeric ids.
func orderKey(id string) string {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("a%03d", n)
	}
	if _, err := fmt.Sscanf(id, "tab%d", &n); err == nil {
		return fmt.Sprintf("b%03d", n)
	}
	return "c" + id
}

// topAccessed returns the top-k frequently accessed values for w at
// scale, via the sim-level singleflight profile cache (the profile
// pass is pure, so every sweep shares one histogram scan per workload).
func topAccessed(w workload.Workload, scale workload.Scale, k int) []uint32 {
	return sim.Profiles.TopAccessed(w, scale, k)
}

// recording returns the shared recording of w at scale from the
// process-wide cache: every sweep records each (workload, scale) once
// and fans the replays across harness workers.
func recording(w workload.Workload, scale workload.Scale) (*trace.Recording, error) {
	rec, err := sim.Recordings.Get(w, scale)
	if err != nil {
		return nil, fmt.Errorf("recording %s: %w", w.Name(), err)
	}
	return rec, nil
}

// measureRec is sim.Measure driven from the shared recording of w.
func measureRec(w workload.Workload, scale workload.Scale, cfg core.Config, mo sim.MeasureOptions) (sim.MeasureResult, error) {
	rec, err := recording(w, scale)
	if err != nil {
		return sim.MeasureResult{}, err
	}
	res, err := sim.MeasureRecorded(rec, cfg, mo)
	if err != nil {
		return sim.MeasureResult{}, fmt.Errorf("measuring %s: %w", w.Name(), err)
	}
	return res, nil
}

// measureBatch replays w's shared recording once, driving every config
// in cfgs in lockstep through the fused batch engine. Sweeps group
// their jobs by workload and fan the whole configuration batch through
// this single pass; parallelism comes from workloads via pmap, not
// from redundant re-decodes of the same recording.
func measureBatch(w workload.Workload, scale workload.Scale, cfgs []core.Config, mo sim.MeasureOptions) ([]sim.MeasureResult, error) {
	rec, err := recording(w, scale)
	if err != nil {
		return nil, err
	}
	if mo.Label == "" {
		mo.Label = w.Name()
	}
	res, err := sim.MeasureRecordedBatch(rec, cfgs, mo)
	if err != nil {
		return nil, fmt.Errorf("measuring %s: %w", w.Name(), err)
	}
	return res, nil
}

// missPcts is measureBatch reduced to per-config miss rates in %.
func missPcts(w workload.Workload, scale workload.Scale, cfgs []core.Config) ([]float64, error) {
	res, err := measureBatch(w, scale, cfgs, sim.MeasureOptions{})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.Stats.MissRate() * 100
	}
	return out, nil
}

// dmcMissPcts computes plain direct-mapped-cache miss percentages
// analytically: ONE Mattson reuse-distance pass per line size replaces
// one fused-replay lane per size point. The result is keyed by cache
// size in bytes and is bit-identical (in miss counts) to a replay of
// each geometry — exact because a plain DMC is pure set-indexed LRU;
// FVC, victim-cache and L2 configurations stay on the replay engine.
func dmcMissPcts(opt Options, w workload.Workload, lineBytes int, sizesBytes []int) (map[int]float64, error) {
	rec, err := recording(w, opt.Scale)
	if err != nil {
		return nil, err
	}
	maxSize := 0
	sets := make([]int, 0, len(sizesBytes))
	for _, sz := range sizesBytes {
		if sz > maxSize {
			maxSize = sz
		}
		sets = append(sets, sz/lineBytes)
	}
	res, err := mrc.Analyze(rec, mrc.Options{
		LineBytes:    lineBytes,
		MaxSizeBytes: maxSize,
		SetCounts:    sets,
		// Only the direct-mapped point of each geometry is consumed, so
		// MaxAssoc 1 selects the fused last-line-table fast path (which
		// needs no Shards fan-out — see mrc's dmtable.go).
		MaxAssoc: 1,
		Ctx:      opt.context(),
	})
	if err != nil {
		return nil, fmt.Errorf("mrc pass %s: %w", w.Name(), err)
	}
	out := make(map[int]float64, len(res.Curves))
	for _, c := range res.Curves {
		// The direct-mapped point of each per-set curve is assoc 1.
		out[c.Sets*lineBytes] = c.Points[0].MissRatio * 100
	}
	return out, nil
}

// suite resolves a list of workload names, failing (not panicking) on
// an unknown name so the error reaches the sweep summary.
func suite(names ...string) ([]workload.Workload, error) {
	out := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, err := workload.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// fvlSuite lists the FVL six in a stable order mirroring the paper's
// benchmark order.
func fvlSuite() ([]workload.Workload, error) {
	return suite("goboard", "cpusim", "ccomp", "lispint", "strproc", "objdb")
}

// intSuite lists all eight integer workloads in paper order.
func intSuite() ([]workload.Workload, error) {
	return suite("goboard", "cpusim", "ccomp", "lispint", "strproc", "objdb", "lzcomp", "imgdct")
}

// render writes a table in the format the options request.
func render(opt Options, out io.Writer, t *report.Table) {
	if opt.Markdown {
		t.Markdown(out)
		return
	}
	t.Render(out)
}

// label renders "workload (analogue)" for table rows.
func label(w workload.Workload) string {
	return fmt.Sprintf("%s (%s)", w.Name(), w.Analogue())
}

// reduction returns the percentage reduction from base to aug.
func reduction(base, aug float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - aug) / base * 100
}
