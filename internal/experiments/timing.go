package experiments

import (
	"fmt"
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/cacti"
	"fvcache/internal/fvc"
	"fvcache/internal/report"
)

// runFig9 reproduces the CACTI access-time comparison: DMC access
// times across the evaluated geometries versus FVC access times across
// entry counts, at the 0.8µm technology point.
func runFig9(opt Options, out io.Writer) error {
	m := cacti.Default08um()

	td := report.NewTable("Figure 9a: DMC access time (ns, 0.8um model)",
		"size", "16B lines", "32B lines", "64B lines")
	for _, kb := range []int{4, 8, 16, 32, 64} {
		row := []string{cache.FormatSize(kb << 10)}
		for _, line := range []int{16, 32, 64} {
			row = append(row, report.F2(m.CacheAccessNs(cache.Params{
				SizeBytes: kb << 10, LineBytes: line, Assoc: 1,
			})))
		}
		td.Rows = append(td.Rows, row)
	}
	render(opt, out, td)
	fmt.Fprintln(out)

	tf := report.NewTable("Figure 9b: FVC access time (ns, 7 frequent values / 3-bit codes)",
		"entries", "16B lines", "32B lines", "64B lines")
	for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		row := []string{fmt.Sprintf("%d", e)}
		for _, line := range []int{16, 32, 64} {
			row = append(row, report.F2(m.FVCAccessNs(fvc.Params{
				Entries: e, LineBytes: line, Bits: 3,
			})))
		}
		tf.Rows = append(tf.Rows, row)
	}
	tf.AddNote("victim cache (fully associative, 32B lines): 4 entries = %sns, 16 entries = %sns",
		report.F2(m.VictimAccessNs(4, 32)), report.F2(m.VictimAccessNs(16, 32)))
	tf.AddNote("paper: many DMC configurations have access time >= an equal-or-larger FVC; 512e FVC ~6ns vs 4-entry VC ~9ns")
	render(opt, out, tf)
	return nil
}

func init() {
	register(Experiment{ID: "fig9", Title: "Access time of FVC vs DMC (CACTI model)", Run: runFig9})
}
