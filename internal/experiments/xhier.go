package experiments

import (
	"fmt"
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/report"
	"fvcache/internal/sim"
)

// runXL2 places a 128KB L2 behind the hierarchy and measures whether
// the FVC's benefit survives at the off-chip boundary — the question a
// modern reader asks of the paper's single-level evaluation.
func runXL2(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	l2 := cache.Params{SizeBytes: 128 << 10, LineBytes: 32, Assoc: 4}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: FVC behind a 128KB 4-way L2 (16KB L1, 8wpl)",
		"benchmark", "L1 miss% (no FVC)", "L1 miss% (+FVC)", "off-chip KB (no FVC)", "off-chip KB (+FVC)", "traffic saving")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		baseCfg := core.Config{Main: main, L2: &l2}
		augCfg := withFVC(w, opt.Scale, main, 512, 3)
		augCfg.L2 = &l2
		res, err := measureBatch(w, opt.Scale, []core.Config{baseCfg, augCfg}, sim.MeasureOptions{})
		if err != nil {
			return nil, err
		}
		b, a := res[0].Stats, res[1].Stats
		return []string{
			label(w),
			report.F3(b.MissRate() * 100),
			report.F3(a.MissRate() * 100),
			fmt.Sprintf("%d", b.TrafficBytes()>>10),
			fmt.Sprintf("%d", a.TrafficBytes()>>10),
			report.F2(reduction(float64(b.TrafficWords), float64(a.TrafficWords))) + "%",
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("an L2 absorbs refetches the FVC would otherwise catch, but FVC fill/writeback savings still cut off-chip traffic")
	render(opt, out, t)
	return nil
}

// runXAssocFVC varies the FVC's own associativity — the paper keeps it
// direct mapped; follow-up designs used small set-associative FVCs.
func runXAssocFVC(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	assocs := []int{1, 2, 4}
	header := []string{"benchmark", "DMC miss%"}
	for _, a := range assocs {
		header = append(header, fmt.Sprintf("%d-way FVC red.", a))
	}
	t := report.NewTable("Extension: FVC associativity (16KB DMC + 512-entry/7v FVC)", header...)
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		cfgs := []core.Config{{Main: main}}
		for _, a := range assocs {
			cfgs = append(cfgs, core.Config{
				Main:           main,
				FVC:            &fvc.Params{Entries: 512, LineBytes: main.LineBytes, Bits: 3, Assoc: a},
				FrequentValues: topAccessed(w, opt.Scale, 7),
			})
		}
		pcts, err := missPcts(w, opt.Scale, cfgs)
		if err != nil {
			return nil, err
		}
		row := []string{label(w), report.F3(pcts[0])}
		for _, m := range pcts[1:] {
			row = append(row, report.F2(reduction(pcts[0], m))+"%")
		}
		return row, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("the paper's FVC is direct mapped; associativity helps when FVC entries conflict (many hot evicted lines per set)")
	render(opt, out, t)
	return nil
}

func init() {
	register(Experiment{ID: "xl2", Title: "FVC behind an L2 (extension)", Run: runXL2})
	register(Experiment{ID: "xfvcassoc", Title: "FVC associativity (extension)", Run: runXAssocFVC})
}
