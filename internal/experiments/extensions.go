package experiments

import (
	"fmt"
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/energy"
	"fvcache/internal/fvc"
	"fvcache/internal/report"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
)

// The x-series experiments go beyond the paper's artifacts: the
// three-C miss decomposition behind Figure 14's explanation, the
// design-choice ablations DESIGN.md calls out, online frequent-value
// identification (the hardware version of Table 3's "finding the
// values quickly"), and the energy quantification of the paper's
// power argument.

// runXClass decomposes each workload's misses into compulsory,
// capacity and conflict — the vocabulary the paper uses to explain
// where the FVC's gains come from (Section 4, set-associativity
// discussion).
func runXClass(opt Options, out io.Writer) error {
	p := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: three-C miss decomposition (16KB DMC, 8wpl)",
		"benchmark", "miss rate", "compulsory", "capacity", "conflict")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		cl := cache.NewClassifier(p)
		rec, err := recording(w, opt.Scale)
		if err != nil {
			return nil, err
		}
		rec.Replay(trace.SinkFunc(func(e trace.Event) {
			if e.Op.IsAccess() {
				cl.Access(e.Addr, e.Op == trace.Store)
			}
		}))
		misses := float64(cl.Misses())
		pct := func(k cache.MissKind) string {
			if misses == 0 {
				return "-"
			}
			return report.Pct(float64(cl.Counts[k]) / misses)
		}
		return []string{
			label(w),
			report.Pct(misses / float64(cl.Accesses())),
			pct(cache.Compulsory), pct(cache.Capacity), pct(cache.Conflict),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("benchmarks whose FVC gains survive associativity (Figure 14) are the capacity/compulsory-dominated ones")
	render(opt, out, t)
	return nil
}

// runXAblation measures the contribution of the paper's two FVC design
// choices: write-miss allocation and always-insert footprints.
func runXAblation(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: FVC design-choice ablations (16KB DMC + 512e/7v FVC, % miss reduction)",
		"benchmark", "full design", "no write-miss alloc", "skip empty footprints")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		full := withFVC(w, opt.Scale, main, 512, 3)
		noAlloc := full
		noAlloc.NoWriteMissAllocate = true
		skipEmpty := full
		skipEmpty.SkipEmptyFootprints = true
		pcts, err := missPcts(w, opt.Scale, []core.Config{{Main: main}, full, noAlloc, skipEmpty})
		if err != nil {
			return nil, err
		}
		row := []string{label(w)}
		for _, m := range pcts[1:] {
			row = append(row, report.F2(reduction(pcts[0], m))+"%")
		}
		return row, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("write-miss allocation is the dominant design choice for write-heavy value-skewed workloads")
	render(opt, out, t)
	return nil
}

// runXOnline compares profile-directed FVT selection against online
// identification with a Space-Saving sketch.
func runXOnline(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: profiled vs online frequent-value identification (512e/7v FVC, % miss reduction)",
		"benchmark", "profiled FVT", "online FVT", "FVT updates")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		onlineCfg := core.Config{
			Main:           main,
			FVC:            &fvc.Params{Entries: 512, LineBytes: main.LineBytes, Bits: 3},
			OnlineFVTEvery: 100_000,
		}
		res, err := measureBatch(w, opt.Scale, []core.Config{
			{Main: main},
			withFVC(w, opt.Scale, main, 512, 3),
			onlineCfg,
		}, sim.MeasureOptions{})
		if err != nil {
			return nil, err
		}
		base := res[0].Stats.MissRate() * 100
		profiled := res[1].Stats.MissRate() * 100
		online := res[2].Stats.MissRate() * 100
		return []string{
			label(w),
			report.F2(reduction(base, profiled)) + "%",
			report.F2(reduction(base, online)) + "%",
			fmt.Sprintf("%d", res[2].Stats.FVTUpdates),
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("online identification needs no profiling pass; Table 3 predicts it converges because the top values settle early")
	render(opt, out, t)
	return nil
}

// runXEnergy quantifies the paper's power argument: the FVC's traffic
// reduction translates into energy savings that dwarf its own probe
// cost.
func runXEnergy(opt Options, out io.Writer) error {
	m := energy.Default08um()
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: energy estimate (16KB DMC vs +512e/7v FVC, 0.8um model)",
		"benchmark", "DMC traffic KB", "FVC traffic KB", "DMC energy uJ", "FVC energy uJ", "saving")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		baseCfg := core.Config{Main: main}
		augCfg := withFVC(w, opt.Scale, main, 512, 3)
		res, err := measureBatch(w, opt.Scale, []core.Config{baseCfg, augCfg}, sim.MeasureOptions{})
		if err != nil {
			return nil, err
		}
		baseRes, augRes := res[0], res[1]
		be := m.Estimate(baseCfg, baseRes.Stats)
		ae := m.Estimate(augCfg, augRes.Stats)
		return []string{
			label(w),
			fmt.Sprintf("%d", baseRes.Stats.TrafficBytes()>>10),
			fmt.Sprintf("%d", augRes.Stats.TrafficBytes()>>10),
			report.F2(be.TotalNJ() / 1000),
			report.F2(ae.TotalNJ() / 1000),
			report.F2(energy.SavingsPct(be, ae)) + "%",
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("the paper: reductions in traffic directly result in corresponding reductions in power consumption")
	render(opt, out, t)
	return nil
}

func init() {
	register(Experiment{ID: "xclass", Title: "Three-C miss decomposition (extension)", Run: runXClass})
	register(Experiment{ID: "xablation", Title: "FVC design-choice ablations (extension)", Run: runXAblation})
	register(Experiment{ID: "xonline", Title: "Profiled vs online FVT (extension)", Run: runXOnline})
	register(Experiment{ID: "xenergy", Title: "Energy estimate (extension)", Run: runXEnergy})
}
