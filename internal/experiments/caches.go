package experiments

import (
	"fmt"
	"io"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/report"
	"fvcache/internal/sim"
	"fvcache/internal/workload"
)

// withFVC attaches an FVC of the given geometry to a main cache,
// exploiting the top (2^bits - 1) profiled values of w.
func withFVC(w workload.Workload, scale workload.Scale, main cache.Params, entries, bits int) core.Config {
	return core.Config{
		Main:           main,
		FVC:            &fvc.Params{Entries: entries, LineBytes: main.LineBytes, Bits: bits},
		FrequentValues: topAccessed(w, scale, fvc.MaxValues(bits)),
	}
}

// --- Figure 10: miss-rate reduction vs FVC size ---

func runFig10(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	entries := []int{64, 128, 256, 512, 1024, 2048, 4096}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}

	// One job per workload: the baseline and every FVC size ride a
	// single fused replay pass over the workload's recording.
	res, err := pmap(opt, len(suite), func(i int) ([]float64, error) {
		w := suite[i]
		cfgs := []core.Config{{Main: main}}
		for _, e := range entries {
			cfgs = append(cfgs, withFVC(w, opt.Scale, main, e, 3))
		}
		return missPcts(w, opt.Scale, cfgs)
	})
	if err != nil {
		return err
	}

	header := []string{"benchmark", "DMC miss%"}
	for _, e := range entries {
		header = append(header, fmt.Sprintf("%de", e))
	}
	t := report.NewTable("Figure 10: % miss-rate reduction vs FVC entries (16KB DMC, 8 words/line, 7 values)", header...)
	for wi, w := range suite {
		base := res[wi][0]
		row := []string{label(w), report.F3(base)}
		for ei := range entries {
			row = append(row, report.F2(reduction(base, res[wi][1+ei]))+"%")
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper: reductions range from ~10%% (130.li) to well over 50%% (124.m88ksim);")
	t.AddNote("paper: 124.m88ksim and 134.perl saturate at tiny FVCs (64 entries); others improve steadily with size")
	render(opt, out, t)
	return nil
}

// --- Figure 11: effectiveness of data compression ---

func runFig11(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 11: frequent value content of a 512-entry FVC (16KB DMC, 8wpl, 7 values)",
		"benchmark", "% frequent codes in valid lines", "FVC occupancy", "effective compression vs DMC")
	rows, err := pmap(opt, len(suite), func(i int) ([]string, error) {
		w := suite[i]
		cfg := withFVC(w, opt.Scale, main, 512, 3)
		res, err := measureRec(w, opt.Scale, cfg, sim.MeasureOptions{SampleEvery: occInterval(opt.Scale) / 4})
		if err != nil {
			return nil, err
		}
		// A 32-byte DMC line compresses to 3 bytes of codes; scaled by
		// the frequent fraction this is the paper's 32/3 × frac factor.
		factor := 32.0 / 3.0 * res.FVCFreqFrac
		return []string{
			label(w),
			report.Pct(res.FVCFreqFrac),
			report.Pct(res.FVCOccupancy),
			report.F2(factor) + "x",
		}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.AddNote("paper: most programs hold >40%% frequent values, giving ~4.27x less storage than a DMC for the cached values")
	render(opt, out, t)
	return nil
}

// --- Figure 12: 12 DMC configurations x 1/3/7 exploited values ---

func runFig12(opt Options, out io.Writer) error {
	sizesKB := []int{8, 16, 32, 64}
	lines := []int{16, 32, 64}
	bitsList := []int{1, 2, 3} // top 1, 3, 7 values
	suite, err := fvlSuite()
	if err != nil {
		return err
	}

	type cfgKey struct{ szKB, line int }
	var cfgs []cfgKey
	for _, l := range lines {
		for _, s := range sizesKB {
			cfgs = append(cfgs, cfgKey{s, l})
		}
	}

	// One job per workload. The 12 plain-DMC baselines come from the
	// analytic path — one Mattson pass per line size yields every size
	// point at once (bit-identical to replay) — so the fused replay
	// only carries the 36 FVC configurations the stack model cannot
	// express. Results keep the original interleaved order (baseline,
	// then the three value counts, per geometry).
	res, err := pmap(opt, len(suite), func(i int) ([]float64, error) {
		w := suite[i]
		var batch []core.Config
		for ci := range cfgs {
			main := cache.Params{SizeBytes: cfgs[ci].szKB << 10, LineBytes: cfgs[ci].line, Assoc: 1}
			for _, bits := range bitsList {
				batch = append(batch, withFVC(w, opt.Scale, main, 512, bits))
			}
		}
		aug, err := missPcts(w, opt.Scale, batch)
		if err != nil {
			return nil, err
		}
		base := make(map[cfgKey]float64, len(cfgs))
		for _, l := range lines {
			sizes := make([]int, len(sizesKB))
			for si, s := range sizesKB {
				sizes[si] = s << 10
			}
			m, err := dmcMissPcts(opt, w, l, sizes)
			if err != nil {
				return nil, err
			}
			for _, s := range sizesKB {
				base[cfgKey{s, l}] = m[s<<10]
			}
		}
		out := make([]float64, 0, len(cfgs)*(1+len(bitsList)))
		for ci := range cfgs {
			out = append(out, base[cfgs[ci]])
			out = append(out, aug[ci*len(bitsList):(ci+1)*len(bitsList)]...)
		}
		return out, nil
	})
	if err != nil {
		return err
	}

	for wi, w := range suite {
		t := report.NewTable(
			fmt.Sprintf("Figure 12 (%s): %% miss-rate reduction with a 512-entry FVC", label(w)),
			"DMC config", "DMC miss%", "top 1 value", "top 3 values", "top 7 values")
		k := 0
		for ci := range cfgs {
			base := res[wi][k]
			k++
			row := []string{
				fmt.Sprintf("%dKB/%dB", cfgs[ci].szKB, cfgs[ci].line),
				report.F3(base),
			}
			for range bitsList {
				row = append(row, report.F2(reduction(base, res[wi][k]))+"%")
				k++
			}
			t.Rows = append(t.Rows, row)
		}
		t.AddNote("paper: gains from 1 to 3 values are substantial, 3 to 7 smaller; reductions span 1%%-68%%")
		render(opt, out, t)
		fmt.Fprintln(out)
	}
	return nil
}

// --- Figure 13: small DMC + FVC vs doubled DMC ---

// fig13Paper embeds the paper's Figure 13 miss rates for the 8
// words/line, 7-value configuration, for shape comparison.
var fig13Paper = map[string][4]string{
	// [16KB+1.5KbFVC, 32KB, 32KB+1.5KbFVC, 64KB]
	"cpusim":  {"0.385", "0.853", "0.346", "0.853"},
	"strproc": {"2.685", "3.829", "2.668", "3.829"},
}

func runFig13(opt Options, out io.Writer) error {
	names := []string{"cpusim", "strproc"}
	lines := []int{8, 16, 32, 64}
	sizesKB := []int{4, 8, 16, 32}
	bitsList := []int{3, 2, 1}

	ws, err := suite(names...)
	if err != nil {
		return err
	}

	// One job per workload. The doubled-DMC baselines (bits == 0 cells)
	// come from the analytic path — one Mattson pass per line size
	// yields the whole doubled-size ladder at once, bit-identical to
	// replay — so the fused replay carries only the FVC-augmented
	// cells the stack model cannot express.
	type cell struct{ line, szKB, bits int } // bits == 0 is the doubled DMC
	var cells []cell
	for _, line := range lines {
		for _, szKB := range sizesKB {
			cells = append(cells, cell{line, szKB, 0})
			for _, bits := range bitsList {
				cells = append(cells, cell{line, szKB, bits})
			}
		}
	}
	res, err := pmap(opt, len(ws), func(i int) (map[cell]float64, error) {
		w := ws[i]
		var cfgs []core.Config
		var augCells []cell
		for _, c := range cells {
			if c.bits == 0 {
				continue
			}
			small := cache.Params{SizeBytes: c.szKB << 10, LineBytes: c.line, Assoc: 1}
			cfgs = append(cfgs, withFVC(w, opt.Scale, small, 512, c.bits))
			augCells = append(augCells, c)
		}
		pcts, err := missPcts(w, opt.Scale, cfgs)
		if err != nil {
			return nil, err
		}
		m := make(map[cell]float64, len(cells))
		for ci, c := range augCells {
			m[c] = pcts[ci]
		}
		for _, line := range lines {
			doubled := make([]int, len(sizesKB))
			for si, szKB := range sizesKB {
				doubled[si] = (szKB * 2) << 10
			}
			byTotal, err := dmcMissPcts(opt, w, line, doubled)
			if err != nil {
				return nil, err
			}
			for _, szKB := range sizesKB {
				m[cell{line, szKB, 0}] = byTotal[(szKB*2)<<10]
			}
		}
		return m, nil
	})
	if err != nil {
		return err
	}

	for _, line := range lines {
		for _, bits := range bitsList {
			t := report.NewTable(
				fmt.Sprintf("Figure 13: DMC+FVC vs doubled DMC — line %dB, %d frequent value(s)",
					line, fvc.MaxValues(bits)),
				"benchmark",
				"4KB+FVC", "8KB", "8KB+FVC", "16KB", "16KB+FVC", "32KB", "32KB+FVC", "64KB")
			for wi, w := range ws {
				row := []string{label(w)}
				for _, szKB := range sizesKB {
					row = append(row,
						report.F3(res[wi][cell{line, szKB, bits}]),
						report.F3(res[wi][cell{line, szKB, 0}]))
				}
				t.Rows = append(t.Rows, row)
			}
			if line == 32 && bits == 3 {
				for _, name := range names {
					p := fig13Paper[name]
					t.AddNote("paper (%s, 32B/7v): 16KB+FVC=%s vs 32KB=%s; 32KB+FVC=%s vs 64KB=%s",
						name, p[0], p[1], p[2], p[3])
				}
				t.AddNote("paper: for these two benchmarks a small FVC beats doubling the DMC")
			}
			render(opt, out, t)
			fmt.Fprintln(out)
		}
	}
	return nil
}

// --- Figure 14: set-associative main caches ---

func runFig14(opt Options, out io.Writer) error {
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	assocs := []int{1, 2, 4}
	// One job per workload: each associativity's baseline and augmented
	// config pair replays in one fused pass (the associative lanes take
	// the generic probe path, the direct-mapped ones stay fast).
	res, err := pmap(opt, len(suite), func(i int) ([]float64, error) {
		w := suite[i]
		var cfgs []core.Config
		for _, a := range assocs {
			main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: a}
			cfgs = append(cfgs, core.Config{Main: main}, withFVC(w, opt.Scale, main, 512, 3))
		}
		return missPcts(w, opt.Scale, cfgs)
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 14: % miss-rate reduction from a 512-entry FVC vs main-cache associativity (16KB, 8wpl, 7 values)",
		"benchmark", "DM miss%", "DM reduction", "2-way miss%", "2-way reduction", "4-way miss%", "4-way reduction")
	for wi, w := range suite {
		row := []string{label(w)}
		for ai := range assocs {
			base, aug := res[wi][2*ai], res[wi][2*ai+1]
			row = append(row, report.F3(base), report.F2(reduction(base, aug))+"%")
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper: FVC gains shrink under associativity for conflict-dominated benchmarks (m88ksim, perl, li)")
	t.AddNote("paper: capacity-dominated benchmarks (vortex, gcc, go) keep significant reductions at 2/4-way")
	render(opt, out, t)
	return nil
}

// --- Figure 15: victim cache vs FVC ---

func runFig15(opt Options, out io.Writer) error {
	main := cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}
	suite, err := fvlSuite()
	if err != nil {
		return err
	}
	type row struct {
		base, vcEq, fvcEq, vcTime, fvcTime float64
	}
	// One job per workload: the baseline, both victim caches and both
	// FVC sizings replay in a single fused pass.
	rows, err := pmap(opt, len(suite), func(i int) (row, error) {
		w := suite[i]
		pcts, err := missPcts(w, opt.Scale, []core.Config{
			{Main: main},
			// Equal area: 16-entry VC vs 128-entry FVC (paper's sizing
			// including tags).
			{Main: main, VictimEntries: 16},
			withFVC(w, opt.Scale, main, 128, 3),
			// Equal access time: 4-entry VC (9ns) vs 512-entry FVC (6ns).
			{Main: main, VictimEntries: 4},
			withFVC(w, opt.Scale, main, 512, 3),
		})
		if err != nil {
			return row{}, err
		}
		return row{base: pcts[0], vcEq: pcts[1], fvcEq: pcts[2], vcTime: pcts[3], fvcTime: pcts[4]}, nil
	})
	if err != nil {
		return err
	}
	ta := report.NewTable("Figure 15a: equal area — 16-entry VC vs 128-entry FVC (4KB DMC, 8wpl)",
		"benchmark", "DMC miss%", "VC reduction", "FVC reduction")
	tb := report.NewTable("Figure 15b: equal access time — 4-entry VC vs 512-entry FVC (4KB DMC, 8wpl)",
		"benchmark", "DMC miss%", "VC reduction", "FVC reduction")
	for i, w := range suite {
		r := rows[i]
		ta.AddRow(label(w), report.F3(r.base),
			report.F2(reduction(r.base, r.vcEq))+"%", report.F2(reduction(r.base, r.fvcEq))+"%")
		tb.AddRow(label(w), report.F3(r.base),
			report.F2(reduction(r.base, r.vcTime))+"%", report.F2(reduction(r.base, r.fvcTime))+"%")
	}
	ta.AddNote("paper: at equal size the VC outperforms the FVC")
	render(opt, out, ta)
	fmt.Fprintln(out)
	tb.AddNote("paper: at equal access time the FVC outperforms the VC; both are effective for small DMCs")
	render(opt, out, tb)
	return nil
}

func init() {
	register(Experiment{ID: "fig10", Title: "Miss-rate reduction vs FVC size", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Effectiveness of FVC data compression", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "DMC configs x exploited value counts", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Small DMC + FVC vs doubled DMC", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "FVC with set-associative main caches", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Victim cache vs FVC", Run: runFig15})
}
