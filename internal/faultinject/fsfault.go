package faultinject

import (
	"io/fs"
	"sync"
	"syscall"
	"time"

	"fvcache/internal/resultcache"
)

// Filesystem fault classes, injected through a FaultFS wrapped around
// the result cache's filesystem. Each class maps to a detection the
// chaos matrix proves (see internal/resultcache's chaos suite):
const (
	// FSTornWrite makes the next atomic write land only a prefix of
	// its data, as if the machine died after the rename was (wrongly)
	// persisted before the data. Detected on the next read: the frame
	// promises more bytes than the file holds -> CorruptError ->
	// quarantine.
	FSTornWrite Class = "fs-torn-write"
	// FSBitFlip flips one random bit of the data returned by the next
	// read (silent media corruption). Detected by the CRC32C check ->
	// quarantine.
	FSBitFlip Class = "fs-bit-flip"
	// FSShortRead truncates the data returned by the next read (lost
	// tail, partial page). Detected by the frame length check ->
	// quarantine.
	FSShortRead Class = "fs-short-read"
	// FSENOSPC fails the next write with syscall.ENOSPC. Detected by
	// the degradation ladder: the disk tier trips to memory-only.
	FSENOSPC Class = "fs-enospc"
	// FSSlowIO delays the next operation by the armed duration
	// (dying disk, saturated volume). Detected by the slow-op
	// threshold feeding the degradation ladder.
	FSSlowIO Class = "fs-slow-io"
)

// FaultFS wraps a resultcache.FS and injects armed faults into the
// operations passing through it. Faults are armed per class with a
// use count; injection order within a class follows operation order,
// and the byte/bit choices come from the Injector's seeded rng, so a
// failing chaos test reproduces exactly.
type FaultFS struct {
	real resultcache.FS
	in   *Injector

	mu    sync.Mutex
	armed map[Class]int
	// SlowDelay is how long an FSSlowIO injection sleeps.
	SlowDelay time.Duration
}

// WrapFS returns a FaultFS over real, drawing randomness from the
// injector.
func (in *Injector) WrapFS(real resultcache.FS) *FaultFS {
	return &FaultFS{real: real, in: in, armed: make(map[Class]int), SlowDelay: 50 * time.Millisecond}
}

// Arm schedules the next n matching operations to suffer the fault
// class.
func (f *FaultFS) Arm(c Class, n int) {
	f.mu.Lock()
	f.armed[c] += n
	f.mu.Unlock()
}

// take consumes one armed injection of class c, if any.
func (f *FaultFS) take(c Class) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.armed[c] <= 0 {
		return false
	}
	f.armed[c]--
	return true
}

// slow sleeps if an FSSlowIO injection is armed.
func (f *FaultFS) slow(op string) {
	if f.take(FSSlowIO) {
		f.in.record(FSSlowIO, "%s delayed %v", op, f.SlowDelay)
		time.Sleep(f.SlowDelay)
	}
}

// ReadFile applies slow-I/O, short-read and bit-flip injections.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.slow("read " + name)
	data, err := f.real.ReadFile(name)
	if err != nil {
		return data, err
	}
	if f.take(FSShortRead) && len(data) > 0 {
		n := len(data) / 2
		f.in.record(FSShortRead, "%s: %d of %d bytes", name, n, len(data))
		data = data[:n]
	}
	if f.take(FSBitFlip) && len(data) > 0 {
		f.in.mu.Lock()
		pos := f.in.rng.Intn(len(data))
		bit := uint(f.in.rng.Intn(8))
		f.in.mu.Unlock()
		flipped := append([]byte(nil), data...)
		flipped[pos] ^= 1 << bit
		f.in.record(FSBitFlip, "%s: bit %d at byte %d flipped", name, bit, pos)
		data = flipped
	}
	return data, nil
}

// WriteFileAtomic applies slow-I/O, ENOSPC and torn-write injections.
func (f *FaultFS) WriteFileAtomic(name string, data []byte) error {
	f.slow("write " + name)
	if f.take(FSENOSPC) {
		f.in.record(FSENOSPC, "%s: write failed with ENOSPC", name)
		return syscall.ENOSPC
	}
	if f.take(FSTornWrite) && len(data) > 1 {
		f.in.mu.Lock()
		n := 1 + f.in.rng.Intn(len(data)-1)
		f.in.mu.Unlock()
		f.in.record(FSTornWrite, "%s: %d of %d bytes persisted", name, n, len(data))
		// The torn prefix reaches the final name: the worst crash
		// outcome a non-journaling filesystem can produce.
		return f.real.WriteFileAtomic(name, data[:n])
	}
	return f.real.WriteFileAtomic(name, data)
}

// Remove passes through (with slow-I/O injection).
func (f *FaultFS) Remove(name string) error {
	f.slow("remove " + name)
	return f.real.Remove(name)
}

// Rename passes through (with slow-I/O injection).
func (f *FaultFS) Rename(oldname, newname string) error {
	f.slow("rename " + oldname)
	return f.real.Rename(oldname, newname)
}

// MkdirAll passes through.
func (f *FaultFS) MkdirAll(dir string) error { return f.real.MkdirAll(dir) }

// ReadDir passes through (with slow-I/O injection).
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	f.slow("readdir " + dir)
	return f.real.ReadDir(dir)
}
