package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/harness"
	"fvcache/internal/trace"
)

var testValues = []uint32{0, 0xffffffff, 1, 2, 4, 8, 10}

// newSystem builds an FVC hierarchy and drives it until the FVC holds
// frequent codes (the substrate every structural fault corrupts).
func newSystem(t *testing.T) *core.System {
	t.Helper()
	s := core.MustNew(core.Config{
		Main:           cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 8, LineBytes: 16, Bits: 3},
		FrequentValues: testValues,
	})
	// Touch conflicting lines so evictions push footprints into the FVC.
	for i := uint32(0); i < 64; i++ {
		s.Access(trace.Load, (i%8)*0x40+(i%4)*4, 0)
	}
	if err := s.AuditInvariants(); err != nil {
		t.Fatalf("pre-injection system fails audit: %v", err)
	}
	return s
}

// validTrace encodes a small trace for the trace-corruption classes.
func validTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		w.Emit(trace.Event{Op: trace.Load, Addr: 0x1000 + i*4, Value: i})
		w.Emit(trace.Event{Op: trace.Store, Addr: 0x2000 + i*4, Value: 0xffffffff})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAll replays data, returning the decoded events and the first
// error. It must never panic, whatever data holds.
func decodeAll(data []byte) ([]trace.Event, error) {
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []trace.Event
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// TestDetectionMatrix is the fault/checker matrix: every fault class
// the injector produces must be caught by at least one checker, over
// many seeds.
func TestDetectionMatrix(t *testing.T) {
	structural := []struct {
		class  Class
		inject func(*Injector, *core.System) (Fault, bool)
	}{
		{FVCCodeFlip, (*Injector).FlipFVCCode},
		{CachedWordClobber, (*Injector).ClobberCachedWord},
	}
	for _, tc := range structural {
		t.Run(string(tc.class), func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				in := New(seed)
				s := newSystem(t)
				f, ok := tc.inject(in, s)
				if !ok {
					t.Fatalf("seed %d: no injection site", seed)
				}
				if err := s.AuditInvariants(); err == nil {
					t.Errorf("seed %d: audit missed %v", seed, f)
				}
			}
		})
	}

	traceClasses := []Class{TraceInvalidOp, TraceTruncate, TraceOverlongVarint}
	for _, class := range traceClasses {
		t.Run(string(class), func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				in := New(seed)
				corrupted, ok := in.CorruptTrace(class, validTrace(t))
				if !ok {
					t.Fatalf("seed %d: no corruption produced", seed)
				}
				_, err := decodeAll(corrupted)
				var ce *trace.CorruptError
				if !errors.As(err, &ce) {
					t.Errorf("seed %d: reader missed %v (err = %v)", seed, in.Faults(), err)
				}
			}
		})
	}
}

// TestBitFlipNeverPanics: a single flipped bit may keep the stream
// decodable, but the reader must either report corruption or decode a
// stream that differs from the original — and never panic.
func TestBitFlipNeverPanics(t *testing.T) {
	orig := validTrace(t)
	want, err := decodeAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(0); seed < 200; seed++ {
		in := New(seed)
		corrupted, ok := in.CorruptTrace(TraceBitFlip, orig)
		if !ok {
			t.Fatal("no bit flip produced")
		}
		got, err := decodeAll(corrupted) // must not panic
		if err != nil {
			detected++
			continue
		}
		same := len(got) == len(want)
		for i := 0; same && i < len(got); i++ {
			same = got[i] == want[i]
		}
		if same {
			t.Errorf("seed %d: flipped stream decoded identically (%v)", seed, in.Faults())
		} else {
			detected++
		}
	}
	if detected == 0 {
		t.Error("no bit flip was ever detected")
	}
}

// TestVerifyValuesCatchesClobber: the access-path assert (recovered by
// the harness into an ordinary error) detects a clobbered cached word
// on the very next load of that address.
func TestVerifyValuesCatchesClobber(t *testing.T) {
	s := core.MustNew(core.Config{
		Main:         cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		VerifyValues: true,
	})
	s.Access(trace.Store, 0x1000, 42)
	s.CorruptReplicaWord(0x1000, 43)
	err := harness.Recover(func() error {
		s.Access(trace.Load, 0x1000, 42) // program's view: still 42
		return nil
	})
	var ve *core.VerificationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want recovered *core.VerificationError", err)
	}
	if ve.Addr != 0x1000 {
		t.Errorf("VerificationError = %+v, want Addr 0x1000", ve)
	}
	if harness.StackOf(err) == nil {
		t.Error("recovered error carries no stack trace")
	}
}

// TestNegativeControl: with zero faults injected, every checker stays
// silent — the detectors react to faults, not to healthy state.
func TestNegativeControl(t *testing.T) {
	in := New(1)
	s := newSystem(t)
	if err := s.AuditInvariants(); err != nil {
		t.Errorf("audit on healthy system: %v", err)
	}
	data := validTrace(t)
	events, err := decodeAll(data)
	if err != nil {
		t.Errorf("decode of healthy trace: %v", err)
	}
	if len(events) != 32 {
		t.Errorf("decoded %d events, want 32", len(events))
	}
	if n := len(in.Faults()); n != 0 {
		t.Errorf("injector recorded %d faults without injecting", n)
	}
}

// TestInjectorDeterminism: the same seed produces the same faults.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []Fault {
		in := New(99)
		s := newSystem(t)
		in.FlipFVCCode(s)
		in.ClobberCachedWord(s)
		in.CorruptTrace(TraceBitFlip, validTrace(t))
		return in.Faults()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("fault %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
