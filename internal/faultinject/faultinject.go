// Package faultinject deterministically corrupts simulator state and
// trace streams so tests can prove the detection machinery works: every
// fault class injected here must be caught by core.(*System).AuditInvariants,
// by the VerifyValues access-path asserts, or by the hardened
// trace.Reader. The injector is seeded, so a failing detection test
// reproduces exactly.
//
// Nothing in this package runs on the simulation path; it exists to
// validate the robustness layer (see DESIGN.md, "Robustness & failure
// model").
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

// Class enumerates the fault classes the injector can produce.
type Class string

const (
	// FVCCodeFlip rewrites one frequent-value code in a valid FVC entry
	// to a different code (a bit flip in the FVC data array). Detected
	// by the invariant audit: either the new code is unassigned
	// (code-validity scan) or it decodes to a value that disagrees with
	// the architectural replica (value-consistency scan).
	FVCCodeFlip Class = "fvc-code-flip"
	// CachedWordClobber overwrites the architectural replica word
	// behind an FVC-resident frequent code (a corrupted data word in a
	// cached line). Detected by the audit's value-consistency scan, and
	// by the VerifyValues load assert on the next access.
	CachedWordClobber Class = "cached-word-clobber"
	// TraceInvalidOp rewrites a record's op byte to an undefined opcode.
	TraceInvalidOp Class = "trace-invalid-op"
	// TraceTruncate cuts the stream mid-record.
	TraceTruncate Class = "trace-truncate"
	// TraceOverlongVarint appends a record whose varint exceeds the
	// codec's 5-byte cap.
	TraceOverlongVarint Class = "trace-overlong-varint"
	// TraceBitFlip flips one random bit in the stream body. The reader
	// must never panic on the result; it either reports corruption or
	// decodes a stream that differs from the original.
	TraceBitFlip Class = "trace-bit-flip"
)

// Fault records one injected corruption.
type Fault struct {
	Class  Class
	Detail string
}

// String renders the fault.
func (f Fault) String() string { return string(f.Class) + ": " + f.Detail }

// Injector produces deterministic faults from a seed and records every
// injection for the test report. The fault log and rng are guarded by
// a mutex so a FaultFS can inject from concurrent cache operations;
// the simulator-state methods themselves expect a quiesced System.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []Fault
}

// New returns an Injector seeded with seed.
func New(seed int64) *Injector { return &Injector{rng: rand.New(rand.NewSource(seed))} }

// Faults returns every fault injected so far, in order.
func (in *Injector) Faults() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.faults...)
}

func (in *Injector) record(c Class, format string, args ...any) Fault {
	f := Fault{Class: c, Detail: fmt.Sprintf(format, args...)}
	in.mu.Lock()
	in.faults = append(in.faults, f)
	in.mu.Unlock()
	return f
}

// codeSite is one corruptible (entry, word) location in the FVC.
type codeSite struct {
	lineAddr uint32
	word     int
	code     uint8
}

// FlipFVCCode corrupts one frequent-value code in s's FVC, choosing
// the site and the replacement code from the injector's rng. The
// replacement is never the original code and never the escape, so the
// invariant audit is guaranteed to flag it (an unassigned code fails
// the validity scan; a different assigned code decodes to a different
// table value than the replica holds, because table values are
// distinct). Returns false when the FVC holds no frequent code to
// corrupt.
func (in *Injector) FlipFVCCode(s *core.System) (Fault, bool) {
	sites := in.sites(s)
	if len(sites) == 0 {
		return Fault{}, false
	}
	site := sites[in.rng.Intn(len(sites))]
	f := s.FVC()
	escape := f.Escape()
	space := 1 << f.Table().Bits()
	// Pick any code other than the original and the escape.
	var newCode uint8
	for {
		newCode = uint8(in.rng.Intn(space))
		if newCode != site.code && newCode != escape {
			break
		}
	}
	if !f.CorruptCode(site.lineAddr, site.word, newCode) {
		return Fault{}, false
	}
	return in.record(FVCCodeFlip, "entry %#x word %d: code %d -> %d",
		site.lineAddr, site.word, site.code, newCode), true
}

// ClobberCachedWord overwrites the replica word behind one
// FVC-resident frequent code with a value that differs from what the
// code decodes to. Returns false when the FVC holds no frequent code.
func (in *Injector) ClobberCachedWord(s *core.System) (Fault, bool) {
	sites := in.sites(s)
	if len(sites) == 0 {
		return Fault{}, false
	}
	site := sites[in.rng.Intn(len(sites))]
	lineBytes := uint32(s.Config().Main.LineBytes)
	addr := site.lineAddr*lineBytes + uint32(site.word)*trace.WordBytes
	old := s.MemWord(addr)
	s.CorruptReplicaWord(addr, old^0x1) // any different value
	return in.record(CachedWordClobber, "addr %#x: %#x -> %#x", addr, old, old^0x1), true
}

// sites lists every FVC word currently holding a frequent code.
func (in *Injector) sites(s *core.System) []codeSite {
	f := s.FVC()
	if f == nil {
		return nil
	}
	escape := f.Escape()
	var sites []codeSite
	f.VisitValid(func(e fvc.Entry) {
		for w, c := range e.Codes {
			if c != escape {
				sites = append(sites, codeSite{lineAddr: e.Tag, word: w, code: c})
			}
		}
	})
	return sites
}

// recordOffsets returns the byte offset of every record in a valid
// encoded trace (header excluded), using the reader's own accounting.
func recordOffsets(data []byte) ([]int64, error) {
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var offs []int64
	for {
		off := r.Offset()
		if _, err := r.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return offs, nil
			}
			return nil, err
		}
		offs = append(offs, off)
	}
}

// CorruptTrace returns a corrupted copy of a valid encoded trace for
// the given class (one of the Trace* classes). Returns false when the
// trace holds no record to corrupt or class is not a trace class.
func (in *Injector) CorruptTrace(class Class, data []byte) ([]byte, bool) {
	offs, err := recordOffsets(data)
	if err != nil || len(offs) == 0 {
		return nil, false
	}
	out := append([]byte(nil), data...)
	switch class {
	case TraceInvalidOp:
		off := offs[in.rng.Intn(len(offs))]
		out[off] = 0xff // far above any defined op
		in.record(class, "op byte at offset %d -> 0xff", off)
	case TraceTruncate:
		// Cut strictly inside the last record so the damage is a
		// mid-record truncation, not a clean EOF.
		last := offs[len(offs)-1]
		cut := last + 1 + in.rng.Int63n(int64(len(out))-last-1)
		out = out[:cut]
		in.record(class, "stream cut at byte %d of %d", cut, len(data))
	case TraceOverlongVarint:
		// Append a record whose address-delta varint runs 6+ bytes.
		out = append(out, byte(trace.Load))
		for i := 0; i < 7; i++ {
			out = append(out, 0x80)
		}
		out = append(out, 0x01)
		in.record(class, "appended record with 8-byte varint")
	case TraceBitFlip:
		// Flip one bit in the body (past the 4-byte magic).
		pos := 4 + in.rng.Intn(len(out)-4)
		bit := uint(in.rng.Intn(8))
		out[pos] ^= 1 << bit
		in.record(class, "bit %d at byte %d flipped", bit, pos)
	default:
		return nil, false
	}
	return out, true
}
