package mrc

import (
	"context"
	"reflect"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

const testLine = 32

// equivOptions spans the model shapes the ISSUE's equivalence gate
// names: the fully-associative ladder plus direct-mapped and
// set-associative per-set curves.
func equivOptions() Options {
	return Options{
		LineBytes:    testLine,
		MaxSizeBytes: 64 << 10,
		// 1 = fully associative; 8..512 cover the direct-mapped size
		// ladder (assoc-1 points) and the set-associative families.
		SetCounts: []int{1, 8, 32, 64, 128, 512},
	}
}

// TestMRCReplayEquivalence is the engine's contract: every point of
// every curve must carry the exact miss count a fused replay of that
// geometry produces, for all registered workloads.
func TestMRCReplayEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := sim.Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Analyze(rec, equivOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Every curve point names a concrete LRU geometry; replay
			// them all in one fused batch and compare miss counts.
			var cfgs []core.Config
			var want []Point
			for _, c := range res.Curves {
				for _, p := range c.Points {
					cfgs = append(cfgs, core.Config{Main: cache.Params{
						SizeBytes: p.SizeBytes, LineBytes: testLine, Assoc: p.Assoc,
					}})
					want = append(want, p)
				}
			}
			batch, err := sim.MeasureRecordedBatch(rec, cfgs, sim.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range want {
				st := batch[i].Stats
				if st.Misses != p.Misses {
					t.Errorf("%s: mrc misses %d, replay %d",
						cfgs[i].Main.String(), p.Misses, st.Misses)
				}
				if got := st.Loads + st.Stores; got != res.Accesses {
					t.Errorf("%s: accesses %d, replay %d", cfgs[i].Main.String(), res.Accesses, got)
				}
				if st.Loads != res.Loads || st.Stores != res.Stores {
					t.Errorf("load/store split: mrc %d/%d, replay %d/%d",
						res.Loads, res.Stores, st.Loads, st.Stores)
				}
			}
		})
	}
}

// TestMRCShardedMatchesSerial pins the set-range sharding: fanned-out
// shards must reproduce the serial pass bit for bit, including shard
// counts that do not divide the set counts.
func TestMRCShardedMatchesSerial(t *testing.T) {
	for _, w := range workload.All()[:4] {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := sim.Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Analyze(rec, equivOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 7} {
				opt := equivOptions()
				opt.Shards = shards
				sharded, err := Analyze(rec, opt)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("shards=%d diverges from serial\nserial:  %+v\nsharded: %+v",
						shards, serial, sharded)
				}
			}
		})
	}
}

// TestMRCDegenerateTraces covers the edge shapes the ISSUE lists:
// empty, single-access, and all-same-line recordings.
func TestMRCDegenerateTraces(t *testing.T) {
	opt := Options{LineBytes: testLine, MaxSizeBytes: 1 << 10, SetCounts: []int{1, 4}}

	t.Run("empty", func(t *testing.T) {
		res, err := Analyze(&trace.Recording{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accesses != 0 || res.DistinctLines != 0 {
			t.Fatalf("empty trace: %+v", res)
		}
		for _, c := range res.Curves {
			for _, p := range c.Points {
				if p.Misses != 0 || p.MissRatio != 0 {
					t.Errorf("sets=%d size=%d: %+v", c.Sets, p.SizeBytes, p)
				}
			}
		}
	})

	t.Run("single-access", func(t *testing.T) {
		var rec trace.Recording
		rec.Append(trace.Load, 0x40, 7)
		res, err := Analyze(&rec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accesses != 1 || res.Loads != 1 || res.Stores != 0 || res.DistinctLines != 1 {
			t.Fatalf("single access: %+v", res)
		}
		for _, c := range res.Curves {
			for _, p := range c.Points {
				if p.Misses != 1 || p.MissRatio != 1 {
					t.Errorf("sets=%d size=%d: compulsory miss expected, got %+v", c.Sets, p.SizeBytes, p)
				}
			}
		}
	})

	t.Run("all-same-line", func(t *testing.T) {
		var rec trace.Recording
		const n = 1000
		for i := 0; i < n; i++ {
			// Different words, one line: stays inside [0x100, 0x100+32).
			rec.Append(trace.Store, 0x100+uint32(i%8)*trace.WordBytes, uint32(i))
		}
		res, err := Analyze(&rec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accesses != n || res.Stores != n || res.DistinctLines != 1 {
			t.Fatalf("same-line trace: %+v", res)
		}
		for _, c := range res.Curves {
			for _, p := range c.Points {
				if p.Misses != 1 {
					t.Errorf("sets=%d size=%d: want the 1 compulsory miss, got %d",
						c.Sets, p.SizeBytes, p.Misses)
				}
			}
		}
	})
}

// TestMRCValidation is the 4xx-shaped error table for Options.
func TestMRCValidation(t *testing.T) {
	var rec trace.Recording
	rec.Append(trace.Load, 0, 0)
	cases := []struct {
		name string
		opt  Options
	}{
		{"zero line", Options{}},
		{"non-pow2 line", Options{LineBytes: 24}},
		{"line below word", Options{LineBytes: 2}},
		{"non-pow2 sets", Options{LineBytes: 32, SetCounts: []int{3}}},
		{"zero sets", Options{LineBytes: 32, SetCounts: []int{0}}},
		{"sets above max", Options{LineBytes: 32, MaxSizeBytes: 1 << 10, SetCounts: []int{64}}},
		{"max below line", Options{LineBytes: 64, MaxSizeBytes: 32}},
		{"non-pow2 maxassoc", Options{LineBytes: 32, MaxAssoc: 3}},
		{"negative maxassoc", Options{LineBytes: 32, MaxAssoc: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Analyze(&rec, tc.opt); err == nil {
				t.Errorf("Analyze(%+v) accepted invalid options", tc.opt)
			}
		})
	}
}

// TestMRCCancellation: a canceled context stops the pass at the next
// chunk boundary, serial and sharded.
func TestMRCCancellation(t *testing.T) {
	var rec trace.Recording
	for i := 0; i < 1000; i++ {
		rec.Append(trace.Load, uint32(i)*trace.WordBytes, 0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shards := range []int{1, 2} {
		opt := Options{LineBytes: 32, SetCounts: []int{1, 4}, Ctx: ctx, Shards: shards}
		if _, err := Analyze(&rec, opt); err == nil {
			t.Errorf("shards=%d: canceled pass returned no error", shards)
		}
	}
}

// TestMRCSteadyZeroAllocs pins the hot loop: once every line has been
// touched, feeding the stacks allocates nothing — the map, node pool
// and bank bottoms are all reused in place.
func TestMRCSteadyZeroAllocs(t *testing.T) {
	const sets, banks = 4, 6
	s := newStack(sets, banks)
	lines := make([]uint32, 512)
	for i := range lines {
		// A stride pattern with reuse at many depths.
		lines[i] = uint32((i * 17) % 192)
	}
	feed := func() {
		for _, ln := range lines {
			s.access(ln&(sets-1), ln)
		}
	}
	feed() // warm: all cold inserts happen here
	if n := testing.AllocsPerRun(50, feed); n != 0 {
		t.Fatalf("steady-state stack update allocates %v per run", n)
	}
}

// TestMRCMaxAssocOneMatchesFullLadder pins the direct-mapped fast
// path: the fused last-line-table engine (MaxAssoc 1, raw-column and
// chunked forms alike) must reproduce the assoc-1 point of every
// Mattson-stack curve bit for bit, along with the trace-level totals.
func TestMRCMaxAssocOneMatchesFullLadder(t *testing.T) {
	opt := equivOptions()
	for _, w := range workload.All()[:6] {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := sim.Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Analyze(rec, opt)
			if err != nil {
				t.Fatal(err)
			}
			dmOpt := opt
			dmOpt.MaxAssoc = 1
			dm, err := Analyze(rec, dmOpt)
			if err != nil {
				t.Fatal(err)
			}
			chunked, err := AnalyzeChunked(rec.Chunked(0), dmOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dm, chunked) {
				t.Error("raw-column and chunked MaxAssoc=1 passes disagree")
			}
			if dm.Accesses != full.Accesses || dm.Loads != full.Loads ||
				dm.Stores != full.Stores || dm.DistinctLines != full.DistinctLines {
				t.Errorf("totals differ: dm %+v vs full accesses=%d loads=%d stores=%d distinct=%d",
					dm, full.Accesses, full.Loads, full.Stores, full.DistinctLines)
			}
			if len(dm.Curves) != len(full.Curves) {
				t.Fatalf("curve count %d, want %d", len(dm.Curves), len(full.Curves))
			}
			for i, c := range dm.Curves {
				if len(c.Points) != 1 {
					t.Fatalf("sets=%d: MaxAssoc=1 curve has %d points", c.Sets, len(c.Points))
				}
				if c.Points[0] != full.Curves[i].Points[0] {
					t.Errorf("sets=%d: dm point %+v, stack point %+v",
						c.Sets, c.Points[0], full.Curves[i].Points[0])
				}
			}
		})
	}
}

// TestMRCMaxAssocCapsLadder: a MaxAssoc cap above 1 trims every curve
// to the matching ladder prefix of the uncapped pass (stack engine).
func TestMRCMaxAssocCapsLadder(t *testing.T) {
	w := workload.All()[0]
	rec, err := sim.Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	opt := equivOptions()
	full, err := Analyze(rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.MaxAssoc = 4
	capped, err := Analyze(rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range capped.Curves {
		want := full.Curves[i].Points
		if len(want) > 3 {
			want = want[:3] // assoc 1, 2, 4
		}
		if !reflect.DeepEqual(c.Points, want) {
			t.Errorf("sets=%d: capped %+v, want prefix %+v", c.Sets, c.Points, want)
		}
	}
}

// TestMRCDMSteadyZeroAllocs pins the fused direct-mapped loop: once
// every line is in the seen-set, feeding the tables allocates nothing.
func TestMRCDMSteadyZeroAllocs(t *testing.T) {
	models := []model{{sets: 4, banks: 1}, {sets: 16, banks: 1}, {sets: 64, banks: 1}}
	p := newDMPass(models)
	addrs := make([]uint32, 512)
	for i := range addrs {
		addrs[i] = uint32((i*17)%192) * testLine
	}
	feed := func() { p.feed(addrs, 5) }
	feed() // warm: all first touches recorded
	if n := testing.AllocsPerRun(50, feed); n != 0 {
		t.Fatalf("steady-state dm update allocates %v per run", n)
	}
}
