package mrc

// Mattson LRU stack with a power-of-two bank depth index.
//
// The classic reuse-distance structure keeps every referenced line on
// one LRU-ordered stack; an access's stack depth (1 = most recently
// used) decides which cache sizes hit it — an LRU cache of capacity C
// hits exactly the accesses whose depth is <= C (Mattson's inclusion
// property). Computing the exact depth costs a balanced tree or
// Fenwick walk per access; this engine only needs depths bucketed at
// power-of-two boundaries (the miss-rate curve is evaluated on the
// power-of-two size ladder), so it uses the cheaper bank organization
// from the parallel power-of-two LRU stack sketch (SNIPPETS.md
// Snippet 2), made exact:
//
//   - All lines of one set live on a doubly-linked list in MRU order.
//   - The list is partitioned into banks: bank 0 is depth 1, bank b
//     covers depths (2^(b-1), 2^b]. Each bank remembers its bottom
//     node (the node at depth 2^b).
//   - A hit at bank b increments hist[b] and moves the node to the
//     front; every bank above b then shifts its bottom node down one
//     bank (the boundary ripple), which is O(log depth) pointer work
//     instead of O(depth).
//   - Nodes deeper than the deepest tracked bank carry the overflow
//     sentinel bank; hits there are misses at every size on the
//     ladder.
//
// One stack instance serves one SET of a set-indexed LRU geometry:
// hits at bank b <= j are hits in an associativity-2^j set. The
// fully-associative model is the single-set special case. Sets are
// independent, which is what makes set-range sharding exact.
type stack struct {
	banks int // tracked depth buckets; hist has banks+1 (overflow last)

	// Node storage, shared across every set of one model shard: links
	// and bank index. Parallel arrays beat a struct slice here — the
	// hot ripple loop touches prev/bank only.
	prev, next []int32
	line       []uint32
	bank       []uint16

	idx map[uint32]int32 // line address -> node

	// Per-local-set list state: head/tail node, current size, and the
	// bank-bottom index (bottoms[set*banks+b] = node at depth 2^b, -1
	// while the set holds fewer than 2^b lines).
	heads, tails []int32
	sizes        []uint32
	bottoms      []int32

	hist []uint64 // hist[b] = hits at bank b; hist[banks] = beyond-ladder
	cold uint64   // first-touch accesses (compulsory misses)

	// lastLine short-circuits consecutive accesses to one line — the
	// dominant pattern in real traces — to a histogram increment.
	lastLine  uint32
	lastValid bool
}

// overflowBank is the sentinel for nodes deeper than the tracked
// ladder, stored as banks (one past the last real bank).
const noNode = int32(-1)

// newStack builds the per-set stacks for localSets sets of one model
// shard, with depth buckets up to associativity 2^(banks-1).
func newStack(localSets, banks int) *stack {
	s := &stack{
		banks:   banks,
		idx:     make(map[uint32]int32),
		heads:   make([]int32, localSets),
		tails:   make([]int32, localSets),
		sizes:   make([]uint32, localSets),
		bottoms: make([]int32, localSets*banks),
		hist:    make([]uint64, banks+1),
	}
	for i := range s.heads {
		s.heads[i] = noNode
		s.tails[i] = noNode
	}
	for i := range s.bottoms {
		s.bottoms[i] = noNode
	}
	return s
}

// access feeds one line address (already reduced to this shard's local
// set index) through the set's stack. The steady-state path — every
// line already seen — performs no allocation.
func (s *stack) access(localSet uint32, line uint32) {
	if s.lastValid && line == s.lastLine {
		s.hist[0]++
		return
	}
	s.lastLine = line
	s.lastValid = true

	ni, ok := s.idx[line]
	if !ok {
		s.cold++
		s.push(localSet, line)
		return
	}
	b := int(s.bank[ni])
	if b >= s.banks {
		s.hist[s.banks]++
	} else {
		s.hist[b]++
	}
	head := s.heads[localSet]
	if head == ni {
		return // depth 1, no reordering
	}
	// Unlink (ni is not the head, so prev exists).
	oldPrev := s.prev[ni]
	nx := s.next[ni]
	s.next[oldPrev] = nx
	if nx != noNode {
		s.prev[nx] = oldPrev
	} else {
		s.tails[localSet] = oldPrev
	}
	// Relink at the front.
	s.prev[ni] = noNode
	s.next[ni] = head
	s.prev[head] = ni
	s.heads[localSet] = ni
	// Boundary ripple: every bank shallower than b pushes its bottom
	// node down one bank. Their bottoms exist because the accessed
	// node sat deeper than 2^k for every k < b.
	base := int(localSet) * s.banks
	top := b
	if top > s.banks {
		top = s.banks
	}
	for k := 0; k < top; k++ {
		bi := s.bottoms[base+k]
		s.bank[bi]++
		s.bottoms[base+k] = s.prev[bi]
	}
	// If the accessed node was its own bank's bottom, the node above
	// it (its old prev) takes over.
	if b < s.banks && s.bottoms[base+b] == ni {
		s.bottoms[base+b] = oldPrev
	}
	s.bank[ni] = 0
}

// push inserts a first-touch line at the front of its set's stack.
func (s *stack) push(localSet uint32, line uint32) {
	ni := int32(len(s.line))
	s.line = append(s.line, line)
	s.prev = append(s.prev, noNode)
	s.next = append(s.next, noNode)
	s.bank = append(s.bank, 0)
	s.idx[line] = ni

	head := s.heads[localSet]
	s.next[ni] = head
	if head != noNode {
		s.prev[head] = ni
	} else {
		s.tails[localSet] = ni
	}
	s.heads[localSet] = ni
	s.sizes[localSet]++
	n := s.sizes[localSet]

	base := int(localSet) * s.banks
	for k := 0; k < s.banks; k++ {
		bi := s.bottoms[base+k]
		if bi != noNode {
			// The old depth-2^k node is now at depth 2^k+1: bank k+1.
			s.bank[bi]++
			s.bottoms[base+k] = s.prev[bi]
			continue
		}
		if n == 1<<uint(k) {
			// The set just reached 2^k lines: the tail is the new bank
			// bottom (its bank is already k — it was demoted from bank
			// k-1 above, or it is the first node for k == 0).
			s.bottoms[base+k] = s.tails[localSet]
		}
		break
	}
}

// hits returns the cumulative hit count for associativity 2^j: every
// access whose depth bucket is at most j.
func (s *stack) hits(j int) uint64 {
	var h uint64
	for b := 0; b <= j && b < len(s.hist); b++ {
		h += s.hist[b]
	}
	return h
}

// merge folds another shard's histogram of the same model into s
// (set-range shards partition the sets, so plain sums are exact).
func (s *stack) merge(o *stack) {
	for b := range s.hist {
		s.hist[b] += o.hist[b]
	}
	s.cold += o.cold
}

// coldCount returns the first-touch (compulsory miss) count.
func (s *stack) coldCount() uint64 { return s.cold }

// distinct returns the number of distinct lines this stack saw.
func (s *stack) distinct() uint64 { return uint64(len(s.line)) }
