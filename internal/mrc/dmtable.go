package mrc

import (
	"context"

	"fvcache/internal/obs"
	"fvcache/internal/trace"
)

// Direct-mapped fast path (MaxAssoc == 1).
//
// A direct-mapped cache holds exactly the last line accessed in each
// set, so the Mattson stack degenerates to a last-line-per-set table
// (Hill's forest simulation): an access hits iff the table entry for
// its set already equals its line. That replaces the map lookup and
// linked-list ripple of the general stack with plain array traffic —
// the per-access cost that lets one analytic pass beat the fused batch
// replay by the benchsweep gate's margin on assoc-1 size ladders
// (fig10/fig12 shapes).
//
// All models of one pass share a single fused loop built on the
// inclusion property of nested bit-selection indexing: SetCounts are
// ascending powers of two, so an access's set at a smaller level is a
// suffix of its set at every larger level, and the accesses mapping to
// a line's set at level k+1 are a subset of those mapping to its set
// at level k. A hit at level k therefore implies a hit at every level
// above it. The loop probes levels bottom-up and stops at the first
// hit: the common case (reuse within the smallest geometry) costs ONE
// load-compare, and only the levels that missed need their table entry
// stored. histMin[k] counts the accesses whose minimal hitting level
// is k; a level's total hits is the prefix sum histMin[0..k].
//
// Distinct-line counting still needs a seen-set, but it only needs
// consulting when every level misses (a hit anywhere proves the line
// was seen), so the map is touched on a small fraction of accesses and
// the steady state allocates nothing.
type dmPass struct {
	tables  [][]int64 // tables[k][set] = last line in set, -1 while empty
	masks   []uint32  // masks[k] = setCounts[k]-1, ascending
	histMin []uint64  // histMin[k] = accesses first hitting at level k
	seen    map[uint32]struct{}
	cold    uint64
}

// newDMPass builds the fused last-line tables for the pass's models
// (SetCounts ascending). int64 entries keep the -1 empty sentinel
// distinct from every 32-bit line value.
func newDMPass(models []model) *dmPass {
	p := &dmPass{
		tables:  make([][]int64, len(models)),
		masks:   make([]uint32, len(models)),
		histMin: make([]uint64, len(models)),
		seen:    make(map[uint32]struct{}),
	}
	for k, m := range models {
		t := make([]int64, m.sets)
		for i := range t {
			t[i] = -1
		}
		p.tables[k] = t
		p.masks[k] = uint32(m.sets - 1)
	}
	return p
}

// feed drives one address slice through the fused tables.
func (p *dmPass) feed(addrs []uint32, lineShift uint) {
	nlev := len(p.tables)
	for _, a := range addrs {
		line := a >> lineShift
		k := 0
		for ; k < nlev; k++ {
			e := &p.tables[k][line&p.masks[k]]
			if *e == int64(line) {
				break // inclusion: every level above hits too
			}
			*e = int64(line)
		}
		if k < nlev {
			p.histMin[k]++
			continue
		}
		// Missed everywhere: the only case that can be a first touch.
		if _, ok := p.seen[line]; !ok {
			p.seen[line] = struct{}{}
			p.cold++
		}
	}
}

// levelHits returns the total hit count of level k's geometry.
func (p *dmPass) levelHits(k int) uint64 {
	var h uint64
	for i := 0; i <= k; i++ {
		h += p.histMin[i]
	}
	return h
}

// dmView adapts one level of a fused pass to the per-model bucketed
// interface; a MaxAssoc==1 ladder has a single point, so every bucket
// index resolves to the level's hit count.
type dmView struct {
	p     *dmPass
	level int
}

func (v dmView) hits(int) uint64    { return v.p.levelHits(v.level) }
func (v dmView) coldCount() uint64  { return v.p.cold }
func (p *dmPass) views() []bucketed {
	out := make([]bucketed, len(p.tables))
	for k := range p.tables {
		out[k] = dmView{p: p, level: k}
	}
	return out
}

// runSerialDM feeds a chunked recording through a fused pass, one
// decoded chunk at a time. The fused loop subsumes per-model
// set-range sharding — its per-access cost is below the cost of the
// per-shard decode-and-filter scan — so DM passes always run serially
// and Options.Shards only governs the stack engine.
func runSerialDM(ctx context.Context, cr *trace.ChunkedRecording, models []model, lineShift uint) ([]bucketed, error) {
	p := newDMPass(models)
	var scratch trace.ChunkScratch
	for ci := 0; ci < cr.Chunks(); ci++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		addrs, err := cr.DecodeChunkAddrs(ci, &scratch)
		if err != nil {
			return nil, err
		}
		p.feed(addrs, lineShift)
		obs.MRCLines.Add(uint64(len(addrs)) * uint64(len(models)))
	}
	return p.views(), nil
}

// dmSegmentAccesses bounds how many raw-column accesses one feed call
// covers: the cancellation / telemetry granularity of runRawDM.
const dmSegmentAccesses = 1 << 16

// runRawDM is runSerialDM over a recording's resident access columns:
// when the caller holds the *trace.Recording itself there is nothing
// to decode, and the fused pass walks the raw address column directly.
func runRawDM(ctx context.Context, addrs []uint32, models []model, lineShift uint) ([]bucketed, error) {
	p := newDMPass(models)
	for lo := 0; lo < len(addrs); lo += dmSegmentAccesses {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + dmSegmentAccesses
		if hi > len(addrs) {
			hi = len(addrs)
		}
		p.feed(addrs[lo:hi], lineShift)
		obs.MRCLines.Add(uint64(hi-lo) * uint64(len(models)))
	}
	return p.views(), nil
}
