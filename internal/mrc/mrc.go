// Package mrc computes miss-rate curves by single-pass Mattson
// reuse-distance analysis over a recorded trace.
//
// A K-point cache-size sweep replayed config-by-config costs O(K·N)
// even with the fused batch engine; one Mattson pass costs O(N·log D)
// (D = deepest reuse distance on the ladder) and yields the miss count
// of EVERY power-of-two LRU size at once. The engine walks the
// chunk-compressed address column (trace.ChunkedRecording, PR 7's
// codec) exactly once per model, feeding per-set LRU stacks organized
// as power-of-two depth banks (see stack.go).
//
// Exactness contract: the curves are bit-identical in miss counts to a
// fused replay of the same geometry whenever the geometry is pure
// set-indexed LRU with write-allocate on both loads and stores — i.e.
// the plain DMC / set-associative configurations of this repo's
// core.System with no FVC side cache and no victim buffer. Frequent-
// value compression and victim paths change line residency in ways a
// stack model cannot capture; those stay on the replay engine.
package mrc

import (
	"context"
	"fmt"
	"math/bits"
	"slices"

	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
)

// DefaultMaxSizeBytes is the top of the size ladder when Options
// leaves it zero: 1 MiB, comfortably past every cache geometry the
// paper's figures sweep.
const DefaultMaxSizeBytes = 1 << 20

// Options configures one analysis pass.
type Options struct {
	// LineBytes is the cache-line size of every modeled geometry; a
	// power of two >= trace.WordBytes. Required.
	LineBytes int
	// MaxSizeBytes is the inclusive top of the size ladder; 0 means
	// DefaultMaxSizeBytes.
	MaxSizeBytes int
	// SetCounts lists the set-indexed geometries to model, one exact
	// per-set curve each; every entry must be a power of two with
	// SetCount*LineBytes <= MaxSizeBytes. 1 is the fully-associative
	// model. Empty means []int{1}. Duplicates are collapsed.
	SetCounts []int
	// MaxAssoc, when > 0, caps every curve's associativity ladder at
	// this power of two. MaxAssoc == 1 asks only for the direct-mapped
	// point of each geometry, which selects the last-line-per-set fast
	// path (see dmtable.go) — the form the experiments' DMC size sweeps
	// use. 0 means the full ladder up to MaxSizeBytes.
	MaxAssoc int
	// Shards bounds intra-pass parallelism: models with more sets than
	// one shard can hold are split into independent set ranges fanned
	// out over harness.Map. <= 1 runs the whole pass serially on the
	// calling goroutine. This is wired to the -workers flag.
	Shards int
	// ChunkAccesses overrides the decode chunk granularity when the
	// recording is not already chunk-compressed; 0 means
	// trace.DefaultChunkAccesses.
	ChunkAccesses int
	// Ctx, when non-nil, cancels the pass at the next chunk boundary.
	Ctx context.Context
}

// Point is one size on a curve: the exact miss count of an LRU cache
// with the curve's set count at associativity Assoc.
type Point struct {
	SizeBytes int     `json:"size_bytes"`
	Assoc     int     `json:"assoc"`
	Misses    uint64  `json:"misses"`
	MissRatio float64 `json:"miss_ratio"`
}

// Curve is the exact miss-rate curve of one set-indexed LRU geometry
// family: Sets sets, associativity doubling per point.
type Curve struct {
	Sets   int     `json:"sets"`
	Points []Point `json:"points"`
}

// Result is the full output of one analysis pass.
type Result struct {
	LineBytes     int     `json:"line_bytes"`
	Accesses      uint64  `json:"accesses"`
	Loads         uint64  `json:"loads"`
	Stores        uint64  `json:"stores"`
	DistinctLines uint64  `json:"distinct_lines"`
	Curves        []Curve `json:"curves"`
}

// ladderBanks returns how many associativity points the ladder holds
// for a geometry with sets sets: assoc 1,2,4,... while
// sets*assoc*lineBytes <= maxSize, capped at maxAssoc when it is set.
func ladderBanks(sets, lineBytes, maxSize, maxAssoc int) int {
	n := 0
	for size := sets * lineBytes; size <= maxSize && size > 0; size <<= 1 {
		n++
		if maxAssoc > 0 && 1<<uint(n) > maxAssoc {
			break
		}
	}
	return n
}

// Normalize validates the options and returns them with defaults
// applied and SetCounts sorted and deduplicated — the canonical form
// callers can derive coalescing and cache keys from.
func (o Options) Normalize() (Options, error) {
	if o.LineBytes < trace.WordBytes || o.LineBytes&(o.LineBytes-1) != 0 {
		return o, fmt.Errorf("mrc: LineBytes %d must be a power of two >= %d", o.LineBytes, trace.WordBytes)
	}
	if o.MaxSizeBytes == 0 {
		o.MaxSizeBytes = DefaultMaxSizeBytes
	}
	if o.MaxSizeBytes < o.LineBytes {
		return o, fmt.Errorf("mrc: MaxSizeBytes %d below one line (%d)", o.MaxSizeBytes, o.LineBytes)
	}
	if o.MaxAssoc < 0 || (o.MaxAssoc > 0 && o.MaxAssoc&(o.MaxAssoc-1) != 0) {
		return o, fmt.Errorf("mrc: MaxAssoc %d must be 0 (unbounded) or a power of two", o.MaxAssoc)
	}
	if len(o.SetCounts) == 0 {
		o.SetCounts = []int{1}
	} else {
		o.SetCounts = slices.Clone(o.SetCounts)
		slices.Sort(o.SetCounts)
		o.SetCounts = slices.Compact(o.SetCounts)
	}
	for _, s := range o.SetCounts {
		if s < 1 || s&(s-1) != 0 {
			return o, fmt.Errorf("mrc: set count %d must be a power of two", s)
		}
		if s*o.LineBytes > o.MaxSizeBytes {
			return o, fmt.Errorf("mrc: set count %d needs %d bytes at assoc 1, above MaxSizeBytes %d",
				s, s*o.LineBytes, o.MaxSizeBytes)
		}
	}
	return o, nil
}

// LadderPoints returns how many (size, assoc) points the normalized
// options yield per set count — the curve shapes are fully determined
// by the options, which lets cached results be decoded without storing
// geometry.
func (o Options) LadderPoints() []int {
	out := make([]int, len(o.SetCounts))
	for i, s := range o.SetCounts {
		out[i] = ladderBanks(s, o.LineBytes, o.MaxSizeBytes, o.MaxAssoc)
	}
	return out
}

// model is one set-count geometry family of a pass.
type model struct {
	sets  int
	banks int
}

// shardTask is one unit of parallel work: one model's set range
// [lo, hi).
type shardTask struct {
	m      model
	lo, hi uint32
}

// shardCount returns how many set-range shards model m splits into.
func shardCount(m model, shards int) int {
	if shards > m.sets {
		return m.sets
	}
	return shards
}

// shardTasks splits every model into near-equal set ranges, grouped by
// model in order.
func shardTasks(models []model, shards int) []shardTask {
	var tasks []shardTask
	for _, m := range models {
		n := shardCount(m, shards)
		per := m.sets / n
		extra := m.sets % n
		lo := uint32(0)
		for k := 0; k < n; k++ {
			hi := lo + uint32(per)
			if k < extra {
				hi++
			}
			tasks = append(tasks, shardTask{m: m, lo: lo, hi: hi})
			lo = hi
		}
	}
	return tasks
}

// bucketed is the per-model result either engine produces: cumulative
// hit counts per power-of-two associativity bucket plus the model's
// first-touch count. *stack and *dmTable implement it.
type bucketed interface {
	hits(j int) uint64
	coldCount() uint64
}

// Analyze runs one reuse-distance pass over rec and returns the exact
// miss-rate curve of every requested geometry family. The recording is
// not mutated and may be shared. MaxAssoc==1 passes walk the
// recording's resident access columns directly (nothing to decode);
// everything else goes through the chunk-compressed form.
func Analyze(rec *trace.Recording, opt Options) (*Result, error) {
	opt, err := opt.Normalize()
	if err != nil {
		return nil, err
	}
	if opt.MaxAssoc == 1 {
		return analyzeRawDM(rec, opt)
	}
	return AnalyzeChunked(rec.Chunked(opt.ChunkAccesses), opt)
}

// analyzeRawDM is the direct-mapped fast path over a recording's raw
// access columns: opt is already normalized with MaxAssoc == 1.
func analyzeRawDM(rec *trace.Recording, opt Options) (*Result, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	obs.MRCPasses.Inc()
	lineShift := uint(bits.TrailingZeros(uint(opt.LineBytes)))
	models := newModels(opt)
	ops, addrs, _ := rec.AccessColumns()
	counts, err := runRawDM(ctx, addrs, models, lineShift)
	if err != nil {
		return nil, err
	}
	var stores uint64
	for _, op := range ops {
		if op == trace.Store {
			stores++
		}
	}
	return assemble(opt, models, counts, uint64(len(addrs)), stores), nil
}

// newModels expands normalized options into per-set-count models.
func newModels(opt Options) []model {
	models := make([]model, len(opt.SetCounts))
	for i, s := range opt.SetCounts {
		models[i] = model{sets: s, banks: ladderBanks(s, opt.LineBytes, opt.MaxSizeBytes, opt.MaxAssoc)}
	}
	return models
}

// assemble builds the Result from either engine's per-model counts.
func assemble(opt Options, models []model, counts []bucketed, accesses, stores uint64) *Result {
	res := &Result{
		LineBytes: opt.LineBytes,
		Accesses:  accesses,
		Stores:    stores,
		Loads:     accesses - stores,
		Curves:    make([]Curve, len(models)),
	}
	// A line is a first touch exactly once regardless of set indexing,
	// so any model's cold count is the distinct-line count.
	res.DistinctLines = counts[0].coldCount()
	for i, m := range models {
		c := Curve{Sets: m.sets, Points: make([]Point, m.banks)}
		for j := 0; j < m.banks; j++ {
			misses := accesses - counts[i].hits(j)
			p := Point{
				SizeBytes: m.sets * (1 << uint(j)) * opt.LineBytes,
				Assoc:     1 << uint(j),
				Misses:    misses,
			}
			if accesses > 0 {
				p.MissRatio = float64(misses) / float64(accesses)
			}
			c.Points[j] = p
		}
		res.Curves[i] = c
	}
	return res
}

// AnalyzeChunked is Analyze over an already-compressed recording,
// avoiding a recompression when the caller (the replay engine, the
// service layer) holds one.
func AnalyzeChunked(cr *trace.ChunkedRecording, opt Options) (*Result, error) {
	opt, err := opt.Normalize()
	if err != nil {
		return nil, err
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	obs.MRCPasses.Inc()

	lineShift := uint(bits.TrailingZeros(uint(opt.LineBytes)))
	models := newModels(opt)

	var counts []bucketed
	if opt.MaxAssoc == 1 {
		counts, err = runSerialDM(ctx, cr, models, lineShift)
		if err != nil {
			return nil, err
		}
	} else {
		var stacks []*stack
		if opt.Shards > 1 {
			stacks, err = runSharded(ctx, cr, models, lineShift, opt.Shards)
		} else {
			stacks, err = runSerial(ctx, cr, models, lineShift)
		}
		if err != nil {
			return nil, err
		}
		counts = make([]bucketed, len(stacks))
		for i, s := range stacks {
			counts[i] = s
		}
	}

	var stores uint64
	for i := 0; i < cr.Chunks(); i++ {
		stores += uint64(cr.ChunkStoreCount(i))
	}
	return assemble(opt, models, counts, cr.Accesses(), stores), nil
}

// runSerial decodes each chunk once and feeds every model's stacks
// from the shared scratch buffer.
func runSerial(ctx context.Context, cr *trace.ChunkedRecording, models []model, lineShift uint) ([]*stack, error) {
	stacks := make([]*stack, len(models))
	masks := make([]uint32, len(models))
	for i, m := range models {
		stacks[i] = newStack(m.sets, m.banks)
		masks[i] = uint32(m.sets - 1)
	}
	var scratch trace.ChunkScratch
	for ci := 0; ci < cr.Chunks(); ci++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		addrs, err := cr.DecodeChunkAddrs(ci, &scratch)
		if err != nil {
			return nil, err
		}
		for i, s := range stacks {
			mask := masks[i]
			for _, a := range addrs {
				line := a >> lineShift
				s.access(line&mask, line)
			}
		}
		obs.MRCLines.Add(uint64(len(addrs)) * uint64(len(stacks)))
	}
	return stacks, nil
}

// runSharded fans each model's set ranges out over harness.Map. Every
// shard decodes the (immutable, shared) chunk columns with its own
// scratch — decode work is duplicated across shards, but the stack
// updates dominate and the sets partition exactly, so merged
// histograms equal the serial pass bit for bit.
func runSharded(ctx context.Context, cr *trace.ChunkedRecording, models []model, lineShift uint, shards int) ([]*stack, error) {
	tasks := shardTasks(models, shards)
	parts, err := harness.Map(ctx, len(tasks), harness.MapOptions{Workers: shards},
		func(ctx context.Context, ti int) (*stack, error) {
			t := tasks[ti]
			s := newStack(int(t.hi-t.lo), t.m.banks)
			mask := uint32(t.m.sets - 1)
			var scratch trace.ChunkScratch
			for ci := 0; ci < cr.Chunks(); ci++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				addrs, err := cr.DecodeChunkAddrs(ci, &scratch)
				if err != nil {
					return nil, err
				}
				n := uint64(0)
				for _, a := range addrs {
					line := a >> lineShift
					set := line & mask
					if set < t.lo || set >= t.hi {
						continue
					}
					s.access(set-t.lo, line)
					n++
				}
				obs.MRCLines.Add(n)
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	// Merge each model's shard histograms back into one stack per
	// model, in task order (tasks are grouped by model).
	stacks := make([]*stack, 0, len(models))
	ti := 0
	for _, m := range models {
		n := shardCount(m, shards)
		agg := parts[ti]
		for k := 1; k < n; k++ {
			agg.merge(parts[ti+k])
		}
		ti += n
		stacks = append(stacks, agg)
	}
	return stacks, nil
}
