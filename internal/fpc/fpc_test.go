package fpc

import (
	"testing"
	"testing/quick"

	"fvcache/internal/trace"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		w    uint32
		want Pattern
		bits int
	}{
		{0, Zero, 3},
		{1, Sign4, 7},
		{7, Sign4, 7},
		{0xfffffff8, Sign4, 7}, // -8
		{8, Sign8, 11},
		{127, Sign8, 11},
		{0xffffff80, Sign8, 11}, // -128
		{128, Sign16, 19},
		{32767, Sign16, 19},
		{0xffff8000, Sign16, 19}, // -32768
		{40000, HalfZero, 19},    // fits 16 bits unsigned, not signed
		{0x78787878, RepeatedByte, 11},
		{0xdeadbeef, Uncompressed, 35},
		{0x12345678, Uncompressed, 35},
	}
	for _, c := range cases {
		p, bits := Classify(c.w)
		if p != c.want || bits != c.bits {
			t.Errorf("Classify(%#x) = %v/%d, want %v/%d", c.w, p, bits, c.want, c.bits)
		}
	}
}

func TestClassifyNeverExpandsbeyondTag(t *testing.T) {
	f := func(w uint32) bool {
		_, bits := Classify(w)
		return bits >= prefixBits && bits <= 32+prefixBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternString(t *testing.T) {
	for p := Zero; p <= Uncompressed; p++ {
		if p.String() == "unknown" {
			t.Errorf("pattern %d has no name", p)
		}
	}
	if Pattern(99).String() != "unknown" {
		t.Error("out-of-range pattern must be unknown")
	}
}

func TestLineBitsAndRatio(t *testing.T) {
	allZero := make([]uint32, 8)
	if got := LineBits(allZero); got != 24 { // 8 x 3-bit prefix
		t.Errorf("all-zero line = %d bits, want 24", got)
	}
	if r := Ratio(allZero); r < 10 {
		t.Errorf("all-zero ratio = %v, want > 10x", r)
	}
	random := []uint32{0xdeadbeef, 0x12345679, 0xcafebabe, 0x87654321,
		0xdeadbee1, 0x12345671, 0xcafebab1, 0x87654322}
	if r := Ratio(random); r > 1.0 {
		t.Errorf("incompressible ratio = %v, want <= 1.0", r)
	}
}

func TestRatioEmpty(t *testing.T) {
	if Ratio(nil) != 0 {
		t.Error("empty line ratio must be 0")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Emit(trace.Event{Op: trace.Load, Value: 0})
	h.Emit(trace.Event{Op: trace.Store, Value: 0x78787878})
	h.Emit(trace.Event{Op: trace.Load, Value: 0xdeadbeef})
	h.Emit(trace.Event{Op: trace.HeapAlloc, Value: 5}) // ignored
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h.Counts[Zero] != 1 || h.Counts[RepeatedByte] != 1 || h.Counts[Uncompressed] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	wantAvg := float64(3+11+35) / 3
	if got := h.AvgBits(); got != wantAvg {
		t.Errorf("AvgBits = %v, want %v", got, wantAvg)
	}
	if got := h.CompressibleFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("CompressibleFraction = %v, want 2/3", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.AvgBits() != 0 || h.CompressibleFraction() != 0 {
		t.Error("empty histogram must report zeros")
	}
}
