// Package fpc implements Frequent Pattern Compression-style per-word
// compression (Alameldeen & Wood, the research line this paper's
// frequent-value encoding spawned). Where the FVC encodes a small set
// of *specific* frequent values, FPC encodes frequent *patterns*: zero
// words, small sign-extended integers, and repeated bytes.
//
// The package computes compressed sizes only — enough to compare the
// two compression philosophies on real memory images (the xcompress
// experiment) — since a full FPC cache would time-share decompression
// latency this simulator does not model.
package fpc

import "fvcache/internal/trace"

// Pattern classifies how a word compresses.
type Pattern uint8

const (
	// Zero is the all-zero word.
	Zero Pattern = iota
	// Sign4 is a 4-bit sign-extended integer (-8..7).
	Sign4
	// Sign8 is an 8-bit sign-extended integer (-128..127).
	Sign8
	// Sign16 is a 16-bit sign-extended integer.
	Sign16
	// HalfZero is a word whose upper half is zero (unsigned 16-bit).
	HalfZero
	// RepeatedByte is a word of four identical bytes (e.g. 0x78787878).
	RepeatedByte
	// Uncompressed matches no pattern.
	Uncompressed
	numPatterns
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Zero:
		return "zero"
	case Sign4:
		return "sign4"
	case Sign8:
		return "sign8"
	case Sign16:
		return "sign16"
	case HalfZero:
		return "halfzero"
	case RepeatedByte:
		return "repbyte"
	case Uncompressed:
		return "uncompressed"
	}
	return "unknown"
}

// prefixBits is the per-word pattern tag size.
const prefixBits = 3

// dataBits returns the payload size for a pattern.
func dataBits(p Pattern) int {
	switch p {
	case Zero:
		return 0
	case Sign4:
		return 4
	case Sign8, RepeatedByte:
		return 8
	case Sign16, HalfZero:
		return 16
	default:
		return 32
	}
}

// Classify returns the best (smallest) pattern for w and its encoded
// size in bits including the pattern prefix.
func Classify(w uint32) (Pattern, int) {
	p := classify(w)
	return p, prefixBits + dataBits(p)
}

func classify(w uint32) Pattern {
	switch {
	case w == 0:
		return Zero
	case int32(w) >= -8 && int32(w) <= 7:
		return Sign4
	case int32(w) >= -128 && int32(w) <= 127:
		return Sign8
	case int32(w) >= -32768 && int32(w) <= 32767:
		return Sign16
	case w&0xffff0000 == 0:
		return HalfZero
	case isRepeatedByte(w):
		return RepeatedByte
	default:
		return Uncompressed
	}
}

func isRepeatedByte(w uint32) bool {
	b := w & 0xff
	return w == b|b<<8|b<<16|b<<24
}

// LineBits returns the compressed size in bits of a line of words.
func LineBits(words []uint32) int {
	total := 0
	for _, w := range words {
		_, bits := Classify(w)
		total += bits
	}
	return total
}

// Ratio returns the compression ratio (original/compressed) for a line.
func Ratio(words []uint32) float64 {
	bits := LineBits(words)
	if bits == 0 {
		return 0
	}
	return float64(len(words)*32) / float64(bits)
}

// Histogram tallies pattern occurrences over a stream of values.
// It implements trace.Sink (accesses only).
type Histogram struct {
	Counts [numPatterns]uint64
	total  uint64
	bits   uint64
}

// Emit classifies the value of an access event.
func (h *Histogram) Emit(e trace.Event) {
	if !e.Op.IsAccess() {
		return
	}
	h.Observe(e.Value)
}

// Observe classifies one word.
func (h *Histogram) Observe(w uint32) {
	p, bits := Classify(w)
	h.Counts[p]++
	h.total++
	h.bits += uint64(bits)
}

// Total returns the number of words observed.
func (h *Histogram) Total() uint64 { return h.total }

// AvgBits returns the mean compressed bits per word.
func (h *Histogram) AvgBits() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.bits) / float64(h.total)
}

// CompressibleFraction returns the fraction of words matching any
// pattern other than Uncompressed.
func (h *Histogram) CompressibleFraction() float64 {
	if h.total == 0 {
		return 0
	}
	return 1 - float64(h.Counts[Uncompressed])/float64(h.total)
}
