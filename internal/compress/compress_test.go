package compress

import (
	"math/rand"
	"testing"

	"fvcache/internal/fvc"
	"fvcache/internal/trace"
)

func table() *fvc.Table {
	return fvc.MustTable(3, []uint32{0, 1, 2, 4, 8, 10, 0xffffffff})
}

func newCache(t *testing.T, sizeBytes int) *Cache {
	t.Helper()
	return MustNew(Params{SizeBytes: sizeBytes, LineBytes: 16}, table())
}

func TestParamsValidate(t *testing.T) {
	good := Params{SizeBytes: 1024, LineBytes: 32}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{SizeBytes: 0, LineBytes: 32},
		{SizeBytes: 1024, LineBytes: 24},
		{SizeBytes: 1000, LineBytes: 32},
		{SizeBytes: 96, LineBytes: 32}, // 3 frames, not power of two
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v should fail validation", p)
		}
	}
	if good.Frames() != 32 || good.WordsPerLine() != 8 {
		t.Errorf("derived geometry wrong: %d frames, %d wpl", good.Frames(), good.WordsPerLine())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := newCache(t, 64) // 4 frames of 16B
	if c.Access(trace.Load, 0x1000, 0) {
		t.Error("cold access must miss")
	}
	if !c.Access(trace.Load, 0x1004, 0) {
		t.Error("same line must hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Loads != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// Two lines of frequent values that conflict in a plain DMC share one
// frame compressed — the package's whole point.
func TestTwoCompressedLinesShareFrame(t *testing.T) {
	c := newCache(t, 64)            // 4 frames: lines 0x1000 and 0x1040 both map to frame 0
	c.Access(trace.Load, 0x1000, 0) // all-zero line: compressible
	c.Access(trace.Load, 0x1040, 0) // conflicting, also compressible
	if !c.Access(trace.Load, 0x1000, 0) {
		t.Error("first compressed line must survive the conflicting fill")
	}
	if !c.Access(trace.Load, 0x1040, 0) {
		t.Error("second compressed line must be resident too")
	}
	if got := c.ValidLines(); got != 2 {
		t.Errorf("ValidLines = %d, want 2", got)
	}
	if got := c.CompressedFraction(); got != 1.0 {
		t.Errorf("CompressedFraction = %v, want 1.0", got)
	}
}

func TestIncompressibleLineTakesWholeFrame(t *testing.T) {
	c := newCache(t, 64)
	// Make line 0x1000's words infrequent in the replica via stores.
	vals := []uint32{0xdeadbeef, 0x12345678, 0xcafebabe, 0x87654321}
	for i, v := range vals {
		c.Access(trace.Store, 0x1000+uint32(i*4), v)
	}
	// Now resident uncompressed; a second conflicting compressible
	// line evicts it entirely on install... fill 0x1040 (zeros).
	c.Access(trace.Load, 0x1040, 0)
	if c.Access(trace.Load, 0x1000, 0xdeadbeef) {
		t.Error("uncompressed line should have been evicted by the compressed fill")
	}
	st := c.Stats()
	if st.UncompressedFills == 0 || st.CompressedFills == 0 {
		t.Errorf("fills not classified: %+v", st)
	}
}

func TestStoreExpansion(t *testing.T) {
	c := newCache(t, 64)
	c.Access(trace.Load, 0x1000, 0) // compressed all-zero line
	c.Access(trace.Load, 0x1040, 0) // partner compressed line
	// Store infrequent values into line 0x1000 until it overflows
	// half a frame: 16B line = 128 bits, half = 64; 4 words at 1+32
	// bits... two infrequent words = 2*33 + 2*4 = 74 > 64.
	c.Access(trace.Store, 0x1000, 0xdeadbeef)
	c.Access(trace.Store, 0x1004, 0x12345678)
	st := c.Stats()
	if st.Expansions == 0 {
		t.Fatalf("expected an expansion: %+v", st)
	}
	// The partner must be gone; the expanded line still resident.
	if !c.Access(trace.Load, 0x1008, 0) {
		t.Error("expanded line must remain resident")
	}
	if c.Access(trace.Load, 0x1040, 0) {
		t.Error("partner line must have been evicted by the expansion")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := newCache(t, 64)
	c.Access(trace.Store, 0x1000, 0) // dirty compressed line (store of frequent 0)
	// Force eviction: fill the same frame with two more compressible
	// lines (LRU kicks out the dirty one).
	c.Access(trace.Load, 0x1040, 0)
	c.Access(trace.Load, 0x1080, 0)
	if c.Stats().LineWritebacks == 0 {
		t.Errorf("dirty eviction must write back: %+v", c.Stats())
	}
}

func TestEmitIgnoresAllocs(t *testing.T) {
	c := newCache(t, 64)
	c.Emit(trace.Event{Op: trace.HeapAlloc, Addr: 0x1000, Value: 64})
	if c.Stats().Accesses() != 0 {
		t.Error("alloc events must be ignored")
	}
}

func TestMissRate(t *testing.T) {
	c := newCache(t, 64)
	if c.Stats().MissRate() != 0 {
		t.Error("empty cache miss rate must be 0")
	}
	c.Access(trace.Load, 0x1000, 0)
	c.Access(trace.Load, 0x1000, 0)
	if got := c.Stats().MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

// On a frequent-value-rich conflict workload, the compressed cache
// must beat a plain direct-mapped cache of equal physical size (its
// effective capacity is doubled for compressible lines).
func TestCompressionBeatsPlainDMCOnFrequentData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	comp := newCache(t, 256)
	// Reference: identical cache with an empty-value table (nothing is
	// frequent, so nothing compresses — behaves like a plain DMC).
	plain := MustNew(Params{SizeBytes: 256, LineBytes: 16}, fvc.MustTable(3, nil))
	// Working set of 512B (2x capacity), all zeros.
	for i := 0; i < 20000; i++ {
		addr := uint32(rng.Intn(128)) * 4
		comp.Access(trace.Load, addr, 0)
		plain.Access(trace.Load, addr, 0)
	}
	if comp.Stats().Misses >= plain.Stats().Misses {
		t.Errorf("compression should reduce misses: comp=%d plain=%d",
			comp.Stats().Misses, plain.Stats().Misses)
	}
}

// Property: replica-consistent — a load after stores returns hit/miss
// but the architectural value tracking must never corrupt (indirectly
// verified via compressibility decisions not panicking) and stats stay
// consistent.
func TestRandomStreamConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := newCache(t, 128)
	values := []uint32{0, 1, 2, 0xdeadbeef, 10, 0xffffffff, 77777}
	for i := 0; i < 50000; i++ {
		addr := uint32(rng.Intn(256)) * 4
		if rng.Intn(2) == 0 {
			c.Access(trace.Load, addr, 0)
		} else {
			c.Access(trace.Store, addr, values[rng.Intn(len(values))])
		}
		// Frame invariant: an uncompressed line never shares a frame.
		if i%501 == 0 {
			for fi := range c.frames {
				fr := &c.frames[fi]
				if fr.slots[0].valid && !fr.slots[0].compressed && fr.slots[1].valid {
					t.Fatalf("frame %d holds an uncompressed line plus a partner", fi)
				}
				if fr.slots[1].valid && !fr.slots[1].compressed {
					t.Fatalf("frame %d slot 1 holds an uncompressed line", fi)
				}
			}
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Accesses() {
		t.Errorf("stats inconsistent: %+v", st)
	}
}
