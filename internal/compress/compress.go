// Package compress implements the paper's follow-up idea (its
// reference [11], "Frequent Value Compression in Data Caches"): rather
// than a separate value-centric structure, the data cache itself
// stores lines in compressed form, fitting two compressed lines into
// one physical line frame and thereby roughly doubling effective
// capacity for frequent-value-rich data.
//
// Encoding: each word is kept as a 1-bit flag plus either a code of
// Table.Bits() bits (frequent value) or the full 32 bits (infrequent).
// A line is stored compressed when its encoding fits in half a frame.
// A store of an infrequent value can make a compressed line overflow,
// in which case it expands and its frame partner is evicted.
package compress

import (
	"fmt"

	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/trace"
)

// Params describes a compressed cache geometry.
type Params struct {
	// SizeBytes is the physical data capacity in bytes.
	SizeBytes int
	// LineBytes is the (uncompressed) line size in bytes.
	LineBytes int
}

// Validate checks the geometry.
func (p Params) Validate() error {
	switch {
	case p.SizeBytes <= 0:
		return fmt.Errorf("compress: SizeBytes must be positive, got %d", p.SizeBytes)
	case p.LineBytes < trace.WordBytes || p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("compress: LineBytes must be a power of two >= %d, got %d", trace.WordBytes, p.LineBytes)
	case p.SizeBytes%p.LineBytes != 0:
		return fmt.Errorf("compress: SizeBytes %d not a multiple of LineBytes %d", p.SizeBytes, p.LineBytes)
	case (p.SizeBytes/p.LineBytes)&(p.SizeBytes/p.LineBytes-1) != 0:
		return fmt.Errorf("compress: number of frames must be a power of two")
	}
	return nil
}

// Frames returns the number of physical line frames.
func (p Params) Frames() int { return p.SizeBytes / p.LineBytes }

// WordsPerLine returns words per uncompressed line.
func (p Params) WordsPerLine() int { return p.LineBytes / trace.WordBytes }

type slot struct {
	tag        uint32
	valid      bool
	dirty      bool
	compressed bool
	lru        uint64
}

// frame is one physical line frame: either one uncompressed line in
// slot 0, or up to two compressed lines.
type frame struct {
	slots [2]slot
}

// Stats accumulates compressed-cache statistics.
type Stats struct {
	Loads  uint64
	Stores uint64
	Hits   uint64
	Misses uint64

	LineFetches    uint64
	LineWritebacks uint64
	// Expansions counts compressed lines that overflowed after a store
	// of an infrequent value.
	Expansions uint64
	// CompressedFills and UncompressedFills classify line installs.
	CompressedFills   uint64
	UncompressedFills uint64
}

// Accesses returns loads + stores.
func (s Stats) Accesses() uint64 { return s.Loads + s.Stores }

// MissRate returns misses/accesses in [0,1].
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// Cache is the frequent-value-compressed data cache.
type Cache struct {
	p      Params
	table  *fvc.Table
	frames []frame
	mem    *memsim.Memory
	clock  uint64
	stats  Stats

	frameMask uint32
	lineShift uint32
}

// New builds a compressed cache using table to decide word
// compressibility.
func New(p Params, table *fvc.Table) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	shift := uint32(0)
	for v := p.LineBytes; v > 1; v >>= 1 {
		shift++
	}
	return &Cache{
		p:         p,
		table:     table,
		frames:    make([]frame, p.Frames()),
		mem:       memsim.NewMemory(),
		frameMask: uint32(p.Frames() - 1),
		lineShift: shift,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(p Params, table *fvc.Table) *Cache {
	c, err := New(p, table)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Params returns the geometry.
func (c *Cache) Params() Params { return c.p }

func (c *Cache) lineAddr(addr uint32) uint32 { return addr >> c.lineShift }

// encodedBits returns the compressed size in bits of the line with the
// given base address, from the architectural replica.
func (c *Cache) encodedBits(base uint32) int {
	bits := 0
	for i := 0; i < c.p.WordsPerLine(); i++ {
		w := c.mem.LoadWord(base + uint32(i*trace.WordBytes))
		bits++ // frequent/infrequent flag
		if c.table.Contains(w) {
			bits += c.table.Bits()
		} else {
			bits += 32
		}
	}
	return bits
}

// compressible reports whether the line at base fits in half a frame.
func (c *Cache) compressible(base uint32) bool {
	return c.encodedBits(base) <= c.p.LineBytes*8/2
}

// Emit implements trace.Sink.
func (c *Cache) Emit(e trace.Event) {
	if !e.Op.IsAccess() {
		return
	}
	c.Access(e.Op, e.Addr, e.Value)
}

// Access simulates one access and reports whether it hit.
func (c *Cache) Access(op trace.Op, addr, value uint32) bool {
	store := op == trace.Store
	if store {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}

	la := c.lineAddr(addr)
	fr := &c.frames[la&c.frameMask]
	hitSlot := -1
	for i := range fr.slots {
		if fr.slots[i].valid && fr.slots[i].tag == la {
			hitSlot = i
			break
		}
	}

	if store {
		c.mem.StoreWord(addr, value)
	}

	if hitSlot >= 0 {
		c.stats.Hits++
		s := &fr.slots[hitSlot]
		c.clock++
		s.lru = c.clock
		if store {
			s.dirty = true
			// A store of an infrequent value may overflow a compressed
			// line: expand it, evicting the frame partner.
			if s.compressed && !c.compressible(la<<c.lineShift) {
				c.stats.Expansions++
				other := &fr.slots[1-hitSlot]
				c.evict(other)
				s.compressed = false
				if hitSlot != 0 {
					fr.slots[0], fr.slots[1] = fr.slots[1], fr.slots[0]
				}
			}
		}
		return true
	}

	// Miss: fetch and install.
	c.stats.Misses++
	c.stats.LineFetches++
	c.install(fr, la, store)
	return false
}

// evict writes back a dirty slot and invalidates it.
func (c *Cache) evict(s *slot) {
	if s.valid && s.dirty {
		c.stats.LineWritebacks++
	}
	*s = slot{}
}

// install places line la into the frame, compressed when possible.
func (c *Cache) install(fr *frame, la uint32, dirty bool) {
	c.clock++
	if c.compressible(la << c.lineShift) {
		c.stats.CompressedFills++
		// If the frame currently holds an uncompressed line, it must
		// go entirely.
		if fr.slots[0].valid && !fr.slots[0].compressed {
			c.evict(&fr.slots[0])
		}
		// Choose an empty slot, else the LRU compressed slot.
		victim := &fr.slots[0]
		for i := range fr.slots {
			s := &fr.slots[i]
			if !s.valid {
				victim = s
				break
			}
			if s.lru < victim.lru {
				victim = s
			}
		}
		c.evict(victim)
		*victim = slot{tag: la, valid: true, dirty: dirty, compressed: true, lru: c.clock}
		return
	}
	c.stats.UncompressedFills++
	// Uncompressed: the line needs the whole frame.
	c.evict(&fr.slots[0])
	c.evict(&fr.slots[1])
	fr.slots[0] = slot{tag: la, valid: true, dirty: dirty, compressed: false, lru: c.clock}
}

// ValidLines returns the number of resident lines (a frame with two
// compressed lines counts twice).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.frames {
		for j := range c.frames[i].slots {
			if c.frames[i].slots[j].valid {
				n++
			}
		}
	}
	return n
}

// CompressedFraction returns the fraction of resident lines stored
// compressed.
func (c *Cache) CompressedFraction() float64 {
	total, comp := 0, 0
	for i := range c.frames {
		for j := range c.frames[i].slots {
			if c.frames[i].slots[j].valid {
				total++
				if c.frames[i].slots[j].compressed {
					comp++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(comp) / float64(total)
}
