package resultcache_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fvcache/internal/resultcache"
)

// entryFiles lists the *.fvr entries currently in dir (quarantine
// excluded).
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".fvr" {
			out = append(out, de.Name())
		}
	}
	return out
}

// TestMemoryTierRoundTrip: Put then Get must return the stored slice;
// an absent key must miss.
func TestMemoryTierRoundTrip(t *testing.T) {
	c, err := resultcache.Open(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(0)
	want := testResults(0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("get after put: ok=%v got=%+v", ok, got)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("hit on absent key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.MemEntries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", st)
	}
}

// TestMemoryTierLRUEviction: a byte-budgeted memory tier must evict
// least-recently-used entries first.
func TestMemoryTierLRUEviction(t *testing.T) {
	c, err := resultcache.Open(resultcache.Options{MemBytes: 1600}) // fits ~3 entries
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Put(testKey(i), testResults(i))
	}
	// Touch 0 so 1 is the LRU, then overflow.
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("key 0 evicted prematurely")
	}
	c.Put(testKey(3), testResults(3))
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(testKey(0)); !ok {
		t.Error("recently used entry was evicted")
	}
	if st := c.Stats(); st.MemBytes > 1600 {
		t.Errorf("memory tier over budget: %d > 1600", st.MemBytes)
	}
}

// TestAdmissionPromotesOnSecondHit pins the Flashield admission rule:
// a fresh result stays memory-only through its first reuse and earns
// its durable write on the second hit.
func TestAdmissionPromotesOnSecondHit(t *testing.T) {
	dir := t.TempDir()
	c, err := resultcache.Open(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k, want := testKey(0), testResults(0)
	c.Put(k, want)
	if n := entryFiles(t, dir); len(n) != 0 {
		t.Fatalf("entry written at Put time (admission bypassed): %v", n)
	}
	c.Get(k)
	if n := entryFiles(t, dir); len(n) != 0 {
		t.Fatalf("entry written after first hit (admission bypassed): %v", n)
	}
	c.Get(k)
	if n := entryFiles(t, dir); len(n) != 1 {
		t.Fatalf("second hit did not promote: %v", n)
	}
	if st := c.Stats(); st.Promotes != 1 {
		t.Fatalf("promotes = %d, want 1", st.Promotes)
	}

	// A fresh process over the same directory must serve the entry
	// from disk, bit-identically.
	c2, err := resultcache.Open(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("disk tier get: ok=%v got=%+v want=%+v", ok, got, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
	// Now memory-resident: the next hit must not touch the disk again.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("re-get after disk fault-in missed")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits after memory re-get = %d, want 1", st.DiskHits)
	}
}

// TestRecoveryScanQuarantines: a boot-time scan over a directory with
// torn, garbled and leftover-temp files must quarantine all of them
// into corrupt/ and index only the survivors.
func TestRecoveryScanQuarantines(t *testing.T) {
	dir := t.TempDir()
	c, err := resultcache.Open(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Two promoted entries.
	for i := 0; i < 2; i++ {
		c.Put(testKey(i), testResults(i))
		c.Get(testKey(i))
		c.Get(testKey(i))
	}
	files := entryFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("want 2 entries, have %v", files)
	}
	// Tear the first entry, drop a stray temp file and a garbage entry.
	torn := filepath.Join(dir, files[0])
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "inflight.fvr.tmp"), data[:8], 0o644)
	os.WriteFile(filepath.Join(dir, "garbage.fvr"), []byte("not an entry"), 0o644)

	c2, err := resultcache.Open(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Quarantined != 3 {
		t.Errorf("quarantined = %d, want 3 (torn, tmp, garbage)", st.Quarantined)
	}
	if st.DiskEntries != 1 {
		t.Errorf("disk entries after recovery = %d, want 1", st.DiskEntries)
	}
	if got, ok := c2.Get(testKey(1)); !ok || !reflect.DeepEqual(got, testResults(1)) {
		t.Errorf("surviving entry not served: ok=%v", ok)
	}
	if _, ok := c2.Get(testKey(0)); ok {
		t.Error("torn entry served after recovery")
	}
	qdir, err := os.ReadDir(filepath.Join(dir, "corrupt"))
	if err != nil || len(qdir) != 3 {
		t.Errorf("corrupt/ holds %d files (err %v), want 3", len(qdir), err)
	}
	if n := entryFiles(t, dir); len(n) != 1 {
		t.Errorf("cache root still holds %v", n)
	}
}

// TestDiskBudgetEviction: the disk tier must stay within its byte
// budget by deleting the oldest entries.
func TestDiskBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	one, err := resultcache.EncodeEntry(resultcache.Entry{Key: testKey(0), Results: testResults(0)})
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(len(one))*2 + int64(len(one))/2 // fits two entries
	c, err := resultcache.Open(resultcache.Options{Dir: dir, DiskBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(testKey(i), testResults(i))
		c.Get(testKey(i))
		c.Get(testKey(i))
		time.Sleep(2 * time.Millisecond) // distinct mtimes for the rescan below
	}
	st := c.Stats()
	if st.Promotes != 4 {
		t.Fatalf("promotes = %d, want 4", st.Promotes)
	}
	if st.DiskBytes > budget {
		t.Errorf("disk tier over budget: %d > %d", st.DiskBytes, budget)
	}
	files := entryFiles(t, dir)
	if len(files) != st.DiskEntries {
		t.Errorf("index says %d entries, directory holds %d", st.DiskEntries, len(files))
	}
	if len(files) >= 4 {
		t.Errorf("no disk eviction happened: %d files", len(files))
	}
	// A recovery scan over an over-budget directory also trims.
	small := int64(len(one)) + int64(len(one))/2 // fits one entry
	c2, err := resultcache.Open(resultcache.Options{Dir: dir, DiskBytes: small})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskBytes > small {
		t.Errorf("recovery scan left tier over budget: %d > %d", st.DiskBytes, small)
	}
}

// TestResultCacheHitZeroAllocs is the telemetry-overhead gate for the
// serving fast path: a steady-state memory-tier hit must not allocate.
func TestResultCacheHitZeroAllocs(t *testing.T) {
	c, err := resultcache.Open(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(0)
	c.Put(k, testResults(0))
	c.Get(k)
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get(k); !ok {
			t.Fatal("steady-state miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f allocs/op, want 0", allocs)
	}
}
