// Package resultcache is a tiered (in-memory LRU -> on-disk),
// content-addressed store for measurement results, keyed by (workload,
// scale, config fingerprint, engine version). It is the durable half
// of the fvcached serving path: repeat traffic for a configuration the
// fleet has already measured is answered in O(1) without replaying the
// workload, across requests and across process restarts.
//
// Robustness is the design headline, not an afterthought:
//
//   - Disk entries are written atomically (temp file + fsync + rename)
//     and framed with a magic/version header and CRC32C over the
//     payload (entry.go). Every read validates the frame; a corrupt or
//     truncated entry is quarantined into the corrupt/ subdirectory
//     and counted — it is never returned as a result.
//   - The filesystem is the index: a boot-time recovery scan rebuilds
//     the disk index from surviving entries, quarantining damage
//     (including *.tmp leftovers from a crash mid-write). There is no
//     journal to replay or corrupt.
//   - Admission is Flashield-style: a result earns its durable write
//     only after a second hit on its fingerprint demonstrates reuse,
//     keeping disk writes bounded under one-shot traffic.
//   - The disk tier degrades, never outages: EIO/ENOSPC/slow I/O trips
//     the tier into memory-only mode (log + counter), re-probing after
//     a cooldown. Callers see cache misses, not errors.
//
// Concurrency: all methods are safe for concurrent use. The memory
// hit path is allocation-free (gated by TestResultCacheHitZeroAllocs)
// so it can sit on the service's per-request fast path.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fvcache/internal/obs"
	"fvcache/internal/sim"
)

// Cache metrics, exported on /debug/metrics and in the telemetry
// snapshot.
var (
	cacheHits        = obs.Default.Counter("resultcache_hit")
	cacheMisses      = obs.Default.Counter("resultcache_miss")
	cachePromotes    = obs.Default.Counter("resultcache_promote")
	cacheQuarantined = obs.Default.Counter("resultcache_corrupt_quarantined")
	cacheDegraded    = obs.Default.Counter("resultcache_disk_degraded")
	cacheDiskHits    = obs.Default.Counter("resultcache_disk_hit")
	cacheSlowOps     = obs.Default.Counter("resultcache_disk_slow")
)

// Key identifies one cached measurement. ConfigFP must be a stable
// fingerprint of the configuration and measurement options; Engine
// pins the producing engine version so a stale binary never serves
// another version's numbers.
type Key struct {
	Workload string
	Scale    string
	ConfigFP string
	Engine   string
}

// addr derives the key's content address: the hex SHA-256 of its
// fields, which is also the disk tier's filename (plus entryExt).
func (k Key) addr() string {
	h := sha256.New()
	for _, s := range []string{k.Workload, k.Scale, k.ConfigFP, k.Engine} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryExt is the disk entry filename extension.
const entryExt = ".fvr"

// corruptDir is the quarantine subdirectory under the cache root.
const corruptDir = "corrupt"

// Options configures a Cache.
type Options struct {
	// Dir is the disk tier root; "" disables the disk tier (the cache
	// is memory-only).
	Dir string
	// MemBytes bounds the memory tier (<=0 means 64 MiB).
	MemBytes int64
	// DiskBytes bounds the disk tier (<=0 means 256 MiB). Over-budget
	// entries are evicted oldest-first.
	DiskBytes int64
	// PromoteAfter is how many memory-tier hits a fingerprint needs
	// before its result is written to disk (<=0 means 2: the Flashield
	// admission rule — one demonstrated reuse is not enough, a second
	// hit is).
	PromoteAfter int
	// DegradeAfter is how many consecutive disk faults trip the disk
	// tier into memory-only degraded mode (<=0 means 3). ENOSPC trips
	// immediately regardless.
	DegradeAfter int
	// DegradeCooldown is how long a degraded disk tier stays offline
	// before the next operation re-probes it (<=0 means 30s).
	DegradeCooldown time.Duration
	// SlowOp classifies a disk read or write slower than this as a
	// fault (0 disables slow-I/O detection).
	SlowOp time.Duration
	// FS overrides the filesystem (nil means OSFS). Used by the chaos
	// suite to inject filesystem faults.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.MemBytes <= 0 {
		o.MemBytes = 64 << 20
	}
	if o.DiskBytes <= 0 {
		o.DiskBytes = 256 << 20
	}
	if o.PromoteAfter <= 0 {
		o.PromoteAfter = 2
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.DegradeCooldown <= 0 {
		o.DegradeCooldown = 30 * time.Second
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	return o
}

// memEntry is one memory-tier resident with its intrusive LRU links.
type memEntry struct {
	key        Key
	results    []sim.MeasureResult
	size       int64
	hits       int
	onDisk     bool
	promoting  bool
	prev, next *memEntry
}

// diskEntry is one disk-tier index record. The entry bytes live in
// the filesystem; this is only the accounting.
type diskEntry struct {
	key  Key
	size int64
	seq  uint64 // write order; lowest evicts first
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts Get calls answered from either tier.
	Hits uint64
	// Misses counts Get calls answered by neither tier.
	Misses uint64
	// DiskHits counts hits that were faulted in from the disk tier.
	DiskHits uint64
	// Promotes counts memory->disk admissions.
	Promotes uint64
	// Quarantined counts corrupt entries moved to corrupt/.
	Quarantined uint64
	// DiskFaults counts individual failed or slow disk operations.
	DiskFaults uint64
	// SlowOps counts disk operations that exceeded Options.SlowOp.
	SlowOps uint64
	// Degradations counts disk-tier trips into memory-only mode.
	Degradations uint64
	// MemEntries / DiskEntries are current tier populations.
	MemEntries, DiskEntries int
	// MemBytes / DiskBytes are current tier footprints.
	MemBytes, DiskBytes int64
	// Degraded reports whether the disk tier is currently offline.
	Degraded bool
}

// Cache is the tiered result store. Create one with Open.
type Cache struct {
	opt Options
	fs  FS

	mu         sync.Mutex
	mem        map[Key]*memEntry
	head, tail *memEntry // LRU: head = most recent
	memBytes   int64
	disk       map[Key]diskEntry
	diskBytes  int64
	diskSeq    uint64

	// Degradation state. degraded is the hit path's cheap check; the
	// rest is guarded by fmu.
	degraded      atomic.Bool
	fmu           sync.Mutex
	faults        int
	degradedUntil time.Time

	hits, misses, diskHits, promotes atomic.Uint64
	quarantined, diskFaults          atomic.Uint64
	slowOps, degradations            atomic.Uint64
}

// Open builds a Cache and, when a disk tier is configured, runs the
// boot-time recovery scan: every surviving entry is validated and
// indexed, corrupt or torn entries (and *.tmp leftovers from a crash
// mid-write) are quarantined, and the tier is trimmed to budget. An
// error means the disk tier's directories are unusable; callers
// should fall back to a memory-only cache rather than fail.
func Open(opt Options) (*Cache, error) {
	opt = opt.withDefaults()
	c := &Cache{
		opt:  opt,
		fs:   opt.FS,
		mem:  make(map[Key]*memEntry),
		disk: make(map[Key]diskEntry),
	}
	if opt.Dir == "" {
		return c, nil
	}
	if err := c.fs.MkdirAll(opt.Dir); err != nil {
		return nil, err
	}
	if err := c.fs.MkdirAll(filepath.Join(opt.Dir, corruptDir)); err != nil {
		return nil, err
	}
	if err := c.recoverScan(); err != nil {
		return nil, err
	}
	return c, nil
}

// recoverScan rebuilds the disk index from the filesystem.
func (c *Cache) recoverScan() error {
	dents, err := c.fs.ReadDir(c.opt.Dir)
	if err != nil {
		return err
	}
	type found struct {
		key     Key
		name    string
		size    int64
		modTime time.Time
	}
	var ok []found
	for _, de := range dents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(c.opt.Dir, name)
		if filepath.Ext(name) == tmpSuffix {
			// A crash interrupted an atomic write before the rename;
			// the bytes are a torn prefix by definition.
			c.quarantine(path, errors.New("leftover temp file from interrupted write"))
			continue
		}
		if filepath.Ext(name) != entryExt {
			continue
		}
		data, err := c.fs.ReadFile(path)
		if err != nil {
			c.quarantine(path, err)
			continue
		}
		ent, err := DecodeEntry(data)
		if err != nil {
			c.quarantine(path, err)
			continue
		}
		if want := ent.Key.addr() + entryExt; want != name {
			c.quarantine(path, errors.New("entry filed under the wrong content address"))
			continue
		}
		info, ierr := de.Info()
		mod := time.Time{}
		if ierr == nil {
			mod = info.ModTime()
		}
		ok = append(ok, found{key: ent.Key, name: name, size: int64(len(data)), modTime: mod})
	}
	// Index survivors oldest-first so budget eviction drops the oldest.
	sort.Slice(ok, func(i, j int) bool { return ok[i].modTime.Before(ok[j].modTime) })
	c.mu.Lock()
	for _, f := range ok {
		c.diskSeq++
		c.disk[f.key] = diskEntry{key: f.key, size: f.size, seq: c.diskSeq}
		c.diskBytes += f.size
	}
	evict := c.collectDiskEvictionsLocked(0)
	c.mu.Unlock()
	c.removeDiskEntries(evict)
	if n := len(c.disk); n > 0 {
		obs.Log.Info("resultcache recovered", "dir", c.opt.Dir, "entries", n, "bytes", c.diskBytes)
	}
	return nil
}

// quarantine moves a damaged file into corrupt/ (falling back to
// deletion) and counts it. The entry is never served either way.
func (c *Cache) quarantine(path string, cause error) {
	c.quarantined.Add(1)
	cacheQuarantined.Inc()
	dst := filepath.Join(c.opt.Dir, corruptDir, filepath.Base(path))
	if err := c.fs.Rename(path, dst); err != nil {
		c.fs.Remove(path)
	}
	obs.Log.Warn("resultcache quarantined entry", "path", path, "cause", cause.Error())
}

// Tier identifies which cache tier answered a lookup, so callers
// (the serving path's request traces) can attribute probe cost to
// the zero-cost memory tier vs. a disk fault-in.
type Tier int8

const (
	// TierNone means the lookup missed both tiers.
	TierNone Tier = iota
	// TierMem means the memory tier answered (allocation-free path).
	TierMem
	// TierDisk means the entry was faulted in from the disk tier.
	TierDisk
)

// Get returns the cached results for k, consulting the memory tier
// first and faulting in from the validated disk tier on a memory
// miss. The returned slice is shared and must not be mutated. The
// memory hit path allocates nothing.
func (c *Cache) Get(k Key) ([]sim.MeasureResult, bool) {
	results, tier := c.GetTier(k)
	return results, tier != TierNone
}

// GetTier is Get with tier attribution: it additionally reports which
// tier served the hit (TierNone on a miss).
func (c *Cache) GetTier(k Key) ([]sim.MeasureResult, Tier) {
	c.mu.Lock()
	if e := c.mem[k]; e != nil {
		c.moveFrontLocked(e)
		e.hits++
		promote := !e.onDisk && !e.promoting && e.hits >= c.opt.PromoteAfter && c.opt.Dir != ""
		if promote {
			e.promoting = true
		}
		results := e.results
		c.mu.Unlock()
		c.hits.Add(1)
		cacheHits.Inc()
		if promote {
			c.promote(k, results)
		}
		return results, TierMem
	}
	de, onDisk := c.disk[k]
	c.mu.Unlock()
	if !onDisk || !c.diskUsable() {
		c.misses.Add(1)
		cacheMisses.Inc()
		return nil, TierNone
	}
	results, ok := c.diskGet(k, de)
	if !ok {
		c.misses.Add(1)
		cacheMisses.Inc()
		return nil, TierNone
	}
	c.hits.Add(1)
	c.diskHits.Add(1)
	cacheHits.Inc()
	cacheDiskHits.Inc()
	return results, TierDisk
}

// diskGet reads, validates and re-caches one disk entry. Corruption
// quarantines the entry; I/O faults feed the degradation ladder. Both
// turn into a miss, never an error or a wrong result.
func (c *Cache) diskGet(k Key, de diskEntry) ([]sim.MeasureResult, bool) {
	path := filepath.Join(c.opt.Dir, k.addr()+entryExt)
	start := time.Now()
	data, err := c.fs.ReadFile(path)
	c.observeOp(time.Since(start))
	if err != nil {
		c.diskFault(err)
		c.dropDiskIndex(k, de)
		return nil, false
	}
	ent, derr := DecodeEntry(data)
	if derr == nil && ent.Key != k {
		derr = &CorruptError{Path: path, Cause: errors.New("entry decodes to a different key")}
	}
	if derr != nil {
		c.quarantine(path, derr)
		c.dropDiskIndex(k, de)
		return nil, false
	}
	// Fault the results into the memory tier (already durable).
	c.insertMem(k, ent.Results, true)
	return ent.Results, true
}

// dropDiskIndex forgets an unreadable or quarantined disk entry.
func (c *Cache) dropDiskIndex(k Key, de diskEntry) {
	c.mu.Lock()
	if cur, ok := c.disk[k]; ok && cur.seq == de.seq {
		delete(c.disk, k)
		c.diskBytes -= cur.size
	}
	c.mu.Unlock()
}

// Put stores freshly computed results in the memory tier. Admission
// to the disk tier happens later, from Get, once the fingerprint has
// demonstrated reuse.
func (c *Cache) Put(k Key, results []sim.MeasureResult) {
	if len(results) == 0 {
		return
	}
	c.insertMem(k, results, false)
}

// entrySize estimates one memory entry's footprint for the byte
// budget: struct overhead plus results plus key strings.
func entrySize(k Key, results []sim.MeasureResult) int64 {
	const per = 176 // unsafe.Sizeof(sim.MeasureResult{}) rounded up
	return int64(192+len(k.Workload)+len(k.Scale)+len(k.ConfigFP)+len(k.Engine)) +
		int64(len(results))*per
}

// insertMem adds (or refreshes) a memory-tier entry and evicts from
// the LRU tail while over budget.
func (c *Cache) insertMem(k Key, results []sim.MeasureResult, onDisk bool) {
	size := entrySize(k, results)
	c.mu.Lock()
	if e := c.mem[k]; e != nil {
		// Refresh in place (a disk fault-in racing a Put, or a repeat
		// Put): keep the hit count, prefer the existing results so
		// concurrent readers and the admission ladder stay coherent.
		e.onDisk = e.onDisk || onDisk
		c.moveFrontLocked(e)
		c.mu.Unlock()
		return
	}
	e := &memEntry{key: k, results: results, size: size, onDisk: onDisk}
	c.mem[k] = e
	c.memBytes += size
	c.pushFrontLocked(e)
	for c.memBytes > c.opt.MemBytes && c.tail != nil && c.tail != e {
		c.evictLocked(c.tail)
	}
	c.mu.Unlock()
}

// promote writes one entry to the disk tier (the Flashield admission
// decided by Get) and evicts the oldest disk entries if over budget.
func (c *Cache) promote(k Key, results []sim.MeasureResult) {
	if !c.diskUsable() {
		c.unmarkPromoting(k)
		return
	}
	data, err := EncodeEntry(Entry{Key: k, Results: results})
	if err != nil {
		obs.Log.Warn("resultcache entry encode failed", "err", err.Error())
		c.unmarkPromoting(k)
		return
	}
	path := filepath.Join(c.opt.Dir, k.addr()+entryExt)
	start := time.Now()
	werr := c.fs.WriteFileAtomic(path, data)
	c.observeOp(time.Since(start))
	if werr != nil {
		c.diskFault(werr)
		c.unmarkPromoting(k)
		return
	}
	c.promotes.Add(1)
	cachePromotes.Inc()
	c.mu.Lock()
	c.diskSeq++
	if old, ok := c.disk[k]; ok {
		c.diskBytes -= old.size
	}
	c.disk[k] = diskEntry{key: k, size: int64(len(data)), seq: c.diskSeq}
	c.diskBytes += int64(len(data))
	if e := c.mem[k]; e != nil {
		e.onDisk = true
		e.promoting = false
	}
	evict := c.collectDiskEvictionsLocked(0)
	c.mu.Unlock()
	c.removeDiskEntries(evict)
}

// unmarkPromoting re-arms admission after a failed promotion so a
// later hit retries once the tier recovers.
func (c *Cache) unmarkPromoting(k Key) {
	c.mu.Lock()
	if e := c.mem[k]; e != nil {
		e.promoting = false
	}
	c.mu.Unlock()
}

// collectDiskEvictionsLocked pops oldest disk entries until the tier
// fits (budget minus headroom) and returns them for file removal
// outside the lock.
func (c *Cache) collectDiskEvictionsLocked(headroom int64) []diskEntry {
	var out []diskEntry
	for c.diskBytes+headroom > c.opt.DiskBytes && len(c.disk) > 0 {
		oldest := diskEntry{seq: ^uint64(0)}
		for _, de := range c.disk {
			if de.seq < oldest.seq {
				oldest = de
			}
		}
		delete(c.disk, oldest.key)
		c.diskBytes -= oldest.size
		out = append(out, oldest)
	}
	return out
}

// removeDiskEntries deletes evicted entry files. Removal failures are
// harmless (the entry is unindexed; a future recovery scan re-indexes
// or re-evicts it).
func (c *Cache) removeDiskEntries(evict []diskEntry) {
	for _, de := range evict {
		c.fs.Remove(filepath.Join(c.opt.Dir, de.key.addr()+entryExt))
	}
}

// --- degradation ladder ---

// diskUsable reports whether the disk tier is configured and not
// degraded, re-probing a degraded tier after the cooldown.
func (c *Cache) diskUsable() bool {
	if c.opt.Dir == "" {
		return false
	}
	if !c.degraded.Load() {
		return true
	}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if !c.degraded.Load() {
		return true
	}
	if time.Now().Before(c.degradedUntil) {
		return false
	}
	// Cooldown over: half-open. Clear the trip and let the next
	// operation probe the tier; a new fault re-trips immediately.
	c.degraded.Store(false)
	c.faults = c.opt.DegradeAfter - 1
	obs.Log.Info("resultcache disk tier re-probing after cooldown", "dir", c.opt.Dir)
	return true
}

// diskFault records one failed disk operation and trips the tier into
// degraded (memory-only) mode after DegradeAfter consecutive faults —
// immediately for ENOSPC, which will not clear by retrying.
func (c *Cache) diskFault(err error) {
	c.diskFaults.Add(1)
	c.fmu.Lock()
	defer c.fmu.Unlock()
	c.faults++
	if c.faults < c.opt.DegradeAfter && !errors.Is(err, syscall.ENOSPC) {
		obs.Log.Warn("resultcache disk fault", "err", err.Error(), "consecutive", c.faults)
		return
	}
	c.faults = 0
	c.degradedUntil = time.Now().Add(c.opt.DegradeCooldown)
	if !c.degraded.Swap(true) {
		c.degradations.Add(1)
		cacheDegraded.Inc()
		obs.Log.Warn("resultcache disk tier degraded to memory-only",
			"err", err.Error(), "cooldown", c.opt.DegradeCooldown.String())
	}
}

// observeOp feeds slow-I/O detection: an operation slower than
// Options.SlowOp counts as a disk fault even though it succeeded.
func (c *Cache) observeOp(d time.Duration) {
	if c.opt.SlowOp <= 0 || d < c.opt.SlowOp {
		return
	}
	c.slowOps.Add(1)
	cacheSlowOps.Inc()
	c.diskFault(errors.New("disk operation exceeded slow-op threshold"))
}

// Degraded reports whether the disk tier is currently offline.
func (c *Cache) Degraded() bool { return c.degraded.Load() }

// Stats returns a snapshot of the cache's counters and populations.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	memN, memB := len(c.mem), c.memBytes
	diskN, diskB := len(c.disk), c.diskBytes
	c.mu.Unlock()
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		DiskHits:     c.diskHits.Load(),
		Promotes:     c.promotes.Load(),
		Quarantined:  c.quarantined.Load(),
		DiskFaults:   c.diskFaults.Load(),
		SlowOps:      c.slowOps.Load(),
		Degradations: c.degradations.Load(),
		MemEntries:   memN,
		DiskEntries:  diskN,
		MemBytes:     memB,
		DiskBytes:    diskB,
		Degraded:     c.degraded.Load(),
	}
}

// --- intrusive LRU ---

func (c *Cache) pushFrontLocked(e *memEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlinkLocked(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFrontLocked(e *memEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *Cache) evictLocked(e *memEntry) {
	c.unlinkLocked(e)
	delete(c.mem, e.key)
	c.memBytes -= e.size
}
