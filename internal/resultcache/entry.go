package resultcache

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"fvcache/internal/sim"
)

// On-disk entry format (one measurement result per file):
//
//	magic    [4]byte  "FVR1"
//	version  byte     1
//	length   uint32le payload byte count
//	crc32c   uint32le CRC-32C (Castagnoli) over the payload
//	payload  []byte   JSON of entryJSON
//
// The frame is validated on every read: wrong magic, unknown version,
// an implausible length, a CRC mismatch, or a payload that does not
// decode back to the key it is filed under all yield a *CorruptError.
// Like the hardened trace.Reader, the codec fails loudly with an
// offset and never returns silently wrong stats — JSON float64
// round-trips are exact (Go emits the shortest representation that
// parses back to the same bits), and every stats field is an integer
// counter, so a decoded entry is bit-identical to what was stored.

var entryMagic = [4]byte{'F', 'V', 'R', '1'}

const (
	entryVersion = 1
	// entryHeaderLen is magic + version + length + crc.
	entryHeaderLen = 4 + 1 + 4 + 4
	// maxEntryPayload caps the payload length field. A result entry is
	// a few hundred bytes of JSON; anything beyond this is corruption,
	// not data.
	maxEntryPayload = 1 << 20
)

// crcTable is the Castagnoli polynomial table (hardware-accelerated
// CRC32C on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports an on-disk result entry that failed validation:
// a truncated frame, a bad magic or version, a CRC mismatch, or a
// payload that decodes to the wrong key. Offset locates the first
// byte the check failed at, so a damaged cache file can be inspected
// with a hex editor instead of guessed at.
type CorruptError struct {
	// Path is the file the entry was read from ("" for in-memory
	// decodes).
	Path string
	// Offset is the byte offset at which validation failed.
	Offset int64
	// Cause classifies the corruption (io.ErrUnexpectedEOF for
	// truncation, a descriptive error otherwise).
	Cause error
}

// Error formats the corruption with its location.
func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("resultcache: corrupt entry at byte %d: %v", e.Offset, e.Cause)
	}
	return fmt.Sprintf("resultcache: corrupt entry %s at byte %d: %v", e.Path, e.Offset, e.Cause)
}

// Unwrap exposes the cause so errors.Is(err, io.ErrUnexpectedEOF)
// keeps working for truncation checks.
func (e *CorruptError) Unwrap() error { return e.Cause }

// corrupt builds a *CorruptError.
func corrupt(off int64, cause error) error { return &CorruptError{Offset: off, Cause: cause} }

// Entry is one cached measurement: the key it answers and the results
// it carries (one sim.MeasureResult per requested configuration;
// today the serving layer stores exactly one per entry).
type Entry struct {
	Key     Key
	Results []sim.MeasureResult
}

// entryJSON is the payload schema. Field names are spelled out so the
// on-disk format is self-describing and survives struct renames.
type entryJSON struct {
	Workload string              `json:"workload"`
	Scale    string              `json:"scale"`
	ConfigFP string              `json:"config_fp"`
	Engine   string              `json:"engine"`
	Results  []sim.MeasureResult `json:"results"`
}

// EncodeEntry frames e for disk.
func EncodeEntry(e Entry) ([]byte, error) {
	payload, err := json.Marshal(entryJSON{
		Workload: e.Key.Workload,
		Scale:    e.Key.Scale,
		ConfigFP: e.Key.ConfigFP,
		Engine:   e.Key.Engine,
		Results:  e.Results,
	})
	if err != nil {
		return nil, fmt.Errorf("resultcache: encoding entry: %w", err)
	}
	if len(payload) > maxEntryPayload {
		return nil, fmt.Errorf("resultcache: entry payload %d bytes exceeds cap %d", len(payload), maxEntryPayload)
	}
	buf := make([]byte, entryHeaderLen+len(payload))
	copy(buf, entryMagic[:])
	buf[4] = entryVersion
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[9:13], crc32.Checksum(payload, crcTable))
	copy(buf[entryHeaderLen:], payload)
	return buf, nil
}

// DecodeEntry validates a framed entry and returns it. Every failure
// mode — truncation, bad magic/version, length out of range, CRC
// mismatch, malformed JSON, or an empty key — is a *CorruptError; no
// input can make it panic (see FuzzResultEntry).
func DecodeEntry(data []byte) (Entry, error) {
	if len(data) < entryHeaderLen {
		return Entry{}, corrupt(int64(len(data)), io.ErrUnexpectedEOF)
	}
	if [4]byte(data[:4]) != entryMagic {
		return Entry{}, corrupt(0, errors.New("bad magic (not a FVR1 result entry)"))
	}
	if data[4] != entryVersion {
		return Entry{}, corrupt(4, fmt.Errorf("unknown entry version %d", data[4]))
	}
	length := binary.LittleEndian.Uint32(data[5:9])
	if length > maxEntryPayload {
		return Entry{}, corrupt(5, fmt.Errorf("payload length %d exceeds cap %d", length, maxEntryPayload))
	}
	if int(length) != len(data)-entryHeaderLen {
		// Torn write or short read: the frame promises more (or less)
		// than the file holds.
		return Entry{}, corrupt(int64(len(data)), fmt.Errorf("payload length %d, have %d bytes: %w",
			length, len(data)-entryHeaderLen, io.ErrUnexpectedEOF))
	}
	payload := data[entryHeaderLen:]
	want := binary.LittleEndian.Uint32(data[9:13])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return Entry{}, corrupt(9, fmt.Errorf("crc32c mismatch: stored %#08x, computed %#08x", want, got))
	}
	var ej entryJSON
	if err := json.Unmarshal(payload, &ej); err != nil {
		return Entry{}, corrupt(entryHeaderLen, fmt.Errorf("payload JSON: %w", err))
	}
	if ej.Workload == "" || ej.ConfigFP == "" || ej.Engine == "" || len(ej.Results) == 0 {
		return Entry{}, corrupt(entryHeaderLen, errors.New("payload decodes to an incomplete entry"))
	}
	return Entry{
		Key:     Key{Workload: ej.Workload, Scale: ej.Scale, ConfigFP: ej.ConfigFP, Engine: ej.Engine},
		Results: ej.Results,
	}, nil
}
