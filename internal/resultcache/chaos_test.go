// Chaos detection matrix for the durable result cache: every
// filesystem fault class internal/faultinject can produce must be
// DETECTED (quarantined or degraded), COUNTED in the cache's stats,
// and must NEVER cause a corrupted entry to be served as a result.
// The injector is seeded, so a failing case reproduces exactly.
package resultcache_test

import (
	"reflect"
	"testing"
	"time"

	"fvcache/internal/faultinject"
	"fvcache/internal/resultcache"
)

// chaosOutcome is what a fault scenario must prove.
type chaosOutcome struct {
	// quarantined / degradations are the minimum counter values after
	// the scenario ran.
	quarantined  uint64
	degradations uint64
	// served reports whether the final Get may still hit (from an
	// unaffected tier). When it hits, the harness separately asserts
	// the payload is bit-identical to the original — a corrupted
	// result must never surface.
	served bool
}

// promoteThrough drives one entry through admission onto disk.
func promoteThrough(t *testing.T, c *resultcache.Cache, i int) {
	t.Helper()
	c.Put(testKey(i), testResults(i))
	c.Get(testKey(i))
	c.Get(testKey(i))
	if st := c.Stats(); st.Promotes == 0 && st.Degradations == 0 {
		t.Fatalf("setup: entry %d neither promoted nor degraded: %+v", i, st)
	}
}

func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		class faultinject.Class
		want  chaosOutcome
		run   func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache
	}{
		{
			// Torn write: the promotion write persists only a prefix.
			// A restart's recovery scan must quarantine the torn file.
			class: faultinject.FSTornWrite,
			want:  chaosOutcome{quarantined: 1, served: false},
			run: func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache {
				c, err := resultcache.Open(resultcache.Options{Dir: dir, FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				ffs.Arm(faultinject.FSTornWrite, 1)
				promoteThrough(t, c, 0)
				// "Crash" and restart over the same directory.
				c2, err := resultcache.Open(resultcache.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				return c2
			},
		},
		{
			// Bit flip on the read path: CRC32C must reject the entry
			// and quarantine it; the caller sees a miss.
			class: faultinject.FSBitFlip,
			want:  chaosOutcome{quarantined: 1, served: false},
			run: func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache {
				seed, err := resultcache.Open(resultcache.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				promoteThrough(t, seed, 0)
				c, err := resultcache.Open(resultcache.Options{Dir: dir, FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				ffs.Arm(faultinject.FSBitFlip, 1)
				return c
			},
		},
		{
			// Short read: the frame length check must reject the
			// truncated bytes and quarantine the entry.
			class: faultinject.FSShortRead,
			want:  chaosOutcome{quarantined: 1, served: false},
			run: func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache {
				seed, err := resultcache.Open(resultcache.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				promoteThrough(t, seed, 0)
				c, err := resultcache.Open(resultcache.Options{Dir: dir, FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				ffs.Arm(faultinject.FSShortRead, 1)
				return c
			},
		},
		{
			// ENOSPC: the promotion write fails; the disk tier must
			// degrade to memory-only immediately and the memory tier
			// must keep serving the (correct) result.
			class: faultinject.FSENOSPC,
			want:  chaosOutcome{degradations: 1, served: true},
			run: func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache {
				c, err := resultcache.Open(resultcache.Options{Dir: dir, FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				ffs.Arm(faultinject.FSENOSPC, 1)
				promoteThrough(t, c, 0)
				if !c.Degraded() {
					t.Error("ENOSPC did not degrade the disk tier")
				}
				if n := entryFiles(t, dir); len(n) != 0 {
					t.Errorf("entry landed on disk despite ENOSPC: %v", n)
				}
				return c
			},
		},
		{
			// Slow I/O: a disk read over the slow-op threshold counts
			// as a fault and trips degradation; the read itself still
			// returns valid (verified) bytes.
			class: faultinject.FSSlowIO,
			want:  chaosOutcome{degradations: 1, served: true},
			run: func(t *testing.T, dir string, in *faultinject.Injector, ffs *faultinject.FaultFS) *resultcache.Cache {
				seed, err := resultcache.Open(resultcache.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				promoteThrough(t, seed, 0)
				c, err := resultcache.Open(resultcache.Options{
					Dir: dir, FS: ffs, SlowOp: 5 * time.Millisecond, DegradeAfter: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				ffs.SlowDelay = 25 * time.Millisecond
				ffs.Arm(faultinject.FSSlowIO, 1)
				return c
			},
		},
	}

	for _, tc := range cases {
		t.Run(string(tc.class), func(t *testing.T) {
			in := faultinject.New(42)
			ffs := in.WrapFS(resultcache.OSFS)
			c := tc.run(t, t.TempDir(), in, ffs)

			got, ok := c.Get(testKey(0))
			if ok != tc.want.served {
				t.Errorf("final get served=%v, want %v", ok, tc.want.served)
			}
			if ok && !reflect.DeepEqual(got, testResults(0)) {
				t.Errorf("CORRUPTED RESULT SERVED: got %+v, want %+v", got, testResults(0))
			}
			st := c.Stats()
			if st.Quarantined < tc.want.quarantined {
				t.Errorf("quarantined = %d, want >= %d", st.Quarantined, tc.want.quarantined)
			}
			if st.Degradations < tc.want.degradations {
				t.Errorf("degradations = %d, want >= %d", st.Degradations, tc.want.degradations)
			}
			if len(in.Faults()) == 0 {
				t.Fatalf("scenario injected no fault; detection proves nothing")
			}
			t.Logf("injected: %v; stats: %+v", in.Faults(), st)
		})
	}
}

// TestChaosSlowIOServesValidResult pins the slow-I/O contract in
// isolation: degradation is a performance response, and the slow read
// that triggered it still delivers the validated entry.
func TestChaosSlowIOServesValidResult(t *testing.T) {
	dir := t.TempDir()
	seed, err := resultcache.Open(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	promoteThrough(t, seed, 0)

	in := faultinject.New(7)
	ffs := in.WrapFS(resultcache.OSFS)
	ffs.SlowDelay = 25 * time.Millisecond
	c, err := resultcache.Open(resultcache.Options{
		Dir: dir, FS: ffs, SlowOp: 5 * time.Millisecond, DegradeAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ffs.Arm(faultinject.FSSlowIO, 1)
	got, ok := c.Get(testKey(0))
	if !ok || !reflect.DeepEqual(got, testResults(0)) {
		t.Fatalf("slow read did not deliver the valid entry: ok=%v", ok)
	}
	st := c.Stats()
	if st.SlowOps != 1 || st.Degradations != 1 || !st.Degraded {
		t.Fatalf("slow op not detected/degraded: %+v", st)
	}
}
