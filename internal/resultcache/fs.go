package resultcache

import (
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the disk tier runs on. Production uses
// OSFS; internal/faultinject wraps an FS to inject torn writes, bit
// flips, short reads, ENOSPC and slow I/O for the chaos detection
// matrix. All paths are absolute (the cache joins its root itself).
type FS interface {
	// ReadFile returns the named file's contents.
	ReadFile(name string) ([]byte, error)
	// WriteFileAtomic durably writes data to name: temp file in the
	// same directory, fsync, rename over name. After it returns nil
	// the file holds either the complete new contents or (on a crash
	// mid-call) the previous state — never a visible prefix.
	WriteFileAtomic(name string, data []byte) error
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically moves a file (used to quarantine corrupt
	// entries into the corrupt/ subdirectory).
	Rename(oldname, newname string) error
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string) error
	// ReadDir lists a directory.
	ReadDir(dir string) ([]fs.DirEntry, error)
}

// OSFS is the real-filesystem FS.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error      { return os.Rename(oldname, newname) }
func (osFS) MkdirAll(dir string) error                 { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// tmpSuffix marks in-flight atomic writes. The recovery scan treats a
// leftover *.tmp as evidence of a crash mid-write and quarantines it.
const tmpSuffix = ".tmp"

func (osFS) WriteFileAtomic(name string, data []byte) error {
	tmp := name + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, name); err != nil {
		os.Remove(tmp)
		return err
	}
	// Durability of the rename itself: fsync the directory. Best
	// effort — a failure here cannot tear the entry (the rename is
	// atomic), it only widens the crash window to "entry missing",
	// which the recovery scan tolerates by design.
	if d, err := os.Open(filepath.Dir(name)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
