package resultcache_test

import (
	"bytes"
	"errors"
	"testing"

	"fvcache/internal/resultcache"
)

// FuzzResultEntry hardens the on-disk entry codec the same way
// FuzzReader hardens the trace codec: no input may panic the decoder,
// every accepted input must re-encode to bytes that decode to the
// same entry, and every rejected input must carry a located
// *CorruptError.
func FuzzResultEntry(f *testing.F) {
	for i := 0; i < 3; i++ {
		valid, err := resultcache.EncodeEntry(resultcache.Entry{Key: testKey(i), Results: testResults(i)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		mutated := append([]byte(nil), valid...)
		mutated[len(mutated)-1-i] ^= 0x40
		f.Add(mutated)
	}
	f.Add([]byte{})
	f.Add([]byte("FVR1"))
	f.Add([]byte("FVT1 not a result entry"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := resultcache.DecodeEntry(data)
		if err != nil {
			var ce *resultcache.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *CorruptError: %v", err)
			}
			return
		}
		// Accepted input: the entry must survive a round trip so the
		// cache can re-persist what it read.
		re, rerr := resultcache.EncodeEntry(ent)
		if rerr != nil {
			t.Fatalf("accepted entry does not re-encode: %v", rerr)
		}
		ent2, derr := resultcache.DecodeEntry(re)
		if derr != nil {
			t.Fatalf("re-encoded entry does not decode: %v", derr)
		}
		if ent2.Key != ent.Key || len(ent2.Results) != len(ent.Results) {
			t.Fatalf("round trip drifted: %+v vs %+v", ent, ent2)
		}
		if !bytes.Equal(re, mustEncode(t, ent2)) {
			t.Fatal("encoding is not deterministic")
		}
	})
}

func mustEncode(t *testing.T, e resultcache.Entry) []byte {
	t.Helper()
	data, err := resultcache.EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
