package resultcache_test

import (
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"fvcache/internal/core"
	"fvcache/internal/resultcache"
	"fvcache/internal/sim"
)

func testKey(i int) resultcache.Key {
	return resultcache.Key{
		Workload: "goboard",
		Scale:    "test",
		ConfigFP: "m16384/32/1 f256/3b o0 vprofile" + string(rune('a'+i)),
		Engine:   "fvcache-engine/test",
	}
}

func testResults(i int) []sim.MeasureResult {
	return []sim.MeasureResult{{
		Stats: core.Stats{
			Loads: uint64(1000 + i), Stores: uint64(500 + i),
			MainHits: uint64(900 + i), FVCHits: uint64(50 + i), Misses: uint64(550 + i),
			LineFetches: uint64(550 + i), LineWritebacks: uint64(100 + i),
			TrafficWords: uint64(5200 + i),
		},
		FVCFreqFrac:  0.421875 + float64(i)/1024,
		FVCOccupancy: 0.75,
	}}
}

// TestEntryRoundTrip: encode -> decode must reproduce the entry
// bit-identically, floats included.
func TestEntryRoundTrip(t *testing.T) {
	e := resultcache.Entry{Key: testKey(0), Results: testResults(0)}
	data, err := resultcache.EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resultcache.DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

// TestEntryCorruptionDetected walks the frame's failure modes: every
// damaged variant must decode to a *CorruptError, never to data.
func TestEntryCorruptionDetected(t *testing.T) {
	valid, err := resultcache.EncodeEntry(resultcache.Entry{Key: testKey(0), Results: testResults(0)})
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"empty":          func(b []byte) []byte { return nil },
		"header only":    func(b []byte) []byte { return b[:8] },
		"truncated tail": func(b []byte) []byte { return b[:len(b)-3] },
		"bad magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":    func(b []byte) []byte { b[4] = 99; return b },
		"length too long": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:9], uint32(len(b)))
			return b
		},
		"length over cap": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:9], 1<<30)
			return b
		},
		"payload bit flip": func(b []byte) []byte { b[len(b)-5] ^= 0x10; return b },
		"crc field flip":   func(b []byte) []byte { b[9] ^= 0x01; return b },
		"appended bytes":   func(b []byte) []byte { return append(b, 0xde, 0xad) },
	}
	for name, f := range damage {
		t.Run(name, func(t *testing.T) {
			b := f(append([]byte(nil), valid...))
			_, err := resultcache.DecodeEntry(b)
			var ce *resultcache.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("damaged entry decoded without CorruptError: %v", err)
			}
			if ce.Error() == "" {
				t.Error("empty corruption message")
			}
		})
	}
	// Truncation specifically must stay recognizable as an unexpected
	// EOF, mirroring trace.CorruptError's contract.
	_, err = resultcache.DecodeEntry(valid[:len(valid)-1])
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation does not unwrap to io.ErrUnexpectedEOF: %v", err)
	}
}

// TestEntryIncompletePayload: a frame whose JSON validates but names
// no key must be rejected, not filed under an empty address.
func TestEntryIncompletePayload(t *testing.T) {
	e := resultcache.Entry{Key: resultcache.Key{}, Results: nil}
	if _, err := resultcache.EncodeEntry(e); err != nil {
		t.Fatal(err)
	}
	data, _ := resultcache.EncodeEntry(e)
	_, err := resultcache.DecodeEntry(data)
	var ce *resultcache.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("incomplete entry accepted: %v", err)
	}
}
