package trace

import (
	"fmt"
	"sort"
)

// Stats accumulates summary statistics over a stream of access events.
// It is a Sink; allocation events are ignored.
type Stats struct {
	Loads     uint64
	Stores    uint64
	MinAddr   uint32
	MaxAddr   uint32
	seenAny   bool
	uniqAddrs map[uint32]struct{}
	uniqVals  map[uint32]struct{}
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats {
	return &Stats{
		uniqAddrs: make(map[uint32]struct{}),
		uniqVals:  make(map[uint32]struct{}),
	}
}

// Emit records e if it is an access.
func (s *Stats) Emit(e Event) {
	if !e.Op.IsAccess() {
		return
	}
	if e.Op == Load {
		s.Loads++
	} else {
		s.Stores++
	}
	if !s.seenAny || e.Addr < s.MinAddr {
		s.MinAddr = e.Addr
	}
	if !s.seenAny || e.Addr > s.MaxAddr {
		s.MaxAddr = e.Addr
	}
	s.seenAny = true
	s.uniqAddrs[e.Addr] = struct{}{}
	s.uniqVals[e.Value] = struct{}{}
}

// Accesses returns loads + stores.
func (s *Stats) Accesses() uint64 { return s.Loads + s.Stores }

// UniqueAddrs returns the number of distinct word addresses touched.
func (s *Stats) UniqueAddrs() int { return len(s.uniqAddrs) }

// UniqueValues returns the number of distinct values moved.
func (s *Stats) UniqueValues() int { return len(s.uniqVals) }

// Footprint returns the touched footprint in bytes (unique words × 4).
func (s *Stats) Footprint() uint64 { return uint64(len(s.uniqAddrs)) * WordBytes }

// String summarizes the stats on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("accesses=%d (ld=%d st=%d) uniqAddrs=%d uniqVals=%d footprint=%dB",
		s.Accesses(), s.Loads, s.Stores, s.UniqueAddrs(), s.UniqueValues(), s.Footprint())
}

// ValueHistogram counts, for every distinct value, how many accesses
// carried it. It powers the "frequently accessed values" half of the
// paper's Section 2 study.
type ValueHistogram struct {
	counts map[uint32]uint64
	total  uint64
}

// NewValueHistogram returns an empty histogram.
func NewValueHistogram() *ValueHistogram {
	return &ValueHistogram{counts: make(map[uint32]uint64)}
}

// Emit records the value of an access event.
func (h *ValueHistogram) Emit(e Event) {
	if !e.Op.IsAccess() {
		return
	}
	h.counts[e.Value]++
	h.total++
}

// Total returns the number of accesses recorded.
func (h *ValueHistogram) Total() uint64 { return h.total }

// Count returns the access count for value v.
func (h *ValueHistogram) Count(v uint32) uint64 { return h.counts[v] }

// Distinct returns the number of distinct values seen.
func (h *ValueHistogram) Distinct() int { return len(h.counts) }

// ValueCount pairs a value with its frequency.
type ValueCount struct {
	Value uint32
	Count uint64
}

// TopK returns the k most frequent values in decreasing order of
// count, breaking ties by smaller value for determinism.
func (h *ValueHistogram) TopK(k int) []ValueCount {
	all := make([]ValueCount, 0, len(h.counts))
	for v, c := range h.counts {
		all = append(all, ValueCount{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// CoverageOfTopK returns the fraction of all accesses covered by the
// top k values, in [0,1]. Returns 0 when the histogram is empty.
func (h *ValueHistogram) CoverageOfTopK(k int) float64 {
	if h.total == 0 {
		return 0
	}
	var covered uint64
	for _, vc := range h.TopK(k) {
		covered += vc.Count
	}
	return float64(covered) / float64(h.total)
}
