package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"slices"

	"fvcache/internal/obs"
)

// Chunked columnar trace compression
//
// A ChunkedRecording re-encodes a Recording's access columns as
// fixed-size chunks of compressed column streams, paired with one
// architectural-memory checkpoint delta per chunk. It is the storage
// substrate of the chunk-parallel replay engine (sim.MeasureOptions
// .Parallelism):
//
//   - ops: one bit per access (store=1), 8x smaller than the op byte
//     column and branch-free to expand.
//   - addrs: first address as a plain varint, then zig-zag varint
//     deltas (addresses cluster, so deltas are short), as in the FVT1
//     stream codec.
//   - vals: frame-of-reference coding — the chunk's minimum value is
//     stored once and each value as the varint of its residual, so
//     chunks dominated by a few magnitudes (frequent value locality!)
//     compress to a byte or two per word.
//   - checkpoint delta: the chunk's store set — the final value of
//     every word stored within the chunk — as sorted word-index deltas
//     plus value varints. Applying deltas [0, c) to an empty memory
//     reproduces the exact architectural image at chunk c's entry
//     boundary, which is what lets a replay worker start mid-trace.
//
// Chunks decompress one at a time into a reused ChunkScratch, so a
// steady-state replay loop touches a bounded working set (compressed
// chunk + scratch) instead of streaming the full 9-bytes-per-event
// columns, and performs zero allocations. Decoding is hardened the
// same way the FVT1 Reader is: corrupt bytes yield a *CorruptError
// (offset relative to the failing chunk column, event index absolute),
// never a panic or a garbage out-of-range value.
//
// A ChunkedRecording is immutable after construction; concurrent
// replays may share one instance as long as each uses its own
// ChunkScratch.

// DefaultChunkAccesses is the chunk granularity used when a caller
// passes a non-positive chunk size: large enough that per-chunk
// overheads (probe-filter rebuilds, varint stream setup) vanish,
// small enough that per-core range partitioning stays even.
const DefaultChunkAccesses = 1 << 16

// maxWordUvarint caps checkpoint word indexes: a 32-bit byte address
// has a 30-bit word index. Larger is corruption.
const maxWordUvarint = 1<<30 - 1

// chunkRec is one compressed chunk plus its checkpoint delta.
type chunkRec struct {
	n       int    // accesses in this chunk
	stores  []byte // bit i set = access i is a store
	addrs   []byte // varint(addr[0]), then zig-zag varint deltas
	vals    []byte // varint residuals against valBase
	valBase uint32 // frame-of-reference minimum for vals

	deltaN     int    // words in the checkpoint delta
	deltaAddrs []byte // varint word-index deltas, sorted ascending
	deltaVals  []byte // varint word values
}

// ChunkedRecording is the compressed, checkpointed form of a
// Recording's access columns. Build one with CompressColumns or the
// cached Recording.Chunked.
type ChunkedRecording struct {
	chunkTarget int
	accesses    uint64
	starts      []uint64 // starts[i] = first access of chunk i; len = Chunks()+1
	chunks      []chunkRec
	bytes       int64 // total compressed bytes (columns + deltas + headers)
}

// ChunkScratch is the reusable decode buffer for DecodeChunk. After
// the first decode of a maximal chunk its capacity suffices for every
// chunk of the recording, so steady-state decoding allocates nothing.
// A scratch must not be shared across goroutines.
type ChunkScratch struct {
	ops   []Op
	addrs []uint32
	vals  []uint32
}

// CompressColumns builds a ChunkedRecording from packed access-only
// columns (the shape Recording.AccessColumns returns). chunkAccesses
// <= 0 selects DefaultChunkAccesses. It panics on mismatched column
// lengths or non-access ops — those are programming errors, not data.
func CompressColumns(ops []Op, addrs, vals []uint32, chunkAccesses int) *ChunkedRecording {
	if len(addrs) != len(ops) || len(vals) != len(ops) {
		panic("trace: CompressColumns column length mismatch")
	}
	if chunkAccesses <= 0 {
		chunkAccesses = DefaultChunkAccesses
	}
	c := &ChunkedRecording{
		chunkTarget: chunkAccesses,
		accesses:    uint64(len(ops)),
	}
	delta := make(map[uint32]uint32) // word byte addr -> last stored value
	var words []uint32
	for s := 0; s < len(ops); s += chunkAccesses {
		e := s + chunkAccesses
		if e > len(ops) {
			e = len(ops)
		}
		c.starts = append(c.starts, uint64(s))
		cr := chunkRec{n: e - s}
		cr.stores = make([]byte, (cr.n+7)/8)
		minV := vals[s]
		for i := s; i < e; i++ {
			if vals[i] < minV {
				minV = vals[i]
			}
		}
		cr.valBase = minV
		prev := uint32(0)
		for i := s; i < e; i++ {
			op := ops[i]
			if !op.IsAccess() {
				panic(fmt.Sprintf("trace: CompressColumns on non-access op %v", op))
			}
			if op == Store {
				cr.stores[(i-s)>>3] |= 1 << uint((i-s)&7)
				delta[addrs[i]] = vals[i]
			}
			if i == s {
				cr.addrs = binary.AppendUvarint(cr.addrs, uint64(addrs[i]))
			} else {
				cr.addrs = binary.AppendUvarint(cr.addrs, zigzag(int64(addrs[i])-int64(prev)))
			}
			prev = addrs[i]
			cr.vals = binary.AppendUvarint(cr.vals, uint64(vals[i]-minV))
		}
		words = words[:0]
		for a := range delta {
			words = append(words, a)
		}
		slices.Sort(words)
		cr.deltaN = len(words)
		prevW := uint32(0)
		for j, a := range words {
			wi := a >> 2
			if j == 0 {
				cr.deltaAddrs = binary.AppendUvarint(cr.deltaAddrs, uint64(wi))
			} else {
				cr.deltaAddrs = binary.AppendUvarint(cr.deltaAddrs, uint64(wi-prevW))
			}
			prevW = wi
			cr.deltaVals = binary.AppendUvarint(cr.deltaVals, uint64(delta[a]))
		}
		clear(delta)
		c.bytes += int64(len(cr.stores)+len(cr.addrs)+len(cr.vals)+
			len(cr.deltaAddrs)+len(cr.deltaVals)) + 4 // +4: valBase header
		c.chunks = append(c.chunks, cr)
	}
	c.starts = append(c.starts, uint64(len(ops)))
	return c
}

// Chunks returns the number of chunks.
func (c *ChunkedRecording) Chunks() int { return len(c.chunks) }

// Accesses returns the total number of encoded accesses.
func (c *ChunkedRecording) Accesses() uint64 { return c.accesses }

// ChunkTarget returns the chunk granularity the recording was built
// with (every chunk but the last holds exactly this many accesses).
func (c *ChunkedRecording) ChunkTarget() int { return c.chunkTarget }

// ChunkStart returns the global access index of chunk i's first
// access; ChunkStart(Chunks()) is the total access count, so chunk i
// covers [ChunkStart(i), ChunkStart(i+1)).
func (c *ChunkedRecording) ChunkStart(i int) uint64 { return c.starts[i] }

// ChunkLen returns the number of accesses in chunk i.
func (c *ChunkedRecording) ChunkLen(i int) int { return c.chunks[i].n }

// CompressedBytes returns the total compressed size: columns,
// checkpoint deltas and per-chunk headers.
func (c *ChunkedRecording) CompressedBytes() int64 { return c.bytes }

// BytesPerAccess returns the compressed bytes per access. The
// uncompressed columnar form costs 9 bytes per event.
func (c *ChunkedRecording) BytesPerAccess() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.bytes) / float64(c.accesses)
}

// corrupt builds the located error for chunk i and counts it; off is
// the byte offset within the failing column, event the global access
// index.
func (c *ChunkedRecording) corrupt(i, off int, event uint64, cause error) error {
	if errors.Is(cause, io.EOF) {
		cause = io.ErrUnexpectedEOF
	}
	obs.TraceCorrupt.Inc()
	return &CorruptError{Offset: int64(off), Event: event, Cause: cause}
}

// chunkUvarint decodes one capped uvarint from buf at pos, returning
// the value and the new position. Over-long encodings, truncation and
// out-of-range results are rejected (same caps as the FVT1 Reader).
func chunkUvarint(buf []byte, pos int, max uint64) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		if pos >= len(buf) {
			return 0, pos, io.ErrUnexpectedEOF
		}
		b := buf[pos]
		pos++
		if i == maxVarintBytes-1 && b >= 1<<(40-7*maxVarintBytes) {
			return 0, pos, fmt.Errorf("varint overflows %d bytes", maxVarintBytes)
		}
		if i >= maxVarintBytes {
			return 0, pos, fmt.Errorf("varint longer than %d bytes", maxVarintBytes)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if v > max {
		return 0, pos, fmt.Errorf("varint %d out of range (max %d)", v, max)
	}
	return v, pos, nil
}

// growOps returns a slice of length n, reusing s's capacity.
func growOps(s []Op, n int) []Op {
	if cap(s) < n {
		return make([]Op, n)
	}
	return s[:n]
}

// growU32 returns a slice of length n, reusing s's capacity.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// DecodeChunk expands chunk i into s and returns the decoded column
// slices (aliases of s's buffers, valid until the next decode into s).
// Corrupt chunk bytes yield a *CorruptError; the scratch contents are
// then undefined.
func (c *ChunkedRecording) DecodeChunk(i int, s *ChunkScratch) (ops []Op, addrs, vals []uint32, err error) {
	ch := &c.chunks[i]
	n := ch.n
	base := c.starts[i]
	if len(ch.stores) != (n+7)/8 {
		return nil, nil, nil, c.corrupt(i, 0, base, fmt.Errorf("store bitset is %d bytes, want %d", len(ch.stores), (n+7)/8))
	}
	s.ops = growOps(s.ops, n)
	s.addrs = growU32(s.addrs, n)
	s.vals = growU32(s.vals, n)

	pos := 0
	prev := uint32(0)
	for j := 0; j < n; j++ {
		if ch.stores[j>>3]&(1<<uint(j&7)) != 0 {
			s.ops[j] = Store
		} else {
			s.ops[j] = Load
		}
		var u uint64
		var uerr error
		if j == 0 {
			u, pos, uerr = chunkUvarint(ch.addrs, pos, maxValueUvarint)
			if uerr != nil {
				return nil, nil, nil, c.corrupt(i, pos, base+uint64(j), uerr)
			}
			prev = uint32(u)
		} else {
			u, pos, uerr = chunkUvarint(ch.addrs, pos, maxDeltaUvarint)
			if uerr != nil {
				return nil, nil, nil, c.corrupt(i, pos, base+uint64(j), uerr)
			}
			prev = uint32(int64(prev) + unzigzag(u))
		}
		s.addrs[j] = prev
	}
	if pos != len(ch.addrs) {
		return nil, nil, nil, c.corrupt(i, pos, base+uint64(n), fmt.Errorf("%d trailing bytes in addr column", len(ch.addrs)-pos))
	}

	pos = 0
	vb := uint64(ch.valBase)
	for j := 0; j < n; j++ {
		u, p, uerr := chunkUvarint(ch.vals, pos, maxValueUvarint)
		if uerr != nil {
			return nil, nil, nil, c.corrupt(i, p, base+uint64(j), uerr)
		}
		pos = p
		v := vb + u
		if v > maxValueUvarint {
			return nil, nil, nil, c.corrupt(i, pos, base+uint64(j), fmt.Errorf("value residual %d overflows base %d", u, vb))
		}
		s.vals[j] = uint32(v)
	}
	if pos != len(ch.vals) {
		return nil, nil, nil, c.corrupt(i, pos, base+uint64(n), fmt.Errorf("%d trailing bytes in value column", len(ch.vals)-pos))
	}
	return s.ops, s.addrs, s.vals, nil
}

// DecodeChunkAddrs expands only chunk i's address column into s and
// returns the decoded addresses (an alias of s's buffer, valid until
// the next decode into s). Consumers that are functions of the address
// stream alone — the reuse-distance analysis in internal/mrc — skip
// the store-bitset expansion and the value column entirely, roughly
// halving decode work per access. Corrupt chunk bytes yield a
// *CorruptError; the scratch contents are then undefined.
func (c *ChunkedRecording) DecodeChunkAddrs(i int, s *ChunkScratch) (addrs []uint32, err error) {
	ch := &c.chunks[i]
	n := ch.n
	base := c.starts[i]
	s.addrs = growU32(s.addrs, n)
	pos := 0
	prev := uint32(0)
	for j := 0; j < n; j++ {
		var u uint64
		var uerr error
		if j == 0 {
			u, pos, uerr = chunkUvarint(ch.addrs, pos, maxValueUvarint)
			if uerr != nil {
				return nil, c.corrupt(i, pos, base+uint64(j), uerr)
			}
			prev = uint32(u)
		} else {
			u, pos, uerr = chunkUvarint(ch.addrs, pos, maxDeltaUvarint)
			if uerr != nil {
				return nil, c.corrupt(i, pos, base+uint64(j), uerr)
			}
			prev = uint32(int64(prev) + unzigzag(u))
		}
		s.addrs[j] = prev
	}
	if pos != len(ch.addrs) {
		return nil, c.corrupt(i, pos, base+uint64(n), fmt.Errorf("%d trailing bytes in addr column", len(ch.addrs)-pos))
	}
	return s.addrs, nil
}

// ChunkStoreCount returns the number of store accesses in chunk i: a
// popcount over the packed store bitset, so callers that need only the
// load/store split (not the per-access op column) never expand it.
func (c *ChunkedRecording) ChunkStoreCount(i int) int {
	ch := &c.chunks[i]
	n := 0
	for _, b := range ch.stores {
		n += bits.OnesCount8(b)
	}
	return n
}

// VisitDelta decodes chunk i's checkpoint delta — the final value of
// every word stored within the chunk, in ascending address order —
// calling fn(wordAddr, value) for each. Applying the deltas of chunks
// [0, c) to an empty memsim.Memory reproduces the exact architectural
// image at chunk c's entry boundary. Corrupt delta bytes yield a
// *CorruptError.
func (c *ChunkedRecording) VisitDelta(i int, fn func(addr, val uint32)) error {
	ch := &c.chunks[i]
	base := c.starts[i]
	apos, vpos := 0, 0
	prev := uint32(0)
	for j := 0; j < ch.deltaN; j++ {
		u, p, err := chunkUvarint(ch.deltaAddrs, apos, maxWordUvarint)
		if err != nil {
			return c.corrupt(i, p, base, err)
		}
		apos = p
		var wi uint32
		if j == 0 {
			wi = uint32(u)
		} else {
			if u == 0 {
				return c.corrupt(i, apos, base, errors.New("non-monotonic checkpoint word index"))
			}
			wi = prev + uint32(u)
			if wi > maxWordUvarint {
				return c.corrupt(i, apos, base, fmt.Errorf("checkpoint word index %d out of range", wi))
			}
		}
		prev = wi
		v, p, err := chunkUvarint(ch.deltaVals, vpos, maxValueUvarint)
		if err != nil {
			return c.corrupt(i, p, base, err)
		}
		vpos = p
		fn(wi<<2, uint32(v))
	}
	if apos != len(ch.deltaAddrs) {
		return c.corrupt(i, apos, base, fmt.Errorf("%d trailing bytes in checkpoint addr column", len(ch.deltaAddrs)-apos))
	}
	if vpos != len(ch.deltaVals) {
		return c.corrupt(i, vpos, base, fmt.Errorf("%d trailing bytes in checkpoint value column", len(ch.deltaVals)-vpos))
	}
	return nil
}
