package trace_test

import (
	"bytes"
	"fmt"

	"fvcache/internal/trace"
)

// Traces round-trip through the compact binary codec.
func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	w.Emit(trace.Event{Op: trace.Store, Addr: 0x1000, Value: 42})
	w.Emit(trace.Event{Op: trace.Load, Addr: 0x1000, Value: 42})
	w.Flush()

	r, _ := trace.NewReader(&buf)
	for {
		e, err := r.Next()
		if err != nil {
			break
		}
		fmt.Println(e)
	}
	// Output:
	// st 0x1000 = 0x2a
	// ld 0x1000 = 0x2a
}

// ValueHistogram identifies a stream's frequently accessed values.
func ExampleValueHistogram() {
	h := trace.NewValueHistogram()
	for i := 0; i < 10; i++ {
		h.Emit(trace.Event{Op: trace.Load, Value: 0})
	}
	h.Emit(trace.Event{Op: trace.Load, Value: 7})
	fmt.Printf("top: %#x, coverage of top-1: %.0f%%\n",
		h.TopK(1)[0].Value, h.CoverageOfTopK(1)*100)
	// Output: top: 0x0, coverage of top-1: 91%
}
