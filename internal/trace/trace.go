// Package trace defines the memory-access event model shared by the
// workload substrate, the frequent-value profilers, and the cache
// simulator, together with a compact binary codec for storing traces
// on disk.
//
// The unit of access is the 32-bit word, matching the SPEC95-era
// machines studied in the paper. Addresses are byte addresses and are
// always word aligned.
package trace

import "fmt"

// WordBytes is the size of a machine word in bytes. The paper studies
// 32-bit programs; all values and addresses in this module are 32 bits.
const WordBytes = 4

// Op identifies the kind of a trace event.
type Op uint8

const (
	// Load is a read of one word from memory.
	Load Op = iota
	// Store is a write of one word to memory.
	Store
	// StackAlloc marks a stack frame of Size bytes becoming live at Addr.
	StackAlloc
	// StackFree marks the release of the stack frame at Addr.
	StackFree
	// HeapAlloc marks a heap block of Size bytes becoming live at Addr.
	HeapAlloc
	// HeapFree marks the release of the heap block at Addr.
	HeapFree
	numOps
)

// String returns a short human-readable mnemonic for the op.
func (o Op) String() string {
	switch o {
	case Load:
		return "ld"
	case Store:
		return "st"
	case StackAlloc:
		return "salloc"
	case StackFree:
		return "sfree"
	case HeapAlloc:
		return "halloc"
	case HeapFree:
		return "hfree"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsAccess reports whether the op is a data access (load or store) as
// opposed to an allocation lifetime marker.
func (o Op) IsAccess() bool { return o == Load || o == Store }

// Event is a single entry of a memory trace.
//
// For Load and Store, Addr is the word-aligned byte address and Value
// is the 32-bit value read or written. For allocation events, Addr is
// the base address of the region and Value holds its size in bytes.
type Event struct {
	Op    Op
	Addr  uint32
	Value uint32
}

// Size returns the size in bytes carried by an allocation event.
// It is only meaningful for StackAlloc and HeapAlloc.
func (e Event) Size() uint32 { return e.Value }

// String formats the event for diagnostics.
func (e Event) String() string {
	if e.Op.IsAccess() {
		return fmt.Sprintf("%s %#x = %#x", e.Op, e.Addr, e.Value)
	}
	return fmt.Sprintf("%s %#x size=%d", e.Op, e.Addr, e.Value)
}

// Sink consumes trace events. Implementations must be cheap: the
// workloads call Emit once per simulated load or store.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f(e).
func (f SinkFunc) Emit(e Event) { f(e) }

// Discard is a Sink that drops every event.
var Discard Sink = SinkFunc(func(Event) {})

// Tee fans events out to every sink in order. A nil entry is skipped.
type Tee []Sink

// Emit forwards e to each non-nil sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		if s != nil {
			s.Emit(e)
		}
	}
}

// MultiSink returns a sink forwarding to all of sinks, flattening the
// trivial cases: zero sinks become Discard and one sink is returned
// unchanged.
func MultiSink(sinks ...Sink) Sink {
	nonNil := make(Tee, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			nonNil = append(nonNil, s)
		}
	}
	switch len(nonNil) {
	case 0:
		return Discard
	case 1:
		return nonNil[0]
	}
	return nonNil
}

// AccessOnly wraps a sink so that only Load and Store events reach it.
func AccessOnly(s Sink) Sink {
	return SinkFunc(func(e Event) {
		if e.Op.IsAccess() {
			s.Emit(e)
		}
	})
}

// Counter is a Sink that tallies events by kind.
type Counter struct {
	Loads  uint64
	Stores uint64
	Allocs uint64
	Frees  uint64
}

// Emit records e in the counter.
func (c *Counter) Emit(e Event) {
	switch e.Op {
	case Load:
		c.Loads++
	case Store:
		c.Stores++
	case StackAlloc, HeapAlloc:
		c.Allocs++
	case StackFree, HeapFree:
		c.Frees++
	}
}

// Accesses returns the number of loads plus stores seen.
func (c *Counter) Accesses() uint64 { return c.Loads + c.Stores }

// Buffer is a Sink that records every event in memory. It is intended
// for tests and small traces; production paths stream events instead.
type Buffer struct {
	Events []Event
}

// Emit appends e.
func (b *Buffer) Emit(e Event) { b.Events = append(b.Events, e) }

// Replay sends every buffered event to dst in order.
func (b *Buffer) Replay(dst Sink) {
	for _, e := range b.Events {
		dst.Emit(e)
	}
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.Events) }
