package trace

import (
	"errors"
	"io"
	"sync"
)

// Recording is a packed in-memory trace: the full event stream of one
// workload execution, stored as flat columnar buffers (one slice per
// Event field) so a recorded run can be replayed many times without
// re-executing the workload. Nine bytes per event, contiguous, cache
// friendly.
//
// The record-once/replay-many sweep engine is built on this type: a
// configuration sweep records each (workload, scale) pair once and
// fans the replays across worker goroutines. A Recording is immutable
// after recording finishes, so concurrent replays of the same
// Recording are safe.
type Recording struct {
	ops      []Op
	addrs    []uint32
	vals     []uint32
	accesses uint64

	// acc is the lazily built access-only projection (see
	// AccessColumns). The sync.Once makes the first materialization
	// safe under concurrent replays of an immutable recording.
	acc accessCols

	// chunked caches compressed+checkpointed forms by chunk size (see
	// Chunked). Guarded by chunkMu: unlike acc there can be several
	// granularities alive at once.
	chunkMu sync.Mutex
	chunked map[int]*ChunkedRecording
}

// accessCols is the packed access-only projection of the columns.
type accessCols struct {
	once  sync.Once
	ops   []Op
	addrs []uint32
	vals  []uint32
}

// NewRecording returns an empty Recording ready to record into.
func NewRecording() *Recording { return &Recording{} }

// Emit implements Sink by appending e to the columnar buffers.
func (r *Recording) Emit(e Event) { r.Append(e.Op, e.Addr, e.Value) }

// Append records one event without constructing an Event value.
func (r *Recording) Append(op Op, addr, value uint32) {
	r.ops = append(r.ops, op)
	r.addrs = append(r.addrs, addr)
	r.vals = append(r.vals, value)
	if op.IsAccess() {
		r.accesses++
	}
}

// Len returns the number of recorded events.
func (r *Recording) Len() int { return len(r.ops) }

// Accesses returns the number of recorded loads and stores.
func (r *Recording) Accesses() uint64 { return r.accesses }

// At returns event i.
func (r *Recording) At(i int) Event {
	return Event{Op: r.ops[i], Addr: r.addrs[i], Value: r.vals[i]}
}

// Columns exposes the raw columnar buffers. Callers that drive a
// concrete consumer (the simulator's replay loop) iterate these
// directly, paying one direct method call per event instead of a
// Sink interface dispatch. The slices must not be mutated.
func (r *Recording) Columns() (ops []Op, addrs, values []uint32) {
	return r.ops, r.addrs, r.vals
}

// AccessColumns exposes packed columnar buffers holding only the
// access events (loads and stores), in stream order. A cache hierarchy
// is a function of the access subsequence alone, so batched replay
// loops iterate these instead of Columns: no per-event op filtering,
// and the i-th element is exactly the i-th access, which turns hook
// boundaries (warmup, sampling, audit counts) into plain slice
// offsets. The projection is materialized lazily on first use and
// shared thereafter; concurrent callers are safe because a Recording
// is immutable once recorded. The slices must not be mutated.
func (r *Recording) AccessColumns() (ops []Op, addrs, values []uint32) {
	r.acc.once.Do(func() {
		if r.accesses == uint64(len(r.ops)) {
			// Pure access stream: share the primary columns outright.
			r.acc.ops, r.acc.addrs, r.acc.vals = r.ops, r.addrs, r.vals
			return
		}
		ops := make([]Op, 0, r.accesses)
		addrs := make([]uint32, 0, r.accesses)
		vals := make([]uint32, 0, r.accesses)
		for i, op := range r.ops {
			if op.IsAccess() {
				ops = append(ops, op)
				addrs = append(addrs, r.addrs[i])
				vals = append(vals, r.vals[i])
			}
		}
		r.acc.ops, r.acc.addrs, r.acc.vals = ops, addrs, vals
	})
	return r.acc.ops, r.acc.addrs, r.acc.vals
}

// Chunked returns the compressed, checkpointed form of the access
// columns at the given chunk granularity (<= 0 selects
// DefaultChunkAccesses), building it on first use and caching it per
// granularity thereafter. Safe for concurrent callers on an immutable
// recording; the returned ChunkedRecording is itself immutable and
// shareable.
func (r *Recording) Chunked(chunkAccesses int) *ChunkedRecording {
	if chunkAccesses <= 0 {
		chunkAccesses = DefaultChunkAccesses
	}
	r.chunkMu.Lock()
	defer r.chunkMu.Unlock()
	if c, ok := r.chunked[chunkAccesses]; ok {
		return c
	}
	ops, addrs, vals := r.AccessColumns()
	c := CompressColumns(ops, addrs, vals, chunkAccesses)
	if r.chunked == nil {
		r.chunked = make(map[int]*ChunkedRecording)
	}
	r.chunked[chunkAccesses] = c
	return c
}

// Reset discards all recorded events, keeping the primary buffers for
// reuse. The caller must have exclusive ownership (no concurrent
// replays), as with recording itself.
func (r *Recording) Reset() {
	r.ops = r.ops[:0]
	r.addrs = r.addrs[:0]
	r.vals = r.vals[:0]
	r.accesses = 0
	r.acc = accessCols{}
	r.chunkMu.Lock()
	r.chunked = nil
	r.chunkMu.Unlock()
}

// Replay sends every recorded event to dst in order. For Sink
// consumers (profilers, histograms); the simulator uses Columns to
// avoid the per-event interface dispatch.
func (r *Recording) Replay(dst Sink) {
	for i := range r.ops {
		dst.Emit(Event{Op: r.ops[i], Addr: r.addrs[i], Value: r.vals[i]})
	}
}

// WriteTo spills the recording to w in the FVT1 binary trace format,
// reusing the varint delta codec. It returns the number of events
// written (not bytes, which the bufio layer hides). Use ReadRecording
// to load it back.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for i := range r.ops {
		tw.Emit(Event{Op: r.ops[i], Addr: r.addrs[i], Value: r.vals[i]})
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	return int64(tw.Count()), nil
}

// ReadRecording loads a complete FVT1 trace stream into a Recording.
// A corrupt stream yields the *CorruptError from the hardened Reader.
func ReadRecording(rd io.Reader) (*Recording, error) {
	tr, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	r := NewRecording()
	for {
		e, err := tr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return r, nil
			}
			return nil, err
		}
		r.Append(e.Op, e.Addr, e.Value)
	}
}
