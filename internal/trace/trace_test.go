package trace

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Load: "ld", Store: "st",
		StackAlloc: "salloc", StackFree: "sfree",
		HeapAlloc: "halloc", HeapFree: "hfree",
		Op(200): "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpIsAccess(t *testing.T) {
	if !Load.IsAccess() || !Store.IsAccess() {
		t.Error("Load/Store must be accesses")
	}
	for _, op := range []Op{StackAlloc, StackFree, HeapAlloc, HeapFree} {
		if op.IsAccess() {
			t.Errorf("%v must not be an access", op)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Op: Load, Addr: 0x100, Value: 0x2a}
	if got := e.String(); got != "ld 0x100 = 0x2a" {
		t.Errorf("access String() = %q", got)
	}
	a := Event{Op: HeapAlloc, Addr: 0x200, Value: 64}
	if got := a.String(); got != "halloc 0x200 size=64" {
		t.Errorf("alloc String() = %q", got)
	}
	if a.Size() != 64 {
		t.Errorf("Size() = %d, want 64", a.Size())
	}
}

func TestTeeAndMultiSink(t *testing.T) {
	var a, b Counter
	s := MultiSink(&a, nil, &b)
	s.Emit(Event{Op: Load})
	s.Emit(Event{Op: Store})
	if a.Loads != 1 || a.Stores != 1 || b.Loads != 1 || b.Stores != 1 {
		t.Errorf("tee did not fan out: a=%+v b=%+v", a, b)
	}
	var noDrop Counter
	MultiSink().Emit(Event{Op: Load}) // no sinks: must not panic
	if noDrop.Loads != 0 {
		t.Error("MultiSink() with no sinks must drop events")
	}
	if got := MultiSink(&a); got != Sink(&a) {
		t.Error("MultiSink with one sink should return it unchanged")
	}
}

func TestAccessOnly(t *testing.T) {
	var buf Buffer
	s := AccessOnly(&buf)
	s.Emit(Event{Op: Load, Addr: 4})
	s.Emit(Event{Op: HeapAlloc, Addr: 8, Value: 16})
	s.Emit(Event{Op: Store, Addr: 12})
	if buf.Len() != 2 {
		t.Fatalf("AccessOnly passed %d events, want 2", buf.Len())
	}
	if buf.Events[0].Op != Load || buf.Events[1].Op != Store {
		t.Errorf("wrong events passed: %v", buf.Events)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	for i := 0; i < 3; i++ {
		c.Emit(Event{Op: Load})
	}
	c.Emit(Event{Op: Store})
	c.Emit(Event{Op: StackAlloc})
	c.Emit(Event{Op: HeapAlloc})
	c.Emit(Event{Op: StackFree})
	c.Emit(Event{Op: HeapFree})
	if c.Loads != 3 || c.Stores != 1 || c.Allocs != 2 || c.Frees != 2 {
		t.Errorf("counter wrong: %+v", c)
	}
	if c.Accesses() != 4 {
		t.Errorf("Accesses() = %d, want 4", c.Accesses())
	}
}

func TestBufferReplay(t *testing.T) {
	var buf Buffer
	events := []Event{
		{Op: Load, Addr: 4, Value: 1},
		{Op: Store, Addr: 8, Value: 2},
	}
	for _, e := range events {
		buf.Emit(e)
	}
	var out Buffer
	buf.Replay(&out)
	if out.Len() != len(events) {
		t.Fatalf("replay delivered %d events, want %d", out.Len(), len(events))
	}
	for i := range events {
		if out.Events[i] != events[i] {
			t.Errorf("event %d = %v, want %v", i, out.Events[i], events[i])
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
