package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format
//
//	magic   [4]byte  "FVT1"
//	events  *        op-prefixed varint records
//
// Each record is the op byte followed by the zig-zag varint delta of
// the address from the previous event's address (addresses cluster, so
// deltas are small) and the varint of the value. The format is
// self-delimiting and streams without an index.

var magic = [4]byte{'F', 'V', 'T', '1'}

// ErrBadMagic is returned when a trace stream does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a FVT1 trace)")

// Writer encodes events to an underlying io.Writer. Call Flush before
// closing the destination.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint32
	count    uint64
	scratch  [binary.MaxVarintLen64]byte
}

// NewWriter writes the trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Emit encodes e. It implements Sink; encoding errors are deferred to
// Flush so that Emit can sit on the hot path.
func (w *Writer) Emit(e Event) {
	w.w.WriteByte(byte(e.Op))
	delta := int64(e.Addr) - int64(w.prevAddr)
	n := binary.PutUvarint(w.scratch[:], zigzag(delta))
	w.w.Write(w.scratch[:n])
	n = binary.PutUvarint(w.scratch[:], uint64(e.Value))
	w.w.Write(w.scratch[:n])
	w.prevAddr = e.Addr
	w.count++
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data and reports the first error that
// occurred during encoding.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a trace stream produced by Writer.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint32
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next event, or io.EOF at the clean end of stream.
func (r *Reader) Next() (Event, error) {
	op, err := r.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF at a record boundary is a clean end
	}
	if Op(op) >= numOps {
		return Event{}, fmt.Errorf("trace: invalid op byte %#x", op)
	}
	du, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, truncated(err)
	}
	val, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, truncated(err)
	}
	addr := uint32(int64(r.prevAddr) + unzigzag(du))
	r.prevAddr = addr
	return Event{Op: Op(op), Addr: addr, Value: uint32(val)}, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Drain replays the entire remaining stream into dst and returns the
// number of events delivered.
func (r *Reader) Drain(dst Sink) (uint64, error) {
	var n uint64
	for {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		dst.Emit(e)
		n++
	}
}
