package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fvcache/internal/obs"
)

// Binary trace format
//
//	magic   [4]byte  "FVT1"
//	events  *        op-prefixed varint records
//
// Each record is the op byte followed by the zig-zag varint delta of
// the address from the previous event's address (addresses cluster, so
// deltas are small) and the varint of the value. The format is
// self-delimiting and streams without an index.

var magic = [4]byte{'F', 'V', 'T', '1'}

// ErrBadMagic is returned when a trace stream does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a FVT1 trace)")

// Writer encodes events to an underlying io.Writer. Call Flush before
// closing the destination.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint32
	count    uint64
	scratch  [binary.MaxVarintLen64]byte
}

// NewWriter writes the trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Emit encodes e. It implements Sink; encoding errors are deferred to
// Flush so that Emit can sit on the hot path.
func (w *Writer) Emit(e Event) {
	w.w.WriteByte(byte(e.Op))
	delta := int64(e.Addr) - int64(w.prevAddr)
	n := binary.PutUvarint(w.scratch[:], zigzag(delta))
	w.w.Write(w.scratch[:n])
	n = binary.PutUvarint(w.scratch[:], uint64(e.Value))
	w.w.Write(w.scratch[:n])
	w.prevAddr = e.Addr
	w.count++
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data and reports the first error that
// occurred during encoding.
func (w *Writer) Flush() error { return w.w.Flush() }

// Varint caps. Values are 32 bits (5 varint bytes); address deltas are
// zig-zag encoded differences of two uint32s, so they fit 33 bits (5
// varint bytes). Anything longer is corruption, not data — capping here
// keeps a corrupt stream from being misread as enormous garbage values
// and rejects it deterministically instead.
const (
	maxVarintBytes  = 5
	maxValueUvarint = 1<<32 - 1 // values are uint32
	maxDeltaUvarint = 1<<33 - 1 // zig-zag of a delta in (-2^32, 2^32)
)

// CorruptError reports a malformed trace stream: a mid-record
// truncation, an invalid op byte, or an over-long/out-of-range varint.
// Offset is the byte offset of the failed record's first byte and
// Event the index of the record (both counted from the start of the
// stream, header included), so a corrupt trace file can be located
// with a hex editor instead of guessed at from a bare
// io.ErrUnexpectedEOF.
type CorruptError struct {
	// Offset is the byte offset at which the failed record starts.
	Offset int64
	// Event is the zero-based index of the failed record.
	Event uint64
	// Cause classifies the corruption (io.ErrUnexpectedEOF for
	// truncation, a descriptive error otherwise).
	Cause error
}

// Error formats the corruption with its location.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt stream at byte %d (event %d): %v", e.Offset, e.Event, e.Cause)
}

// Unwrap exposes the cause so errors.Is(err, io.ErrUnexpectedEOF)
// keeps working for truncation checks.
func (e *CorruptError) Unwrap() error { return e.Cause }

// Reader decodes a trace stream produced by Writer. It is hardened
// against malformed input: truncated or corrupted streams yield a
// *CorruptError locating the damage; no input can make it panic (see
// FuzzReader).
type Reader struct {
	r        *bufio.Reader
	prevAddr uint32
	off      int64  // bytes consumed so far, header included
	events   uint64 // records decoded so far
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br, off: int64(len(magic))}, nil
}

// Offset returns the number of bytes consumed so far (header included).
func (r *Reader) Offset() int64 { return r.off }

// Events returns the number of records decoded so far.
func (r *Reader) Events() uint64 { return r.events }

// corrupt wraps cause with the current record's location. Every
// malformed stream passes through here exactly once, so this is also
// where corrupt traces are counted.
func (r *Reader) corrupt(recordOff int64, cause error) error {
	if errors.Is(cause, io.EOF) {
		cause = io.ErrUnexpectedEOF
	}
	obs.TraceCorrupt.Inc()
	return &CorruptError{Offset: recordOff, Event: r.events, Cause: cause}
}

// readByte reads one byte, tracking the stream offset.
func (r *Reader) readByte() (byte, error) {
	b, err := r.r.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// readUvarint decodes a varint capped at maxVarintBytes bytes and max,
// rejecting over-long encodings and out-of-range results.
func (r *Reader) readUvarint(max uint64) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		if i == maxVarintBytes-1 && b >= 1<<(40-7*maxVarintBytes) {
			return 0, fmt.Errorf("varint overflows %d bytes", maxVarintBytes)
		}
		if i >= maxVarintBytes {
			return 0, fmt.Errorf("varint longer than %d bytes", maxVarintBytes)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if v > max {
		return 0, fmt.Errorf("varint %d out of range (max %d)", v, max)
	}
	return v, nil
}

// Next returns the next event, io.EOF at the clean end of stream, or a
// *CorruptError on malformed input.
func (r *Reader) Next() (Event, error) {
	recordOff := r.off
	op, err := r.readByte()
	if err != nil {
		return Event{}, err // io.EOF at a record boundary is a clean end
	}
	if Op(op) >= numOps {
		return Event{}, r.corrupt(recordOff, fmt.Errorf("invalid op byte %#x", op))
	}
	du, err := r.readUvarint(maxDeltaUvarint)
	if err != nil {
		return Event{}, r.corrupt(recordOff, err)
	}
	val, err := r.readUvarint(maxValueUvarint)
	if err != nil {
		return Event{}, r.corrupt(recordOff, err)
	}
	addr := uint32(int64(r.prevAddr) + unzigzag(du))
	r.prevAddr = addr
	r.events++
	return Event{Op: Op(op), Addr: addr, Value: uint32(val)}, nil
}

// Drain replays the entire remaining stream into dst and returns the
// number of events delivered.
func (r *Reader) Drain(dst Sink) (uint64, error) {
	var n uint64
	for {
		e, err := r.Next()
		if err != nil {
			// One add at the end (clean or not) keeps the decode loop
			// free of per-event telemetry.
			obs.TraceDrained.Add(n)
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		dst.Emit(e)
		n++
	}
}
