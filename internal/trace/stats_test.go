package trace

import (
	"strings"
	"testing"
)

func TestStatsBasic(t *testing.T) {
	s := NewStats()
	s.Emit(Event{Op: Load, Addr: 0x100, Value: 1})
	s.Emit(Event{Op: Store, Addr: 0x200, Value: 2})
	s.Emit(Event{Op: Load, Addr: 0x100, Value: 1})
	s.Emit(Event{Op: HeapAlloc, Addr: 0x300, Value: 64}) // ignored
	if s.Loads != 2 || s.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 2/1", s.Loads, s.Stores)
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses() = %d, want 3", s.Accesses())
	}
	if s.MinAddr != 0x100 || s.MaxAddr != 0x200 {
		t.Errorf("addr range [%#x,%#x], want [0x100,0x200]", s.MinAddr, s.MaxAddr)
	}
	if s.UniqueAddrs() != 2 {
		t.Errorf("UniqueAddrs() = %d, want 2", s.UniqueAddrs())
	}
	if s.UniqueValues() != 2 {
		t.Errorf("UniqueValues() = %d, want 2", s.UniqueValues())
	}
	if s.Footprint() != 8 {
		t.Errorf("Footprint() = %d, want 8", s.Footprint())
	}
	if !strings.Contains(s.String(), "accesses=3") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestStatsMinAddrZeroStart(t *testing.T) {
	s := NewStats()
	s.Emit(Event{Op: Load, Addr: 0x500, Value: 0})
	s.Emit(Event{Op: Load, Addr: 0x400, Value: 0})
	if s.MinAddr != 0x400 {
		t.Errorf("MinAddr = %#x, want 0x400", s.MinAddr)
	}
}

func TestValueHistogramTopK(t *testing.T) {
	h := NewValueHistogram()
	emit := func(v uint32, n int) {
		for i := 0; i < n; i++ {
			h.Emit(Event{Op: Load, Value: v})
		}
	}
	emit(0, 50)
	emit(1, 30)
	emit(0xffffffff, 20)
	emit(7, 10)
	h.Emit(Event{Op: HeapAlloc, Value: 999}) // ignored

	if h.Total() != 110 {
		t.Fatalf("Total() = %d, want 110", h.Total())
	}
	if h.Distinct() != 4 {
		t.Fatalf("Distinct() = %d, want 4", h.Distinct())
	}
	if h.Count(0) != 50 {
		t.Errorf("Count(0) = %d, want 50", h.Count(0))
	}
	top := h.TopK(3)
	want := []ValueCount{{0, 50}, {1, 30}, {0xffffffff, 20}}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopK[%d] = %v, want %v", i, top[i], want[i])
		}
	}
	// k greater than distinct values clips.
	if got := len(h.TopK(10)); got != 4 {
		t.Errorf("TopK(10) returned %d entries, want 4", got)
	}
}

func TestValueHistogramCoverage(t *testing.T) {
	h := NewValueHistogram()
	if h.CoverageOfTopK(1) != 0 {
		t.Error("empty histogram coverage should be 0")
	}
	for i := 0; i < 80; i++ {
		h.Emit(Event{Op: Store, Value: 0})
	}
	for i := 0; i < 20; i++ {
		h.Emit(Event{Op: Store, Value: uint32(i + 1)})
	}
	if got := h.CoverageOfTopK(1); got != 0.8 {
		t.Errorf("CoverageOfTopK(1) = %v, want 0.8", got)
	}
	if got := h.CoverageOfTopK(1000); got != 1.0 {
		t.Errorf("CoverageOfTopK(all) = %v, want 1.0", got)
	}
}

func TestValueHistogramTieBreak(t *testing.T) {
	h := NewValueHistogram()
	h.Emit(Event{Op: Load, Value: 9})
	h.Emit(Event{Op: Load, Value: 3})
	h.Emit(Event{Op: Load, Value: 5})
	top := h.TopK(3)
	if top[0].Value != 3 || top[1].Value != 5 || top[2].Value != 9 {
		t.Errorf("ties must break by smaller value: %v", top)
	}
}
