package trace

import (
	"errors"
	"testing"
)

// synthColumns builds deterministic access columns with clustered
// addresses and skewed (frequent) values, the shape real workloads
// produce.
func synthColumns(n int, seed uint64) (ops []Op, addrs, vals []uint32) {
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	ops = make([]Op, n)
	addrs = make([]uint32, n)
	vals = make([]uint32, n)
	base := uint32(0x1000)
	for i := 0; i < n; i++ {
		r := next()
		if r&3 == 0 {
			ops[i] = Store
		} else {
			ops[i] = Load
		}
		if r&0xf0 == 0 {
			base = uint32(r>>8) &^ 3 // occasional far jump
		}
		addrs[i] = (base + uint32(r>>32)%256*WordBytes) &^ 3
		switch (r >> 16) & 7 {
		case 0, 1, 2, 3:
			vals[i] = 0 // frequent value
		case 4:
			vals[i] = 0xffffffff
		default:
			vals[i] = uint32(r >> 24)
		}
	}
	return ops, addrs, vals
}

func TestChunkedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 5000} {
		for _, chunk := range []int{1, 3, 97, 1 << 20} {
			ops, addrs, vals := synthColumns(n, uint64(n*31+chunk))
			c := CompressColumns(ops, addrs, vals, chunk)
			if got := c.Accesses(); got != uint64(n) {
				t.Fatalf("n=%d chunk=%d: Accesses=%d", n, chunk, got)
			}
			wantChunks := (n + chunk - 1) / chunk
			if got := c.Chunks(); got != wantChunks {
				t.Fatalf("n=%d chunk=%d: Chunks=%d want %d", n, chunk, got, wantChunks)
			}
			if c.ChunkStart(c.Chunks()) != uint64(n) {
				t.Fatalf("n=%d chunk=%d: final ChunkStart=%d", n, chunk, c.ChunkStart(c.Chunks()))
			}
			var s ChunkScratch
			pos := 0
			for i := 0; i < c.Chunks(); i++ {
				if c.ChunkStart(i) != uint64(pos) {
					t.Fatalf("chunk %d: start=%d want %d", i, c.ChunkStart(i), pos)
				}
				dops, daddrs, dvals, err := c.DecodeChunk(i, &s)
				if err != nil {
					t.Fatalf("chunk %d: decode: %v", i, err)
				}
				if len(dops) != c.ChunkLen(i) {
					t.Fatalf("chunk %d: len=%d want %d", i, len(dops), c.ChunkLen(i))
				}
				for j := range dops {
					if dops[j] != ops[pos+j] || daddrs[j] != addrs[pos+j] || dvals[j] != vals[pos+j] {
						t.Fatalf("chunk %d event %d: got (%v,%#x,%#x) want (%v,%#x,%#x)",
							i, j, dops[j], daddrs[j], dvals[j], ops[pos+j], addrs[pos+j], vals[pos+j])
					}
				}
				pos += len(dops)
			}
			if pos != n {
				t.Fatalf("decoded %d accesses, want %d", pos, n)
			}
		}
	}
}

// TestChunkedDeltaReconstructsMemory checks the checkpoint contract:
// applying the deltas of chunks [0, c) to an empty image yields the
// last-stored value of every word before chunk c.
func TestChunkedDeltaReconstructsMemory(t *testing.T) {
	const n, chunk = 5000, 97
	ops, addrs, vals := synthColumns(n, 42)
	c := CompressColumns(ops, addrs, vals, chunk)

	want := make(map[uint32]uint32) // serial store image
	img := make(map[uint32]uint32)  // delta-reconstructed image
	pos := 0
	for i := 0; i < c.Chunks(); i++ {
		for a, v := range want {
			if got, ok := img[a]; !ok || got != v {
				t.Fatalf("before chunk %d: word %#x = %#x,%v want %#x", i, a, got, ok, v)
			}
		}
		if len(img) != len(want) {
			t.Fatalf("before chunk %d: image has %d words, want %d", i, len(img), len(want))
		}
		var prev int64 = -1
		if err := c.VisitDelta(i, func(a, v uint32) {
			if int64(a) <= prev {
				t.Fatalf("chunk %d: delta addresses not ascending (%#x after %#x)", i, a, prev)
			}
			prev = int64(a)
			img[a] = v
		}); err != nil {
			t.Fatalf("chunk %d: VisitDelta: %v", i, err)
		}
		for j := 0; j < c.ChunkLen(i); j++ {
			if ops[pos+j] == Store {
				want[addrs[pos+j]] = vals[pos+j]
			}
		}
		pos += c.ChunkLen(i)
	}
}

func TestChunkedBytesPerAccess(t *testing.T) {
	ops, addrs, vals := synthColumns(20000, 7)
	c := CompressColumns(ops, addrs, vals, 0)
	if c.ChunkTarget() != DefaultChunkAccesses {
		t.Fatalf("ChunkTarget=%d", c.ChunkTarget())
	}
	bpa := c.BytesPerAccess()
	if bpa <= 0 || bpa >= 9 {
		t.Fatalf("BytesPerAccess=%.2f, want in (0, 9)", bpa)
	}
	if c.CompressedBytes() <= 0 {
		t.Fatalf("CompressedBytes=%d", c.CompressedBytes())
	}
}

func TestChunkedDecodeZeroAllocsSteadyState(t *testing.T) {
	ops, addrs, vals := synthColumns(4096, 99)
	c := CompressColumns(ops, addrs, vals, 512)
	var s ChunkScratch
	for i := 0; i < c.Chunks(); i++ { // warm the scratch
		if _, _, _, err := c.DecodeChunk(i, &s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < c.Chunks(); i++ {
			if _, _, _, err := c.DecodeChunk(i, &s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeChunk allocates %.1f/run, want 0", allocs)
	}
}

// TestChunkedCorruptColumns flips bytes in every compressed column and
// requires decode to fail with *CorruptError — never panic, never
// return garbage silently for structurally invalid streams.
func TestChunkedCorruptColumns(t *testing.T) {
	ops, addrs, vals := synthColumns(1000, 5)
	mutate := func(name string, f func(c *ChunkedRecording)) {
		c := CompressColumns(ops, addrs, vals, 128)
		f(c)
		var s ChunkScratch
		for i := 0; i < c.Chunks(); i++ {
			if _, _, _, err := c.DecodeChunk(i, &s); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("%s: decode error is %T, want *CorruptError: %v", name, err, err)
				}
				return
			}
			if err := c.VisitDelta(i, func(a, v uint32) {}); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("%s: visit error is %T, want *CorruptError: %v", name, err, err)
				}
				return
			}
		}
		t.Fatalf("%s: corruption not detected", name)
	}
	mutate("truncated addrs", func(c *ChunkedRecording) {
		c.chunks[2].addrs = c.chunks[2].addrs[:len(c.chunks[2].addrs)-1]
	})
	mutate("trailing addr bytes", func(c *ChunkedRecording) {
		c.chunks[2].addrs = append(c.chunks[2].addrs, 0)
	})
	mutate("overlong varint", func(c *ChunkedRecording) {
		c.chunks[1].vals = append([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 1}, c.chunks[1].vals...)
	})
	mutate("truncated vals", func(c *ChunkedRecording) {
		c.chunks[1].vals = c.chunks[1].vals[:len(c.chunks[1].vals)/2]
	})
	mutate("short bitset", func(c *ChunkedRecording) {
		c.chunks[0].stores = c.chunks[0].stores[:len(c.chunks[0].stores)-1]
	})
	mutate("truncated delta addrs", func(c *ChunkedRecording) {
		for i := range c.chunks {
			if len(c.chunks[i].deltaAddrs) > 0 {
				c.chunks[i].deltaAddrs = c.chunks[i].deltaAddrs[:len(c.chunks[i].deltaAddrs)-1]
				return
			}
		}
	})
	mutate("zero delta gap", func(c *ChunkedRecording) {
		for i := range c.chunks {
			if c.chunks[i].deltaN >= 2 {
				// Zero the gap varint after the first index: non-monotonic.
				p := 0
				for c.chunks[i].deltaAddrs[p]&0x80 != 0 {
					p++
				}
				c.chunks[i].deltaAddrs[p+1] = 0
				return
			}
		}
		t.Skip("no multi-word delta chunk")
	})
}

func TestRecordingChunkedCache(t *testing.T) {
	r := NewRecording()
	ops, addrs, vals := synthColumns(3000, 11)
	for i := range ops {
		r.Append(ops[i], addrs[i], vals[i])
	}
	c1 := r.Chunked(500)
	c2 := r.Chunked(500)
	if c1 != c2 {
		t.Fatal("Chunked(500) not cached")
	}
	if c3 := r.Chunked(0); c3.ChunkTarget() != DefaultChunkAccesses {
		t.Fatalf("Chunked(0) target=%d", c3.ChunkTarget())
	}
	if r.Chunked(0) != r.Chunked(DefaultChunkAccesses) {
		t.Fatal("Chunked(0) and Chunked(default) not shared")
	}
	r.Reset()
	if len(r.chunked) != 0 {
		t.Fatal("Reset did not drop chunked cache")
	}
}

// FuzzColumnCodec drives compress→decode round trips and then decode
// over corrupted columns: round trips must be exact, and corruption
// must surface as *CorruptError, never a panic.
func FuzzColumnCodec(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint32(0))
	f.Add([]byte{1, 0, 0, 16, 0, 0, 0, 0, 42, 0, 0, 0, 20, 0, 255, 255, 255, 255}, uint16(1), uint32(3))
	ops, addrs, vals := synthColumns(64, 13)
	seedBytes := make([]byte, 0, 64*9)
	for i := range ops {
		seedBytes = append(seedBytes, byte(ops[i]),
			byte(addrs[i]), byte(addrs[i]>>8), byte(addrs[i]>>16), byte(addrs[i]>>24),
			byte(vals[i]), byte(vals[i]>>8), byte(vals[i]>>16), byte(vals[i]>>24))
	}
	f.Add(seedBytes, uint16(7), uint32(100))
	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint16, flip uint32) {
		n := len(data) / 9
		ops := make([]Op, n)
		addrs := make([]uint32, n)
		vals := make([]uint32, n)
		for i := 0; i < n; i++ {
			g := data[i*9 : i*9+9]
			if g[0]&1 == 1 {
				ops[i] = Store
			} else {
				ops[i] = Load
			}
			addrs[i] = (uint32(g[1]) | uint32(g[2])<<8 | uint32(g[3])<<16 | uint32(g[4])<<24) &^ 3
			vals[i] = uint32(g[5]) | uint32(g[6])<<8 | uint32(g[7])<<16 | uint32(g[8])<<24
		}
		chunk := int(chunkSize%1024) + 1
		c := CompressColumns(ops, addrs, vals, chunk)

		var s ChunkScratch
		pos := 0
		for i := 0; i < c.Chunks(); i++ {
			dops, daddrs, dvals, err := c.DecodeChunk(i, &s)
			if err != nil {
				t.Fatalf("round-trip decode chunk %d: %v", i, err)
			}
			for j := range dops {
				if dops[j] != ops[pos+j] || daddrs[j] != addrs[pos+j] || dvals[j] != vals[pos+j] {
					t.Fatalf("round-trip mismatch chunk %d event %d", i, j)
				}
			}
			if err := c.VisitDelta(i, func(a, v uint32) {}); err != nil {
				t.Fatalf("round-trip delta chunk %d: %v", i, err)
			}
			pos += len(dops)
		}
		if c.Chunks() == 0 {
			return
		}

		// Corrupt one byte of one column; decode must either still
		// succeed or fail with *CorruptError. Panics fail the fuzz run.
		ci := int(flip>>16) % c.Chunks()
		cols := [][]byte{
			c.chunks[ci].stores, c.chunks[ci].addrs, c.chunks[ci].vals,
			c.chunks[ci].deltaAddrs, c.chunks[ci].deltaVals,
		}
		col := cols[int(flip>>8)%len(cols)]
		if len(col) == 0 {
			return
		}
		col[int(flip)%len(col)] ^= 1 << ((flip >> 24) % 8)
		for i := 0; i < c.Chunks(); i++ {
			if _, _, _, err := c.DecodeChunk(i, &s); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("corrupt decode: %T not *CorruptError: %v", err, err)
				}
			}
			if err := c.VisitDelta(i, func(a, v uint32) {}); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("corrupt visit: %T not *CorruptError: %v", err, err)
				}
			}
		}
	})
}

// TestDecodeChunkAddrsMatchesFullDecode pins the address-only decode
// path to the full decode: same addresses, and the store popcount
// equals the expanded op column's store count, chunk by chunk.
func TestDecodeChunkAddrsMatchesFullDecode(t *testing.T) {
	ops, addrs, vals := synthColumns(10_000, 99)
	c := CompressColumns(ops, addrs, vals, 777) // prime: exercises a partial tail chunk
	var full, only ChunkScratch
	for i := 0; i < c.Chunks(); i++ {
		fops, faddrs, _, err := c.DecodeChunk(i, &full)
		if err != nil {
			t.Fatalf("chunk %d: full decode: %v", i, err)
		}
		oaddrs, err := c.DecodeChunkAddrs(i, &only)
		if err != nil {
			t.Fatalf("chunk %d: addr decode: %v", i, err)
		}
		if len(oaddrs) != len(faddrs) {
			t.Fatalf("chunk %d: addr-only decoded %d addrs, full %d", i, len(oaddrs), len(faddrs))
		}
		for j := range faddrs {
			if oaddrs[j] != faddrs[j] {
				t.Fatalf("chunk %d access %d: addr-only %#x, full %#x", i, j, oaddrs[j], faddrs[j])
			}
		}
		stores := 0
		for _, op := range fops {
			if op == Store {
				stores++
			}
		}
		if got := c.ChunkStoreCount(i); got != stores {
			t.Fatalf("chunk %d: ChunkStoreCount = %d, op column has %d stores", i, got, stores)
		}
	}
}

// TestDecodeChunkAddrsCorrupt verifies the addr-only decode rejects a
// truncated address column with a located *CorruptError, like the full
// decode does.
func TestDecodeChunkAddrsCorrupt(t *testing.T) {
	ops, addrs, vals := synthColumns(512, 7)
	c := CompressColumns(ops, addrs, vals, 256)
	c.chunks[0].addrs = c.chunks[0].addrs[:len(c.chunks[0].addrs)-1]
	var s ChunkScratch
	_, err := c.DecodeChunkAddrs(0, &s)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated addr column: got %v, want *CorruptError", err)
	}
}
