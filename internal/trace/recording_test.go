package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Op: StackAlloc, Addr: 0x7fff_e000, Value: 64},
		{Op: Store, Addr: 0x7fff_e000, Value: 42},
		{Op: Load, Addr: 0x7fff_e000, Value: 42},
		{Op: HeapAlloc, Addr: 0x1000_0000, Value: 32},
		{Op: Store, Addr: 0x1000_0004, Value: 0xffff_ffff},
		{Op: Load, Addr: 0x1000_0004, Value: 0xffff_ffff},
		{Op: HeapFree, Addr: 0x1000_0000, Value: 32},
		{Op: StackFree, Addr: 0x7fff_e000, Value: 64},
	}
}

func TestRecordingAppendAndReplay(t *testing.T) {
	rec := NewRecording()
	events := sampleEvents()
	for _, e := range events {
		rec.Emit(e)
	}
	if rec.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", rec.Len(), len(events))
	}
	if rec.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", rec.Accesses())
	}
	for i, want := range events {
		if got := rec.At(i); got != want {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
	var buf Buffer
	rec.Replay(&buf)
	if !reflect.DeepEqual(buf.Events, events) {
		t.Errorf("Replay delivered %v, want %v", buf.Events, events)
	}
}

func TestRecordingColumns(t *testing.T) {
	rec := NewRecording()
	for _, e := range sampleEvents() {
		rec.Emit(e)
	}
	ops, addrs, vals := rec.Columns()
	if len(ops) != rec.Len() || len(addrs) != rec.Len() || len(vals) != rec.Len() {
		t.Fatalf("column lengths %d/%d/%d, want %d", len(ops), len(addrs), len(vals), rec.Len())
	}
	for i := range ops {
		if got, want := (Event{Op: ops[i], Addr: addrs[i], Value: vals[i]}), rec.At(i); got != want {
			t.Errorf("columns[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestRecordingReset(t *testing.T) {
	rec := NewRecording()
	for _, e := range sampleEvents() {
		rec.Emit(e)
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Accesses() != 0 {
		t.Fatalf("after Reset: Len=%d Accesses=%d", rec.Len(), rec.Accesses())
	}
	rec.Append(Load, 4, 7)
	if rec.Len() != 1 || rec.At(0) != (Event{Op: Load, Addr: 4, Value: 7}) {
		t.Errorf("append after Reset gave %v", rec.At(0))
	}
}

func TestRecordingSpillRoundTrip(t *testing.T) {
	rec := NewRecording()
	for _, e := range sampleEvents() {
		rec.Emit(e)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(rec.Len()) {
		t.Errorf("WriteTo reported %d events, want %d", n, rec.Len())
	}
	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rec.Len() || got.Accesses() != rec.Accesses() {
		t.Fatalf("round trip: Len=%d Accesses=%d, want %d/%d",
			got.Len(), got.Accesses(), rec.Len(), rec.Accesses())
	}
	for i := 0; i < rec.Len(); i++ {
		if got.At(i) != rec.At(i) {
			t.Errorf("event %d: got %v, want %v", i, got.At(i), rec.At(i))
		}
	}
}

func TestReadRecordingCorrupt(t *testing.T) {
	rec := NewRecording()
	for _, e := range sampleEvents() {
		rec.Emit(e)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: the hardened reader must surface a
	// *CorruptError, not a partial silent success.
	raw := buf.Bytes()[:buf.Len()-2]
	_, err := ReadRecording(bytes.NewReader(raw))
	var ce *CorruptError
	if err == nil || !errors.As(err, &ce) {
		t.Fatalf("truncated stream: got err %v, want *CorruptError", err)
	}
	if _, err := ReadRecording(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic must error")
	}
}
