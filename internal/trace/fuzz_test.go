package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// encode serializes events into FVT1 bytes.
func encode(t testing.TB, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAll reads every event until EOF or error.
func decodeAll(data []byte) ([]Event, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// FuzzReader feeds arbitrary bytes to the hardened reader. The
// invariants: Next never panics on any input, a decodable stream
// round-trips exactly through Writer, and errors (other than a clean
// io.EOF) locate the damage via *CorruptError.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FVT1"))
	f.Add([]byte("FVT2junk"))
	valid := encode(f, []Event{
		{Op: Store, Addr: 0x7fff0000, Value: 0xffffffff},
		{Op: Load, Addr: 0x7fff0004, Value: 42},
		{Op: HeapAlloc, Addr: 0x10000000, Value: 64},
		{Op: StackFree, Addr: 0x7fff0000, Value: 4096},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                                                                  // mid-record truncation
	f.Add(append(valid[:4:4], 0xff))                                                             // invalid op byte
	f.Add(append(valid[:4:4], 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)) // over-long varint
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := decodeAll(data) // must not panic, whatever data holds
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) && !errors.Is(err, ErrBadMagic) && len(data) >= 4 && bytes.Equal(data[:4], magic[:]) {
				t.Fatalf("decode error is neither CorruptError nor bad magic: %v", err)
			}
			return
		}
		// Clean decode: the stream must round-trip bit-exactly through
		// the writer (the encoding is canonical).
		re := encode(t, events)
		got, err := decodeAll(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("round-trip lost events: %d -> %d", len(events), len(got))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("round-trip event %d: %v != %v", i, got[i], events[i])
			}
		}
	})
}

// TestReaderCorruptErrorLocation asserts the hardened reader reports
// the byte offset and event index of the damage instead of a bare
// unexpected-EOF.
func TestReaderCorruptErrorLocation(t *testing.T) {
	data := encode(t, []Event{
		{Op: Load, Addr: 0x1000, Value: 7},
		{Op: Store, Addr: 0x1004, Value: 8},
	})
	// Chop off the final byte: event 1 becomes mid-record truncated.
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("event 0 should decode: %v", err)
	}
	_, err = r.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation must unwrap to io.ErrUnexpectedEOF, got %v", err)
	}
	if ce.Event != 1 {
		t.Errorf("Event = %d, want 1", ce.Event)
	}
	if ce.Offset <= 4 || ce.Offset >= int64(len(data)) {
		t.Errorf("Offset = %d, want inside the stream body (len %d)", ce.Offset, len(data))
	}
}

func TestReaderOverlongVarint(t *testing.T) {
	data := append([]byte{}, magic[:]...)
	data = append(data, byte(Load))
	for i := 0; i < 9; i++ {
		data = append(data, 0x80)
	}
	data = append(data, 0x01)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("over-long varint: err = %v, want *CorruptError", err)
	}
}

func TestReaderValueOutOfRange(t *testing.T) {
	// A syntactically valid 5-byte varint encoding 2^33-1: legal as an
	// address delta, out of range as a 32-bit value.
	big := []byte{0xff, 0xff, 0xff, 0xff, 0x1f}
	data := append([]byte{}, magic[:]...)
	data = append(data, byte(Load), 0x00) // op + zero address delta
	data = append(data, big...)           // value varint: 2^33-1 > uint32
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("value varint beyond uint32 must be rejected")
	}
}

func TestReaderOffsetAndEventsAccounting(t *testing.T) {
	events := []Event{
		{Op: Load, Addr: 0x1000, Value: 1},
		{Op: Store, Addr: 0x1004, Value: 2},
		{Op: HeapFree, Addr: 0x2000, Value: 0},
	}
	data := encode(t, events)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Drain(Discard)
	if err != nil || n != 3 {
		t.Fatalf("Drain = %d, %v", n, err)
	}
	if r.Events() != 3 {
		t.Errorf("Events() = %d, want 3", r.Events())
	}
	if r.Offset() != int64(len(data)) {
		t.Errorf("Offset() = %d, want %d (whole stream consumed)", r.Offset(), len(data))
	}
}
