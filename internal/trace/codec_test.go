package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, events []Event) []Event {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range events {
		w.Emit(e)
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("Count() = %d, want %d", w.Count(), len(events))
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out Buffer
	n, err := r.Drain(&out)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != uint64(len(events)) {
		t.Fatalf("Drain returned %d events, want %d", n, len(events))
	}
	return out.Events
}

func TestCodecRoundTripBasic(t *testing.T) {
	events := []Event{
		{Op: StackAlloc, Addr: 0x7fff0000, Value: 4096},
		{Op: Store, Addr: 0x7fff0000, Value: 0},
		{Op: Load, Addr: 0x7fff0000, Value: 0},
		{Op: HeapAlloc, Addr: 0x10000000, Value: 64},
		{Op: Store, Addr: 0x10000000, Value: 0xffffffff},
		{Op: Load, Addr: 0x10000004, Value: 42},
		{Op: HeapFree, Addr: 0x10000000, Value: 64},
		{Op: StackFree, Addr: 0x7fff0000, Value: 4096},
	}
	got := roundTrip(t, events)
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], events[i])
		}
	}
}

func TestCodecRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Errorf("empty trace decoded to %d events", len(got))
	}
}

func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	events := make([]Event, 5000)
	for i := range events {
		events[i] = Event{
			Op:    Op(rng.Intn(int(numOps))),
			Addr:  uint32(rng.Uint64()) &^ 3,
			Value: uint32(rng.Uint64()),
		}
	}
	got := roundTrip(t, events)
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %v, want %v", i, got[i], events[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ops []uint8, addrs []uint32, vals []uint32) bool {
		n := len(ops)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(vals) < n {
			n = len(vals)
		}
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			events[i] = Event{Op: Op(ops[i] % uint8(numOps)), Addr: addrs[i], Value: vals[i]}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, e := range events {
			w.Emit(e)
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var out Buffer
		if _, err := r.Drain(&out); err != nil {
			return false
		}
		if len(out.Events) != n {
			return false
		}
		for i := range events {
			if out.Events[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("FV")))
	if err == nil {
		t.Error("expected error on short header")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Emit(Event{Op: Load, Addr: 0xdeadbeec, Value: 7})
	w.Flush()
	data := buf.Bytes()
	// Chop the record in half: header is 4 bytes, keep header + 1 byte.
	r, err := NewReader(bytes.NewReader(data[:5]))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("Next on truncated record: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReaderInvalidOp(t *testing.T) {
	data := append([]byte{}, magic[:]...)
	data = append(data, 0xff)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected error on invalid op byte")
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential word accesses should take only a few bytes per event
	// thanks to delta encoding.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Emit(Event{Op: Load, Addr: uint32(0x1000 + 4*i), Value: 0})
	}
	w.Flush()
	perEvent := float64(buf.Len()-4) / n
	if perEvent > 4 {
		t.Errorf("sequential trace uses %.1f bytes/event, want <= 4", perEvent)
	}
}
