package memsim

import (
	"fmt"

	"fvcache/internal/trace"
)

// Layout of the simulated 32-bit address space. The split mirrors a
// classic Unix process image: static data low, heap growing up, stack
// growing down from a high address.
const (
	// StaticBase is the base of the static data segment.
	StaticBase uint32 = 0x0040_0000
	// HeapBase is the base of the heap segment.
	HeapBase uint32 = 0x1000_0000
	// HeapLimit is the exclusive upper bound of the heap segment.
	HeapLimit uint32 = 0x7000_0000
	// StackTop is the initial (highest) stack address; frames grow down.
	StackTop uint32 = 0x7fff_f000
	// StackLimit is the lowest address the stack may reach.
	StackLimit uint32 = 0x7800_0000
)

// Env is the instrumented execution environment handed to workloads.
// Every Load/Store goes through the architectural memory and is
// reported to the trace sink; Alloc/Free and PushFrame/PopFrame report
// region lifetimes so profilers can track "interesting" locations.
//
// Workload-local scalars (loop counters, temporaries) are ordinary Go
// variables and do not touch Env — this models register-allocated
// variables, which the paper notes rarely reach memory.
type Env struct {
	Mem  *Memory
	sink trace.Sink

	heap   heapAllocator
	stack  uint32 // current stack pointer (grows down)
	frames []uint32

	staticNext uint32

	accesses uint64
}

// NewEnv returns an Env tracing into sink. A nil sink discards events.
func NewEnv(sink trace.Sink) *Env {
	if sink == nil {
		sink = trace.Discard
	}
	e := &Env{
		Mem:        NewMemory(),
		sink:       sink,
		stack:      StackTop,
		staticNext: StaticBase,
	}
	e.heap.init()
	return e
}

// Accesses returns the number of loads and stores performed so far.
func (e *Env) Accesses() uint64 { return e.accesses }

// Load reads the word at addr, emitting a Load event.
func (e *Env) Load(addr uint32) uint32 {
	v := e.Mem.LoadWord(addr)
	e.accesses++
	e.sink.Emit(trace.Event{Op: trace.Load, Addr: addr, Value: v})
	return v
}

// Store writes v to addr, emitting a Store event.
func (e *Env) Store(addr, v uint32) {
	e.Mem.StoreWord(addr, v)
	e.accesses++
	e.sink.Emit(trace.Event{Op: trace.Store, Addr: addr, Value: v})
}

// LoadF reads a float32 stored at addr (bit pattern in the word).
func (e *Env) LoadF(addr uint32) float32 { return fromBits(e.Load(addr)) }

// StoreF writes a float32 to addr as its bit pattern.
func (e *Env) StoreF(addr uint32, v float32) { e.Store(addr, toBits(v)) }

// Static reserves nWords of static data and returns its base address.
// Static data lives for the whole execution; no free event is emitted.
func (e *Env) Static(nWords int) uint32 {
	base := e.staticNext
	e.staticNext += uint32(nWords) * trace.WordBytes
	if e.staticNext > HeapBase {
		panic("memsim: static segment overflow")
	}
	return base
}

// PushFrame allocates a stack frame of nWords words and returns its
// base (lowest) address. Frames must be popped in LIFO order.
func (e *Env) PushFrame(nWords int) uint32 {
	size := uint32(nWords) * trace.WordBytes
	if e.stack-size < StackLimit {
		panic("memsim: stack overflow")
	}
	e.stack -= size
	e.frames = append(e.frames, e.stack)
	e.sink.Emit(trace.Event{Op: trace.StackAlloc, Addr: e.stack, Value: size})
	return e.stack
}

// PopFrame releases the most recent stack frame.
func (e *Env) PopFrame() {
	if len(e.frames) == 0 {
		panic("memsim: PopFrame with no frames")
	}
	base := e.frames[len(e.frames)-1]
	e.frames = e.frames[:len(e.frames)-1]
	var prevTop uint32
	if len(e.frames) == 0 {
		prevTop = StackTop
	} else {
		prevTop = e.frames[len(e.frames)-1]
	}
	size := prevTop - base
	e.sink.Emit(trace.Event{Op: trace.StackFree, Addr: base, Value: size})
	e.stack = prevTop
}

// FrameDepth returns the number of live stack frames.
func (e *Env) FrameDepth() int { return len(e.frames) }

// Alloc reserves nWords words on the heap and returns the base
// address. The block is zeroed (the Memory reads unbacked words as
// zero, and recycled blocks are scrubbed on free).
func (e *Env) Alloc(nWords int) uint32 {
	if nWords <= 0 {
		panic("memsim: Alloc of non-positive size")
	}
	addr, size := e.heap.alloc(uint32(nWords) * trace.WordBytes)
	e.sink.Emit(trace.Event{Op: trace.HeapAlloc, Addr: addr, Value: size})
	return addr
}

// Free releases a heap block previously returned by Alloc. The block's
// words are scrubbed to zero so a recycled block starts fresh, as a
// zeroing allocator would provide.
func (e *Env) Free(addr uint32) {
	size := e.heap.free(addr)
	for off := uint32(0); off < size; off += trace.WordBytes {
		e.Mem.StoreWord(addr+off, 0)
	}
	e.sink.Emit(trace.Event{Op: trace.HeapFree, Addr: addr, Value: size})
}

// HeapLive returns the number of live heap blocks.
func (e *Env) HeapLive() int { return len(e.heap.live) }

// heapAllocator is a size-class free-list allocator over the heap
// segment. Blocks are rounded up to a power-of-two size class (minimum
// 8 bytes) so freed blocks of a class are reused before the bump
// pointer advances — producing the address reuse patterns real
// allocators exhibit, which matters for the constant-address study.
type heapAllocator struct {
	next      uint32
	freeLists map[uint32][]uint32 // size class -> free base addresses
	live      map[uint32]uint32   // base -> rounded size
}

func (h *heapAllocator) init() {
	h.next = HeapBase
	h.freeLists = make(map[uint32][]uint32)
	h.live = make(map[uint32]uint32)
}

func roundClass(size uint32) uint32 {
	c := uint32(8)
	for c < size {
		c <<= 1
	}
	return c
}

func (h *heapAllocator) alloc(size uint32) (addr, rounded uint32) {
	rounded = roundClass(size)
	if lst := h.freeLists[rounded]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		h.freeLists[rounded] = lst[:len(lst)-1]
	} else {
		addr = h.next
		h.next += rounded
		if h.next > HeapLimit {
			panic("memsim: heap exhausted")
		}
	}
	h.live[addr] = rounded
	return addr, rounded
}

func (h *heapAllocator) free(addr uint32) uint32 {
	size, ok := h.live[addr]
	if !ok {
		panic(fmt.Sprintf("memsim: Free of non-live address %#x", addr))
	}
	delete(h.live, addr)
	h.freeLists[size] = append(h.freeLists[size], addr)
	return size
}
