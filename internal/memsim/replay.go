package memsim

import "fvcache/internal/trace"

// Replayer reconstructs the architectural memory image from a trace.
// Env applies every Store to memory before emitting its event, and
// scrubs a freed heap block to zero before emitting HeapFree (with the
// rounded block size as the event value) — so applying exactly those
// two event kinds reproduces, event for event, the memory state a live
// sink would have observed.
//
// When a replayed trace drives memory-observing analyses (occurrence
// samplers, spatial studies), place the Replayer first in the
// trace.Tee: downstream sinks then see memory after the event took
// effect, matching what they saw live.
//
// The cache hierarchy's own backing store is a different image: a
// core.System applies only Stores to its memory (live via Env, or the
// SystemSet driver under batched replay) and never the HeapFree
// scrubs, so hierarchy replays must not reconstruct memory through a
// Replayer — the scrubs would change eviction footprints and break
// bit-exact replay equivalence.
type Replayer struct {
	Mem *Memory
}

// NewReplayer returns a Replayer over a fresh memory.
func NewReplayer() *Replayer {
	return &Replayer{Mem: NewMemory()}
}

// Emit applies e to the reconstructed memory.
func (r *Replayer) Emit(e trace.Event) {
	switch e.Op {
	case trace.Store:
		r.Mem.StoreWord(e.Addr, e.Value)
	case trace.HeapFree:
		for off := uint32(0); off < e.Value; off += trace.WordBytes {
			r.Mem.StoreWord(e.Addr+off, 0)
		}
	}
}
