package memsim

// Checkpoint helpers for the chunk-parallel replay engine: a replay
// worker seeds its shared memory image from the store-set deltas of
// the chunks preceding its range (trace.ChunkedRecording.VisitDelta),
// so it needs an empty image it can populate and, in tests, a way to
// compare images for architectural equality.

// Reset drops every materialized page and translation memo entry,
// returning the memory to the all-zero state while keeping the
// instance (and its map) for reuse.
func (m *Memory) Reset() {
	clear(m.pages)
	m.tlb = [tlbSize]tlbEntry{}
}

// Clone returns an independent deep copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pid, p := range m.pages {
		cp := new(page)
		*cp = *p
		c.pages[pid] = cp
	}
	return c
}

// EqualContent reports whether the two images hold the same
// architectural content. A page missing on one side equals an all-zero
// page on the other: unbacked addresses read as zero, so a store of
// zero to a fresh page materializes a page without changing content.
func (m *Memory) EqualContent(o *Memory) bool {
	var zero page
	for pid, p := range m.pages {
		q := o.pages[pid]
		if q == nil {
			q = &zero
		}
		if *p != *q {
			return false
		}
	}
	for pid, q := range o.pages {
		if m.pages[pid] == nil && *q != zero {
			return false
		}
	}
	return true
}
