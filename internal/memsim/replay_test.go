package memsim

import (
	"testing"

	"fvcache/internal/trace"
)

// TestReplayerReconstructsMemory runs a small program against a live
// Env while recording its trace, then replays the recording into a
// Replayer and checks the reconstructed memory matches word for word —
// including a freed (scrubbed) heap block.
func TestReplayerReconstructsMemory(t *testing.T) {
	rec := trace.NewRecording()
	env := NewEnv(rec)

	static := env.Static(8)
	for i := uint32(0); i < 8; i++ {
		env.Store(static+4*i, i*i+1)
	}
	frame := env.PushFrame(4)
	env.Store(frame, 0xdead_beef)
	a := env.Alloc(16)
	for i := uint32(0); i < 16; i++ {
		env.Store(a+4*i, 0x100+i)
	}
	b := env.Alloc(4)
	env.Store(b, 7)
	env.Free(a) // scrubbed: must read zero after replay
	c := env.Alloc(16)
	env.Store(c+8, 0xabcd)
	env.PopFrame()

	r := NewReplayer()
	rec.Replay(r)

	probe := []uint32{static, static + 4, static + 28, frame, a, a + 4, a + 60, b, c, c + 8}
	for _, addr := range probe {
		if got, want := r.Mem.LoadWord(addr), env.Mem.LoadWord(addr); got != want {
			t.Errorf("replayed word at %#x = %#x, want %#x", addr, got, want)
		}
	}
}
