package memsim

import (
	"testing"
	"testing/quick"

	"fvcache/internal/trace"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if got := m.LoadWord(0x1234_5678 &^ 3); got != 0 {
		t.Errorf("unbacked load = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Errorf("loads must not materialize pages, got %d", m.PageCount())
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x1000, 0xdeadbeef)
	if got := m.LoadWord(0x1000); got != 0xdeadbeef {
		t.Errorf("LoadWord = %#x, want 0xdeadbeef", got)
	}
	// Neighboring word untouched.
	if got := m.LoadWord(0x1004); got != 0 {
		t.Errorf("neighbor = %#x, want 0", got)
	}
	if m.PageCount() != 1 {
		t.Errorf("PageCount = %d, want 1", m.PageCount())
	}
}

func TestMemoryStoreLoadProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		a := addr &^ 3
		m.StoreWord(a, v)
		return m.LoadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryPageBoundary(t *testing.T) {
	m := NewMemory()
	// Last word of one page and first word of the next.
	m.StoreWord(0x0fff_c000+4092, 1)
	m.StoreWord(0x0fff_c000+4096, 2)
	if m.LoadWord(0x0fff_c000+4092) != 1 || m.LoadWord(0x0fff_c000+4096) != 2 {
		t.Error("page boundary words interfere")
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestCheckAligned(t *testing.T) {
	CheckAligned(0x1000) // must not panic
	defer func() {
		if recover() == nil {
			t.Error("CheckAligned(0x1001) must panic")
		}
	}()
	CheckAligned(0x1001)
}

func TestEnvLoadStoreTraced(t *testing.T) {
	var buf trace.Buffer
	e := NewEnv(&buf)
	e.Store(0x0040_0000, 42)
	if got := e.Load(0x0040_0000); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	if e.Accesses() != 2 {
		t.Errorf("Accesses = %d, want 2", e.Accesses())
	}
	if buf.Len() != 2 {
		t.Fatalf("trace has %d events, want 2", buf.Len())
	}
	if buf.Events[0] != (trace.Event{Op: trace.Store, Addr: 0x0040_0000, Value: 42}) {
		t.Errorf("store event = %v", buf.Events[0])
	}
	if buf.Events[1] != (trace.Event{Op: trace.Load, Addr: 0x0040_0000, Value: 42}) {
		t.Errorf("load event = %v", buf.Events[1])
	}
}

func TestEnvNilSink(t *testing.T) {
	e := NewEnv(nil)
	e.Store(HeapBase, 7) // must not panic
	if e.Load(HeapBase) != 7 {
		t.Error("nil-sink env must still simulate memory")
	}
}

func TestEnvFloat(t *testing.T) {
	e := NewEnv(nil)
	a := e.Static(1)
	e.StoreF(a, 3.25)
	if got := e.LoadF(a); got != 3.25 {
		t.Errorf("LoadF = %v, want 3.25", got)
	}
	// Zero float is the zero word — important for FVL of fp codes.
	b := e.Static(1)
	e.StoreF(b, 0)
	if got := e.Load(b); got != 0 {
		t.Errorf("float 0 stored as %#x, want 0", got)
	}
}

func TestEnvStatic(t *testing.T) {
	e := NewEnv(nil)
	a := e.Static(10)
	b := e.Static(1)
	if a != StaticBase {
		t.Errorf("first static at %#x, want %#x", a, StaticBase)
	}
	if b != a+40 {
		t.Errorf("second static at %#x, want %#x", b, a+40)
	}
}

func TestEnvStackFrames(t *testing.T) {
	var buf trace.Buffer
	e := NewEnv(&buf)
	f1 := e.PushFrame(4)
	if f1 != StackTop-16 {
		t.Errorf("frame1 at %#x, want %#x", f1, StackTop-16)
	}
	f2 := e.PushFrame(2)
	if f2 != f1-8 {
		t.Errorf("frame2 at %#x, want %#x", f2, f1-8)
	}
	if e.FrameDepth() != 2 {
		t.Errorf("FrameDepth = %d, want 2", e.FrameDepth())
	}
	e.PopFrame()
	e.PopFrame()
	if e.FrameDepth() != 0 {
		t.Errorf("FrameDepth after pops = %d", e.FrameDepth())
	}
	// Reuse: next frame lands at the same address (stack address reuse
	// drives the paper's per-allocation constant-address accounting).
	f3 := e.PushFrame(4)
	if f3 != f1 {
		t.Errorf("reused frame at %#x, want %#x", f3, f1)
	}
	// Event kinds in order: alloc, alloc, free, free, alloc.
	wantOps := []trace.Op{trace.StackAlloc, trace.StackAlloc, trace.StackFree, trace.StackFree, trace.StackAlloc}
	if buf.Len() != len(wantOps) {
		t.Fatalf("trace has %d events, want %d", buf.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if buf.Events[i].Op != op {
			t.Errorf("event %d op = %v, want %v", i, buf.Events[i].Op, op)
		}
	}
}

func TestEnvPopEmptyPanics(t *testing.T) {
	e := NewEnv(nil)
	defer func() {
		if recover() == nil {
			t.Error("PopFrame on empty stack must panic")
		}
	}()
	e.PopFrame()
}

func TestEnvHeapAllocFree(t *testing.T) {
	var buf trace.Buffer
	e := NewEnv(&buf)
	a := e.Alloc(2) // 8 bytes, class 8
	b := e.Alloc(2)
	if a == b {
		t.Fatal("two live blocks share an address")
	}
	if e.HeapLive() != 2 {
		t.Errorf("HeapLive = %d, want 2", e.HeapLive())
	}
	e.Store(a, 0x1234)
	e.Free(a)
	if e.HeapLive() != 1 {
		t.Errorf("HeapLive after free = %d, want 1", e.HeapLive())
	}
	// Freed block is scrubbed and reused for a same-class alloc.
	c := e.Alloc(1)
	if c != a {
		t.Errorf("free-list reuse: got %#x, want %#x", c, a)
	}
	if got := e.Load(c); got != 0 {
		t.Errorf("recycled block not scrubbed: %#x", got)
	}
}

func TestEnvHeapSizeClasses(t *testing.T) {
	e := NewEnv(nil)
	a := e.Alloc(3) // 12 bytes -> class 16
	b := e.Alloc(4) // 16 bytes -> class 16
	e.Free(a)
	c := e.Alloc(4) // same class, reuses a
	if c != a {
		t.Errorf("same-class reuse: got %#x, want %#x", c, a)
	}
	_ = b
}

func TestEnvDoubleFreePanics(t *testing.T) {
	e := NewEnv(nil)
	a := e.Alloc(1)
	e.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	e.Free(a)
}

func TestEnvAllocZeroPanics(t *testing.T) {
	e := NewEnv(nil)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) must panic")
		}
	}()
	e.Alloc(0)
}

func TestRoundClass(t *testing.T) {
	cases := map[uint32]uint32{1: 8, 8: 8, 9: 16, 16: 16, 17: 32, 100: 128, 4096: 4096}
	for in, want := range cases {
		if got := roundClass(in); got != want {
			t.Errorf("roundClass(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHeapSegmentBounds(t *testing.T) {
	e := NewEnv(nil)
	a := e.Alloc(1)
	if a < HeapBase || a >= HeapLimit {
		t.Errorf("heap alloc %#x outside [%#x,%#x)", a, HeapBase, HeapLimit)
	}
	f := e.PushFrame(1)
	if f >= StackTop || f < StackLimit {
		t.Errorf("stack frame %#x outside [%#x,%#x)", f, StackLimit, StackTop)
	}
}

func TestEnvHeapAllocEventSizes(t *testing.T) {
	var buf trace.Buffer
	e := NewEnv(&buf)
	e.Alloc(3) // rounds to 16 bytes
	if buf.Events[0].Op != trace.HeapAlloc || buf.Events[0].Size() != 16 {
		t.Errorf("alloc event = %v, want HeapAlloc size=16", buf.Events[0])
	}
}
