// Package memsim provides the architectural memory substrate that the
// synthetic workloads execute against and that the cache simulator
// uses as its backing store.
//
// Memory is a sparse, paged store of 32-bit words. Env layers an
// instrumented load/store API with a stack and a heap allocator on top
// of it, emitting trace events for every access and every allocation
// lifetime change — this is the stand-in for the paper's traced
// execution of SPEC95 binaries.
package memsim

import "fmt"

const (
	// PageWords is the number of 32-bit words per page (4 KB pages).
	PageWords = 1024
	pageShift = 12 // log2(PageWords * 4)
)

type page [PageWords]uint32

// Memory is a sparse word-addressed memory. Unbacked addresses read as
// zero, matching demand-zeroed pages on the machines the paper studied.
type Memory struct {
	pages map[uint32]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func wordIndex(addr uint32) (pageID uint32, idx uint32) {
	return addr >> pageShift, (addr >> 2) & (PageWords - 1)
}

// LoadWord returns the word at the word-aligned byte address addr.
func (m *Memory) LoadWord(addr uint32) uint32 {
	pid, idx := wordIndex(addr)
	p := m.pages[pid]
	if p == nil {
		return 0
	}
	return p[idx]
}

// StoreWord writes v to the word-aligned byte address addr.
func (m *Memory) StoreWord(addr, v uint32) {
	pid, idx := wordIndex(addr)
	p := m.pages[pid]
	if p == nil {
		p = new(page)
		m.pages[pid] = p
	}
	p[idx] = v
}

// PageCount returns the number of pages that have been materialized.
func (m *Memory) PageCount() int { return len(m.pages) }

// CheckAligned panics if addr is not word aligned. Workload code is
// trusted but this catches substrate bugs early in tests.
func CheckAligned(addr uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("memsim: unaligned word address %#x", addr))
	}
}
