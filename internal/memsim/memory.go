// Package memsim provides the architectural memory substrate that the
// synthetic workloads execute against and that the cache simulator
// uses as its backing store.
//
// Memory is a sparse, paged store of 32-bit words. Env layers an
// instrumented load/store API with a stack and a heap allocator on top
// of it, emitting trace events for every access and every allocation
// lifetime change — this is the stand-in for the paper's traced
// execution of SPEC95 binaries.
package memsim

import "fmt"

const (
	// PageWords is the number of 32-bit words per page (4 KB pages).
	PageWords = 1024
	pageShift = 12 // log2(PageWords * 4)
)

type page [PageWords]uint32

// tlbSize is the number of entries in the page-translation memo
// (power of two, direct mapped by page id).
const tlbSize = 8

type tlbEntry struct {
	pid uint32
	p   *page // nil until a backed page is cached in this slot
}

// Memory is a sparse word-addressed memory. Unbacked addresses read as
// zero, matching demand-zeroed pages on the machines the paper studied.
//
// Accesses cluster heavily within a few pages at a time (the same
// locality the caches under study exploit), so Memory keeps a small
// direct-mapped page-translation memo and consults the page map only
// on a memo miss — which also keeps hot loads free of map-lookup
// overhead when an access pattern ping-pongs between pages. Memory is
// not safe for concurrent use; a simulated hierarchy either owns a
// private instance or, under batched replay, shares one image with the
// other members of a core.SystemSet — whose single-goroutine driver
// applies each store exactly once on behalf of all of them.
type Memory struct {
	pages map[uint32]*page
	tlb   [tlbSize]tlbEntry
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func wordIndex(addr uint32) (pageID uint32, idx uint32) {
	return addr >> pageShift, (addr >> 2) & (PageWords - 1)
}

// LoadWord returns the word at the word-aligned byte address addr.
// The memo-hit path is small enough to inline at call sites; memo
// misses take the outlined map path.
func (m *Memory) LoadWord(addr uint32) uint32 {
	pid, idx := wordIndex(addr)
	t := &m.tlb[pid&(tlbSize-1)]
	if t.p != nil && t.pid == pid {
		return t.p[idx]
	}
	return m.loadSlow(pid, idx)
}

//go:noinline
func (m *Memory) loadSlow(pid, idx uint32) uint32 {
	p := m.pages[pid]
	if p == nil {
		return 0
	}
	t := &m.tlb[pid&(tlbSize-1)]
	t.pid, t.p = pid, p
	return p[idx]
}

// StoreWord writes v to the word-aligned byte address addr.
func (m *Memory) StoreWord(addr, v uint32) {
	pid, idx := wordIndex(addr)
	t := &m.tlb[pid&(tlbSize-1)]
	if t.p != nil && t.pid == pid {
		t.p[idx] = v
		return
	}
	m.storeSlow(pid, idx, v)
}

//go:noinline
func (m *Memory) storeSlow(pid, idx, v uint32) {
	p := m.pages[pid]
	if p == nil {
		p = new(page)
		m.pages[pid] = p
	}
	t := &m.tlb[pid&(tlbSize-1)]
	t.pid, t.p = pid, p
	p[idx] = v
}

// LoadLine fills out with the consecutive words starting at the
// word-aligned byte address base, resolving the backing page once
// instead of per word. base must be aligned to len(out) words (cache
// lines are), so the run never crosses a page boundary.
func (m *Memory) LoadLine(base uint32, out []uint32) {
	pid, idx := wordIndex(base)
	t := &m.tlb[pid&(tlbSize-1)]
	p := t.p
	if p == nil || t.pid != pid {
		p = m.pages[pid]
		if p == nil {
			for i := range out {
				out[i] = 0
			}
			return
		}
		t.pid, t.p = pid, p
	}
	copy(out, p[idx:int(idx)+len(out)])
}

// PageCount returns the number of pages that have been materialized.
func (m *Memory) PageCount() int { return len(m.pages) }

// CheckAligned panics if addr is not word aligned. Workload code is
// trusted but this catches substrate bugs early in tests.
func CheckAligned(addr uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("memsim: unaligned word address %#x", addr))
	}
}
