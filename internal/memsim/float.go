package memsim

import "math"

// toBits converts a float32 to its IEEE-754 bit pattern for storage in
// a 32-bit memory word.
func toBits(f float32) uint32 { return math.Float32bits(f) }

// fromBits converts an IEEE-754 bit pattern back to a float32.
func fromBits(b uint32) float32 { return math.Float32frombits(b) }
