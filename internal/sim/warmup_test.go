package sim

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/workload"
)

func TestWarmupExcludesColdMisses(t *testing.T) {
	w := wl(t, "goboard")
	cfg := core.Config{Main: cache.Params{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 1}}
	full, err := Measure(w, workload.Test, cfg, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := Measure(w, workload.Test, cfg, MeasureOptions{WarmupAccesses: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if warmed.Stats.Accesses() != full.Stats.Accesses()-50_000 {
		t.Errorf("warmed accesses = %d, want %d",
			warmed.Stats.Accesses(), full.Stats.Accesses()-50_000)
	}
	if warmed.Stats.Misses >= full.Stats.Misses {
		t.Errorf("warmup must exclude some misses: %d >= %d",
			warmed.Stats.Misses, full.Stats.Misses)
	}
	// Warm-cache miss rate should not exceed the whole-run rate by
	// much (it excludes the cold start).
	if warmed.Stats.MissRate() > full.Stats.MissRate()*1.05 {
		t.Errorf("warmed miss rate %.4f above full %.4f",
			warmed.Stats.MissRate(), full.Stats.MissRate())
	}
}

func TestWarmupZeroIsWholeRun(t *testing.T) {
	w := wl(t, "lispint")
	cfg := core.Config{Main: cache.Params{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 1}}
	a, err := Measure(w, workload.Test, cfg, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(w, workload.Test, cfg, MeasureOptions{WarmupAccesses: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Error("WarmupAccesses=0 must equal the default")
	}
}

func TestStatsMinus(t *testing.T) {
	a := core.Stats{Loads: 10, Stores: 5, Misses: 3, TrafficWords: 100}
	b := core.Stats{Loads: 4, Stores: 2, Misses: 1, TrafficWords: 40}
	d := a.Minus(b)
	if d.Loads != 6 || d.Stores != 3 || d.Misses != 2 || d.TrafficWords != 60 {
		t.Errorf("Minus = %+v", d)
	}
	if d2 := a.Minus(core.Stats{}); d2 != a {
		t.Error("Minus zero must be identity")
	}
}
