package sim

import (
	"context"
	"fmt"
	"time"

	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
)

// Chunk-parallel replay engine (MeasureOptions.Parallelism).
//
// The recording's compressed chunk stream (trace.ChunkedRecording)
// carries one architectural-memory checkpoint delta per chunk, so the
// exact memory image at any chunk boundary is reconstructible without
// replaying the prefix. Cache state is not checkpointed — it depends
// on the entire access history — so workers recover it speculatively:
//
//  1. Plan: split the chunks into up to Parallelism contiguous ranges.
//  2. Speculate (parallel): each worker builds its own core.SystemSet,
//     seeds the shared memory image from the checkpoint deltas, warms
//     its caches by replaying a short overlap window before its range,
//     captures the canonical cache state at the range boundary
//     (core.SetState), replays its range with full hook parity, and
//     captures its exit state.
//  3. Splice (sequential): range 0 ran from a cold start and is exact
//     by construction. Each later range is accepted iff its captured
//     entry state equals the previous accepted range's exit state —
//     canonical snapshots erase absolute LRU clocks, so behavioral
//     equality is plain comparison. On a mismatch the range is re-run
//     inline, seeded from the true prior exit state, which is exact by
//     induction; the worst case degenerates to serial replay, never to
//     wrong results.
//  4. Merge: per-range stats partials sum with Stats.Plus; warmup
//     subtraction, FVC sample averages (re-summed in global boundary
//     order so float non-associativity cannot perturb them) and the
//     final audit reproduce MeasureRecordedBatch's semantics exactly.
//
// Epsilon mode (SeamEpsilon) skips steps 2's captures and 3's
// validation: the speculative results are accepted as-is, trading a
// documented, bounded miss-count error for zero validation cost.

// seamRange is one worker's chunk assignment: replay chunks
// [first, end), warming up over [warm, first).
type seamRange struct {
	warm, first, end int
}

// planRanges splits c chunks into up to w contiguous near-even ranges,
// each preceded by at most warmChunks of warm-up overlap. Range 0
// starts cold at chunk 0 (its prefix is empty, so it is always exact).
func planRanges(c, w, warmChunks int) []seamRange {
	if w > c {
		w = c
	}
	ranges := make([]seamRange, 0, w)
	base, rem := c/w, c%w
	first := 0
	for i := 0; i < w; i++ {
		n := base
		if i < rem {
			n++
		}
		warm := first - warmChunks
		if warm < 0 || i == 0 {
			warm = 0
		}
		if i == 0 {
			warm = first // range 0 has no warm-up: it starts exact
		}
		ranges = append(ranges, seamRange{warm: warm, first: first, end: first + n})
		first += n
	}
	return ranges
}

// rangeOutcome is one range's speculative replay result.
type rangeOutcome struct {
	set        *core.SystemSet
	entry      core.SetState // canonical state at range start (exact mode)
	exit       core.SetState // canonical state at range end (exact mode)
	partial    []core.Stats  // stats delta over the range, per system
	warmPart   []core.Stats  // stats delta to the warmup boundary, if inside
	warmHit    bool
	fracs      []float64 // k FVC frequent-fraction values per sample boundary
	occs       []float64 // k occupancy values per sample boundary
	samples    int
	startStats []core.Stats
}

// parallelEligible reports whether every configuration's cache state
// can be checkpointed (no online FVT identification).
func parallelEligible(cfgs []core.Config) bool {
	for _, c := range cfgs {
		if !c.Checkpointable() {
			return false
		}
	}
	return true
}

// adaptiveOverlap returns the default warm-up window in accesses: 8x
// the largest configured cache-state line count, enough that the LRU
// state a range inherits from its true prefix is overwhelmingly
// reconstructed by the overlap replay. L2 lines are weighted by a
// coarse inverse-miss-rate factor — the L2 only observes L1 misses, so
// refreshing its state takes far more accesses per line.
func adaptiveOverlap(cfgs []core.Config) uint64 {
	maxLines := 0
	for _, c := range cfgs {
		lines := c.Main.NumLines() + c.VictimEntries
		if c.FVC != nil {
			lines += c.FVC.Entries
		}
		if c.L2 != nil {
			lines += 16 * c.L2.NumLines()
		}
		if lines > maxLines {
			maxLines = lines
		}
	}
	return 8 * uint64(maxLines)
}

// buildSeededSet constructs a SystemSet for cc and seeds its shared
// memory image with the checkpoint deltas of chunks [0, uptoChunk):
// the exact architectural image at that chunk's entry boundary.
func buildSeededSet(cc []core.Config, ch *trace.ChunkedRecording, uptoChunk int) (*core.SystemSet, error) {
	set, err := core.NewSet(cc)
	if err != nil {
		return nil, err
	}
	mem := set.Memory()
	for i := 0; i < uptoChunk; i++ {
		if err := ch.VisitDelta(i, mem.StoreWord); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// replayChunkSpan replays chunks [first, end) through set with no hook
// boundaries: decode into the reused scratch, one ReplayColumns call
// per chunk. This is the steady-state worker loop — it performs zero
// allocations once the scratch is warm — used for warm-up windows and
// for hook-free range bodies.
func replayChunkSpan(ctx context.Context, set *core.SystemSet, ch *trace.ChunkedRecording, first, end int, scratch *trace.ChunkScratch) error {
	for ci := first; ci < end; ci++ {
		if err := ctxErr(ctx, "parallel replay"); err != nil {
			return err
		}
		ops, addrs, vals, err := ch.DecodeChunk(ci, scratch)
		if err != nil {
			return err
		}
		obs.ReplayChunks.Inc()
		set.ReplayColumns(ops, addrs, vals)
	}
	return nil
}

// runRange replays range r through set — which the caller has already
// positioned at r.first (memory image and cache state) — recording the
// per-system stats partial and every hook observation that falls in
// (rangeStart, rangeEnd]. Hook boundaries use global access indexes,
// so the observations are the ones the serial fused replay would make.
func runRange(ctx context.Context, set *core.SystemSet, ch *trace.ChunkedRecording, r seamRange, opt MeasureOptions, sampleHook bool, scratch *trace.ChunkScratch, out *rangeOutcome) error {
	systems := set.Systems()
	k := len(systems)
	out.set = set
	out.startStats = make([]core.Stats, k)
	for i, s := range systems {
		out.startStats[i] = s.Stats()
	}

	hooked := sampleHook || opt.AuditEvery > 0 ||
		(opt.WarmupAccesses > ch.ChunkStart(r.first) && opt.WarmupAccesses <= ch.ChunkStart(r.end))
	if !hooked {
		if err := replayChunkSpan(ctx, set, ch, r.first, r.end, scratch); err != nil {
			return err
		}
	} else {
		n := ch.ChunkStart(r.first)
		for ci := r.first; ci < r.end; ci++ {
			ops, addrs, vals, err := ch.DecodeChunk(ci, scratch)
			if err != nil {
				return err
			}
			obs.ReplayChunks.Inc()
			cstart := ch.ChunkStart(ci)
			cend := cstart + uint64(len(ops))
			for n < cend {
				if err := ctxErr(ctx, "parallel replay"); err != nil {
					return err
				}
				next := cend
				if opt.WarmupAccesses > n && opt.WarmupAccesses < next {
					next = opt.WarmupAccesses
				}
				if sampleHook {
					if b := n - n%opt.SampleEvery + opt.SampleEvery; b < next {
						next = b
					}
				}
				if opt.AuditEvery > 0 {
					if b := n - n%opt.AuditEvery + opt.AuditEvery; b < next {
						next = b
					}
				}
				set.ReplayColumns(ops[n-cstart:next-cstart], addrs[n-cstart:next-cstart], vals[n-cstart:next-cstart])
				n = next
				if opt.WarmupAccesses > 0 && n == opt.WarmupAccesses {
					out.warmPart = make([]core.Stats, k)
					for i, s := range systems {
						out.warmPart[i] = s.Stats().Minus(out.startStats[i])
					}
					out.warmHit = true
				}
				if sampleHook && n%opt.SampleEvery == 0 {
					for _, s := range systems {
						var frac, occ float64
						if f := s.FVC(); f != nil {
							frac = f.FrequentFraction()
							occ = float64(f.ValidEntries()) / float64(f.Params().Entries)
						}
						out.fracs = append(out.fracs, frac)
						out.occs = append(out.occs, occ)
					}
					out.samples++
				}
				if opt.AuditEvery > 0 && n%opt.AuditEvery == 0 {
					for i, s := range systems {
						if aerr := s.AuditInvariants(); aerr != nil {
							return fmt.Errorf("config %d: %w", i, aerr)
						}
					}
				}
			}
		}
	}

	out.partial = make([]core.Stats, k)
	for i, s := range systems {
		out.partial[i] = s.Stats().Minus(out.startStats[i])
	}
	return nil
}

// measureRecordedParallel is the chunk-parallel MeasureRecordedBatch.
// handled is false when the batch cannot run parallel (online-FVT
// configs, or an empty recording) and the caller should take the
// serial path.
func measureRecordedParallel(rec *trace.Recording, cfgs []core.Config, opt MeasureOptions) (out []MeasureResult, handled bool, err error) {
	if !parallelEligible(cfgs) {
		return nil, false, nil
	}
	ch := rec.Chunked(opt.ChunkAccesses)
	if ch.Chunks() == 0 {
		return nil, false, nil
	}
	start := time.Now()
	if opt.Label != "" {
		span := obs.Begin(fmt.Sprintf("parallel:%s[%d]", opt.Label, len(cfgs)))
		defer span.Done()
	}
	obs.ParallelReplays.Inc()

	cc := make([]core.Config, len(cfgs))
	copy(cc, cfgs)
	for i := range cc {
		cc[i].VerifyValues = opt.VerifyValues
	}
	// sampleHook mirrors the serial batch: armed only when some config
	// has an FVC to sample.
	anyFVC := false
	for _, c := range cc {
		if c.FVC != nil {
			anyFVC = true
		}
	}
	sampleHook := opt.SampleEvery > 0 && anyFVC

	overlap := opt.SeamOverlap
	if overlap == 0 && !opt.SeamEpsilon {
		overlap = adaptiveOverlap(cc)
	}
	warmChunks := int((overlap + uint64(ch.ChunkTarget()) - 1) / uint64(ch.ChunkTarget()))
	// A warm-up longer than the range it precedes costs more than the
	// re-run it is trying to avoid: cap it at half a range.
	if w := opt.Parallelism; w > 0 {
		if maxWarm := ch.Chunks() / w / 2; warmChunks > maxWarm && opt.SeamOverlap == 0 {
			warmChunks = maxWarm
		}
	}
	ranges := planRanges(ch.Chunks(), opt.Parallelism, warmChunks)
	exact := !opt.SeamEpsilon

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	// Speculative phase: every range replays concurrently. harness.Map
	// recovers worker panics (simulator asserts) into errors and
	// cancels siblings on first failure.
	outcomes, merr := harness.Map(ctx, len(ranges), harness.MapOptions{Workers: opt.Parallelism},
		func(ctx context.Context, ri int) (*rangeOutcome, error) {
			r := ranges[ri]
			obs.ParallelRanges.Inc()
			set, err := buildSeededSet(cc, ch, r.warm)
			if err != nil {
				return nil, err
			}
			var scratch trace.ChunkScratch
			if err := replayChunkSpan(ctx, set, ch, r.warm, r.first, &scratch); err != nil {
				return nil, err
			}
			oc := &rangeOutcome{}
			if exact && ri > 0 {
				set.CaptureState(&oc.entry)
			}
			if err := runRange(ctx, set, ch, r, opt, sampleHook, &scratch, oc); err != nil {
				return nil, err
			}
			if exact {
				set.CaptureState(&oc.exit)
			}
			return oc, nil
		})
	if merr != nil {
		return nil, true, fmt.Errorf("sim: parallel replay aborted: %w", merr)
	}

	// Splice phase: walk the seams in order, re-running any range whose
	// speculated entry state does not match its predecessor's exit.
	if exact {
		for ri := 1; ri < len(ranges); ri++ {
			if outcomes[ri].entry.Equal(&outcomes[ri-1].exit) {
				obs.SeamMatches.Inc()
				continue
			}
			obs.SeamReruns.Inc()
			r := ranges[ri]
			oc := &rangeOutcome{}
			rerun := func() error {
				set, err := buildSeededSet(cc, ch, r.first)
				if err != nil {
					return err
				}
				set.RestoreState(&outcomes[ri-1].exit)
				var scratch trace.ChunkScratch
				if err := runRange(ctx, set, ch, r, opt, sampleHook, &scratch, oc); err != nil {
					return err
				}
				oc.set.CaptureState(&oc.exit)
				return nil
			}
			if rerr := harness.Recover(rerun); rerr != nil {
				return nil, true, fmt.Errorf("sim: parallel replay aborted (seam re-run %d): %w", ri, rerr)
			}
			outcomes[ri] = oc
		}
	}

	// Merge phase: sum the partials in range order; the warmup
	// subtraction and sample averages reproduce the serial loop's
	// arithmetic exactly.
	k := len(cc)
	total := make([]core.Stats, k)
	warmAbs := make([]core.Stats, k)
	fracSum := make([]float64, k)
	occSum := make([]float64, k)
	samples := 0
	for _, oc := range outcomes {
		if oc.warmHit {
			for i := range warmAbs {
				warmAbs[i] = total[i].Plus(oc.warmPart[i])
			}
		}
		for i := range total {
			total[i] = total[i].Plus(oc.partial[i])
		}
		for s := 0; s < oc.samples; s++ {
			for i := 0; i < k; i++ {
				fracSum[i] += oc.fracs[s*k+i]
				occSum[i] += oc.occs[s*k+i]
			}
		}
		samples += oc.samples
	}
	if opt.AuditEvery > 0 {
		last := outcomes[len(outcomes)-1]
		for i, s := range last.set.Systems() {
			if aerr := s.AuditInvariants(); aerr != nil {
				return nil, true, fmt.Errorf("sim: final audit (config %d): %w", i, aerr)
			}
		}
	}

	out = make([]MeasureResult, k)
	for i := range out {
		out[i].Stats = total[i].Minus(warmAbs[i])
		if samples > 0 && cc[i].FVC != nil {
			out[i].FVCFreqFrac = fracSum[i] / float64(samples)
			out[i].FVCOccupancy = occSum[i] / float64(samples)
		}
	}
	if opt.Label != "" {
		if d := time.Since(start); d > 0 {
			obs.Default.Gauge(obs.Labeled("parallel_events_per_sec", "workload", opt.Label)).
				Set(float64(ch.Accesses()) * float64(k) / d.Seconds())
		}
	}
	return out, true, nil
}
