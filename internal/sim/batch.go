package sim

import (
	"fmt"
	"time"

	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// MeasureRecordedBatch is the fused sweep engine: it replays rec
// exactly once, driving one core.System per configuration in lockstep
// through a core.SystemSet, and returns per-configuration results in
// cfgs order. One column decode and one architectural memory image are
// shared by all K configurations, so a K-point sweep pays the trace
// traversal once instead of K times.
//
// Hook semantics match MeasureRecorded exactly — the columns are
// chunked at every warmup / sampling / audit boundary (in access
// counts, which the access-only column projection makes plain slice
// offsets), so snapshots, FVC samples and audits observe each system
// at the same access boundaries as a per-config replay, and the
// resulting Stats are bit-identical to MeasureRecorded for every
// configuration. Unlike the per-config path, a failure (audit
// violation or simulator panic) aborts the whole batch.
func MeasureRecordedBatch(rec *trace.Recording, cfgs []core.Config, opt MeasureOptions) ([]MeasureResult, error) {
	if err := ctxErr(opt.Ctx, "batch replay"); err != nil {
		return nil, err
	}
	if opt.Parallelism > 0 {
		out, handled, err := measureRecordedParallel(rec, cfgs, opt)
		if handled || err != nil {
			return out, err
		}
		// Not checkpointable (online FVT) or empty: serial fused path.
		obs.ParallelFallbacks.Inc()
	}
	start := time.Now()
	if opt.Label != "" {
		span := obs.Begin(fmt.Sprintf("batch:%s[%d]", opt.Label, len(cfgs)))
		defer span.Done()
	}
	cc := make([]core.Config, len(cfgs))
	copy(cc, cfgs)
	for i := range cc {
		cc[i].VerifyValues = opt.VerifyValues
	}
	set, err := core.NewSet(cc)
	if err != nil {
		return nil, err
	}
	systems := set.Systems()
	k := len(systems)
	anyFVC := false
	for _, s := range systems {
		if s.FVC() != nil {
			anyFVC = true
			break
		}
	}
	sampleHook := opt.SampleEvery > 0 && anyFVC

	warm := make([]core.Stats, k)
	fracSum := make([]float64, k)
	occSum := make([]float64, k)
	var samples int

	ops, addrs, vals := rec.AccessColumns()
	total := uint64(len(ops))

	replay := func() error {
		var n uint64
		for n < total {
			if err := ctxErr(opt.Ctx, "batch replay"); err != nil {
				return err
			}
			// Fuse-replay up to the nearest hook boundary; with no
			// hooks armed (and no context) this is one chunk to the end
			// of the stream. A cancellable replay additionally bounds
			// chunks at cancelCheckEvery accesses so the context check
			// above runs at a useful cadence.
			next := total
			if opt.Ctx != nil && n+cancelCheckEvery < next {
				next = n + cancelCheckEvery
			}
			if opt.WarmupAccesses > n && opt.WarmupAccesses < next {
				next = opt.WarmupAccesses
			}
			if sampleHook {
				if b := n - n%opt.SampleEvery + opt.SampleEvery; b < next {
					next = b
				}
			}
			if opt.AuditEvery > 0 {
				if b := n - n%opt.AuditEvery + opt.AuditEvery; b < next {
					next = b
				}
			}
			set.ReplayColumns(ops[n:next], addrs[n:next], vals[n:next])
			n = next
			if opt.WarmupAccesses > 0 && n == opt.WarmupAccesses {
				for i, s := range systems {
					warm[i] = s.Stats()
				}
			}
			if sampleHook && n%opt.SampleEvery == 0 {
				for i, s := range systems {
					if f := s.FVC(); f != nil {
						fracSum[i] += f.FrequentFraction()
						occSum[i] += float64(f.ValidEntries()) / float64(f.Params().Entries)
					}
				}
				samples++
			}
			if opt.AuditEvery > 0 && n%opt.AuditEvery == 0 {
				for i, s := range systems {
					if aerr := s.AuditInvariants(); aerr != nil {
						return fmt.Errorf("config %d: %w", i, aerr)
					}
				}
			}
		}
		return nil
	}
	// Same recover boundary as MeasureRecorded: simulator asserts
	// panic, and one corrupt replay must not take down a whole sweep.
	if rerr := harness.Recover(replay); rerr != nil {
		return nil, fmt.Errorf("sim: batch replay aborted: %w", rerr)
	}
	if opt.AuditEvery > 0 {
		for i, s := range systems {
			if aerr := s.AuditInvariants(); aerr != nil {
				return nil, fmt.Errorf("sim: final audit (config %d): %w", i, aerr)
			}
		}
	}

	out := make([]MeasureResult, k)
	for i, s := range systems {
		out[i].Stats = s.Stats().Minus(warm[i])
		if samples > 0 && s.FVC() != nil {
			out[i].FVCFreqFrac = fracSum[i] / float64(samples)
			out[i].FVCOccupancy = occSum[i] / float64(samples)
		}
	}
	if opt.Label != "" {
		if d := time.Since(start); d > 0 {
			// System-events per second: one fused pass drives k systems
			// through every access, so the batch engine's effective
			// throughput is total×k events over the pass wall-clock.
			obs.Default.Gauge(obs.Labeled("batch_events_per_sec", "workload", opt.Label)).
				Set(float64(total) * float64(k) / d.Seconds())
		}
	}
	return out, nil
}

// MeasureBatch is MeasureRecordedBatch driven from the shared
// recording cache: the sweep's one execution of (w, scale) fans the
// whole configuration batch through a single fused replay pass.
func MeasureBatch(w workload.Workload, scale workload.Scale, cfgs []core.Config, opt MeasureOptions) ([]MeasureResult, error) {
	rec, err := Recordings.Get(w, scale)
	if err != nil {
		return nil, err
	}
	return MeasureRecordedBatch(rec, cfgs, opt)
}

// MissAttributionSets is MissAttributionRecorded for several value
// sets at once: one replay pass classifies every miss against each
// set, instead of re-simulating the hierarchy per set.
func MissAttributionSets(rec *trace.Recording, cfg core.Config, sets [][]uint32) (total uint64, attributed []uint64, err error) {
	sys, err := core.New(cfg)
	if err != nil {
		return 0, nil, err
	}
	lookup := make([]map[uint32]struct{}, len(sets))
	for i, values := range sets {
		lookup[i] = make(map[uint32]struct{}, len(values))
		for _, v := range values {
			lookup[i][v] = struct{}{}
		}
	}
	attributed = make([]uint64, len(sets))
	run := func() error {
		ops, addrs, vals := rec.AccessColumns()
		for i, op := range ops {
			if sys.Access(op, addrs[i], vals[i]) == core.Miss {
				total++
				for si, set := range lookup {
					if _, ok := set[vals[i]]; ok {
						attributed[si]++
					}
				}
			}
		}
		return nil
	}
	if rerr := harness.Recover(run); rerr != nil {
		return 0, nil, fmt.Errorf("sim: miss attribution aborted: %w", rerr)
	}
	return total, attributed, nil
}
