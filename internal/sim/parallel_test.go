package sim

import (
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// parallelConfigs is batchConfigs minus the online-FVT shape (which
// the parallel engine rejects — covered by the fallback test).
func parallelConfigs(w workload.Workload) []core.Config {
	cfgs := batchConfigs(w)
	out := cfgs[:0:0]
	for _, c := range cfgs {
		if c.Checkpointable() {
			out = append(out, c)
		}
	}
	return out
}

// TestParallelReplayEquivalence is the tentpole contract: exact-mode
// chunk-parallel replay is bit-identical to the serial fused batch for
// every registered workload, across worker counts and chunk sizes
// (including a prime one, so seams land at awkward offsets).
func TestParallelReplayEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			cfgs := parallelConfigs(w)
			want, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, chunk := range []int{0, 50021} {
					got, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{
						Parallelism:   workers,
						ChunkAccesses: chunk,
					})
					if err != nil {
						t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("workers=%d chunk=%d config %d: parallel diverges\npar:    %+v\nserial: %+v",
								workers, chunk, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// synthRecording builds a small deterministic recording directly, so
// the extreme chunk-size sweep (chunk=1 means thousands of probe
// rebuilds) stays fast.
func synthRecording(n int, seed uint64) *trace.Recording {
	rec := trace.NewRecording()
	x := seed | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		op := trace.Load
		if x&3 == 0 {
			op = trace.Store
		}
		addr := uint32(x>>20) % 16384 &^ 3
		val := uint32(0)
		if x&7 == 7 {
			val = uint32(x >> 40)
		}
		rec.Append(op, addr, val)
	}
	return rec
}

// smallConfigs are hierarchies small enough that a 10k-access synthetic
// stream exercises evictions in every structure.
func smallConfigs() []core.Config {
	main := cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 1}
	return []core.Config{
		{Main: main},
		{Main: main, FVC: &fvc.Params{Entries: 64, LineBytes: 32, Bits: 3},
			FrequentValues: []uint32{0, 1, 0xffffffff, 7, 42, 9, 13}},
		{Main: main, VictimEntries: 4},
		{Main: cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2}},
		{Main: main, L2: &cache.Params{SizeBytes: 1 << 14, LineBytes: 32, Assoc: 4}},
	}
}

// TestParallelReplayChunkSizeSweep sweeps degenerate chunk sizes —
// single-access chunks, tiny chunks, a prime, and one chunk holding
// the whole stream — across worker counts, pinning bit-identity at
// every seam geometry.
func TestParallelReplayChunkSizeSweep(t *testing.T) {
	rec := synthRecording(10_000, 77)
	cfgs := smallConfigs()
	want, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 97, 1 << 20} {
		for _, workers := range []int{2, 5} {
			got, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{
				Parallelism:   workers,
				ChunkAccesses: chunk,
			})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("chunk=%d workers=%d config %d: diverges\npar:    %+v\nserial: %+v",
						chunk, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelReplayHookParity checks full MeasureResult equality —
// warmup exclusion, FVC sampling averages (float-exact), audits,
// value verification — between hooked parallel and serial replays.
func TestParallelReplayHookParity(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := parallelConfigs(w)
	base := MeasureOptions{
		WarmupAccesses: 10_000,
		SampleEvery:    5_000,
		AuditEvery:     50_000,
		VerifyValues:   true,
	}
	want, err := MeasureRecordedBatch(rec, cfgs, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		opt := base
		opt.Parallelism = workers
		opt.ChunkAccesses = 30_000 // misaligned with every hook period
		got, err := MeasureRecordedBatch(rec, cfgs, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d config %d: hooked parallel result diverges\npar:    %+v\nserial: %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelReplayOnlineFVTFallback: a batch containing an online-FVT
// config cannot be checkpointed and must fall back to the serial fused
// path — same results, no error.
func TestParallelReplayOnlineFVTFallback(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchConfigs(w) // includes the OnlineFVTEvery shape
	want, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("config %d: fallback result diverges", i)
		}
	}
}

// TestParallelReplayEpsilonBound documents epsilon mode's contract on
// a direct-mapped hierarchy: loads and stores are exact, and with zero
// overlap the absolute miss-count error is bounded by
// (workers-1) x NumSets — each worker can misjudge each of its cold
// sets' first probe at most once relative to the exact replay, and
// each such misjudgment shifts Misses/MainHits by at most one.
func TestParallelReplayEpsilonBound(t *testing.T) {
	rec := synthRecording(50_000, 123)
	main := cache.Params{SizeBytes: 1 << 12, LineBytes: 32, Assoc: 1}
	cfgs := []core.Config{{Main: main}}
	exact, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	eps, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{
		Parallelism:   workers,
		ChunkAccesses: 2048,
		SeamEpsilon:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, x := eps[0].Stats, exact[0].Stats
	if e.Loads != x.Loads || e.Stores != x.Stores {
		t.Fatalf("epsilon mode perturbed load/store counts: %+v vs %+v", e, x)
	}
	bound := uint64((workers - 1) * main.NumSets())
	diff := e.Misses - x.Misses
	if x.Misses > e.Misses {
		diff = x.Misses - e.Misses
	}
	if diff > bound {
		t.Fatalf("epsilon miss error %d exceeds bound %d (eps %d, exact %d)", diff, bound, e.Misses, x.Misses)
	}
	// With warm-up overlap the error should collapse to zero here: the
	// overlap replays far more accesses than the cache has sets.
	warm, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{
		Parallelism:   workers,
		ChunkAccesses: 2048,
		SeamEpsilon:   true,
		SeamOverlap:   8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Stats != x {
		t.Logf("note: epsilon+overlap still differs (allowed): %+v vs %+v", warm[0].Stats, x)
	}
}

// TestParallelSteadyReplayZeroAllocs pins the per-worker steady replay
// loop: decode-into-scratch plus fused ReplayColumns must not allocate
// once the scratch and the set's frames are warm.
func TestParallelSteadyReplayZeroAllocs(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	ch := rec.Chunked(0)
	main := cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}
	set, err := core.NewSet([]core.Config{
		{Main: main},
		{Main: main, FVC: &fvc.Params{Entries: 256, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: ProfileTopAccessed(w, workload.Test, 7)},
		{Main: main, VictimEntries: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var scratch trace.ChunkScratch
	if err := replayChunkSpan(nil, set, ch, 0, ch.Chunks(), &scratch); err != nil {
		t.Fatal(err) // warm pass: pages, frames and scratch exist now
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := replayChunkSpan(nil, set, ch, 0, ch.Chunks(), &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state parallel worker loop allocated %.0f times per pass, want 0", allocs)
	}
}

// TestPlanRanges sanity-checks the partition: contiguous cover, no
// empty ranges, warm-up clamped at zero and absent for range 0.
func TestPlanRanges(t *testing.T) {
	for _, tc := range []struct{ c, w, warm int }{
		{10, 4, 2}, {1, 8, 3}, {7, 7, 1}, {100, 3, 0}, {5, 1, 10},
	} {
		ranges := planRanges(tc.c, tc.w, tc.warm)
		if len(ranges) == 0 || len(ranges) > tc.w {
			t.Fatalf("%+v: %d ranges", tc, len(ranges))
		}
		next := 0
		for i, r := range ranges {
			if r.first != next || r.end <= r.first {
				t.Fatalf("%+v: bad range %d: %+v", tc, i, r)
			}
			if i == 0 && r.warm != r.first {
				t.Fatalf("%+v: range 0 has warm-up: %+v", tc, r)
			}
			if r.warm > r.first || r.warm < 0 {
				t.Fatalf("%+v: bad warm %d: %+v", tc, i, r)
			}
			next = r.end
		}
		if next != tc.c {
			t.Fatalf("%+v: ranges cover %d of %d chunks", tc, next, tc.c)
		}
	}
}
