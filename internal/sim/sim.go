// Package sim drives workloads through the cache hierarchy: a
// profiling pass identifies a workload's frequently accessed values
// (the paper's profile-based FVT selection), and a measurement pass
// replays the workload against a configured core.System. A small
// parallel runner fans independent configurations across goroutines
// for the experiment sweeps.
package sim

import (
	"context"
	"fmt"

	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/memsim"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// ProfileTopAccessed returns w's k most frequently accessed values at
// scale (the FVT a profile-directed compiler/loader would install).
// Results come from the singleflight Profiles cache, so a sweep that
// derives the same FVT for many configuration points scans the
// recording's histogram once; the cache itself replays the shared
// recording of w, so profiling adds no workload execution either.
// The returned slice is shared and must not be mutated.
func ProfileTopAccessed(w workload.Workload, scale workload.Scale, k int) []uint32 {
	return Profiles.TopAccessed(w, scale, k)
}

// MeasureOptions tunes a measurement run.
type MeasureOptions struct {
	// SampleEvery samples the FVC's frequent-value content every this
	// many accesses (0 disables sampling). Used for Figure 11.
	SampleEvery uint64
	// VerifyValues enables the hierarchy's value-verification asserts.
	VerifyValues bool
	// WarmupAccesses excludes the first N accesses from the reported
	// statistics (the hierarchy still simulates them, so its state is
	// warm when measurement begins). 0 measures everything, matching
	// the paper's whole-execution accounting.
	WarmupAccesses uint64
	// AuditEvery runs core.(*System).AuditInvariants every this many
	// accesses (0 disables auditing). An audit failure aborts the
	// measurement with the *core.AuditError describing every violation.
	AuditEvery uint64
	// Label names the measurement in telemetry (phase spans and
	// per-workload throughput gauges). Sweeps set it to the workload
	// name; empty skips the span, keeping tight per-config loops out of
	// the phase tree.
	Label string
	// Ctx, when non-nil, cancels the measurement cooperatively: the
	// replay paths check it every cancelCheckEvery accesses (and at
	// every hook boundary) and abort with the context's error. Live
	// workload execution cannot be preempted mid-Run, so Measure only
	// observes it at the run boundary. The fvcache facade and the
	// fvcached service wire per-request deadlines here.
	Ctx context.Context

	// Parallelism, when positive, routes MeasureRecordedBatch through
	// the chunk-parallel replay engine: the recording's compressed
	// chunk stream is partitioned into up to Parallelism contiguous
	// ranges, each replayed by its own worker seeded from the nearest
	// memory checkpoint, and the per-range stats are spliced at the
	// seams. In the default exact mode results are bit-identical to the
	// serial fused replay. Batches containing a configuration the
	// engine cannot checkpoint (online FVT identification) fall back to
	// the serial path. 0 (the default) replays serially.
	Parallelism int
	// ChunkAccesses is the chunk granularity of the parallel engine in
	// accesses; <= 0 selects trace.DefaultChunkAccesses. Smaller chunks
	// partition more evenly but pay more per-chunk overhead.
	ChunkAccesses int
	// SeamEpsilon switches the parallel engine to epsilon mode: seam
	// validation and exact re-runs are skipped, so workers' speculative
	// warm-up error survives into the merged stats. Loads and stores
	// stay exact; for a direct-mapped hierarchy the absolute miss-count
	// error is bounded by (workers-1) x main-cache sets when SeamOverlap
	// is 0, and shrinks rapidly with overlap. Exact mode (the default)
	// re-runs any range whose warmed entry state mismatches its
	// predecessor's exit, so its results are always bit-identical.
	SeamEpsilon bool
	// SeamOverlap is how many accesses of warm-up overlap each worker
	// replays before its range to warm its caches (rounded up to whole
	// chunks). In exact mode 0 selects an adaptive default of 8x the
	// largest configured cache-state line count; in epsilon mode 0
	// disables warm-up entirely (maximum documented error).
	SeamOverlap uint64
}

// cancelCheckEvery is how many accesses a cancellable replay drives
// between context checks: coarse enough to keep the steady-state loops
// allocation-free and branch-cheap, fine enough that a multi-second
// batch replay honors a deadline within tens of milliseconds.
const cancelCheckEvery = 1 << 20

// ctxErr returns the context's error wrapped as a measurement abort,
// or nil. A nil ctx never cancels.
func ctxErr(ctx context.Context, path string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: %s cancelled: %w", path, err)
	}
	return nil
}

// MeasureResult is the outcome of one measurement run.
type MeasureResult struct {
	Stats core.Stats
	// FVCFreqFrac is the average fraction of frequent (non-escape)
	// codes across valid FVC entries over all samples; 0 when the
	// config has no FVC or sampling was disabled.
	FVCFreqFrac float64
	// FVCOccupancy is the average fraction of FVC entries valid.
	FVCOccupancy float64
}

// Measure runs w at scale against a hierarchy built from cfg.
func Measure(w workload.Workload, scale workload.Scale, cfg core.Config, opt MeasureOptions) (MeasureResult, error) {
	if err := ctxErr(opt.Ctx, "measurement"); err != nil {
		return MeasureResult{}, err
	}
	obs.LiveMeasures.Inc()
	cfg.VerifyValues = opt.VerifyValues
	sys, err := core.New(cfg)
	if err != nil {
		return MeasureResult{}, err
	}
	var sink trace.Sink = sys
	var fracSum, occSum float64
	var samples int
	var warmupStats core.Stats
	needHook := opt.WarmupAccesses > 0 || opt.AuditEvery > 0 ||
		(opt.SampleEvery > 0 && sys.FVC() != nil)
	if needHook {
		var n uint64
		sink = trace.SinkFunc(func(e trace.Event) {
			sys.Emit(e)
			if !e.Op.IsAccess() {
				return
			}
			n++
			if opt.WarmupAccesses > 0 && n == opt.WarmupAccesses {
				warmupStats = sys.Stats()
			}
			if opt.SampleEvery > 0 && sys.FVC() != nil && n%opt.SampleEvery == 0 {
				fracSum += sys.FVC().FrequentFraction()
				occSum += float64(sys.FVC().ValidEntries()) / float64(sys.FVC().Params().Entries)
				samples++
			}
			if opt.AuditEvery > 0 && n%opt.AuditEvery == 0 {
				if aerr := sys.AuditInvariants(); aerr != nil {
					// Workloads cannot be cancelled mid-Run; the panic
					// aborts the run and Measure's recover boundary turns
					// it back into this error.
					panic(aerr)
				}
			}
		})
	}
	// Simulation code asserts via panic (VerifyValues, the periodic
	// audit, protocol invariants); the recover boundary converts those
	// into errors so one corrupt run cannot take down a whole sweep.
	env := memsim.NewEnv(sink)
	if rerr := harness.Recover(func() error { w.Run(env, scale); return nil }); rerr != nil {
		return MeasureResult{}, fmt.Errorf("sim: measurement aborted: %w", rerr)
	}
	if opt.AuditEvery > 0 {
		if aerr := sys.AuditInvariants(); aerr != nil {
			return MeasureResult{}, fmt.Errorf("sim: final audit: %w", aerr)
		}
	}
	res := MeasureResult{Stats: sys.Stats().Minus(warmupStats)}
	if samples > 0 {
		res.FVCFreqFrac = fracSum / float64(samples)
		res.FVCOccupancy = occSum / float64(samples)
	}
	return res, nil
}

// MissAttribution runs w at scale against a plain main cache and
// returns the total misses and the misses whose accessed value is in
// values — the paper's Figure 4 measurement.
func MissAttribution(w workload.Workload, scale workload.Scale, cfg core.Config, values []uint32) (total, attributed uint64, err error) {
	sys, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	set := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	sink := trace.SinkFunc(func(e trace.Event) {
		if !e.Op.IsAccess() {
			return
		}
		if sys.Access(e.Op, e.Addr, e.Value) == core.Miss {
			total++
			if _, ok := set[e.Value]; ok {
				attributed++
			}
		}
	})
	env := memsim.NewEnv(sink)
	if rerr := harness.Recover(func() error { w.Run(env, scale); return nil }); rerr != nil {
		return 0, 0, fmt.Errorf("sim: miss attribution aborted: %w", rerr)
	}
	return total, attributed, nil
}

// Parallel fan-out lives in harness.Map: one panic-isolating,
// context-aware parallel-map implementation serves the sweeps, the
// experiment pmap and any ad-hoc caller (the former sim.ParallelMap
// wrapper is gone).
