// Package sim drives workloads through the cache hierarchy: a
// profiling pass identifies a workload's frequently accessed values
// (the paper's profile-based FVT selection), and a measurement pass
// replays the workload against a configured core.System. A small
// parallel runner fans independent configurations across goroutines
// for the experiment sweeps.
package sim

import (
	"runtime"
	"sync"

	"fvcache/internal/core"
	"fvcache/internal/freqval"
	"fvcache/internal/memsim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// ProfileTopAccessed runs w at scale and returns its k most frequently
// accessed values (the FVT a profile-directed compiler/loader would
// install).
func ProfileTopAccessed(w workload.Workload, scale workload.Scale, k int) []uint32 {
	h := trace.NewValueHistogram()
	env := memsim.NewEnv(h)
	w.Run(env, scale)
	return freqval.TopAccessed(h, k)
}

// MeasureOptions tunes a measurement run.
type MeasureOptions struct {
	// SampleEvery samples the FVC's frequent-value content every this
	// many accesses (0 disables sampling). Used for Figure 11.
	SampleEvery uint64
	// VerifyValues enables the hierarchy's value-verification asserts.
	VerifyValues bool
	// WarmupAccesses excludes the first N accesses from the reported
	// statistics (the hierarchy still simulates them, so its state is
	// warm when measurement begins). 0 measures everything, matching
	// the paper's whole-execution accounting.
	WarmupAccesses uint64
}

// MeasureResult is the outcome of one measurement run.
type MeasureResult struct {
	Stats core.Stats
	// FVCFreqFrac is the average fraction of frequent (non-escape)
	// codes across valid FVC entries over all samples; 0 when the
	// config has no FVC or sampling was disabled.
	FVCFreqFrac float64
	// FVCOccupancy is the average fraction of FVC entries valid.
	FVCOccupancy float64
}

// Measure runs w at scale against a hierarchy built from cfg.
func Measure(w workload.Workload, scale workload.Scale, cfg core.Config, opt MeasureOptions) (MeasureResult, error) {
	cfg.VerifyValues = opt.VerifyValues
	sys, err := core.New(cfg)
	if err != nil {
		return MeasureResult{}, err
	}
	var sink trace.Sink = sys
	var fracSum, occSum float64
	var samples int
	var warmupStats core.Stats
	needHook := opt.WarmupAccesses > 0 || (opt.SampleEvery > 0 && sys.FVC() != nil)
	if needHook {
		var n uint64
		sink = trace.SinkFunc(func(e trace.Event) {
			sys.Emit(e)
			if !e.Op.IsAccess() {
				return
			}
			n++
			if opt.WarmupAccesses > 0 && n == opt.WarmupAccesses {
				warmupStats = sys.Stats()
			}
			if opt.SampleEvery > 0 && sys.FVC() != nil && n%opt.SampleEvery == 0 {
				fracSum += sys.FVC().FrequentFraction()
				occSum += float64(sys.FVC().ValidEntries()) / float64(sys.FVC().Params().Entries)
				samples++
			}
		})
	}
	env := memsim.NewEnv(sink)
	w.Run(env, scale)
	res := MeasureResult{Stats: sys.Stats().Minus(warmupStats)}
	if samples > 0 {
		res.FVCFreqFrac = fracSum / float64(samples)
		res.FVCOccupancy = occSum / float64(samples)
	}
	return res, nil
}

// MissAttribution runs w at scale against a plain main cache and
// returns the total misses and the misses whose accessed value is in
// values — the paper's Figure 4 measurement.
func MissAttribution(w workload.Workload, scale workload.Scale, cfg core.Config, values []uint32) (total, attributed uint64, err error) {
	sys, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	set := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	sink := trace.SinkFunc(func(e trace.Event) {
		if !e.Op.IsAccess() {
			return
		}
		if sys.Access(e.Op, e.Addr, e.Value) == core.Miss {
			total++
			if _, ok := set[e.Value]; ok {
				attributed++
			}
		}
	})
	env := memsim.NewEnv(sink)
	w.Run(env, scale)
	return total, attributed, nil
}

// ParallelMap evaluates fn(0..n-1) across up to workers goroutines
// (GOMAXPROCS when workers <= 0) and returns the results in order.
func ParallelMap[T any](n, workers int, fn func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
