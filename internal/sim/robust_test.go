package sim

import (
	"errors"
	"strings"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/harness"
	"fvcache/internal/memsim"
	"fvcache/internal/workload"
)

// Parallel fan-out panic isolation is covered by harness.Map's own
// tests (TestMapPanicDoesNotHang); sim no longer carries a second
// parallel-map implementation.

// panicker is a workload that blows up partway through its run.
type panicker struct{}

func (panicker) Name() string        { return "panicker" }
func (panicker) Analogue() string    { return "none" }
func (panicker) Description() string { return "panics mid-run (tests only)" }
func (panicker) FVL() bool           { return false }
func (panicker) Run(env *memsim.Env, _ workload.Scale) {
	a := env.Alloc(4)
	env.Store(a, 1)
	panic("simulated invariant failure")
}

func smallFVCConfig() core.Config {
	return core.Config{
		Main:           cache.Params{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		FVC:            &fvc.Params{Entries: 4, LineBytes: 16, Bits: 3},
		FrequentValues: []uint32{0, 0xffffffff, 1},
	}
}

// TestMeasureRecoversWorkloadPanic: Measure converts a panicking
// workload into an error carrying the recovered stack, instead of
// killing the process.
func TestMeasureRecoversWorkloadPanic(t *testing.T) {
	_, err := Measure(panicker{}, workload.Test, smallFVCConfig(), MeasureOptions{})
	if err == nil {
		t.Fatal("Measure returned nil for a panicking workload")
	}
	if !strings.Contains(err.Error(), "simulated invariant failure") {
		t.Errorf("error does not carry the panic value: %v", err)
	}
	if harness.StackOf(err) == nil {
		t.Error("error does not carry the recovered stack")
	}
}

// TestMeasureAuditEvery: a healthy run passes the periodic and final
// audits; the real workloads exercise the full protocol.
func TestMeasureAuditEvery(t *testing.T) {
	ws := workload.All()
	if len(ws) == 0 {
		t.Skip("no workloads registered")
	}
	res, err := Measure(ws[0], workload.Test, smallFVCConfig(),
		MeasureOptions{AuditEvery: 128, VerifyValues: true})
	if err != nil {
		t.Fatalf("audited measurement failed: %v", err)
	}
	if res.Stats.Accesses() == 0 {
		t.Error("measurement recorded no accesses")
	}
}

// TestMeasureAuditEveryStatsUnchanged: auditing is observation only —
// the measured statistics must be identical with and without it.
func TestMeasureAuditEveryStatsUnchanged(t *testing.T) {
	ws := workload.All()
	if len(ws) == 0 {
		t.Skip("no workloads registered")
	}
	plain, err := Measure(ws[0], workload.Test, smallFVCConfig(), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := Measure(ws[0], workload.Test, smallFVCConfig(), MeasureOptions{AuditEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != audited.Stats {
		t.Errorf("auditing changed the stats:\nplain   %+v\naudited %+v", plain.Stats, audited.Stats)
	}
}

// TestMeasureErrorUnwraps: the recovered panic stays reachable through
// the error chain, so callers can errors.As for *harness.PanicError.
func TestMeasureErrorUnwraps(t *testing.T) {
	_, err := Measure(panicker{}, workload.Test, smallFVCConfig(), MeasureOptions{})
	var pe *harness.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *harness.PanicError", err)
	}
}
