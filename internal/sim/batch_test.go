package sim

import (
	"sync"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/workload"
)

// batchConfigs spans the lane shapes the fused engine handles: fast
// direct-mapped lanes (plain, FVC, victim) and generic lanes
// (associative main cache, L2, online FVT sketch).
func batchConfigs(w workload.Workload) []core.Config {
	main := cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}
	fvt := ProfileTopAccessed(w, workload.Test, 7)
	return []core.Config{
		{Main: main},
		{Main: main, FVC: &fvc.Params{Entries: 256, LineBytes: main.LineBytes, Bits: 3}, FrequentValues: fvt},
		{Main: main, VictimEntries: 8},
		{Main: cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2}},
		{Main: main, L2: &cache.Params{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 4}},
		{Main: main, FVC: &fvc.Params{Entries: 256, LineBytes: main.LineBytes, Bits: 3}, OnlineFVTEvery: 100_000},
	}
}

// TestBatchReplayEquivalence is the fused engine's contract: for every
// registered workload, one batched pass over the shared recording
// yields bit-identical core.Stats to per-configuration replays, for
// every configuration shape.
func TestBatchReplayEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			cfgs := batchConfigs(w)
			batch, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(cfgs) {
				t.Fatalf("got %d results for %d configs", len(batch), len(cfgs))
			}
			for i, cfg := range cfgs {
				solo, err := MeasureRecorded(rec, cfg, MeasureOptions{})
				if err != nil {
					t.Fatalf("config %d: %v", i, err)
				}
				if batch[i].Stats != solo.Stats {
					t.Errorf("config %d: batch stats diverge\nbatch: %+v\nsolo:  %+v", i, batch[i].Stats, solo.Stats)
				}
			}
		})
	}
}

// TestBatchReplayEquivalenceHooks checks the chunked hook path: warmup
// exclusion, FVC content sampling and periodic audits must observe the
// same access boundaries as the per-config replay, making the whole
// MeasureResult — not just Stats — identical.
func TestBatchReplayEquivalenceHooks(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchConfigs(w)
	opt := MeasureOptions{
		WarmupAccesses: 10_000,
		SampleEvery:    5_000,
		AuditEvery:     50_000,
		VerifyValues:   true,
	}
	batch, err := MeasureRecordedBatch(rec, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo, err := MeasureRecorded(rec, cfg, opt)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if batch[i] != solo {
			t.Errorf("config %d: hooked batch result diverges\nbatch: %+v\nsolo:  %+v", i, batch[i], solo)
		}
	}
}

// TestBatchReplayConcurrent replays the same shared recording from
// many goroutines at once through the batch engine (plus concurrent
// profile-cache use). Run under -race this pins the immutability
// contract: batches build private SystemSets over the recording and
// never mutate it.
func TestBatchReplayConcurrent(t *testing.T) {
	w, err := workload.Get("strproc")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchConfigs(w)
	want, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const replayers = 8
	var wg sync.WaitGroup
	for g := 0; g < replayers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ProfileTopAccessed(w, workload.Test, 7) // shared singleflight cache
			got, err := MeasureRecordedBatch(rec, cfgs, MeasureOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("config %d: concurrent batch diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBatchReplayZeroAllocs pins the fused loop's allocation behavior:
// once the SystemSet is warm (shared pages materialized, cache frames
// filled), a full batched replay must not allocate at all.
func TestBatchReplayZeroAllocs(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	main := cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}
	set, err := core.NewSet([]core.Config{
		{Main: main},
		{Main: main, FVC: &fvc.Params{Entries: 256, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: ProfileTopAccessed(w, workload.Test, 7)},
		{Main: main, VictimEntries: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ops, addrs, vals := rec.AccessColumns()
	set.ReplayColumns(ops, addrs, vals) // warm: pages and frames exist now
	if allocs := testing.AllocsPerRun(3, func() { set.ReplayColumns(ops, addrs, vals) }); allocs > 0 {
		t.Errorf("steady-state batched replay allocated %.0f times per pass, want 0", allocs)
	}
}

// TestMissAttributionSetsParity checks the multi-set attribution pass
// against per-set MissAttributionRecorded calls.
func TestMissAttributionSetsParity(t *testing.T) {
	w, err := workload.Get("lispint")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Main: cache.Params{SizeBytes: 8 << 10, LineBytes: 16, Assoc: 1}}
	sets := [][]uint32{
		ProfileTopAccessed(w, workload.Test, 10),
		{0, 1, 0xffffffff},
	}
	total, attr, err := MissAttributionSets(rec, cfg, sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, values := range sets {
		soloTotal, soloAttr, err := MissAttributionRecorded(rec, cfg, values)
		if err != nil {
			t.Fatal(err)
		}
		if soloTotal != total || soloAttr != attr[i] {
			t.Errorf("set %d: fused attribution diverges: total %d vs %d, attributed %d vs %d",
				i, total, soloTotal, attr[i], soloAttr)
		}
	}
}

// TestProfileCacheSingleflight checks that concurrent profile requests
// for the same key share one histogram scan and one cached slice.
func TestProfileCacheSingleflight(t *testing.T) {
	w, err := workload.Get("goboard")
	if err != nil {
		t.Fatal(err)
	}
	var c ProfileCache
	const n = 8
	got := make([][]uint32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.TopAccessed(w, workload.Test, 7)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if len(got[i]) != len(got[0]) {
			t.Fatalf("request %d returned %d values, want %d", i, len(got[i]), len(got[0]))
		}
		if len(got[i]) > 0 && &got[i][0] != &got[0][0] {
			t.Fatalf("request %d returned a different backing array (no singleflight)", i)
		}
	}
	// Prefix reuse: a smaller k must come from the same cached scan.
	small := c.TopAccessed(w, workload.Test, 3)
	if len(small) > 0 && &small[0] != &got[0][0] {
		t.Error("smaller k did not reuse the cached profile")
	}
}
