package sim

import (
	"sync"

	"fvcache/internal/freqval"
	"fvcache/internal/memsim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// profileTop is how many values the profile cache retains per
// (workload, scale). Every frequent value table the experiments build
// is a prefix of the top 16 (4-bit codes cap an FVT at 15 values), so
// one histogram scan serves every FVC entry point of a sweep.
const profileTop = 16

type profEntry struct {
	once sync.Once
	vals []uint32
}

// ProfileCache memoizes ProfileTopAccessed-derived frequent value
// tables per (workload, scale). Like the Recordings cache it
// singleflights concurrent requests: a sweep that attaches FVCs at
// many entry points derives the workload's FVT from one histogram
// scan instead of once per configuration point. Cached slices are
// shared between callers and must not be mutated.
type ProfileCache struct {
	mu      sync.Mutex
	entries map[recKey]*profEntry
}

// TopAccessed returns w's k most frequently accessed values at scale,
// profiling on first use. Requests beyond the cached prefix size fall
// through to an uncached profile pass.
func (c *ProfileCache) TopAccessed(w workload.Workload, scale workload.Scale, k int) []uint32 {
	if k > profileTop {
		return profileTopAccessed(w, scale, k)
	}
	key := recKey{name: w.Name(), scale: scale}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[recKey]*profEntry)
	}
	e := c.entries[key]
	if e == nil {
		e = new(profEntry)
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.vals = profileTopAccessed(w, scale, profileTop) })
	if k > len(e.vals) {
		k = len(e.vals)
	}
	return e.vals[:k]
}

// Reset drops every cached profile.
func (c *ProfileCache) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

// Profiles is the process-wide profile cache the experiment sweeps
// share.
var Profiles ProfileCache

// profileTopAccessed performs the uncached profile pass: the value
// histogram is derived by replaying the shared recording of w, so a
// profile pass followed by measurement runs executes the workload only
// once. If recording fails the profile falls back to a live run.
func profileTopAccessed(w workload.Workload, scale workload.Scale, k int) []uint32 {
	h := trace.NewValueHistogram()
	if rec, err := Recordings.Get(w, scale); err == nil {
		rec.Replay(h)
	} else {
		env := memsim.NewEnv(h)
		w.Run(env, scale)
	}
	return freqval.TopAccessed(h, k)
}
