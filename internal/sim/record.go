package sim

import (
	"fmt"
	"sync"
	"time"

	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/memsim"
	"fvcache/internal/obs"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// Record executes w at scale once and captures its entire event stream
// into a trace.Recording. Workloads are deterministic in (name, scale),
// so replaying the recording into any sink is observationally identical
// to re-running the workload — but skips the workload's own compute and
// the per-event closure dispatch, which is what makes the sweep
// engine's record-once/replay-many strategy sound.
func Record(w workload.Workload, scale workload.Scale) (*trace.Recording, error) {
	span := obs.Begin("record:" + w.Name())
	defer span.Done()
	start := time.Now()
	rec := trace.NewRecording()
	env := memsim.NewEnv(rec)
	if rerr := harness.Recover(func() error { w.Run(env, scale); return nil }); rerr != nil {
		return nil, fmt.Errorf("sim: recording aborted: %w", rerr)
	}
	obs.RecordedEvents.Add(uint64(rec.Len()))
	if d := time.Since(start); d > 0 {
		obs.Default.Gauge(obs.Labeled("record_events_per_sec", "workload", w.Name())).
			Set(float64(rec.Len()) / d.Seconds())
	}
	obs.Log.Debug("workload recorded", "workload", w.Name(), "scale", scale.String(),
		"events", rec.Len(), "accesses", rec.Accesses())
	return rec, nil
}

type recKey struct {
	name  string
	scale workload.Scale
}

type recEntry struct {
	once sync.Once
	rec  *trace.Recording
	err  error
}

// RecordingCache memoizes Record results by (workload name, scale).
// Concurrent callers asking for the same recording block on a single
// execution (singleflight); distinct workloads record in parallel.
// Recordings are immutable once recorded, so the returned *Recording
// may be replayed concurrently from any number of goroutines.
type RecordingCache struct {
	mu      sync.Mutex
	entries map[recKey]*recEntry
}

// Get returns the cached recording of w at scale, recording it on
// first use.
func (c *RecordingCache) Get(w workload.Workload, scale workload.Scale) (*trace.Recording, error) {
	k := recKey{name: w.Name(), scale: scale}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[recKey]*recEntry)
	}
	e := c.entries[k]
	if e == nil {
		e = new(recEntry)
		c.entries[k] = e
		obs.RecordingMisses.Inc()
	} else {
		obs.RecordingHits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() { e.rec, e.err = Record(w, scale) })
	return e.rec, e.err
}

// Reset drops every cached recording, releasing their buffers.
func (c *RecordingCache) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

// Recordings is the process-wide recording cache the experiment sweeps
// share.
var Recordings RecordingCache

// ReplayInto drives every access event of rec through sys with no
// per-event closure or interface dispatch: a straight loop over the
// recording's columns calling the concrete (*core.System).Access.
// Non-access events carry no simulator semantics (System.Emit drops
// them), so they are skipped.
func ReplayInto(rec *trace.Recording, sys *core.System) {
	ops, addrs, vals := rec.Columns()
	sys.ReplayColumns(ops, addrs, vals)
	obs.ReplayEvents.Add(uint64(len(ops)))
}

// MeasureRecorded is Measure driven from a recording instead of a live
// workload execution. The hook semantics (warmup snapshot, FVC
// sampling, periodic audits) match Measure exactly, so for a recording
// of w at scale the result is bit-identical to Measure(w, scale, ...).
func MeasureRecorded(rec *trace.Recording, cfg core.Config, opt MeasureOptions) (MeasureResult, error) {
	if err := ctxErr(opt.Ctx, "replay measurement"); err != nil {
		return MeasureResult{}, err
	}
	cfg.VerifyValues = opt.VerifyValues
	sys, err := core.New(cfg)
	if err != nil {
		return MeasureResult{}, err
	}
	var fracSum, occSum float64
	var samples int
	var warmupStats core.Stats
	needHook := opt.WarmupAccesses > 0 || opt.AuditEvery > 0 ||
		(opt.SampleEvery > 0 && sys.FVC() != nil)
	replay := func() error {
		if !needHook {
			if opt.Ctx == nil {
				ReplayInto(rec, sys)
				return nil
			}
			// Cancellable fast path: drive the access columns in
			// cancelCheckEvery-sized chunks, checking the context between
			// chunks. Same bulk ReplayColumns loop, so the steady-state
			// allocation behavior is unchanged.
			ops, addrs, vals := rec.AccessColumns()
			for n := 0; n < len(ops); n += cancelCheckEvery {
				if err := ctxErr(opt.Ctx, "replay measurement"); err != nil {
					return err
				}
				end := n + cancelCheckEvery
				if end > len(ops) {
					end = len(ops)
				}
				sys.ReplayColumns(ops[n:end], addrs[n:end], vals[n:end])
			}
			obs.ReplayEvents.Add(uint64(len(ops)))
			return nil
		}
		ops, addrs, vals := rec.Columns()
		var n uint64
		for i, op := range ops {
			if !op.IsAccess() {
				continue
			}
			sys.Access(op, addrs[i], vals[i])
			n++
			if opt.Ctx != nil && n%cancelCheckEvery == 0 {
				if err := ctxErr(opt.Ctx, "replay measurement"); err != nil {
					return err
				}
			}
			if opt.WarmupAccesses > 0 && n == opt.WarmupAccesses {
				warmupStats = sys.Stats()
			}
			if opt.SampleEvery > 0 && sys.FVC() != nil && n%opt.SampleEvery == 0 {
				fracSum += sys.FVC().FrequentFraction()
				occSum += float64(sys.FVC().ValidEntries()) / float64(sys.FVC().Params().Entries)
				samples++
			}
			if opt.AuditEvery > 0 && n%opt.AuditEvery == 0 {
				if aerr := sys.AuditInvariants(); aerr != nil {
					panic(aerr)
				}
			}
		}
		return nil
	}
	// Same recover boundary as Measure: simulator asserts panic, and
	// one corrupt replay must not take down a whole sweep.
	if rerr := harness.Recover(replay); rerr != nil {
		return MeasureResult{}, fmt.Errorf("sim: replay measurement aborted: %w", rerr)
	}
	if needHook {
		// The fast path counts inside ReplayInto.
		obs.ReplayEvents.Add(uint64(rec.Len()))
	}
	if opt.AuditEvery > 0 {
		if aerr := sys.AuditInvariants(); aerr != nil {
			return MeasureResult{}, fmt.Errorf("sim: final audit: %w", aerr)
		}
	}
	res := MeasureResult{Stats: sys.Stats().Minus(warmupStats)}
	if samples > 0 {
		res.FVCFreqFrac = fracSum / float64(samples)
		res.FVCOccupancy = occSum / float64(samples)
	}
	return res, nil
}

// MissAttributionRecorded is MissAttribution driven from a recording.
func MissAttributionRecorded(rec *trace.Recording, cfg core.Config, values []uint32) (total, attributed uint64, err error) {
	sys, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	set := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	run := func() error {
		ops, addrs, vals := rec.Columns()
		for i, op := range ops {
			if !op.IsAccess() {
				continue
			}
			if sys.Access(op, addrs[i], vals[i]) == core.Miss {
				total++
				if _, ok := set[vals[i]]; ok {
					attributed++
				}
			}
		}
		return nil
	}
	if rerr := harness.Recover(run); rerr != nil {
		return 0, 0, fmt.Errorf("sim: miss attribution aborted: %w", rerr)
	}
	return total, attributed, nil
}
