package sim

import (
	"context"
	"errors"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/workload"
)

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestProfileTopAccessed(t *testing.T) {
	vals := ProfileTopAccessed(wl(t, "goboard"), workload.Test, 7)
	if len(vals) != 7 {
		t.Fatalf("got %d values, want 7", len(vals))
	}
	// The go-board workload's most accessed values must include the
	// board cell constants.
	found := map[uint32]bool{}
	for _, v := range vals {
		found[v] = true
	}
	for _, want := range []uint32{0, 1, 2} {
		if !found[want] {
			t.Errorf("top values %v missing %d", vals, want)
		}
	}
}

func TestMeasurePlainVsFVC(t *testing.T) {
	w := wl(t, "goboard")
	main := cache.Params{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 1}
	base, err := Measure(w, workload.Test, core.Config{Main: main}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals := ProfileTopAccessed(w, workload.Test, 7)
	aug, err := Measure(w, workload.Test, core.Config{
		Main:           main,
		FVC:            &fvc.Params{Entries: 128, LineBytes: 32, Bits: 3},
		FrequentValues: vals,
	}, MeasureOptions{VerifyValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Accesses() != aug.Stats.Accesses() {
		t.Fatalf("access counts differ: %d vs %d", base.Stats.Accesses(), aug.Stats.Accesses())
	}
	if aug.Stats.Misses >= base.Stats.Misses {
		t.Errorf("FVC should reduce misses on goboard: base=%d fvc=%d",
			base.Stats.Misses, aug.Stats.Misses)
	}
	if aug.Stats.FVCHits == 0 {
		t.Error("expected FVC hits")
	}
}

func TestMeasureSampling(t *testing.T) {
	w := wl(t, "goboard")
	vals := ProfileTopAccessed(w, workload.Test, 7)
	res, err := Measure(w, workload.Test, core.Config{
		Main:           cache.Params{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 1},
		FVC:            &fvc.Params{Entries: 128, LineBytes: 32, Bits: 3},
		FrequentValues: vals,
	}, MeasureOptions{SampleEvery: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FVCFreqFrac <= 0 || res.FVCFreqFrac > 1 {
		t.Errorf("FVCFreqFrac = %v, want in (0,1]", res.FVCFreqFrac)
	}
	if res.FVCOccupancy <= 0 || res.FVCOccupancy > 1 {
		t.Errorf("FVCOccupancy = %v, want in (0,1]", res.FVCOccupancy)
	}
}

func TestMeasureBadConfig(t *testing.T) {
	_, err := Measure(wl(t, "goboard"), workload.Test, core.Config{}, MeasureOptions{})
	if err == nil {
		t.Error("zero config must error")
	}
}

func TestMissAttribution(t *testing.T) {
	w := wl(t, "goboard")
	cfg := core.Config{Main: cache.Params{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 1}}
	vals := ProfileTopAccessed(w, workload.Test, 10)
	total, attr, err := MissAttribution(w, workload.Test, cfg, vals)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("expected misses")
	}
	if attr == 0 || attr > total {
		t.Errorf("attributed = %d of %d", attr, total)
	}
	// On an FVL workload, a large share of misses involve top values.
	if frac := float64(attr) / float64(total); frac < 0.25 {
		t.Errorf("attribution fraction = %.2f, expected >= 0.25 on goboard", frac)
	}
}

// TestMeasureCtxCancelled: every measurement entry point must refuse a
// context that is already cancelled, and an uncancelled context must
// not perturb results (the cancellable fast path chunks the same bulk
// replay loop).
func TestMeasureCtxCancelled(t *testing.T) {
	w := wl(t, "goboard")
	cfg := core.Config{Main: cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := Measure(w, workload.Test, cfg, MeasureOptions{Ctx: cancelled}); !errors.Is(err, context.Canceled) {
		t.Errorf("Measure with cancelled ctx: err = %v, want context.Canceled", err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureRecorded(rec, cfg, MeasureOptions{Ctx: cancelled}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureRecorded with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := MeasureRecordedBatch(rec, []core.Config{cfg}, MeasureOptions{Ctx: cancelled}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureRecordedBatch with cancelled ctx: err = %v, want context.Canceled", err)
	}

	// A live context must leave results bit-identical to the ctx-free
	// paths, for both the per-config and the fused engine.
	want, err := MeasureRecorded(rec, cfg, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureRecorded(rec, cfg, MeasureOptions{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ctx-chunked replay diverged: %+v != %+v", got, want)
	}
	batch, err := MeasureRecordedBatch(rec, []core.Config{cfg}, MeasureOptions{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != want {
		t.Errorf("ctx-chunked batch replay diverged: %+v != %+v", batch[0], want)
	}
}
