package sim

import (
	"sync"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/workload"
)

func testConfigs(w workload.Workload) map[string]core.Config {
	main := cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}
	return map[string]core.Config{
		"dmc": {Main: main},
		"dmc+fvc": {
			Main:           main,
			FVC:            &fvc.Params{Entries: 256, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: ProfileTopAccessed(w, workload.Test, 7),
		},
	}
}

// TestReplayEquivalence is the record/replay engine's contract: for
// every registered workload, measuring a configuration from the shared
// recording yields bit-identical core.Stats to a live workload run.
func TestReplayEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rec, err := Recordings.Get(w, workload.Test)
			if err != nil {
				t.Fatal(err)
			}
			for name, cfg := range testConfigs(w) {
				live, err := Measure(w, workload.Test, cfg, MeasureOptions{})
				if err != nil {
					t.Fatalf("%s live: %v", name, err)
				}
				rep, err := MeasureRecorded(rec, cfg, MeasureOptions{})
				if err != nil {
					t.Fatalf("%s replay: %v", name, err)
				}
				if live.Stats != rep.Stats {
					t.Errorf("%s: replayed stats diverge\nlive:   %+v\nreplay: %+v", name, live.Stats, rep.Stats)
				}
			}
		})
	}
}

// TestReplayEquivalenceHooks checks the hooked path too: warmup
// exclusion, FVC content sampling and periodic audits must all observe
// the same access boundaries live and on replay.
func TestReplayEquivalenceHooks(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(w)["dmc+fvc"]
	opt := MeasureOptions{
		WarmupAccesses: 10_000,
		SampleEvery:    5_000,
		AuditEvery:     50_000,
		VerifyValues:   true,
	}
	live, err := Measure(w, workload.Test, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureRecorded(rec, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if live != rep {
		t.Errorf("hooked measurement diverges\nlive:   %+v\nreplay: %+v", live, rep)
	}
}

// TestReplayAccessPathZeroAllocs pins the de-allocated hot path: once
// the hierarchy is warm (pages materialized, caches filled), replaying
// a full recording must not allocate at all.
func TestReplayAccessPathZeroAllocs(t *testing.T) {
	w, err := workload.Get("ccomp")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recordings.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(w)["dmc+fvc"]
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ReplayInto(rec, sys) // warm: backing pages and cache frames exist now
	if allocs := testing.AllocsPerRun(3, func() { ReplayInto(rec, sys) }); allocs > 0 {
		t.Errorf("steady-state replay allocated %.0f times per full replay, want 0", allocs)
	}
}

// TestRecordingCacheSingleflight checks that concurrent Gets for the
// same key share one recording and one underlying execution.
func TestRecordingCacheSingleflight(t *testing.T) {
	w, err := workload.Get("strproc")
	if err != nil {
		t.Fatal(err)
	}
	var c RecordingCache
	const n = 8
	got := make([]interface{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := c.Get(w, workload.Test)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = rec
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("Get %d returned a different recording instance", i)
		}
	}
	c.Reset()
	rec2, err := c.Get(w, workload.Test)
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == got[0] {
		t.Error("Reset did not drop the cached recording")
	}
}
