// Cross-module integration tests: trace round trips feeding the
// simulator, the full profile→measure pipeline over every workload
// with value verification enabled, and determinism of the experiment
// machinery.
package fvcache_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/experiments"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// TestTraceReplayMatchesDirectDrive records a workload's trace to a
// file, replays it through a hierarchy, and requires bit-identical
// statistics to driving the hierarchy live.
func TestTraceReplayMatchesDirectDrive(t *testing.T) {
	w, err := workload.Get("lispint")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Main:           cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1},
		FVC:            &fvc.Params{Entries: 128, LineBytes: 32, Bits: 3},
		FrequentValues: sim.ProfileTopAccessed(w, workload.Test, 7),
	}

	// Live drive.
	live := core.MustNew(cfg)
	envLive := memsim.NewEnv(live)
	w.Run(envLive, workload.Test)

	// Record to a file.
	path := filepath.Join(t.TempDir(), "trace.fvt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	envRec := memsim.NewEnv(tw)
	w.Run(envRec, workload.Test)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay from the file.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr, err := trace.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := core.MustNew(cfg)
	if _, err := tr.Drain(replayed); err != nil {
		t.Fatal(err)
	}

	if live.Stats() != replayed.Stats() {
		t.Errorf("replayed stats differ from live drive:\nlive:     %+v\nreplayed: %+v",
			live.Stats(), replayed.Stats())
	}
}

// TestAllWorkloadsThroughVerifiedFVC drives every workload through a
// profiled DMC+FVC hierarchy with VerifyValues on: any divergence
// between FVC codes and architectural memory panics.
func TestAllWorkloadsThroughVerifiedFVC(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			vals := sim.ProfileTopAccessed(w, workload.Test, 7)
			res, err := sim.Measure(w, workload.Test, core.Config{
				Main:           cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
				FVC:            &fvc.Params{Entries: 256, LineBytes: 32, Bits: 3},
				FrequentValues: vals,
			}, sim.MeasureOptions{VerifyValues: true})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.Hits()+st.Misses != st.Accesses() {
				t.Errorf("stats inconsistent: %+v", st)
			}
			if st.Accesses() == 0 {
				t.Error("no accesses simulated")
			}
		})
	}
}

// TestAllWorkloadsVictimCache drives every workload through a DMC+VC
// hierarchy, exercising the swap path broadly.
func TestAllWorkloadsVictimCache(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			res, err := sim.Measure(w, workload.Test, core.Config{
				Main:          cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1},
				VictimEntries: 8,
			}, sim.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.Hits()+st.Misses != st.Accesses() {
				t.Errorf("stats inconsistent: %+v", st)
			}
		})
	}
}

// TestFVCNeverWorseAcrossSuite is the paper's first design goal as an
// integration property: with write-miss allocation disabled, adding an
// FVC never increases the miss count, for any workload.
func TestFVCNeverWorseAcrossSuite(t *testing.T) {
	main := cache.Params{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}
	for _, w := range workload.FVLSuite() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			base, err := sim.Measure(w, workload.Test, core.Config{Main: main}, sim.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			aug, err := sim.Measure(w, workload.Test, core.Config{
				Main:                main,
				FVC:                 &fvc.Params{Entries: 256, LineBytes: 32, Bits: 3},
				FrequentValues:      sim.ProfileTopAccessed(w, workload.Test, 7),
				NoWriteMissAllocate: true,
			}, sim.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if aug.Stats.Misses > base.Stats.Misses {
				t.Errorf("FVC increased misses: %d > %d", aug.Stats.Misses, base.Stats.Misses)
			}
		})
	}
}

// TestExperimentDeterminism runs one full experiment twice and
// requires identical rendered output.
func TestExperimentDeterminism(t *testing.T) {
	e, err := experiments.Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	opt := experiments.Options{Scale: workload.Test, Workers: 2}
	var a, b bytes.Buffer
	if err := e.Run(opt, &a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(opt, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("experiment output is not deterministic")
	}
	if !strings.Contains(a.String(), "Figure 4") {
		t.Errorf("unexpected output:\n%s", a.String())
	}
}

// TestScaledMissRatesOrdering checks the macro property the evaluation
// depends on: for every workload, bigger caches never have (meaningfully)
// higher miss rates.
func TestScaledMissRatesOrdering(t *testing.T) {
	for _, w := range workload.FVLSuite() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			var prev float64 = 2.0 // above any possible rate
			for _, kb := range []int{4, 16, 64} {
				res, err := sim.Measure(w, workload.Test, core.Config{
					Main: cache.Params{SizeBytes: kb << 10, LineBytes: 32, Assoc: 1},
				}, sim.MeasureOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rate := res.Stats.MissRate()
				// Allow tiny non-monotonicity (set-index effects).
				if rate > prev*1.05+0.001 {
					t.Errorf("%dKB miss rate %.4f exceeds smaller cache's %.4f", kb, rate, prev)
				}
				prev = rate
			}
		})
	}
}
