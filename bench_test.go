// One benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks of the simulator hot paths. The per-artifact benches
// run the same measurement the corresponding experiment performs, at
// test scale, and report the figure's key quantity as a custom metric
// (miss%, reduction%, coverage%, ns, ...).
//
// Run them all with:
//
//	go test -bench=. -benchmem
package fvcache_test

import (
	"sync"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/cacti"
	"fvcache/internal/core"
	"fvcache/internal/freqval"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

const benchScale = workload.Test

func getWL(b *testing.B, name string) workload.Workload {
	b.Helper()
	w, err := workload.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// Profile memo shared across benchmark iterations and functions.
var (
	profMu   sync.Mutex
	profMemo = map[string][]uint32{}
)

func topValues(b *testing.B, w workload.Workload, k int) []uint32 {
	b.Helper()
	profMu.Lock()
	defer profMu.Unlock()
	vals, ok := profMemo[w.Name()]
	if !ok {
		vals = sim.ProfileTopAccessed(w, benchScale, 10)
		profMemo[w.Name()] = vals
	}
	if k > len(vals) {
		k = len(vals)
	}
	return vals[:k]
}

func measure(b *testing.B, w workload.Workload, cfg core.Config) core.Stats {
	b.Helper()
	res, err := sim.Measure(w, benchScale, cfg, sim.MeasureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats
}

func dmc(kb, line int) cache.Params {
	return cache.Params{SizeBytes: kb << 10, LineBytes: line, Assoc: 1}
}

func fvcCfg(w workload.Workload, b *testing.B, main cache.Params, entries, bits int) core.Config {
	return core.Config{
		Main:           main,
		FVC:            &fvc.Params{Entries: entries, LineBytes: main.LineBytes, Bits: bits},
		FrequentValues: topValues(b, w, fvc.MaxValues(bits)),
	}
}

// --- Section 2 study benches (Figures 1-5, Tables 1-4) ---

// BenchmarkFig1FrequentValuesInt measures top-10 access coverage on a
// representative FVL workload (Figure 1's access half).
func BenchmarkFig1FrequentValuesInt(b *testing.B) {
	w := getWL(b, "goboard")
	var cov float64
	for i := 0; i < b.N; i++ {
		h := trace.NewValueHistogram()
		env := memsim.NewEnv(h)
		w.Run(env, benchScale)
		cov = h.CoverageOfTopK(10)
	}
	b.ReportMetric(cov*100, "top10cov%")
}

// BenchmarkFig2FrequentValuesFP is Figure 1's measurement on an FP
// kernel (Figure 2).
func BenchmarkFig2FrequentValuesFP(b *testing.B) {
	w := getWL(b, "stencil2d")
	var cov float64
	for i := 0; i < b.N; i++ {
		h := trace.NewValueHistogram()
		env := memsim.NewEnv(h)
		w.Run(env, benchScale)
		cov = h.CoverageOfTopK(10)
	}
	b.ReportMetric(cov*100, "top10cov%")
}

// lateSink lets the occurrence sampler be built after the Env whose
// memory it snapshots.
type lateSink struct{ s trace.Sink }

func (l *lateSink) Emit(e trace.Event) {
	if l.s != nil {
		l.s.Emit(e)
	}
}

// BenchmarkFig3GccTimeline runs the occurrence sampler over the gcc
// analogue (Figure 3's location curves).
func BenchmarkFig3GccTimeline(b *testing.B) {
	w := getWL(b, "ccomp")
	var samples int
	for i := 0; i < b.N; i++ {
		hold := &lateSink{}
		env := memsim.NewEnv(hold)
		occ := freqval.NewOccurrenceSampler(env.Mem, 25_000)
		hold.s = occ
		w.Run(env, benchScale)
		occ.Finalize()
		samples = len(occ.Samples())
	}
	b.ReportMetric(float64(samples), "samples")
}

// BenchmarkFig4MissAttribution measures the share of misses involving
// top-10 accessed values (Figure 4) on a 16KB/16B DMC.
func BenchmarkFig4MissAttribution(b *testing.B) {
	w := getWL(b, "cpusim")
	cfg := core.Config{Main: dmc(16, 16)}
	vals := topValues(b, w, 10)
	var frac float64
	for i := 0; i < b.N; i++ {
		total, attr, err := sim.MissAttribution(w, benchScale, cfg, vals)
		if err != nil {
			b.Fatal(err)
		}
		frac = float64(attr) / float64(total)
	}
	b.ReportMetric(frac*100, "attrib%")
}

// BenchmarkFig5SpatialUniformity scans the spatial distribution of
// frequent values (Figure 5).
func BenchmarkFig5SpatialUniformity(b *testing.B) {
	w := getWL(b, "ccomp")
	var mean float64
	for i := 0; i < b.N; i++ {
		hold := &lateSink{}
		env := memsim.NewEnv(hold)
		occ := freqval.NewOccurrenceSampler(env.Mem, 25_000)
		hold.s = occ
		w.Run(env, benchScale)
		occ.Finalize()
		blocks := freqval.ScanSpatial(env.Mem, occ.LiveAddrs(), occ.TopOccurring(7),
			freqval.DefaultSpatialOptions())
		mean, _ = freqval.SpatialSpread(blocks)
	}
	b.ReportMetric(mean, "freq/line")
}

// BenchmarkTable1TopValues extracts the top-10 accessed values.
func BenchmarkTable1TopValues(b *testing.B) {
	w := getWL(b, "strproc")
	var n int
	for i := 0; i < b.N; i++ {
		n = len(sim.ProfileTopAccessed(w, benchScale, 10))
	}
	b.ReportMetric(float64(n), "values")
}

// BenchmarkTable2InputSensitivity compares top values across inputs.
func BenchmarkTable2InputSensitivity(b *testing.B) {
	w := getWL(b, "goboard")
	var overlap int
	for i := 0; i < b.N; i++ {
		test := sim.ProfileTopAccessed(w, workload.Test, 10)
		train := sim.ProfileTopAccessed(w, workload.Train, 10)
		overlap = freqval.Overlap(test, train, 10)
	}
	b.ReportMetric(float64(overlap), "overlap10")
}

// BenchmarkTable3Stability measures when the top-7 set stabilizes.
func BenchmarkTable3Stability(b *testing.B) {
	w := getWL(b, "cpusim")
	var after float64
	for i := 0; i < b.N; i++ {
		st := freqval.NewStabilityTracker(10_000, 1, 3, 7)
		env := memsim.NewEnv(st)
		w.Run(env, benchScale)
		st.Finalize()
		after = st.FoundAfter(2)
	}
	b.ReportMetric(after*100, "foundAfter%")
}

// BenchmarkTable4ConstantAddresses measures per-allocation constancy.
func BenchmarkTable4ConstantAddresses(b *testing.B) {
	w := getWL(b, "cpusim")
	var frac float64
	for i := 0; i < b.N; i++ {
		ct := freqval.NewConstAddrTracker()
		env := memsim.NewEnv(ct)
		w.Run(env, benchScale)
		ct.Finalize()
		frac = ct.ConstantFraction()
	}
	b.ReportMetric(frac*100, "const%")
}

// --- Evaluation benches (Figures 9-15) ---

// BenchmarkFig9AccessTimes evaluates the CACTI model over the paper's
// geometry sweep.
func BenchmarkFig9AccessTimes(b *testing.B) {
	m := cacti.Default08um()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{4, 8, 16, 32, 64} {
			for _, line := range []int{16, 32, 64} {
				last = m.CacheAccessNs(cache.Params{SizeBytes: kb << 10, LineBytes: line, Assoc: 1})
			}
		}
		for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
			last += m.FVCAccessNs(fvc.Params{Entries: e, LineBytes: 32, Bits: 3})
		}
	}
	b.ReportMetric(last, "ns")
}

// BenchmarkFig10FVCSizeSweep measures the miss-rate reduction of a
// 512-entry FVC on a 16KB DMC (the center point of Figure 10).
func BenchmarkFig10FVCSizeSweep(b *testing.B) {
	w := getWL(b, "goboard")
	var red float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: dmc(16, 32)})
		aug := measure(b, w, fvcCfg(w, b, dmc(16, 32), 512, 3))
		red = (base.MissRate() - aug.MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(red, "reduction%")
}

// BenchmarkFig11CompressionContent samples the FVC's frequent-value
// content (Figure 11).
func BenchmarkFig11CompressionContent(b *testing.B) {
	w := getWL(b, "cpusim")
	cfg := fvcCfg(w, b, dmc(16, 32), 512, 3)
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Measure(w, benchScale, cfg, sim.MeasureOptions{SampleEvery: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FVCFreqFrac
	}
	b.ReportMetric(frac*100, "freqcontent%")
}

// BenchmarkFig12ValueCountSweep compares exploiting 1 vs 7 values
// (Figure 12's key contrast) on one DMC configuration.
func BenchmarkFig12ValueCountSweep(b *testing.B) {
	w := getWL(b, "strproc")
	var red1, red7 float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: dmc(16, 32)})
		aug1 := measure(b, w, fvcCfg(w, b, dmc(16, 32), 512, 1))
		aug7 := measure(b, w, fvcCfg(w, b, dmc(16, 32), 512, 3))
		red1 = (base.MissRate() - aug1.MissRate()) / base.MissRate() * 100
		red7 = (base.MissRate() - aug7.MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(red1, "red1v%")
	b.ReportMetric(red7, "red7v%")
}

// BenchmarkFig13LargerDMCvsFVC compares a 16KB DMC + FVC against a
// 32KB DMC (Figure 13's headline row).
func BenchmarkFig13LargerDMCvsFVC(b *testing.B) {
	w := getWL(b, "cpusim")
	var augMiss, dblMiss float64
	for i := 0; i < b.N; i++ {
		augMiss = measure(b, w, fvcCfg(w, b, dmc(16, 32), 512, 3)).MissRate() * 100
		dblMiss = measure(b, w, core.Config{Main: dmc(32, 32)}).MissRate() * 100
	}
	b.ReportMetric(augMiss, "fvcMiss%")
	b.ReportMetric(dblMiss, "dblMiss%")
}

// BenchmarkFig14SetAssoc measures the FVC's benefit on a 2-way main
// cache (Figure 14).
func BenchmarkFig14SetAssoc(b *testing.B) {
	w := getWL(b, "goboard")
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2}
	var red float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: main})
		aug := measure(b, w, fvcCfg(w, b, main, 512, 3))
		red = (base.MissRate() - aug.MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(red, "reduction%")
}

// BenchmarkFig15VictimVsFVC compares the victim cache and the FVC at
// equal access time (Figure 15b).
func BenchmarkFig15VictimVsFVC(b *testing.B) {
	w := getWL(b, "goboard")
	var vcRed, fvcRed float64
	for i := 0; i < b.N; i++ {
		base := measure(b, w, core.Config{Main: dmc(4, 32)})
		vc := measure(b, w, core.Config{Main: dmc(4, 32), VictimEntries: 4})
		fv := measure(b, w, fvcCfg(w, b, dmc(4, 32), 512, 3))
		vcRed = (base.MissRate() - vc.MissRate()) / base.MissRate() * 100
		fvcRed = (base.MissRate() - fv.MissRate()) / base.MissRate() * 100
	}
	b.ReportMetric(vcRed, "vcRed%")
	b.ReportMetric(fvcRed, "fvcRed%")
}

// --- Sweep engine: record-once/replay-many vs live execution ---

// sweepGrid is the configuration fan the sweep benchmarks share:
// Figure 10's shape — a 16KB DMC baseline plus every FVC entry count —
// measured over one workload.
func sweepGrid(values []uint32) []core.Config {
	main := dmc(16, 32)
	cfgs := []core.Config{{Main: main}}
	for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		cfgs = append(cfgs, core.Config{
			Main:           main,
			FVC:            &fvc.Params{Entries: e, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: values,
		})
	}
	return cfgs
}

// BenchmarkSweepLive runs the sweep the pre-recording way: every
// configuration re-executes the workload.
func BenchmarkSweepLive(b *testing.B) {
	w := getWL(b, "imgdct")
	cfgs := sweepGrid(topValues(b, w, 7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := sim.Measure(w, benchScale, cfg, sim.MeasureOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepReplay runs the same sweep through the recording
// engine: the shared cache's recording (captured once per process,
// exactly as the experiment suite uses it) replayed once per
// configuration.
func BenchmarkSweepReplay(b *testing.B) {
	w := getWL(b, "imgdct")
	cfgs := sweepGrid(topValues(b, w, 7))
	if _, err := sim.Recordings.Get(w, benchScale); err != nil {
		b.Fatal(err) // capture outside the timed region, like production
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := sim.Recordings.Get(w, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := sim.MeasureRecorded(rec, cfg, sim.MeasureOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepBatch runs the same sweep through the fused batch
// engine: the shared recording replayed exactly once, driving every
// configuration in lockstep through one core.SystemSet.
func BenchmarkSweepBatch(b *testing.B) {
	w := getWL(b, "imgdct")
	cfgs := sweepGrid(topValues(b, w, 7))
	if _, err := sim.Recordings.Get(w, benchScale); err != nil {
		b.Fatal(err) // capture outside the timed region, like production
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := sim.Recordings.Get(w, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.MeasureRecordedBatch(rec, cfgs, sim.MeasureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSteadyReplay isolates the fused loop itself: a warm
// SystemSet over the whole sweep grid, replaying the access columns
// with zero steady-state allocations (pinned by AllocsPerRun in
// internal/sim's TestBatchReplayZeroAllocs).
func BenchmarkBatchSteadyReplay(b *testing.B) {
	w := getWL(b, "imgdct")
	cfgs := sweepGrid(topValues(b, w, 7))
	rec, err := sim.Recordings.Get(w, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	set, err := core.NewSet(cfgs)
	if err != nil {
		b.Fatal(err)
	}
	ops, addrs, vals := rec.AccessColumns()
	set.ReplayColumns(ops, addrs, vals) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.ReplayColumns(ops, addrs, vals)
	}
}

// --- Microbenchmarks of simulator hot paths ---

// BenchmarkMemoryLoadWord exercises the last-page memo: sequential
// loads within one 4KB page never touch the page map.
func BenchmarkMemoryLoadWord(b *testing.B) {
	m := memsim.NewMemory()
	m.StoreWord(0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LoadWord(0x1000 + uint32(i%memsim.PageWords)*4)
	}
}

// BenchmarkTableEncode measures the FVT's linear-scan index at the
// paper's 7-value size (half the probes miss the table).
func BenchmarkTableEncode(b *testing.B) {
	tbl := fvc.MustTable(3, []uint32{0, 1, 2, 4, 8, 10, 0xffffffff})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Encode(uint32(i % 12))
	}
}

// BenchmarkRecordingReplay measures raw per-event replay dispatch into
// a null sink.
func BenchmarkRecordingReplay(b *testing.B) {
	w := getWL(b, "ccomp")
	rec, err := sim.Record(w, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(trace.Discard)
	}
	b.ReportMetric(float64(rec.Len()), "events")
}

func BenchmarkCacheTouchHit(b *testing.B) {
	c := cache.New(dmc(16, 32))
	c.Insert(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(0x1000, false)
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := cache.New(dmc(16, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint32(i)<<5, false)
	}
}

func BenchmarkFVCLookup(b *testing.B) {
	tbl := fvc.MustTable(3, []uint32{0, 1, 2, 4, 8, 10, 0xffffffff})
	f := fvc.MustNew(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3}, tbl)
	f.InstallFootprint(f.LineAddr(0x1000), []uint32{0, 1, 2, 4, 8, 10, 0, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(0x1000 + uint32(i%8)*4)
	}
}

func BenchmarkSystemAccess(b *testing.B) {
	sys := core.MustNew(core.Config{
		Main:           dmc(16, 32),
		FVC:            &fvc.Params{Entries: 512, LineBytes: 32, Bits: 3},
		FrequentValues: []uint32{0, 1, 2, 4, 8, 10, 0xffffffff},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i%16384) * 4
		sys.Access(trace.Load, addr, 0)
	}
}

func BenchmarkWorkloadGoboard(b *testing.B) {
	w := getWL(b, "goboard")
	var n uint64
	for i := 0; i < b.N; i++ {
		env := memsim.NewEnv(trace.Discard)
		w.Run(env, benchScale)
		n = env.Accesses()
	}
	b.ReportMetric(float64(n), "accesses")
}

func BenchmarkTraceCodecEncode(b *testing.B) {
	w, _ := trace.NewWriter(discardWriter{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Emit(trace.Event{Op: trace.Load, Addr: uint32(i) * 4, Value: uint32(i)})
	}
	w.Flush()
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
